// Quickstart: sanitize GPS coordinates on-device with the multi-step
// geo-indistinguishability mechanism.
//
//   ./quickstart [epsilon]
//
// Configures a sanitizer for the paper's Austin study region, feeds it a
// short history of check-ins to shape the prior, and sanitizes a few
// coordinates. Lower epsilon = stronger privacy = noisier reports.

#include <cstdio>
#include <cstdlib>
#include <vector>

#include "core/location_sanitizer.h"

int main(int argc, char** argv) {
  using geopriv::core::LatLon;
  using geopriv::core::LocationSanitizer;

  const double eps = argc > 1 ? std::atof(argv[1]) : 0.5;

  // A user's recent check-in history (downtown Austin coffee shops).
  std::vector<LatLon> history;
  for (int i = 0; i < 200; ++i) {
    history.push_back({30.2672 + 0.0005 * (i % 9), -97.7431 - 0.0004 * (i % 7)});
  }

  auto sanitizer = LocationSanitizer::Builder()
                       .SetRegionLatLon(30.1927, -97.8698,  // SW corner
                                        30.3723, -97.6618)  // NE corner
                       .SetEpsilon(eps)
                       .SetGranularity(4)
                       .SetRho(0.8)
                       .AddCheckinsLatLon(history)
                       .SetSeed(42)
                       .Build();
  if (!sanitizer.ok()) {
    std::fprintf(stderr, "failed to build sanitizer: %s\n",
                 sanitizer.status().ToString().c_str());
    return 1;
  }

  std::printf("geo-indistinguishability sanitizer ready (eps = %.2f)\n", eps);
  std::printf("index height chosen by the cost model: %d level(s)\n",
              sanitizer->budget().height());
  for (int i = 0; i < sanitizer->budget().height(); ++i) {
    std::printf("  level %d budget: %.4f\n", i + 1,
                sanitizer->budget().per_level[i]);
  }

  const double actual_lat = 30.2672;
  const double actual_lon = -97.7431;
  std::printf("\nactual location: (%.4f, %.4f) — never leaves the device\n",
              actual_lat, actual_lon);
  std::printf("five independently sanitized reports:\n");
  for (int i = 0; i < 5; ++i) {
    const LatLon z = sanitizer->SanitizeLatLon(actual_lat, actual_lon);
    std::printf("  report %d: (%.4f, %.4f)\n", i + 1, z.lat, z.lon);
  }
  std::printf("\nSend the reports — not the actual location — to the "
              "service.\n");
  return 0;
}
