// Load generator for the SanitizationService: floods the async API faster
// than the workers can drain it, so you can watch admission control
// (kResourceExhausted rejections), graceful degradation (per-request
// deadlines falling back to planar Laplace) and the metrics JSON in action.
//
//   ./service_loadgen [num_requests] [num_workers] [queue_capacity]
//                     [metrics_json_path] [metrics_text_path]
//
// Two phases:
//   1. burst    — SubmitAsync as fast as possible; count accepts/rejects.
//   2. paced    — SubmitFuture with a tight deadline; count fallbacks.
// Finishes by printing service.MetricsJson() and a flight-recorder
// summary (tracing runs head-sampled 1-in-8, so the paced phase's
// degraded requests are always retained). With the optional path
// arguments, the metrics JSON and the Prometheus text exposition are
// also written to files — the CI obs-smoke job scrapes and validates
// both.

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <thread>

#include "service/sanitization_service.h"

int main(int argc, char** argv) {
  using namespace geopriv;  // NOLINT: example brevity
  const int num_requests = argc > 1 ? std::atoi(argv[1]) : 500;
  const int num_workers = argc > 2 ? std::atoi(argv[2]) : 4;
  const size_t capacity =
      argc > 3 ? std::strtoul(argv[3], nullptr, 10) : 64;
  const char* metrics_json_path = argc > 4 ? argv[4] : nullptr;
  const char* metrics_text_path = argc > 5 ? argv[5] : nullptr;

  service::ServiceOptions options;
  options.num_workers = num_workers;
  options.queue_capacity = capacity;
  options.seed = 20190326;
  // Head-sample 1-in-8; degraded/overrun/tail requests are force-retained
  // regardless, so the paced phase always lands in the flight recorder.
  options.trace.sample_one_in = 8;
  options.trace.tail_latency_ms = 50.0;
  auto service = service::SanitizationService::Create(options);
  if (!service.ok()) {
    std::fprintf(stderr, "service: %s\n",
                 service.status().ToString().c_str());
    return 1;
  }

  // The paper's Austin study region; uniform prior keeps startup instant.
  service::RegionConfig region;
  region.min_lat = 30.1927;
  region.min_lon = -97.8698;
  region.max_lat = 30.3723;
  region.max_lon = -97.6618;
  region.eps = 0.5;
  region.granularity = 3;
  region.prior_granularity = 32;
  if (auto s = (*service)->RegisterRegion("austin", region); !s.ok()) {
    std::fprintf(stderr, "region: %s\n", s.ToString().c_str());
    return 1;
  }

  auto query = [&](int i) {
    return core::LatLon{30.20 + 0.0017 * (i % 97), -97.86 + 0.002 * (i % 83)};
  };

  // Phase 1: burst. The queue is far smaller than the burst, so a chunk of
  // submissions must be rejected at admission instead of piling up.
  std::atomic<int> completed{0};
  int accepted = 0, rejected = 0;
  for (int i = 0; i < num_requests; ++i) {
    service::SanitizeRequest request;
    request.region_id = "austin";
    request.location = query(i);
    const Status s = (*service)->SubmitAsync(
        std::move(request),
        [&completed](const service::SanitizeResult&) { ++completed; });
    if (s.ok()) {
      ++accepted;
    } else {
      ++rejected;  // kResourceExhausted: backpressure
    }
  }
  (*service)->Drain();
  std::printf("burst:  %d submitted, %d accepted, %d rejected, %d done\n",
              num_requests, accepted, rejected, completed.load());

  // Phase 2: paced with a deadline so tight that requests queued behind a
  // busy worker degrade to the planar-Laplace fallback (never silently —
  // see fallbacks_deadline in the JSON below).
  int fallbacks = 0;
  const int paced = num_requests / 5;
  for (int i = 0; i < paced; ++i) {
    service::SanitizeRequest request;
    request.region_id = "austin";
    request.location = query(i);
    request.deadline_ms = 0.001;  // ~1 us: queue wakeup alone exceeds it
    auto future = (*service)->SubmitFuture(std::move(request));
    const service::SanitizeResult result = future.get();
    if (result.status.ok() && result.used_fallback) ++fallbacks;
  }
  std::printf("paced:  %d requests with 0.001 ms deadline, %d degraded\n",
              paced, fallbacks);

  const std::string metrics_json = (*service)->MetricsJson();
  std::printf("\nmetrics: %s\n", metrics_json.c_str());

  const obs::TraceStats trace = (*service)->trace_recorder()->stats();
  std::printf(
      "\nflight recorder: %llu requests traced, %llu retained "
      "(%llu forced by degrade/overrun/tail), %llu spans resident\n",
      static_cast<unsigned long long>(trace.requests_started),
      static_cast<unsigned long long>(trace.requests_retained),
      static_cast<unsigned long long>(trace.requests_forced),
      static_cast<unsigned long long>(trace.spans_committed));
  const std::string dump = (*service)->FlightRecorderJson(8);
  std::printf("last spans: %s\n", dump.c_str());

  const auto write_file = [](const char* path, const std::string& content) {
    std::FILE* f = std::fopen(path, "w");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot open %s\n", path);
      return false;
    }
    std::fwrite(content.data(), 1, content.size(), f);
    std::fclose(f);
    std::printf("wrote %s\n", path);
    return true;
  };
  if (metrics_json_path != nullptr &&
      !write_file(metrics_json_path, metrics_json)) {
    return 1;
  }
  if (metrics_text_path != nullptr &&
      !write_file(metrics_text_path, (*service)->MetricsText())) {
    return 1;
  }
  return 0;
}
