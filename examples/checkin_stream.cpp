// Streaming sanitization: a fleet of mobile clients reports check-ins
// through the mechanism, as a geo-social app would. Demonstrates
//   * per-query latency once the per-node LP cache is warm (the paper's
//     "well below a second per query" claim), and
//   * utility loss of MSM vs planar Laplace on the same stream.
//
//   ./checkin_stream [num_checkins] [epsilon]

#include <cstdio>
#include <iostream>
#include <cstdlib>
#include <memory>

#include "base/stopwatch.h"
#include "core/msm.h"
#include "data/synthetic.h"
#include "eval/table.h"
#include "geo/distance.h"
#include "mechanisms/planar_laplace.h"
#include "prior/prior.h"
#include "rng/rng.h"
#include "spatial/hierarchical_grid.h"

int main(int argc, char** argv) {
  using namespace geopriv;  // NOLINT: example brevity
  const int stream_length = argc > 1 ? std::atoi(argv[1]) : 2000;
  const double eps = argc > 2 ? std::atof(argv[2]) : 0.5;

  auto city = data::YelpLasVegasLike();
  if (!city.ok()) return 1;
  std::printf("dataset: %s — %zu check-ins, %lld users\n",
              city->name.c_str(), city->points.size(),
              static_cast<long long>(city->num_unique_users()));

  auto prior = std::make_shared<prior::Prior>(
      prior::Prior::FromPoints(city->domain, 128, city->points).value());
  auto index = std::make_shared<spatial::HierarchicalGrid>(
      spatial::HierarchicalGrid::Create(city->domain, 4, 3).value());
  core::MsmOptions options;
  auto msm = core::MultiStepMechanism::Create(eps, index, prior, options);
  if (!msm.ok()) {
    std::fprintf(stderr, "MSM: %s\n", msm.status().ToString().c_str());
    return 1;
  }
  spatial::UniformGrid leaf_grid(city->domain, 16);
  auto pl = mechanisms::PlanarLaplaceOnGrid::Create(eps, leaf_grid);
  if (!pl.ok()) return 1;

  rng::Rng stream_rng(1);
  double msm_loss = 0.0, pl_loss = 0.0;
  double msm_ms = 0.0, pl_ms = 0.0, msm_max_ms = 0.0;
  for (int i = 0; i < stream_length; ++i) {
    const geo::Point x =
        city->points[stream_rng.UniformInt(city->points.size())];
    Stopwatch sw;
    const geo::Point z_msm = msm->Report(x, stream_rng);
    const double ms = sw.ElapsedMillis();
    msm_ms += ms;
    if (ms > msm_max_ms) msm_max_ms = ms;
    sw.Reset();
    const geo::Point z_pl = pl->Report(x, stream_rng);
    pl_ms += sw.ElapsedMillis();
    msm_loss += geo::Euclidean(x, z_msm);
    pl_loss += geo::Euclidean(x, z_pl);
  }

  eval::Table table(
      {"mechanism", "mean loss (km)", "mean latency (ms)", "max (ms)"});
  table.AddRow({"MSM", eval::Fmt(msm_loss / stream_length, 3),
                eval::Fmt(msm_ms / stream_length, 3),
                eval::Fmt(msm_max_ms, 1)});
  table.AddRow({"PL+grid", eval::Fmt(pl_loss / stream_length, 3),
                eval::Fmt(pl_ms / stream_length, 3), "-"});
  std::printf("\nstream of %d check-ins at eps = %.2f:\n\n", stream_length,
              eps);
  table.Print(std::cout);
  std::printf(
      "\nMSM solved %lld node LPs (%.2fs total) and served %lld cache hits "
      "— the max latency is the cold-cache solve, the mean is the steady "
      "state.\n",
      static_cast<long long>(msm->stats().lp_solves),
      msm->stats().lp_seconds,
      static_cast<long long>(msm->stats().cache_hits));
  return 0;
}
