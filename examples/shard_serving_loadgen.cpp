// Shard-routed serving demo: one build tier, N serving "processes".
//
// The build tier writes a region bundle once. A fleet of serving
// instances (modeled here as N independent SanitizationServices — in
// production these are separate processes on separate machines, all
// computing the same deterministic ring) each mmap-loads only the
// regions the ShardRouter assigns to it, then traffic is routed to each
// region's owner. Every region goes live in milliseconds with zero LP
// solves, which is what makes this scale-out shape practical: moving a
// region to another shard is a cheap mmap, not minutes of re-solving.
//
//   ./shard_serving_loadgen [num_shards] [num_regions] [requests_per_region]

#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "base/stopwatch.h"
#include "bundle/builder.h"
#include "service/sanitization_service.h"
#include "service/shard_router.h"

int main(int argc, char** argv) {
  using namespace geopriv;  // NOLINT: example brevity
  const int num_shards = argc > 1 ? std::atoi(argv[1]) : 4;
  const int num_regions = argc > 2 ? std::atoi(argv[2]) : 12;
  const int requests_per_region = argc > 3 ? std::atoi(argv[3]) : 200;

  // --- Build tier: one bundle, solved once. ---
  bundle::RegionSpec spec;
  spec.min_lat = 30.19;
  spec.min_lon = -97.87;
  spec.max_lat = 30.21;
  spec.max_lon = -97.85;
  spec.eps = 0.8;
  spec.granularity = 3;
  spec.prior_granularity = 32;
  for (int i = 0; i < 2000; ++i) {
    spec.checkins.push_back({30.19 + 0.02 * (i % 97) / 97.0,
                             -97.87 + 0.02 * (i % 71) / 71.0});
  }
  const std::string path = "/tmp/geopriv_shard_demo.gpb2";
  const Stopwatch build_watch;
  auto built = bundle::BuildRegionBundle(spec, {}, path);
  if (!built.ok()) {
    std::fprintf(stderr, "build: %s\n", built.status().ToString().c_str());
    return 1;
  }
  std::printf("build tier: %s — %llu nodes, %lld LP solves, %.2fs\n",
              path.c_str(), static_cast<unsigned long long>(built->nodes),
              static_cast<long long>(built->lp_solves),
              build_watch.ElapsedSeconds());

  // --- Serve tier: the fleet. Every instance computes the same ring. ---
  service::ShardRouter router(num_shards);
  std::vector<std::unique_ptr<service::SanitizationService>> fleet;
  for (int s = 0; s < num_shards; ++s) {
    service::ServiceOptions options;
    options.num_workers = 2;
    options.num_shards = num_shards;
    auto service = service::SanitizationService::Create(options);
    if (!service.ok()) return 1;
    fleet.push_back(std::move(service).value());
  }

  // Placement: each region's owner — and only its owner — maps the
  // bundle. (All regions share one bundle file here; real deployments
  // have one per region, but the load path is identical.)
  std::vector<int> owner(static_cast<size_t>(num_regions));
  std::vector<int> regions_on_shard(static_cast<size_t>(num_shards), 0);
  const Stopwatch load_watch;
  for (int r = 0; r < num_regions; ++r) {
    const std::string region_id = "region-" + std::to_string(r);
    const int shard = router.ShardFor(region_id);
    owner[static_cast<size_t>(r)] = shard;
    ++regions_on_shard[static_cast<size_t>(shard)];
    auto status = fleet[static_cast<size_t>(shard)]->LoadRegionFromBundle(
        region_id, path);
    if (!status.ok()) {
      std::fprintf(stderr, "load %s: %s\n", region_id.c_str(),
                   status.ToString().c_str());
      return 1;
    }
  }
  std::printf("serve tier: %d regions mmap-loaded across %d shards in "
              "%.1f ms total (zero LP solves)\n",
              num_regions, num_shards, load_watch.ElapsedMillis());

  // --- Traffic, routed to each region's owner. ---
  std::vector<core::LatLon> batch(
      static_cast<size_t>(requests_per_region));
  for (size_t i = 0; i < batch.size(); ++i) {
    batch[i] = {30.19 + 0.02 * static_cast<double>(i % 89) / 89.0,
                -97.87 + 0.02 * static_cast<double>(i % 61) / 61.0};
  }
  const Stopwatch serve_watch;
  uint64_t ok = 0, fallbacks = 0;
  for (int r = 0; r < num_regions; ++r) {
    const auto results =
        fleet[static_cast<size_t>(owner[static_cast<size_t>(r)])]
            ->SanitizeBatch("region-" + std::to_string(r), batch);
    for (const auto& result : results) {
      if (result.status.ok()) ++ok;
      if (result.used_fallback) ++fallbacks;
    }
  }
  const double seconds = serve_watch.ElapsedSeconds();
  const double total =
      static_cast<double>(num_regions) * requests_per_region;
  std::printf("traffic: %.0f requests, %llu ok, %llu fallbacks, "
              "%.0f req/s\n\n",
              total, static_cast<unsigned long long>(ok),
              static_cast<unsigned long long>(fallbacks), total / seconds);

  std::printf("%-6s %-8s %-10s %s\n", "shard", "regions", "requests",
              "bundle cold starts");
  for (int s = 0; s < num_shards; ++s) {
    const service::MetricsSnapshot snapshot =
        fleet[static_cast<size_t>(s)]->metrics().Snapshot();
    std::printf("%-6d %-8d %-10llu %llu loads, %.1f ms, %.1f KiB mapped\n",
                s, regions_on_shard[static_cast<size_t>(s)],
                static_cast<unsigned long long>(snapshot.requests_total),
                static_cast<unsigned long long>(snapshot.bundle_loads),
                snapshot.bundle_load_seconds * 1e3,
                static_cast<double>(snapshot.bundle_bytes_mapped) / 1024.0);
  }
  std::printf("\nshard 0 routing table: %s\n",
              fleet[0]->shard_router()->RoutingTableJson().c_str());
  return 0;
}
