// Privacy audit: empirically verifies the end-to-end GeoInd guarantee of
// the multi-step mechanism. For pairs of actual locations (x, x') it
// estimates Pr[z | x] / Pr[z | x'] by Monte Carlo over every reported leaf
// z and compares the worst observed ratio against the theoretical bound
// e^{eps * d(x, x')}.
//
//   ./privacy_audit [epsilon] [samples_per_location]

#include <cmath>
#include <cstdio>
#include <iostream>
#include <cstdlib>
#include <map>
#include <memory>

#include "core/msm.h"
#include "data/synthetic.h"
#include "eval/table.h"
#include "geo/distance.h"
#include "prior/prior.h"
#include "rng/rng.h"
#include "spatial/hierarchical_grid.h"

int main(int argc, char** argv) {
  using namespace geopriv;  // NOLINT: example brevity
  const double eps = argc > 1 ? std::atof(argv[1]) : 0.5;
  const int samples = argc > 2 ? std::atoi(argv[2]) : 200000;

  data::SyntheticCityConfig config = data::GowallaAustinLikeConfig();
  config.num_checkins = 30000;
  auto city = data::GenerateSyntheticCity(config);
  if (!city.ok()) return 1;
  auto prior = std::make_shared<prior::Prior>(
      prior::Prior::FromPoints(city->domain, 64, city->points).value());
  auto index = std::make_shared<spatial::HierarchicalGrid>(
      spatial::HierarchicalGrid::Create(city->domain, 2, 2).value());
  core::MsmOptions options;
  auto msm = core::MultiStepMechanism::Create(eps, index, prior, options);
  if (!msm.ok()) {
    std::fprintf(stderr, "MSM: %s\n", msm.status().ToString().c_str());
    return 1;
  }

  const std::pair<geo::Point, geo::Point> pairs[] = {
      {{6.0, 6.0}, {7.0, 6.0}},    // 1 km apart
      {{6.0, 6.0}, {9.0, 6.0}},    // 3 km
      {{4.0, 4.0}, {16.0, 16.0}},  // ~17 km, across the city
  };

  std::printf("empirical GeoInd audit, eps = %.2f, %d samples per "
              "location\n\n", eps, samples);
  eval::Table table({"d(x,x') km", "bound e^{eps d}", "worst observed",
                     "verdict"});
  rng::Rng rng(3);
  for (const auto& [x1, x2] : pairs) {
    std::map<std::pair<double, double>, int> c1, c2;
    for (int i = 0; i < samples; ++i) {
      const geo::Point z1 = msm->Report(x1, rng);
      const geo::Point z2 = msm->Report(x2, rng);
      ++c1[{z1.x, z1.y}];
      ++c2[{z2.x, z2.y}];
    }
    const double d = geo::Euclidean(x1, x2);
    const double bound = std::exp(eps * d);
    double worst = 0.0;
    for (const auto& [z, n1] : c1) {
      const auto it = c2.find(z);
      const int n2 = it == c2.end() ? 0 : it->second;
      if (n1 < 1000 || n2 < 1000) continue;  // ratio too noisy
      worst = std::max(worst,
                       std::max(static_cast<double>(n1) / n2,
                                static_cast<double>(n2) / n1));
    }
    table.AddRow({eval::Fmt(d, 2), eval::Fmt(bound, 2),
                  eval::Fmt(worst, 2),
                  worst <= bound * 1.1 ? "OK" : "VIOLATION?"});
  }
  table.Print(std::cout);
  std::printf(
      "\nEvery observed likelihood ratio must stay below the bound "
      "(1.1x slack covers Monte Carlo noise). Far-apart pairs have loose "
      "bounds — GeoInd protects nearby locations, which is the point.\n");
  return 0;
}
