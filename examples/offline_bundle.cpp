// Offline bundle workflow (paper Section 3.1): the service provider
// precomputes everything data-dependent — the prior from historical
// check-ins, the index parameters, the privacy-budget split — into a small
// binary bundle that clients download once. At runtime the client loads
// the bundle, reconstructs the multi-step mechanism locally, and sanitizes
// coordinates without ever contacting the server about its position.
//
//   ./offline_bundle [epsilon] [bundle_path]

#include <cstdio>
#include <cstdlib>
#include <sys/stat.h>

#include "core/bundle.h"
#include "data/synthetic.h"
#include "geo/distance.h"
#include "rng/rng.h"

int main(int argc, char** argv) {
  using namespace geopriv;  // NOLINT: example brevity
  const double eps = argc > 1 ? std::atof(argv[1]) : 0.5;
  const std::string path =
      argc > 2 ? argv[2] : "/tmp/geopriv_austin.bundle";

  // --- Server side: build and publish the bundle. ---
  data::SyntheticCityConfig config = data::GowallaAustinLikeConfig();
  config.num_checkins = 60000;
  auto city = data::GenerateSyntheticCity(config);
  if (!city.ok()) return 1;
  auto bundle = core::BuildClientBundle(city->domain, city->points, eps,
                                        /*granularity=*/4, /*rho=*/0.8,
                                        /*prior_granularity=*/128);
  if (!bundle.ok()) {
    std::fprintf(stderr, "build: %s\n", bundle.status().ToString().c_str());
    return 1;
  }
  if (auto s = core::SaveClientBundle(*bundle, path); !s.ok()) {
    std::fprintf(stderr, "save: %s\n", s.ToString().c_str());
    return 1;
  }
  struct stat st;
  stat(path.c_str(), &st);
  std::printf("server: published %s (%.1f KiB) — eps=%.2f, %d levels, "
              "%dx%d prior\n",
              path.c_str(), st.st_size / 1024.0, bundle->eps,
              bundle->budget.height(), bundle->prior_granularity,
              bundle->prior_granularity);

  // --- Client side: load, verify, reconstruct, sanitize. ---
  auto loaded = core::LoadClientBundle(path);
  if (!loaded.ok()) {
    std::fprintf(stderr, "load: %s\n", loaded.status().ToString().c_str());
    return 1;
  }
  auto mechanism = core::MechanismFromBundle(*loaded);
  if (!mechanism.ok()) {
    std::fprintf(stderr, "mechanism: %s\n",
                 mechanism.status().ToString().c_str());
    return 1;
  }
  std::printf("client: bundle verified (checksum ok), mechanism ready\n\n");
  rng::Rng rng(7);
  const geo::Point actual{6.3, 7.1};
  double mean_loss = 0.0;
  const int n = 200;
  for (int i = 0; i < n; ++i) {
    const geo::Point z = mechanism->Report(actual, rng);
    mean_loss += geo::Euclidean(actual, z) / n;
    if (i < 3) {
      std::printf("  report %d: (%.3f, %.3f) km\n", i + 1, z.x, z.y);
    }
  }
  std::printf("\nmean reporting error over %d queries: %.3f km "
              "(per-level budgets:", n, mean_loss);
  for (double b : mechanism->budget().per_level) std::printf(" %.3f", b);
  std::printf(")\n");
  return 0;
}
