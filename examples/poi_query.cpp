// Nearest-POI quality under obfuscation — the paper's motivating scenario.
//
// A user asks "what is the nearest venue?" but only reveals a sanitized
// location. The service answers for the *reported* point; the user then
// walks from the *actual* point. This example quantifies the penalty:
//   * extra walking distance vs the true nearest venue, and
//   * how often the true nearest venue still appears in the top-k answer,
// comparing planar Laplace against the multi-step mechanism at equal eps.

#include <cstdio>
#include <iostream>
#include <cstdlib>
#include <memory>

#include "core/msm.h"
#include "data/synthetic.h"
#include "eval/table.h"
#include "geo/distance.h"
#include "mechanisms/planar_laplace.h"
#include "prior/prior.h"
#include "rng/rng.h"
#include "spatial/hierarchical_grid.h"
#include "spatial/str_rtree.h"

namespace {

struct QueryStats {
  double extra_km = 0.0;   // mean extra walking distance
  double hit_at_5 = 0.0;   // true nearest venue within the top-5 answer
};

QueryStats RunQueries(geopriv::mechanisms::Mechanism& mech,
                      const geopriv::spatial::StrRTree& venues,
                      const std::vector<geopriv::geo::Point>& requests,
                      geopriv::rng::Rng& rng) {
  QueryStats stats;
  for (const auto& x : requests) {
    const geopriv::geo::Point z = mech.Report(x, rng);
    const int true_nearest = venues.Nearest(x);
    const auto answer = venues.KNearest(z, 5);
    // The user walks to the service's top answer from the actual spot.
    const double walked =
        geopriv::geo::Euclidean(x, venues.point(answer[0]));
    const double ideal =
        geopriv::geo::Euclidean(x, venues.point(true_nearest));
    stats.extra_km += walked - ideal;
    for (int id : answer) {
      if (id == true_nearest) {
        stats.hit_at_5 += 1.0;
        break;
      }
    }
  }
  stats.extra_km /= requests.size();
  stats.hit_at_5 /= requests.size();
  return stats;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace geopriv;  // NOLINT: example brevity
  const double eps = argc > 1 ? std::atof(argv[1]) : 0.5;
  const int num_queries = argc > 2 ? std::atoi(argv[2]) : 500;

  // Synthetic Austin-like city: venues + check-in history.
  data::SyntheticCityConfig config = data::GowallaAustinLikeConfig();
  config.num_checkins = 50000;  // enough to shape the prior
  auto city = data::GenerateSyntheticCity(config);
  if (!city.ok()) return 1;
  auto venues = spatial::StrRTree::Build(city->pois);
  if (!venues.ok()) return 1;

  auto prior = std::make_shared<prior::Prior>(
      prior::Prior::FromPoints(city->domain, 128, city->points).value());
  auto index = std::make_shared<spatial::HierarchicalGrid>(
      spatial::HierarchicalGrid::Create(city->domain, 4, 3).value());

  core::MsmOptions msm_options;
  auto msm = core::MultiStepMechanism::Create(eps, index, prior, msm_options);
  if (!msm.ok()) {
    std::fprintf(stderr, "MSM: %s\n", msm.status().ToString().c_str());
    return 1;
  }
  auto pl = mechanisms::PlanarLaplace::Create(eps);
  if (!pl.ok()) return 1;

  rng::Rng rng(7);
  const auto requests = [&] {
    std::vector<geo::Point> r;
    for (int i = 0; i < num_queries; ++i) {
      r.push_back(city->points[rng.UniformInt(city->points.size())]);
    }
    return r;
  }();

  std::printf("nearest-venue queries over %zu venues, eps = %.2f, %d "
              "queries\n\n",
              venues->size(), eps, num_queries);
  rng::Rng prng(11), mrng(11);
  const QueryStats pl_stats = RunQueries(*pl, *venues, requests, prng);
  const QueryStats msm_stats = RunQueries(*msm, *venues, requests, mrng);

  eval::Table table({"mechanism", "extra walk (km)", "true-NN in top-5"});
  table.AddRow({"planar Laplace", eval::Fmt(pl_stats.extra_km, 3),
                eval::Fmt(pl_stats.hit_at_5, 3)});
  table.AddRow({"multi-step (MSM)", eval::Fmt(msm_stats.extra_km, 3),
                eval::Fmt(msm_stats.hit_at_5, 3)});
  table.Print(std::cout);
  std::printf("\nMSM answers cost less walking because its reports stay in "
              "high-prior areas near the user.\n");
  return 0;
}
