// geopriv_bundle: command-line front end for v2 region bundles — the
// build tier's packaging tool and the serve tier's pre-flight check.
//
//   geopriv_bundle build <path> [--eps E] [--granularity G] [--rho R]
//                         [--prior-granularity P] [--prewarm N]
//                         [--box minLat minLon maxLat maxLon]
//       Builds a region (synthetic check-in prior), pre-solves its node
//       LPs, and writes the bundle crash-atomically to <path>.
//
//   geopriv_bundle inspect <path>
//       Prints the header, TOC, config, and per-node directory.
//
//   geopriv_bundle verify <path> [--deep]
//       Re-maps the file and re-checks every section checksum; --deep
//       also rehydrates the region and serves a few requests through it.
//
// Exit status: 0 on success, 1 on any failure — so CI can gate on it.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "bundle/builder.h"
#include "bundle/format.h"
#include "bundle/loader.h"
#include "bundle/region_bundle.h"
#include "rng/rng.h"

namespace {

using namespace geopriv;  // NOLINT: example brevity

int Usage() {
  std::fprintf(stderr,
               "usage: geopriv_bundle build <path> [--eps E] [--granularity G]"
               " [--rho R]\n"
               "                      [--prior-granularity P] [--prewarm N]\n"
               "                      [--box minLat minLon maxLat maxLon]\n"
               "       geopriv_bundle inspect <path>\n"
               "       geopriv_bundle verify <path> [--deep]\n");
  return 1;
}

const char* SectionName(uint32_t id) {
  switch (id) {
    case bundle::kConfig: return "config";
    case bundle::kBudgets: return "budgets";
    case bundle::kPrior: return "prior";
    case bundle::kNodes: return "nodes";
    case bundle::kPlan: return "plan";
    default: return "unknown";
  }
}

int Build(const std::string& path, int argc, char** argv) {
  bundle::RegionSpec spec;
  // A compact Austin-like default region; override with --box.
  spec.min_lat = 30.19;
  spec.min_lon = -97.87;
  spec.max_lat = 30.23;
  spec.max_lon = -97.83;
  spec.eps = 0.5;
  bundle::BuildBundleOptions options;
  options.prewarm_nodes = 0;  // full prewarm by default

  for (int i = 0; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto next = [&](int k = 1) { return i + k < argc; };
    if (arg == "--eps" && next()) {
      spec.eps = std::atof(argv[++i]);
    } else if (arg == "--granularity" && next()) {
      spec.granularity = std::atoi(argv[++i]);
    } else if (arg == "--rho" && next()) {
      spec.rho = std::atof(argv[++i]);
    } else if (arg == "--prior-granularity" && next()) {
      spec.prior_granularity = std::atoi(argv[++i]);
    } else if (arg == "--prewarm" && next()) {
      options.prewarm_nodes = std::atoi(argv[++i]);
    } else if (arg == "--box" && next(4)) {
      spec.min_lat = std::atof(argv[++i]);
      spec.min_lon = std::atof(argv[++i]);
      spec.max_lat = std::atof(argv[++i]);
      spec.max_lon = std::atof(argv[++i]);
    } else {
      std::fprintf(stderr, "unknown build option: %s\n", arg.c_str());
      return Usage();
    }
  }

  // Synthetic history: Gaussian clusters inside the box shape the prior.
  rng::Rng rng(20260809);
  const double clat = 0.5 * (spec.min_lat + spec.max_lat);
  const double clon = 0.5 * (spec.min_lon + spec.max_lon);
  const double spread_lat = 0.15 * (spec.max_lat - spec.min_lat);
  const double spread_lon = 0.15 * (spec.max_lon - spec.min_lon);
  for (int i = 0; i < 5000; ++i) {
    spec.checkins.push_back({rng.Gaussian(clat, spread_lat),
                             rng.Gaussian(clon, spread_lon)});
  }

  auto result = bundle::BuildRegionBundle(spec, options, path);
  if (!result.ok()) {
    std::fprintf(stderr, "build: %s\n", result.status().ToString().c_str());
    return 1;
  }
  std::printf("built %s: %llu nodes, %llu plan nodes, %.1f KiB\n"
              "  %.2fs total (%.2fs in %lld LP solves)\n",
              path.c_str(), static_cast<unsigned long long>(result->nodes),
              static_cast<unsigned long long>(result->plan_nodes),
              result->bytes / 1024.0, result->build_seconds,
              result->lp_seconds, static_cast<long long>(result->lp_solves));
  return 0;
}

int Inspect(const std::string& path) {
  auto view = bundle::RegionBundleView::Open(path);
  if (!view.ok()) {
    std::fprintf(stderr, "open: %s\n", view.status().ToString().c_str());
    return 1;
  }
  const bundle::ConfigImage& config = view->config();
  std::printf("%s: v%u region bundle, %llu bytes mapped\n", path.c_str(),
              bundle::kVersion,
              static_cast<unsigned long long>(view->bytes_mapped()));
  std::printf("  region: [%.4f, %.4f] x [%.4f, %.4f], eps=%.3f, g=%u, "
              "rho=%.2f, prior %ux%u, height %u\n",
              config.min_lat, config.max_lat, config.min_lon, config.max_lon,
              config.eps, config.granularity, config.rho,
              config.prior_granularity, config.prior_granularity,
              config.height);
  std::printf("  sections:\n");
  for (const bundle::SectionEntry& s : view->sections()) {
    std::printf("    %-8s id=%u offset=%-8llu size=%-10llu checksum=%016llx\n",
                SectionName(s.id), s.id,
                static_cast<unsigned long long>(s.offset),
                static_cast<unsigned long long>(s.size),
                static_cast<unsigned long long>(s.checksum));
  }
  std::printf("  budgets:");
  for (const double b : view->level_budgets()) std::printf(" %.4f", b);
  std::printf("\n  nodes: %llu solved mechanisms\n",
              static_cast<unsigned long long>(view->node_count()));
  uint64_t table_bytes = 0;
  for (size_t i = 0; i < view->node_count(); ++i) {
    table_bytes += view->node_entry(i).size;
  }
  std::printf("  node tables: %.1f KiB (zero-copy at serve time)\n",
              table_bytes / 1024.0);
  std::printf("  plan: %zu nodes, %zu child slots\n",
              view->plan().node_id.size(), view->plan().child_id.size());
  return 0;
}

int Verify(const std::string& path, bool deep) {
  auto view = bundle::RegionBundleView::Open(path, /*verify_checksums=*/true);
  if (!view.ok()) {
    std::fprintf(stderr, "verify: %s\n", view.status().ToString().c_str());
    return 1;
  }
  if (auto s = view->VerifyChecksums(); !s.ok()) {
    std::fprintf(stderr, "verify: %s\n", s.ToString().c_str());
    return 1;
  }
  std::printf("%s: header, TOC, and %zu section checksums OK\n", path.c_str(),
              view->sections().size());
  if (!deep) return 0;

  // Deep check: rehydrate the full serving stack and draw reports.
  auto loaded = bundle::LoadRegion(view.value());
  if (!loaded.ok()) {
    std::fprintf(stderr, "load: %s\n", loaded.status().ToString().c_str());
    return 1;
  }
  const bundle::ConfigImage& config = view->config();
  rng::Rng rng(1);
  for (int i = 0; i < 32; ++i) {
    const double lat = config.min_lat +
                       (config.max_lat - config.min_lat) * (i % 8) / 8.0;
    const double lon = config.min_lon +
                       (config.max_lon - config.min_lon) * (i % 5) / 5.0;
    auto out = loaded->sanitizer.SanitizeLatLonOrStatus(lat, lon, rng);
    if (!out.ok()) {
      std::fprintf(stderr, "serve: %s\n", out.status().ToString().c_str());
      return 1;
    }
  }
  std::printf("deep: %llu mechanisms rehydrated, %llu-node plan warm, "
              "32 reports served, %lld LP solves (load %.1f ms)\n",
              static_cast<unsigned long long>(loaded->nodes_loaded),
              static_cast<unsigned long long>(loaded->plan_nodes),
              static_cast<long long>(
                  loaded->sanitizer.mechanism().stats().lp_solves),
              loaded->load_seconds * 1e3);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 3) return Usage();
  const std::string command = argv[1];
  const std::string path = argv[2];
  if (command == "build") return Build(path, argc - 3, argv + 3);
  if (command == "inspect") return Inspect(path);
  if (command == "verify") {
    const bool deep = argc > 3 && std::strcmp(argv[3], "--deep") == 0;
    return Verify(path, deep);
  }
  return Usage();
}
