#include "base/thread_pool.h"

#include <atomic>
#include <chrono>
#include <set>
#include <vector>

#include <gtest/gtest.h>

namespace geopriv {
namespace {

TEST(BoundedQueueTest, FifoWithinCapacity) {
  BoundedQueue<int> q(4);
  EXPECT_TRUE(q.TryPush(1));
  EXPECT_TRUE(q.TryPush(2));
  EXPECT_TRUE(q.TryPush(3));
  int v = 0;
  EXPECT_TRUE(q.Pop(&v));
  EXPECT_EQ(v, 1);
  EXPECT_TRUE(q.Pop(&v));
  EXPECT_EQ(v, 2);
  EXPECT_EQ(q.size(), 1u);
}

TEST(BoundedQueueTest, TryPushFailsWhenFull) {
  BoundedQueue<int> q(2);
  EXPECT_TRUE(q.TryPush(1));
  EXPECT_TRUE(q.TryPush(2));
  EXPECT_FALSE(q.TryPush(3));  // full: admission control kicks in
  int v = 0;
  EXPECT_TRUE(q.Pop(&v));
  EXPECT_TRUE(q.TryPush(3));  // space again
}

TEST(BoundedQueueTest, CloseDrainsRemainingItems) {
  BoundedQueue<int> q(4);
  EXPECT_TRUE(q.TryPush(7));
  q.Close();
  EXPECT_FALSE(q.TryPush(8));  // closed: rejected
  int v = 0;
  EXPECT_TRUE(q.Pop(&v));  // ... but existing items drain
  EXPECT_EQ(v, 7);
  EXPECT_FALSE(q.Pop(&v));  // closed and empty
}

TEST(ThreadPoolTest, RunsEveryTask) {
  std::atomic<int> count{0};
  {
    ThreadPool pool(4, 64);
    for (int i = 0; i < 200; ++i) {
      EXPECT_TRUE(pool.Submit([&count](int) { ++count; }));
    }
  }  // destructor drains and joins
  EXPECT_EQ(count.load(), 200);
}

TEST(ThreadPoolTest, WorkerIdsAreStableAndInRange) {
  std::mutex mu;
  std::set<int> seen;
  {
    ThreadPool pool(3, 64);
    for (int i = 0; i < 100; ++i) {
      pool.Submit([&](int worker_id) {
        std::lock_guard<std::mutex> lock(mu);
        seen.insert(worker_id);
      });
    }
  }
  ASSERT_FALSE(seen.empty());
  EXPECT_GE(*seen.begin(), 0);
  EXPECT_LT(*seen.rbegin(), 3);
}

TEST(ThreadPoolTest, TrySubmitAppliesBackpressure) {
  // One worker blocked on a gate + a full queue => TrySubmit must fail.
  std::mutex mu;
  std::condition_variable cv;
  bool release = false;

  ThreadPool pool(1, 2);
  pool.Submit([&](int) {
    std::unique_lock<std::mutex> lock(mu);
    cv.wait(lock, [&] { return release; });
  });
  // Wait until the worker has dequeued the gate task, then fill the queue.
  while (pool.queue_depth() > 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_TRUE(pool.TrySubmit([](int) {}));
  EXPECT_TRUE(pool.TrySubmit([](int) {}));
  EXPECT_FALSE(pool.TrySubmit([](int) {}));  // queue full
  {
    std::lock_guard<std::mutex> lock(mu);
    release = true;
  }
  cv.notify_all();
  pool.Shutdown();
}

TEST(ThreadPoolTest, SubmitAfterShutdownFails) {
  ThreadPool pool(2, 8);
  pool.Shutdown();
  EXPECT_FALSE(pool.Submit([](int) {}));
  EXPECT_FALSE(pool.TrySubmit([](int) {}));
}

TEST(ThreadPoolTest, ConcurrentProducers) {
  std::atomic<int> count{0};
  ThreadPool pool(4, 32);
  std::vector<std::thread> producers;
  for (int p = 0; p < 4; ++p) {
    producers.emplace_back([&] {
      for (int i = 0; i < 100; ++i) {
        pool.Submit([&count](int) { ++count; });
      }
    });
  }
  for (auto& t : producers) t.join();
  pool.Shutdown();
  EXPECT_EQ(count.load(), 400);
}

}  // namespace
}  // namespace geopriv
