#include "base/thread_pool.h"

#include <atomic>
#include <chrono>
#include <set>
#include <vector>

#include <gtest/gtest.h>

#include "base/parallel_for.h"

namespace geopriv {
namespace {

TEST(BoundedQueueTest, FifoWithinCapacity) {
  BoundedQueue<int> q(4);
  EXPECT_TRUE(q.TryPush(1));
  EXPECT_TRUE(q.TryPush(2));
  EXPECT_TRUE(q.TryPush(3));
  int v = 0;
  EXPECT_TRUE(q.Pop(&v));
  EXPECT_EQ(v, 1);
  EXPECT_TRUE(q.Pop(&v));
  EXPECT_EQ(v, 2);
  EXPECT_EQ(q.size(), 1u);
}

TEST(BoundedQueueTest, TryPushFailsWhenFull) {
  BoundedQueue<int> q(2);
  EXPECT_TRUE(q.TryPush(1));
  EXPECT_TRUE(q.TryPush(2));
  EXPECT_FALSE(q.TryPush(3));  // full: admission control kicks in
  int v = 0;
  EXPECT_TRUE(q.Pop(&v));
  EXPECT_TRUE(q.TryPush(3));  // space again
}

TEST(BoundedQueueTest, CloseDrainsRemainingItems) {
  BoundedQueue<int> q(4);
  EXPECT_TRUE(q.TryPush(7));
  q.Close();
  EXPECT_FALSE(q.TryPush(8));  // closed: rejected
  int v = 0;
  EXPECT_TRUE(q.Pop(&v));  // ... but existing items drain
  EXPECT_EQ(v, 7);
  EXPECT_FALSE(q.Pop(&v));  // closed and empty
}

TEST(ThreadPoolTest, RunsEveryTask) {
  std::atomic<int> count{0};
  {
    ThreadPool pool(4, 64);
    for (int i = 0; i < 200; ++i) {
      EXPECT_TRUE(pool.Submit([&count](int) { ++count; }));
    }
  }  // destructor drains and joins
  EXPECT_EQ(count.load(), 200);
}

TEST(ThreadPoolTest, WorkerIdsAreStableAndInRange) {
  std::mutex mu;
  std::set<int> seen;
  {
    ThreadPool pool(3, 64);
    for (int i = 0; i < 100; ++i) {
      pool.Submit([&](int worker_id) {
        std::lock_guard<std::mutex> lock(mu);
        seen.insert(worker_id);
      });
    }
  }
  ASSERT_FALSE(seen.empty());
  EXPECT_GE(*seen.begin(), 0);
  EXPECT_LT(*seen.rbegin(), 3);
}

TEST(ThreadPoolTest, TrySubmitAppliesBackpressure) {
  // One worker blocked on a gate + a full queue => TrySubmit must fail.
  std::mutex mu;
  std::condition_variable cv;
  bool release = false;

  ThreadPool pool(1, 2);
  pool.Submit([&](int) {
    std::unique_lock<std::mutex> lock(mu);
    cv.wait(lock, [&] { return release; });
  });
  // Wait until the worker has dequeued the gate task, then fill the queue.
  while (pool.queue_depth() > 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_TRUE(pool.TrySubmit([](int) {}));
  EXPECT_TRUE(pool.TrySubmit([](int) {}));
  EXPECT_FALSE(pool.TrySubmit([](int) {}));  // queue full
  {
    std::lock_guard<std::mutex> lock(mu);
    release = true;
  }
  cv.notify_all();
  pool.Shutdown();
}

TEST(ThreadPoolTest, SubmitAfterShutdownFails) {
  ThreadPool pool(2, 8);
  pool.Shutdown();
  EXPECT_FALSE(pool.Submit([](int) {}));
  EXPECT_FALSE(pool.TrySubmit([](int) {}));
}

TEST(ThreadPoolTest, ConcurrentProducers) {
  std::atomic<int> count{0};
  ThreadPool pool(4, 32);
  std::vector<std::thread> producers;
  for (int p = 0; p < 4; ++p) {
    producers.emplace_back([&] {
      for (int i = 0; i < 100; ++i) {
        pool.Submit([&count](int) { ++count; });
      }
    });
  }
  for (auto& t : producers) t.join();
  pool.Shutdown();
  EXPECT_EQ(count.load(), 400);
}

TEST(ParallelChunksTest, RunsEveryChunkExactlyOnce) {
  ThreadPool pool(4, 64);
  constexpr int kChunks = 97;
  std::vector<std::atomic<int>> hits(kChunks);
  ParallelChunks(&pool, 8, kChunks,
                 [&](int c) { hits[static_cast<size_t>(c)].fetch_add(1); });
  for (int c = 0; c < kChunks; ++c) {
    EXPECT_EQ(hits[static_cast<size_t>(c)].load(), 1) << "chunk " << c;
  }
  pool.Shutdown();
}

TEST(ParallelChunksTest, NullPoolRunsSeriallyInOrder) {
  std::vector<int> order;
  ParallelChunks(nullptr, 8, 10, [&](int c) { order.push_back(c); });
  ASSERT_EQ(order.size(), 10u);
  for (int c = 0; c < 10; ++c) EXPECT_EQ(order[static_cast<size_t>(c)], c);
}

TEST(ParallelChunksTest, SafeFromPoolWorker) {
  // A nested ParallelChunks issued from one of the pool's own workers must
  // not deadlock: helpers are recruited non-blockingly and the issuing
  // worker claims whatever nobody picks up.
  ThreadPool pool(2, 4);
  std::atomic<int> inner_hits{0};
  std::atomic<bool> done{false};
  pool.Submit([&](int) {
    ParallelChunks(&pool, 4, 16, [&](int) { inner_hits.fetch_add(1); });
    done.store(true);
  });
  while (!done.load()) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_EQ(inner_hits.load(), 16);
  pool.Shutdown();
}

TEST(ParallelChunksTest, ShutDownPoolFallsBackToCaller) {
  ThreadPool pool(2, 4);
  pool.Shutdown();
  std::atomic<int> hits{0};
  ParallelChunks(&pool, 4, 8, [&](int) { hits.fetch_add(1); });
  EXPECT_EQ(hits.load(), 8);
}

TEST(ParallelChunksTest, EffectiveParallelismResolution) {
  EXPECT_EQ(EffectiveParallelism(nullptr, 0), 1);
  EXPECT_EQ(EffectiveParallelism(nullptr, 7), 7);
  ThreadPool pool(3, 8);
  EXPECT_EQ(EffectiveParallelism(&pool, 0), 4);  // workers + caller
  EXPECT_EQ(EffectiveParallelism(&pool, 2), 2);
  pool.Shutdown();
}

}  // namespace
}  // namespace geopriv
