// Property tests of the central privacy invariant: every mechanism this
// library produces must satisfy eps-GeoInd. OPT matrices are audited
// exactly over all n^3 constraints across a parameter grid; the planar
// Laplace density ratio is checked analytically; MSM's composition is
// checked structurally (per-level budgets sum to eps and every per-node
// matrix passes its own audit).

#include <cmath>
#include <memory>
#include <tuple>

#include <gtest/gtest.h>

#include "base/thread_pool.h"
#include "core/msm.h"
#include "geo/distance.h"
#include "mechanisms/exponential.h"
#include "mechanisms/optimal.h"
#include "prior/prior.h"
#include "rng/rng.h"
#include "spatial/grid.h"
#include "spatial/hierarchical_grid.h"

namespace geopriv {
namespace {

using geo::BBox;
using geo::Point;
using geo::UtilityMetric;

constexpr BBox kDomain{0.0, 0.0, 20.0, 20.0};

enum class PriorKind { kUniform, kSkewed, kSpiked };

std::vector<double> MakePrior(PriorKind kind, int n, rng::Rng& rng) {
  std::vector<double> prior(n, 1.0);
  switch (kind) {
    case PriorKind::kUniform:
      break;
    case PriorKind::kSkewed:
      for (int i = 0; i < n; ++i) prior[i] = 1.0 / (1.0 + i);
      break;
    case PriorKind::kSpiked:
      // Nearly all mass on one random cell, a sprinkle elsewhere.
      for (int i = 0; i < n; ++i) prior[i] = 1e-4;
      prior[rng.UniformInt(n)] = 1.0;
      break;
  }
  return prior;
}

class OptGeoIndSweep
    : public ::testing::TestWithParam<
          std::tuple<double, int, UtilityMetric, PriorKind>> {};

TEST_P(OptGeoIndSweep, MatrixSatisfiesAllConstraints) {
  const auto [eps, g, metric, prior_kind] = GetParam();
  rng::Rng rng(g * 100 + static_cast<int>(prior_kind));
  spatial::UniformGrid grid(kDomain, g);
  auto opt = mechanisms::OptimalMechanism::Create(
      eps, grid.AllCenters(), MakePrior(prior_kind, g * g, rng), metric);
  ASSERT_TRUE(opt.ok()) << opt.status();
  // Exact audit of every GeoInd constraint.
  EXPECT_LE(opt->MaxGeoIndViolation(), 1e-6);
  // Rows stochastic.
  for (int x = 0; x < g * g; ++x) {
    double sum = 0.0;
    for (int z = 0; z < g * g; ++z) sum += opt->K(x, z);
    EXPECT_NEAR(sum, 1.0, 1e-9) << "row " << x;
  }
  // Objective is a valid expectation: nonnegative and no larger than the
  // domain diameter (squared).
  const double diameter = geo::UtilityLoss(
      metric, {kDomain.min_x, kDomain.min_y}, {kDomain.max_x, kDomain.max_y});
  EXPECT_GE(opt->ExpectedLoss(), 0.0);
  EXPECT_LE(opt->ExpectedLoss(), diameter);
}

INSTANTIATE_TEST_SUITE_P(
    Grid, OptGeoIndSweep,
    ::testing::Combine(::testing::Values(0.1, 0.5, 1.5),
                       ::testing::Values(2, 3, 4),
                       ::testing::Values(UtilityMetric::kEuclidean,
                                         UtilityMetric::kSquaredEuclidean),
                       ::testing::Values(PriorKind::kUniform,
                                         PriorKind::kSkewed,
                                         PriorKind::kSpiked)));

TEST(ParallelOptGeoIndTest, ParallelBuiltMatrixSatisfiesAllConstraints) {
  // The privacy invariant must survive the parallel construction pipeline
  // too: audit a matrix built with pricing fanned out across a pool.
  ThreadPool pool(4, 64);
  rng::Rng rng(29);
  const int g = 4;
  spatial::UniformGrid grid(kDomain, g);
  mechanisms::OptimalMechanismOptions options;
  options.pricing_pool = &pool;
  options.pricing_threads = 4;
  auto opt = mechanisms::OptimalMechanism::Create(
      0.5, grid.AllCenters(), MakePrior(PriorKind::kSkewed, g * g, rng),
      UtilityMetric::kEuclidean, options);
  ASSERT_TRUE(opt.ok()) << opt.status();
  EXPECT_LE(opt->MaxGeoIndViolation(), 1e-6);
  for (int x = 0; x < g * g; ++x) {
    double sum = 0.0;
    for (int z = 0; z < g * g; ++z) sum += opt->K(x, z);
    EXPECT_NEAR(sum, 1.0, 1e-9) << "row " << x;
  }
  pool.Shutdown();
}

TEST(PlanarLaplaceDensityTest, RatioBoundHoldsAnalytically) {
  // The PL density is (eps^2/2pi) e^{-eps d(x,z)}; for any x, x', z the
  // ratio is e^{eps (d(x',z) - d(x,z))} <= e^{eps d(x,x')} by the triangle
  // inequality. Verify on a grid of concrete triples.
  const double eps = 0.7;
  rng::Rng rng(5);
  for (int trial = 0; trial < 2000; ++trial) {
    const Point x{rng.Uniform(0, 20), rng.Uniform(0, 20)};
    const Point xp{rng.Uniform(0, 20), rng.Uniform(0, 20)};
    const Point z{rng.Uniform(0, 20), rng.Uniform(0, 20)};
    const double log_ratio =
        eps * (geo::Euclidean(xp, z) - geo::Euclidean(x, z));
    EXPECT_LE(log_ratio, eps * geo::Euclidean(x, xp) + 1e-12);
  }
}

class MsmCompositionSweep
    : public ::testing::TestWithParam<std::tuple<double, int, double>> {};

TEST_P(MsmCompositionSweep, BudgetsComposeAndNodesAudit) {
  const auto [eps, g, rho] = GetParam();
  rng::Rng rng(11);
  std::vector<Point> pts;
  for (int i = 0; i < 4000; ++i) {
    pts.push_back({std::clamp(rng.Gaussian(8.0, 2.0), 0.0, 20.0),
                   std::clamp(rng.Gaussian(11.0, 2.5), 0.0, 20.0)});
  }
  auto prior = std::make_shared<prior::Prior>(
      prior::Prior::FromPoints(kDomain, 32, pts).value());
  auto grid = spatial::HierarchicalGrid::Create(kDomain, g, 3);
  ASSERT_TRUE(grid.ok());
  auto index =
      std::make_shared<spatial::HierarchicalGrid>(std::move(grid).value());
  core::MsmOptions options;
  options.budget.rho = rho;
  auto msm = core::MultiStepMechanism::Create(eps, index, prior, options);
  ASSERT_TRUE(msm.ok());
  // Composition: per-level budgets are positive and sum to eps exactly.
  double total = 0.0;
  for (double b : msm->budget().per_level) {
    EXPECT_GT(b, 0.0);
    total += b;
  }
  EXPECT_NEAR(total, eps, 1e-9);
  // Per-node audit along a random root-to-leaf walk.
  spatial::NodeIndex node = spatial::HierarchicalPartition::kRoot;
  for (int level = 1; level <= msm->height(); ++level) {
    if (index->IsLeaf(node)) break;
    auto mech = msm->NodeMechanism(node, level);
    ASSERT_TRUE(mech.ok());
    EXPECT_LE((*mech)->MaxGeoIndViolation(), 1e-6)
        << "level " << level << " node " << node;
    const auto children = index->Children(node);
    node = children[rng.UniformInt(children.size())].id;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Budgets, MsmCompositionSweep,
    ::testing::Combine(::testing::Values(0.2, 0.5, 1.0),
                       ::testing::Values(2, 3),
                       ::testing::Values(0.6, 0.8)));

TEST(ExponentialGeoIndTest, AuditAcrossBudgets) {
  for (double eps : {0.1, 0.5, 2.0}) {
    const int g = 4;
    spatial::UniformGrid grid(kDomain, g);
    const auto locs = grid.AllCenters();
    auto mech = mechanisms::DiscreteExponential::Create(eps, locs);
    ASSERT_TRUE(mech.ok());
    double worst = 0.0;
    for (int x = 0; x < g * g; ++x) {
      for (int xp = 0; xp < g * g; ++xp) {
        if (x == xp) continue;
        const double bound =
            std::exp(eps * geo::Euclidean(locs[x], locs[xp]));
        for (int z = 0; z < g * g; ++z) {
          worst = std::max(worst, mech->K(x, z) - bound * mech->K(xp, z));
        }
      }
    }
    EXPECT_LE(worst, 1e-9) << "eps=" << eps;
  }
}

}  // namespace
}  // namespace geopriv
