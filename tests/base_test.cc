#include <gtest/gtest.h>

#include "base/status.h"
#include "base/stopwatch.h"

namespace geopriv {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "Ok");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::InvalidArgument("bad input");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(s.message(), "bad input");
  EXPECT_EQ(s.ToString(), "InvalidArgument: bad input");
}

TEST(StatusTest, AllFactoryCodesRoundTrip) {
  EXPECT_EQ(Status::FailedPrecondition("").code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(Status::OutOfRange("").code(), StatusCode::kOutOfRange);
  EXPECT_EQ(Status::NotFound("").code(), StatusCode::kNotFound);
  EXPECT_EQ(Status::ResourceExhausted("").code(),
            StatusCode::kResourceExhausted);
  EXPECT_EQ(Status::DeadlineExceeded("").code(),
            StatusCode::kDeadlineExceeded);
  EXPECT_EQ(Status::Internal("").code(), StatusCode::kInternal);
  EXPECT_EQ(Status::Unimplemented("").code(), StatusCode::kUnimplemented);
  EXPECT_EQ(Status::IoError("").code(), StatusCode::kIoError);
}

TEST(StatusOrTest, HoldsValue) {
  StatusOr<int> v = 42;
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(v.value(), 42);
  EXPECT_EQ(*v, 42);
  EXPECT_TRUE(v.status().ok());
}

TEST(StatusOrTest, HoldsError) {
  StatusOr<int> v = Status::NotFound("missing");
  ASSERT_FALSE(v.ok());
  EXPECT_EQ(v.status().code(), StatusCode::kNotFound);
}

StatusOr<int> Half(int x) {
  if (x % 2 != 0) return Status::InvalidArgument("odd");
  return x / 2;
}

Status UseHalf(int x, int* out) {
  GEOPRIV_ASSIGN_OR_RETURN(*out, Half(x));
  return Status::OK();
}

TEST(StatusOrTest, AssignOrReturnPropagates) {
  int out = 0;
  EXPECT_TRUE(UseHalf(8, &out).ok());
  EXPECT_EQ(out, 4);
  Status s = UseHalf(7, &out);
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
}

TEST(StatusOrTest, MoveOnlyValue) {
  StatusOr<std::unique_ptr<int>> v = std::make_unique<int>(5);
  ASSERT_TRUE(v.ok());
  std::unique_ptr<int> p = std::move(v).value();
  EXPECT_EQ(*p, 5);
}

TEST(StopwatchTest, MeasuresElapsedTime) {
  Stopwatch sw;
  double t0 = sw.ElapsedSeconds();
  EXPECT_GE(t0, 0.0);
  // Busy-wait a tiny amount; elapsed must be monotone.
  volatile double x = 0;
  for (int i = 0; i < 100000; ++i) x += i;
  EXPECT_GE(sw.ElapsedSeconds(), t0);
  sw.Reset();
  EXPECT_LT(sw.ElapsedSeconds(), 1.0);
}

}  // namespace
}  // namespace geopriv
