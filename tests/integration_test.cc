// Cross-module integration tests: the paper's qualitative claims, verified
// end-to-end on synthetic workloads (small request counts keep them fast;
// the bench binaries run the full-scale versions).

#include <memory>

#include <gtest/gtest.h>

#include "core/msm.h"
#include "data/synthetic.h"
#include "eval/evaluation.h"
#include "mechanisms/exponential.h"
#include "mechanisms/optimal.h"
#include "mechanisms/planar_laplace.h"
#include "prior/prior.h"
#include "spatial/hierarchical_grid.h"

namespace geopriv {
namespace {

struct City {
  data::Dataset dataset;
  std::shared_ptr<prior::Prior> prior;
};

const City& TestCity() {
  static const City* city = [] {
    data::SyntheticCityConfig config = data::GowallaAustinLikeConfig();
    config.num_checkins = 30000;  // smaller, same skew
    auto dataset = data::GenerateSyntheticCity(config);
    GEOPRIV_CHECK_OK(dataset.status());
    auto prior =
        prior::Prior::FromPoints(dataset->domain, 64, dataset->points);
    GEOPRIV_CHECK_OK(prior.status());
    return new City{std::move(dataset).value(),
                    std::make_shared<prior::Prior>(
                        std::move(prior).value())};
  }();
  return *city;
}

std::unique_ptr<core::MultiStepMechanism> MakeMsm(
    double eps, int g, int height, double rho = 0.8,
    core::BudgetPolicy policy = core::BudgetPolicy::kRhoMinimal) {
  auto grid = spatial::HierarchicalGrid::Create(TestCity().dataset.domain, g,
                                                height);
  GEOPRIV_CHECK_OK(grid.status());
  core::MsmOptions options;
  options.budget.rho = rho;
  options.budget.policy = policy;
  if (policy != core::BudgetPolicy::kRhoMinimal) {
    options.budget.fixed_height = height;
  }
  auto msm = core::MultiStepMechanism::Create(
      eps,
      std::make_shared<spatial::HierarchicalGrid>(std::move(grid).value()),
      TestCity().prior, options);
  GEOPRIV_CHECK_OK(msm.status());
  return std::make_unique<core::MultiStepMechanism>(std::move(msm).value());
}

// The paper's headline: MSM beats PL (remapped to the matching grid) on
// skewed check-in data, with the largest margin at tight budgets.
class MsmVsPlTest : public ::testing::TestWithParam<double> {};

TEST_P(MsmVsPlTest, MsmBeatsPlanarLaplace) {
  const double eps = GetParam();
  const City& city = TestCity();
  auto msm = MakeMsm(eps, 4, 3);
  const int effective = 1 << (2 * msm->height());  // 4^height
  auto pl = mechanisms::PlanarLaplaceOnGrid::Create(
      eps, spatial::UniformGrid(city.dataset.domain, effective));
  ASSERT_TRUE(pl.ok());
  eval::EvalOptions options;
  options.num_requests = 800;
  auto msm_result =
      eval::EvaluateMechanism(*msm, city.dataset.points, options);
  auto pl_result =
      eval::EvaluateMechanism(*pl, city.dataset.points, options);
  ASSERT_TRUE(msm_result.ok());
  ASSERT_TRUE(pl_result.ok());
  EXPECT_LT(msm_result->mean_loss, pl_result->mean_loss)
      << "eps=" << eps;
}

INSTANTIATE_TEST_SUITE_P(Budgets, MsmVsPlTest,
                         ::testing::Values(0.1, 0.3, 0.5));

TEST(IntegrationTest, MsmGapOverPlGrowsAsBudgetTightens) {
  const City& city = TestCity();
  eval::EvalOptions options;
  options.num_requests = 800;
  double ratio_tight, ratio_loose;
  for (double eps : {0.1, 0.9}) {
    auto msm = MakeMsm(eps, 4, 3);
    auto pl = mechanisms::PlanarLaplace::Create(eps);
    ASSERT_TRUE(pl.ok());
    auto msm_result =
        eval::EvaluateMechanism(*msm, city.dataset.points, options);
    auto pl_result =
        eval::EvaluateMechanism(*pl, city.dataset.points, options);
    ASSERT_TRUE(msm_result.ok());
    ASSERT_TRUE(pl_result.ok());
    const double ratio = pl_result->mean_loss / msm_result->mean_loss;
    (eps == 0.1 ? ratio_tight : ratio_loose) = ratio;
  }
  // Paper: ~3x at eps=0.1, near parity at eps=0.9.
  EXPECT_GT(ratio_tight, ratio_loose);
  EXPECT_GT(ratio_tight, 1.5);
}

TEST(IntegrationTest, OptNeverWorseThanPlOnTheSameGrid) {
  // PL-on-grid induces a GeoInd-feasible transition matrix over the cells,
  // so OPT's optimal expected loss must be at most PL's measured
  // cell-to-cell loss.
  const City& city = TestCity();
  const int g = 5;
  spatial::UniformGrid grid(city.dataset.domain, g);
  const auto cell_prior = city.prior->OnGrid(grid);
  const double eps = 0.4;
  auto opt = mechanisms::OptimalMechanism::Create(
      eps, grid.AllCenters(), cell_prior, geo::UtilityMetric::kEuclidean);
  ASSERT_TRUE(opt.ok());
  auto pl = mechanisms::PlanarLaplaceOnGrid::Create(eps, grid);
  ASSERT_TRUE(pl.ok());
  // Measure PL cell-to-cell: actual = cell center drawn from the prior.
  rng::Rng rng(5);
  double pl_loss = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    double u = rng.Uniform();
    int x = 0;
    while (x < g * g - 1 && u > cell_prior[x]) {
      u -= cell_prior[x];
      ++x;
    }
    const geo::Point actual = grid.CenterOf(x);
    pl_loss += geo::Euclidean(actual, pl->Report(actual, rng));
  }
  pl_loss /= n;
  EXPECT_LE(opt->ExpectedLoss(), pl_loss * 1.05);  // 5% sampling slack
}

TEST(IntegrationTest, MsmUtilityTracksEffectiveGranularity) {
  // With a generous, uniformly split budget, deeper indexes (finer leaves)
  // give lower loss: the shallow mechanism is bounded below by the
  // coarse-cell snapping error. (Under Algorithm 2 this need not hold —
  // level 1 keeps a fixed hop rate rho regardless of the surplus.)
  const City& city = TestCity();
  eval::EvalOptions options;
  options.num_requests = 600;
  auto shallow = MakeMsm(6.0, 4, 1, 0.8, core::BudgetPolicy::kUniform);
  auto deep = MakeMsm(6.0, 4, 2, 0.8, core::BudgetPolicy::kUniform);
  auto shallow_result =
      eval::EvaluateMechanism(*shallow, city.dataset.points, options);
  auto deep_result =
      eval::EvaluateMechanism(*deep, city.dataset.points, options);
  ASSERT_TRUE(shallow_result.ok());
  ASSERT_TRUE(deep_result.ok());
  EXPECT_GT(deep->height(), shallow->height());
  EXPECT_LT(deep_result->mean_loss, shallow_result->mean_loss);
}

TEST(IntegrationTest, ExponentialMechanismSitsBetweenPlAndOpt) {
  const City& city = TestCity();
  const int g = 4;
  spatial::UniformGrid grid(city.dataset.domain, g);
  const double eps = 0.3;
  auto opt = mechanisms::OptimalMechanism::Create(
      eps, grid.AllCenters(), city.prior->OnGrid(grid),
      geo::UtilityMetric::kEuclidean);
  ASSERT_TRUE(opt.ok());
  auto exp_mech =
      mechanisms::DiscreteExponential::Create(eps, grid.AllCenters());
  ASSERT_TRUE(exp_mech.ok());
  eval::EvalOptions options;
  options.num_requests = 2000;
  auto opt_result =
      eval::EvaluateMechanism(*opt, city.dataset.points, options);
  auto exp_result =
      eval::EvaluateMechanism(*exp_mech, city.dataset.points, options);
  ASSERT_TRUE(opt_result.ok());
  ASSERT_TRUE(exp_result.ok());
  // OPT exploits the prior; the prior-free exponential mechanism cannot.
  EXPECT_LT(opt_result->mean_loss, exp_result->mean_loss * 1.02);
}

}  // namespace
}  // namespace geopriv
