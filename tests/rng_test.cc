#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "rng/alias_sampler.h"
#include "rng/rng.h"
#include "rng/zipf.h"

namespace geopriv::rng {
namespace {

TEST(RngTest, DeterministicGivenSeed) {
  Rng a(123), b(123), c(456);
  EXPECT_EQ(a.UniformInt(1000000), b.UniformInt(1000000));
  const double ua = a.Uniform();
  const double ub = b.Uniform();
  EXPECT_EQ(ua, ub);
  // A different seed should (overwhelmingly) diverge.
  EXPECT_NE(ua, c.Uniform());
}

TEST(RngTest, UniformInRange) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.Uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
    const double v = rng.Uniform(-3.0, 5.0);
    EXPECT_GE(v, -3.0);
    EXPECT_LT(v, 5.0);
  }
}

TEST(RngTest, UniformIntCoversRange) {
  Rng rng(7);
  std::vector<int> counts(10, 0);
  for (int i = 0; i < 100000; ++i) {
    ++counts[rng.UniformInt(10)];
  }
  for (int c : counts) {
    EXPECT_NEAR(c, 10000, 600);  // ~6 sigma
  }
}

TEST(RngTest, GaussianMoments) {
  Rng rng(11);
  double sum = 0.0, sum_sq = 0.0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) {
    const double g = rng.Gaussian();
    sum += g;
    sum_sq += g * g;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.02);
  EXPECT_NEAR(sum_sq / n, 1.0, 0.03);
}

TEST(AliasSamplerTest, RejectsBadWeights) {
  EXPECT_FALSE(AliasSampler::Create({}).ok());
  EXPECT_FALSE(AliasSampler::Create({0.0, 0.0}).ok());
  EXPECT_FALSE(AliasSampler::Create({1.0, -0.5}).ok());
  EXPECT_FALSE(AliasSampler::Create({1.0, std::nan("")}).ok());
}

TEST(AliasSamplerTest, SingleOutcome) {
  auto s = AliasSampler::Create({3.0});
  ASSERT_TRUE(s.ok());
  Rng rng(1);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(s->Sample(rng), 0u);
}

TEST(AliasSamplerTest, NormalizedProbabilities) {
  auto s = AliasSampler::Create({1.0, 2.0, 3.0, 4.0});
  ASSERT_TRUE(s.ok());
  EXPECT_DOUBLE_EQ(s->probability(0), 0.1);
  EXPECT_DOUBLE_EQ(s->probability(3), 0.4);
}

TEST(AliasSamplerTest, EmpiricalFrequenciesMatchWeights) {
  const std::vector<double> weights = {0.5, 0.0, 2.0, 1.5, 4.0, 0.25};
  auto s = AliasSampler::Create(weights);
  ASSERT_TRUE(s.ok());
  Rng rng(42);
  const int n = 500000;
  std::vector<int> counts(weights.size(), 0);
  for (int i = 0; i < n; ++i) ++counts[s->Sample(rng)];
  double total = 0.0;
  for (double w : weights) total += w;
  for (size_t i = 0; i < weights.size(); ++i) {
    const double expected = n * weights[i] / total;
    EXPECT_NEAR(counts[i], expected, 5.0 * std::sqrt(expected + 1.0) + 5.0)
        << "outcome " << i;
  }
  EXPECT_EQ(counts[1], 0) << "zero-weight outcome must never be drawn";
}

TEST(AliasSamplerTest, AgreesWithLinearReference) {
  const std::vector<double> weights = {1.0, 3.0, 2.0, 4.0};
  auto s = AliasSampler::Create(weights);
  ASSERT_TRUE(s.ok());
  Rng r1(9), r2(9);
  std::vector<int> alias_counts(4, 0), linear_counts(4, 0);
  const int n = 300000;
  for (int i = 0; i < n; ++i) {
    ++alias_counts[s->Sample(r1)];
    ++linear_counts[SampleLinear(weights, 10.0, r2)];
  }
  for (int i = 0; i < 4; ++i) {
    EXPECT_NEAR(alias_counts[i], linear_counts[i], 2500) << i;
  }
}

TEST(ZipfTest, RejectsBadArguments) {
  EXPECT_FALSE(ZipfSampler::Create(0, 1.0).ok());
  EXPECT_FALSE(ZipfSampler::Create(10, -1.0).ok());
}

TEST(ZipfTest, ZeroExponentIsUniform) {
  auto z = ZipfSampler::Create(4, 0.0);
  ASSERT_TRUE(z.ok());
  for (size_t i = 0; i < 4; ++i) {
    EXPECT_DOUBLE_EQ(z->probability(i), 0.25);
  }
}

TEST(ZipfTest, ProbabilitiesFollowPowerLaw) {
  auto z = ZipfSampler::Create(100, 1.0);
  ASSERT_TRUE(z.ok());
  // P(rank 0) / P(rank 9) = 10 under s = 1.
  EXPECT_NEAR(z->probability(0) / z->probability(9), 10.0, 1e-9);
  double total = 0.0;
  for (size_t i = 0; i < 100; ++i) total += z->probability(i);
  EXPECT_NEAR(total, 1.0, 1e-12);
}

TEST(ZipfTest, HeadDominatesSamples) {
  auto z = ZipfSampler::Create(1000, 1.2);
  ASSERT_TRUE(z.ok());
  Rng rng(3);
  int head = 0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) {
    if (z->Sample(rng) < 10) ++head;
  }
  // With s=1.2 and n=1000 the top-10 ranks carry a large share of the mass.
  EXPECT_GT(head, n / 4);
}

}  // namespace
}  // namespace geopriv::rng
