#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "prior/prior.h"
#include "rng/rng.h"
#include "spatial/grid.h"

namespace geopriv::prior {
namespace {

using geo::BBox;
using geo::Point;

constexpr BBox kDomain{0.0, 0.0, 20.0, 20.0};

TEST(PriorTest, FromPointsValidation) {
  EXPECT_FALSE(Prior::FromPoints(kDomain, 0, {{1, 1}}).ok());
  EXPECT_FALSE(Prior::FromPoints({0, 0, 0, 0}, 4, {{1, 1}}).ok());
  EXPECT_FALSE(Prior::FromPoints(kDomain, 4, {}, 0.0).ok());
  EXPECT_FALSE(Prior::FromPoints(kDomain, 4, {{30, 30}}, 0.0).ok());
  EXPECT_TRUE(Prior::FromPoints(kDomain, 4, {}, 1.0).ok());
  EXPECT_FALSE(Prior::FromPoints(kDomain, 4, {{1, 1}}, -1.0).ok());
}

TEST(PriorTest, HistogramNormalizes) {
  auto prior = Prior::FromPoints(kDomain, 10, {{1, 1}, {1, 1}, {15, 15}});
  ASSERT_TRUE(prior.ok());
  double total = 0.0;
  for (int i = 0; i < prior->grid().num_cells(); ++i) {
    total += prior->mass(i);
  }
  EXPECT_NEAR(total, 1.0, 1e-12);
  EXPECT_NEAR(prior->mass(prior->grid().CellOf({1, 1})), 2.0 / 3.0, 1e-12);
}

TEST(PriorTest, OutsidePointsIgnored) {
  auto prior = Prior::FromPoints(kDomain, 4, {{1, 1}, {50, 50}});
  ASSERT_TRUE(prior.ok());
  EXPECT_NEAR(prior->mass(prior->grid().CellOf({1, 1})), 1.0, 1e-12);
}

TEST(PriorTest, UniformPrior) {
  Prior prior = Prior::Uniform(kDomain, 5);
  for (int i = 0; i < 25; ++i) {
    EXPECT_DOUBLE_EQ(prior.mass(i), 1.0 / 25.0);
  }
  EXPECT_NEAR(prior.MassIn({0, 0, 10, 10}), 0.25, 1e-12);
}

TEST(PriorTest, MassInWholeDomainIsOne) {
  rng::Rng rng(1);
  std::vector<Point> pts;
  for (int i = 0; i < 1000; ++i) {
    pts.push_back({rng.Uniform(0, 20), rng.Uniform(0, 20)});
  }
  auto prior = Prior::FromPoints(kDomain, 64, pts);
  ASSERT_TRUE(prior.ok());
  EXPECT_NEAR(prior->MassIn(kDomain), 1.0, 1e-9);
}

TEST(PriorTest, MassInAlignedBoxIsExact) {
  auto prior = Prior::FromPoints(kDomain, 4, {{2, 2}, {2, 2}, {18, 18}});
  ASSERT_TRUE(prior.ok());
  // Box equal to the fine cell containing (2,2): [0,5]x[0,5].
  EXPECT_NEAR(prior->MassIn({0, 0, 5, 5}), 2.0 / 3.0, 1e-12);
  EXPECT_NEAR(prior->MassIn({15, 15, 20, 20}), 1.0 / 3.0, 1e-12);
  EXPECT_NEAR(prior->MassIn({5, 5, 15, 15}), 0.0, 1e-12);
}

TEST(PriorTest, MassInUsesAreaWeightingForPartialOverlap) {
  Prior prior = Prior::Uniform(kDomain, 2);  // four cells, 0.25 each
  // A box covering exactly half of one 10x10 cell.
  EXPECT_NEAR(prior.MassIn({0, 0, 5, 10}), 0.125, 1e-12);
  // A centered box overlapping all four cells by a quarter each.
  EXPECT_NEAR(prior.MassIn({5, 5, 15, 15}), 0.25, 1e-12);
}

TEST(PriorTest, ConditionalNormalizesWithinRegion) {
  auto prior = Prior::FromPoints(kDomain, 8, {{1, 1}, {1, 1}, {4, 1}});
  ASSERT_TRUE(prior.ok());
  const std::vector<BBox> cells = {{0, 0, 2.5, 2.5}, {2.5, 0, 5, 2.5}};
  const auto cond = prior->ConditionalOn(cells);
  EXPECT_NEAR(cond[0], 2.0 / 3.0, 1e-12);
  EXPECT_NEAR(cond[1], 1.0 / 3.0, 1e-12);
}

TEST(PriorTest, ConditionalFallsBackToUniformOnZeroMass) {
  auto prior = Prior::FromPoints(kDomain, 8, {{1, 1}});
  ASSERT_TRUE(prior.ok());
  const std::vector<BBox> cells = {{10, 10, 15, 15}, {15, 10, 20, 15},
                                   {10, 15, 15, 20}};
  const auto cond = prior->ConditionalOn(cells);
  for (double c : cond) {
    EXPECT_NEAR(c, 1.0 / 3.0, 1e-12);
  }
}

TEST(PriorTest, OnGridAggregatesExactlyForNestedGranularity) {
  rng::Rng rng(2);
  std::vector<Point> pts;
  for (int i = 0; i < 5000; ++i) {
    pts.push_back({rng.Uniform(0, 20), rng.Uniform(0, 20)});
  }
  auto prior = Prior::FromPoints(kDomain, 16, pts);
  ASSERT_TRUE(prior.ok());
  spatial::UniformGrid coarse(kDomain, 4);  // 16 = 4 * 4: exact nesting
  const auto agg = prior->OnGrid(coarse);
  double total = 0.0;
  for (double a : agg) total += a;
  EXPECT_NEAR(total, 1.0, 1e-9);
  // Recount directly on the coarse grid.
  std::vector<int> counts(16, 0);
  for (const Point& p : pts) ++counts[coarse.CellOf(p)];
  for (int i = 0; i < 16; ++i) {
    EXPECT_NEAR(agg[i], counts[i] / 5000.0, 1e-9) << "cell " << i;
  }
}

TEST(PriorTest, SmoothingAddsFloorMass) {
  auto prior = Prior::FromPoints(kDomain, 2, {{1, 1}}, 1.0);
  ASSERT_TRUE(prior.ok());
  // Total weight = 1 point + 4 cells * 1.0 smoothing = 5.
  EXPECT_NEAR(prior->mass(prior->grid().CellOf({1, 1})), 2.0 / 5.0, 1e-12);
  EXPECT_NEAR(prior->mass(prior->grid().CellOf({15, 15})), 1.0 / 5.0, 1e-12);
}

}  // namespace
}  // namespace geopriv::prior
