#include <cmath>

#include <gtest/gtest.h>

#include "geo/distance.h"
#include "geo/point.h"
#include "geo/projection.h"

namespace geopriv::geo {
namespace {

TEST(PointTest, Arithmetic) {
  Point a{1.0, 2.0};
  Point b{3.0, -1.0};
  EXPECT_EQ(a + b, (Point{4.0, 1.0}));
  EXPECT_EQ(a - b, (Point{-2.0, 3.0}));
  EXPECT_EQ(2.0 * a, (Point{2.0, 4.0}));
}

TEST(DistanceTest, EuclideanBasics) {
  EXPECT_DOUBLE_EQ(Euclidean({0, 0}, {3, 4}), 5.0);
  EXPECT_DOUBLE_EQ(SquaredEuclidean({0, 0}, {3, 4}), 25.0);
  EXPECT_DOUBLE_EQ(Manhattan({0, 0}, {3, 4}), 7.0);
  EXPECT_DOUBLE_EQ(Euclidean({1, 1}, {1, 1}), 0.0);
}

TEST(DistanceTest, UtilityMetricDispatch) {
  Point a{0, 0}, b{3, 4};
  EXPECT_DOUBLE_EQ(UtilityLoss(UtilityMetric::kEuclidean, a, b), 5.0);
  EXPECT_DOUBLE_EQ(UtilityLoss(UtilityMetric::kSquaredEuclidean, a, b), 25.0);
}

TEST(BBoxTest, ContainsAndCenter) {
  BBox box{0, 0, 10, 20};
  EXPECT_TRUE(box.Contains({5, 5}));
  EXPECT_TRUE(box.Contains({0, 0}));
  EXPECT_TRUE(box.Contains({10, 20}));
  EXPECT_FALSE(box.Contains({10.01, 5}));
  EXPECT_EQ(box.Center(), (Point{5, 10}));
  EXPECT_DOUBLE_EQ(box.Area(), 200.0);
}

TEST(BBoxTest, IntersectsAndUnion) {
  BBox a{0, 0, 5, 5};
  BBox b{4, 4, 8, 8};
  BBox c{6, 6, 9, 9};
  EXPECT_TRUE(a.Intersects(b));
  EXPECT_FALSE(a.Intersects(c));
  EXPECT_EQ(a.Union(c), (BBox{0, 0, 9, 9}));
}

TEST(BBoxTest, DistanceAndClamp) {
  BBox box{0, 0, 10, 10};
  EXPECT_DOUBLE_EQ(box.SquaredDistanceTo({5, 5}), 0.0);
  EXPECT_DOUBLE_EQ(box.SquaredDistanceTo({13, 14}), 9.0 + 16.0);
  EXPECT_EQ(box.Clamp({13, 14}), (Point{10, 10}));
  EXPECT_EQ(box.Clamp({-1, 5}), (Point{0, 5}));
}

TEST(HaversineTest, KnownDistances) {
  // Austin city hall to UT Austin tower: roughly 2.9 km.
  const double d =
      HaversineKm(30.2653, -97.7470, 30.2862, -97.7394);
  EXPECT_NEAR(d, 2.43, 0.25);
  EXPECT_DOUBLE_EQ(HaversineKm(30.0, -97.0, 30.0, -97.0), 0.0);
}

TEST(ProjectionTest, ForwardInverseRoundTrip) {
  auto proj = EquirectangularProjection::Create(30.1927, -97.8698);
  ASSERT_TRUE(proj.ok());
  double lat, lon;
  const Point p = proj->Forward(30.30, -97.75);
  proj->Inverse(p, &lat, &lon);
  EXPECT_NEAR(lat, 30.30, 1e-10);
  EXPECT_NEAR(lon, -97.75, 1e-10);
}

TEST(ProjectionTest, MatchesHaversineAtCityScale) {
  // The paper's Austin region is 20x20 km; the planar approximation should
  // agree with the sphere to well under 1%.
  auto proj = EquirectangularProjection::Create(30.1927, -97.8698);
  ASSERT_TRUE(proj.ok());
  const Point a = proj->Forward(30.1927, -97.8698);
  const Point b = proj->Forward(30.3723, -97.6618);
  const double planar = Euclidean(a, b);
  const double sphere = HaversineKm(30.1927, -97.8698, 30.3723, -97.6618);
  EXPECT_NEAR(planar / sphere, 1.0, 0.01);
}

TEST(ProjectionTest, PaperRegionIsTwentyKm) {
  // Sanity-check the paper's claim that the study regions are ~20x20 km.
  auto proj = EquirectangularProjection::Create(30.1927, -97.8698);
  ASSERT_TRUE(proj.ok());
  const Point ne = proj->Forward(30.3723, -97.6618);
  EXPECT_NEAR(ne.x, 20.0, 0.5);
  EXPECT_NEAR(ne.y, 20.0, 0.5);
}

TEST(ProjectionTest, RejectsBadAnchor) {
  EXPECT_FALSE(EquirectangularProjection::Create(95.0, 0.0).ok());
  EXPECT_FALSE(EquirectangularProjection::Create(0.0, 200.0).ok());
}

}  // namespace
}  // namespace geopriv::geo
