#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "geo/distance.h"
#include "mathx/lattice_sum.h"
#include "mechanisms/exponential.h"
#include "mechanisms/optimal.h"
#include "mechanisms/planar_laplace.h"
#include "mechanisms/remap.h"
#include "prior/prior.h"
#include "rng/rng.h"
#include "spatial/grid.h"

namespace geopriv::mechanisms {
namespace {

using geo::BBox;
using geo::Point;
using geo::UtilityMetric;

constexpr BBox kDomain{0.0, 0.0, 20.0, 20.0};

std::vector<Point> GridCenters(int g) {
  return spatial::UniformGrid(kDomain, g).AllCenters();
}

std::vector<double> UniformPrior(int n) {
  return std::vector<double>(n, 1.0 / n);
}

// A deterministic skewed prior: mass decays with the cell index.
std::vector<double> SkewedPrior(int n) {
  std::vector<double> prior(n);
  for (int i = 0; i < n; ++i) prior[i] = 1.0 / (1.0 + i);
  return prior;
}

TEST(PlanarLaplaceTest, CreateValidation) {
  EXPECT_FALSE(PlanarLaplace::Create(0.0).ok());
  EXPECT_FALSE(PlanarLaplace::Create(-1.0).ok());
  EXPECT_TRUE(PlanarLaplace::Create(0.5).ok());
}

TEST(PlanarLaplaceTest, MeanDisplacementIsTwoOverEps) {
  // The radial law is Gamma(2, 1/eps): E[r] = 2 / eps.
  for (double eps : {0.2, 0.5, 1.0}) {
    auto pl = PlanarLaplace::Create(eps);
    ASSERT_TRUE(pl.ok());
    rng::Rng rng(17);
    const Point x{10, 10};
    double sum = 0.0;
    const int n = 40000;
    for (int i = 0; i < n; ++i) {
      sum += geo::Euclidean(x, pl->Report(x, rng));
    }
    EXPECT_NEAR(sum / n, 2.0 / eps, 0.05 * (2.0 / eps)) << "eps=" << eps;
  }
}

TEST(PlanarLaplaceTest, AngleIsUniform) {
  auto pl = PlanarLaplace::Create(0.5);
  ASSERT_TRUE(pl.ok());
  rng::Rng rng(19);
  const Point x{0, 0};
  int quadrant[4] = {0, 0, 0, 0};
  const int n = 40000;
  for (int i = 0; i < n; ++i) {
    const Point z = pl->Report(x, rng);
    quadrant[(z.x >= 0 ? 1 : 0) + (z.y >= 0 ? 2 : 0)]++;
  }
  for (int q = 0; q < 4; ++q) {
    EXPECT_NEAR(quadrant[q], n / 4, 5 * std::sqrt(n / 4.0));
  }
}

TEST(PlanarLaplaceTest, RadialCdfMatchesAnalytic) {
  const double eps = 0.5;
  auto pl = PlanarLaplace::Create(eps);
  ASSERT_TRUE(pl.ok());
  rng::Rng rng(23);
  const Point x{0, 0};
  const int n = 60000;
  std::vector<double> radii(n);
  for (int i = 0; i < n; ++i) {
    radii[i] = geo::Euclidean(x, pl->Report(x, rng));
  }
  for (double r : {1.0, 3.0, 6.0, 12.0}) {
    int below = 0;
    for (double v : radii) {
      if (v <= r) ++below;
    }
    const double analytic = 1.0 - (1.0 + eps * r) * std::exp(-eps * r);
    EXPECT_NEAR(below / static_cast<double>(n), analytic, 0.01) << "r=" << r;
  }
}

TEST(PlanarLaplaceOnGridTest, OutputsAreCellCenters) {
  spatial::UniformGrid grid(kDomain, 4);
  auto pl = PlanarLaplaceOnGrid::Create(0.5, grid);
  ASSERT_TRUE(pl.ok());
  rng::Rng rng(29);
  for (int i = 0; i < 500; ++i) {
    const Point z = pl->Report({3.0, 17.0}, rng);
    const int cell = grid.CellOf(z);
    EXPECT_EQ(z, grid.CenterOf(cell));
  }
}

TEST(OptimalMechanismTest, CreateValidation) {
  const auto locs = GridCenters(2);
  EXPECT_FALSE(
      OptimalMechanism::Create(0.0, locs, UniformPrior(4),
                               UtilityMetric::kEuclidean)
          .ok());
  EXPECT_FALSE(OptimalMechanism::Create(0.5, {}, {},
                                        UtilityMetric::kEuclidean)
                   .ok());
  EXPECT_FALSE(OptimalMechanism::Create(0.5, locs, UniformPrior(3),
                                        UtilityMetric::kEuclidean)
                   .ok());
  EXPECT_FALSE(OptimalMechanism::Create(0.5, locs, {0, 0, 0, 0},
                                        UtilityMetric::kEuclidean)
                   .ok());
  EXPECT_FALSE(OptimalMechanism::Create(0.5, locs, {1, 1, -1, 1},
                                        UtilityMetric::kEuclidean)
                   .ok());
}

TEST(OptimalMechanismTest, SingleLocationIsIdentity) {
  auto opt = OptimalMechanism::Create(0.5, {{1, 1}}, {1.0},
                                      UtilityMetric::kEuclidean);
  ASSERT_TRUE(opt.ok());
  EXPECT_DOUBLE_EQ(opt->K(0, 0), 1.0);
  EXPECT_DOUBLE_EQ(opt->ExpectedLoss(), 0.0);
}

TEST(OptimalMechanismTest, RowsAreStochasticAndGeoIndHolds) {
  for (int g : {2, 3, 4, 5}) {
    const auto locs = GridCenters(g);
    auto opt = OptimalMechanism::Create(0.5, locs, SkewedPrior(g * g),
                                        UtilityMetric::kEuclidean);
    ASSERT_TRUE(opt.ok()) << "g=" << g;
    for (int x = 0; x < g * g; ++x) {
      double sum = 0.0;
      for (int z = 0; z < g * g; ++z) {
        EXPECT_GE(opt->K(x, z), 0.0);
        sum += opt->K(x, z);
      }
      EXPECT_NEAR(sum, 1.0, 1e-9);
    }
    // The exact audit over all n^3 constraints.
    EXPECT_LE(opt->MaxGeoIndViolation(), 1e-6) << "g=" << g;
  }
}

TEST(OptimalMechanismTest, ColumnGenerationMatchesFullSolves) {
  // On instances small enough for the explicit n^3-row primal, all three
  // algorithms must reach the same optimum.
  for (int g : {2, 3}) {
    const auto locs = GridCenters(g);
    const auto prior = SkewedPrior(g * g);
    OptimalMechanismOptions cg;
    auto a = OptimalMechanism::Create(0.4, locs, prior,
                                      UtilityMetric::kEuclidean, cg);
    OptimalMechanismOptions full;
    full.algorithm = OptAlgorithm::kFullPrimalSimplex;
    auto b = OptimalMechanism::Create(0.4, locs, prior,
                                      UtilityMetric::kEuclidean, full);
    OptimalMechanismOptions ipm;
    ipm.algorithm = OptAlgorithm::kFullInteriorPoint;
    auto c = OptimalMechanism::Create(0.4, locs, prior,
                                      UtilityMetric::kEuclidean, ipm);
    ASSERT_TRUE(a.ok());
    ASSERT_TRUE(b.ok());
    ASSERT_TRUE(c.ok());
    EXPECT_NEAR(a->ExpectedLoss(), b->ExpectedLoss(),
                1e-5 * (1.0 + b->ExpectedLoss()))
        << "g=" << g;
    EXPECT_NEAR(a->ExpectedLoss(), c->ExpectedLoss(),
                1e-3 * (1.0 + c->ExpectedLoss()))
        << "g=" << g;
  }
}

TEST(OptimalMechanismTest, FullSolveRejectsLargeInstances) {
  OptimalMechanismOptions full;
  full.algorithm = OptAlgorithm::kFullPrimalSimplex;
  auto opt = OptimalMechanism::Create(0.5, GridCenters(4), UniformPrior(16),
                                      UtilityMetric::kEuclidean, full);
  EXPECT_FALSE(opt.ok());
  EXPECT_EQ(opt.status().code(), StatusCode::kInvalidArgument);
}

TEST(OptimalMechanismTest, NeverWorseThanExponentialMechanism) {
  // The exponential mechanism's matrix is feasible for OPT's program, so
  // OPT's objective can only be lower.
  for (double eps : {0.2, 0.5, 1.0}) {
    const int g = 4;
    const auto locs = GridCenters(g);
    const auto prior = SkewedPrior(g * g);
    auto opt = OptimalMechanism::Create(eps, locs, prior,
                                        UtilityMetric::kEuclidean);
    ASSERT_TRUE(opt.ok());
    auto exp_mech = DiscreteExponential::Create(eps, locs);
    ASSERT_TRUE(exp_mech.ok());
    double norm = 0.0;
    for (double p : prior) norm += p;
    double exp_loss = 0.0;
    for (int x = 0; x < g * g; ++x) {
      for (int z = 0; z < g * g; ++z) {
        exp_loss += (prior[x] / norm) * exp_mech->K(x, z) *
                    geo::Euclidean(locs[x], locs[z]);
      }
    }
    EXPECT_LE(opt->ExpectedLoss(), exp_loss + 1e-7) << "eps=" << eps;
  }
}

TEST(OptimalMechanismTest, LossDecreasesWithEps) {
  const int g = 3;
  const auto locs = GridCenters(g);
  const auto prior = SkewedPrior(g * g);
  double prev = -1.0;
  for (double eps : {1.5, 0.8, 0.4, 0.2, 0.1}) {
    auto opt = OptimalMechanism::Create(eps, locs, prior,
                                        UtilityMetric::kEuclidean);
    ASSERT_TRUE(opt.ok());
    if (prev >= 0.0) {
      EXPECT_GE(opt->ExpectedLoss(), prev - 1e-9) << "eps=" << eps;
    }
    prev = opt->ExpectedLoss();
  }
}

TEST(OptimalMechanismTest, HighBudgetApproachesIdentity) {
  const int g = 3;
  auto opt = OptimalMechanism::Create(20.0, GridCenters(g),
                                      SkewedPrior(g * g),
                                      UtilityMetric::kEuclidean);
  ASSERT_TRUE(opt.ok());
  EXPECT_LT(opt->ExpectedLoss(), 0.05);
  EXPECT_GT(opt->AverageSelfMapping(), 0.95);
}

TEST(OptimalMechanismTest, SamplesFollowMatrixRow) {
  const int g = 3;
  auto opt = OptimalMechanism::Create(0.5, GridCenters(g),
                                      SkewedPrior(g * g),
                                      UtilityMetric::kEuclidean);
  ASSERT_TRUE(opt.ok());
  rng::Rng rng(31);
  const int x = 4;
  const int n = 200000;
  std::vector<int> counts(g * g, 0);
  for (int i = 0; i < n; ++i) ++counts[opt->ReportIndex(x, rng)];
  for (int z = 0; z < g * g; ++z) {
    const double expected = n * opt->K(x, z);
    EXPECT_NEAR(counts[z], expected, 5 * std::sqrt(expected + 1.0) + 5)
        << "z=" << z;
  }
}

TEST(OptimalMechanismTest, ReportSnapsToNearestCandidate) {
  const int g = 2;
  const auto locs = GridCenters(g);
  auto opt = OptimalMechanism::Create(5.0, locs, UniformPrior(4),
                                      UtilityMetric::kEuclidean);
  ASSERT_TRUE(opt.ok());
  // With a big budget the mechanism almost surely reports the own cell.
  rng::Rng rng(37);
  int own = 0;
  for (int i = 0; i < 200; ++i) {
    const Point z = opt->Report({1.0, 1.0}, rng);  // nearest center: (5,5)
    if (z == locs[0]) ++own;
  }
  EXPECT_GT(own, 150);
}

TEST(OptimalMechanismTest, SquaredMetricChangesObjective) {
  const int g = 3;
  const auto locs = GridCenters(g);
  const auto prior = SkewedPrior(g * g);
  auto d1 = OptimalMechanism::Create(0.5, locs, prior,
                                     UtilityMetric::kEuclidean);
  auto d2 = OptimalMechanism::Create(0.5, locs, prior,
                                     UtilityMetric::kSquaredEuclidean);
  ASSERT_TRUE(d1.ok());
  ASSERT_TRUE(d2.ok());
  // Both must satisfy GeoInd; objectives are in different units.
  EXPECT_LE(d1->MaxGeoIndViolation(), 1e-6);
  EXPECT_LE(d2->MaxGeoIndViolation(), 1e-6);
  EXPECT_NE(d1->ExpectedLoss(), d2->ExpectedLoss());
}

// Figure-5 machinery: for the minimal budget produced by the cost model,
// the solved mechanism's self-mapping probability should be close to the
// requested rho (paper reports +-5% for g >= 3 with a uniform prior).
class SelfMappingAccuracyTest
    : public ::testing::TestWithParam<std::tuple<int, double>> {};

TEST_P(SelfMappingAccuracyTest, PhiPredictsPrXGivenX) {
  const int g = std::get<0>(GetParam());
  const double rho = std::get<1>(GetParam());
  const double cell_side = 20.0 / g;
  auto eps = mathx::MinBudgetForSelfMapping(rho, cell_side);
  ASSERT_TRUE(eps.ok());
  auto opt = OptimalMechanism::Create(eps.value(), GridCenters(g),
                                      UniformPrior(g * g),
                                      UtilityMetric::kEuclidean);
  ASSERT_TRUE(opt.ok());
  // The lattice model ignores boundary effects, so compare against the
  // *interior* cells' self-mapping (the paper's +-5% claim, which excludes
  // g = 2 where every cell touches the boundary).
  double interior_avg = 0.0;
  int interior_count = 0;
  spatial::UniformGrid grid(kDomain, g);
  for (int x = 0; x < g * g; ++x) {
    const int r = grid.row_of(x);
    const int c = grid.col_of(x);
    if (r == 0 || c == 0 || r == g - 1 || c == g - 1) continue;
    interior_avg += opt->K(x, x);
    ++interior_count;
  }
  if (interior_count == 0) {
    // g = 2: all cells are boundary cells and the paper excludes this case
    // from its +-5% claim (Figure 5 shows the same deviation). The lattice
    // model assumes leakage to an infinite neighborhood, so the realized
    // self-mapping can only be higher than requested.
    EXPECT_GE(opt->AverageSelfMapping(), rho - 0.02);
    EXPECT_LE(opt->AverageSelfMapping(), 1.0 + 1e-9);
    return;
  }
  interior_avg /= interior_count;
  EXPECT_NEAR(interior_avg, rho, 0.05 * rho + 0.02)
      << "g=" << g << " rho=" << rho;
}

INSTANTIATE_TEST_SUITE_P(
    GridAndRho, SelfMappingAccuracyTest,
    ::testing::Combine(::testing::Values(2, 3, 4, 5),
                       ::testing::Values(0.5, 0.7, 0.9)));

TEST(DiscreteExponentialTest, RowsStochasticAndGeoInd) {
  const int g = 4;
  const auto locs = GridCenters(g);
  auto mech = DiscreteExponential::Create(0.5, locs);
  ASSERT_TRUE(mech.ok());
  for (int x = 0; x < g * g; ++x) {
    double sum = 0.0;
    for (int z = 0; z < g * g; ++z) sum += mech->K(x, z);
    EXPECT_NEAR(sum, 1.0, 1e-9);
  }
  // Exact GeoInd audit.
  double worst = 0.0;
  for (int x = 0; x < g * g; ++x) {
    for (int xp = 0; xp < g * g; ++xp) {
      if (x == xp) continue;
      const double bound = std::exp(0.5 * geo::Euclidean(locs[x], locs[xp]));
      for (int z = 0; z < g * g; ++z) {
        worst = std::max(worst, mech->K(x, z) - bound * mech->K(xp, z));
      }
    }
  }
  EXPECT_LE(worst, 1e-9);
}

TEST(RemapTest, BuildValidation) {
  EXPECT_FALSE(RemapTable::Build({}, {}, [](int, int) { return 1.0; },
                                 UtilityMetric::kEuclidean)
                   .ok());
  EXPECT_FALSE(RemapTable::Build({{0, 0}}, {1.0, 1.0},
                                 [](int, int) { return 1.0; },
                                 UtilityMetric::kEuclidean)
                   .ok());
}

TEST(RemapTest, ImprovesPlanarLaplaceUtilityUnderSkewedPrior) {
  const int g = 5;
  spatial::UniformGrid grid(kDomain, g);
  const auto locs = grid.AllCenters();
  // Concentrated prior: nearly all mass in one corner cell.
  std::vector<double> prior(g * g, 0.005);
  prior[0] = 1.0;
  const double eps = 0.3;
  auto table = RemapTable::Build(locs, prior, PlanarLaplaceKernel(locs, eps),
                                 UtilityMetric::kEuclidean);
  ASSERT_TRUE(table.ok());

  auto pl = PlanarLaplaceOnGrid::Create(eps, grid);
  ASSERT_TRUE(pl.ok());
  rng::Rng rng(41);
  // Draw actual locations from the prior itself.
  double plain = 0.0, remapped = 0.0;
  const int n = 20000;
  double prior_total = 0.0;
  for (double p : prior) prior_total += p;
  for (int i = 0; i < n; ++i) {
    double u = rng.Uniform() * prior_total;
    int x = 0;
    while (u > prior[x] && x < g * g - 1) {
      u -= prior[x];
      ++x;
    }
    const Point actual = locs[x];
    const int z = pl->ReportCell(actual, rng);
    plain += geo::Euclidean(actual, locs[z]);
    remapped += geo::Euclidean(actual, locs[table->Remap(z)]);
  }
  EXPECT_LT(remapped, plain);
}

TEST(RemappedPlanarLaplaceTest, CreateValidation) {
  spatial::UniformGrid grid(kDomain, 3);
  EXPECT_FALSE(RemappedPlanarLaplace::Create(0.5, grid, {1.0, 2.0},
                                             UtilityMetric::kEuclidean)
                   .ok());
  EXPECT_FALSE(RemappedPlanarLaplace::Create(0.0, grid, UniformPrior(9),
                                             UtilityMetric::kEuclidean)
                   .ok());
  EXPECT_TRUE(RemappedPlanarLaplace::Create(0.5, grid, UniformPrior(9),
                                            UtilityMetric::kEuclidean)
                  .ok());
}

TEST(RemappedPlanarLaplaceTest, NeverWorseThanPlainPlOnGrid) {
  const int g = 5;
  spatial::UniformGrid grid(kDomain, g);
  std::vector<double> prior(g * g, 0.002);
  prior[0] = 0.7;
  prior[6] = 0.3;
  const double eps = 0.25;
  auto remapped = RemappedPlanarLaplace::Create(eps, grid, prior,
                                                UtilityMetric::kEuclidean);
  ASSERT_TRUE(remapped.ok());
  auto plain = PlanarLaplaceOnGrid::Create(eps, grid);
  ASSERT_TRUE(plain.ok());
  rng::Rng r1(3), r2(3);
  double loss_remap = 0.0, loss_plain = 0.0;
  const int n = 20000;
  double ptotal = 0.0;
  for (double p : prior) ptotal += p;
  for (int i = 0; i < n; ++i) {
    double u = r1.Uniform() * ptotal;
    r2.Uniform();  // keep streams aligned
    int x = 0;
    while (x < g * g - 1 && u > prior[x]) {
      u -= prior[x];
      ++x;
    }
    const Point actual = grid.CenterOf(x);
    loss_remap += geo::Euclidean(actual, remapped->Report(actual, r1));
    loss_plain += geo::Euclidean(actual, plain->Report(actual, r2));
  }
  EXPECT_LT(loss_remap, loss_plain);
}

TEST(RemappedPlanarLaplaceTest, OutputsAreCellCenters) {
  spatial::UniformGrid grid(kDomain, 4);
  auto mech = RemappedPlanarLaplace::Create(0.5, grid, UniformPrior(16),
                                            UtilityMetric::kEuclidean);
  ASSERT_TRUE(mech.ok());
  rng::Rng rng(9);
  for (int i = 0; i < 200; ++i) {
    const Point z = mech->Report({4.0, 16.0}, rng);
    EXPECT_EQ(z, grid.CenterOf(grid.CellOf(z)));
  }
}

TEST(RemapTest, UninformativeKernelKeepsReport) {
  const auto locs = GridCenters(2);
  auto table = RemapTable::Build(locs, UniformPrior(4),
                                 [](int, int) { return 0.0; },
                                 UtilityMetric::kEuclidean);
  ASSERT_TRUE(table.ok());
  for (int z = 0; z < 4; ++z) {
    EXPECT_EQ(table->Remap(z), z);
  }
}

}  // namespace
}  // namespace geopriv::mechanisms
