#include <cstdio>
#include <filesystem>
#include <fstream>
#include <vector>

#include <gtest/gtest.h>

#include "core/bundle.h"
#include "data/synthetic.h"
#include "rng/rng.h"

namespace geopriv::core {
namespace {

using geo::BBox;
using geo::Point;

constexpr BBox kDomain{0.0, 0.0, 20.0, 20.0};

std::vector<Point> SomeCheckins() {
  rng::Rng rng(77);
  std::vector<Point> pts;
  for (int i = 0; i < 3000; ++i) {
    pts.push_back({std::clamp(rng.Gaussian(6.0, 1.5), 0.0, 20.0),
                   std::clamp(rng.Gaussian(7.0, 1.5), 0.0, 20.0)});
  }
  return pts;
}

std::string TempPath(const char* name) {
  return ::testing::TempDir() + "/" + name;
}

TEST(BundleTest, BuildValidatesInputs) {
  EXPECT_FALSE(
      BuildClientBundle(kDomain, SomeCheckins(), 0.0, 4, 0.8).ok());
  EXPECT_FALSE(
      BuildClientBundle(kDomain, SomeCheckins(), 0.5, 1, 0.8).ok());
  EXPECT_FALSE(
      BuildClientBundle(kDomain, SomeCheckins(), 0.5, 4, 1.5).ok());
  EXPECT_FALSE(BuildClientBundle(kDomain, {}, 0.5, 4, 0.8).ok());
}

TEST(BundleTest, BuildProducesValidBundle) {
  auto bundle = BuildClientBundle(kDomain, SomeCheckins(), 0.5, 4, 0.8, 64);
  ASSERT_TRUE(bundle.ok());
  EXPECT_TRUE(bundle->Validate().ok());
  EXPECT_EQ(bundle->granularity, 4);
  EXPECT_EQ(bundle->prior_granularity, 64);
  EXPECT_NEAR(bundle->budget.total(), 0.5, 1e-9);
  double mass = 0.0;
  for (double m : bundle->prior_mass) mass += m;
  EXPECT_NEAR(mass, 1.0, 1e-9);
}

TEST(BundleTest, SaveLoadRoundTrip) {
  auto bundle = BuildClientBundle(kDomain, SomeCheckins(), 0.5, 3, 0.7, 32);
  ASSERT_TRUE(bundle.ok());
  const std::string path = TempPath("bundle_roundtrip.gpb");
  ASSERT_TRUE(SaveClientBundle(*bundle, path).ok());
  auto loaded = LoadClientBundle(path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->granularity, bundle->granularity);
  EXPECT_EQ(loaded->prior_granularity, bundle->prior_granularity);
  EXPECT_DOUBLE_EQ(loaded->eps, bundle->eps);
  EXPECT_DOUBLE_EQ(loaded->rho, bundle->rho);
  EXPECT_EQ(loaded->budget.per_level, bundle->budget.per_level);
  EXPECT_EQ(loaded->prior_mass, bundle->prior_mass);
  EXPECT_EQ(loaded->domain, bundle->domain);
  std::remove(path.c_str());
}

TEST(BundleTest, LoadRejectsMissingFile) {
  auto loaded = LoadClientBundle("/nonexistent/bundle.gpb");
  EXPECT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kIoError);
}

TEST(BundleTest, LoadRejectsWrongMagic) {
  const std::string path = TempPath("bundle_magic.gpb");
  std::ofstream(path) << "definitely not a bundle";
  auto loaded = LoadClientBundle(path);
  EXPECT_FALSE(loaded.ok());
  std::remove(path.c_str());
}

TEST(BundleTest, LoadRejectsTruncation) {
  auto bundle = BuildClientBundle(kDomain, SomeCheckins(), 0.5, 3, 0.7, 16);
  ASSERT_TRUE(bundle.ok());
  const std::string path = TempPath("bundle_trunc.gpb");
  ASSERT_TRUE(SaveClientBundle(*bundle, path).ok());
  // Truncate the file to half its size.
  std::ifstream in(path, std::ios::binary);
  std::string contents((std::istreambuf_iterator<char>(in)),
                       std::istreambuf_iterator<char>());
  in.close();
  std::ofstream(path, std::ios::binary | std::ios::trunc)
      << contents.substr(0, contents.size() / 2);
  EXPECT_FALSE(LoadClientBundle(path).ok());
  std::remove(path.c_str());
}

TEST(BundleTest, LoadRejectsBitFlip) {
  auto bundle = BuildClientBundle(kDomain, SomeCheckins(), 0.5, 3, 0.7, 16);
  ASSERT_TRUE(bundle.ok());
  const std::string path = TempPath("bundle_bitflip.gpb");
  ASSERT_TRUE(SaveClientBundle(*bundle, path).ok());
  std::ifstream in(path, std::ios::binary);
  std::string contents((std::istreambuf_iterator<char>(in)),
                       std::istreambuf_iterator<char>());
  in.close();
  contents[contents.size() / 2] ^= 0x40;  // flip a bit mid-payload
  std::ofstream(path, std::ios::binary | std::ios::trunc) << contents;
  auto loaded = LoadClientBundle(path);
  EXPECT_FALSE(loaded.ok());
  std::remove(path.c_str());
}

TEST(BundleTest, SaveIsAtomicAndLeavesNoTempFile) {
  auto bundle = BuildClientBundle(kDomain, SomeCheckins(), 0.5, 3, 0.7, 16);
  ASSERT_TRUE(bundle.ok());
  const std::string path = TempPath("bundle_atomic.gpb");
  ASSERT_TRUE(SaveClientBundle(*bundle, path).ok());
  // The crash-atomic writer stages into "<path>.tmp.<pid>.<n>" and
  // renames; success must leave no staging file behind.
  const std::filesystem::path dir =
      std::filesystem::path(path).parent_path();
  for (const auto& entry : std::filesystem::directory_iterator(dir)) {
    EXPECT_EQ(entry.path().filename().string().find("bundle_atomic.gpb.tmp"),
              std::string::npos)
        << "staging file left behind: " << entry.path();
  }
  // Overwriting an existing bundle goes through the same rename and the
  // replacement wins completely (no partial mix of old and new bytes).
  auto second = BuildClientBundle(kDomain, SomeCheckins(), 0.9, 3, 0.6, 16);
  ASSERT_TRUE(second.ok());
  ASSERT_TRUE(SaveClientBundle(*second, path).ok());
  auto loaded = LoadClientBundle(path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_DOUBLE_EQ(loaded->eps, 0.9);
  EXPECT_DOUBLE_EQ(loaded->rho, 0.6);
  std::remove(path.c_str());
}

TEST(BundleTest, LoadRejectsByteSwappedSentinel) {
  // A well-formed magic followed by the endian sentinel in big-endian
  // byte order — what a big-endian writer ignoring the LE contract would
  // produce. The loader must refuse rather than misparse every field.
  const std::string path = TempPath("bundle_swapped.gpb");
  std::string bytes = "GPB1";
  bytes += '\x01';
  bytes += '\x02';
  bytes += '\x03';
  bytes += '\x04';
  bytes.append(64, '\0');
  std::ofstream(path, std::ios::binary) << bytes;
  auto loaded = LoadClientBundle(path);
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(loaded.status().message().find("byte-swapped"),
            std::string::npos)
      << loaded.status().message();
  std::remove(path.c_str());
}

TEST(BundleTest, LoadRejectsV2MagicWithPointerToTheRightLoader) {
  const std::string path = TempPath("bundle_v2magic.gpb");
  std::string bytes = "GPB2";
  bytes.append(64, '\0');
  std::ofstream(path, std::ios::binary) << bytes;
  auto loaded = LoadClientBundle(path);
  ASSERT_FALSE(loaded.ok());
  EXPECT_NE(loaded.status().message().find("RegionBundleView"),
            std::string::npos)
      << loaded.status().message();
  std::remove(path.c_str());
}

TEST(BundleTest, MechanismFromBundleMatchesDirectConstruction) {
  // A mechanism reconstructed client-side from the bundle must behave
  // identically (same budgets, same reports under the same seed) to one
  // built directly from the same inputs.
  const auto checkins = SomeCheckins();
  auto bundle = BuildClientBundle(kDomain, checkins, 0.5, 2, 0.8, 64);
  ASSERT_TRUE(bundle.ok());
  const std::string path = TempPath("bundle_mech.gpb");
  ASSERT_TRUE(SaveClientBundle(*bundle, path).ok());
  auto loaded = LoadClientBundle(path);
  ASSERT_TRUE(loaded.ok());
  auto from_bundle = MechanismFromBundle(*loaded);
  ASSERT_TRUE(from_bundle.ok());
  EXPECT_EQ(from_bundle->budget().per_level, bundle->budget.per_level);

  // Direct construction with the same prior and budgets.
  auto direct = MechanismFromBundle(*bundle);
  ASSERT_TRUE(direct.ok());
  rng::Rng r1(42), r2(42);
  for (int i = 0; i < 25; ++i) {
    const Point x{5.0 + 0.3 * i, 8.0};
    EXPECT_EQ(from_bundle->Report(x, r1), direct->Report(x, r2)) << i;
  }
  std::remove(path.c_str());
}

TEST(BundleTest, ValidateCatchesBudgetMismatch) {
  auto bundle = BuildClientBundle(kDomain, SomeCheckins(), 0.5, 3, 0.7, 16);
  ASSERT_TRUE(bundle.ok());
  bundle->eps = 0.7;  // budgets still sum to 0.5
  EXPECT_FALSE(bundle->Validate().ok());
}

}  // namespace
}  // namespace geopriv::core
