#include <cmath>

#include <gtest/gtest.h>

#include "lp/model.h"
#include "lp/presolve.h"
#include "lp/revised_simplex.h"
#include "rng/rng.h"

namespace geopriv::lp {
namespace {

TEST(PresolveTest, SubstitutesFixedVariables) {
  Model m;
  const int x = m.AddVariable(2.0, 2.0, 3.0);  // fixed at 2
  const int y = m.AddVariable(0.0, kInfinity, 1.0);
  m.AddConstraint(ConstraintSense::kGreaterEqual, 5.0, {{x, 1.0}, {y, 1.0}});
  auto pre = Presolve(m);
  ASSERT_TRUE(pre.ok());
  EXPECT_FALSE(pre->infeasible);
  EXPECT_EQ(pre->removed_variables, 1);
  EXPECT_EQ(pre->reduced.num_variables(), 1);
  EXPECT_EQ(pre->reduced.num_constraints(), 1);
  // Row becomes y >= 3 after substituting x = 2.
  EXPECT_DOUBLE_EQ(pre->reduced.rhs(0), 3.0);
  EXPECT_DOUBLE_EQ(pre->objective_offset, 6.0);

  const LpSolution reduced_sol = RevisedSimplex::Solve(pre->reduced, {});
  ASSERT_TRUE(reduced_sol.optimal());
  const auto x_full = pre->RestoreSolution(reduced_sol.x);
  EXPECT_DOUBLE_EQ(x_full[x], 2.0);
  EXPECT_NEAR(x_full[y], 3.0, 1e-9);
  // Objective identity: original = reduced + offset.
  const LpSolution direct = RevisedSimplex::Solve(m, {});
  ASSERT_TRUE(direct.optimal());
  EXPECT_NEAR(direct.objective,
              reduced_sol.objective + pre->objective_offset, 1e-9);
}

TEST(PresolveTest, SingletonRowsBecomeBounds) {
  Model m;
  const int x = m.AddVariable(0.0, kInfinity, -1.0);
  m.AddConstraint(ConstraintSense::kLessEqual, 7.0, {{x, 1.0}});
  m.AddConstraint(ConstraintSense::kGreaterEqual, 2.0, {{x, 1.0}});
  auto pre = Presolve(m);
  ASSERT_TRUE(pre.ok());
  EXPECT_EQ(pre->reduced.num_constraints(), 0);
  EXPECT_EQ(pre->removed_rows, 2);
  EXPECT_DOUBLE_EQ(pre->reduced.lower_bound(0), 2.0);
  EXPECT_DOUBLE_EQ(pre->reduced.upper_bound(0), 7.0);
}

TEST(PresolveTest, NegativeCoefficientSingletonFlipsDirection) {
  Model m;
  const int x = m.AddVariable(-kInfinity, kInfinity, 1.0);
  // -2x <= 6  <=>  x >= -3.
  m.AddConstraint(ConstraintSense::kLessEqual, 6.0, {{x, -2.0}});
  auto pre = Presolve(m);
  ASSERT_TRUE(pre.ok());
  EXPECT_DOUBLE_EQ(pre->reduced.lower_bound(0), -3.0);
  EXPECT_FALSE(std::isfinite(pre->reduced.upper_bound(0)));
}

TEST(PresolveTest, EqualitySingletonFixesTheVariable) {
  Model m;
  const int x = m.AddVariable(0.0, kInfinity, 5.0);
  const int y = m.AddVariable(0.0, kInfinity, 1.0);
  m.AddConstraint(ConstraintSense::kEqual, 4.0, {{x, 2.0}});  // x = 2
  m.AddConstraint(ConstraintSense::kGreaterEqual, 3.0, {{x, 1.0}, {y, 1.0}});
  auto pre = Presolve(m);
  ASSERT_TRUE(pre.ok());
  EXPECT_EQ(pre->removed_variables, 1);
  EXPECT_DOUBLE_EQ(pre->fixed_value[x], 2.0);
  // Second row reduces to y >= 1.
  ASSERT_EQ(pre->reduced.num_constraints(), 1);
  EXPECT_DOUBLE_EQ(pre->reduced.rhs(0), 1.0);
}

TEST(PresolveTest, DetectsBoundInfeasibility) {
  Model m;
  const int x = m.AddVariable(0.0, 5.0, 1.0);
  m.AddConstraint(ConstraintSense::kGreaterEqual, 9.0, {{x, 1.0}});
  auto pre = Presolve(m);
  ASSERT_TRUE(pre.ok());
  EXPECT_TRUE(pre->infeasible);
}

TEST(PresolveTest, DetectsDeterminedRowInfeasibility) {
  Model m;
  const int x = m.AddVariable(1.0, 1.0, 0.0);  // fixed at 1
  m.AddConstraint(ConstraintSense::kEqual, 5.0, {{x, 2.0}});  // 2 != 5
  auto pre = Presolve(m);
  ASSERT_TRUE(pre.ok());
  EXPECT_TRUE(pre->infeasible);
}

TEST(PresolveTest, KeepsTriviallyTrueDeterminedRows) {
  Model m;
  const int x = m.AddVariable(3.0, 3.0, 0.0);
  const int y = m.AddVariable(0.0, 1.0, -1.0);
  m.AddConstraint(ConstraintSense::kLessEqual, 10.0, {{x, 1.0}});  // 3 <= 10
  m.AddConstraint(ConstraintSense::kLessEqual, 1.0, {{y, 1.0}});
  auto pre = Presolve(m);
  ASSERT_TRUE(pre.ok());
  EXPECT_FALSE(pre->infeasible);
  EXPECT_EQ(pre->reduced.num_variables(), 1);
}

// Property: on random feasible programs, solving the presolved model and
// restoring must match the direct solve's objective.
class PresolveEquivalenceTest : public ::testing::TestWithParam<int> {};

TEST_P(PresolveEquivalenceTest, ObjectiveMatchesDirectSolve) {
  rng::Rng rng(500 + GetParam());
  const int n = 3 + static_cast<int>(rng.UniformInt(6));
  Model m(rng.Uniform() < 0.5 ? ObjectiveSense::kMinimize
                              : ObjectiveSense::kMaximize);
  for (int j = 0; j < n; ++j) {
    if (rng.Uniform() < 0.3) {
      const double v = rng.Uniform(-2.0, 2.0);
      m.AddVariable(v, v, rng.Uniform(-3.0, 3.0));  // fixed
    } else {
      m.AddVariable(0.0, rng.Uniform(1.0, 5.0), rng.Uniform(-3.0, 3.0));
    }
  }
  const int rows = 1 + static_cast<int>(rng.UniformInt(2 * n));
  for (int i = 0; i < rows; ++i) {
    std::vector<Coefficient> terms;
    for (int j = 0; j < n; ++j) {
      if (rng.Uniform() < 0.5) terms.push_back({j, rng.Uniform(-2.0, 2.0)});
    }
    if (terms.empty()) terms.push_back({static_cast<int>(rng.UniformInt(n)), 1.0});
    // Generous rhs keeps the instance feasible despite fixed variables.
    m.AddConstraint(ConstraintSense::kLessEqual, rng.Uniform(8.0, 20.0),
                    std::move(terms));
  }
  const LpSolution direct = RevisedSimplex::Solve(m, {});
  auto pre = Presolve(m);
  ASSERT_TRUE(pre.ok());
  if (pre->infeasible) {
    EXPECT_EQ(direct.status, SolveStatus::kInfeasible);
    return;
  }
  ASSERT_TRUE(direct.optimal());
  const LpSolution reduced_sol = RevisedSimplex::Solve(pre->reduced, {});
  ASSERT_TRUE(reduced_sol.optimal());
  // Note: the reduced model preserves the original sense, so objectives
  // compose additively in the original orientation.
  EXPECT_NEAR(direct.objective,
              reduced_sol.objective + pre->objective_offset,
              1e-6 * (1.0 + std::abs(direct.objective)));
  // The restored solution is feasible for the original model.
  const auto x_full = pre->RestoreSolution(reduced_sol.x);
  for (int i = 0; i < m.num_constraints(); ++i) {
    double activity = 0.0;
    for (const Coefficient& t : m.row(i)) activity += t.value * x_full[t.var];
    EXPECT_LE(activity, m.rhs(i) + 1e-6) << "row " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PresolveEquivalenceTest,
                         ::testing::Range(1, 31));

}  // namespace
}  // namespace geopriv::lp
