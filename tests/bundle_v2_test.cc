// Tests for the v2 region-bundle subsystem (src/bundle/): build ->
// mmap -> serve round trip, bit-identity of bundle-loaded regions
// against scratch-built ones, zero LP solves at load, robustness against
// truncation at every section boundary and bit flips in every section,
// version-skew rejection in both directions, and the service-level
// LoadRegionFromBundle path.

#include <algorithm>
#include <climits>
#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "bundle/builder.h"
#include "bundle/format.h"
#include "bundle/loader.h"
#include "bundle/region_bundle.h"
#include "core/bundle.h"
#include "core/location_sanitizer.h"
#include "rng/rng.h"
#include "service/sanitization_service.h"

namespace geopriv::bundle {
namespace {

std::string TempPath(const char* name) {
  return ::testing::TempDir() + "/" + name;
}

// A small real region: ~1.1 km box, granularity 2 — a few dozen internal
// nodes, so full prewarm stays fast while still exercising multi-level
// walks.
RegionSpec SmallSpec() {
  RegionSpec spec;
  spec.min_lat = 30.19;
  spec.min_lon = -97.87;
  spec.max_lat = 30.20;
  spec.max_lon = -97.86;
  spec.eps = 1.2;
  spec.granularity = 2;
  spec.rho = 0.8;
  spec.prior_granularity = 16;
  for (int i = 0; i < 200; ++i) {
    spec.checkins.push_back(
        {30.19 + 0.01 * (i % 10) / 10.0, -97.87 + 0.01 * (i % 7) / 7.0});
  }
  return spec;
}

std::string ReadAll(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return std::string((std::istreambuf_iterator<char>(in)),
                     std::istreambuf_iterator<char>());
}

void WriteAll(const std::string& path, const std::string& bytes) {
  std::ofstream(path, std::ios::binary | std::ios::trunc) << bytes;
}

// Builds the shared test bundle once; every test reuses the same file.
const std::string& SharedBundlePath() {
  static const std::string path = [] {
    const std::string p = TempPath("region_v2_shared.gpb");
    BuildBundleOptions options;
    options.prewarm_nodes = 0;  // full prewarm: every internal node
    auto result = BuildRegionBundle(SmallSpec(), options, p);
    EXPECT_TRUE(result.ok()) << result.status().ToString();
    EXPECT_GT(result->nodes, 0u);
    EXPECT_GT(result->plan_nodes, 0u);
    return p;
  }();
  return path;
}

core::LocationSanitizer ScratchSanitizer(uint64_t seed) {
  const RegionSpec spec = SmallSpec();
  auto built = core::LocationSanitizer::Builder()
                   .SetRegionLatLon(spec.min_lat, spec.min_lon, spec.max_lat,
                                    spec.max_lon)
                   .SetEpsilon(spec.eps)
                   .SetGranularity(spec.granularity)
                   .SetRho(spec.rho)
                   .SetPriorGranularity(spec.prior_granularity)
                   .SetUtilityMetric(spec.metric)
                   .SetSeed(seed)
                   .AddCheckinsLatLon(spec.checkins)
                   .Build();
  EXPECT_TRUE(built.ok()) << built.status().ToString();
  return std::move(built).value();
}

TEST(RegionBundleV2Test, OpenValidatesAndExposesTheConfig) {
  auto view = RegionBundleView::Open(SharedBundlePath());
  ASSERT_TRUE(view.ok()) << view.status().ToString();
  const RegionSpec spec = SmallSpec();
  EXPECT_DOUBLE_EQ(view->config().eps, spec.eps);
  EXPECT_DOUBLE_EQ(view->config().rho, spec.rho);
  EXPECT_EQ(static_cast<int>(view->config().granularity), spec.granularity);
  EXPECT_EQ(static_cast<int>(view->config().prior_granularity),
            spec.prior_granularity);
  EXPECT_EQ(view->level_budgets().size(),
            static_cast<size_t>(view->config().height));
  EXPECT_EQ(view->prior_masses().size(),
            static_cast<size_t>(spec.prior_granularity) *
                static_cast<size_t>(spec.prior_granularity));
  EXPECT_GT(view->node_count(), 0u);
  ASSERT_FALSE(view->plan().empty());
  EXPECT_EQ(view->plan().node_id.size(), view->plan().child_begin.size());
  EXPECT_EQ(view->plan().child_id.size(), view->plan().child_plan.size());
  EXPECT_TRUE(view->VerifyChecksums().ok());

  // Every stored node decodes, with self-consistent table sizes.
  for (size_t i = 0; i < view->node_count(); ++i) {
    auto node = view->node(i);
    ASSERT_TRUE(node.ok()) << i << ": " << node.status().ToString();
    const size_t n = static_cast<size_t>(node->n);
    EXPECT_EQ(node->locations_xy.size(), 2 * n);
    EXPECT_EQ(node->prior.size(), n);
    EXPECT_EQ(node->k.size(), n * n);
    EXPECT_EQ(node->alias_prob.size(), n * n);
    EXPECT_EQ(node->alias_alias.size(), n * n);
    EXPECT_EQ(node->alias_normalized.size(), n * n);
    // Each K row is a conditional distribution.
    for (size_t x = 0; x < n; ++x) {
      double row = 0.0;
      for (size_t z = 0; z < n; ++z) row += node->k[x * n + z];
      EXPECT_NEAR(row, 1.0, 1e-9);
    }
  }
}

TEST(RegionBundleV2Test, LoadedRegionServesWithZeroLpSolves) {
  auto view = RegionBundleView::Open(SharedBundlePath());
  ASSERT_TRUE(view.ok()) << view.status().ToString();
  auto loaded = LoadRegion(view.value());
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_GT(loaded->nodes_loaded, 0u);
  EXPECT_GT(loaded->plan_nodes, 0u);
  EXPECT_EQ(loaded->bytes_mapped, view->bytes_mapped());

  // Zero solver work at load...
  EXPECT_EQ(loaded->sanitizer.mechanism().stats().lp_solves, 0);
  // ...and zero under traffic: a fully-prewarmed bundle covers every
  // internal node, so no walk can miss.
  rng::Rng rng(99);
  for (int i = 0; i < 64; ++i) {
    auto out = loaded->sanitizer.SanitizeLatLonOrStatus(
        30.19 + 0.01 * (i % 8) / 8.0, -97.87 + 0.01 * (i % 5) / 5.0, rng);
    ASSERT_TRUE(out.ok()) << out.status().ToString();
  }
  EXPECT_EQ(loaded->sanitizer.mechanism().stats().lp_solves, 0);
}

TEST(RegionBundleV2Test, LoadedRegionIsBitIdenticalToScratchBuild) {
  // The serve tier's correctness claim: under the same seed, a region
  // rehydrated from the mmapped bundle must produce *bit-identical*
  // reports to one built from scratch — the stored alias tables and K
  // matrices are the same bytes the solver produced, so the RNG draw
  // sequence and every selected cell must match exactly.
  constexpr uint64_t kSeed = 0xB17B17ull;
  auto view = RegionBundleView::Open(SharedBundlePath());
  ASSERT_TRUE(view.ok()) << view.status().ToString();
  RegionLoadOptions options;
  options.seed = kSeed;
  auto loaded = LoadRegion(view.value(), options);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  core::LocationSanitizer scratch = ScratchSanitizer(kSeed);
  ASSERT_EQ(scratch.PrewarmTopNodes(INT_MAX).status().code(),
            StatusCode::kOk);

  rng::Rng r1(kSeed), r2(kSeed);
  for (int i = 0; i < 200; ++i) {
    const double lat = 30.19 + 0.01 * ((i * 37) % 100) / 100.0;
    const double lon = -97.87 + 0.01 * ((i * 53) % 100) / 100.0;
    auto from_bundle = loaded->sanitizer.SanitizeLatLonOrStatus(lat, lon, r1);
    auto from_scratch = scratch.SanitizeLatLonOrStatus(lat, lon, r2);
    ASSERT_TRUE(from_bundle.ok());
    ASSERT_TRUE(from_scratch.ok());
    // Bit identity, not near-equality.
    EXPECT_EQ(from_bundle->lat, from_scratch->lat) << i;
    EXPECT_EQ(from_bundle->lon, from_scratch->lon) << i;
  }
}

TEST(RegionBundleV2Test, OpenRejectsTruncationAtEverySectionBoundary) {
  const std::string bytes = ReadAll(SharedBundlePath());
  auto view = RegionBundleView::Open(SharedBundlePath());
  ASSERT_TRUE(view.ok());

  std::vector<size_t> cuts = {0, 16, kHeaderBytes - 1, kHeaderBytes};
  for (const SectionEntry& section : view->sections()) {
    cuts.push_back(static_cast<size_t>(section.offset));
    cuts.push_back(static_cast<size_t>(section.offset) +
                   static_cast<size_t>(section.size) / 2);
  }
  cuts.push_back(bytes.size() - 1);
  const std::string path = TempPath("region_v2_trunc.gpb");
  for (const size_t cut : cuts) {
    ASSERT_LT(cut, bytes.size());
    WriteAll(path, bytes.substr(0, cut));
    auto truncated = RegionBundleView::Open(path);
    EXPECT_FALSE(truncated.ok()) << "cut at " << cut << " accepted";
  }
  std::remove(path.c_str());
}

TEST(RegionBundleV2Test, ChecksumsCatchABitFlipInEverySection) {
  const std::string bytes = ReadAll(SharedBundlePath());
  auto view = RegionBundleView::Open(SharedBundlePath());
  ASSERT_TRUE(view.ok());

  const std::string path = TempPath("region_v2_flip.gpb");
  for (const SectionEntry& section : view->sections()) {
    std::string corrupt = bytes;
    const size_t at = static_cast<size_t>(section.offset) +
                      static_cast<size_t>(section.size) / 2;
    ASSERT_LT(at, corrupt.size());
    corrupt[at] = static_cast<char>(corrupt[at] ^ 0x10);
    WriteAll(path, corrupt);
    auto flipped = RegionBundleView::Open(path, /*verify_checksums=*/true);
    EXPECT_FALSE(flipped.ok())
        << "bit flip in section " << section.id << " accepted";
  }
  std::remove(path.c_str());
}

TEST(RegionBundleV2Test, RejectsVersionSkewInBothDirections) {
  // Future version in a v2 envelope: rejected by name, both versions in
  // the message.
  std::string bytes = ReadAll(SharedBundlePath());
  bytes[8] = 3;  // version field (u32 LE at offset 8)
  const std::string path = TempPath("region_v2_skew.gpb");
  WriteAll(path, bytes);
  auto skewed = RegionBundleView::Open(path);
  ASSERT_FALSE(skewed.ok());
  EXPECT_NE(skewed.status().message().find("version 3"), std::string::npos)
      << skewed.status().message();
  EXPECT_NE(skewed.status().message().find("version 2"), std::string::npos)
      << skewed.status().message();

  // A v1 client bundle handed to the v2 loader: refused with a pointer at
  // the right entry point instead of a generic parse error.
  auto v1 = core::BuildClientBundle({0.0, 0.0, 10.0, 10.0},
                                    {{5.0, 5.0}, {6.0, 4.0}, {2.0, 8.0}},
                                    0.5, 3, 0.7, 8);
  ASSERT_TRUE(v1.ok()) << v1.status().ToString();
  ASSERT_TRUE(core::SaveClientBundle(*v1, path).ok());
  auto crossed = RegionBundleView::Open(path);
  ASSERT_FALSE(crossed.ok());
  EXPECT_NE(crossed.status().message().find("LoadClientBundle"),
            std::string::npos)
      << crossed.status().message();

  // And the reverse direction is covered in bundle_test.cc
  // (LoadRejectsV2MagicWithPointerToTheRightLoader).
  std::remove(path.c_str());
}

TEST(RegionBundleV2Test, PartialPrewarmBundleStoresOnlyWarmNodes) {
  const std::string path = TempPath("region_v2_partial.gpb");
  BuildBundleOptions options;
  options.prewarm_nodes = 1;  // root only
  auto result = BuildRegionBundle(SmallSpec(), options, path);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->nodes, 1u);

  // The loader still serves: missing nodes rebuild lazily from the
  // stored budgets, paying LP solves only on the cold paths.
  auto view = RegionBundleView::Open(path);
  ASSERT_TRUE(view.ok());
  auto loaded = LoadRegion(view.value());
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded->sanitizer.mechanism().stats().lp_solves, 0);
  rng::Rng rng(7);
  auto out = loaded->sanitizer.SanitizeLatLonOrStatus(30.195, -97.865, rng);
  EXPECT_TRUE(out.ok()) << out.status().ToString();
  std::remove(path.c_str());
}

TEST(ServiceBundleTest, LoadRegionFromBundleServesAndReportsMetrics) {
  service::ServiceOptions options;
  options.num_workers = 2;
  options.num_shards = 4;
  auto service = service::SanitizationService::Create(options);
  ASSERT_TRUE(service.ok());

  ASSERT_TRUE(
      (*service)->LoadRegionFromBundle("austin", SharedBundlePath()).ok());
  // Duplicate registration fails fast, bundle or not.
  EXPECT_EQ(
      (*service)->LoadRegionFromBundle("austin", SharedBundlePath()).code(),
      StatusCode::kFailedPrecondition);

  std::vector<core::LatLon> batch;
  for (int i = 0; i < 32; ++i) {
    batch.push_back({30.19 + 0.01 * (i % 6) / 6.0, -97.865});
  }
  const auto results = (*service)->SanitizeBatch("austin", batch);
  for (const auto& r : results) {
    EXPECT_TRUE(r.status.ok()) << r.status.ToString();
    EXPECT_FALSE(r.used_fallback);
  }

  auto info = (*service)->GetRegionInfo("austin");
  ASSERT_TRUE(info.ok());
  EXPECT_GT(info->bundle_bytes_mapped, 0u);
  EXPECT_GT(info->plan_warm_at_startup, 0u);
  EXPECT_GT(info->prewarmed_nodes, 0);
  EXPECT_EQ(info->msm.lp_solves, 0);

  const std::string json = (*service)->MetricsJson();
  EXPECT_NE(json.find("\"bundle_loads\":1"), std::string::npos) << json;
  EXPECT_NE(json.find("\"shards\":{\"num_shards\":4"), std::string::npos)
      << json;
  const std::string text = (*service)->MetricsText();
  EXPECT_NE(text.find("geopriv_bundle_loads_total 1"), std::string::npos);
  EXPECT_NE(text.find("geopriv_region_bundle_bytes_mapped{region=\"austin\"}"),
            std::string::npos);

  EXPECT_FALSE(
      (*service)->LoadRegionFromBundle("nowhere", "/nonexistent/r.gpb2").ok());
}

}  // namespace
}  // namespace geopriv::bundle
