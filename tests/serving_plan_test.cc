// Serving-plan tests for the MSM warm path: bit-identity between the
// pinned-plan walk and the legacy cache walk, zero cache traffic on fully
// warm walks, generation-driven rebuilds across eviction/Clear, batch
// reproducibility, and TSan stress for plans invalidated mid-walk. Run
// under TSan via
//   cmake -B build-tsan -DGEOPRIV_SANITIZE=thread

#include <atomic>
#include <memory>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "core/msm.h"
#include "prior/prior.h"
#include "rng/rng.h"
#include "spatial/hierarchical_grid.h"

namespace geopriv::core {
namespace {

using geo::BBox;
using geo::Point;

constexpr BBox kDomain{0.0, 0.0, 20.0, 20.0};

std::shared_ptr<spatial::HierarchicalGrid> MakeGrid(int g, int h) {
  auto grid = spatial::HierarchicalGrid::Create(kDomain, g, h);
  GEOPRIV_CHECK_OK(grid.status());
  return std::make_shared<spatial::HierarchicalGrid>(std::move(grid).value());
}

std::shared_ptr<prior::Prior> MakeSkewedPrior() {
  rng::Rng rng(1234);
  std::vector<Point> pts;
  for (int i = 0; i < 3000; ++i) {
    pts.push_back({std::clamp(rng.Gaussian(6.0, 1.2), 0.0, 20.0),
                   std::clamp(rng.Gaussian(7.0, 1.2), 0.0, 20.0)});
  }
  for (int i = 0; i < 600; ++i) {
    pts.push_back({rng.Uniform(0.0, 20.0), rng.Uniform(0.0, 20.0)});
  }
  auto p = prior::Prior::FromPoints(kDomain, 64, pts);
  GEOPRIV_CHECK_OK(p.status());
  return std::make_shared<prior::Prior>(std::move(p).value());
}

std::unique_ptr<MultiStepMechanism> MakeMsm(const MsmOptions& options,
                                            int g = 3, int h = 3) {
  auto msm =
      MultiStepMechanism::Create(0.5, MakeGrid(g, h), MakeSkewedPrior(),
                                 options);
  GEOPRIV_CHECK_OK(msm.status());
  return std::make_unique<MultiStepMechanism>(std::move(msm).value());
}

// Walk targets: in-domain points (deterministic snap) plus out-of-domain
// ones (exercising the UniformInt fallback on the same draw schedule).
std::vector<Point> WalkTargets(int n) {
  std::vector<Point> targets;
  targets.reserve(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) {
    if (i % 7 == 6) {
      targets.push_back({-5.0 - i, 40.0 + i});  // outside the domain
    } else {
      targets.push_back({0.5 + 0.37 * (i % 50), 0.5 + 0.61 * (i % 31)});
    }
  }
  return targets;
}

TEST(ServingPlanTest, PlanWalkIsBitIdenticalToTheCacheWalk) {
  MsmOptions with_plan;
  with_plan.serving_plan = true;
  MsmOptions without_plan;
  without_plan.serving_plan = false;
  auto planned = MakeMsm(with_plan);
  auto legacy = MakeMsm(without_plan);

  // Warm everything so the planned walk stays inside the plan end-to-end.
  ASSERT_TRUE(planned->PrewarmTopNodes(1000).ok());
  ASSERT_TRUE(legacy->PrewarmTopNodes(1000).ok());
  ASSERT_GT(planned->serving_plan_nodes(), 0u);
  ASSERT_EQ(legacy->serving_plan_nodes(), 0u);

  rng::Rng rng_planned(99);
  rng::Rng rng_legacy(99);
  for (const Point& target : WalkTargets(400)) {
    auto a = planned->ReportOrStatus(target, rng_planned);
    auto b = legacy->ReportOrStatus(target, rng_legacy);
    ASSERT_TRUE(a.ok() && b.ok());
    ASSERT_EQ(a.value(), b.value())
        << "plan and cache walks diverged at (" << target.x << ","
        << target.y << ")";
  }
  // The planned mechanism really used its plan, not the fall-through.
  const MsmStats stats = planned->stats();
  EXPECT_GT(stats.plan_levels, 0);
  EXPECT_EQ(stats.fallthrough_levels, 0);
  EXPECT_EQ(legacy->stats().plan_levels, 0);
}

TEST(ServingPlanTest, FullyWarmWalkTakesNoCacheLookups) {
  MsmOptions options;
  auto msm = MakeMsm(options);
  ASSERT_TRUE(msm->PrewarmTopNodes(1000).ok());
  // Force the rebuild now so the measurement below sees a settled plan.
  ASSERT_EQ(msm->serving_plan_nodes(), msm->cache_size());

  const uint64_t lookups_before = msm->cache().lookups();
  const int64_t solves_before = msm->stats().lp_solves;
  rng::Rng rng(7);
  for (const Point& target : WalkTargets(300)) {
    ASSERT_TRUE(msm->ReportOrStatus(target, rng).ok());
  }
  // The warm path touched neither the cache (no shard locks, no LRU
  // ticks) nor the solver: every level served from the pinned plan.
  EXPECT_EQ(msm->cache().lookups(), lookups_before);
  EXPECT_EQ(msm->stats().lp_solves, solves_before);
  EXPECT_EQ(msm->stats().fallthrough_levels, 0);
  // The walk descends the *budget* height (which may be shallower than the
  // index height when the allocator stops splitting eps).
  EXPECT_EQ(msm->stats().plan_levels,
            300 * static_cast<int64_t>(msm->height()));
}

TEST(ServingPlanTest, NodeCapFallsThroughBelowTheCappedSubtree) {
  MsmOptions options;
  options.serving_plan_max_nodes = 1;  // plan pins the root only
  auto msm = MakeMsm(options);
  ASSERT_TRUE(msm->PrewarmTopNodes(1000).ok());
  ASSERT_EQ(msm->serving_plan_nodes(), 1u);
  rng::Rng rng(7);
  for (const Point& target : WalkTargets(50)) {
    ASSERT_TRUE(msm->ReportOrStatus(target, rng).ok());
  }
  const MsmStats stats = msm->stats();
  EXPECT_EQ(stats.plan_levels, 50);  // root level from the plan
  // Every remaining budget level comes from the cache walk.
  EXPECT_EQ(stats.fallthrough_levels,
            50 * static_cast<int64_t>(msm->height() - 1));
}

TEST(ServingPlanTest, GenerationMovesRebuildThePlan) {
  MsmOptions options;
  auto msm = MakeMsm(options);
  ASSERT_TRUE(msm->PrewarmTopNodes(1000).ok());
  const size_t full = msm->serving_plan_nodes();
  ASSERT_GT(full, 1u);
  const int64_t builds_after_warm = msm->stats().plan_builds;

  // A stable cache means a stable plan: no rebuild however often we look.
  rng::Rng rng(21);
  for (int i = 0; i < 50; ++i) {
    ASSERT_TRUE(msm->ReportOrStatus({4.0, 5.0}, rng).ok());
  }
  EXPECT_EQ(msm->stats().plan_builds, builds_after_warm);

  // Clear() bumps the generation: the next access rebuilds against the
  // now-empty cache, and walks still serve (lazily re-solving).
  msm->cache().Clear();
  EXPECT_EQ(msm->serving_plan_nodes(), 0u);
  EXPECT_GT(msm->stats().plan_builds, builds_after_warm);
  ASSERT_TRUE(msm->ReportOrStatus({4.0, 5.0}, rng).ok());

  // Re-warm: the plan comes back.
  ASSERT_TRUE(msm->PrewarmTopNodes(1000).ok());
  EXPECT_EQ(msm->serving_plan_nodes(), full);
}

TEST(ServingPlanTest, BoundedCachePlanPinsAtMostHalfTheBudget) {
  MsmOptions options;
  auto probe = MakeMsm(options);
  ASSERT_TRUE(probe->PrewarmTopNodes(1000).ok());
  const size_t full_bytes = probe->cache().bytes_resident();
  ASSERT_GT(full_bytes, 0u);

  options.cache_byte_budget = full_bytes;  // everything fits
  auto msm = MakeMsm(options);
  ASSERT_TRUE(msm->PrewarmTopNodes(1000).ok());
  ASSERT_GT(msm->serving_plan_nodes(), 0u);
  // The plan stops pinning at budget/2 even though more nodes are warm,
  // so the evictor always has an unpinned pool to work with.
  EXPECT_LT(msm->serving_plan_nodes(), probe->serving_plan_nodes());
  rng::Rng rng(5);
  for (const Point& target : WalkTargets(60)) {
    ASSERT_TRUE(msm->ReportOrStatus(target, rng).ok());
  }
}

TEST(ServingPlanTest, ReportBatchIsBitIdenticalToSequentialReports) {
  MsmOptions options;
  auto msm = MakeMsm(options);
  const std::vector<Point> targets = WalkTargets(200);

  // Sequential pass first (this also warms the cache — warmness must not
  // change the draw schedule, only where the matrices are read from).
  rng::Rng rng_seq(4242);
  std::vector<Point> sequential;
  for (const Point& target : targets) {
    auto reported = msm->ReportOrStatus(target, rng_seq);
    ASSERT_TRUE(reported.ok());
    sequential.push_back(reported.value());
  }

  rng::Rng rng_batch(4242);
  const auto batch = msm->ReportBatchOrStatus(targets, rng_batch);
  ASSERT_EQ(batch.size(), sequential.size());
  for (size_t i = 0; i < batch.size(); ++i) {
    ASSERT_TRUE(batch[i].ok());
    EXPECT_EQ(batch[i].value(), sequential[i]) << "diverged at item " << i;
  }
}

TEST(ServingPlanTest, EvictionInvalidatingPlansMidWalkStress) {
  // Walkers hammer single and batched reports while one thread Clear()s
  // the cache and a bounded byte budget forces steady evictions — every
  // generation bump invalidates the plan some walker may be mid-walk on.
  // Stale plans must keep serving (pins), rebuilds must race cleanly, and
  // TSan must stay quiet.
  MsmOptions options;
  options.cache_byte_budget = 64 * 1024;
  auto msm = MakeMsm(options, 3, 3);
  ASSERT_TRUE(msm->PrewarmTopNodes(64).ok());

  std::atomic<bool> stop{false};
  std::atomic<uint64_t> walked{0};
  std::vector<std::thread> walkers;
  for (int t = 0; t < 3; ++t) {
    walkers.emplace_back([&, t] {
      rng::Rng rng(1000 + t);
      const std::vector<Point> targets = WalkTargets(30);
      while (!stop.load(std::memory_order_acquire)) {
        if (t == 0) {
          for (const auto& reported : msm->ReportBatchOrStatus(targets, rng)) {
            ASSERT_TRUE(reported.ok());
            walked.fetch_add(1, std::memory_order_relaxed);
          }
        } else {
          for (const Point& target : targets) {
            ASSERT_TRUE(msm->ReportOrStatus(target, rng).ok());
            walked.fetch_add(1, std::memory_order_relaxed);
          }
        }
      }
    });
  }
  std::thread clearer([&] {
    for (int i = 0; i < 8; ++i) {
      msm->cache().Clear();
      rng::Rng rng(9000 + i);
      // Re-warm a little so walkers oscillate between plan and
      // fall-through instead of settling into pure cold walks.
      for (const Point& target : WalkTargets(10)) {
        ASSERT_TRUE(msm->ReportOrStatus(target, rng).ok());
      }
    }
    stop.store(true, std::memory_order_release);
  });
  clearer.join();
  for (auto& w : walkers) w.join();
  EXPECT_GT(walked.load(), 0u);
  EXPECT_GT(msm->stats().plan_builds, 0);
}

}  // namespace
}  // namespace geopriv::core
