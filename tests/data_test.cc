#include <cstdio>
#include <fstream>
#include <set>

#include <gtest/gtest.h>

#include "data/dataset.h"
#include "data/synthetic.h"
#include "prior/prior.h"

namespace geopriv::data {
namespace {

class TempFile {
 public:
  explicit TempFile(const std::string& contents) {
    path_ = ::testing::TempDir() + "/geopriv_data_test_" +
            std::to_string(counter_++) + ".txt";
    std::ofstream out(path_);
    out << contents;
  }
  ~TempFile() { std::remove(path_.c_str()); }
  const std::string& path() const { return path_; }

 private:
  static int counter_;
  std::string path_;
};

int TempFile::counter_ = 0;

TEST(GowallaLoaderTest, ParsesSnapFormat) {
  TempFile file(
      "196514\t2010-07-24T13:45:06Z\t30.2359091167\t-97.7951395833\t22847\n"
      "196514\t2010-07-24T13:44:58Z\t30.2691029532\t-97.7493953705\t420315\n"
      "9\t2010-07-24T13:40:00Z\t53.3648119\t-2.2723465833\t11\n");
  auto records = LoadGowallaCheckins(file.path());
  ASSERT_TRUE(records.ok());
  ASSERT_EQ(records->size(), 3u);
  EXPECT_EQ((*records)[0].user_id, 196514);
  EXPECT_NEAR((*records)[0].lat, 30.2359091167, 1e-12);
  EXPECT_NEAR((*records)[1].lon, -97.7493953705, 1e-12);
}

TEST(GowallaLoaderTest, FiltersByBoundsAndSkipsMalformed) {
  TempFile file(
      "1\t2010-07-24T13:45:06Z\t30.25\t-97.75\t1\n"
      "garbage line without tabs\n"
      "2\tnot-a-time\tnot-a-lat\t-97.75\t2\n"
      "3\t2010-07-24T13:45:06Z\t53.36\t-2.27\t3\n");
  int64_t skipped = 0;
  auto records =
      LoadGowallaCheckins(file.path(), &kGowallaAustinBounds, &skipped);
  ASSERT_TRUE(records.ok());
  EXPECT_EQ(records->size(), 1u);   // Manchester dropped by bounds
  EXPECT_EQ(skipped, 2);            // two malformed lines
}

TEST(GowallaLoaderTest, MissingFileIsIoError) {
  auto records = LoadGowallaCheckins("/nonexistent/gowalla.txt");
  EXPECT_FALSE(records.ok());
  EXPECT_EQ(records.status().code(), StatusCode::kIoError);
}

TEST(CsvLoaderTest, AppliesBoundsFilterAndCountsSkips) {
  TempFile file(
      "user_id,lat,lon\n"
      "1,36.1,-115.2\n"
      "2,53.4,-2.2\n"
      "oops,not,numeric\n");
  int64_t skipped = 0;
  auto records = LoadCsvCheckins(file.path(), &kYelpLasVegasBounds, &skipped);
  ASSERT_TRUE(records.ok());
  EXPECT_EQ(records->size(), 1u);
  EXPECT_EQ(skipped, 1);  // the non-numeric body line (header is free)
}

TEST(GowallaLoaderTest, ToleratesExtraTrailingFields) {
  TempFile file("7\t2010-01-01T00:00:00Z\t30.25\t-97.75\t99\textra\tmore\n");
  auto records = LoadGowallaCheckins(file.path());
  ASSERT_TRUE(records.ok());
  ASSERT_EQ(records->size(), 1u);
  EXPECT_EQ((*records)[0].user_id, 7);
}

TEST(CsvLoaderTest, ParsesWithHeader) {
  TempFile file(
      "user_id,lat,lon\n"
      "42,36.1,-115.2\n"
      "43,36.11,-115.21\n");
  auto records = LoadCsvCheckins(file.path());
  ASSERT_TRUE(records.ok());
  ASSERT_EQ(records->size(), 2u);
  EXPECT_EQ((*records)[0].user_id, 42);
}

TEST(ProjectRecordsTest, ProducesAnchoredPlanarDomain) {
  std::vector<CheckinRecord> records = {
      {1, 30.1927, -97.8698}, {2, 30.3723, -97.6618}, {3, 30.28, -97.76}};
  auto dataset = ProjectRecords("austin", kGowallaAustinBounds, records);
  ASSERT_TRUE(dataset.ok());
  EXPECT_EQ(dataset->points.size(), 3u);
  // South-west corner maps to the origin; region is ~20x20 km.
  EXPECT_NEAR(dataset->points[0].x, 0.0, 1e-9);
  EXPECT_NEAR(dataset->points[0].y, 0.0, 1e-9);
  EXPECT_NEAR(dataset->domain.Width(), 20.0, 0.5);
  EXPECT_NEAR(dataset->domain.Height(), 20.0, 0.5);
  EXPECT_EQ(dataset->num_unique_users(), 3);
  for (const auto& p : dataset->points) {
    EXPECT_TRUE(dataset->domain.Contains(p));
  }
}

TEST(ProjectRecordsTest, RejectsEmptyRegion) {
  std::vector<CheckinRecord> records = {{1, 53.36, -2.27}};
  EXPECT_FALSE(ProjectRecords("x", kGowallaAustinBounds, records).ok());
}

TEST(SyntheticTest, ConfigValidation) {
  SyntheticCityConfig config;
  config.num_checkins = 0;
  EXPECT_FALSE(GenerateSyntheticCity(config).ok());
  config = SyntheticCityConfig();
  config.hotspot_fraction = 1.5;
  EXPECT_FALSE(GenerateSyntheticCity(config).ok());
}

TEST(SyntheticTest, PresetsMatchPaperRecordCounts) {
  auto austin = GowallaAustinLike();
  ASSERT_TRUE(austin.ok());
  EXPECT_EQ(austin->points.size(), 265571u);
  EXPECT_EQ(austin->num_unique_users(), 12155);
  EXPECT_NEAR(austin->domain.Width(), 20.0, 1e-9);

  auto vegas = YelpLasVegasLike();
  ASSERT_TRUE(vegas.ok());
  EXPECT_EQ(vegas->points.size(), 81201u);
  EXPECT_EQ(vegas->num_unique_users(), 7581);
}

TEST(SyntheticTest, DeterministicGivenSeed) {
  SyntheticCityConfig config;
  config.num_checkins = 1000;
  config.num_users = 50;
  auto a = GenerateSyntheticCity(config);
  auto b = GenerateSyntheticCity(config);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  for (size_t i = 0; i < a->points.size(); ++i) {
    EXPECT_EQ(a->points[i], b->points[i]);
    EXPECT_EQ(a->users[i], b->users[i]);
  }
  config.seed = 77;
  auto c = GenerateSyntheticCity(config);
  ASSERT_TRUE(c.ok());
  EXPECT_NE(a->points[0], c->points[0]);
}

TEST(SyntheticTest, AllPointsInsideDomain) {
  SyntheticCityConfig config;
  config.num_checkins = 20000;
  auto d = GenerateSyntheticCity(config);
  ASSERT_TRUE(d.ok());
  for (const auto& p : d->points) {
    EXPECT_TRUE(config.domain.Contains(p));
  }
}

TEST(SyntheticTest, CheckinsAreSpatiallySkewed) {
  // The generated prior must be heavy-tailed like real check-in data: a
  // small share of grid cells should carry the majority of the mass.
  auto d = GowallaAustinLike();
  ASSERT_TRUE(d.ok());
  auto prior = prior::Prior::FromPoints(d->domain, 32, d->points);
  ASSERT_TRUE(prior.ok());
  std::vector<double> masses;
  for (int c = 0; c < 32 * 32; ++c) masses.push_back(prior->mass(c));
  std::sort(masses.rbegin(), masses.rend());
  double top5 = 0.0;
  for (int i = 0; i < 51; ++i) top5 += masses[i];  // top ~5% of cells
  EXPECT_GT(top5, 0.5) << "top 5% of cells should hold >50% of check-ins";
}

TEST(SyntheticTest, UserActivityIsHeavyTailed) {
  auto d = YelpLasVegasLike();
  ASSERT_TRUE(d.ok());
  std::map<int64_t, int> activity;
  for (int64_t u : d->users) ++activity[u];
  std::vector<int> counts;
  counts.reserve(activity.size());
  for (const auto& [u, c] : activity) counts.push_back(c);
  std::sort(counts.rbegin(), counts.rend());
  // The most active user checks in far more than the median user.
  EXPECT_GT(counts.front(), 20 * counts[counts.size() / 2]);
}

}  // namespace
}  // namespace geopriv::data
