// Concurrency tests for src/service/: N threads x M queries through one
// shared SanitizationService. Run them under TSan via
//   cmake -B build-tsan -DGEOPRIV_SANITIZE=thread
// to assert data-race freedom (satellite of the service PR).

#include "service/sanitization_service.h"

#include <atomic>
#include <chrono>
#include <cmath>
#include <limits>
#include <memory>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "core/node_cache.h"
#include "mechanisms/optimal.h"

namespace geopriv::service {
namespace {

// The paper's Austin study region.
constexpr double kMinLat = 30.1927, kMinLon = -97.8698;
constexpr double kMaxLat = 30.3723, kMaxLon = -97.6618;

RegionConfig AustinConfig() {
  RegionConfig config;
  config.min_lat = kMinLat;
  config.min_lon = kMinLon;
  config.max_lat = kMaxLat;
  config.max_lon = kMaxLon;
  config.eps = 0.5;
  config.granularity = 3;
  config.prior_granularity = 32;
  return config;
}

std::unique_ptr<SanitizationService> MakeService(int workers,
                                                 size_t capacity = 1024,
                                                 uint64_t seed = 42) {
  ServiceOptions options;
  options.num_workers = workers;
  options.queue_capacity = capacity;
  options.seed = seed;
  auto service = SanitizationService::Create(options);
  GEOPRIV_CHECK_OK(service.status());
  return std::move(service).value();
}

std::vector<core::LatLon> DowntownQueries(int n) {
  std::vector<core::LatLon> queries;
  queries.reserve(n);
  for (int i = 0; i < n; ++i) {
    queries.push_back({30.2672 + 0.0004 * (i % 13) - 0.002,
                       -97.7431 - 0.0003 * (i % 11) + 0.0015});
  }
  return queries;
}

bool InRegion(const core::LatLon& p) {
  // The MSM reports cell centers inside the region; the projection
  // round-trip can wobble by far less than this slack.
  constexpr double kSlack = 1e-6;
  return p.lat >= kMinLat - kSlack && p.lat <= kMaxLat + kSlack &&
         p.lon >= kMinLon - kSlack && p.lon <= kMaxLon + kSlack;
}

TEST(SanitizationServiceTest, ConcurrentBatchCompletesAndStaysInRegion) {
  auto service = MakeService(4);
  ASSERT_TRUE(service->RegisterRegion("austin", AustinConfig()).ok());
  const auto queries = DowntownQueries(120);
  const auto results = service->SanitizeBatch("austin", queries);
  ASSERT_EQ(results.size(), queries.size());
  for (const auto& r : results) {
    EXPECT_TRUE(r.status.ok()) << r.status.ToString();
    EXPECT_FALSE(r.used_fallback);
    EXPECT_TRUE(InRegion(r.reported))
        << r.reported.lat << "," << r.reported.lon;
    EXPECT_GE(r.worker_id, 0);
    EXPECT_LT(r.worker_id, 4);
    EXPECT_GE(r.latency_ms, 0.0);
  }
  const MetricsSnapshot m = service->metrics().Snapshot();
  EXPECT_EQ(m.requests_total, queries.size());
  EXPECT_EQ(m.requests_ok, queries.size());
  EXPECT_EQ(m.fallbacks_total, 0u);
  EXPECT_EQ(m.latency_count, queries.size());
}

TEST(SanitizationServiceTest, SingleflightSolvesEachNodeOnce) {
  auto service = MakeService(4);
  ASSERT_TRUE(service->RegisterRegion("austin", AustinConfig()).ok());
  // Two cold waves: concurrent misses on the same nodes (the root above
  // all) must coalesce into exactly one LP solve per visited node.
  service->SanitizeBatch("austin", DowntownQueries(80));
  service->SanitizeBatch("austin", DowntownQueries(80));
  const auto info = service->GetRegionInfo("austin");
  ASSERT_TRUE(info.ok());
  EXPECT_GT(info->msm.lp_solves, 0);
  EXPECT_EQ(static_cast<size_t>(info->msm.lp_solves), info->cache_size)
      << "a node was solved more than once (singleflight broken)";
  // Revisited warm nodes are served from the cache or, once the serving
  // plan covers them, from its pinned mechanisms — never re-solved.
  EXPECT_GT(info->msm.cache_hits + info->msm.plan_levels, 0);
}

TEST(SanitizationServiceTest, WorkerStreamsAreDeterministic) {
  // Same seed + single worker => same processing order and RNG stream =>
  // bit-identical outputs across two independent service instances.
  const auto queries = DowntownQueries(40);
  std::vector<core::LatLon> first, second;
  for (std::vector<core::LatLon>* out : {&first, &second}) {
    auto service = MakeService(1, 1024, 20190326);
    ASSERT_TRUE(service->RegisterRegion("austin", AustinConfig()).ok());
    for (const auto& r : service->SanitizeBatch("austin", queries)) {
      ASSERT_TRUE(r.status.ok());
      out->push_back(r.reported);
    }
  }
  ASSERT_EQ(first.size(), second.size());
  for (size_t i = 0; i < first.size(); ++i) {
    EXPECT_DOUBLE_EQ(first[i].lat, second[i].lat) << i;
    EXPECT_DOUBLE_EQ(first[i].lon, second[i].lon) << i;
  }
}

TEST(SanitizationServiceTest, WorkerSeedsAreDistinctPerWorker) {
  std::set<uint64_t> seeds;
  for (int w = 0; w < 16; ++w) {
    seeds.insert(SanitizationService::WorkerSeed(12345, w));
  }
  EXPECT_EQ(seeds.size(), 16u);
  EXPECT_EQ(SanitizationService::WorkerSeed(12345, 3),
            SanitizationService::WorkerSeed(12345, 3));
}

TEST(SanitizationServiceTest, LpTimeLimitDegradesToPlanarLaplace) {
  auto service = MakeService(2);
  RegionConfig config = AustinConfig();
  config.lp_time_limit_seconds = 1e-12;  // every node solve times out
  ASSERT_TRUE(service->RegisterRegion("austin", config).ok());
  const auto results = service->SanitizeBatch("austin", DowntownQueries(20));
  for (const auto& r : results) {
    EXPECT_TRUE(r.status.ok()) << r.status.ToString();
    EXPECT_TRUE(r.used_fallback);
    EXPECT_TRUE(InRegion(r.reported));
  }
  const MetricsSnapshot m = service->metrics().Snapshot();
  EXPECT_EQ(m.fallbacks_total, 20u);
  EXPECT_EQ(m.fallbacks_mechanism, 20u);
  EXPECT_EQ(m.fallbacks_deadline, 0u);
}

TEST(SanitizationServiceTest, ExpiredDeadlineDegradesWithoutMsmWork) {
  auto service = MakeService(1);
  ASSERT_TRUE(service->RegisterRegion("austin", AustinConfig()).ok());
  SanitizeRequest request;
  request.region_id = "austin";
  request.location = {30.2672, -97.7431};
  request.deadline_ms = 1e-6;  // expires before any worker can dequeue it
  auto future = service->SubmitFuture(request);
  const SanitizeResult r = future.get();
  EXPECT_TRUE(r.status.ok());
  EXPECT_TRUE(r.used_fallback);
  EXPECT_TRUE(InRegion(r.reported));
  const MetricsSnapshot m = service->metrics().Snapshot();
  EXPECT_EQ(m.fallbacks_deadline, 1u);
  const auto info = service->GetRegionInfo("austin");
  ASSERT_TRUE(info.ok());
  EXPECT_EQ(info->msm.lp_solves, 0) << "deadline fallback ran the MSM";
}

TEST(SanitizationServiceTest, BackpressureRejectsWhenQueueIsFull) {
  auto service = MakeService(1, /*capacity=*/1);
  ASSERT_TRUE(service->RegisterRegion("austin", AustinConfig()).ok());
  std::atomic<int> completed{0};
  int accepted = 0, rejected = 0;
  // Cold cache: the first request parks the worker in an LP solve, so a
  // burst must overflow the size-1 queue.
  for (int i = 0; i < 200; ++i) {
    const Status s = service->SubmitAsync(
        {"austin", {30.2672, -97.7431}, 0.0},
        [&completed](const SanitizeResult&) { ++completed; });
    if (s.ok()) {
      ++accepted;
    } else {
      EXPECT_EQ(s.code(), StatusCode::kResourceExhausted);
      ++rejected;
    }
  }
  service->Drain();
  EXPECT_EQ(accepted + rejected, 200);
  EXPECT_GT(rejected, 0) << "queue of capacity 1 never filled";
  EXPECT_EQ(completed.load(), accepted);
  const MetricsSnapshot m = service->metrics().Snapshot();
  EXPECT_EQ(m.requests_total, static_cast<uint64_t>(accepted));
  EXPECT_EQ(m.requests_rejected, static_cast<uint64_t>(rejected));
}

TEST(SanitizationServiceTest, UnknownRegionFailsTheRequestNotTheService) {
  auto service = MakeService(2);
  auto future = service->SubmitFuture({"nowhere", {1.0, 2.0}, 0.0});
  const SanitizeResult r = future.get();
  EXPECT_EQ(r.status.code(), StatusCode::kNotFound);
  EXPECT_EQ(service->metrics().Snapshot().requests_failed, 1u);
}

TEST(SanitizationServiceTest, DuplicateRegionRegistrationFails) {
  auto service = MakeService(1);
  ASSERT_TRUE(service->RegisterRegion("austin", AustinConfig()).ok());
  EXPECT_FALSE(service->RegisterRegion("austin", AustinConfig()).ok());
}

TEST(SanitizationServiceTest, MultiTenantRegionsAreIndependent) {
  auto service = MakeService(4);
  ASSERT_TRUE(service->RegisterRegion("austin", AustinConfig()).ok());
  RegionConfig vegas = AustinConfig();
  vegas.min_lat = 36.0;
  vegas.min_lon = -115.35;
  vegas.max_lat = 36.32;
  vegas.max_lon = -115.05;
  ASSERT_TRUE(service->RegisterRegion("vegas", vegas).ok());

  std::vector<std::thread> clients;
  std::atomic<int> bad{0};
  for (int c = 0; c < 2; ++c) {
    clients.emplace_back([&, c] {
      const std::string id = c == 0 ? "austin" : "vegas";
      const double lat = c == 0 ? 30.27 : 36.17;
      const double lon = c == 0 ? -97.74 : -115.14;
      for (const auto& r : service->SanitizeBatch(
               id, std::vector<core::LatLon>(30, {lat, lon}))) {
        if (!r.status.ok() || r.used_fallback) ++bad;
      }
    });
  }
  for (auto& t : clients) t.join();
  EXPECT_EQ(bad.load(), 0);
  EXPECT_TRUE(service->GetRegionInfo("austin").ok());
  EXPECT_TRUE(service->GetRegionInfo("vegas").ok());
}

TEST(SanitizationServiceTest, MetricsJsonContainsServiceAndRegions) {
  auto service = MakeService(2);
  ASSERT_TRUE(service->RegisterRegion("austin", AustinConfig()).ok());
  service->SanitizeBatch("austin", DowntownQueries(10));
  const std::string json = service->MetricsJson();
  EXPECT_NE(json.find("\"service\""), std::string::npos);
  EXPECT_NE(json.find("\"requests_total\":10"), std::string::npos);
  EXPECT_NE(json.find("\"austin\""), std::string::npos);
  EXPECT_NE(json.find("\"lp_solves\""), std::string::npos);
  EXPECT_NE(json.find("\"snapshot_epoch\":1"), std::string::npos);
  EXPECT_NE(json.find("\"plan_builds\""), std::string::npos);
}

TEST(SanitizationServiceTest, UnregisterRegionFlipsTheSnapshot) {
  auto service = MakeService(2);
  EXPECT_EQ(service->snapshot_epoch(), 0u);
  ASSERT_TRUE(service->RegisterRegion("austin", AustinConfig()).ok());
  EXPECT_EQ(service->snapshot_epoch(), 1u);
  EXPECT_TRUE(service->GetRegionInfo("austin").ok());

  EXPECT_TRUE(service->UnregisterRegion("austin").ok());
  EXPECT_EQ(service->snapshot_epoch(), 2u);
  EXPECT_FALSE(service->GetRegionInfo("austin").ok());
  // Requests against the unregistered region fail cleanly, not fatally.
  const auto results = service->SanitizeBatch("austin", DowntownQueries(3));
  for (const auto& r : results) {
    EXPECT_EQ(r.status.code(), StatusCode::kNotFound);
  }
  EXPECT_EQ(service->UnregisterRegion("austin").code(),
            StatusCode::kNotFound);
  // The id is reusable after unregistration.
  EXPECT_TRUE(service->RegisterRegion("austin", AustinConfig()).ok());
  EXPECT_EQ(service->snapshot_epoch(), 3u);
}

TEST(SanitizationServiceTest, SnapshotFlipUnderLoadServesEveryRequest) {
  // Hammers Report traffic concurrently with register/unregister churn:
  // the registry snapshot flips under load and every request must either
  // complete in-region or miss with NotFound — never crash, race, or
  // hang. Run under TSan to assert the lock-free lookup is race-free.
  auto service = MakeService(4);
  ASSERT_TRUE(service->RegisterRegion("austin", AustinConfig()).ok());
  std::atomic<bool> stop{false};
  std::atomic<uint64_t> served{0}, missed{0};

  std::thread churn([&] {
    RegionConfig config = AustinConfig();
    for (int i = 0; i < 6; ++i) {
      ASSERT_TRUE(service->RegisterRegion("churn", config).ok());
      ASSERT_TRUE(service->UnregisterRegion("churn").ok());
    }
    stop.store(true, std::memory_order_release);
  });

  std::vector<std::thread> clients;
  for (int t = 0; t < 3; ++t) {
    clients.emplace_back([&, t] {
      const auto queries = DowntownQueries(40);
      // At least one full pass even if the churn finishes first (on a
      // single core it can run to completion before any client starts).
      bool first = true;
      while (first || !stop.load(std::memory_order_acquire)) {
        first = false;
        // Alternate between the stable and the churning region so some
        // lookups hit mid-flip.
        const std::string id = (t % 2 == 0) ? "austin" : "churn";
        for (const auto& q : queries) {
          SanitizeRequest request;
          request.region_id = id;
          request.location = q;
          auto result = service->SubmitFuture(std::move(request)).get();
          if (result.status.ok()) {
            EXPECT_TRUE(InRegion(result.reported));
            served.fetch_add(1, std::memory_order_relaxed);
          } else {
            EXPECT_EQ(result.status.code(), StatusCode::kNotFound);
            missed.fetch_add(1, std::memory_order_relaxed);
          }
        }
      }
    });
  }
  churn.join();
  for (auto& c : clients) c.join();
  service->Drain();
  EXPECT_GT(served.load(), 0u);
  // Epoch advanced once per publication: initial register + 6 cycles x 2.
  EXPECT_EQ(service->snapshot_epoch(), 13u);
}

TEST(SanitizationServiceTest, MetricsJsonEscapesHostileRegionIds) {
  // A 400-char region id full of quotes and backslashes must come back
  // escaped and untruncated (the old fixed 320-byte snprintf buffer
  // chopped it and emitted invalid JSON).
  std::string hostile;
  while (hostile.size() < 400) hostile += R"(a"b\c)";
  hostile.resize(400);
  auto service = MakeService(1);
  ASSERT_TRUE(service->RegisterRegion(hostile, AustinConfig()).ok());
  const std::string json = service->MetricsJson();
  std::string escaped;
  for (char c : hostile) {
    if (c == '"' || c == '\\') escaped += '\\';
    escaped += c;
  }
  EXPECT_NE(json.find("\"" + escaped + "\":{"), std::string::npos)
      << "escaped id missing or truncated";
  EXPECT_EQ(json.find(hostile), std::string::npos)
      << "raw unescaped id leaked into the JSON";
  // Quotes must balance — a quick structural sanity check that the
  // document was not cut mid-string.
  int quotes = 0;
  for (size_t i = 0; i < json.size(); ++i) {
    if (json[i] == '"' && (i == 0 || json[i - 1] != '\\')) ++quotes;
  }
  EXPECT_EQ(quotes % 2, 0);
  EXPECT_EQ(json.back(), '}');
}

TEST(SanitizationServiceTest, FailedRegistrationReleasesTheReservedId) {
  auto service = MakeService(1);
  RegionConfig bad = AustinConfig();
  bad.eps = 0.0;  // invalid: the build fails after the id was reserved
  EXPECT_FALSE(service->RegisterRegion("austin", bad).ok());
  // The reservation must not leak: the same id registers cleanly now.
  EXPECT_TRUE(service->RegisterRegion("austin", AustinConfig()).ok());
  EXPECT_TRUE(service->GetRegionInfo("austin").ok());
}

TEST(SanitizationServiceTest, ConcurrentDuplicateRegistrationBuildsOnce) {
  auto service = MakeService(2);
  std::atomic<int> ok_count{0}, dup_count{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&] {
      const Status s = service->RegisterRegion("austin", AustinConfig());
      if (s.ok()) {
        ++ok_count;
      } else {
        EXPECT_EQ(s.code(), StatusCode::kFailedPrecondition)
            << s.ToString();
        ++dup_count;
      }
    });
  }
  for (auto& t : threads) t.join();
  // The id is reserved before the expensive build, so exactly one racer
  // wins and the losers fail fast instead of building and then colliding.
  EXPECT_EQ(ok_count.load(), 1);
  EXPECT_EQ(dup_count.load(), 3);
  const auto results =
      service->SanitizeBatch("austin", DowntownQueries(10));
  for (const auto& r : results) EXPECT_TRUE(r.status.ok());
}

TEST(SanitizationServiceTest, ShutdownMidBatchUnblocksTheProducer) {
  // A batch producer blocked on the full queue must fail over to the
  // rejection path (which notifies the batch's condition variable) when
  // the service shuts down — never hang.
  auto service = MakeService(1, /*capacity=*/1);
  RegionConfig config = AustinConfig();
  config.granularity = 6;  // large root LP: the worker parks for a while
  ASSERT_TRUE(service->RegisterRegion("austin", config).ok());
  std::vector<SanitizeResult> results;
  std::thread producer([&] {
    results = service->SanitizeBatch(
        "austin", std::vector<core::LatLon>(64, {30.2672, -97.7431}));
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  service->Shutdown();
  producer.join();  // regression: hangs here without the rejection notify
  ASSERT_EQ(results.size(), 64u);
  int rejected = 0;
  for (const auto& r : results) {
    if (!r.status.ok()) {
      EXPECT_EQ(r.status.code(), StatusCode::kResourceExhausted);
      ++rejected;
    }
  }
  // Not asserted > 0: on a machine fast enough to drain the batch before
  // Shutdown lands, everything legitimately completes.
  EXPECT_LE(rejected, 64);
}

TEST(SanitizationServiceTest, DeadlineOverrunMidWalkIsServedAndCounted) {
  // A deadline that survives the queue but expires inside the MSM walk:
  // the reply is still served (budget already spent), not degraded, and
  // the overrun is visible in the result and the metrics. Cold caches
  // make the walk slow (root LP with 36 candidates); the loop retries
  // with a fresh service in case scheduling noise burned the deadline in
  // the queue instead.
  bool observed = false;
  for (int attempt = 0; attempt < 10 && !observed; ++attempt) {
    auto service = MakeService(1);
    RegionConfig config = AustinConfig();
    config.granularity = 6;
    ASSERT_TRUE(service->RegisterRegion("austin", config).ok());
    SanitizeRequest request;
    request.region_id = "austin";
    request.location = {30.2672, -97.7431};
    request.deadline_ms = 2.0;
    const SanitizeResult r = service->SubmitFuture(request).get();
    ASSERT_TRUE(r.status.ok());
    if (r.used_fallback) continue;  // deadline died in the queue: retry
    ASSERT_TRUE(r.deadline_overrun)
        << "cold 36-candidate walk finished under 2ms?";
    EXPECT_GE(r.latency_ms, 2.0);
    EXPECT_EQ(service->metrics().Snapshot().deadline_overruns, 1u);
    observed = true;
  }
  EXPECT_TRUE(observed)
      << "never observed a mid-walk overrun in 10 attempts";
}

TEST(SanitizationServiceTest, PrewarmSolvesTopNodesBeforeTraffic) {
  auto service = MakeService(2);
  RegionConfig config = AustinConfig();
  config.prewarm_nodes = 3;
  ASSERT_TRUE(service->RegisterRegion("austin", config).ok());
  auto info = service->GetRegionInfo("austin");
  ASSERT_TRUE(info.ok());
  EXPECT_EQ(info->prewarmed_nodes, 3);
  EXPECT_EQ(info->msm.lp_solves, 3);
  EXPECT_EQ(info->cache_size, 3u);
  EXPECT_GT(info->cache_bytes_resident, 0u);
  // The root is warmed first (it has the largest mass by construction),
  // so the first query's level-1 step is guaranteed warm. With the
  // serving plan it is served from the pinned plan (zero cache traffic)
  // and shows up as a plan level; with the plan off it is a cache hit.
  service->SanitizeBatch("austin", DowntownQueries(1));
  info = service->GetRegionInfo("austin");
  ASSERT_TRUE(info.ok());
  EXPECT_GT(info->msm.plan_levels + info->msm.cache_hits, 0);
}

TEST(SanitizationServiceTest, BoundedRegionCacheReportsEvictions) {
  auto service = MakeService(2);
  RegionConfig config = AustinConfig();
  config.cache_byte_budget = 8 * 1024;  // a couple of 9-candidate entries
  ASSERT_TRUE(service->RegisterRegion("austin", config).ok());
  service->SanitizeBatch("austin", DowntownQueries(200));
  const auto info = service->GetRegionInfo("austin");
  ASSERT_TRUE(info.ok());
  EXPECT_EQ(info->cache_byte_budget, 8u * 1024u);
  // Walker pins can carry the cache over budget mid-batch, but each
  // walker sweeps the cache back down when it releases them, so the
  // post-batch residue is at most one entry of slack.
  EXPECT_LE(info->msm.cache_bytes_resident,
            static_cast<int64_t>(info->cache_byte_budget) + 4096);
  const std::string json = service->MetricsJson();
  EXPECT_NE(json.find("\"cache_bytes_resident\""), std::string::npos);
  EXPECT_NE(json.find("\"cache_evictions\""), std::string::npos);
  EXPECT_NE(json.find("\"cache_hit_rate\""), std::string::npos);
}

TEST(MetricsTest, InfiniteLatencySampleDoesNotPoisonTheMean) {
  Metrics metrics;
  metrics.RecordLatency(std::numeric_limits<double>::infinity());
  metrics.RecordLatency(1e-3);
  const MetricsSnapshot s = metrics.Snapshot();
  EXPECT_EQ(s.latency_count, 2u);
  EXPECT_TRUE(std::isfinite(s.latency_mean_ms));
  EXPECT_TRUE(std::isfinite(s.latency_p99_ms));
  // The corrupt sample lands in the top bucket instead of vanishing.
  EXPECT_LE(metrics.latency_total_seconds(),
            LatencyHistogram::BucketBound(LatencyHistogram::kNumBuckets - 1) +
                1.0);
  // NaN and negative stay clamped to zero as before.
  metrics.RecordLatency(std::numeric_limits<double>::quiet_NaN());
  metrics.RecordLatency(-5.0);
  EXPECT_TRUE(std::isfinite(metrics.latency_total_seconds()));
  EXPECT_EQ(metrics.latency_count(), 4u);
}

TEST(MetricsTest, ShardedSlotsAggregateAcrossRecorders) {
  Metrics metrics(4);
  // Same event stream spread across distinct slots must read back as one
  // aggregate, and quantiles must merge the per-slot histograms.
  for (int slot = 0; slot < 4; ++slot) {
    metrics.RecordAccepted(slot);
    metrics.RecordOk(slot);
    metrics.RecordLatency(1e-3 * (slot + 1), slot);
  }
  metrics.RecordDeadlineFallback(1);
  metrics.RecordMechanismFallback(2);
  metrics.RecordRejected(0);
  const MetricsSnapshot s = metrics.Snapshot();
  EXPECT_EQ(s.requests_total, 4u);
  EXPECT_EQ(s.requests_ok, 4u);
  EXPECT_EQ(s.requests_rejected, 1u);
  EXPECT_EQ(s.fallbacks_total, 2u);
  EXPECT_EQ(s.fallbacks_deadline, 1u);
  EXPECT_EQ(s.fallbacks_mechanism, 1u);
  EXPECT_EQ(s.latency_count, 4u);
  EXPECT_NEAR(s.latency_mean_ms, 2.5, 1.0);
  // A p99 over the merged buckets must sit near the largest sample, not
  // near whatever one slot saw.
  EXPECT_GT(s.latency_p99_ms, 1.0);
  // Out-of-range slots fold in instead of crashing or dropping events.
  metrics.RecordOk(99);
  metrics.RecordOk(-1);
  EXPECT_EQ(metrics.Snapshot().requests_ok, 6u);
}

// --- NodeMechanismCache: direct singleflight semantics ---

StatusOr<std::unique_ptr<mechanisms::OptimalMechanism>> TinyMechanism() {
  GEOPRIV_ASSIGN_OR_RETURN(
      mechanisms::OptimalMechanism mech,
      mechanisms::OptimalMechanism::Create(
          1.0, {{0.0, 0.0}, {1.0, 0.0}}, {0.5, 0.5},
          geo::UtilityMetric::kEuclidean));
  return std::make_unique<mechanisms::OptimalMechanism>(std::move(mech));
}

TEST(NodeMechanismCacheTest, ConcurrentMissesRunFactoryOnce) {
  core::NodeMechanismCache cache(4);
  std::atomic<int> factory_calls{0};
  std::atomic<const mechanisms::OptimalMechanism*> first_seen{nullptr};
  std::atomic<int> mismatches{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < 8; ++t) {
    threads.emplace_back([&] {
      auto result = cache.GetOrCompute(7, [&] {
        ++factory_calls;
        // Widen the race window so every thread really does pile up on
        // the in-flight entry.
        std::this_thread::sleep_for(std::chrono::milliseconds(20));
        return TinyMechanism();
      });
      ASSERT_TRUE(result.ok());
      const mechanisms::OptimalMechanism* raw = result.value().get();
      const mechanisms::OptimalMechanism* expected = nullptr;
      if (!first_seen.compare_exchange_strong(expected, raw)) {
        if (expected != raw) ++mismatches;
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(factory_calls.load(), 1);
  EXPECT_EQ(mismatches.load(), 0);
  EXPECT_EQ(cache.size(), 1u);
}

TEST(NodeMechanismCacheTest, FailedBuildPropagatesAndAllowsRetry) {
  core::NodeMechanismCache cache(2);
  auto failing = cache.GetOrCompute(3, [] {
    return StatusOr<std::unique_ptr<mechanisms::OptimalMechanism>>(
        Status::DeadlineExceeded("boom"));
  });
  EXPECT_EQ(failing.status().code(), StatusCode::kDeadlineExceeded);
  EXPECT_EQ(cache.size(), 0u);
  auto retry = cache.GetOrCompute(3, [] { return TinyMechanism(); });
  EXPECT_TRUE(retry.ok());
  EXPECT_EQ(cache.size(), 1u);
}

TEST(NodeMechanismCacheTest, ClearNeverInvalidatesAHeldMechanism) {
  // The lifetime contract of the shared_ptr API: a caller's copy pins the
  // mechanism across Clear(), so using it afterwards is not a
  // use-after-free (ASan/TSan builds verify this for real).
  core::NodeMechanismCache cache(2);
  auto held = cache.GetOrCompute(1, [] { return TinyMechanism(); });
  ASSERT_TRUE(held.ok());
  cache.Clear();
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_EQ(cache.bytes_resident(), 0u);
  rng::Rng rng(7);
  for (int i = 0; i < 50; ++i) {
    const int z = held.value()->ReportIndex(0, rng);
    EXPECT_GE(z, 0);
    EXPECT_LT(z, held.value()->num_locations());
  }
}

TEST(NodeMechanismCacheTest, ByteBudgetEvictsDownToBudgetPlusOneEntry) {
  // Calibrate the per-entry footprint with an unbounded probe cache.
  size_t entry_bytes = 0;
  {
    core::NodeMechanismCache probe(1);
    ASSERT_TRUE(probe.GetOrCompute(0, [] { return TinyMechanism(); }).ok());
    entry_bytes = probe.bytes_resident();
    ASSERT_GT(entry_bytes, 0u);
  }
  const size_t budget = 3 * entry_bytes;
  core::NodeMechanismCache cache(4, budget);
  for (spatial::NodeIndex node = 0; node < 12; ++node) {
    ASSERT_TRUE(cache.GetOrCompute(node, [] { return TinyMechanism(); }).ok());
    // Nothing is pinned between calls, so the resident total may only
    // overshoot by the entry that just landed.
    EXPECT_LE(cache.bytes_resident(), budget + entry_bytes) << node;
  }
  EXPECT_LE(cache.bytes_resident(), budget);
  EXPECT_GE(cache.evictions(), 8u);
  EXPECT_LE(cache.size(), 3u);
}

TEST(NodeMechanismCacheTest, EvictionPrefersTheLeastRecentlyUsedEntry) {
  size_t entry_bytes = 0;
  {
    core::NodeMechanismCache probe(1);
    ASSERT_TRUE(probe.GetOrCompute(0, [] { return TinyMechanism(); }).ok());
    entry_bytes = probe.bytes_resident();
  }
  core::NodeMechanismCache cache(4, 3 * entry_bytes);
  for (spatial::NodeIndex node = 1; node <= 3; ++node) {
    ASSERT_TRUE(cache.GetOrCompute(node, [] { return TinyMechanism(); }).ok());
  }
  // Touch node 1 so node 2 becomes the LRU, then overflow with node 4.
  bool hit = false;
  ASSERT_TRUE(cache.GetOrCompute(1, [] { return TinyMechanism(); }, &hit)
                  .ok());
  EXPECT_TRUE(hit);
  ASSERT_TRUE(cache.GetOrCompute(4, [] { return TinyMechanism(); }).ok());
  EXPECT_EQ(cache.evictions(), 1u);
  std::atomic<int> rebuilds{0};
  auto counting = [&] {
    ++rebuilds;
    return TinyMechanism();
  };
  ASSERT_TRUE(cache.GetOrCompute(1, counting, &hit).ok());  // survived
  EXPECT_TRUE(hit);
  ASSERT_TRUE(cache.GetOrCompute(2, counting, &hit).ok());  // was evicted
  EXPECT_FALSE(hit);
  EXPECT_EQ(rebuilds.load(), 1);
}

TEST(NodeMechanismCacheTest, PinnedEntriesAreSkippedByTheEvictor) {
  size_t entry_bytes = 0;
  {
    core::NodeMechanismCache probe(1);
    ASSERT_TRUE(probe.GetOrCompute(0, [] { return TinyMechanism(); }).ok());
    entry_bytes = probe.bytes_resident();
  }
  core::NodeMechanismCache cache(2, entry_bytes);  // budget: one entry
  std::vector<core::NodeMechanismCache::MechanismPtr> pins;
  for (spatial::NodeIndex node = 0; node < 4; ++node) {
    auto r = cache.GetOrCompute(node, [] { return TinyMechanism(); });
    ASSERT_TRUE(r.ok());
    pins.push_back(std::move(r).value());
  }
  // Every entry is pinned by a live reader: nothing may be evicted even
  // though the cache is far over budget.
  EXPECT_EQ(cache.evictions(), 0u);
  EXPECT_EQ(cache.size(), 4u);
  EXPECT_GT(cache.bytes_resident(), cache.byte_budget());
  rng::Rng rng(3);
  for (const auto& mech : pins) {
    EXPECT_GE(mech->ReportIndex(0, rng), 0);
  }
  // Dropping the pins makes the backlog evictable on the next insert.
  pins.clear();
  ASSERT_TRUE(cache.GetOrCompute(99, [] { return TinyMechanism(); }).ok());
  EXPECT_GE(cache.evictions(), 3u);
  EXPECT_LE(cache.bytes_resident(), cache.byte_budget() + entry_bytes);
}

TEST(NodeMechanismCacheTest, ClearAndEvictionUnderConcurrentLookupsStress) {
  // Hammers the full lifecycle — misses, hits, eviction, Clear() — from
  // several threads while every returned mechanism is actually used. Under
  // -DGEOPRIV_SANITIZE=thread (or address) this is the proof that no raw
  // pointer escapes and nothing is freed under a reader.
  size_t entry_bytes = 0;
  {
    core::NodeMechanismCache probe(1);
    ASSERT_TRUE(probe.GetOrCompute(0, [] { return TinyMechanism(); }).ok());
    entry_bytes = probe.bytes_resident();
  }
  core::NodeMechanismCache cache(4, 4 * entry_bytes);
  std::atomic<bool> stop{false};
  std::atomic<int> failures{0};
  std::vector<std::thread> readers;
  for (int t = 0; t < 4; ++t) {
    readers.emplace_back([&, t] {
      rng::Rng rng(1000 + static_cast<uint64_t>(t));
      for (int i = 0; i < 400; ++i) {
        const spatial::NodeIndex node =
            static_cast<spatial::NodeIndex>(rng.UniformInt(16));
        auto r = cache.GetOrCompute(node, [] { return TinyMechanism(); });
        if (!r.ok()) {
          ++failures;
          continue;
        }
        // Use the mechanism *after* the lookup so a concurrent Clear()
        // or eviction overlaps the use window.
        if (r.value()->ReportIndex(0, rng) < 0) ++failures;
      }
    });
  }
  std::thread clearer([&] {
    while (!stop.load(std::memory_order_relaxed)) {
      cache.Clear();
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  });
  for (auto& t : readers) t.join();
  stop.store(true, std::memory_order_relaxed);
  clearer.join();
  EXPECT_EQ(failures.load(), 0);
  // Post-stress bookkeeping is consistent: one more Clear() must zero the
  // resident byte count exactly (no leaked or double-counted charges).
  cache.Clear();
  EXPECT_EQ(cache.bytes_resident(), 0u);
  EXPECT_EQ(cache.size(), 0u);
}

TEST(NodeMechanismCacheTest, MsmWalksSurviveConcurrentClearAndEviction) {
  // Service-shaped version of the stress: live MSM walks against a
  // bounded cache while another thread keeps dropping it.
  core::LocationSanitizer::Builder builder;
  auto sanitizer = builder
                       .SetRegionLatLon(kMinLat, kMinLon, kMaxLat, kMaxLon)
                       .SetEpsilon(0.5)
                       .SetGranularity(3)
                       .SetPriorGranularity(16)
                       .SetCacheByteBudget(32 * 1024)
                       .Build();
  ASSERT_TRUE(sanitizer.ok());
  std::atomic<bool> stop{false};
  std::atomic<int> failures{0};
  std::vector<std::thread> walkers;
  for (int t = 0; t < 3; ++t) {
    walkers.emplace_back([&, t] {
      rng::Rng rng(77 + static_cast<uint64_t>(t));
      for (int i = 0; i < 60; ++i) {
        auto z = sanitizer->SanitizeOrStatus({10.0 + 0.1 * (i % 7), 8.0},
                                             rng);
        if (!z.ok()) ++failures;
      }
    });
  }
  std::thread clearer([&] {
    while (!stop.load(std::memory_order_relaxed)) {
      sanitizer->mechanism().cache().Clear();
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
  });
  for (auto& t : walkers) t.join();
  stop.store(true, std::memory_order_relaxed);
  clearer.join();
  EXPECT_EQ(failures.load(), 0);
}

TEST(NodeMechanismCacheTest, DistinctNodesDoNotCollide) {
  core::NodeMechanismCache cache(4);
  for (spatial::NodeIndex node = 0; node < 32; ++node) {
    bool hit = true;
    auto r = cache.GetOrCompute(node, [] { return TinyMechanism(); }, &hit);
    ASSERT_TRUE(r.ok());
    EXPECT_FALSE(hit);
  }
  EXPECT_EQ(cache.size(), 32u);
  bool hit = false;
  ASSERT_TRUE(cache.GetOrCompute(5, [] { return TinyMechanism(); }, &hit)
                  .ok());
  EXPECT_TRUE(hit);
}

}  // namespace
}  // namespace geopriv::service
