// Concurrency tests for src/service/: N threads x M queries through one
// shared SanitizationService. Run them under TSan via
//   cmake -B build-tsan -DGEOPRIV_SANITIZE=thread
// to assert data-race freedom (satellite of the service PR).

#include "service/sanitization_service.h"

#include <atomic>
#include <chrono>
#include <memory>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "core/node_cache.h"
#include "mechanisms/optimal.h"

namespace geopriv::service {
namespace {

// The paper's Austin study region.
constexpr double kMinLat = 30.1927, kMinLon = -97.8698;
constexpr double kMaxLat = 30.3723, kMaxLon = -97.6618;

RegionConfig AustinConfig() {
  RegionConfig config;
  config.min_lat = kMinLat;
  config.min_lon = kMinLon;
  config.max_lat = kMaxLat;
  config.max_lon = kMaxLon;
  config.eps = 0.5;
  config.granularity = 3;
  config.prior_granularity = 32;
  return config;
}

std::unique_ptr<SanitizationService> MakeService(int workers,
                                                 size_t capacity = 1024,
                                                 uint64_t seed = 42) {
  ServiceOptions options;
  options.num_workers = workers;
  options.queue_capacity = capacity;
  options.seed = seed;
  auto service = SanitizationService::Create(options);
  GEOPRIV_CHECK_OK(service.status());
  return std::move(service).value();
}

std::vector<core::LatLon> DowntownQueries(int n) {
  std::vector<core::LatLon> queries;
  queries.reserve(n);
  for (int i = 0; i < n; ++i) {
    queries.push_back({30.2672 + 0.0004 * (i % 13) - 0.002,
                       -97.7431 - 0.0003 * (i % 11) + 0.0015});
  }
  return queries;
}

bool InRegion(const core::LatLon& p) {
  // The MSM reports cell centers inside the region; the projection
  // round-trip can wobble by far less than this slack.
  constexpr double kSlack = 1e-6;
  return p.lat >= kMinLat - kSlack && p.lat <= kMaxLat + kSlack &&
         p.lon >= kMinLon - kSlack && p.lon <= kMaxLon + kSlack;
}

TEST(SanitizationServiceTest, ConcurrentBatchCompletesAndStaysInRegion) {
  auto service = MakeService(4);
  ASSERT_TRUE(service->RegisterRegion("austin", AustinConfig()).ok());
  const auto queries = DowntownQueries(120);
  const auto results = service->SanitizeBatch("austin", queries);
  ASSERT_EQ(results.size(), queries.size());
  for (const auto& r : results) {
    EXPECT_TRUE(r.status.ok()) << r.status.ToString();
    EXPECT_FALSE(r.used_fallback);
    EXPECT_TRUE(InRegion(r.reported))
        << r.reported.lat << "," << r.reported.lon;
    EXPECT_GE(r.worker_id, 0);
    EXPECT_LT(r.worker_id, 4);
    EXPECT_GE(r.latency_ms, 0.0);
  }
  const MetricsSnapshot m = service->metrics().Snapshot();
  EXPECT_EQ(m.requests_total, queries.size());
  EXPECT_EQ(m.requests_ok, queries.size());
  EXPECT_EQ(m.fallbacks_total, 0u);
  EXPECT_EQ(m.latency_count, queries.size());
}

TEST(SanitizationServiceTest, SingleflightSolvesEachNodeOnce) {
  auto service = MakeService(4);
  ASSERT_TRUE(service->RegisterRegion("austin", AustinConfig()).ok());
  // Two cold waves: concurrent misses on the same nodes (the root above
  // all) must coalesce into exactly one LP solve per visited node.
  service->SanitizeBatch("austin", DowntownQueries(80));
  service->SanitizeBatch("austin", DowntownQueries(80));
  const auto info = service->GetRegionInfo("austin");
  ASSERT_TRUE(info.ok());
  EXPECT_GT(info->msm.lp_solves, 0);
  EXPECT_EQ(static_cast<size_t>(info->msm.lp_solves), info->cache_size)
      << "a node was solved more than once (singleflight broken)";
  EXPECT_GT(info->msm.cache_hits, 0);
}

TEST(SanitizationServiceTest, WorkerStreamsAreDeterministic) {
  // Same seed + single worker => same processing order and RNG stream =>
  // bit-identical outputs across two independent service instances.
  const auto queries = DowntownQueries(40);
  std::vector<core::LatLon> first, second;
  for (std::vector<core::LatLon>* out : {&first, &second}) {
    auto service = MakeService(1, 1024, 20190326);
    ASSERT_TRUE(service->RegisterRegion("austin", AustinConfig()).ok());
    for (const auto& r : service->SanitizeBatch("austin", queries)) {
      ASSERT_TRUE(r.status.ok());
      out->push_back(r.reported);
    }
  }
  ASSERT_EQ(first.size(), second.size());
  for (size_t i = 0; i < first.size(); ++i) {
    EXPECT_DOUBLE_EQ(first[i].lat, second[i].lat) << i;
    EXPECT_DOUBLE_EQ(first[i].lon, second[i].lon) << i;
  }
}

TEST(SanitizationServiceTest, WorkerSeedsAreDistinctPerWorker) {
  std::set<uint64_t> seeds;
  for (int w = 0; w < 16; ++w) {
    seeds.insert(SanitizationService::WorkerSeed(12345, w));
  }
  EXPECT_EQ(seeds.size(), 16u);
  EXPECT_EQ(SanitizationService::WorkerSeed(12345, 3),
            SanitizationService::WorkerSeed(12345, 3));
}

TEST(SanitizationServiceTest, LpTimeLimitDegradesToPlanarLaplace) {
  auto service = MakeService(2);
  RegionConfig config = AustinConfig();
  config.lp_time_limit_seconds = 1e-12;  // every node solve times out
  ASSERT_TRUE(service->RegisterRegion("austin", config).ok());
  const auto results = service->SanitizeBatch("austin", DowntownQueries(20));
  for (const auto& r : results) {
    EXPECT_TRUE(r.status.ok()) << r.status.ToString();
    EXPECT_TRUE(r.used_fallback);
    EXPECT_TRUE(InRegion(r.reported));
  }
  const MetricsSnapshot m = service->metrics().Snapshot();
  EXPECT_EQ(m.fallbacks_total, 20u);
  EXPECT_EQ(m.fallbacks_mechanism, 20u);
  EXPECT_EQ(m.fallbacks_deadline, 0u);
}

TEST(SanitizationServiceTest, ExpiredDeadlineDegradesWithoutMsmWork) {
  auto service = MakeService(1);
  ASSERT_TRUE(service->RegisterRegion("austin", AustinConfig()).ok());
  SanitizeRequest request;
  request.region_id = "austin";
  request.location = {30.2672, -97.7431};
  request.deadline_ms = 1e-6;  // expires before any worker can dequeue it
  auto future = service->SubmitFuture(request);
  const SanitizeResult r = future.get();
  EXPECT_TRUE(r.status.ok());
  EXPECT_TRUE(r.used_fallback);
  EXPECT_TRUE(InRegion(r.reported));
  const MetricsSnapshot m = service->metrics().Snapshot();
  EXPECT_EQ(m.fallbacks_deadline, 1u);
  const auto info = service->GetRegionInfo("austin");
  ASSERT_TRUE(info.ok());
  EXPECT_EQ(info->msm.lp_solves, 0) << "deadline fallback ran the MSM";
}

TEST(SanitizationServiceTest, BackpressureRejectsWhenQueueIsFull) {
  auto service = MakeService(1, /*capacity=*/1);
  ASSERT_TRUE(service->RegisterRegion("austin", AustinConfig()).ok());
  std::atomic<int> completed{0};
  int accepted = 0, rejected = 0;
  // Cold cache: the first request parks the worker in an LP solve, so a
  // burst must overflow the size-1 queue.
  for (int i = 0; i < 200; ++i) {
    const Status s = service->SubmitAsync(
        {"austin", {30.2672, -97.7431}, 0.0},
        [&completed](const SanitizeResult&) { ++completed; });
    if (s.ok()) {
      ++accepted;
    } else {
      EXPECT_EQ(s.code(), StatusCode::kResourceExhausted);
      ++rejected;
    }
  }
  service->Drain();
  EXPECT_EQ(accepted + rejected, 200);
  EXPECT_GT(rejected, 0) << "queue of capacity 1 never filled";
  EXPECT_EQ(completed.load(), accepted);
  const MetricsSnapshot m = service->metrics().Snapshot();
  EXPECT_EQ(m.requests_total, static_cast<uint64_t>(accepted));
  EXPECT_EQ(m.requests_rejected, static_cast<uint64_t>(rejected));
}

TEST(SanitizationServiceTest, UnknownRegionFailsTheRequestNotTheService) {
  auto service = MakeService(2);
  auto future = service->SubmitFuture({"nowhere", {1.0, 2.0}, 0.0});
  const SanitizeResult r = future.get();
  EXPECT_EQ(r.status.code(), StatusCode::kNotFound);
  EXPECT_EQ(service->metrics().Snapshot().requests_failed, 1u);
}

TEST(SanitizationServiceTest, DuplicateRegionRegistrationFails) {
  auto service = MakeService(1);
  ASSERT_TRUE(service->RegisterRegion("austin", AustinConfig()).ok());
  EXPECT_FALSE(service->RegisterRegion("austin", AustinConfig()).ok());
}

TEST(SanitizationServiceTest, MultiTenantRegionsAreIndependent) {
  auto service = MakeService(4);
  ASSERT_TRUE(service->RegisterRegion("austin", AustinConfig()).ok());
  RegionConfig vegas = AustinConfig();
  vegas.min_lat = 36.0;
  vegas.min_lon = -115.35;
  vegas.max_lat = 36.32;
  vegas.max_lon = -115.05;
  ASSERT_TRUE(service->RegisterRegion("vegas", vegas).ok());

  std::vector<std::thread> clients;
  std::atomic<int> bad{0};
  for (int c = 0; c < 2; ++c) {
    clients.emplace_back([&, c] {
      const std::string id = c == 0 ? "austin" : "vegas";
      const double lat = c == 0 ? 30.27 : 36.17;
      const double lon = c == 0 ? -97.74 : -115.14;
      for (const auto& r : service->SanitizeBatch(
               id, std::vector<core::LatLon>(30, {lat, lon}))) {
        if (!r.status.ok() || r.used_fallback) ++bad;
      }
    });
  }
  for (auto& t : clients) t.join();
  EXPECT_EQ(bad.load(), 0);
  EXPECT_TRUE(service->GetRegionInfo("austin").ok());
  EXPECT_TRUE(service->GetRegionInfo("vegas").ok());
}

TEST(SanitizationServiceTest, MetricsJsonContainsServiceAndRegions) {
  auto service = MakeService(2);
  ASSERT_TRUE(service->RegisterRegion("austin", AustinConfig()).ok());
  service->SanitizeBatch("austin", DowntownQueries(10));
  const std::string json = service->MetricsJson();
  EXPECT_NE(json.find("\"service\""), std::string::npos);
  EXPECT_NE(json.find("\"requests_total\":10"), std::string::npos);
  EXPECT_NE(json.find("\"austin\""), std::string::npos);
  EXPECT_NE(json.find("\"lp_solves\""), std::string::npos);
}

// --- NodeMechanismCache: direct singleflight semantics ---

StatusOr<std::unique_ptr<mechanisms::OptimalMechanism>> TinyMechanism() {
  GEOPRIV_ASSIGN_OR_RETURN(
      mechanisms::OptimalMechanism mech,
      mechanisms::OptimalMechanism::Create(
          1.0, {{0.0, 0.0}, {1.0, 0.0}}, {0.5, 0.5},
          geo::UtilityMetric::kEuclidean));
  return std::make_unique<mechanisms::OptimalMechanism>(std::move(mech));
}

TEST(NodeMechanismCacheTest, ConcurrentMissesRunFactoryOnce) {
  core::NodeMechanismCache cache(4);
  std::atomic<int> factory_calls{0};
  std::atomic<const mechanisms::OptimalMechanism*> shared_ptr_seen{nullptr};
  std::atomic<int> mismatches{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < 8; ++t) {
    threads.emplace_back([&] {
      auto result = cache.GetOrCompute(7, [&] {
        ++factory_calls;
        // Widen the race window so every thread really does pile up on
        // the in-flight entry.
        std::this_thread::sleep_for(std::chrono::milliseconds(20));
        return TinyMechanism();
      });
      ASSERT_TRUE(result.ok());
      const mechanisms::OptimalMechanism* expected = nullptr;
      if (!shared_ptr_seen.compare_exchange_strong(expected,
                                                   result.value())) {
        if (expected != result.value()) ++mismatches;
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(factory_calls.load(), 1);
  EXPECT_EQ(mismatches.load(), 0);
  EXPECT_EQ(cache.size(), 1u);
}

TEST(NodeMechanismCacheTest, FailedBuildPropagatesAndAllowsRetry) {
  core::NodeMechanismCache cache(2);
  auto failing = cache.GetOrCompute(3, [] {
    return StatusOr<std::unique_ptr<mechanisms::OptimalMechanism>>(
        Status::DeadlineExceeded("boom"));
  });
  EXPECT_EQ(failing.status().code(), StatusCode::kDeadlineExceeded);
  EXPECT_EQ(cache.size(), 0u);
  auto retry = cache.GetOrCompute(3, [] { return TinyMechanism(); });
  EXPECT_TRUE(retry.ok());
  EXPECT_EQ(cache.size(), 1u);
}

TEST(NodeMechanismCacheTest, DistinctNodesDoNotCollide) {
  core::NodeMechanismCache cache(4);
  for (spatial::NodeIndex node = 0; node < 32; ++node) {
    bool hit = true;
    auto r = cache.GetOrCompute(node, [] { return TinyMechanism(); }, &hit);
    ASSERT_TRUE(r.ok());
    EXPECT_FALSE(hit);
  }
  EXPECT_EQ(cache.size(), 32u);
  bool hit = false;
  ASSERT_TRUE(cache.GetOrCompute(5, [] { return TinyMechanism(); }, &hit)
                  .ok());
  EXPECT_TRUE(hit);
}

}  // namespace
}  // namespace geopriv::service
