// Tests for the consistent-hash ShardRouter: determinism across
// instances, full shard coverage, bounded remapping under ring growth,
// the request counters, and the routing-table JSON shape.

#include "service/shard_router.h"

#include <algorithm>
#include <set>
#include <string>
#include <vector>

#include <gtest/gtest.h>

namespace geopriv::service {
namespace {

std::vector<std::string> RegionIds(int count) {
  std::vector<std::string> ids;
  ids.reserve(static_cast<size_t>(count));
  for (int i = 0; i < count; ++i) {
    ids.push_back("region-" + std::to_string(i * 7919));
  }
  return ids;
}

TEST(ShardRouterTest, PlacementIsDeterministicAcrossInstances) {
  // Two routers with the same parameters — in this process or any other —
  // must agree on every placement; that is the whole contract.
  const ShardRouter a(8, 64);
  const ShardRouter b(8, 64);
  for (const std::string& id : RegionIds(500)) {
    EXPECT_EQ(a.ShardFor(id), b.ShardFor(id)) << id;
  }
}

TEST(ShardRouterTest, EveryShardIsInRangeAndReachable) {
  const ShardRouter router(8, 64);
  std::set<int> seen;
  for (const std::string& id : RegionIds(2000)) {
    const int shard = router.ShardFor(id);
    ASSERT_GE(shard, 0);
    ASSERT_LT(shard, 8);
    seen.insert(shard);
  }
  // 2000 ids over 8 shards with 64 vnodes each: every shard owns some.
  EXPECT_EQ(seen.size(), 8u);
}

TEST(ShardRouterTest, GrowingTheRingMovesOnlyAFractionOfRegions) {
  // Consistent hashing's point: going from N to N+1 shards should move
  // roughly 1/(N+1) of the keys, not reshuffle everything. Allow a loose
  // 3x margin over the ideal to keep the test robust to vnode variance.
  const ShardRouter before(8, 64);
  const ShardRouter after(9, 64);
  const auto ids = RegionIds(4000);
  int moved = 0;
  for (const std::string& id : ids) {
    if (before.ShardFor(id) != after.ShardFor(id)) ++moved;
  }
  EXPECT_GT(moved, 0);  // some movement is expected...
  EXPECT_LT(moved, static_cast<int>(ids.size()) / 3)
      << "ring growth reshuffled " << moved << "/" << ids.size();
}

TEST(ShardRouterTest, DegenerateParametersAreClamped) {
  const ShardRouter router(0, 0);  // clamped to 1 shard, 1 vnode
  EXPECT_EQ(router.num_shards(), 1);
  EXPECT_EQ(router.ShardFor("anything"), 0);
}

TEST(ShardRouterTest, CountersTrackRecordedRequests) {
  ShardRouter router(4, 16);
  const int shard = router.ShardFor("hot-region");
  for (int i = 0; i < 5; ++i) router.RecordRequest(shard);
  EXPECT_EQ(router.requests(shard), 5u);
  // Out-of-range records and reads are ignored, not UB.
  router.RecordRequest(-1);
  router.RecordRequest(99);
  EXPECT_EQ(router.requests(-1), 0u);
  EXPECT_EQ(router.requests(99), 0u);

  const std::string json = router.RoutingTableJson();
  EXPECT_NE(json.find("\"num_shards\":4"), std::string::npos) << json;
  EXPECT_NE(json.find("\"vnodes_per_shard\":16"), std::string::npos) << json;
  EXPECT_NE(json.find("\"requests\":["), std::string::npos) << json;
  // Exactly four comma-separated counts.
  const size_t open = json.find('[');
  const size_t close = json.find(']');
  ASSERT_NE(open, std::string::npos);
  ASSERT_NE(close, std::string::npos);
  const std::string counts = json.substr(open + 1, close - open - 1);
  EXPECT_EQ(std::count(counts.begin(), counts.end(), ','), 3);
}

}  // namespace
}  // namespace geopriv::service
