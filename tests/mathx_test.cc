#include <cmath>

#include <gtest/gtest.h>

#include "mathx/lambert_w.h"
#include "mathx/lattice_sum.h"
#include "mathx/special_functions.h"

namespace geopriv::mathx {
namespace {

constexpr double kInvE = 0.36787944117144232;

TEST(LambertWTest, W0SatisfiesDefiningIdentity) {
  for (double x : {-0.35, -0.2, -0.05, 0.0, 0.1, 0.5, 1.0, 5.0, 100.0,
                   1e6}) {
    const double w = LambertW0(x);
    EXPECT_NEAR(w * std::exp(w), x, 1e-10 * (1.0 + std::abs(x)))
        << "x=" << x;
  }
}

TEST(LambertWTest, Wm1SatisfiesDefiningIdentity) {
  for (double x : {-kInvE + 1e-10, -0.367, -0.3, -0.2, -0.1, -0.01, -1e-4,
                   -1e-8}) {
    const double w = LambertWm1(x);
    EXPECT_NEAR(w * std::exp(w), x, 1e-10) << "x=" << x;
    EXPECT_LE(w, -1.0 + 1e-6) << "W_{-1} lies below -1";
  }
}

TEST(LambertWTest, BranchPointValue) {
  EXPECT_NEAR(LambertW0(-kInvE), -1.0, 1e-5);
  EXPECT_NEAR(LambertWm1(-kInvE), -1.0, 1e-5);
}

TEST(LambertWTest, KnownValues) {
  EXPECT_NEAR(LambertW0(0.0), 0.0, 1e-15);
  EXPECT_NEAR(LambertW0(M_E), 1.0, 1e-12);          // 1*e^1 = e
  EXPECT_NEAR(LambertW0(2.0 * std::exp(2.0)), 2.0, 1e-12);
  EXPECT_NEAR(LambertWm1(-2.0 * std::exp(-2.0)), -2.0, 1e-12);
}

TEST(LambertWTest, OutOfDomainIsNaN) {
  EXPECT_TRUE(std::isnan(LambertW0(-0.4)));
  EXPECT_TRUE(std::isnan(LambertWm1(-0.4)));
  EXPECT_TRUE(std::isnan(LambertWm1(0.1)));
  EXPECT_TRUE(std::isnan(LambertWm1(0.0)));
}

TEST(PlanarLaplaceInverseCdfTest, RoundTripsThroughCdf) {
  for (double eps : {0.1, 0.5, 2.0}) {
    for (double p : {0.01, 0.3, 0.5, 0.9, 0.999}) {
      auto r = PlanarLaplaceInverseRadialCdf(eps, p);
      ASSERT_TRUE(r.ok());
      const double er = eps * r.value();
      const double cdf = 1.0 - (1.0 + er) * std::exp(-er);
      EXPECT_NEAR(cdf, p, 1e-9) << "eps=" << eps << " p=" << p;
    }
  }
}

TEST(PlanarLaplaceInverseCdfTest, ZeroAtZeroProbability) {
  auto r = PlanarLaplaceInverseRadialCdf(1.0, 0.0);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 0.0);
}

TEST(PlanarLaplaceInverseCdfTest, RejectsBadArguments) {
  EXPECT_FALSE(PlanarLaplaceInverseRadialCdf(0.0, 0.5).ok());
  EXPECT_FALSE(PlanarLaplaceInverseRadialCdf(-1.0, 0.5).ok());
  EXPECT_FALSE(PlanarLaplaceInverseRadialCdf(1.0, 1.0).ok());
  EXPECT_FALSE(PlanarLaplaceInverseRadialCdf(1.0, -0.1).ok());
}

TEST(PlanarLaplaceInverseCdfTest, MonotoneInP) {
  double prev = 0.0;
  for (double p = 0.05; p < 1.0; p += 0.05) {
    const double r = PlanarLaplaceInverseRadialCdf(0.5, p).value();
    EXPECT_GT(r, prev);
    prev = r;
  }
}

TEST(SpecialFunctionsTest, ZetaKnownValues) {
  EXPECT_NEAR(RiemannZeta(2.0), M_PI * M_PI / 6.0, 1e-12);
  EXPECT_NEAR(RiemannZeta(4.0), std::pow(M_PI, 4) / 90.0, 1e-12);
  EXPECT_NEAR(RiemannZeta(3.0), 1.2020569031595943, 1e-12);
  EXPECT_NEAR(RiemannZeta(1.5), 2.6123753486854883, 1e-11);
}

TEST(SpecialFunctionsTest, ZetaMatchesDirectSumForLargeS) {
  for (double s : {5.0, 6.5, 8.0, 12.0}) {
    double direct = 0.0;
    for (int n = 1; n <= 200000; ++n) direct += std::pow(n, -s);
    EXPECT_NEAR(RiemannZeta(s), direct, 1e-10) << "s=" << s;
  }
}

TEST(SpecialFunctionsTest, ZetaOutOfDomain) {
  EXPECT_TRUE(std::isnan(RiemannZeta(1.0)));
  EXPECT_TRUE(std::isnan(RiemannZeta(0.5)));
}

TEST(SpecialFunctionsTest, DirichletBetaKnownValues) {
  EXPECT_NEAR(DirichletBeta(1.0), M_PI / 4.0, 1e-13);
  EXPECT_NEAR(DirichletBeta(2.0), 0.9159655941772190, 1e-12);  // Catalan
  EXPECT_NEAR(DirichletBeta(3.0), std::pow(M_PI, 3) / 32.0, 1e-12);
}

TEST(SpecialFunctionsTest, DirichletBetaMatchesPairedDirectSum) {
  // Summing consecutive +/- pairs gives a monotone series; the truncation
  // error is on the order of the first neglected term, so the comparison
  // tolerance scales with it.
  for (double s : {0.5, 1.5, 2.5, 3.5}) {
    double direct = 0.0;
    const int terms = 4000000;
    for (int n = 0; n < terms; n += 2) {
      direct += std::pow(2.0 * n + 1.0, -s) - std::pow(2.0 * n + 3.0, -s);
    }
    const double tail = std::pow(2.0 * terms + 1.0, -s);
    EXPECT_NEAR(DirichletBeta(s), direct, 2.0 * tail + 1e-10) << "s=" << s;
  }
}

TEST(SpecialFunctionsTest, GeneralizedBinomial) {
  EXPECT_DOUBLE_EQ(GeneralizedBinomial(-1.5, 0), 1.0);
  EXPECT_DOUBLE_EQ(GeneralizedBinomial(-1.5, 1), -1.5);
  EXPECT_DOUBLE_EQ(GeneralizedBinomial(-1.5, 2), 1.875);
  EXPECT_DOUBLE_EQ(GeneralizedBinomial(5.0, 2), 10.0);  // ordinary C(5,2)
  EXPECT_DOUBLE_EQ(GeneralizedBinomial(5.0, 6), 0.0);
}

// The paper's series expansion (Eq. 8-10) must agree with brute-force
// lattice summation inside its convergence region. This validates both the
// coefficients c_{2k-1} and our implementation of zeta/beta.
TEST(LatticeSumTest, SeriesMatchesDirectSummation) {
  for (double s : {0.05, 0.1, 0.25, 0.5, 1.0, 1.5, 2.5, 4.0}) {
    const double direct = LatticeExponentialSumDirect(s, 1e-12);
    const double series = LatticeExponentialSumSeries(s, 1e-14);
    EXPECT_NEAR(series / direct, 1.0, 1e-8) << "s=" << s;
  }
}

TEST(LatticeSumTest, ApproachesOneForLargeS) {
  EXPECT_NEAR(LatticeExponentialSumDirect(30.0), 1.0, 1e-10);
}

TEST(LatticeSumTest, DominatedByLeadingTermForSmallS) {
  const double s = 0.01;
  const double t = LatticeExponentialSumSeries(s);
  EXPECT_NEAR(t, 2.0 * M_PI / (s * s), 0.01 * t);
}

TEST(LatticeSumTest, StrictlyDecreasingInS) {
  double prev = LatticeExponentialSum(0.05);
  for (double s = 0.1; s < 10.0; s += 0.17) {
    const double t = LatticeExponentialSum(s);
    EXPECT_LT(t, prev) << "s=" << s;
    prev = t;
  }
}

TEST(SelfMappingTest, ProbabilityIsInUnitInterval) {
  for (double eps : {0.05, 0.5, 2.0}) {
    for (double side : {0.5, 2.0, 10.0}) {
      const double phi = SelfMappingProbability(eps, side);
      EXPECT_GT(phi, 0.0);
      EXPECT_LT(phi, 1.0);
    }
  }
}

TEST(SelfMappingTest, MinBudgetAchievesRho) {
  for (double rho : {0.5, 0.6, 0.7, 0.8, 0.9}) {
    for (double side : {2.0, 5.0, 10.0}) {
      auto eps = MinBudgetForSelfMapping(rho, side);
      ASSERT_TRUE(eps.ok());
      EXPECT_NEAR(SelfMappingProbability(eps.value(), side), rho, 1e-6)
          << "rho=" << rho << " side=" << side;
    }
  }
}

TEST(SelfMappingTest, MinBudgetScalesInverselyWithCellSide) {
  // Only the product eps * side matters, so eps(rho, side) * side is
  // constant.
  const double a = MinBudgetForSelfMapping(0.8, 1.0).value();
  const double b = MinBudgetForSelfMapping(0.8, 4.0).value();
  EXPECT_NEAR(a, 4.0 * b, 1e-6 * a);
}

TEST(SelfMappingTest, RejectsBadArguments) {
  EXPECT_FALSE(MinBudgetForSelfMapping(0.0, 1.0).ok());
  EXPECT_FALSE(MinBudgetForSelfMapping(1.0, 1.0).ok());
  EXPECT_FALSE(MinBudgetForSelfMapping(0.5, -1.0).ok());
}

}  // namespace
}  // namespace geopriv::mathx
