#include <algorithm>
#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "geo/distance.h"
#include "rng/rng.h"
#include "spatial/grid.h"
#include "spatial/hierarchical_grid.h"
#include "spatial/kd_partition.h"
#include "spatial/quadtree.h"
#include "spatial/str_rtree.h"

namespace geopriv::spatial {
namespace {

using geo::BBox;
using geo::Point;

constexpr BBox kDomain{0.0, 0.0, 20.0, 20.0};

std::vector<Point> RandomPoints(int n, uint64_t seed,
                                const BBox& box = kDomain) {
  rng::Rng rng(seed);
  std::vector<Point> pts(n);
  for (auto& p : pts) {
    p = {rng.Uniform(box.min_x, box.max_x),
         rng.Uniform(box.min_y, box.max_y)};
  }
  return pts;
}

TEST(UniformGridTest, CellIndexRoundTrip) {
  UniformGrid grid(kDomain, 4);
  EXPECT_EQ(grid.num_cells(), 16);
  for (int cell = 0; cell < grid.num_cells(); ++cell) {
    EXPECT_EQ(grid.CellOf(grid.CenterOf(cell)), cell);
    EXPECT_TRUE(grid.CellBounds(cell).Contains(grid.CenterOf(cell)));
  }
}

TEST(UniformGridTest, ClampsOutsidePoints) {
  UniformGrid grid(kDomain, 4);
  EXPECT_EQ(grid.CellOf({-5.0, -5.0}), grid.cell_at(0, 0));
  EXPECT_EQ(grid.CellOf({25.0, 25.0}), grid.cell_at(3, 3));
  EXPECT_FALSE(grid.Contains({25.0, 25.0}));
}

TEST(UniformGridTest, CellsTileTheDomain) {
  UniformGrid grid(kDomain, 5);
  double area = 0.0;
  for (int cell = 0; cell < grid.num_cells(); ++cell) {
    area += grid.CellBounds(cell).Area();
  }
  EXPECT_NEAR(area, kDomain.Area(), 1e-9);
}

TEST(HierarchicalGridTest, CreateValidation) {
  EXPECT_FALSE(HierarchicalGrid::Create(kDomain, 1, 3).ok());
  EXPECT_FALSE(HierarchicalGrid::Create(kDomain, 2, 0).ok());
  EXPECT_FALSE(HierarchicalGrid::Create({0, 0, 0, 0}, 2, 3).ok());
  EXPECT_FALSE(HierarchicalGrid::Create(kDomain, 6, 18).ok());
  EXPECT_TRUE(HierarchicalGrid::Create(kDomain, 3, 4).ok());
}

TEST(HierarchicalGridTest, RootAndLevels) {
  auto grid = HierarchicalGrid::Create(kDomain, 3, 3);
  ASSERT_TRUE(grid.ok());
  EXPECT_EQ(grid->height(), 3);
  EXPECT_EQ(grid->Bounds(HierarchicalPartition::kRoot), kDomain);
  EXPECT_FALSE(grid->IsLeaf(HierarchicalPartition::kRoot));
  EXPECT_EQ(grid->LevelOf(HierarchicalPartition::kRoot), 0);
  EXPECT_DOUBLE_EQ(grid->TypicalCellSide(1), 20.0 / 3.0);
  EXPECT_DOUBLE_EQ(grid->TypicalCellSide(3), 20.0 / 27.0);
}

TEST(HierarchicalGridTest, ChildrenTileParent) {
  auto grid = HierarchicalGrid::Create(kDomain, 3, 3);
  ASSERT_TRUE(grid.ok());
  // Walk a random path down and check tiling at each step.
  rng::Rng rng(1);
  NodeIndex node = HierarchicalPartition::kRoot;
  while (!grid->IsLeaf(node)) {
    const BBox parent = grid->Bounds(node);
    const auto children = grid->Children(node);
    ASSERT_EQ(children.size(), 9u);
    double area = 0.0;
    for (const auto& c : children) {
      area += c.bounds.Area();
      EXPECT_GE(c.bounds.min_x, parent.min_x - 1e-9);
      EXPECT_LE(c.bounds.max_x, parent.max_x + 1e-9);
      EXPECT_EQ(grid->Bounds(c.id), c.bounds);
    }
    EXPECT_NEAR(area, parent.Area(), 1e-9);
    node = children[rng.UniformInt(children.size())].id;
  }
  EXPECT_EQ(grid->LevelOf(node), 3);
}

TEST(HierarchicalGridTest, NodeAtFindsEnclosingCell) {
  auto grid = HierarchicalGrid::Create(kDomain, 4, 2);
  ASSERT_TRUE(grid.ok());
  rng::Rng rng(3);
  for (int trial = 0; trial < 200; ++trial) {
    const Point p{rng.Uniform(0.0, 20.0), rng.Uniform(0.0, 20.0)};
    for (int level = 0; level <= 2; ++level) {
      const NodeIndex node = grid->NodeAt(level, p);
      EXPECT_TRUE(grid->Bounds(node).Contains(p));
      EXPECT_EQ(grid->LevelOf(node), level);
    }
  }
}

TEST(HierarchicalGridTest, ChildIdsAreConsistentWithNodeAt) {
  auto grid = HierarchicalGrid::Create(kDomain, 2, 4);
  ASSERT_TRUE(grid.ok());
  const Point p{13.7, 4.2};
  NodeIndex node = HierarchicalPartition::kRoot;
  for (int level = 1; level <= 4; ++level) {
    const auto children = grid->Children(node);
    NodeIndex found = -1;
    for (const auto& c : children) {
      if (c.bounds.Contains(p)) {
        found = c.id;
        break;
      }
    }
    ASSERT_GE(found, 0);
    EXPECT_EQ(found, grid->NodeAt(level, p));
    node = found;
  }
}

TEST(KdPartitionTest, CreateValidation) {
  const auto pts = RandomPoints(100, 7);
  EXPECT_FALSE(KdPartition::Create(kDomain, pts, 1, 2).ok());
  EXPECT_FALSE(KdPartition::Create(kDomain, pts, 2, 0).ok());
  EXPECT_FALSE(KdPartition::Create(kDomain, pts, 6, 12).ok());
  EXPECT_TRUE(KdPartition::Create(kDomain, pts, 2, 3).ok());
}

TEST(KdPartitionTest, ChildrenTileParentAndBalanceMass) {
  // Clustered data: children should adapt and carry similar counts.
  rng::Rng rng(11);
  std::vector<Point> pts;
  for (int i = 0; i < 4000; ++i) {
    pts.push_back({std::clamp(rng.Gaussian(4.0, 1.5), 0.0, 20.0),
                   std::clamp(rng.Gaussian(15.0, 2.0), 0.0, 20.0)});
  }
  auto tree = KdPartition::Create(kDomain, pts, 3, 2);
  ASSERT_TRUE(tree.ok());
  const auto children = tree->Children(HierarchicalPartition::kRoot);
  ASSERT_EQ(children.size(), 9u);
  double area = 0.0;
  std::vector<int> counts(children.size(), 0);
  for (const Point& p : pts) {
    for (size_t c = 0; c < children.size(); ++c) {
      if (children[c].bounds.Contains(p)) {
        ++counts[c];
        break;
      }
    }
  }
  for (size_t c = 0; c < children.size(); ++c) {
    area += children[c].bounds.Area();
    // Equal-mass splits: each child holds roughly n / 9 points.
    EXPECT_NEAR(counts[c], 4000 / 9, 150) << "child " << c;
  }
  EXPECT_NEAR(area, kDomain.Area(), 1e-6);
}

TEST(KdPartitionTest, FallsBackToUniformOnSparseData) {
  auto tree = KdPartition::Create(kDomain, RandomPoints(3, 5), 2, 2);
  ASSERT_TRUE(tree.ok());
  const auto children = tree->Children(HierarchicalPartition::kRoot);
  ASSERT_EQ(children.size(), 4u);
  for (const auto& c : children) {
    EXPECT_NEAR(c.bounds.Area(), 100.0, 1e-9);
  }
}

TEST(QuadTreeTest, CreateValidation) {
  const auto pts = RandomPoints(100, 9);
  EXPECT_FALSE(AdaptiveQuadTree::Create(kDomain, pts, 0, 10).ok());
  EXPECT_FALSE(AdaptiveQuadTree::Create(kDomain, pts, 4, 0).ok());
  EXPECT_TRUE(AdaptiveQuadTree::Create(kDomain, pts, 4, 10).ok());
}

TEST(QuadTreeTest, DeepWhereDense) {
  // All mass in one corner: that quadrant should be subdivided, the
  // opposite one should be a level-1 leaf.
  rng::Rng rng(13);
  std::vector<Point> pts;
  for (int i = 0; i < 2000; ++i) {
    pts.push_back({rng.Uniform(0.0, 2.0), rng.Uniform(0.0, 2.0)});
  }
  auto tree = AdaptiveQuadTree::Create(kDomain, pts, 6, 20);
  ASSERT_TRUE(tree.ok());
  const auto children = tree->Children(HierarchicalPartition::kRoot);
  ASSERT_EQ(children.size(), 4u);
  // children[0] is SW (dense), children[3] is NE (empty).
  EXPECT_FALSE(tree->IsLeaf(children[0].id));
  EXPECT_TRUE(tree->IsLeaf(children[3].id));
  EXPECT_EQ(tree->PointCount(children[3].id), 0);
  EXPECT_EQ(tree->PointCount(children[0].id), 2000);
  EXPECT_GE(tree->height(), 3);
}

TEST(QuadTreeTest, CountsArePreservedAcrossSplits) {
  const auto pts = RandomPoints(5000, 17);
  auto tree = AdaptiveQuadTree::Create(kDomain, pts, 5, 50);
  ASSERT_TRUE(tree.ok());
  // Sum of children counts equals the parent count, recursively.
  std::vector<NodeIndex> stack = {HierarchicalPartition::kRoot};
  while (!stack.empty()) {
    const NodeIndex node = stack.back();
    stack.pop_back();
    if (tree->IsLeaf(node)) continue;
    int sum = 0;
    for (const auto& c : tree->Children(node)) {
      sum += tree->PointCount(c.id);
      stack.push_back(c.id);
    }
    EXPECT_EQ(sum, tree->PointCount(node));
  }
}

TEST(StrRTreeTest, BuildValidation) {
  EXPECT_FALSE(StrRTree::Build({}, 16).ok());
  EXPECT_FALSE(StrRTree::Build(RandomPoints(10, 1), 1).ok());
  EXPECT_TRUE(StrRTree::Build(RandomPoints(10, 1), 4).ok());
}

TEST(StrRTreeTest, NearestMatchesBruteForce) {
  const auto pts = RandomPoints(2000, 21);
  auto tree = StrRTree::Build(pts, 16);
  ASSERT_TRUE(tree.ok());
  rng::Rng rng(22);
  for (int trial = 0; trial < 100; ++trial) {
    const Point q{rng.Uniform(-2.0, 22.0), rng.Uniform(-2.0, 22.0)};
    int best = 0;
    for (int i = 1; i < 2000; ++i) {
      if (geo::SquaredEuclidean(pts[i], q) <
          geo::SquaredEuclidean(pts[best], q)) {
        best = i;
      }
    }
    EXPECT_DOUBLE_EQ(geo::SquaredEuclidean(pts[tree->Nearest(q)], q),
                     geo::SquaredEuclidean(pts[best], q));
  }
}

TEST(StrRTreeTest, KNearestIsSortedAndMatchesBruteForce) {
  const auto pts = RandomPoints(500, 23);
  auto tree = StrRTree::Build(pts, 8);
  ASSERT_TRUE(tree.ok());
  const Point q{10.0, 10.0};
  const int k = 25;
  const auto knn = tree->KNearest(q, k);
  ASSERT_EQ(knn.size(), static_cast<size_t>(k));
  // Ascending distances.
  for (int i = 1; i < k; ++i) {
    EXPECT_LE(geo::SquaredEuclidean(pts[knn[i - 1]], q),
              geo::SquaredEuclidean(pts[knn[i]], q) + 1e-12);
  }
  // Matches a brute-force top-k (by distance multiset).
  std::vector<double> brute(pts.size());
  for (size_t i = 0; i < pts.size(); ++i) {
    brute[i] = geo::SquaredEuclidean(pts[i], q);
  }
  std::sort(brute.begin(), brute.end());
  for (int i = 0; i < k; ++i) {
    EXPECT_DOUBLE_EQ(geo::SquaredEuclidean(pts[knn[i]], q), brute[i]);
  }
}

TEST(StrRTreeTest, KnnLargerThanTreeReturnsAll) {
  const auto pts = RandomPoints(7, 29);
  auto tree = StrRTree::Build(pts, 4);
  ASSERT_TRUE(tree.ok());
  EXPECT_EQ(tree->KNearest({0, 0}, 20).size(), 7u);
}

TEST(StrRTreeTest, RangeQueryMatchesBruteForce) {
  const auto pts = RandomPoints(3000, 31);
  auto tree = StrRTree::Build(pts, 16);
  ASSERT_TRUE(tree.ok());
  const BBox box{3.0, 5.0, 9.0, 12.0};
  auto found = tree->InRange(box);
  std::sort(found.begin(), found.end());
  std::vector<int> brute;
  for (int i = 0; i < 3000; ++i) {
    if (box.Contains(pts[i])) brute.push_back(i);
  }
  EXPECT_EQ(found, brute);
}

TEST(StrRTreeTest, PointAccessorUsesOriginalIndexing) {
  // Regression: point(i) must accept the ORIGINAL index space that queries
  // return, not the internal STR-packed order.
  const auto pts = RandomPoints(300, 33);
  auto tree = StrRTree::Build(pts, 8);
  ASSERT_TRUE(tree.ok());
  for (int i = 0; i < 300; ++i) {
    EXPECT_EQ(tree->point(i), pts[i]) << i;
  }
  const Point q{4.2, 13.1};
  const int nn = tree->Nearest(q);
  EXPECT_EQ(tree->point(nn), pts[nn]);
}

TEST(KdPartitionTest, TypicalCellSideShrinksWithDepth) {
  const auto pts = RandomPoints(5000, 41);
  auto tree = KdPartition::Create(kDomain, pts, 2, 4);
  ASSERT_TRUE(tree.ok());
  double prev = 1e9;
  for (int level = 1; level <= 4; ++level) {
    const double side = tree->TypicalCellSide(level);
    EXPECT_GT(side, 0.0);
    EXPECT_LT(side, prev) << "level " << level;
    prev = side;
  }
}

TEST(QuadTreeTest, TypicalCellSideHalvesPerLevel) {
  const auto pts = RandomPoints(5000, 43);
  auto tree = AdaptiveQuadTree::Create(kDomain, pts, 4, 100);
  ASSERT_TRUE(tree.ok());
  // Quadrants always halve the parent, and all nodes at a level share the
  // same size under a square domain.
  for (int level = 1; level <= tree->height(); ++level) {
    if (tree->TypicalCellSide(level) == 0.0) continue;  // level unreached
    EXPECT_NEAR(tree->TypicalCellSide(level), 20.0 / (1 << level), 1e-9)
        << "level " << level;
  }
}

TEST(HierarchicalGridTest, RectangularDomainUsesGeometricMeanSide) {
  auto grid = HierarchicalGrid::Create({0, 0, 40, 10}, 2, 2);
  ASSERT_TRUE(grid.ok());
  // Level-1 cells are 20 x 5 -> geometric mean 10.
  EXPECT_NEAR(grid->TypicalCellSide(1), 10.0, 1e-12);
}

TEST(StrRTreeTest, SinglePointTree) {
  auto tree = StrRTree::Build({{1.0, 2.0}}, 4);
  ASSERT_TRUE(tree.ok());
  EXPECT_EQ(tree->Nearest({100.0, 100.0}), 0);
  EXPECT_EQ(tree->InRange({0, 0, 5, 5}).size(), 1u);
}

}  // namespace
}  // namespace geopriv::spatial
