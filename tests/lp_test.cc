#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "lp/interior_point.h"
#include "lp/model.h"
#include "lp/revised_simplex.h"
#include "rng/rng.h"

namespace geopriv::lp {
namespace {

SolverOptions DefaultOptions() {
  SolverOptions o;
  o.time_limit_seconds = 30.0;
  return o;
}

// Verifies primal feasibility, dual sign conventions, complementary
// slackness, and strong duality for an optimal simplex solution of a
// minimization problem.
void VerifyKkt(const Model& model, const LpSolution& sol, double tol = 1e-6) {
  ASSERT_TRUE(sol.optimal());
  ASSERT_EQ(static_cast<int>(sol.x.size()), model.num_variables());
  ASSERT_EQ(static_cast<int>(sol.duals.size()), model.num_constraints());
  const double sense =
      model.sense() == ObjectiveSense::kMinimize ? 1.0 : -1.0;

  // Primal feasibility.
  for (int j = 0; j < model.num_variables(); ++j) {
    EXPECT_GE(sol.x[j], model.lower_bound(j) - tol);
    EXPECT_LE(sol.x[j], model.upper_bound(j) + tol);
  }
  std::vector<double> row_activity(model.num_constraints(), 0.0);
  for (int i = 0; i < model.num_constraints(); ++i) {
    for (const Coefficient& t : model.row(i)) {
      row_activity[i] += t.value * sol.x[t.var];
    }
    const double scale = 1.0 + std::abs(model.rhs(i));
    switch (model.constraint_sense(i)) {
      case ConstraintSense::kLessEqual:
        EXPECT_LE(row_activity[i], model.rhs(i) + tol * scale) << "row " << i;
        break;
      case ConstraintSense::kGreaterEqual:
        EXPECT_GE(row_activity[i], model.rhs(i) - tol * scale) << "row " << i;
        break;
      case ConstraintSense::kEqual:
        EXPECT_NEAR(row_activity[i], model.rhs(i), tol * scale) << "row "
                                                                << i;
        break;
    }
  }

  // Reduced costs and dual signs (for the minimization form).
  std::vector<double> reduced(model.num_variables());
  for (int j = 0; j < model.num_variables(); ++j) {
    reduced[j] = sense * model.objective_coefficient(j);
  }
  for (int i = 0; i < model.num_constraints(); ++i) {
    const double y = sense * sol.duals[i];
    switch (model.constraint_sense(i)) {
      case ConstraintSense::kLessEqual:
        EXPECT_LE(y, tol) << "row " << i;
        break;
      case ConstraintSense::kGreaterEqual:
        EXPECT_GE(y, -tol) << "row " << i;
        break;
      case ConstraintSense::kEqual:
        break;
    }
    // Complementary slackness: non-binding row -> zero dual.
    const double slack = model.rhs(i) - row_activity[i];
    if (std::abs(slack) > 1e-5 * (1.0 + std::abs(model.rhs(i)))) {
      EXPECT_NEAR(y, 0.0, tol) << "row " << i;
    }
    for (const Coefficient& t : model.row(i)) {
      reduced[t.var] -= y * t.value;
    }
  }
  double duality_rhs = 0.0;
  for (int i = 0; i < model.num_constraints(); ++i) {
    duality_rhs += sense * sol.duals[i] * model.rhs(i);
  }
  for (int j = 0; j < model.num_variables(); ++j) {
    const double lb = model.lower_bound(j);
    const double ub = model.upper_bound(j);
    const double at_lb = std::abs(sol.x[j] - lb);
    const double at_ub = std::abs(sol.x[j] - ub);
    if (at_lb > 1e-6 && at_ub > 1e-6) {
      EXPECT_NEAR(reduced[j], 0.0, 1e-5) << "var " << j;
    }
    if (reduced[j] > tol) EXPECT_LT(at_lb, 1e-5) << "var " << j;
    if (reduced[j] < -tol) EXPECT_LT(at_ub, 1e-5) << "var " << j;
    duality_rhs += reduced[j] * sol.x[j];
  }
  EXPECT_NEAR(sense * sol.objective, duality_rhs,
              1e-6 * (1.0 + std::abs(sol.objective)))
      << "strong duality";
}

TEST(SimplexTest, SolvesTextbookMaximization) {
  // max 3x + 2y s.t. x + y <= 4, x <= 2, y <= 3, x,y >= 0 -> (2,2), obj 10.
  Model m(ObjectiveSense::kMaximize);
  const int x = m.AddVariable(0, kInfinity, 3.0);
  const int y = m.AddVariable(0, kInfinity, 2.0);
  m.AddConstraint(ConstraintSense::kLessEqual, 4.0, {{x, 1.0}, {y, 1.0}});
  m.AddConstraint(ConstraintSense::kLessEqual, 2.0, {{x, 1.0}});
  m.AddConstraint(ConstraintSense::kLessEqual, 3.0, {{y, 1.0}});
  const LpSolution sol = RevisedSimplex::Solve(m, DefaultOptions());
  ASSERT_TRUE(sol.optimal()) << SolveStatusToString(sol.status);
  EXPECT_NEAR(sol.objective, 10.0, 1e-9);
  EXPECT_NEAR(sol.x[x], 2.0, 1e-9);
  EXPECT_NEAR(sol.x[y], 2.0, 1e-9);
  VerifyKkt(m, sol);
}

TEST(SimplexTest, SolvesEqualityConstrainedMin) {
  // min x + 2y s.t. x + y = 2, x,y >= 0 -> x=2, y=0, obj 2.
  Model m;
  const int x = m.AddVariable(0, kInfinity, 1.0);
  const int y = m.AddVariable(0, kInfinity, 2.0);
  m.AddConstraint(ConstraintSense::kEqual, 2.0, {{x, 1.0}, {y, 1.0}});
  const LpSolution sol = RevisedSimplex::Solve(m, DefaultOptions());
  ASSERT_TRUE(sol.optimal());
  EXPECT_NEAR(sol.objective, 2.0, 1e-9);
  EXPECT_NEAR(sol.x[x], 2.0, 1e-9);
  VerifyKkt(m, sol);
}

TEST(SimplexTest, HandlesGreaterEqualRows) {
  // min 2x + 3y s.t. x + y >= 4, x - y >= -2, x,y >= 0.
  // Optimum at intersection x+y=4, x-y=-2 -> (1,3)? obj 2+9=11; but
  // y-heavy is costly: try (4,0): 8, feasible (4-0 >= -2). So obj 8.
  Model m;
  const int x = m.AddVariable(0, kInfinity, 2.0);
  const int y = m.AddVariable(0, kInfinity, 3.0);
  m.AddConstraint(ConstraintSense::kGreaterEqual, 4.0, {{x, 1.0}, {y, 1.0}});
  m.AddConstraint(ConstraintSense::kGreaterEqual, -2.0, {{x, 1.0}, {y, -1.0}});
  const LpSolution sol = RevisedSimplex::Solve(m, DefaultOptions());
  ASSERT_TRUE(sol.optimal());
  EXPECT_NEAR(sol.objective, 8.0, 1e-8);
  VerifyKkt(m, sol);
}

TEST(SimplexTest, DetectsInfeasibility) {
  Model m;
  const int x = m.AddVariable(0, kInfinity, 1.0);
  m.AddConstraint(ConstraintSense::kLessEqual, -1.0, {{x, 1.0}});
  const LpSolution sol = RevisedSimplex::Solve(m, DefaultOptions());
  EXPECT_EQ(sol.status, SolveStatus::kInfeasible);
}

TEST(SimplexTest, DetectsInfeasibleEqualitySystem) {
  Model m;
  const int x = m.AddVariable(0, kInfinity, 0.0);
  const int y = m.AddVariable(0, kInfinity, 0.0);
  m.AddConstraint(ConstraintSense::kEqual, 1.0, {{x, 1.0}, {y, 1.0}});
  m.AddConstraint(ConstraintSense::kEqual, 3.0, {{x, 1.0}, {y, 1.0}});
  const LpSolution sol = RevisedSimplex::Solve(m, DefaultOptions());
  EXPECT_EQ(sol.status, SolveStatus::kInfeasible);
}

TEST(SimplexTest, DetectsUnboundedness) {
  // min -x s.t. x - y <= 1, x,y >= 0: push x,y together to infinity.
  Model m;
  const int x = m.AddVariable(0, kInfinity, -1.0);
  const int y = m.AddVariable(0, kInfinity, 0.0);
  m.AddConstraint(ConstraintSense::kLessEqual, 1.0, {{x, 1.0}, {y, -1.0}});
  const LpSolution sol = RevisedSimplex::Solve(m, DefaultOptions());
  EXPECT_EQ(sol.status, SolveStatus::kUnbounded);
}

TEST(SimplexTest, NoConstraintsOptimizesAtBounds) {
  Model m;
  const int x = m.AddVariable(-1.0, 2.0, 1.0);    // min -> lb
  const int y = m.AddVariable(-3.0, 5.0, -2.0);   // min -> ub
  const LpSolution sol = RevisedSimplex::Solve(m, DefaultOptions());
  ASSERT_TRUE(sol.optimal());
  EXPECT_DOUBLE_EQ(sol.x[x], -1.0);
  EXPECT_DOUBLE_EQ(sol.x[y], 5.0);
  EXPECT_DOUBLE_EQ(sol.objective, -11.0);
}

TEST(SimplexTest, NoConstraintsUnboundedFreeVariable) {
  Model m;
  m.AddVariable(-kInfinity, kInfinity, 1.0);
  const LpSolution sol = RevisedSimplex::Solve(m, DefaultOptions());
  EXPECT_EQ(sol.status, SolveStatus::kUnbounded);
}

TEST(SimplexTest, BoxBoundsAndBoundFlips) {
  // max x + y with 0 <= x <= 1, 0 <= y <= 2, x + y <= 2.5.
  Model m(ObjectiveSense::kMaximize);
  const int x = m.AddVariable(0.0, 1.0, 1.0);
  const int y = m.AddVariable(0.0, 2.0, 1.0);
  m.AddConstraint(ConstraintSense::kLessEqual, 2.5, {{x, 1.0}, {y, 1.0}});
  const LpSolution sol = RevisedSimplex::Solve(m, DefaultOptions());
  ASSERT_TRUE(sol.optimal());
  EXPECT_NEAR(sol.objective, 2.5, 1e-9);
  VerifyKkt(m, sol);
}

TEST(SimplexTest, FreeVariables) {
  // min |structure| with free y: min x s.t. x + y = 3, y <= 1, x >= 0.
  // y free otherwise: best is y = 1, x = 2.
  Model m;
  const int x = m.AddVariable(0.0, kInfinity, 1.0);
  const int y = m.AddVariable(-kInfinity, kInfinity, 0.0);
  m.AddConstraint(ConstraintSense::kEqual, 3.0, {{x, 1.0}, {y, 1.0}});
  m.AddConstraint(ConstraintSense::kLessEqual, 1.0, {{y, 1.0}});
  const LpSolution sol = RevisedSimplex::Solve(m, DefaultOptions());
  ASSERT_TRUE(sol.optimal());
  EXPECT_NEAR(sol.objective, 2.0, 1e-9);
  EXPECT_NEAR(sol.x[y], 1.0, 1e-9);
  VerifyKkt(m, sol);
}

TEST(SimplexTest, NegativeLowerBounds) {
  // min x + y with x in [-5, -1], y in [-2, 4], x + y >= -4.
  Model m;
  const int x = m.AddVariable(-5.0, -1.0, 1.0);
  const int y = m.AddVariable(-2.0, 4.0, 1.0);
  m.AddConstraint(ConstraintSense::kGreaterEqual, -4.0, {{x, 1.0}, {y, 1.0}});
  const LpSolution sol = RevisedSimplex::Solve(m, DefaultOptions());
  ASSERT_TRUE(sol.optimal());
  EXPECT_NEAR(sol.objective, -4.0, 1e-9);
  EXPECT_NEAR(sol.x[x] + sol.x[y], -4.0, 1e-9);
  VerifyKkt(m, sol);
}

TEST(SimplexTest, FixedVariablesRespected) {
  Model m;
  const int x = m.AddVariable(2.0, 2.0, 1.0);  // fixed
  const int y = m.AddVariable(0.0, kInfinity, 1.0);
  m.AddConstraint(ConstraintSense::kGreaterEqual, 5.0, {{x, 1.0}, {y, 1.0}});
  const LpSolution sol = RevisedSimplex::Solve(m, DefaultOptions());
  ASSERT_TRUE(sol.optimal());
  EXPECT_DOUBLE_EQ(sol.x[x], 2.0);
  EXPECT_NEAR(sol.x[y], 3.0, 1e-9);
}

TEST(SimplexTest, DegenerateTransportationProblem) {
  // Classic degenerate transport instance; checks anti-cycling.
  // 2 supplies (10, 10), 2 demands (10, 10), costs [[1, 2], [3, 1]].
  Model m;
  std::vector<std::vector<int>> v(2, std::vector<int>(2));
  const double cost[2][2] = {{1, 2}, {3, 1}};
  for (int i = 0; i < 2; ++i) {
    for (int j = 0; j < 2; ++j) {
      v[i][j] = m.AddVariable(0, kInfinity, cost[i][j]);
    }
  }
  for (int i = 0; i < 2; ++i) {
    m.AddConstraint(ConstraintSense::kEqual, 10.0,
                    {{v[i][0], 1.0}, {v[i][1], 1.0}});
  }
  for (int j = 0; j < 2; ++j) {
    m.AddConstraint(ConstraintSense::kEqual, 10.0,
                    {{v[0][j], 1.0}, {v[1][j], 1.0}});
  }
  const LpSolution sol = RevisedSimplex::Solve(m, DefaultOptions());
  ASSERT_TRUE(sol.optimal());
  EXPECT_NEAR(sol.objective, 20.0, 1e-8);
  VerifyKkt(m, sol);
}

TEST(SimplexTest, WarmStartAfterAddingColumn) {
  // Solve, then add an improving column and re-solve warm: the result must
  // match a cold solve of the extended model.
  Model m;
  const int x = m.AddVariable(0, kInfinity, 3.0);
  const int y = m.AddVariable(0, kInfinity, 4.0);
  m.AddConstraint(ConstraintSense::kGreaterEqual, 6.0, {{x, 1.0}, {y, 1.0}});
  m.AddConstraint(ConstraintSense::kGreaterEqual, 2.0, {{y, 1.0}});
  Basis basis;
  LpSolution first = RevisedSimplex::Solve(m, DefaultOptions(), nullptr,
                                           &basis);
  ASSERT_TRUE(first.optimal());
  EXPECT_NEAR(first.objective, 3.0 * 4.0 + 4.0 * 2.0, 1e-8);

  const int z = m.AddVariable(0, kInfinity, 1.0);  // cheap substitute
  m.AddCoefficient(0, z, 1.0);
  LpSolution warm = RevisedSimplex::Solve(m, DefaultOptions(), &basis);
  ASSERT_TRUE(warm.optimal());
  LpSolution cold = RevisedSimplex::Solve(m, DefaultOptions());
  ASSERT_TRUE(cold.optimal());
  EXPECT_NEAR(warm.objective, cold.objective, 1e-8);
  EXPECT_NEAR(warm.objective, 1.0 * 4.0 + 4.0 * 2.0, 1e-8);
}

TEST(InteriorPointTest, SolvesTextbookMaximization) {
  Model m(ObjectiveSense::kMaximize);
  const int x = m.AddVariable(0, kInfinity, 3.0);
  const int y = m.AddVariable(0, kInfinity, 2.0);
  m.AddConstraint(ConstraintSense::kLessEqual, 4.0, {{x, 1.0}, {y, 1.0}});
  m.AddConstraint(ConstraintSense::kLessEqual, 2.0, {{x, 1.0}});
  m.AddConstraint(ConstraintSense::kLessEqual, 3.0, {{y, 1.0}});
  const LpSolution sol = InteriorPoint::Solve(m, DefaultOptions());
  ASSERT_TRUE(sol.optimal()) << SolveStatusToString(sol.status);
  EXPECT_NEAR(sol.objective, 10.0, 1e-5);
}

TEST(InteriorPointTest, HandlesEqualityAndBoxBounds) {
  Model m;
  const int x = m.AddVariable(0.0, 1.5, 1.0);
  const int y = m.AddVariable(0.0, kInfinity, 2.0);
  m.AddConstraint(ConstraintSense::kEqual, 2.0, {{x, 1.0}, {y, 1.0}});
  const LpSolution sol = InteriorPoint::Solve(m, DefaultOptions());
  ASSERT_TRUE(sol.optimal());
  EXPECT_NEAR(sol.objective, 1.5 + 2.0 * 0.5, 1e-5);
}

TEST(InteriorPointTest, HandlesFreeVariables) {
  Model m;
  const int x = m.AddVariable(0.0, kInfinity, 1.0);
  const int y = m.AddVariable(-kInfinity, kInfinity, 0.0);
  m.AddConstraint(ConstraintSense::kEqual, 3.0, {{x, 1.0}, {y, 1.0}});
  m.AddConstraint(ConstraintSense::kLessEqual, 1.0, {{y, 1.0}});
  const LpSolution sol = InteriorPoint::Solve(m, DefaultOptions());
  ASSERT_TRUE(sol.optimal());
  EXPECT_NEAR(sol.objective, 2.0, 1e-5);
}

// Property test: on random feasible bounded LPs, the simplex and the
// interior point must agree on the optimal objective, and the simplex
// solution must satisfy the KKT conditions.
class RandomLpTest : public ::testing::TestWithParam<int> {};

TEST_P(RandomLpTest, SimplexAgreesWithInteriorPoint) {
  rng::Rng rng(GetParam());
  const int n = 2 + static_cast<int>(rng.UniformInt(7));
  const int rows = 1 + static_cast<int>(rng.UniformInt(2 * n));
  Model m(rng.Uniform() < 0.5 ? ObjectiveSense::kMinimize
                              : ObjectiveSense::kMaximize);
  for (int j = 0; j < n; ++j) {
    m.AddVariable(0.0, rng.Uniform(0.5, 5.0), rng.Uniform(-3.0, 3.0));
  }
  for (int i = 0; i < rows; ++i) {
    std::vector<Coefficient> terms;
    for (int j = 0; j < n; ++j) {
      if (rng.Uniform() < 0.7) {
        terms.push_back({j, rng.Uniform(-2.0, 2.0)});
      }
    }
    if (terms.empty()) terms.push_back({0, 1.0});
    // rhs >= 0 keeps x = 0 feasible for <= rows; bounded boxes keep the
    // whole program bounded.
    m.AddConstraint(ConstraintSense::kLessEqual, rng.Uniform(0.5, 6.0),
                    std::move(terms));
  }
  const LpSolution simplex = RevisedSimplex::Solve(m, DefaultOptions());
  ASSERT_TRUE(simplex.optimal()) << SolveStatusToString(simplex.status);
  VerifyKkt(m, simplex);
  const LpSolution ipm = InteriorPoint::Solve(m, DefaultOptions());
  ASSERT_TRUE(ipm.optimal()) << SolveStatusToString(ipm.status);
  EXPECT_NEAR(simplex.objective, ipm.objective,
              1e-4 * (1.0 + std::abs(simplex.objective)));
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomLpTest, ::testing::Range(1, 41));

// Harder random instances: mixed <=, >=, = rows with feasibility guaranteed
// by construction (rhs derived from a known interior point x0).
class MixedSenseLpTest : public ::testing::TestWithParam<int> {};

TEST_P(MixedSenseLpTest, SimplexAgreesWithInteriorPointOnMixedRows) {
  rng::Rng rng(1000 + GetParam());
  const int n = 2 + static_cast<int>(rng.UniformInt(6));
  const int rows = 1 + static_cast<int>(rng.UniformInt(2 * n));
  Model m;
  std::vector<double> x0(n);
  for (int j = 0; j < n; ++j) {
    const double ub = rng.Uniform(1.0, 6.0);
    m.AddVariable(0.0, ub, rng.Uniform(-3.0, 3.0));
    x0[j] = rng.Uniform(0.2, 0.8) * ub;  // interior point
  }
  for (int i = 0; i < rows; ++i) {
    std::vector<Coefficient> terms;
    double activity = 0.0;
    for (int j = 0; j < n; ++j) {
      if (rng.Uniform() < 0.7) {
        const double a = rng.Uniform(-2.0, 2.0);
        terms.push_back({j, a});
        activity += a * x0[j];
      }
    }
    if (terms.empty()) {
      terms.push_back({0, 1.0});
      activity = x0[0];
    }
    const double u = rng.Uniform();
    if (u < 0.4) {
      m.AddConstraint(ConstraintSense::kLessEqual,
                      activity + rng.Uniform(0.0, 2.0), std::move(terms));
    } else if (u < 0.8) {
      m.AddConstraint(ConstraintSense::kGreaterEqual,
                      activity - rng.Uniform(0.0, 2.0), std::move(terms));
    } else {
      m.AddConstraint(ConstraintSense::kEqual, activity, std::move(terms));
    }
  }
  const LpSolution simplex = RevisedSimplex::Solve(m, DefaultOptions());
  ASSERT_TRUE(simplex.optimal()) << SolveStatusToString(simplex.status);
  VerifyKkt(m, simplex);
  const LpSolution ipm = InteriorPoint::Solve(m, DefaultOptions());
  ASSERT_TRUE(ipm.optimal()) << SolveStatusToString(ipm.status);
  EXPECT_NEAR(simplex.objective, ipm.objective,
              1e-4 * (1.0 + std::abs(simplex.objective)));
}

INSTANTIATE_TEST_SUITE_P(Seeds, MixedSenseLpTest, ::testing::Range(1, 31));

TEST(ModelTest, ValidateAcceptsWellFormed) {
  Model m;
  const int x = m.AddVariable(0, 1, 1.0);
  m.AddConstraint(ConstraintSense::kLessEqual, 1.0, {{x, 1.0}});
  EXPECT_TRUE(m.Validate().ok());
}

TEST(ModelTest, ValidateRejectsNonFiniteRhs) {
  Model m;
  const int x = m.AddVariable(0, 1, 1.0);
  m.AddConstraint(ConstraintSense::kLessEqual,
                  std::numeric_limits<double>::quiet_NaN(), {{x, 1.0}});
  EXPECT_FALSE(m.Validate().ok());
}

TEST(SimplexTest, OversizedInstanceReportsTooLarge) {
  // The dense basis inverse grows as rows^2; instances beyond the cap must
  // fail fast instead of attempting a hundred-gigabyte allocation.
  Model m;
  const int x = m.AddVariable(0.0, 1.0, 1.0);
  for (int i = 0; i < 100; ++i) {
    m.AddConstraint(ConstraintSense::kLessEqual, 1.0, {{x, 1.0}});
  }
  SolverOptions o;
  o.max_basis_rows = 50;
  const LpSolution sol = RevisedSimplex::Solve(m, o);
  EXPECT_EQ(sol.status, SolveStatus::kTooLarge);
}

TEST(SimplexTest, TimeLimitReported) {
  // A big random dense LP with a microscopic time budget must stop with
  // kTimeLimit rather than hanging.
  rng::Rng rng(5);
  Model m;
  const int n = 60;
  for (int j = 0; j < n; ++j) {
    m.AddVariable(0.0, 10.0, rng.Uniform(-1.0, 1.0));
  }
  for (int i = 0; i < 120; ++i) {
    std::vector<Coefficient> terms;
    for (int j = 0; j < n; ++j) terms.push_back({j, rng.Uniform(-1.0, 1.0)});
    m.AddConstraint(ConstraintSense::kLessEqual, rng.Uniform(1.0, 5.0),
                    std::move(terms));
  }
  SolverOptions o;
  o.time_limit_seconds = 0.0;
  const LpSolution sol = RevisedSimplex::Solve(m, o);
  EXPECT_EQ(sol.status, SolveStatus::kTimeLimit);
}

}  // namespace
}  // namespace geopriv::lp
