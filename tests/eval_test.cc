#include <cstdio>
#include <fstream>
#include <sstream>

#include <gtest/gtest.h>

#include "eval/evaluation.h"
#include "eval/table.h"
#include "mechanisms/planar_laplace.h"
#include "spatial/grid.h"

namespace geopriv::eval {
namespace {

using geo::Point;

// A deterministic mechanism that reports a fixed offset of the input.
class FixedOffsetMechanism final : public mechanisms::Mechanism {
 public:
  explicit FixedOffsetMechanism(Point offset) : offset_(offset) {}
  Point Report(Point actual, rng::Rng&) override { return actual + offset_; }
  std::string name() const override { return "offset"; }

 private:
  Point offset_;
};

TEST(EvaluationTest, Validation) {
  FixedOffsetMechanism mech({1.0, 0.0});
  EvalOptions opts;
  EXPECT_FALSE(EvaluateMechanism(mech, {}, opts).ok());
  opts.num_requests = 0;
  EXPECT_FALSE(EvaluateMechanism(mech, {{1, 1}}, opts).ok());
}

TEST(EvaluationTest, ExactLossForDeterministicMechanism) {
  FixedOffsetMechanism mech({3.0, 4.0});  // every report is 5 km off
  EvalOptions opts;
  opts.num_requests = 100;
  auto result = EvaluateMechanism(mech, {{1, 1}, {2, 2}, {7, 3}}, opts);
  ASSERT_TRUE(result.ok());
  EXPECT_NEAR(result->mean_loss, 5.0, 1e-12);
  EXPECT_NEAR(result->p50_loss, 5.0, 1e-12);
  EXPECT_NEAR(result->p95_loss, 5.0, 1e-12);
  EXPECT_EQ(result->mechanism, "offset");
  EXPECT_EQ(result->requests, 100);
}

TEST(EvaluationTest, SquaredMetric) {
  FixedOffsetMechanism mech({3.0, 4.0});
  EvalOptions opts;
  opts.num_requests = 10;
  opts.metric = geo::UtilityMetric::kSquaredEuclidean;
  auto result = EvaluateMechanism(mech, {{1, 1}}, opts);
  ASSERT_TRUE(result.ok());
  EXPECT_NEAR(result->mean_loss, 25.0, 1e-12);
}

TEST(EvaluationTest, DeterministicGivenSeed) {
  auto pl = mechanisms::PlanarLaplace::Create(0.5);
  ASSERT_TRUE(pl.ok());
  EvalOptions opts;
  opts.num_requests = 500;
  opts.seed = 99;
  std::vector<Point> checkins = {{1, 1}, {5, 5}, {10, 3}};
  auto a = EvaluateMechanism(*pl, checkins, opts);
  auto pl2 = mechanisms::PlanarLaplace::Create(0.5);
  auto b = EvaluateMechanism(*pl2, checkins, opts);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_DOUBLE_EQ(a->mean_loss, b->mean_loss);
}

TEST(EvaluationTest, PlanarLaplaceMeanLossNearTwoOverEps) {
  const double eps = 0.5;
  auto pl = mechanisms::PlanarLaplace::Create(eps);
  ASSERT_TRUE(pl.ok());
  EvalOptions opts;
  opts.num_requests = 20000;
  auto result = EvaluateMechanism(*pl, {{10.0, 10.0}}, opts);
  ASSERT_TRUE(result.ok());
  EXPECT_NEAR(result->mean_loss, 2.0 / eps, 0.15);
}

// Alternates between a short and a long offset, so the loss distribution
// has two distinct atoms and the percentiles are predictable.
class BimodalMechanism final : public mechanisms::Mechanism {
 public:
  Point Report(Point actual, rng::Rng&) override {
    flip_ = !flip_;
    return flip_ ? actual + Point{1.0, 0.0} : actual + Point{10.0, 0.0};
  }
  std::string name() const override { return "bimodal"; }

 private:
  bool flip_ = false;
};

TEST(EvaluationTest, PercentilesSeparateBimodalLosses) {
  BimodalMechanism mech;
  EvalOptions opts;
  opts.num_requests = 1000;
  auto result = EvaluateMechanism(mech, {{0, 0}}, opts);
  ASSERT_TRUE(result.ok());
  EXPECT_NEAR(result->mean_loss, 5.5, 0.1);
  // The median sits on one atom, the 95th percentile on the other.
  EXPECT_TRUE(result->p50_loss == 1.0 || result->p50_loss == 10.0);
  EXPECT_DOUBLE_EQ(result->p95_loss, 10.0);
}

TEST(SampleRequestsTest, DrawsFromGivenPoints) {
  rng::Rng rng(7);
  std::vector<Point> points = {{1, 1}, {2, 2}, {3, 3}};
  const auto requests = SampleRequests(points, 1000, rng);
  EXPECT_EQ(requests.size(), 1000u);
  int counts[3] = {0, 0, 0};
  for (const Point& r : requests) {
    bool found = false;
    for (int i = 0; i < 3; ++i) {
      if (r == points[i]) {
        ++counts[i];
        found = true;
      }
    }
    EXPECT_TRUE(found);
  }
  for (int c : counts) EXPECT_GT(c, 200);
}

TEST(TableTest, PrintsAlignedColumns) {
  Table table({"mechanism", "loss"});
  table.AddRow({"PL", "3.14"});
  table.AddRow({"MSM", "2.00"});
  std::ostringstream os;
  table.Print(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("mechanism"), std::string::npos);
  EXPECT_NE(out.find("MSM"), std::string::npos);
  EXPECT_NE(out.find("---"), std::string::npos);
  EXPECT_EQ(table.num_rows(), 2u);
}

TEST(TableTest, WritesCsv) {
  Table table({"a", "b"});
  table.AddRow({"1", "2"});
  const std::string path = ::testing::TempDir() + "/geopriv_table_test.csv";
  ASSERT_TRUE(table.WriteCsv(path).ok());
  std::ifstream in(path);
  std::string line;
  std::getline(in, line);
  EXPECT_EQ(line, "a,b");
  std::getline(in, line);
  EXPECT_EQ(line, "1,2");
  std::remove(path.c_str());
}

TEST(TableTest, CsvToBadPathFails) {
  Table table({"a"});
  EXPECT_FALSE(table.WriteCsv("/nonexistent/dir/x.csv").ok());
}

TEST(FmtTest, FixedPrecision) {
  EXPECT_EQ(Fmt(3.14159, 3), "3.142");
  EXPECT_EQ(Fmt(2.0, 1), "2.0");
  EXPECT_EQ(Fmt(-0.5, 2), "-0.50");
}

}  // namespace
}  // namespace geopriv::eval
