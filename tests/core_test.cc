#include <algorithm>
#include <cmath>
#include <map>
#include <memory>
#include <vector>

#include <gtest/gtest.h>

#include "core/budget.h"
#include "core/location_sanitizer.h"
#include "core/msm.h"
#include "geo/distance.h"
#include "mathx/lattice_sum.h"
#include "prior/prior.h"
#include "rng/rng.h"
#include "spatial/hierarchical_grid.h"
#include "spatial/kd_partition.h"
#include "spatial/quadtree.h"

namespace geopriv::core {
namespace {

using geo::BBox;
using geo::Point;

constexpr BBox kDomain{0.0, 0.0, 20.0, 20.0};

std::shared_ptr<spatial::HierarchicalGrid> MakeGrid(int g, int h) {
  auto grid = spatial::HierarchicalGrid::Create(kDomain, g, h);
  GEOPRIV_CHECK_OK(grid.status());
  return std::make_shared<spatial::HierarchicalGrid>(std::move(grid).value());
}

std::shared_ptr<prior::Prior> MakeSkewedPrior() {
  // Check-ins concentrated around a "downtown" plus sparse background.
  rng::Rng rng(1234);
  std::vector<Point> pts;
  for (int i = 0; i < 5000; ++i) {
    pts.push_back({std::clamp(rng.Gaussian(6.0, 1.2), 0.0, 20.0),
                   std::clamp(rng.Gaussian(7.0, 1.2), 0.0, 20.0)});
  }
  for (int i = 0; i < 1000; ++i) {
    pts.push_back({rng.Uniform(0.0, 20.0), rng.Uniform(0.0, 20.0)});
  }
  auto p = prior::Prior::FromPoints(kDomain, 64, pts);
  GEOPRIV_CHECK_OK(p.status());
  return std::make_shared<prior::Prior>(std::move(p).value());
}

TEST(BudgetTest, Validation) {
  auto grid = MakeGrid(2, 4);
  BudgetOptions opts;
  EXPECT_FALSE(AllocateBudget(0.0, *grid, opts).ok());
  opts.rho = 1.0;
  EXPECT_FALSE(AllocateBudget(0.5, *grid, opts).ok());
  opts.rho = 0.8;
  opts.fixed_height = 9;
  EXPECT_FALSE(AllocateBudget(0.5, *grid, opts).ok());
  opts.fixed_height = 0;
  opts.max_height = 0;
  EXPECT_FALSE(AllocateBudget(0.5, *grid, opts).ok());
}

TEST(BudgetTest, RhoMinimalSpendsExactlyEps) {
  auto grid = MakeGrid(2, 8);
  BudgetOptions opts;
  opts.rho = 0.8;
  for (double eps : {0.1, 0.3, 0.5, 0.9}) {
    auto alloc = AllocateBudget(eps, *grid, opts);
    ASSERT_TRUE(alloc.ok());
    EXPECT_NEAR(alloc->total(), eps, 1e-9) << "eps=" << eps;
    EXPECT_GE(alloc->height(), 1);
  }
}

TEST(BudgetTest, RhoMinimalSecuresUpperLevelsFirst) {
  // g=2 over 20 km with eps=0.5, rho=0.8: level 1 (10 km cells) needs much
  // less than level 2 (5 km cells); the allocation gives level 1 exactly
  // its requirement and level 2 the leftovers.
  auto grid = MakeGrid(2, 8);
  BudgetOptions opts;
  opts.rho = 0.8;
  auto alloc = AllocateBudget(0.5, *grid, opts);
  ASSERT_TRUE(alloc.ok());
  const double need1 = mathx::MinBudgetForSelfMapping(0.8, 10.0).value();
  ASSERT_GE(alloc->height(), 1);
  EXPECT_NEAR(alloc->per_level[0], need1, 1e-6);
  if (alloc->height() > 1) {
    EXPECT_NEAR(alloc->per_level[1], 0.5 - need1, 1e-6);
  }
}

TEST(BudgetTest, PerLevelRequirementScalesWithCellSide) {
  // eps_i * cell_side_i is level-independent, so the minimal requirement
  // grows by exactly g between consecutive levels.
  const double need1 = mathx::MinBudgetForSelfMapping(0.8, 20.0 / 3).value();
  const double need2 = mathx::MinBudgetForSelfMapping(0.8, 20.0 / 9).value();
  EXPECT_NEAR(need2, 3.0 * need1, 1e-6 * need2);
}

TEST(BudgetTest, SingleLevelWhenBudgetTooSmall) {
  // g=4: level 1 alone (5 km cells, rho=0.8) needs ~0.62 > 0.5, so the
  // whole budget lands on level 1.
  auto grid = MakeGrid(4, 4);
  BudgetOptions opts;
  opts.rho = 0.8;
  auto alloc = AllocateBudget(0.5, *grid, opts);
  ASSERT_TRUE(alloc.ok());
  EXPECT_EQ(alloc->height(), 1);
  EXPECT_NEAR(alloc->per_level[0], 0.5, 1e-12);
}

TEST(BudgetTest, LeftoverGoesToDeepestLevel) {
  // A huge budget with a shallow index: every level gets its requirement
  // and the remainder lands on the last level.
  auto grid = MakeGrid(2, 2);
  BudgetOptions opts;
  opts.rho = 0.8;
  auto alloc = AllocateBudget(50.0, *grid, opts);
  ASSERT_TRUE(alloc.ok());
  EXPECT_EQ(alloc->height(), 2);
  EXPECT_NEAR(alloc->total(), 50.0, 1e-9);
  EXPECT_GT(alloc->per_level[1], alloc->per_level[0]);
}

TEST(BudgetTest, FixedHeightAllocatesMinimumThenRemainder) {
  auto grid = MakeGrid(3, 4);
  BudgetOptions opts;
  opts.rho = 0.8;
  opts.fixed_height = 2;
  auto alloc = AllocateBudget(1.5, *grid, opts);
  ASSERT_TRUE(alloc.ok());
  EXPECT_EQ(alloc->height(), 2);
  const double need1 = mathx::MinBudgetForSelfMapping(0.8, 20.0 / 3).value();
  EXPECT_NEAR(alloc->per_level[0], need1, 1e-6);
  EXPECT_NEAR(alloc->per_level[1], 1.5 - need1, 1e-6);
}

TEST(BudgetTest, FixedHeightScalesProportionallyWhenStarved) {
  auto grid = MakeGrid(4, 4);
  BudgetOptions opts;
  opts.rho = 0.8;
  opts.fixed_height = 2;
  auto alloc = AllocateBudget(0.3, *grid, opts);  // << level-1 need alone
  ASSERT_TRUE(alloc.ok());
  EXPECT_EQ(alloc->height(), 2);
  EXPECT_NEAR(alloc->total(), 0.3, 1e-9);
  // Proportional to needs, which scale by g=4 across levels.
  EXPECT_NEAR(alloc->per_level[1] / alloc->per_level[0], 4.0, 1e-5);
}

TEST(BudgetTest, MaxHeightCapsTheAllocation) {
  auto grid = MakeGrid(2, 8);
  BudgetOptions opts;
  opts.rho = 0.8;
  opts.max_height = 2;
  // A large budget would normally reach many levels; the cap stops at 2
  // and sinks the leftovers into level 2.
  auto alloc = AllocateBudget(10.0, *grid, opts);
  ASSERT_TRUE(alloc.ok());
  EXPECT_EQ(alloc->height(), 2);
  EXPECT_NEAR(alloc->total(), 10.0, 1e-9);
}

TEST(BudgetTest, UniformAndGeometricAndCustom) {
  auto grid = MakeGrid(3, 3);
  BudgetOptions opts;
  opts.policy = BudgetPolicy::kUniform;
  auto uniform = AllocateBudget(0.9, *grid, opts);
  ASSERT_TRUE(uniform.ok());
  EXPECT_EQ(uniform->height(), 3);
  for (double e : uniform->per_level) EXPECT_NEAR(e, 0.3, 1e-12);

  opts.policy = BudgetPolicy::kGeometric;
  auto geom = AllocateBudget(0.9, *grid, opts);
  ASSERT_TRUE(geom.ok());
  EXPECT_NEAR(geom->total(), 0.9, 1e-9);
  EXPECT_NEAR(geom->per_level[1] / geom->per_level[0], 3.0, 1e-9);
  EXPECT_NEAR(geom->per_level[2] / geom->per_level[1], 3.0, 1e-9);

  opts.policy = BudgetPolicy::kCustom;
  opts.custom_weights = {1.0, 1.0};
  EXPECT_FALSE(AllocateBudget(0.9, *grid, opts).ok());  // wrong size
  opts.custom_weights = {2.0, 1.0, 1.0};
  auto custom = AllocateBudget(0.8, *grid, opts);
  ASSERT_TRUE(custom.ok());
  EXPECT_NEAR(custom->per_level[0], 0.4, 1e-12);
}

TEST(MsmTest, CreateValidation) {
  auto index = MakeGrid(3, 3);
  auto prior = MakeSkewedPrior();
  MsmOptions opts;
  EXPECT_FALSE(
      MultiStepMechanism::Create(0.0, index, prior, opts).ok());
  EXPECT_FALSE(
      MultiStepMechanism::Create(0.5, nullptr, prior, opts).ok());
  EXPECT_FALSE(
      MultiStepMechanism::Create(0.5, index, nullptr, opts).ok());
  EXPECT_TRUE(MultiStepMechanism::Create(0.5, index, prior, opts).ok());
}

TEST(MsmTest, ReportsAreCellCentersAtTheReachedLevel) {
  auto index = MakeGrid(3, 3);
  auto prior = MakeSkewedPrior();
  MsmOptions opts;
  auto msm = MultiStepMechanism::Create(0.5, index, prior, opts);
  ASSERT_TRUE(msm.ok());
  rng::Rng rng(7);
  const int h = msm->height();
  ASSERT_GE(h, 1);
  for (int i = 0; i < 50; ++i) {
    const Point z = msm->Report({6.3, 7.1}, rng);
    // z must be the center of the level-h node that contains it.
    const spatial::NodeIndex node = index->NodeAt(h, z);
    EXPECT_EQ(z, index->Bounds(node).Center());
  }
}

TEST(MsmTest, DeterministicGivenSeed) {
  auto index = MakeGrid(2, 4);
  auto prior = MakeSkewedPrior();
  MsmOptions opts;
  auto m1 = MultiStepMechanism::Create(0.5, index, prior, opts);
  auto m2 = MultiStepMechanism::Create(0.5, index, prior, opts);
  ASSERT_TRUE(m1.ok());
  ASSERT_TRUE(m2.ok());
  rng::Rng r1(99), r2(99);
  for (int i = 0; i < 20; ++i) {
    const Point x{1.0 + i, 19.0 - i * 0.5};
    EXPECT_EQ(m1->Report(x, r1), m2->Report(x, r2)) << i;
  }
}

TEST(MsmTest, CachingReusesNodeSolves) {
  auto index = MakeGrid(2, 3);
  auto prior = MakeSkewedPrior();
  MsmOptions opts;
  // This test exercises the cache layer itself; the serving plan would
  // route warm walks around it (covered by serving_plan_test).
  opts.serving_plan = false;
  auto msm = MultiStepMechanism::Create(0.5, index, prior, opts);
  ASSERT_TRUE(msm.ok());
  rng::Rng rng(3);
  for (int i = 0; i < 200; ++i) {
    msm->Report({rng.Uniform(0, 20), rng.Uniform(0, 20)}, rng);
  }
  // At most 1 root + 4 level-1 nodes can ever be solved for h=2.
  EXPECT_LE(msm->stats().lp_solves, 5);
  EXPECT_GT(msm->stats().cache_hits, 100);
}

TEST(MsmTest, HighBudgetReportsNearbyCell) {
  // Note: under Algorithm 2 a huge total budget does NOT make the upper
  // levels deterministic — each level is capped at its rho-minimal
  // requirement and the surplus sinks to the deepest level. A uniform
  // split exposes the intended "everything nearly exact" behavior.
  auto index = MakeGrid(3, 2);
  auto prior = MakeSkewedPrior();
  MsmOptions opts;
  opts.budget.policy = BudgetPolicy::kUniform;
  auto msm = MultiStepMechanism::Create(30.0, index, prior, opts);
  ASSERT_TRUE(msm.ok());
  EXPECT_EQ(msm->height(), 2);
  rng::Rng rng(5);
  const Point x{6.3, 7.1};
  for (int i = 0; i < 50; ++i) {
    const Point z = msm->Report(x, rng);
    // With eps_i = 15 the mechanism almost surely reports the enclosing
    // leaf cell (side 20/9 km, so the center is within ~1.6 km of x).
    EXPECT_LT(geo::Euclidean(x, z), 1.7);
  }
}

TEST(MsmTest, RhoMinimalLevelOneHopsAtRateRho) {
  // Empirical check of Algorithm 2's contract: the level-1 self-mapping
  // probability is close to rho even when the total budget is plentiful.
  auto index = MakeGrid(3, 2);
  auto prior = MakeSkewedPrior();
  MsmOptions opts;
  opts.budget.rho = 0.8;
  auto msm = MultiStepMechanism::Create(30.0, index, prior, opts);
  ASSERT_TRUE(msm.ok());
  auto root = msm->NodeMechanism(spatial::HierarchicalPartition::kRoot, 1);
  ASSERT_TRUE(root.ok());
  // Average the diagonal without the prior weighting: boundary cells push
  // it slightly above rho (the lattice model is conservative there).
  double diag = 0.0;
  for (int x = 0; x < (*root)->num_locations(); ++x) {
    diag += (*root)->K(x, x) / (*root)->num_locations();
  }
  EXPECT_GE(diag, 0.75);
  EXPECT_LE(diag, 0.95);
}

TEST(MsmTest, PerLevelMechanismsSatisfyGeoInd) {
  auto index = MakeGrid(3, 3);
  auto prior = MakeSkewedPrior();
  MsmOptions opts;
  auto msm = MultiStepMechanism::Create(0.9, index, prior, opts);
  ASSERT_TRUE(msm.ok());
  // Walk the most likely path from the root and audit each node mechanism.
  spatial::NodeIndex node = spatial::HierarchicalPartition::kRoot;
  for (int level = 1; level <= msm->height(); ++level) {
    if (index->IsLeaf(node)) break;
    auto mech = msm->NodeMechanism(node, level);
    ASSERT_TRUE(mech.ok());
    EXPECT_LE((*mech)->MaxGeoIndViolation(), 1e-6)
        << "node " << node << " level " << level;
    node = index->Children(node)[0].id;
  }
  EXPECT_NEAR(msm->budget().total(), 0.9, 1e-9);
}

// Empirical end-to-end audit of the composed guarantee: estimate
// Pr[z | x] / Pr[z | x'] by Monte Carlo for neighboring actual locations
// and check it against e^{eps d(x, x')} (with sampling slack).
TEST(MsmTest, EndToEndGeoIndHoldsEmpirically) {
  auto index = MakeGrid(2, 2);
  auto prior = MakeSkewedPrior();
  MsmOptions opts;
  const double eps = 0.5;
  auto msm = MultiStepMechanism::Create(eps, index, prior, opts);
  ASSERT_TRUE(msm.ok());
  rng::Rng rng(11);
  const Point x1{6.0, 6.0};
  const Point x2{9.0, 6.0};  // d = 3 km
  const int n = 300000;
  std::map<std::pair<double, double>, int> c1, c2;
  for (int i = 0; i < n; ++i) {
    const Point z1 = msm->Report(x1, rng);
    const Point z2 = msm->Report(x2, rng);
    ++c1[{z1.x, z1.y}];
    ++c2[{z2.x, z2.y}];
  }
  const double bound = std::exp(eps * geo::Euclidean(x1, x2));
  for (const auto& [z, count1] : c1) {
    const int count2 = c2.count(z) ? c2.at(z) : 0;
    // Only test cells with enough mass for a stable ratio estimate.
    if (count1 < 2000 || count2 < 2000) continue;
    const double ratio =
        static_cast<double>(count1) / static_cast<double>(count2);
    EXPECT_LE(ratio, bound * 1.15) << "z=(" << z.first << "," << z.second
                                   << ")";
    EXPECT_GE(ratio, 1.0 / (bound * 1.15));
  }
}

TEST(MsmTest, WorksOverKdPartition) {
  auto prior = MakeSkewedPrior();
  rng::Rng rng(21);
  std::vector<Point> pts;
  for (int i = 0; i < 3000; ++i) {
    pts.push_back({std::clamp(rng.Gaussian(6.0, 1.5), 0.0, 20.0),
                   std::clamp(rng.Gaussian(7.0, 1.5), 0.0, 20.0)});
  }
  auto kd = spatial::KdPartition::Create(kDomain, pts, 2, 4);
  ASSERT_TRUE(kd.ok());
  auto index =
      std::make_shared<spatial::KdPartition>(std::move(kd).value());
  MsmOptions opts;
  auto msm = MultiStepMechanism::Create(0.5, index, prior, opts);
  ASSERT_TRUE(msm.ok());
  rng::Rng qrng(22);
  for (int i = 0; i < 30; ++i) {
    const Point z = msm->Report({6.0, 7.0}, qrng);
    EXPECT_TRUE(kDomain.Contains(z));
  }
}

TEST(MsmTest, WorksOverQuadTreeWithEarlyLeaves) {
  auto prior = MakeSkewedPrior();
  rng::Rng rng(23);
  std::vector<Point> pts;
  for (int i = 0; i < 3000; ++i) {
    pts.push_back({rng.Uniform(0.0, 3.0), rng.Uniform(0.0, 3.0)});
  }
  auto qt = spatial::AdaptiveQuadTree::Create(kDomain, pts, 5, 100);
  ASSERT_TRUE(qt.ok());
  auto index =
      std::make_shared<spatial::AdaptiveQuadTree>(std::move(qt).value());
  MsmOptions opts;
  auto msm = MultiStepMechanism::Create(0.8, index, prior, opts);
  ASSERT_TRUE(msm.ok());
  rng::Rng qrng(24);
  // Queries in the sparse corner terminate at shallow leaves; must still
  // return valid points without aborting.
  for (int i = 0; i < 30; ++i) {
    const Point z = msm->Report({18.0, 18.0}, qrng);
    EXPECT_TRUE(kDomain.Contains(z));
  }
}

TEST(MsmTest, SolverTimeLimitSurfacesAsStatus) {
  auto index = MakeGrid(5, 2);
  auto prior = MakeSkewedPrior();
  MsmOptions opts;
  opts.opt.solver.time_limit_seconds = 0.0;  // force an immediate deadline
  auto msm = MultiStepMechanism::Create(0.5, index, prior, opts);
  ASSERT_TRUE(msm.ok());  // construction is lazy; LPs solve per node
  rng::Rng rng(1);
  auto report = msm->ReportOrStatus({6.0, 7.0}, rng);
  ASSERT_FALSE(report.ok());
  EXPECT_EQ(report.status().code(), StatusCode::kDeadlineExceeded);
}

TEST(LocationSanitizerTest, BuilderValidation) {
  LocationSanitizer::Builder builder;
  EXPECT_FALSE(builder.Build().ok());  // no region
  builder.SetRegionLatLon(30.1927, -97.8698, 30.3723, -97.6618);
  EXPECT_FALSE(builder.Build().ok());  // no epsilon
  builder.SetEpsilon(0.5);
  EXPECT_TRUE(builder.Build().ok());
}

TEST(LocationSanitizerTest, SanitizedCoordinatesStayInRegion) {
  auto sanitizer = LocationSanitizer::Builder()
                       .SetRegionLatLon(30.1927, -97.8698, 30.3723, -97.6618)
                       .SetEpsilon(0.5)
                       .SetSeed(42)
                       .Build();
  ASSERT_TRUE(sanitizer.ok());
  for (int i = 0; i < 20; ++i) {
    const LatLon out = sanitizer->SanitizeLatLon(30.27, -97.74);
    EXPECT_GE(out.lat, 30.19);
    EXPECT_LE(out.lat, 30.38);
    EXPECT_GE(out.lon, -97.88);
    EXPECT_LE(out.lon, -97.65);
  }
  EXPECT_NEAR(sanitizer->budget().total(), 0.5, 1e-9);
}

TEST(LocationSanitizerTest, ConfigurationKnobsAreHonored) {
  auto sanitizer = LocationSanitizer::Builder()
                       .SetRegionLatLon(30.1927, -97.8698, 30.3723, -97.6618)
                       .SetEpsilon(0.9)
                       .SetGranularity(3)
                       .SetRho(0.6)
                       .SetPriorGranularity(32)
                       .SetUtilityMetric(geo::UtilityMetric::kSquaredEuclidean)
                       .SetSeed(5)
                       .Build();
  ASSERT_TRUE(sanitizer.ok());
  EXPECT_NEAR(sanitizer->budget().total(), 0.9, 1e-9);
  // rho=0.6 at g=3 over ~20 km needs ~0.3 at level 1, so at least two
  // levels receive budget.
  EXPECT_GE(sanitizer->budget().height(), 2);
}

TEST(LocationSanitizerTest, HeightCapAndLeafFloorRegression) {
  // Regression for the Builder's height-cap loop: the chosen index height
  // must never exceed 10 levels, and (except for degenerate sub-40 m
  // regions) the effective leaf cell must never undercut the ~40 m floor
  // that matches GPS accuracy.
  struct Case {
    double max_lat, max_lon;  // SW corner fixed at (0, 0)
    int granularity;
  };
  const std::vector<Case> cases = {
      {0.18, 0.21, 4},   // city-sized (~20 km)
      {0.05, 0.05, 2},   // small town (~5 km)
      {18.0, 18.0, 2},   // continental (~2000 km): must hit the cap
      {18.0, 18.0, 4},
      {0.9, 0.9, 3},     // state-sized (~100 km)
  };
  for (const Case& c : cases) {
    auto sanitizer = LocationSanitizer::Builder()
                         .SetRegionLatLon(0.0, 0.0, c.max_lat, c.max_lon)
                         .SetEpsilon(0.5)
                         .SetGranularity(c.granularity)
                         .Build();
    ASSERT_TRUE(sanitizer.ok()) << c.max_lat << " g=" << c.granularity;
    // The index height is what the Builder's loop chose; the budget
    // allocation may use fewer levels but never more.
    const int height = sanitizer->mechanism().index().height();
    EXPECT_LE(height, 10) << c.max_lat << " g=" << c.granularity;
    EXPECT_GE(height, 1);
    EXPECT_LE(sanitizer->budget().height(), height);
    const geo::BBox& domain = sanitizer->domain_km();
    const double max_side = std::max(domain.Width(), domain.Height());
    double leaf_side = max_side;
    for (int i = 0; i < height; ++i) leaf_side /= c.granularity;
    EXPECT_GE(leaf_side, 0.04)
        << "leaf " << leaf_side << " km undercuts the 40 m floor ("
        << c.max_lat << " deg, g=" << c.granularity << ", h=" << height
        << ")";
  }
  // The continental case specifically must be stopped by the cap, not the
  // floor.
  auto continental = LocationSanitizer::Builder()
                         .SetRegionLatLon(0.0, 0.0, 18.0, 18.0)
                         .SetEpsilon(0.5)
                         .SetGranularity(2)
                         .Build();
  ASSERT_TRUE(continental.ok());
  EXPECT_EQ(continental->mechanism().index().height(), 10);
}

TEST(LocationSanitizerTest, SanitizeOrStatusMatchesAndSurfacesLpLimits) {
  // The OrStatus variants are the service's entry point: same output
  // distribution as Sanitize, but solver limits become Status instead of
  // aborting.
  auto ok_sanitizer =
      LocationSanitizer::Builder()
          .SetRegionLatLon(30.1927, -97.8698, 30.3723, -97.6618)
          .SetEpsilon(0.5)
          .SetSeed(11)
          .Build();
  ASSERT_TRUE(ok_sanitizer.ok());
  rng::Rng rng(99);
  auto out = ok_sanitizer->SanitizeLatLonOrStatus(30.27, -97.74, rng);
  ASSERT_TRUE(out.ok());
  EXPECT_GE(out->lat, 30.19);
  EXPECT_LE(out->lat, 30.38);

  auto limited =
      LocationSanitizer::Builder()
          .SetRegionLatLon(30.1927, -97.8698, 30.3723, -97.6618)
          .SetEpsilon(0.5)
          .SetLpTimeLimitSeconds(1e-12)
          .Build();
  ASSERT_TRUE(limited.ok());
  auto failed = limited->SanitizeOrStatus({5.0, 5.0});
  ASSERT_FALSE(failed.ok());
  EXPECT_EQ(failed.status().code(), StatusCode::kDeadlineExceeded);
}

TEST(LocationSanitizerTest, CheckinPriorChangesBehavior) {
  std::vector<LatLon> history;
  for (int i = 0; i < 500; ++i) {
    history.push_back({30.26 + 0.0001 * (i % 7), -97.74 + 0.0001 * (i % 5)});
  }
  auto with_prior =
      LocationSanitizer::Builder()
          .SetRegionLatLon(30.1927, -97.8698, 30.3723, -97.6618)
          .SetEpsilon(0.4)
          .AddCheckinsLatLon(history)
          .SetSeed(7)
          .Build();
  ASSERT_TRUE(with_prior.ok());
  // Reports should gravitate toward the check-in hotspot.
  double mean_lat = 0.0;
  const int n = 60;
  for (int i = 0; i < n; ++i) {
    mean_lat += with_prior->SanitizeLatLon(30.26, -97.74).lat / n;
  }
  EXPECT_NEAR(mean_lat, 30.26, 0.06);
}

}  // namespace
}  // namespace geopriv::core
