#include <sstream>

#include <gtest/gtest.h>

#include "lp/model.h"
#include "lp/mps_writer.h"

namespace geopriv::lp {
namespace {

std::string Dump(const Model& model) {
  std::ostringstream os;
  const Status status = WriteMps(model, "test", os);
  EXPECT_TRUE(status.ok()) << status;
  return os.str();
}

TEST(MpsWriterTest, EmitsAllSections) {
  Model m;
  const int x = m.AddVariable(0.0, kInfinity, 3.0);
  const int y = m.AddVariable(0.0, 2.0, -1.0);
  m.AddConstraint(ConstraintSense::kLessEqual, 4.0, {{x, 1.0}, {y, 2.0}});
  m.AddConstraint(ConstraintSense::kEqual, 1.0, {{y, 1.0}});
  const std::string mps = Dump(m);
  for (const char* section :
       {"NAME", "ROWS", "COLUMNS", "RHS", "BOUNDS", "ENDATA"}) {
    EXPECT_NE(mps.find(section), std::string::npos) << section;
  }
  EXPECT_NE(mps.find(" N  COST"), std::string::npos);
  EXPECT_NE(mps.find(" L  R0"), std::string::npos);
  EXPECT_NE(mps.find(" E  R1"), std::string::npos);
  // Bounded variable y gets an UP entry; x needs no bound rows.
  EXPECT_NE(mps.find(" UP "), std::string::npos);
  EXPECT_EQ(mps.find(" MI "), std::string::npos);
}

TEST(MpsWriterTest, MaximizationEmitsObjsense) {
  Model m(ObjectiveSense::kMaximize);
  m.AddVariable(0.0, 1.0, 1.0);
  EXPECT_NE(Dump(m).find("OBJSENSE"), std::string::npos);
  Model m2;
  m2.AddVariable(0.0, 1.0, 1.0);
  EXPECT_EQ(Dump(m2).find("OBJSENSE"), std::string::npos);
}

TEST(MpsWriterTest, FreeAndFixedAndNegativeBounds) {
  Model m;
  m.AddVariable(-kInfinity, kInfinity, 1.0);  // FR
  m.AddVariable(2.0, 2.0, 1.0);               // FX
  m.AddVariable(-5.0, kInfinity, 1.0);        // LO
  m.AddVariable(-kInfinity, 3.0, 1.0);        // MI + UP
  const std::string mps = Dump(m);
  EXPECT_NE(mps.find(" FR "), std::string::npos);
  EXPECT_NE(mps.find(" FX "), std::string::npos);
  EXPECT_NE(mps.find(" LO "), std::string::npos);
  EXPECT_NE(mps.find(" MI "), std::string::npos);
}

TEST(MpsWriterTest, DuplicateCoefficientsAreSummed) {
  Model m;
  const int x = m.AddVariable(0.0, kInfinity, 1.0);
  m.AddConstraint(ConstraintSense::kLessEqual, 4.0,
                  {{x, 1.0}, {x, 2.5}});  // same var twice
  const std::string mps = Dump(m);
  EXPECT_NE(mps.find("3.5"), std::string::npos);
}

TEST(MpsWriterTest, ZeroRhsOmitted) {
  Model m;
  const int x = m.AddVariable(0.0, kInfinity, 1.0);
  m.AddConstraint(ConstraintSense::kLessEqual, 0.0, {{x, 1.0}});
  const std::string mps = Dump(m);
  // RHS section exists but carries no entry for the zero row.
  EXPECT_EQ(mps.find("RHS1"), std::string::npos);
}

TEST(MpsWriterTest, FileVariantRejectsBadPath) {
  Model m;
  m.AddVariable(0.0, 1.0, 1.0);
  EXPECT_FALSE(WriteMpsFile(m, "x", "/nonexistent/dir/m.mps").ok());
}

}  // namespace
}  // namespace geopriv::lp
