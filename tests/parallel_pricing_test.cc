// Tests of the parallel LP construction pipeline and the solve-path
// bugfixes that ride with it:
//   * parallel pricing / table builds / simplex kernels are bit-identical
//     to serial runs at every thread count,
//   * the deadline fires promptly *inside* a pricing scan (not only at
//     round boundaries),
//   * strict mode rejects the GeoInd-breaking identity-row degrade while
//     non-strict counts it,
//   * zero-mass node priors fall back (counted) to uniform,
//   * uncached MSM mode and concurrent Create() calls sharing one pool are
//     race-free (run under TSan in CI).

#include <atomic>
#include <cmath>
#include <memory>
#include <thread>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "base/stopwatch.h"
#include "base/thread_pool.h"
#include "core/msm.h"
#include "geo/distance.h"
#include "mechanisms/optimal.h"
#include "prior/prior.h"
#include "rng/rng.h"
#include "spatial/grid.h"
#include "spatial/hierarchical_grid.h"

namespace geopriv::mechanisms {

// Drives FinalizeMatrix directly: an all-zero LP row is unreachable
// through Create() with a healthy solver, so the degrade handling needs a
// peer to be testable at all.
class OptimalMechanismTestPeer {
 public:
  static OptimalMechanism Make(double eps,
                               std::vector<geo::Point> locations,
                               std::vector<double> prior,
                               geo::UtilityMetric metric) {
    return OptimalMechanism(eps, std::move(locations), std::move(prior),
                            metric);
  }
  static Status Finalize(OptimalMechanism& mech, std::vector<double> raw,
                         bool strict) {
    return mech.FinalizeMatrix(std::move(raw), strict);
  }
};

}  // namespace geopriv::mechanisms

namespace geopriv {
namespace {

using geo::BBox;
using geo::Point;
using geo::UtilityMetric;

constexpr BBox kDomain{0.0, 0.0, 20.0, 20.0};

std::vector<double> SkewedPrior(int n) {
  std::vector<double> prior(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) prior[static_cast<size_t>(i)] = 1.0 / (1.0 + i);
  return prior;
}

mechanisms::OptimalMechanism BuildOpt(int g, double eps,
                                      ThreadPool* pool, int threads,
                                      double time_limit = 0.0) {
  spatial::UniformGrid grid(kDomain, g);
  mechanisms::OptimalMechanismOptions options;
  options.pricing_pool = pool;
  options.pricing_threads = threads;
  if (time_limit > 0.0) options.solver.time_limit_seconds = time_limit;
  auto opt = mechanisms::OptimalMechanism::Create(
      eps, grid.AllCenters(), SkewedPrior(g * g),
      UtilityMetric::kEuclidean, options);
  EXPECT_TRUE(opt.ok()) << opt.status();
  return std::move(opt).value();
}

// g = 5 (n = 25, m = 625 dual rows) is the smallest size where every
// parallel stage actually engages: the simplex kernels' work gate needs
// m^2 >= 2^17 element-ops.
TEST(ParallelPricingTest, DeterministicAcrossThreadCounts) {
  const auto serial = BuildOpt(5, 1.2, nullptr, 0);
  for (int t : {2, 4, 8}) {
    ThreadPool pool(t, 64);
    const auto parallel = BuildOpt(5, 1.2, &pool, t);
    pool.Shutdown();
    EXPECT_EQ(parallel.stats().rounds, serial.stats().rounds) << t;
    EXPECT_EQ(parallel.stats().generated_columns,
              serial.stats().generated_columns)
        << t;
    EXPECT_EQ(parallel.stats().violations_found,
              serial.stats().violations_found)
        << t;
    EXPECT_EQ(parallel.stats().pricing_threads_used, t);
    // Bit-identical transition matrix — not approximately equal.
    for (int x = 0; x < 25; ++x) {
      for (int z = 0; z < 25; ++z) {
        ASSERT_EQ(parallel.K(x, z), serial.K(x, z))
            << "threads=" << t << " x=" << x << " z=" << z;
      }
    }
  }
}

TEST(ParallelPricingTest, StatsSplitSolveTime) {
  const auto opt = BuildOpt(4, 1.0, nullptr, 0);
  const auto& stats = opt.stats();
  EXPECT_GT(stats.violations_found, 0);
  EXPECT_GE(stats.pricing_seconds, 0.0);
  EXPECT_GT(stats.simplex_seconds, 0.0);
  // The two phases partition the solve (up to setup/bookkeeping slack).
  EXPECT_LE(stats.pricing_seconds + stats.simplex_seconds,
            stats.solve_seconds + 1e-6);
}

// g = 7 (n = 49) takes > 60 s to solve outright on CI-class hardware, so
// any of these limits must abort the Create long before completion; the
// per-z-slice check inside the pricing scan (plus the simplex's own
// periodic check) is what makes the abort prompt rather than
// round-granular.
TEST(ParallelPricingTest, DeadlineFiresPromptlyInsidePricing) {
  for (double limit : {0.001, 0.01, 0.05}) {
    spatial::UniformGrid grid(kDomain, 7);
    mechanisms::OptimalMechanismOptions options;
    options.solver.time_limit_seconds = limit;
    const Stopwatch watch;
    auto opt = mechanisms::OptimalMechanism::Create(
        1.0, grid.AllCenters(), SkewedPrior(49),
        UtilityMetric::kEuclidean, options);
    EXPECT_FALSE(opt.ok()) << "limit=" << limit;
    EXPECT_EQ(opt.status().code(), StatusCode::kDeadlineExceeded)
        << opt.status();
    EXPECT_LT(watch.ElapsedSeconds(), 15.0) << "limit=" << limit;
  }
}

TEST(ParallelPricingTest, DeadlineFiresWithParallelPricing) {
  ThreadPool pool(4, 64);
  spatial::UniformGrid grid(kDomain, 7);
  mechanisms::OptimalMechanismOptions options;
  options.pricing_pool = &pool;
  options.pricing_threads = 4;
  options.solver.time_limit_seconds = 0.01;
  const Stopwatch watch;
  auto opt = mechanisms::OptimalMechanism::Create(
      1.0, grid.AllCenters(), SkewedPrior(49), UtilityMetric::kEuclidean,
      options);
  EXPECT_FALSE(opt.ok());
  EXPECT_EQ(opt.status().code(), StatusCode::kDeadlineExceeded)
      << opt.status();
  EXPECT_LT(watch.ElapsedSeconds(), 15.0);
  pool.Shutdown();
}

// Several Create() calls sharing one pool at once: the pool fans each
// build's chunks out to whichever helpers are free and every calling
// thread participates in its own build, so nothing deadlocks and the
// results match the serial ones. (Run under TSan in CI.)
TEST(ParallelPricingTest, ConcurrentCreatesShareOnePool) {
  const auto serial = BuildOpt(4, 0.8, nullptr, 0);
  ThreadPool pool(4, 64);
  std::vector<std::thread> threads;
  std::atomic<int> mismatches{0};
  for (int i = 0; i < 4; ++i) {
    threads.emplace_back([&] {
      const auto parallel = BuildOpt(4, 0.8, &pool, 4);
      for (int x = 0; x < 16; ++x) {
        for (int z = 0; z < 16; ++z) {
          if (parallel.K(x, z) != serial.K(x, z)) mismatches.fetch_add(1);
        }
      }
    });
  }
  for (auto& t : threads) t.join();
  pool.Shutdown();
  EXPECT_EQ(mismatches.load(), 0);
}

TEST(OptStrictModeTest, StrictRejectsAllZeroRow) {
  const std::vector<Point> locs = {{0.0, 0.0}, {1.0, 0.0}};
  auto mech = mechanisms::OptimalMechanismTestPeer::Make(
      1.0, locs, {0.5, 0.5}, UtilityMetric::kEuclidean);
  // Row 1 is all-zero: a solver artifact that, rewritten to an identity
  // row, would deterministically reveal location 1.
  const Status status = mechanisms::OptimalMechanismTestPeer::Finalize(
      mech, {1.0, 0.0, 0.0, 0.0}, /*strict=*/true);
  EXPECT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kInternal) << status;
}

TEST(OptStrictModeTest, NonStrictCountsDegradedRows) {
  const std::vector<Point> locs = {{0.0, 0.0}, {1.0, 0.0}};
  auto mech = mechanisms::OptimalMechanismTestPeer::Make(
      1.0, locs, {0.5, 0.5}, UtilityMetric::kEuclidean);
  const Status status = mechanisms::OptimalMechanismTestPeer::Finalize(
      mech, {1.0, 0.0, 0.0, 0.0}, /*strict=*/false);
  ASSERT_TRUE(status.ok()) << status;
  EXPECT_EQ(mech.stats().degraded_rows, 1);
  // The degraded row became the identity row (and is counted as such).
  EXPECT_EQ(mech.K(1, 0), 0.0);
  EXPECT_EQ(mech.K(1, 1), 1.0);
  EXPECT_EQ(mech.K(0, 0), 1.0);
}

core::MultiStepMechanism MakeMsm(
    std::shared_ptr<const prior::Prior> prior, int g, int height,
    const core::MsmOptions& options = {}) {
  auto grid = spatial::HierarchicalGrid::Create(kDomain, g, height);
  EXPECT_TRUE(grid.ok());
  auto index =
      std::make_shared<spatial::HierarchicalGrid>(std::move(grid).value());
  auto msm = core::MultiStepMechanism::Create(1.0, index, prior, options);
  EXPECT_TRUE(msm.ok()) << msm.status();
  return std::move(msm).value();
}

TEST(MsmZeroMassPriorTest, EmptyQuadrantFallsBackToUniform) {
  // All prior mass in the north-east; the south-west quadrant's node
  // conditions on zero mass and must fall back to a uniform prior over
  // its children (counted) instead of degenerating.
  std::vector<double> masses(16, 0.0);
  for (int cy = 0; cy < 4; ++cy) {
    for (int cx = 0; cx < 4; ++cx) {
      if (cx >= 2 && cy >= 2) masses[static_cast<size_t>(cy * 4 + cx)] = 1.0;
    }
  }
  auto prior = std::make_shared<prior::Prior>(
      prior::Prior::FromMasses(kDomain, 4, std::move(masses)).value());
  const auto msm = MakeMsm(prior, 2, 2);
  // Warm every internal node: root + 4 quadrants.
  auto warmed = msm.PrewarmTopNodes(64);
  ASSERT_TRUE(warmed.ok()) << warmed.status();
  EXPECT_EQ(warmed.value(), 5);
  const core::MsmStats stats = msm.stats();
  // Three quadrants carry no mass.
  EXPECT_EQ(stats.uniform_prior_fallbacks, 3);
  // The fallback still produces working mechanisms: a query through the
  // empty quadrant samples fine.
  rng::Rng rng(3);
  for (int i = 0; i < 32; ++i) {
    auto reported = msm.ReportOrStatus({1.0, 1.0}, rng);
    ASSERT_TRUE(reported.ok()) << reported.status();
    EXPECT_TRUE(kDomain.Contains(reported.value()));
  }
}

// Uncached mode used to share a scratch slot across calls — a data race
// under concurrent Report(). Every call now builds a privately owned
// mechanism. (Run under TSan in CI.)
TEST(MsmUncachedConcurrencyTest, ConcurrentReportsAreSafe) {
  auto prior = std::make_shared<prior::Prior>(
      prior::Prior::Uniform(kDomain, 16));
  core::MsmOptions options;
  options.cache_nodes = false;
  const auto msm = MakeMsm(prior, 2, 2, options);
  std::vector<std::thread> threads;
  std::atomic<int> failures{0};
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&msm, &failures, t] {
      rng::Rng rng(1000 + t);
      for (int i = 0; i < 8; ++i) {
        auto reported = msm.ReportOrStatus({10.0, 10.0}, rng);
        if (!reported.ok()) failures.fetch_add(1);
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(failures.load(), 0);
  EXPECT_EQ(msm.cache_size(), 0u);  // nothing cached in uncached mode
}

TEST(PrewarmFanoutTest, ParallelWarmsSameCountAsSerial) {
  auto prior = std::make_shared<prior::Prior>(
      prior::Prior::Uniform(kDomain, 16));
  const auto serial_msm = MakeMsm(prior, 2, 3);
  const auto parallel_msm = MakeMsm(prior, 2, 3);
  ThreadPool pool(4, 64);
  // g=2, height=3: 1 root + 4 + 16 = 21 internal nodes.
  auto serial = serial_msm.PrewarmTopNodes(10);
  auto parallel = parallel_msm.PrewarmTopNodes(10, &pool);
  ASSERT_TRUE(serial.ok()) << serial.status();
  ASSERT_TRUE(parallel.ok()) << parallel.status();
  EXPECT_EQ(serial.value(), 10);
  EXPECT_EQ(parallel.value(), 10);
  EXPECT_EQ(parallel_msm.cache_size(), 10u);

  // Exhaustive warm: both modes visit every internal node.
  auto serial_all = serial_msm.PrewarmTopNodes(1000);
  auto parallel_all = parallel_msm.PrewarmTopNodes(1000, &pool);
  ASSERT_TRUE(serial_all.ok());
  ASSERT_TRUE(parallel_all.ok());
  EXPECT_EQ(serial_all.value(), 21);
  EXPECT_EQ(parallel_all.value(), 21);
  EXPECT_EQ(parallel_msm.cache_size(), serial_msm.cache_size());
  pool.Shutdown();

  // A shut-down pool degrades to the calling thread, never fails.
  const auto fresh = MakeMsm(prior, 2, 2);
  auto after_shutdown = fresh.PrewarmTopNodes(3, &pool);
  ASSERT_TRUE(after_shutdown.ok());
  EXPECT_EQ(after_shutdown.value(), 3);
}

}  // namespace
}  // namespace geopriv
