// Tests for src/obs/: ring-buffer retention, head sampling, forced
// flight-recorder retention, exporter shapes, and the privacy guardrail
// (span payloads can never carry a coordinate). The concurrency tests are
// named Trace* so the TSan CI job picks them up.

#include "obs/trace.h"

#include <algorithm>
#include <cstdint>
#include <memory>
#include <string>
#include <thread>
#include <type_traits>
#include <vector>

#include <gtest/gtest.h>

#include "service/sanitization_service.h"

namespace geopriv::obs {
namespace {

// The compile-time half of the privacy guardrail, restated here so a test
// run documents it: every SpanEvent field is integral — there is no
// floating-point member a raw or sanitized coordinate could travel in.
static_assert(std::is_integral_v<decltype(SpanEvent::request_id)>);
static_assert(std::is_integral_v<decltype(SpanEvent::node)>);
static_assert(std::is_integral_v<decltype(SpanEvent::detail)>);
static_assert(std::is_trivially_copyable_v<SpanEvent>);

TraceOptions AlwaysSample() {
  TraceOptions options;
  options.sample_one_in = 1;
  options.num_rings = 1;
  return options;
}

TEST(TraceRecorderTest, HeadSamplingRetainsExactlyOneInN) {
  TraceOptions options = AlwaysSample();
  options.sample_one_in = 4;
  TraceRecorder recorder(options);
  for (int i = 0; i < 8; ++i) {
    RequestTrace trace;
    recorder.Begin(&trace);
    const uint64_t now = NowTicks();
    trace.Emit(SpanKind::kRequest, now, now + 10);
    recorder.End(trace, /*latency_seconds=*/1e-6);
  }
  const TraceStats stats = recorder.stats();
  EXPECT_EQ(stats.requests_started, 8u);
  EXPECT_EQ(stats.requests_retained, 2u);  // requests 4 and 8
  EXPECT_EQ(stats.requests_forced, 0u);
  EXPECT_EQ(stats.spans_committed, 2u);
}

TEST(TraceRecorderTest, DegradedRequestIsRetainedDespiteLosingTheHeadDraw) {
  TraceOptions options = AlwaysSample();
  options.sample_one_in = 1u << 30;  // head sampling effectively never hits
  TraceRecorder recorder(options);

  RequestTrace trace;
  recorder.Begin(&trace);
  const uint64_t now = NowTicks();
  trace.Emit(SpanKind::kFallback, now, now + 50);
  trace.SetFlags(kFlagDegraded);
  recorder.End(trace, 1e-6);

  // This request also loses the head draw — and carries no forcing flag,
  // so it vanishes.
  RequestTrace boring;
  recorder.Begin(&boring);
  boring.Emit(SpanKind::kRequest, now, now + 10);
  recorder.End(boring, 1e-6);

  const TraceStats stats = recorder.stats();
  EXPECT_EQ(stats.requests_retained, 1u);
  EXPECT_EQ(stats.requests_forced, 1u);
  const std::vector<SpanEvent> events = recorder.Snapshot();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].kind, static_cast<uint16_t>(SpanKind::kFallback));
  EXPECT_NE(events[0].flags & kFlagDegraded, 0);
}

TEST(TraceRecorderTest, TailLatencyForcesRetention) {
  TraceOptions options = AlwaysSample();
  options.sample_one_in = 1u << 30;
  options.tail_latency_ms = 5.0;
  TraceRecorder recorder(options);
  RequestTrace trace;
  recorder.Begin(&trace);
  const uint64_t now = NowTicks();
  trace.Emit(SpanKind::kRequest, now, now + 10);
  recorder.End(trace, /*latency_seconds=*/0.050);  // 50 ms >= 5 ms
  EXPECT_EQ(recorder.stats().requests_forced, 1u);
  const std::vector<SpanEvent> events = recorder.Snapshot();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_NE(events[0].flags & kFlagTailLatency, 0);
}

TEST(TraceRecorderTest, RingOverwritesOldestAndSnapshotsLastK) {
  TraceOptions options = AlwaysSample();
  options.ring_capacity = 64;  // the enforced minimum
  TraceRecorder recorder(options);
  for (int i = 0; i < 100; ++i) {
    RequestTrace trace;
    recorder.Begin(&trace);
    const uint64_t now = NowTicks();
    trace.Emit(SpanKind::kWalk, now, now + 1);
    trace.Emit(SpanKind::kRequest, now, now + 2);
    recorder.End(trace, 1e-6);
  }
  EXPECT_EQ(recorder.stats().spans_committed, 200u);

  // The ring holds only the last 64 events: the flight-recorder property.
  const std::vector<SpanEvent> resident = recorder.Snapshot();
  ASSERT_EQ(resident.size(), 64u);
  uint64_t min_id = UINT64_MAX;
  for (const SpanEvent& e : resident) min_id = std::min(min_id, e.request_id);
  EXPECT_GE(min_id, 100u - 64u / 2u);  // only recent requests survive

  const std::vector<SpanEvent> last = recorder.Snapshot(10);
  ASSERT_EQ(last.size(), 10u);
  EXPECT_TRUE(std::is_sorted(last.begin(), last.end(),
                             [](const SpanEvent& a, const SpanEvent& b) {
                               return a.start_ticks < b.start_ticks;
                             }));
}

TEST(TraceRecorderTest, PerRequestBufferOverflowCountsDroppedSpans) {
  TraceRecorder recorder(AlwaysSample());
  RequestTrace trace;
  recorder.Begin(&trace);
  const uint64_t now = NowTicks();
  for (int i = 0; i < RequestTrace::kMaxSpans + 5; ++i) {
    trace.Emit(SpanKind::kWalkLevelPlan, now, now + 1, /*node=*/i);
  }
  EXPECT_EQ(trace.span_count(), RequestTrace::kMaxSpans);
  recorder.End(trace, 1e-6);
  EXPECT_EQ(recorder.stats().spans_dropped, 5u);
  EXPECT_EQ(recorder.stats().spans_committed,
            static_cast<uint64_t>(RequestTrace::kMaxSpans));
}

TEST(TraceScopeTest, ScopedTraceInstallsAndRestoresNested) {
  EXPECT_EQ(ActiveTrace(), nullptr);
  RequestTrace outer, inner;
  {
    ScopedTrace outer_scope(&outer);
    EXPECT_EQ(ActiveTrace(), &outer);
    {
      ScopedTrace inner_scope(&inner);
      EXPECT_EQ(ActiveTrace(), &inner);
    }
    EXPECT_EQ(ActiveTrace(), &outer);
  }
  EXPECT_EQ(ActiveTrace(), nullptr);
}

TEST(TraceRecorderTest, ChromeTraceJsonHasCompleteEventShape) {
  TraceRecorder recorder(AlwaysSample());
  RequestTrace trace;
  recorder.Begin(&trace);
  const uint64_t now = NowTicks();
  trace.Emit(SpanKind::kLpPricing, now, now + 1000, /*node=*/7, /*detail=*/2);
  recorder.End(trace, 1e-6);
  const std::string json = recorder.ChromeTraceJson();
  EXPECT_NE(json.find("\"traceEvents\":["), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("\"cat\":\"geopriv\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"lp_pricing\""), std::string::npos);
  EXPECT_NE(json.find("\"node\":7"), std::string::npos);
}

TEST(TraceRecorderTest, SpanKindNamesAreStable) {
  EXPECT_STREQ(SpanKindName(SpanKind::kQueueWait), "queue_wait");
  EXPECT_STREQ(SpanKindName(SpanKind::kWalkLevelColdBuild),
               "walk_level_cold_build");
  EXPECT_STREQ(SpanKindName(SpanKind::kSingleflightWait),
               "singleflight_wait");
  EXPECT_STREQ(SpanKindName(SpanKind::kFallback), "fallback");
}

// TSan target: concurrent Begin/Emit/End against one shared recorder. The
// volume stays below one ring's capacity so concurrent reservations never
// lap each other (dump-while-write tearing is exercised separately, not
// under TSan — it is a documented diagnostic-read trade).
TEST(TraceRecorderTest, ConcurrentBeginEndStress) {
  TraceOptions options;
  options.sample_one_in = 2;
  options.ring_capacity = 8192;
  options.num_rings = 8;
  TraceRecorder recorder(options);
  constexpr int kThreads = 8;
  constexpr int kRequestsPerThread = 200;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&recorder, t] {
      for (int i = 0; i < kRequestsPerThread; ++i) {
        RequestTrace trace;
        recorder.Begin(&trace);
        const uint64_t now = NowTicks();
        trace.Emit(SpanKind::kQueueWait, now, now + 1);
        trace.Emit(SpanKind::kWalk, now + 1, now + 2, /*node=*/t);
        trace.Emit(SpanKind::kRequest, now, now + 3);
        if (i % 17 == 0) trace.SetFlags(kFlagDegraded);
        recorder.End(trace, 1e-6);
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  const TraceStats stats = recorder.stats();
  EXPECT_EQ(stats.requests_started,
            static_cast<uint64_t>(kThreads * kRequestsPerThread));
  EXPECT_GE(stats.requests_retained, stats.requests_forced);
  EXPECT_EQ(stats.spans_committed, stats.requests_retained * 3);
  // Every committed span is intact (the joins order the reads after all
  // writes): a known kind and the request's flags stamped on.
  for (const SpanEvent& e : recorder.Snapshot()) {
    EXPECT_LT(e.kind, static_cast<uint16_t>(SpanKind::kNumKinds));
    EXPECT_NE(e.flags & (kFlagSampled | kFlagDegraded), 0);
  }
}

// ---------------------------------------------------------------------------
// End-to-end: the service pipeline with tracing on.

constexpr double kMinLat = 30.1927, kMinLon = -97.8698;
constexpr double kMaxLat = 30.3723, kMaxLon = -97.6618;

service::RegionConfig SmallRegion() {
  service::RegionConfig config;
  config.min_lat = kMinLat;
  config.min_lon = kMinLon;
  config.max_lat = kMaxLat;
  config.max_lon = kMaxLon;
  config.eps = 0.5;
  config.granularity = 3;
  config.prior_granularity = 32;
  return config;
}

TEST(SanitizationTraceTest, EndToEndSpansCoverThePipeline) {
  service::ServiceOptions options;
  options.num_workers = 2;
  options.trace.sample_one_in = 1;  // retain everything
  auto service = service::SanitizationService::Create(options);
  ASSERT_TRUE(service.ok());
  ASSERT_TRUE((*service)->RegisterRegion("austin", SmallRegion()).ok());

  std::vector<core::LatLon> queries;
  for (int i = 0; i < 16; ++i) {
    queries.push_back({30.2672 + 0.0004 * (i % 5), -97.7431});
  }
  const auto results = (*service)->SanitizeBatch("austin", queries);
  for (const auto& r : results) ASSERT_TRUE(r.status.ok());

  const obs::TraceStats stats = (*service)->trace_recorder()->stats();
  EXPECT_EQ(stats.requests_started, 16u);
  EXPECT_EQ(stats.requests_retained, 16u);

  // The dump shows the whole pipeline: admission wait, the walk, at least
  // one per-level span, and the request envelope.
  const std::string dump = (*service)->FlightRecorderJson(512);
  EXPECT_NE(dump.find("\"kind\":\"queue_wait\""), std::string::npos);
  EXPECT_NE(dump.find("\"kind\":\"walk\""), std::string::npos);
  EXPECT_NE(dump.find("\"kind\":\"request\""), std::string::npos);
  const bool has_level_span =
      dump.find("walk_level_cold_build") != std::string::npos ||
      dump.find("walk_level_cache_hit") != std::string::npos ||
      dump.find("walk_level_memo") != std::string::npos ||
      dump.find("walk_level_plan") != std::string::npos;
  EXPECT_TRUE(has_level_span) << dump.substr(0, 2000);
  // Cold builds ran at least once, so the LP phase spans appear.
  EXPECT_NE(dump.find("\"kind\":\"lp_pricing\""), std::string::npos);

  // MetricsJson carries the recorder's counters.
  const std::string json = (*service)->MetricsJson();
  EXPECT_NE(json.find("\"trace\":{\"enabled\":1"), std::string::npos);
  EXPECT_NE(json.find("\"requests_retained\":16"), std::string::npos);
}

// The runtime half of the privacy guardrail: force a degraded request,
// dump the flight recorder, and assert no span carries a coordinate — no
// lat/lon/x/y keys, only node ids, levels, status codes, and tick times.
TEST(SanitizationTraceTest, ForcedDegradedDumpContainsNoCoordinates) {
  service::ServiceOptions options;
  options.num_workers = 1;
  options.trace.sample_one_in = 1u << 30;  // only forced retention
  auto service = service::SanitizationService::Create(options);
  ASSERT_TRUE(service.ok());
  ASSERT_TRUE((*service)->RegisterRegion("austin", SmallRegion()).ok());

  service::SanitizeRequest request;
  request.region_id = "austin";
  request.location = {30.2672, -97.7431};
  request.deadline_ms = 1e-9;  // expires in the queue: guaranteed degrade
  auto future = (*service)->SubmitFuture(request);
  const service::SanitizeResult result = future.get();
  ASSERT_TRUE(result.status.ok());
  ASSERT_TRUE(result.used_fallback);

  const obs::TraceStats stats = (*service)->trace_recorder()->stats();
  EXPECT_EQ(stats.requests_forced, 1u);

  const std::string dump = (*service)->FlightRecorderJson();
  ASSERT_NE(dump.find("\"kind\":\"fallback\""), std::string::npos);
  // Fallback reason 0: the deadline was gone at pickup.
  EXPECT_NE(dump.find("\"kind\":\"fallback\",\"start_us\""), std::string::npos);
  for (const char* forbidden :
       {"lat", "lon", "coord", "\"x\"", "\"y\"", "point", "location"}) {
    EXPECT_EQ(dump.find(forbidden), std::string::npos)
        << "coordinate-ish key '" << forbidden << "' leaked into " << dump;
  }
  // Same guarantee for the Chrome export (its fixed vocabulary aside:
  // "dur"/"cat"/"args" contain no coordinate data).
  const std::string chrome = (*service)->ChromeTraceJson();
  for (const char* forbidden : {"lat", "lon", "coord", "location"}) {
    EXPECT_EQ(chrome.find(forbidden), std::string::npos);
  }
}

TEST(SanitizationTraceTest, TracingOffCostsNothingAndExportsEmpty) {
  service::ServiceOptions options;
  options.num_workers = 1;
  auto service = service::SanitizationService::Create(options);
  ASSERT_TRUE(service.ok());
  EXPECT_EQ((*service)->trace_recorder(), nullptr);
  EXPECT_EQ((*service)->FlightRecorderJson(), "[]");
  EXPECT_EQ((*service)->ChromeTraceJson(), "{\"traceEvents\":[]}");
  const std::string json = (*service)->MetricsJson();
  EXPECT_NE(json.find("\"trace\":{\"enabled\":0"), std::string::npos);
}

}  // namespace
}  // namespace geopriv::obs
