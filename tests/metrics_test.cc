// Tests for the service metrics surface: the stable JSON key schema
// (kMetricsJsonKeys / kRegionMetricsJsonKeys are the one source of
// truth), the cumulative histogram export, the Prometheus text format,
// JsonEscape over the full control-character range, and the
// QuantileFromBuckets estimator's monotonicity.

#include "service/metrics.h"

#include <cstdio>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "service/sanitization_service.h"

namespace geopriv::service {
namespace {

// Asserts every key in `keys` appears in `json` as "key": at a strictly
// increasing position — presence and order in one pass.
template <size_t N>
void ExpectKeysInOrder(const std::string& json, const char* const (&keys)[N],
                       size_t from = 0) {
  size_t pos = from;
  for (const char* key : keys) {
    const std::string quoted = std::string("\"") + key + "\":";
    const size_t at = json.find(quoted, pos);
    ASSERT_NE(at, std::string::npos)
        << "key '" << key << "' missing (or out of order) in " << json;
    pos = at + quoted.size();
  }
}

TEST(MetricsSchemaTest, ToJsonEmitsExactlyTheDocumentedKeysInOrder) {
  Metrics metrics;
  metrics.RecordAccepted();
  metrics.RecordOk();
  metrics.RecordLatency(0.010);
  ExpectKeysInOrder(metrics.ToJson(), kMetricsJsonKeys);
}

TEST(MetricsSchemaTest, RecordBundleLoadFlowsIntoSnapshotJsonAndText) {
  Metrics metrics(2);
  metrics.RecordBundleLoad(/*seconds=*/0.25, /*bytes_mapped=*/1 << 20,
                           /*plan_nodes=*/21);
  metrics.RecordBundleLoad(/*seconds=*/0.50, /*bytes_mapped=*/2 << 20,
                           /*plan_nodes=*/21, /*slot=*/1);

  const MetricsSnapshot s = metrics.Snapshot();
  EXPECT_EQ(s.bundle_loads, 2u);
  EXPECT_DOUBLE_EQ(s.bundle_load_seconds, 0.75);
  EXPECT_EQ(s.bundle_bytes_mapped, 3u << 20);
  EXPECT_EQ(s.plan_warm_at_startup, 42u);

  const std::string json = metrics.ToJson();
  ExpectKeysInOrder(json, kMetricsJsonKeys);
  EXPECT_NE(json.find("\"bundle_loads\":2"), std::string::npos) << json;
  EXPECT_NE(json.find("\"plan_warm_at_startup\":42}"), std::string::npos)
      << json;

  const std::string text = metrics.ToPrometheus("geopriv_");
  EXPECT_NE(text.find("# TYPE geopriv_bundle_loads_total counter\n"
                      "geopriv_bundle_loads_total 2\n"),
            std::string::npos);
  EXPECT_NE(text.find("# TYPE geopriv_bundle_bytes_mapped gauge"),
            std::string::npos);
  EXPECT_NE(text.find("geopriv_plan_warm_at_startup 42\n"),
            std::string::npos);
}

TEST(MetricsSchemaTest, ToJsonBucketArraysAreCumulativeAndConsistent) {
  Metrics metrics;
  metrics.RecordLatency(0.5e-6);  // first bucket
  metrics.RecordLatency(0.001);
  metrics.RecordLatency(0.001);
  metrics.RecordLatency(1e9);  // clamped into the open-ended top bucket

  const MetricsSnapshot s = metrics.Snapshot();
  EXPECT_EQ(s.latency_count, 4u);
  // Cumulative: non-decreasing, first bucket counts the sub-microsecond
  // sample, the last equals the total count.
  EXPECT_EQ(s.latency_buckets.front(), 1u);
  for (size_t i = 1; i < s.latency_buckets.size(); ++i) {
    EXPECT_GE(s.latency_buckets[i], s.latency_buckets[i - 1]);
  }
  EXPECT_EQ(s.latency_buckets.back(), s.latency_count);

  // The JSON mirrors the snapshot: kNumBuckets bounds and counts, and the
  // final cumulative count equals latency_count.
  const std::string json = metrics.ToJson();
  const size_t bounds_at = json.find("\"latency_bucket_le_s\":[");
  const size_t counts_at = json.find("\"latency_buckets_cumulative\":[");
  ASSERT_NE(bounds_at, std::string::npos);
  ASSERT_NE(counts_at, std::string::npos);
  // (The bundle keys extended the schema past the arrays, so the array
  // is followed by more keys, not the closing brace.)
  EXPECT_NE(json.find(",4],", counts_at), std::string::npos) << json;
}

TEST(MetricsSchemaTest, ServiceMetricsJsonFollowsTheDocumentedSchema) {
  ServiceOptions options;
  options.num_workers = 1;
  auto service = SanitizationService::Create(options);
  ASSERT_TRUE(service.ok());

  RegionConfig config;
  config.min_lat = 30.19;
  config.min_lon = -97.87;
  config.max_lat = 30.37;
  config.max_lon = -97.66;
  config.eps = 0.5;
  config.granularity = 3;
  config.prior_granularity = 16;
  ASSERT_TRUE((*service)->RegisterRegion("austin", config).ok());

  const std::string json = (*service)->MetricsJson();
  ExpectKeysInOrder(json, kServiceMetricsJsonKeys);
  ExpectKeysInOrder(json, kTraceMetricsJsonKeys,
                    json.find("\"trace\":"));
  ExpectKeysInOrder(json, kRegionMetricsJsonKeys,
                    json.find("\"regions\":"));
}

TEST(MetricsPrometheusTest, TextExpositionHasCountersAndHistogram) {
  Metrics metrics;
  for (int i = 0; i < 5; ++i) metrics.RecordAccepted();
  metrics.RecordOk();
  metrics.RecordDeadlineFallback();
  metrics.RecordLatency(0.001);
  metrics.RecordLatency(0.004);
  metrics.RecordLatency(2.0);

  const std::string text = metrics.ToPrometheus("geopriv_");
  EXPECT_NE(text.find("# TYPE geopriv_requests_total counter\n"
                      "geopriv_requests_total 5\n"),
            std::string::npos);
  EXPECT_NE(text.find("geopriv_fallbacks_deadline_total 1\n"),
            std::string::npos);
  EXPECT_NE(text.find("# TYPE geopriv_request_latency_seconds histogram"),
            std::string::npos);
  EXPECT_NE(text.find("geopriv_request_latency_seconds_bucket{le=\"+Inf\"} 3"),
            std::string::npos);
  EXPECT_NE(text.find("geopriv_request_latency_seconds_count 3"),
            std::string::npos);
  EXPECT_NE(text.find("geopriv_request_latency_seconds_sum 2.005"),
            std::string::npos);

  // Bucket counts are cumulative: extract every le-bucket value and check
  // it never decreases, ending at the +Inf count.
  std::vector<unsigned long long> counts;
  size_t pos = 0;
  const std::string needle = "geopriv_request_latency_seconds_bucket{le=";
  while ((pos = text.find(needle, pos)) != std::string::npos) {
    const size_t space = text.find("} ", pos);
    ASSERT_NE(space, std::string::npos);
    counts.push_back(std::stoull(text.substr(space + 2)));
    pos = space;
  }
  ASSERT_EQ(counts.size(),
            static_cast<size_t>(LatencyHistogram::kNumBuckets));
  for (size_t i = 1; i < counts.size(); ++i) {
    EXPECT_GE(counts[i], counts[i - 1]);
  }
  EXPECT_EQ(counts.back(), 3u);
}

TEST(MetricsPrometheusTest, ServiceTextCarriesRegionGaugesAndEpoch) {
  ServiceOptions options;
  options.num_workers = 1;
  options.trace.sample_one_in = 1;
  auto service = SanitizationService::Create(options);
  ASSERT_TRUE(service.ok());

  RegionConfig config;
  config.min_lat = 30.19;
  config.min_lon = -97.87;
  config.max_lat = 30.37;
  config.max_lon = -97.66;
  config.eps = 0.5;
  config.granularity = 3;
  config.prior_granularity = 16;
  ASSERT_TRUE((*service)->RegisterRegion("aus\"tin", config).ok());

  const std::string text = (*service)->MetricsText();
  EXPECT_NE(text.find("geopriv_snapshot_epoch 1"), std::string::npos);
  EXPECT_NE(text.find("# TYPE geopriv_trace_requests_started_total counter"),
            std::string::npos);
  // The hostile region id survives as an escaped label value.
  EXPECT_NE(text.find("geopriv_region_cache_size{region=\"aus\\\"tin\"}"),
            std::string::npos);
}

TEST(JsonEscapeTest, EscapesEveryControlCharacterAndJsonSpecials) {
  // The named short escapes.
  EXPECT_EQ(JsonEscape("\""), "\\\"");
  EXPECT_EQ(JsonEscape("\\"), "\\\\");
  EXPECT_EQ(JsonEscape("\b"), "\\b");
  EXPECT_EQ(JsonEscape("\f"), "\\f");
  EXPECT_EQ(JsonEscape("\n"), "\\n");
  EXPECT_EQ(JsonEscape("\r"), "\\r");
  EXPECT_EQ(JsonEscape("\t"), "\\t");
  // Every other control character becomes \u00XX — the whole range
  // 0x00..0x1F must come out escaped, nothing raw.
  for (int c = 0; c < 0x20; ++c) {
    const std::string escaped = JsonEscape(std::string(1, static_cast<char>(c)));
    ASSERT_GE(escaped.size(), 2u) << "control char " << c << " left raw";
    EXPECT_EQ(escaped[0], '\\') << "control char " << c;
    if (c != '\b' && c != '\f' && c != '\n' && c != '\r' && c != '\t') {
      char expect[8];
      std::snprintf(expect, sizeof(expect), "\\u%04x", c);
      EXPECT_EQ(escaped, expect);
    }
  }
  // Printable ASCII and high bytes (UTF-8 continuation range) pass through.
  EXPECT_EQ(JsonEscape("plain text 123"), "plain text 123");
  EXPECT_EQ(JsonEscape("\xc3\xa9"), "\xc3\xa9");
  // DEL (0x7F) is not a JSON control character and passes through.
  EXPECT_EQ(JsonEscape("\x7f"), "\x7f");
}

TEST(QuantileFromBucketsTest, MonotoneInQ) {
  LatencyHistogram::BucketCounts counts{};
  counts[2] = 10;
  counts[5] = 3;
  counts[11] = 40;
  counts[27] = 7;
  double prev = -1.0;
  for (int i = 0; i <= 100; ++i) {
    const double q = i / 100.0;
    const double v = LatencyHistogram::QuantileFromBuckets(counts, q);
    EXPECT_GE(v, prev) << "quantile regressed at q=" << q;
    prev = v;
  }
  // And clamping: out-of-range q behaves like the endpoints.
  EXPECT_EQ(LatencyHistogram::QuantileFromBuckets(counts, -3.0),
            LatencyHistogram::QuantileFromBuckets(counts, 0.0));
  EXPECT_EQ(LatencyHistogram::QuantileFromBuckets(counts, 42.0),
            LatencyHistogram::QuantileFromBuckets(counts, 1.0));
}

TEST(QuantileFromBucketsTest, EmptyBucketsYieldZeroForEveryQ) {
  const LatencyHistogram::BucketCounts counts{};
  for (const double q : {0.0, 0.25, 0.5, 0.9, 0.99, 1.0}) {
    EXPECT_EQ(LatencyHistogram::QuantileFromBuckets(counts, q), 0.0);
  }
}

TEST(QuantileFromBucketsTest, SingleBucketInterpolatesWithinBounds) {
  LatencyHistogram::BucketCounts counts{};
  counts[4] = 100;  // all mass in bucket 4: (BucketBound(3), BucketBound(4)]
  const double lower = LatencyHistogram::BucketBound(3);
  const double upper = LatencyHistogram::BucketBound(4);
  for (const double q : {0.01, 0.5, 0.99}) {
    const double v = LatencyHistogram::QuantileFromBuckets(counts, q);
    EXPECT_GE(v, lower);
    EXPECT_LE(v, upper);
  }
}

}  // namespace
}  // namespace geopriv::service
