// Micro-benchmarks: spatial substrate — grid arithmetic, hierarchical-grid
// navigation, R-tree construction and queries, k-d partition build.

#include <benchmark/benchmark.h>

#include "prior/prior.h"
#include "rng/rng.h"
#include "spatial/grid.h"
#include "spatial/hierarchical_grid.h"
#include "spatial/kd_partition.h"
#include "spatial/str_rtree.h"

namespace {

using namespace geopriv;  // NOLINT: benchmark brevity

std::vector<geo::Point> RandomPoints(int n, uint64_t seed) {
  rng::Rng rng(seed);
  std::vector<geo::Point> pts(n);
  for (auto& p : pts) {
    p = {rng.Uniform(0.0, 20.0), rng.Uniform(0.0, 20.0)};
  }
  return pts;
}

void BM_GridCellOf(benchmark::State& state) {
  spatial::UniformGrid grid({0, 0, 20, 20}, 64);
  rng::Rng rng(1);
  geo::Point p{3.0, 4.0};
  for (auto _ : state) {
    p.x = rng.Uniform(0.0, 20.0);
    benchmark::DoNotOptimize(grid.CellOf(p));
  }
}
BENCHMARK(BM_GridCellOf);

void BM_HierGridChildren(benchmark::State& state) {
  auto grid =
      spatial::HierarchicalGrid::Create({0, 0, 20, 20}, 4, 4).value();
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        grid.Children(spatial::HierarchicalPartition::kRoot));
  }
}
BENCHMARK(BM_HierGridChildren);

void BM_HierGridNodeAt(benchmark::State& state) {
  auto grid =
      spatial::HierarchicalGrid::Create({0, 0, 20, 20}, 4, 4).value();
  rng::Rng rng(1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        grid.NodeAt(4, {rng.Uniform(0.0, 20.0), rng.Uniform(0.0, 20.0)}));
  }
}
BENCHMARK(BM_HierGridNodeAt);

void BM_RTreeBuild(benchmark::State& state) {
  const auto pts = RandomPoints(static_cast<int>(state.range(0)), 7);
  for (auto _ : state) {
    benchmark::DoNotOptimize(spatial::StrRTree::Build(pts, 16));
  }
}
BENCHMARK(BM_RTreeBuild)->Arg(1000)->Arg(10000)->Arg(100000)
    ->Unit(benchmark::kMillisecond);

void BM_RTreeNearest(benchmark::State& state) {
  auto tree =
      spatial::StrRTree::Build(RandomPoints(100000, 7), 16).value();
  rng::Rng rng(1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        tree.Nearest({rng.Uniform(0.0, 20.0), rng.Uniform(0.0, 20.0)}));
  }
}
BENCHMARK(BM_RTreeNearest);

void BM_RTreeKnn10(benchmark::State& state) {
  auto tree =
      spatial::StrRTree::Build(RandomPoints(100000, 7), 16).value();
  rng::Rng rng(1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(tree.KNearest(
        {rng.Uniform(0.0, 20.0), rng.Uniform(0.0, 20.0)}, 10));
  }
}
BENCHMARK(BM_RTreeKnn10);

void BM_KdPartitionBuild(benchmark::State& state) {
  const auto pts = RandomPoints(static_cast<int>(state.range(0)), 9);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        spatial::KdPartition::Create({0, 0, 20, 20}, pts, 2, 4));
  }
}
BENCHMARK(BM_KdPartitionBuild)->Arg(10000)->Arg(50000)
    ->Unit(benchmark::kMillisecond);

void BM_PriorConditional(benchmark::State& state) {
  const auto pts = RandomPoints(50000, 11);
  auto prior = prior::Prior::FromPoints({0, 0, 20, 20}, 128, pts).value();
  auto grid =
      spatial::HierarchicalGrid::Create({0, 0, 20, 20}, 4, 2).value();
  std::vector<geo::BBox> boxes;
  for (const auto& c :
       grid.Children(spatial::HierarchicalPartition::kRoot)) {
    boxes.push_back(c.bounds);
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(prior.ConditionalOn(boxes));
  }
}
BENCHMARK(BM_PriorConditional);

}  // namespace

BENCHMARK_MAIN();
