// Service throughput scaling: QPS and tail latency of SanitizationService
// as a function of worker-pool size, with a cold node cache (every request
// wave pays LP solves) and a warm one (pure serving path). Results go to
// stdout as a table and to --json (default BENCH_service.json).
//
// Flags:
//   --threads "1,2,4,8"   comma-separated worker counts to sweep
//   --requests N          requests per measurement batch (default 2000)
//   --eps E               privacy budget (default 0.5)
//   --g G                 index fanout (default 3)
//   --json PATH           output JSON path (default BENCH_service.json)
//
// The sweep runs on one process; real speedups require real cores, so the
// JSON records hardware_concurrency alongside each data point.

#include <algorithm>
#include <cstdio>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "base/check.h"
#include "base/stopwatch.h"
#include "bench/bench_util.h"
#include "eval/table.h"
#include "service/sanitization_service.h"

namespace geopriv::bench {
namespace {

// The paper's Austin study region (matches data::GowallaAustinLike()).
constexpr double kMinLat = 30.1927, kMinLon = -97.8698;
constexpr double kMaxLat = 30.3723, kMaxLon = -97.6618;

std::vector<int> ParseThreadList(const std::string& spec) {
  std::vector<int> out;
  std::string token;
  for (char c : spec + ",") {
    if (c == ',') {
      if (!token.empty()) out.push_back(std::atoi(token.c_str()));
      token.clear();
    } else {
      token.push_back(c);
    }
  }
  GEOPRIV_CHECK_MSG(!out.empty(), "empty --threads list");
  return out;
}

// Deterministic query stream covering the whole region (not just one
// hotspot) so the index walk touches many nodes.
std::vector<core::LatLon> MakeQueries(int n) {
  std::vector<core::LatLon> queries;
  queries.reserve(n);
  for (int i = 0; i < n; ++i) {
    const double u = (i % 97) / 96.0;
    const double v = (i % 83) / 82.0;
    queries.push_back({kMinLat + u * (kMaxLat - kMinLat),
                       kMinLon + v * (kMaxLon - kMinLon)});
  }
  return queries;
}

struct BatchMeasurement {
  double qps = 0.0;
  double p50_ms = 0.0;
  double p99_ms = 0.0;
  double wall_seconds = 0.0;
};

double Percentile(std::vector<double>& sorted, double q) {
  if (sorted.empty()) return 0.0;
  const size_t idx = static_cast<size_t>(q * (sorted.size() - 1) + 0.5);
  return sorted[std::min(idx, sorted.size() - 1)];
}

BatchMeasurement RunBatch(service::SanitizationService& service,
                          const std::vector<core::LatLon>& queries) {
  Stopwatch watch;
  const auto results = service.SanitizeBatch("austin", queries);
  BatchMeasurement m;
  m.wall_seconds = watch.ElapsedSeconds();
  std::vector<double> latencies;
  latencies.reserve(results.size());
  for (const auto& r : results) {
    GEOPRIV_CHECK_OK(r.status);
    latencies.push_back(r.latency_ms);
  }
  std::sort(latencies.begin(), latencies.end());
  m.qps = m.wall_seconds > 0 ? queries.size() / m.wall_seconds : 0.0;
  m.p50_ms = Percentile(latencies, 0.50);
  m.p99_ms = Percentile(latencies, 0.99);
  return m;
}

struct DataPoint {
  int threads = 0;
  BatchMeasurement cold, warm;
  // LP construction CPU-seconds paid during the cold batch (summed over
  // workers, so it can exceed cold wall time on multi-core runs). Cold
  // request latency bundles queueing + build + walk; this splits the
  // one-time build cost out so the cold/warm gap is attributable.
  double cold_lp_build_s = 0.0;
  int64_t lp_solves = 0;
  int64_t cache_hits = 0;
  size_t cache_size = 0;
  uint64_t singleflight_waits = 0;
};

int Main(int argc, char** argv) {
  const Flags flags(argc, argv);
  const std::vector<int> thread_counts =
      ParseThreadList(flags.GetString("threads", "1,2,4,8"));
  const int requests = flags.GetInt("requests", 2000);
  const double eps = flags.GetDouble("eps", 0.5);
  const int g = flags.GetInt("g", 3);
  const std::string json_path = flags.GetString("json", "BENCH_service.json");

  service::RegionConfig region;
  region.min_lat = kMinLat;
  region.min_lon = kMinLon;
  region.max_lat = kMaxLat;
  region.max_lon = kMaxLon;
  region.eps = eps;
  region.granularity = g;
  region.prior_granularity = 32;

  const auto queries = MakeQueries(requests);
  std::vector<DataPoint> points;
  for (int threads : thread_counts) {
    service::ServiceOptions options;
    options.num_workers = threads;
    options.queue_capacity = static_cast<size_t>(requests) + 16;
    options.seed = 20190326;
    auto service = service::SanitizationService::Create(options);
    GEOPRIV_CHECK_OK(service.status());
    GEOPRIV_CHECK_OK((*service)->RegisterRegion("austin", region));

    DataPoint point;
    point.threads = threads;
    point.cold = RunBatch(**service, queries);  // pays LP solves
    {
      const auto cold_info = (*service)->GetRegionInfo("austin");
      GEOPRIV_CHECK_OK(cold_info.status());
      point.cold_lp_build_s = cold_info->msm.lp_seconds;
    }
    point.warm = RunBatch(**service, queries);  // pure serving path
    const auto info = (*service)->GetRegionInfo("austin");
    GEOPRIV_CHECK_OK(info.status());
    point.lp_solves = info->msm.lp_solves;
    point.cache_hits = info->msm.cache_hits;
    point.cache_size = info->cache_size;
    point.singleflight_waits = info->singleflight_waits;
    points.push_back(point);
    std::printf("threads=%d done (cold %.0f qps, warm %.0f qps)\n", threads,
                point.cold.qps, point.warm.qps);
  }

  std::printf("\nService throughput scaling (requests=%d, eps=%g, g=%d)\n",
              requests, eps, g);
  eval::Table table({"threads", "cold QPS", "cold p99 ms", "LP build s",
                     "warm QPS", "warm p50 ms", "warm p99 ms", "LP solves",
                     "hit rate"});
  for (const auto& p : points) {
    const double lookups =
        static_cast<double>(p.cache_hits + p.lp_solves);
    const double hit_rate = lookups > 0 ? p.cache_hits / lookups : 0.0;
    table.AddRow({std::to_string(p.threads), eval::Fmt(p.cold.qps, 1),
                  eval::Fmt(p.cold.p99_ms, 3),
                  eval::Fmt(p.cold_lp_build_s, 4), eval::Fmt(p.warm.qps, 1),
                  eval::Fmt(p.warm.p50_ms, 3), eval::Fmt(p.warm.p99_ms, 3),
                  std::to_string(p.lp_solves), eval::Fmt(hit_rate, 3)});
  }
  table.Print(std::cout);
  const unsigned hc = std::thread::hardware_concurrency();
  int max_threads = 0;
  for (const auto& p : points) max_threads = std::max(max_threads, p.threads);
  const bool scaling_valid = hc >= static_cast<unsigned>(max_threads);
  if (!scaling_valid) {
    std::printf(
        "NOTE: hardware_concurrency=%u < max swept threads=%d — "
        "multi-thread QPS deltas measure queueing overhead, not parallel "
        "scaling.\n",
        hc, max_threads);
  }

  std::FILE* f = std::fopen(json_path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot open %s\n", json_path.c_str());
    return 1;
  }
  std::fprintf(f,
               "{\n  \"bench\": \"throughput_scaling\",\n"
               "  \"requests\": %d,\n  \"eps\": %g,\n  \"granularity\": %d,\n"
               "  \"hardware_concurrency\": %u,\n"
               "  \"multi_thread_scaling_valid\": %s,\n  \"points\": [\n",
               requests, eps, g, hc, scaling_valid ? "true" : "false");
  for (size_t i = 0; i < points.size(); ++i) {
    const auto& p = points[i];
    const double lookups = static_cast<double>(p.cache_hits + p.lp_solves);
    std::fprintf(
        f,
        "    {\"threads\": %d, \"hardware_concurrency\": %u,"
        " \"scaling_valid\": %s,"
        " \"cold\": {\"qps\": %.2f, \"p50_ms\": %.4f, \"p99_ms\": %.4f,"
        " \"wall_s\": %.4f, \"lp_build_cpu_s\": %.4f},"
        " \"warm\": {\"qps\": %.2f, \"p50_ms\": %.4f, \"p99_ms\": %.4f,"
        " \"wall_s\": %.4f},"
        " \"lp_solves\": %lld, \"cache_hits\": %lld, \"cache_size\": %zu,"
        " \"singleflight_waits\": %llu, \"cache_hit_rate\": %.4f}%s\n",
        p.threads, hc,
        hc >= static_cast<unsigned>(p.threads) ? "true" : "false",
        p.cold.qps, p.cold.p50_ms, p.cold.p99_ms, p.cold.wall_seconds,
        p.cold_lp_build_s, p.warm.qps, p.warm.p50_ms, p.warm.p99_ms,
        p.warm.wall_seconds, static_cast<long long>(p.lp_solves),
        static_cast<long long>(p.cache_hits), p.cache_size,
        static_cast<unsigned long long>(p.singleflight_waits),
        lookups > 0 ? p.cache_hits / lookups : 0.0,
        i + 1 < points.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
  std::printf("\nJSON written to %s\n", json_path.c_str());
  return 0;
}

}  // namespace
}  // namespace geopriv::bench

int main(int argc, char** argv) { return geopriv::bench::Main(argc, argv); }
