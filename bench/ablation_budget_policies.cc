// Ablation — budget allocation policy (the design choice of Section 5).
//
// Compares the paper's Algorithm 2 (rho-minimal per level, coarse levels
// secured first) against uniform and geometric splits at the same total
// eps, plus two flat prior-free baselines (PL+grid and the discrete
// exponential mechanism) for context.
//
// Flags: --dataset gowalla|yelp|both  --eps 0.5  --g 4  --requests 1000
//        --csv PATH

#include "bench/bench_util.h"

#include "mechanisms/exponential.h"
#include "spatial/grid.h"

int main(int argc, char** argv) {
  using namespace geopriv;  // NOLINT: binary brevity
  const bench::Flags flags(argc, argv);
  const double eps = flags.GetDouble("eps", 0.5);
  const int requests = flags.GetInt("requests", 1000);

  std::printf("Ablation: budget allocation policies (eps=%.2f)\n\n", eps);
  eval::Table table(
      {"dataset", "g", "policy", "height", "loss_km", "level_budgets"});

  auto budgets_string = [](const core::BudgetAllocation& b) {
    std::string s;
    for (int i = 0; i < b.height(); ++i) {
      if (i > 0) s += "/";
      s += eval::Fmt(b.per_level[i], 2);
    }
    return s;
  };

  for (const std::string& name : bench::DatasetList(flags)) {
    const bench::Workload workload = bench::MakeWorkload(name);
    for (int g : {2, 4}) {
      const struct {
        const char* name;
        core::BudgetPolicy policy;
      } policies[] = {
          {"algorithm-2 (rho-minimal)", core::BudgetPolicy::kRhoMinimal},
          {"uniform", core::BudgetPolicy::kUniform},
          {"geometric", core::BudgetPolicy::kGeometric},
      };
      for (const auto& p : policies) {
        auto grid = spatial::HierarchicalGrid::Create(
            workload.dataset.domain, g, g == 2 ? 4 : 2);
        GEOPRIV_CHECK_OK(grid.status());
        core::MsmOptions options;
        options.budget.policy = p.policy;
        if (p.policy != core::BudgetPolicy::kRhoMinimal) {
          // Fixed-height policies split across the full index height.
          options.budget.fixed_height = grid->height();
        }
        auto msm = core::MultiStepMechanism::Create(
            eps,
            std::make_shared<spatial::HierarchicalGrid>(
                std::move(grid).value()),
            workload.prior, options);
        GEOPRIV_CHECK_OK(msm.status());
        eval::EvalOptions eval_options;
        eval_options.num_requests = requests;
        auto result = eval::EvaluateMechanism(
            *msm, workload.dataset.points, eval_options);
        GEOPRIV_CHECK_OK(result.status());
        table.AddRow({name, std::to_string(g), p.name,
                      std::to_string(msm->height()),
                      eval::Fmt(result->mean_loss, 3),
                      budgets_string(msm->budget())});
      }
    }
    // Prior-free flat baselines at a 16 x 16 effective grid.
    auto pl = bench::MakePlOnGrid(workload, eps, 16);
    eval::EvalOptions eval_options;
    eval_options.num_requests = requests;
    auto pl_result =
        eval::EvaluateMechanism(*pl, workload.dataset.points, eval_options);
    GEOPRIV_CHECK_OK(pl_result.status());
    table.AddRow({name, "-", "PL + 16x16 grid (baseline)", "-",
                  eval::Fmt(pl_result->mean_loss, 3), "-"});
    spatial::UniformGrid flat(workload.dataset.domain, 16);
    auto exp_mech =
        mechanisms::DiscreteExponential::Create(eps, flat.AllCenters());
    GEOPRIV_CHECK_OK(exp_mech.status());
    auto exp_result = eval::EvaluateMechanism(
        *exp_mech, workload.dataset.points, eval_options);
    GEOPRIV_CHECK_OK(exp_result.status());
    table.AddRow({name, "-", "exponential mech 16x16 (baseline)", "-",
                  eval::Fmt(exp_result->mean_loss, 3), "-"});
  }
  bench::FinishTable(flags, table);
  std::printf(
      "\nAlgorithm 2 secures the coarse levels first; uniform splits "
      "over-fund fine levels and leak at the top, which costs utility — "
      "the paper's key contrast with the DP-histogram literature.\n");
  return 0;
}
