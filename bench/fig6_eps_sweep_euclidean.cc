// Figure 6 (a: Gowalla, b: Yelp) — effect of eps on utility loss, MSM vs
// planar Laplace, Euclidean utility metric. See eps_sweep_common.h.

#include "bench/eps_sweep_common.h"

int main(int argc, char** argv) {
  return geopriv::bench::RunEpsSweep(
      "Figure 6", geopriv::geo::UtilityMetric::kEuclidean, argc, argv);
}
