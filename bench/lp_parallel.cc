// Parallel LP construction pipeline: serial-vs-parallel OPT Create() time
// (with a bit-identity check of the resulting matrix — the parallel
// pipeline must produce *exactly* the serial matrix), the pricing-vs-
// simplex wall-clock split, prewarm fan-out wall-clock at 1/2/4/8
// threads, and an honest record of the large-n attempt (n >= 400 exceeds
// the revised simplex's dense-basis row cap, so it cannot be timed — the
// bench reports the failure instead of silently shrinking the instance).
// Results go to stdout as a table and to --json (default BENCH_lp.json).
//
// Flags:
//   --g G           OPT candidate grid per axis; n = G*G (default 5)
//   --eps E         privacy budget (default 1.0)
//   --prewarm_g G   MSM fanout for the prewarm experiment (default 3)
//   --prewarm_k K   nodes to prewarm (default 10)
//   --large_g G     large-instance attempt per axis (default 20: n = 400)
//   --json PATH     output JSON path (default BENCH_lp.json)

#include <algorithm>
#include <cstdio>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "base/check.h"
#include "base/stopwatch.h"
#include "base/thread_pool.h"
#include "bench/bench_util.h"
#include "mechanisms/optimal.h"
#include "spatial/grid.h"

namespace geopriv::bench {
namespace {

struct CreateResult {
  int threads = 1;
  double seconds = 0.0;
  mechanisms::OptSolveStats stats;
  bool bit_identical = true;  // vs the serial matrix
};

CreateResult TimeCreate(int g, double eps,
                        const std::vector<geo::Point>& centers,
                        const std::vector<double>& prior, int threads,
                        const mechanisms::OptimalMechanism* reference) {
  std::unique_ptr<ThreadPool> pool;
  mechanisms::OptimalMechanismOptions options;
  if (threads > 1) {
    pool = std::make_unique<ThreadPool>(threads, 64);
    options.pricing_pool = pool.get();
    options.pricing_threads = threads;
  }
  CreateResult r;
  r.threads = threads;
  const Stopwatch watch;
  auto opt = mechanisms::OptimalMechanism::Create(
      eps, centers, prior, geo::UtilityMetric::kEuclidean, options);
  r.seconds = watch.ElapsedSeconds();
  GEOPRIV_CHECK_OK(opt.status());
  r.stats = opt->stats();
  if (reference != nullptr) {
    const int n = g * g;
    for (int x = 0; x < n && r.bit_identical; ++x) {
      for (int z = 0; z < n; ++z) {
        if (opt->K(x, z) != reference->K(x, z)) {
          r.bit_identical = false;
          break;
        }
      }
    }
  }
  if (pool != nullptr) pool->Shutdown();
  return r;
}

struct PrewarmResult {
  int threads = 1;
  int warmed = 0;
  double seconds = 0.0;
};

PrewarmResult TimePrewarm(const Workload& workload, double eps, int g,
                          int k, int threads) {
  // A fresh MSM per thread count: prewarm must always start cold.
  auto msm = MakeMsm(workload, eps, g, 0.8, geo::UtilityMetric::kEuclidean);
  GEOPRIV_CHECK(msm != nullptr);
  std::unique_ptr<ThreadPool> pool;
  if (threads > 1) pool = std::make_unique<ThreadPool>(threads, 64);
  PrewarmResult r;
  r.threads = threads;
  const Stopwatch watch;
  auto warmed = msm->PrewarmTopNodes(k, pool.get());
  r.seconds = watch.ElapsedSeconds();
  GEOPRIV_CHECK_OK(warmed.status());
  r.warmed = warmed.value();
  if (pool != nullptr) pool->Shutdown();
  return r;
}

int Main(int argc, char** argv) {
  const Flags flags(argc, argv);
  const int g = flags.GetInt("g", 5);
  const double eps = flags.GetDouble("eps", 1.0);
  const int prewarm_g = flags.GetInt("prewarm_g", 3);
  const int prewarm_k = flags.GetInt("prewarm_k", 10);
  const int large_g = flags.GetInt("large_g", 20);
  const std::string json_path = flags.GetString("json", "BENCH_lp.json");

  const Workload workload = MakeWorkload("gowalla");
  const spatial::UniformGrid grid(workload.dataset.domain, g);
  const auto centers = grid.AllCenters();
  const auto prior = workload.prior->OnGrid(grid);

  std::printf("OPT Create, n=%d, eps=%g (hardware_concurrency=%u)\n", g * g,
              eps, std::thread::hardware_concurrency());
  std::vector<CreateResult> creates;
  creates.push_back(TimeCreate(g, eps, centers, prior, 1, nullptr));
  // Re-build the serial mechanism once as the bit-identity reference.
  auto reference = mechanisms::OptimalMechanism::Create(
      eps, centers, prior, geo::UtilityMetric::kEuclidean, {});
  GEOPRIV_CHECK_OK(reference.status());
  for (int t : {2, 4, 8}) {
    creates.push_back(TimeCreate(g, eps, centers, prior, t, &*reference));
  }

  eval::Table table({"threads", "create s", "pricing s", "simplex s",
                     "violations", "speedup", "bit-identical"});
  const double serial_seconds = creates.front().seconds;
  for (const auto& r : creates) {
    table.AddRow({std::to_string(r.threads), eval::Fmt(r.seconds, 3),
                  eval::Fmt(r.stats.pricing_seconds, 3),
                  eval::Fmt(r.stats.simplex_seconds, 3),
                  std::to_string(r.stats.violations_found),
                  eval::Fmt(serial_seconds / r.seconds, 2),
                  r.bit_identical ? "yes" : "NO"});
    GEOPRIV_CHECK(r.bit_identical);
  }
  table.Print(std::cout);

  std::printf("\nPrewarm fan-out, msm g=%d, k=%d\n", prewarm_g, prewarm_k);
  std::vector<PrewarmResult> prewarms;
  for (int t : {1, 2, 4, 8}) {
    prewarms.push_back(
        TimePrewarm(workload, eps, prewarm_g, prewarm_k, t));
    std::printf("  threads=%d warmed=%d in %.3f s\n", t,
                prewarms.back().warmed, prewarms.back().seconds);
  }

  // Honest large-n record: n = large_g^2 needs an n^2-row dual basis
  // (160,000 rows at n = 400), far beyond SolverOptions::max_basis_rows —
  // the attempt is expected to fail and is reported as such rather than
  // being quietly downsized.
  const spatial::UniformGrid large(workload.dataset.domain, large_g);
  const Stopwatch large_watch;
  auto large_opt = mechanisms::OptimalMechanism::Create(
      eps, large.AllCenters(), workload.prior->OnGrid(large),
      geo::UtilityMetric::kEuclidean, {});
  const double large_seconds = large_watch.ElapsedSeconds();
  std::printf("\nLarge-n attempt, n=%d: %s (%.3f s)\n", large_g * large_g,
              large_opt.ok() ? "solved" : large_opt.status().ToString().c_str(),
              large_seconds);

  std::FILE* f = std::fopen(json_path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot open %s\n", json_path.c_str());
    return 1;
  }
  const unsigned hc = std::thread::hardware_concurrency();
  unsigned max_threads = 0;
  for (const auto& r : creates)
    max_threads = std::max(max_threads, static_cast<unsigned>(r.threads));
  std::fprintf(f,
               "{\n  \"bench\": \"lp_parallel\",\n"
               "  \"n\": %d,\n  \"eps\": %g,\n"
               "  \"hardware_concurrency\": %u,\n"
               "  \"multi_thread_scaling_valid\": %s,\n  \"create\": [\n",
               g * g, eps, hc, hc >= max_threads ? "true" : "false");
  for (size_t i = 0; i < creates.size(); ++i) {
    const auto& r = creates[i];
    std::fprintf(
        f,
        "    {\"threads\": %d, \"hardware_concurrency\": %u,"
        " \"scaling_valid\": %s, \"seconds\": %.4f,"
        " \"pricing_seconds\": %.4f, \"simplex_seconds\": %.4f,"
        " \"violations\": %lld, \"rounds\": %d,"
        " \"speedup_vs_serial\": %.3f, \"bit_identical\": %s}%s\n",
        r.threads, hc,
        hc >= static_cast<unsigned>(r.threads) ? "true" : "false",
        r.seconds, r.stats.pricing_seconds,
        r.stats.simplex_seconds, static_cast<long long>(
            r.stats.violations_found), r.stats.rounds,
        serial_seconds / r.seconds, r.bit_identical ? "true" : "false",
        i + 1 < creates.size() ? "," : "");
  }
  std::fprintf(f, "  ],\n  \"prewarm\": [\n");
  for (size_t i = 0; i < prewarms.size(); ++i) {
    const auto& r = prewarms[i];
    std::fprintf(f,
                 "    {\"threads\": %d, \"hardware_concurrency\": %u,"
                 " \"scaling_valid\": %s, \"k\": %d, \"warmed\": %d,"
                 " \"seconds\": %.4f}%s\n",
                 r.threads, hc,
                 hc >= static_cast<unsigned>(r.threads) ? "true" : "false",
                 prewarm_k, r.warmed, r.seconds,
                 i + 1 < prewarms.size() ? "," : "");
  }
  std::fprintf(
      f,
      "  ],\n  \"large_n\": {\"n\": %d, \"ok\": %s,"
      " \"seconds\": %.4f, \"status\": \"%s\"},\n"
      "  \"note\": \"speedups reflect this machine's core count; the "
      "large-n instance needs an n^2-row dense basis beyond "
      "max_basis_rows and is recorded as the failure it is\"\n}\n",
      large_g * large_g, large_opt.ok() ? "true" : "false", large_seconds,
      large_opt.ok() ? "solved" : large_opt.status().ToString().c_str());
  std::fclose(f);
  std::printf("\nJSON written to %s\n", json_path.c_str());
  return 0;
}

}  // namespace
}  // namespace geopriv::bench

int main(int argc, char** argv) { return geopriv::bench::Main(argc, argv); }
