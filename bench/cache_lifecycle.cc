// Node-cache lifecycle: serving cost of the three cache regimes on one
// region — unbounded (the pre-budget behaviour), bounded (cost-aware LRU
// eviction at half the unbounded footprint), and prewarmed (top
// prior-mass nodes solved at registration, before first traffic). For
// each regime the bench reports cold/warm hit rate, p50/p99 latency,
// resident bytes, evictions, and LP solves. Results go to stdout as a
// table and to --json (default BENCH_cache.json).
//
// Flags:
//   --threads N           worker-pool size (default 4)
//   --requests N          requests per measurement batch (default 2000)
//   --eps E               privacy budget (default 0.5)
//   --g G                 index fanout (default 3: a two-step walk over
//                         10 internal nodes, so eviction has targets)
//   --budget_bytes B      bounded-regime budget; 0 = half the unbounded
//                         resident footprint, measured first (default 0)
//   --json PATH           output JSON path (default BENCH_cache.json)

#include <algorithm>
#include <cstdio>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "base/check.h"
#include "base/stopwatch.h"
#include "bench/bench_util.h"
#include "eval/table.h"
#include "service/sanitization_service.h"

namespace geopriv::bench {
namespace {

// The paper's Austin study region (matches data::GowallaAustinLike()).
constexpr double kMinLat = 30.1927, kMinLon = -97.8698;
constexpr double kMaxLat = 30.3723, kMaxLon = -97.6618;

// Deterministic query stream covering the whole region so the index walk
// touches many nodes (and a bounded cache actually has to evict).
std::vector<core::LatLon> MakeQueries(int n) {
  std::vector<core::LatLon> queries;
  queries.reserve(n);
  for (int i = 0; i < n; ++i) {
    const double u = (i % 97) / 96.0;
    const double v = (i % 83) / 82.0;
    queries.push_back({kMinLat + u * (kMaxLat - kMinLat),
                       kMinLon + v * (kMaxLon - kMinLon)});
  }
  return queries;
}

double Percentile(std::vector<double>& sorted, double q) {
  if (sorted.empty()) return 0.0;
  const size_t idx = static_cast<size_t>(q * (sorted.size() - 1) + 0.5);
  return sorted[std::min(idx, sorted.size() - 1)];
}

struct BatchMeasurement {
  double qps = 0.0;
  double p50_ms = 0.0;
  double p99_ms = 0.0;
  double wall_seconds = 0.0;
};

BatchMeasurement RunBatch(service::SanitizationService& service,
                          const std::vector<core::LatLon>& queries) {
  Stopwatch watch;
  const auto results = service.SanitizeBatch("austin", queries);
  BatchMeasurement m;
  m.wall_seconds = watch.ElapsedSeconds();
  std::vector<double> latencies;
  latencies.reserve(results.size());
  for (const auto& r : results) {
    GEOPRIV_CHECK_OK(r.status);
    latencies.push_back(r.latency_ms);
  }
  std::sort(latencies.begin(), latencies.end());
  m.qps = m.wall_seconds > 0 ? queries.size() / m.wall_seconds : 0.0;
  m.p50_ms = Percentile(latencies, 0.50);
  m.p99_ms = Percentile(latencies, 0.99);
  return m;
}

struct RegimeResult {
  std::string name;
  BatchMeasurement cold, warm;
  double register_seconds = 0.0;  // includes prewarm solves, if any
  int prewarmed_nodes = 0;
  int64_t lp_solves = 0;
  double hit_rate = 0.0;
  size_t cache_size = 0;
  size_t bytes_resident = 0;
  size_t byte_budget = 0;
  uint64_t evictions = 0;
};

RegimeResult RunRegime(const std::string& name, int threads,
                       const service::RegionConfig& region,
                       const std::vector<core::LatLon>& queries) {
  service::ServiceOptions options;
  options.num_workers = threads;
  options.queue_capacity = queries.size() + 16;
  options.seed = 20190326;
  auto service = service::SanitizationService::Create(options);
  GEOPRIV_CHECK_OK(service.status());

  RegimeResult r;
  r.name = name;
  Stopwatch watch;
  GEOPRIV_CHECK_OK((*service)->RegisterRegion("austin", region));
  r.register_seconds = watch.ElapsedSeconds();
  r.cold = RunBatch(**service, queries);
  r.warm = RunBatch(**service, queries);
  const auto info = (*service)->GetRegionInfo("austin");
  GEOPRIV_CHECK_OK(info.status());
  r.prewarmed_nodes = info->prewarmed_nodes;
  r.lp_solves = info->msm.lp_solves;
  r.hit_rate = info->cache_hit_rate;
  r.cache_size = info->cache_size;
  r.bytes_resident = info->cache_bytes_resident;
  r.byte_budget = info->cache_byte_budget;
  r.evictions = info->cache_evictions;
  std::printf(
      "%-10s cold %.0f qps / warm %.0f qps, hit rate %.3f, "
      "%zu B resident, %llu evictions\n",
      name.c_str(), r.cold.qps, r.warm.qps, r.hit_rate, r.bytes_resident,
      static_cast<unsigned long long>(r.evictions));
  return r;
}

int Main(int argc, char** argv) {
  const Flags flags(argc, argv);
  const int threads = flags.GetInt("threads", 4);
  const int requests = flags.GetInt("requests", 2000);
  const double eps = flags.GetDouble("eps", 0.5);
  const int g = flags.GetInt("g", 3);
  size_t budget_bytes =
      static_cast<size_t>(flags.GetInt("budget_bytes", 0));
  const std::string json_path = flags.GetString("json", "BENCH_cache.json");

  service::RegionConfig region;
  region.min_lat = kMinLat;
  region.min_lon = kMinLon;
  region.max_lat = kMaxLat;
  region.max_lon = kMaxLon;
  region.eps = eps;
  region.granularity = g;
  region.prior_granularity = 32;

  const auto queries = MakeQueries(requests);
  std::vector<RegimeResult> regimes;

  // Unbounded first: its resident footprint calibrates the bounded
  // regime's default budget and the prewarm node count.
  regimes.push_back(RunRegime("unbounded", threads, region, queries));
  if (budget_bytes == 0) budget_bytes = regimes[0].bytes_resident / 2;

  service::RegionConfig bounded = region;
  bounded.cache_byte_budget = budget_bytes;
  regimes.push_back(RunRegime("bounded", threads, bounded, queries));

  service::RegionConfig prewarmed = region;
  prewarmed.prewarm_nodes = static_cast<int>(regimes[0].cache_size);
  regimes.push_back(RunRegime("prewarmed", threads, prewarmed, queries));

  std::printf("\nNode-cache lifecycle (threads=%d, requests=%d, eps=%g, "
              "g=%d, budget=%zu B)\n",
              threads, requests, eps, g, budget_bytes);
  eval::Table table({"regime", "cold p99 ms", "warm p50 ms", "warm p99 ms",
                     "hit rate", "LP solves", "resident B", "evictions"});
  for (const auto& r : regimes) {
    table.AddRow({r.name, eval::Fmt(r.cold.p99_ms, 3),
                  eval::Fmt(r.warm.p50_ms, 3), eval::Fmt(r.warm.p99_ms, 3),
                  eval::Fmt(r.hit_rate, 4), std::to_string(r.lp_solves),
                  std::to_string(r.bytes_resident),
                  std::to_string(r.evictions)});
  }
  table.Print(std::cout);

  std::FILE* f = std::fopen(json_path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot open %s\n", json_path.c_str());
    return 1;
  }
  std::fprintf(f,
               "{\n  \"bench\": \"cache_lifecycle\",\n"
               "  \"threads\": %d,\n  \"requests\": %d,\n  \"eps\": %g,\n"
               "  \"granularity\": %d,\n  \"budget_bytes\": %zu,\n"
               "  \"hardware_concurrency\": %u,\n  \"regimes\": [\n",
               threads, requests, eps, g, budget_bytes,
               std::thread::hardware_concurrency());
  for (size_t i = 0; i < regimes.size(); ++i) {
    const auto& r = regimes[i];
    std::fprintf(
        f,
        "    {\"regime\": \"%s\","
        " \"register_s\": %.4f, \"prewarmed_nodes\": %d,"
        " \"cold\": {\"qps\": %.2f, \"p50_ms\": %.4f, \"p99_ms\": %.4f},"
        " \"warm\": {\"qps\": %.2f, \"p50_ms\": %.4f, \"p99_ms\": %.4f},"
        " \"lp_solves\": %lld, \"hit_rate\": %.4f, \"cache_size\": %zu,"
        " \"bytes_resident\": %zu, \"byte_budget\": %zu,"
        " \"evictions\": %llu}%s\n",
        r.name.c_str(), r.register_seconds, r.prewarmed_nodes, r.cold.qps,
        r.cold.p50_ms, r.cold.p99_ms, r.warm.qps, r.warm.p50_ms,
        r.warm.p99_ms, static_cast<long long>(r.lp_solves), r.hit_rate,
        r.cache_size, r.bytes_resident, r.byte_budget,
        static_cast<unsigned long long>(r.evictions),
        i + 1 < regimes.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
  std::printf("\nJSON written to %s\n", json_path.c_str());
  return 0;
}

}  // namespace
}  // namespace geopriv::bench

int main(int argc, char** argv) { return geopriv::bench::Main(argc, argv); }
