// Micro-benchmarks: mechanism hot paths — PL sampling, OPT solves, MSM
// queries with a warm LP cache, and the alias-vs-linear row sampling
// ablation.

#include <benchmark/benchmark.h>

#include <memory>

#include "core/msm.h"
#include "data/synthetic.h"
#include "mechanisms/optimal.h"
#include "mechanisms/planar_laplace.h"
#include "prior/prior.h"
#include "rng/alias_sampler.h"
#include "rng/rng.h"
#include "spatial/hierarchical_grid.h"

namespace {

using namespace geopriv;  // NOLINT: benchmark brevity

void BM_PlanarLaplaceReport(benchmark::State& state) {
  auto pl = mechanisms::PlanarLaplace::Create(0.5);
  rng::Rng rng(1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(pl->Report({10.0, 10.0}, rng));
  }
}
BENCHMARK(BM_PlanarLaplaceReport);

void BM_OptSolve(benchmark::State& state) {
  const int g = static_cast<int>(state.range(0));
  spatial::UniformGrid grid({0, 0, 20, 20}, g);
  std::vector<double> prior(g * g);
  for (int i = 0; i < g * g; ++i) prior[i] = 1.0 / (1.0 + i);
  for (auto _ : state) {
    benchmark::DoNotOptimize(mechanisms::OptimalMechanism::Create(
        0.5, grid.AllCenters(), prior, geo::UtilityMetric::kEuclidean));
  }
}
BENCHMARK(BM_OptSolve)->Arg(2)->Arg(3)->Arg(4)
    ->Unit(benchmark::kMillisecond);

void BM_OptReportWarm(benchmark::State& state) {
  spatial::UniformGrid grid({0, 0, 20, 20}, 4);
  std::vector<double> prior(16, 1.0 / 16);
  auto opt = mechanisms::OptimalMechanism::Create(
      0.5, grid.AllCenters(), prior, geo::UtilityMetric::kEuclidean);
  rng::Rng rng(1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(opt->Report({3.0, 17.0}, rng));
  }
}
BENCHMARK(BM_OptReportWarm);

struct MsmFixture {
  std::shared_ptr<prior::Prior> prior;
  std::unique_ptr<core::MultiStepMechanism> msm;

  MsmFixture() {
    data::SyntheticCityConfig config = data::GowallaAustinLikeConfig();
    config.num_checkins = 20000;
    auto city = data::GenerateSyntheticCity(config);
    prior = std::make_shared<prior::Prior>(
        prior::Prior::FromPoints(city->domain, 64, city->points).value());
    auto index = std::make_shared<spatial::HierarchicalGrid>(
        spatial::HierarchicalGrid::Create(city->domain, 3, 3).value());
    core::MsmOptions options;
    msm = std::make_unique<core::MultiStepMechanism>(
        core::MultiStepMechanism::Create(0.5, index, prior, options)
            .value());
  }
};

void BM_MsmQueryWarmCache(benchmark::State& state) {
  static MsmFixture* fixture = new MsmFixture();
  rng::Rng rng(1);
  // Prime the cache.
  fixture->msm->Report({6.0, 7.0}, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(fixture->msm->Report({6.0, 7.0}, rng));
  }
}
BENCHMARK(BM_MsmQueryWarmCache);

void BM_AliasSample(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  rng::Rng setup(3);
  std::vector<double> weights(n);
  for (double& w : weights) w = setup.Uniform(0.1, 2.0);
  auto sampler = rng::AliasSampler::Create(weights).value();
  rng::Rng rng(1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(sampler.Sample(rng));
  }
}
BENCHMARK(BM_AliasSample)->Arg(16)->Arg(256)->Arg(4096);

void BM_LinearSample(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  rng::Rng setup(3);
  std::vector<double> weights(n);
  double sum = 0.0;
  for (double& w : weights) {
    w = setup.Uniform(0.1, 2.0);
    sum += w;
  }
  rng::Rng rng(1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(rng::SampleLinear(weights, sum, rng));
  }
}
BENCHMARK(BM_LinearSample)->Arg(16)->Arg(256)->Arg(4096);

}  // namespace

BENCHMARK_MAIN();
