// Shared implementation of Figures 8 and 9: MSM utility loss across the
// index fanout g in {2..6} for rho in {0.5, 0.7, 0.9}, eps = 0.5, on both
// datasets. Figure 8 uses the Euclidean metric, Figure 9 the squared
// Euclidean.
//
// Flags: --dataset gowalla|yelp|both  --eps 0.5  --requests 1000
//        --csv PATH

#ifndef GEOPRIV_BENCH_GRANULARITY_SWEEP_COMMON_H_
#define GEOPRIV_BENCH_GRANULARITY_SWEEP_COMMON_H_

#include <map>

#include "bench/bench_util.h"

namespace geopriv::bench {

inline int RunGranularitySweep(const char* figure, geo::UtilityMetric metric,
                               int argc, char** argv) {
  const Flags flags(argc, argv);
  const int requests = flags.GetInt("requests", 1000);
  const double eps = flags.GetDouble("eps", 0.5);

  std::printf("%s: MSM utility loss vs granularity g (metric: %s, "
              "eps=%.2f)\n\n",
              figure, geo::UtilityMetricName(metric).c_str(), eps);
  eval::Table table({"dataset", "rho", "g", "msm_height", "msm_loss",
                     "msm_ms", "node_lps"});
  for (const std::string& name : DatasetList(flags)) {
    const Workload workload = MakeWorkload(name);
    // Identical budget vectors produce identical mechanisms, so cache
    // evaluated configurations (e.g. at g=6 the level-1 requirement exceeds
    // eps for every rho, collapsing all rho values onto one mechanism).
    std::map<std::string, std::vector<std::string>> memo;
    for (double rho : {0.5, 0.7, 0.9}) {
      for (int g : {2, 3, 4, 5, 6}) {
        auto msm = MakeMsm(workload, eps, g, rho, metric);
        if (msm == nullptr) return 1;
        std::string key = std::to_string(g);
        for (double b : msm->budget().per_level) {
          key += "/" + eval::Fmt(b, 9);
        }
        auto it = memo.find(key);
        if (it == memo.end()) {
          eval::EvalOptions options;
          options.num_requests = requests;
          options.metric = metric;
          auto result = eval::EvaluateMechanism(
              *msm, workload.dataset.points, options);
          GEOPRIV_CHECK_OK(result.status());
          it = memo.emplace(key,
                            std::vector<std::string>{
                                std::to_string(msm->height()),
                                eval::Fmt(result->mean_loss, 3),
                                eval::Fmt(result->mean_ms, 3),
                                std::to_string(msm->stats().lp_solves)})
                   .first;
        }
        table.AddRow({name, eval::Fmt(rho, 1), std::to_string(g),
                      it->second[0], it->second[1], it->second[2],
                      it->second[3]});
      }
    }
  }
  FinishTable(flags, table);
  std::printf(
      "\nPaper shape check: a U-shaped dependency — utility improves from "
      "g=2 toward a best-performing middle granularity (paper: g=5 for "
      "Gowalla, g=4 for Yelp), then degrades as fine levels starve for "
      "budget.\n");
  return 0;
}

}  // namespace geopriv::bench

#endif  // GEOPRIV_BENCH_GRANULARITY_SWEEP_COMMON_H_
