// Micro-benchmarks: special functions and lattice sums (including the
// direct-summation vs Poisson/Dirichlet-series ablation from Section 5 —
// the series is the enabler for small eps, where direct summation needs a
// huge truncation radius).

#include <benchmark/benchmark.h>

#include "mathx/lambert_w.h"
#include "mathx/lattice_sum.h"
#include "mathx/special_functions.h"

namespace {

using namespace geopriv::mathx;  // NOLINT: benchmark brevity

void BM_LatticeSumDirect(benchmark::State& state) {
  const double s = state.range(0) / 1000.0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(LatticeExponentialSumDirect(s));
  }
}
BENCHMARK(BM_LatticeSumDirect)->Arg(100)->Arg(500)->Arg(2000);

void BM_LatticeSumSeries(benchmark::State& state) {
  const double s = state.range(0) / 1000.0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(LatticeExponentialSumSeries(s));
  }
}
BENCHMARK(BM_LatticeSumSeries)->Arg(100)->Arg(500)->Arg(2000);

void BM_MinBudgetForSelfMapping(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(MinBudgetForSelfMapping(0.8, 5.0).value());
  }
}
BENCHMARK(BM_MinBudgetForSelfMapping);

void BM_LambertWm1(benchmark::State& state) {
  double x = -0.2;
  for (auto _ : state) {
    benchmark::DoNotOptimize(LambertWm1(x));
  }
}
BENCHMARK(BM_LambertWm1);

void BM_PlanarLaplaceInverseCdf(benchmark::State& state) {
  double p = 0.0;
  for (auto _ : state) {
    p += 0.001;
    if (p >= 1.0) p = 0.001;
    benchmark::DoNotOptimize(PlanarLaplaceInverseRadialCdf(0.5, p).value());
  }
}
BENCHMARK(BM_PlanarLaplaceInverseCdf);

void BM_RiemannZeta(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(RiemannZeta(1.5));
  }
}
BENCHMARK(BM_RiemannZeta);

void BM_DirichletBeta(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(DirichletBeta(1.5));
  }
}
BENCHMARK(BM_DirichletBeta);

}  // namespace

BENCHMARK_MAIN();
