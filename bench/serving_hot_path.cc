// Warm serving-path benchmark: QPS of the fully warm SanitizationService
// as a function of worker-pool size (the registry snapshot + pinned
// serving-plan path), plus a single-thread comparison of batched
// (ReportBatchOrStatus) versus sequential (ReportOrStatus) tree walks on
// one mechanism. Results go to stdout as a table and to --json (default
// BENCH_serving.json).
//
// Flags:
//   --threads "1,2,4,8"   comma-separated worker counts to sweep
//   --requests N          requests per warm measurement batch (default 4000)
//   --batch_points N      points for the batch-vs-sequential walk (default
//                         200000)
//   --eps E               privacy budget (default 0.5)
//   --g G                 index fanout (default 3)
//   --json PATH           output JSON path (default BENCH_serving.json)
//   --obs_threads N       worker count for the tracing-overhead sweep
//                         (default 4)
//   --obs_requests N      requests per tracing-overhead batch (default
//                         50000 — large enough that one batch spans many
//                         scheduler quanta, or the ratio is noise)
//   --obs_repeats N       best-of-N measurement batches per tracing mode,
//                         interleaved round-robin across modes
//                         (default 15)
//   --obs_json PATH       tracing-overhead JSON (default BENCH_obs.json)
//
// The tracing-overhead sweep re-runs the warm batch at one fixed thread
// count under three obs configurations — tracing off, head-sampled
// 1-in-64, and full (every request retained) — and records whether the
// sampled mode stays within 5% of tracing-off throughput (the obs PR's
// acceptance bar, checked by run_benches.sh).
//
// Honesty: warm multi-thread QPS only measures *scaling* when the machine
// has at least as many cores as workers. Every data point records the
// runtime hardware_concurrency and a per-point scaling_valid flag; the
// top-level multi_thread_scaling_valid is false when any swept thread
// count exceeds the core count, and the note says what the numbers then
// mean (queueing overhead, not parallel speedup).

#include <algorithm>
#include <cstdio>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "base/check.h"
#include "base/stopwatch.h"
#include "bench/bench_util.h"
#include "core/location_sanitizer.h"
#include "eval/table.h"
#include "service/sanitization_service.h"

namespace geopriv::bench {
namespace {

// The paper's Austin study region (matches data::GowallaAustinLike()).
constexpr double kMinLat = 30.1927, kMinLon = -97.8698;
constexpr double kMaxLat = 30.3723, kMaxLon = -97.6618;

std::vector<int> ParseThreadList(const std::string& spec) {
  std::vector<int> out;
  std::string token;
  for (char c : spec + ",") {
    if (c == ',') {
      if (!token.empty()) out.push_back(std::atoi(token.c_str()));
      token.clear();
    } else {
      token.push_back(c);
    }
  }
  GEOPRIV_CHECK_MSG(!out.empty(), "empty --threads list");
  return out;
}

std::vector<core::LatLon> MakeQueries(int n) {
  std::vector<core::LatLon> queries;
  queries.reserve(n);
  for (int i = 0; i < n; ++i) {
    const double u = (i % 97) / 96.0;
    const double v = (i % 83) / 82.0;
    queries.push_back({kMinLat + u * (kMaxLat - kMinLat),
                       kMinLon + v * (kMaxLon - kMinLon)});
  }
  return queries;
}

double Percentile(std::vector<double>& sorted, double q) {
  if (sorted.empty()) return 0.0;
  const size_t idx = static_cast<size_t>(q * (sorted.size() - 1) + 0.5);
  return sorted[std::min(idx, sorted.size() - 1)];
}

struct WarmPoint {
  int threads = 0;
  double qps = 0.0;
  double p50_ms = 0.0;
  double p99_ms = 0.0;
  double wall_seconds = 0.0;
  // Plan-path coverage during the measured batch: levels served from the
  // pinned plan vs. levels that fell through to the shared cache.
  int64_t plan_levels = 0;
  int64_t fallthrough_levels = 0;
  int64_t plan_builds = 0;
};

struct BatchWalkResult {
  int points = 0;
  double sequential_seconds = 0.0;
  double batch_seconds = 0.0;
  bool bit_identical = true;
};

struct ObsPoint {
  const char* mode;
  uint32_t sample_one_in;  // 0 = tracing off
  double qps = 0.0;
  double p99_ms = 0.0;
  uint64_t requests_retained = 0;
  uint64_t spans_committed = 0;
};

// Warm-batch QPS for every tracing mode, best of `repeats` measurement
// batches. Each mode gets its own service so recorder state never bleeds
// across modes, and the repeats are interleaved round-robin — every round
// measures all modes back-to-back, so slow drift on the box (frequency
// scaling, noisy neighbours) biases no single mode's best.
void MeasureObsPoints(const service::RegionConfig& region,
                      const std::vector<core::LatLon>& queries, int threads,
                      int repeats, ObsPoint* points, size_t num_points) {
  std::vector<std::unique_ptr<service::SanitizationService>> services;
  services.reserve(num_points);
  for (size_t i = 0; i < num_points; ++i) {
    service::ServiceOptions options;
    options.num_workers = threads;
    options.queue_capacity = queries.size() + 16;
    options.seed = 20190326;
    options.trace.sample_one_in = points[i].sample_one_in;
    auto service = service::SanitizationService::Create(options);
    GEOPRIV_CHECK_OK(service.status());
    GEOPRIV_CHECK_OK((*service)->RegisterRegion("austin", region));
    (*service)->SanitizeBatch("austin", queries);  // warm node cache/plan
    services.push_back(std::move(*service));
  }
  for (int r = 0; r < repeats; ++r) {
    for (size_t i = 0; i < num_points; ++i) {
      ObsPoint* point = &points[i];
      const Stopwatch watch;
      const auto results = services[i]->SanitizeBatch("austin", queries);
      const double wall = watch.ElapsedSeconds();
      const double qps =
          wall > 0 ? static_cast<double>(queries.size()) / wall : 0.0;
      if (qps > point->qps) {
        point->qps = qps;
        std::vector<double> latencies;
        latencies.reserve(results.size());
        for (const auto& res : results) {
          GEOPRIV_CHECK_OK(res.status);
          latencies.push_back(res.latency_ms);
        }
        std::sort(latencies.begin(), latencies.end());
        point->p99_ms = Percentile(latencies, 0.99);
      }
    }
  }
  for (size_t i = 0; i < num_points; ++i) {
    if (const obs::TraceRecorder* recorder = services[i]->trace_recorder()) {
      const obs::TraceStats stats = recorder->stats();
      points[i].requests_retained = stats.requests_retained;
      points[i].spans_committed = stats.spans_committed;
    }
  }
}

// Batched vs sequential walks on one warmed mechanism, same seed both
// ways — the per-op delta is the per-level cache-lookup overhead the
// batch memo (and above it, the serving plan) removes.
BatchWalkResult RunBatchWalk(double eps, int g, int points) {
  auto sanitizer = core::LocationSanitizer::Builder()
                       .SetRegionLatLon(kMinLat, kMinLon, kMaxLat, kMaxLon)
                       .SetEpsilon(eps)
                       .SetGranularity(g)
                       .SetPriorGranularity(32)
                       .Build();
  GEOPRIV_CHECK_OK(sanitizer.status());
  GEOPRIV_CHECK_OK(sanitizer->PrewarmTopNodes(1000).status());

  const geo::BBox domain = sanitizer->domain_km();
  std::vector<geo::Point> targets;
  targets.reserve(points);
  for (int i = 0; i < points; ++i) {
    const double u = (i % 89) / 88.0;
    const double v = (i % 71) / 70.0;
    targets.push_back({domain.min_x + u * (domain.max_x - domain.min_x),
                       domain.min_y + v * (domain.max_y - domain.min_y)});
  }

  BatchWalkResult result;
  result.points = points;
  core::MultiStepMechanism& msm = sanitizer->mechanism();

  rng::Rng rng_seq(20190326);
  std::vector<geo::Point> sequential;
  sequential.reserve(points);
  {
    const Stopwatch watch;
    for (const geo::Point& target : targets) {
      auto reported = msm.ReportOrStatus(target, rng_seq);
      GEOPRIV_CHECK_OK(reported.status());
      sequential.push_back(reported.value());
    }
    result.sequential_seconds = watch.ElapsedSeconds();
  }

  rng::Rng rng_batch(20190326);
  {
    const Stopwatch watch;
    const auto batch = msm.ReportBatchOrStatus(targets, rng_batch);
    result.batch_seconds = watch.ElapsedSeconds();
    GEOPRIV_CHECK_MSG(batch.size() == sequential.size(),
                      "batch size mismatch");
    for (size_t i = 0; i < batch.size(); ++i) {
      GEOPRIV_CHECK_OK(batch[i].status());
      if (!(batch[i].value() == sequential[i])) result.bit_identical = false;
    }
  }
  return result;
}

int Main(int argc, char** argv) {
  const Flags flags(argc, argv);
  const std::vector<int> thread_counts =
      ParseThreadList(flags.GetString("threads", "1,2,4,8"));
  const int requests = flags.GetInt("requests", 4000);
  const int batch_points = flags.GetInt("batch_points", 200000);
  const double eps = flags.GetDouble("eps", 0.5);
  const int g = flags.GetInt("g", 3);
  const std::string json_path = flags.GetString("json", "BENCH_serving.json");
  const unsigned hc = std::thread::hardware_concurrency();

  service::RegionConfig region;
  region.min_lat = kMinLat;
  region.min_lon = kMinLon;
  region.max_lat = kMaxLat;
  region.max_lon = kMaxLon;
  region.eps = eps;
  region.granularity = g;
  region.prior_granularity = 32;
  region.prewarm_nodes = 64;  // serve the measured batches fully warm

  const auto queries = MakeQueries(requests);
  std::vector<WarmPoint> points;
  int max_threads = 0;
  for (int threads : thread_counts) {
    max_threads = std::max(max_threads, threads);
    service::ServiceOptions options;
    options.num_workers = threads;
    options.queue_capacity = static_cast<size_t>(requests) + 16;
    options.seed = 20190326;
    auto service = service::SanitizationService::Create(options);
    GEOPRIV_CHECK_OK(service.status());
    GEOPRIV_CHECK_OK((*service)->RegisterRegion("austin", region));

    // One throwaway batch finishes any lazy solves below the prewarmed
    // frontier and settles the serving plan.
    (*service)->SanitizeBatch("austin", queries);
    auto before = (*service)->GetRegionInfo("austin");
    GEOPRIV_CHECK_OK(before.status());

    WarmPoint point;
    point.threads = threads;
    const Stopwatch watch;
    const auto results = (*service)->SanitizeBatch("austin", queries);
    point.wall_seconds = watch.ElapsedSeconds();
    std::vector<double> latencies;
    latencies.reserve(results.size());
    for (const auto& r : results) {
      GEOPRIV_CHECK_OK(r.status);
      latencies.push_back(r.latency_ms);
    }
    std::sort(latencies.begin(), latencies.end());
    point.qps =
        point.wall_seconds > 0 ? requests / point.wall_seconds : 0.0;
    point.p50_ms = Percentile(latencies, 0.50);
    point.p99_ms = Percentile(latencies, 0.99);
    const auto after = (*service)->GetRegionInfo("austin");
    GEOPRIV_CHECK_OK(after.status());
    point.plan_levels = after->msm.plan_levels - before->msm.plan_levels;
    point.fallthrough_levels =
        after->msm.fallthrough_levels - before->msm.fallthrough_levels;
    point.plan_builds = after->msm.plan_builds;
    points.push_back(point);
    std::printf("threads=%d warm %.0f qps (plan %lld / fallthrough %lld)\n",
                threads, point.qps,
                static_cast<long long>(point.plan_levels),
                static_cast<long long>(point.fallthrough_levels));
  }

  const BatchWalkResult walk = RunBatchWalk(eps, g, batch_points);
  const bool scaling_valid = hc >= static_cast<unsigned>(max_threads);

  // Tracing-overhead sweep: off vs sampled vs full at one thread count.
  const int obs_threads = flags.GetInt("obs_threads", 4);
  const int obs_requests = flags.GetInt("obs_requests", 50000);
  const int obs_repeats = flags.GetInt("obs_repeats", 15);
  const std::string obs_json = flags.GetString("obs_json", "BENCH_obs.json");
  const auto obs_queries = MakeQueries(obs_requests);
  ObsPoint obs_points[] = {{"off", 0}, {"sampled_1_in_64", 64}, {"full", 1}};
  MeasureObsPoints(region, obs_queries, obs_threads, obs_repeats, obs_points,
                   std::size(obs_points));
  for (const ObsPoint& p : obs_points) {
    std::printf("obs mode=%s qps=%.0f retained=%llu\n", p.mode, p.qps,
                static_cast<unsigned long long>(p.requests_retained));
  }
  const double sampled_over_off =
      obs_points[0].qps > 0 ? obs_points[1].qps / obs_points[0].qps : 0.0;
  const bool overhead_within_5pct = sampled_over_off >= 0.95;

  std::printf("\nWarm serving hot path (requests=%d, eps=%g, g=%d, hc=%u)\n",
              requests, eps, g, hc);
  eval::Table table({"threads", "warm QPS", "p50 ms", "p99 ms",
                     "plan lvls", "fallthrough"});
  for (const auto& p : points) {
    table.AddRow({std::to_string(p.threads), eval::Fmt(p.qps, 1),
                  eval::Fmt(p.p50_ms, 3), eval::Fmt(p.p99_ms, 3),
                  std::to_string(p.plan_levels),
                  std::to_string(p.fallthrough_levels)});
  }
  table.Print(std::cout);
  std::printf("\nTracing overhead (threads=%d, best of %d)\n", obs_threads,
              obs_repeats);
  eval::Table obs_table(
      {"mode", "warm QPS", "p99 ms", "retained", "spans"});
  for (const ObsPoint& p : obs_points) {
    obs_table.AddRow({p.mode, eval::Fmt(p.qps, 1), eval::Fmt(p.p99_ms, 3),
                      std::to_string(p.requests_retained),
                      std::to_string(p.spans_committed)});
  }
  obs_table.Print(std::cout);
  std::printf("sampled/off QPS ratio: %.4f (within 5%%: %s)\n",
              sampled_over_off, overhead_within_5pct ? "yes" : "NO");
  std::printf(
      "\nBatch walk, %d points: sequential %.3f s, batched %.3f s "
      "(%.2fx), bit-identical: %s\n",
      walk.points, walk.sequential_seconds, walk.batch_seconds,
      walk.batch_seconds > 0
          ? walk.sequential_seconds / walk.batch_seconds
          : 0.0,
      walk.bit_identical ? "yes" : "NO");
  if (!scaling_valid) {
    std::printf(
        "NOTE: hardware_concurrency=%u < max swept threads=%d — the "
        "multi-thread QPS above measures queueing overhead, not parallel "
        "scaling.\n",
        hc, max_threads);
  }

  std::FILE* f = std::fopen(json_path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot open %s\n", json_path.c_str());
    return 1;
  }
  std::fprintf(f,
               "{\n  \"bench\": \"serving_hot_path\",\n"
               "  \"requests\": %d,\n  \"eps\": %g,\n"
               "  \"granularity\": %d,\n"
               "  \"hardware_concurrency\": %u,\n"
               "  \"multi_thread_scaling_valid\": %s,\n"
               "  \"note\": \"%s\",\n  \"points\": [\n",
               requests, eps, g, hc, scaling_valid ? "true" : "false",
               scaling_valid
                   ? "core count covers every swept thread count"
                   : "hardware_concurrency is below the max swept thread "
                     "count; multi-thread QPS measures queueing overhead, "
                     "not parallel scaling");
  for (size_t i = 0; i < points.size(); ++i) {
    const auto& p = points[i];
    std::fprintf(
        f,
        "    {\"threads\": %d, \"hardware_concurrency\": %u,"
        " \"scaling_valid\": %s, \"warm_qps\": %.2f,"
        " \"p50_ms\": %.4f, \"p99_ms\": %.4f, \"wall_s\": %.4f,"
        " \"plan_levels\": %lld, \"fallthrough_levels\": %lld,"
        " \"plan_builds\": %lld}%s\n",
        p.threads, hc,
        hc >= static_cast<unsigned>(p.threads) ? "true" : "false", p.qps,
        p.p50_ms, p.p99_ms, p.wall_seconds,
        static_cast<long long>(p.plan_levels),
        static_cast<long long>(p.fallthrough_levels),
        static_cast<long long>(p.plan_builds),
        i + 1 < points.size() ? "," : "");
  }
  std::fprintf(
      f,
      "  ],\n  \"batch_walk\": {\"points\": %d,"
      " \"sequential_s\": %.4f, \"batch_s\": %.4f,"
      " \"speedup\": %.3f, \"bit_identical\": %s}\n}\n",
      walk.points, walk.sequential_seconds, walk.batch_seconds,
      walk.batch_seconds > 0 ? walk.sequential_seconds / walk.batch_seconds
                             : 0.0,
      walk.bit_identical ? "true" : "false");
  std::fclose(f);
  std::printf("\nJSON written to %s\n", json_path.c_str());

  std::FILE* of = std::fopen(obs_json.c_str(), "w");
  if (of == nullptr) {
    std::fprintf(stderr, "cannot open %s\n", obs_json.c_str());
    return 1;
  }
  std::fprintf(of,
               "{\n  \"bench\": \"serving_obs_overhead\",\n"
               "  \"requests\": %d,\n  \"threads\": %d,\n"
               "  \"repeats\": %d,\n  \"hardware_concurrency\": %u,\n"
               "  \"modes\": [\n",
               obs_requests, obs_threads, obs_repeats, hc);
  for (size_t i = 0; i < std::size(obs_points); ++i) {
    const ObsPoint& p = obs_points[i];
    std::fprintf(of,
                 "    {\"mode\": \"%s\", \"sample_one_in\": %u,"
                 " \"warm_qps\": %.2f, \"p99_ms\": %.4f,"
                 " \"requests_retained\": %llu,"
                 " \"spans_committed\": %llu}%s\n",
                 p.mode, p.sample_one_in, p.qps, p.p99_ms,
                 static_cast<unsigned long long>(p.requests_retained),
                 static_cast<unsigned long long>(p.spans_committed),
                 i + 1 < std::size(obs_points) ? "," : "");
  }
  std::fprintf(of,
               "  ],\n  \"sampled_over_off_ratio\": %.4f,\n"
               "  \"overhead_within_5pct\": %s\n}\n",
               sampled_over_off, overhead_within_5pct ? "true" : "false");
  std::fclose(of);
  std::printf("JSON written to %s\n", obs_json.c_str());
  return 0;
}

}  // namespace
}  // namespace geopriv::bench

int main(int argc, char** argv) { return geopriv::bench::Main(argc, argv); }
