// Warm serving-path benchmark: QPS of the fully warm SanitizationService
// as a function of worker-pool size (the registry snapshot + pinned
// serving-plan path), plus a single-thread comparison of batched
// (ReportBatchOrStatus) versus sequential (ReportOrStatus) tree walks on
// one mechanism. Results go to stdout as a table and to --json (default
// BENCH_serving.json).
//
// Flags:
//   --threads "1,2,4,8"   comma-separated worker counts to sweep
//   --requests N          requests per warm measurement batch (default 4000)
//   --batch_points N      points for the batch-vs-sequential walk (default
//                         200000)
//   --eps E               privacy budget (default 0.5)
//   --g G                 index fanout (default 3)
//   --json PATH           output JSON path (default BENCH_serving.json)
//
// Honesty: warm multi-thread QPS only measures *scaling* when the machine
// has at least as many cores as workers. Every data point records the
// runtime hardware_concurrency and a per-point scaling_valid flag; the
// top-level multi_thread_scaling_valid is false when any swept thread
// count exceeds the core count, and the note says what the numbers then
// mean (queueing overhead, not parallel speedup).

#include <algorithm>
#include <cstdio>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "base/check.h"
#include "base/stopwatch.h"
#include "bench/bench_util.h"
#include "core/location_sanitizer.h"
#include "eval/table.h"
#include "service/sanitization_service.h"

namespace geopriv::bench {
namespace {

// The paper's Austin study region (matches data::GowallaAustinLike()).
constexpr double kMinLat = 30.1927, kMinLon = -97.8698;
constexpr double kMaxLat = 30.3723, kMaxLon = -97.6618;

std::vector<int> ParseThreadList(const std::string& spec) {
  std::vector<int> out;
  std::string token;
  for (char c : spec + ",") {
    if (c == ',') {
      if (!token.empty()) out.push_back(std::atoi(token.c_str()));
      token.clear();
    } else {
      token.push_back(c);
    }
  }
  GEOPRIV_CHECK_MSG(!out.empty(), "empty --threads list");
  return out;
}

std::vector<core::LatLon> MakeQueries(int n) {
  std::vector<core::LatLon> queries;
  queries.reserve(n);
  for (int i = 0; i < n; ++i) {
    const double u = (i % 97) / 96.0;
    const double v = (i % 83) / 82.0;
    queries.push_back({kMinLat + u * (kMaxLat - kMinLat),
                       kMinLon + v * (kMaxLon - kMinLon)});
  }
  return queries;
}

double Percentile(std::vector<double>& sorted, double q) {
  if (sorted.empty()) return 0.0;
  const size_t idx = static_cast<size_t>(q * (sorted.size() - 1) + 0.5);
  return sorted[std::min(idx, sorted.size() - 1)];
}

struct WarmPoint {
  int threads = 0;
  double qps = 0.0;
  double p50_ms = 0.0;
  double p99_ms = 0.0;
  double wall_seconds = 0.0;
  // Plan-path coverage during the measured batch: levels served from the
  // pinned plan vs. levels that fell through to the shared cache.
  int64_t plan_levels = 0;
  int64_t fallthrough_levels = 0;
  int64_t plan_builds = 0;
};

struct BatchWalkResult {
  int points = 0;
  double sequential_seconds = 0.0;
  double batch_seconds = 0.0;
  bool bit_identical = true;
};

// Batched vs sequential walks on one warmed mechanism, same seed both
// ways — the per-op delta is the per-level cache-lookup overhead the
// batch memo (and above it, the serving plan) removes.
BatchWalkResult RunBatchWalk(double eps, int g, int points) {
  auto sanitizer = core::LocationSanitizer::Builder()
                       .SetRegionLatLon(kMinLat, kMinLon, kMaxLat, kMaxLon)
                       .SetEpsilon(eps)
                       .SetGranularity(g)
                       .SetPriorGranularity(32)
                       .Build();
  GEOPRIV_CHECK_OK(sanitizer.status());
  GEOPRIV_CHECK_OK(sanitizer->PrewarmTopNodes(1000).status());

  const geo::BBox domain = sanitizer->domain_km();
  std::vector<geo::Point> targets;
  targets.reserve(points);
  for (int i = 0; i < points; ++i) {
    const double u = (i % 89) / 88.0;
    const double v = (i % 71) / 70.0;
    targets.push_back({domain.min_x + u * (domain.max_x - domain.min_x),
                       domain.min_y + v * (domain.max_y - domain.min_y)});
  }

  BatchWalkResult result;
  result.points = points;
  core::MultiStepMechanism& msm = sanitizer->mechanism();

  rng::Rng rng_seq(20190326);
  std::vector<geo::Point> sequential;
  sequential.reserve(points);
  {
    const Stopwatch watch;
    for (const geo::Point& target : targets) {
      auto reported = msm.ReportOrStatus(target, rng_seq);
      GEOPRIV_CHECK_OK(reported.status());
      sequential.push_back(reported.value());
    }
    result.sequential_seconds = watch.ElapsedSeconds();
  }

  rng::Rng rng_batch(20190326);
  {
    const Stopwatch watch;
    const auto batch = msm.ReportBatchOrStatus(targets, rng_batch);
    result.batch_seconds = watch.ElapsedSeconds();
    GEOPRIV_CHECK_MSG(batch.size() == sequential.size(),
                      "batch size mismatch");
    for (size_t i = 0; i < batch.size(); ++i) {
      GEOPRIV_CHECK_OK(batch[i].status());
      if (!(batch[i].value() == sequential[i])) result.bit_identical = false;
    }
  }
  return result;
}

int Main(int argc, char** argv) {
  const Flags flags(argc, argv);
  const std::vector<int> thread_counts =
      ParseThreadList(flags.GetString("threads", "1,2,4,8"));
  const int requests = flags.GetInt("requests", 4000);
  const int batch_points = flags.GetInt("batch_points", 200000);
  const double eps = flags.GetDouble("eps", 0.5);
  const int g = flags.GetInt("g", 3);
  const std::string json_path = flags.GetString("json", "BENCH_serving.json");
  const unsigned hc = std::thread::hardware_concurrency();

  service::RegionConfig region;
  region.min_lat = kMinLat;
  region.min_lon = kMinLon;
  region.max_lat = kMaxLat;
  region.max_lon = kMaxLon;
  region.eps = eps;
  region.granularity = g;
  region.prior_granularity = 32;
  region.prewarm_nodes = 64;  // serve the measured batches fully warm

  const auto queries = MakeQueries(requests);
  std::vector<WarmPoint> points;
  int max_threads = 0;
  for (int threads : thread_counts) {
    max_threads = std::max(max_threads, threads);
    service::ServiceOptions options;
    options.num_workers = threads;
    options.queue_capacity = static_cast<size_t>(requests) + 16;
    options.seed = 20190326;
    auto service = service::SanitizationService::Create(options);
    GEOPRIV_CHECK_OK(service.status());
    GEOPRIV_CHECK_OK((*service)->RegisterRegion("austin", region));

    // One throwaway batch finishes any lazy solves below the prewarmed
    // frontier and settles the serving plan.
    (*service)->SanitizeBatch("austin", queries);
    auto before = (*service)->GetRegionInfo("austin");
    GEOPRIV_CHECK_OK(before.status());

    WarmPoint point;
    point.threads = threads;
    const Stopwatch watch;
    const auto results = (*service)->SanitizeBatch("austin", queries);
    point.wall_seconds = watch.ElapsedSeconds();
    std::vector<double> latencies;
    latencies.reserve(results.size());
    for (const auto& r : results) {
      GEOPRIV_CHECK_OK(r.status);
      latencies.push_back(r.latency_ms);
    }
    std::sort(latencies.begin(), latencies.end());
    point.qps =
        point.wall_seconds > 0 ? requests / point.wall_seconds : 0.0;
    point.p50_ms = Percentile(latencies, 0.50);
    point.p99_ms = Percentile(latencies, 0.99);
    const auto after = (*service)->GetRegionInfo("austin");
    GEOPRIV_CHECK_OK(after.status());
    point.plan_levels = after->msm.plan_levels - before->msm.plan_levels;
    point.fallthrough_levels =
        after->msm.fallthrough_levels - before->msm.fallthrough_levels;
    point.plan_builds = after->msm.plan_builds;
    points.push_back(point);
    std::printf("threads=%d warm %.0f qps (plan %lld / fallthrough %lld)\n",
                threads, point.qps,
                static_cast<long long>(point.plan_levels),
                static_cast<long long>(point.fallthrough_levels));
  }

  const BatchWalkResult walk = RunBatchWalk(eps, g, batch_points);
  const bool scaling_valid = hc >= static_cast<unsigned>(max_threads);

  std::printf("\nWarm serving hot path (requests=%d, eps=%g, g=%d, hc=%u)\n",
              requests, eps, g, hc);
  eval::Table table({"threads", "warm QPS", "p50 ms", "p99 ms",
                     "plan lvls", "fallthrough"});
  for (const auto& p : points) {
    table.AddRow({std::to_string(p.threads), eval::Fmt(p.qps, 1),
                  eval::Fmt(p.p50_ms, 3), eval::Fmt(p.p99_ms, 3),
                  std::to_string(p.plan_levels),
                  std::to_string(p.fallthrough_levels)});
  }
  table.Print(std::cout);
  std::printf(
      "\nBatch walk, %d points: sequential %.3f s, batched %.3f s "
      "(%.2fx), bit-identical: %s\n",
      walk.points, walk.sequential_seconds, walk.batch_seconds,
      walk.batch_seconds > 0
          ? walk.sequential_seconds / walk.batch_seconds
          : 0.0,
      walk.bit_identical ? "yes" : "NO");
  if (!scaling_valid) {
    std::printf(
        "NOTE: hardware_concurrency=%u < max swept threads=%d — the "
        "multi-thread QPS above measures queueing overhead, not parallel "
        "scaling.\n",
        hc, max_threads);
  }

  std::FILE* f = std::fopen(json_path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot open %s\n", json_path.c_str());
    return 1;
  }
  std::fprintf(f,
               "{\n  \"bench\": \"serving_hot_path\",\n"
               "  \"requests\": %d,\n  \"eps\": %g,\n"
               "  \"granularity\": %d,\n"
               "  \"hardware_concurrency\": %u,\n"
               "  \"multi_thread_scaling_valid\": %s,\n"
               "  \"note\": \"%s\",\n  \"points\": [\n",
               requests, eps, g, hc, scaling_valid ? "true" : "false",
               scaling_valid
                   ? "core count covers every swept thread count"
                   : "hardware_concurrency is below the max swept thread "
                     "count; multi-thread QPS measures queueing overhead, "
                     "not parallel scaling");
  for (size_t i = 0; i < points.size(); ++i) {
    const auto& p = points[i];
    std::fprintf(
        f,
        "    {\"threads\": %d, \"hardware_concurrency\": %u,"
        " \"scaling_valid\": %s, \"warm_qps\": %.2f,"
        " \"p50_ms\": %.4f, \"p99_ms\": %.4f, \"wall_s\": %.4f,"
        " \"plan_levels\": %lld, \"fallthrough_levels\": %lld,"
        " \"plan_builds\": %lld}%s\n",
        p.threads, hc,
        hc >= static_cast<unsigned>(p.threads) ? "true" : "false", p.qps,
        p.p50_ms, p.p99_ms, p.wall_seconds,
        static_cast<long long>(p.plan_levels),
        static_cast<long long>(p.fallthrough_levels),
        static_cast<long long>(p.plan_builds),
        i + 1 < points.size() ? "," : "");
  }
  std::fprintf(
      f,
      "  ],\n  \"batch_walk\": {\"points\": %d,"
      " \"sequential_s\": %.4f, \"batch_s\": %.4f,"
      " \"speedup\": %.3f, \"bit_identical\": %s}\n}\n",
      walk.points, walk.sequential_seconds, walk.batch_seconds,
      walk.batch_seconds > 0 ? walk.sequential_seconds / walk.batch_seconds
                             : 0.0,
      walk.bit_identical ? "true" : "false");
  std::fclose(f);
  std::printf("\nJSON written to %s\n", json_path.c_str());
  return 0;
}

}  // namespace
}  // namespace geopriv::bench

int main(int argc, char** argv) { return geopriv::bench::Main(argc, argv); }
