// Ablation — index structure under MSM (the paper's Section 8 future
// work): the uniform hierarchical grid (GIHI) vs a data-adaptive k-d
// partition (equal-mass children) vs a density-adaptive quadtree.
//
// Flags: --dataset gowalla|yelp|both  --eps 0.5  --requests 1000
//        --csv PATH

#include "bench/bench_util.h"

#include "spatial/kd_partition.h"
#include "spatial/quadtree.h"

int main(int argc, char** argv) {
  using namespace geopriv;  // NOLINT: binary brevity
  const bench::Flags flags(argc, argv);
  const double eps = flags.GetDouble("eps", 0.5);
  const int requests = flags.GetInt("requests", 1000);

  std::printf("Ablation: index structure under MSM (eps=%.2f, fanout 4)\n\n",
              eps);
  eval::Table table({"dataset", "index", "height", "msm_height", "loss_km",
                     "node_lps", "mean_ms"});
  for (const std::string& name : bench::DatasetList(flags)) {
    const bench::Workload workload = bench::MakeWorkload(name);
    const geo::BBox domain = workload.dataset.domain;

    std::vector<std::pair<std::string,
                          std::shared_ptr<spatial::HierarchicalPartition>>>
        indexes;
    {
      auto grid = spatial::HierarchicalGrid::Create(domain, 2, 4);
      GEOPRIV_CHECK_OK(grid.status());
      indexes.emplace_back("hierarchical grid g=2",
                           std::make_shared<spatial::HierarchicalGrid>(
                               std::move(grid).value()));
      auto kd = spatial::KdPartition::Create(domain,
                                             workload.dataset.points, 2, 4);
      GEOPRIV_CHECK_OK(kd.status());
      indexes.emplace_back(
          "k-d partition g=2 (equal mass)",
          std::make_shared<spatial::KdPartition>(std::move(kd).value()));
      auto qt = spatial::AdaptiveQuadTree::Create(
          domain, workload.dataset.points, 4,
          static_cast<int>(workload.dataset.points.size() / 64));
      GEOPRIV_CHECK_OK(qt.status());
      indexes.emplace_back(
          "adaptive quadtree",
          std::make_shared<spatial::AdaptiveQuadTree>(
              std::move(qt).value()));
    }
    for (const auto& [index_name, index] : indexes) {
      core::MsmOptions options;
      auto msm =
          core::MultiStepMechanism::Create(eps, index, workload.prior,
                                           options);
      GEOPRIV_CHECK_OK(msm.status());
      eval::EvalOptions eval_options;
      eval_options.num_requests = requests;
      auto result = eval::EvaluateMechanism(
          *msm, workload.dataset.points, eval_options);
      GEOPRIV_CHECK_OK(result.status());
      table.AddRow({name, index_name, std::to_string(index->height()),
                    std::to_string(msm->height()),
                    eval::Fmt(result->mean_loss, 3),
                    std::to_string(msm->stats().lp_solves),
                    eval::Fmt(result->mean_ms, 3)});
    }
  }
  bench::FinishTable(flags, table);
  std::printf(
      "\nNote the k-d result: equal-mass splits make every child equally "
      "likely, which *flattens* the conditional prior and takes away "
      "exactly the signal OPT exploits — adaptive indexes help only if "
      "their cells shrink faster than their priors flatten (cf. the "
      "paper's Section 8 plans for skew-aware structures).\n");
  return 0;
}
