// Shared implementation of Figures 10 and 11: MSM utility loss across the
// self-mapping target rho in {0.5..0.9} for g in {2, 4, 6}, eps = 0.5, on
// both datasets. Figure 10 uses the Euclidean metric, Figure 11 the
// squared Euclidean.
//
// Flags: --dataset gowalla|yelp|both  --eps 0.5  --requests 1000
//        --csv PATH

#ifndef GEOPRIV_BENCH_RHO_SWEEP_COMMON_H_
#define GEOPRIV_BENCH_RHO_SWEEP_COMMON_H_

#include <map>

#include "bench/bench_util.h"

namespace geopriv::bench {

inline int RunRhoSweep(const char* figure, geo::UtilityMetric metric,
                       int argc, char** argv) {
  const Flags flags(argc, argv);
  const int requests = flags.GetInt("requests", 1000);
  const double eps = flags.GetDouble("eps", 0.5);

  std::printf("%s: MSM utility loss vs rho (metric: %s, eps=%.2f)\n\n",
              figure, geo::UtilityMetricName(metric).c_str(), eps);
  eval::Table table({"dataset", "g", "rho", "msm_height", "msm_loss",
                     "level1_budget"});
  for (const std::string& name : DatasetList(flags)) {
    const Workload workload = MakeWorkload(name);
    // Cache identical-budget configurations (see
    // granularity_sweep_common.h).
    std::map<std::string, std::vector<std::string>> memo;
    for (int g : {2, 4, 6}) {
      for (double rho : {0.5, 0.6, 0.7, 0.8, 0.9}) {
        auto msm = MakeMsm(workload, eps, g, rho, metric);
        if (msm == nullptr) return 1;
        std::string key = std::to_string(g);
        for (double b : msm->budget().per_level) {
          key += "/" + eval::Fmt(b, 9);
        }
        auto it = memo.find(key);
        if (it == memo.end()) {
          eval::EvalOptions options;
          options.num_requests = requests;
          options.metric = metric;
          auto result = eval::EvaluateMechanism(
              *msm, workload.dataset.points, options);
          GEOPRIV_CHECK_OK(result.status());
          it = memo.emplace(key,
                            std::vector<std::string>{
                                std::to_string(msm->height()),
                                eval::Fmt(result->mean_loss, 3)})
                   .first;
        }
        table.AddRow({name, std::to_string(g), eval::Fmt(rho, 1),
                      it->second[0], it->second[1],
                      eval::Fmt(msm->budget().per_level[0], 3)});
      }
    }
  }
  FinishTable(flags, table);
  std::printf(
      "\nPaper shape check: at g=2 the loss falls steadily as rho grows; at "
      "g=4 it first falls then rises (lower levels starve); at g=6 the "
      "level-1 requirement dominates and the trend flattens.\n");
  return 0;
}

}  // namespace geopriv::bench

#endif  // GEOPRIV_BENCH_RHO_SWEEP_COMMON_H_
