// Micro-benchmarks: the LP substrate — revised simplex and interior point
// on random dense instances, and warm-started re-solves (the column
// generation workhorse).

#include <benchmark/benchmark.h>

#include "lp/interior_point.h"
#include "lp/model.h"
#include "lp/revised_simplex.h"
#include "rng/rng.h"

namespace {

using namespace geopriv;  // NOLINT: benchmark brevity

lp::Model RandomLp(int vars, int rows, uint64_t seed) {
  rng::Rng rng(seed);
  lp::Model model;
  for (int j = 0; j < vars; ++j) {
    model.AddVariable(0.0, rng.Uniform(0.5, 5.0), rng.Uniform(-3.0, 3.0));
  }
  for (int i = 0; i < rows; ++i) {
    std::vector<lp::Coefficient> terms;
    for (int j = 0; j < vars; ++j) {
      if (rng.Uniform() < 0.5) terms.push_back({j, rng.Uniform(-2.0, 2.0)});
    }
    if (terms.empty()) terms.push_back({0, 1.0});
    model.AddConstraint(lp::ConstraintSense::kLessEqual,
                        rng.Uniform(0.5, 6.0), std::move(terms));
  }
  return model;
}

void BM_SimplexRandomLp(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const lp::Model model = RandomLp(n, 2 * n, 42);
  lp::SolverOptions options;
  for (auto _ : state) {
    benchmark::DoNotOptimize(lp::RevisedSimplex::Solve(model, options));
  }
}
BENCHMARK(BM_SimplexRandomLp)->Arg(10)->Arg(40)->Arg(100)
    ->Unit(benchmark::kMillisecond);

void BM_InteriorPointRandomLp(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const lp::Model model = RandomLp(n, 2 * n, 42);
  lp::SolverOptions options;
  for (auto _ : state) {
    benchmark::DoNotOptimize(lp::InteriorPoint::Solve(model, options));
  }
}
BENCHMARK(BM_InteriorPointRandomLp)->Arg(10)->Arg(40)->Arg(100)
    ->Unit(benchmark::kMillisecond);

// Warm start vs cold start after appending one variable: the pattern the
// optimal mechanism's column generation executes every round.
void BM_WarmStartResolve(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  lp::SolverOptions options;
  for (auto _ : state) {
    state.PauseTiming();
    lp::Model model = RandomLp(n, 2 * n, 7);
    lp::Basis basis;
    benchmark::DoNotOptimize(
        lp::RevisedSimplex::Solve(model, options, nullptr, &basis));
    const int v = model.AddVariable(0.0, 1.0, -5.0);
    model.AddCoefficient(0, v, 1.0);
    state.ResumeTiming();
    benchmark::DoNotOptimize(
        lp::RevisedSimplex::Solve(model, options, &basis));
  }
}
BENCHMARK(BM_WarmStartResolve)->Arg(40)->Arg(100)
    ->Unit(benchmark::kMillisecond);

void BM_ColdResolveBaseline(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  lp::SolverOptions options;
  for (auto _ : state) {
    state.PauseTiming();
    lp::Model model = RandomLp(n, 2 * n, 7);
    benchmark::DoNotOptimize(lp::RevisedSimplex::Solve(model, options));
    const int v = model.AddVariable(0.0, 1.0, -5.0);
    model.AddCoefficient(0, v, 1.0);
    state.ResumeTiming();
    benchmark::DoNotOptimize(lp::RevisedSimplex::Solve(model, options));
  }
}
BENCHMARK(BM_ColdResolveBaseline)->Arg(40)->Arg(100)
    ->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
