// Figure 10 (a: Gowalla, b: Yelp) — effect of rho on MSM utility loss,
// Euclidean metric. See rho_sweep_common.h.

#include "bench/rho_sweep_common.h"

int main(int argc, char** argv) {
  return geopriv::bench::RunRhoSweep(
      "Figure 10", geopriv::geo::UtilityMetric::kEuclidean, argc, argv);
}
