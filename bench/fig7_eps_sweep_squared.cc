// Figure 7 (a: Gowalla, b: Yelp) — effect of eps on utility loss, MSM vs
// planar Laplace, squared Euclidean utility metric. See
// eps_sweep_common.h.

#include "bench/eps_sweep_common.h"

int main(int argc, char** argv) {
  return geopriv::bench::RunEpsSweep(
      "Figure 7", geopriv::geo::UtilityMetric::kSquaredEuclidean, argc,
      argv);
}
