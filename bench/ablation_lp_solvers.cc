// Ablation — LP algorithm choice for the optimal mechanism.
//
// The paper (Section 6.1) notes that Gurobi's dual simplex consistently
// beat its primal simplex and interior-point methods on these programs.
// Our analogue: the dual-formulation column generation (the library
// default) against the explicit n^3-row primal solved by revised simplex
// and by the interior point, plus the effect of the column batch size.
//
// Flags: --eps 0.5  --csv PATH

#include "bench/bench_util.h"

#include "mechanisms/optimal.h"
#include "spatial/grid.h"

namespace {

std::vector<double> SkewedPrior(int n) {
  std::vector<double> prior(n);
  for (int i = 0; i < n; ++i) prior[i] = 1.0 / (1.0 + i);
  return prior;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace geopriv;  // NOLINT: binary brevity
  const bench::Flags flags(argc, argv);
  const double eps = flags.GetDouble("eps", 0.5);
  const geo::BBox domain{0.0, 0.0, 20.0, 20.0};

  std::printf("Ablation: LP solver choice for OPT (eps=%.2f)\n\n", eps);
  eval::Table table(
      {"algorithm", "cells", "objective_km", "time_s", "iterations"});

  struct Config {
    const char* name;
    mechanisms::OptAlgorithm algorithm;
    int columns_per_round;  // only for column generation
    int max_g;              // explicit primal is capped at ~14 locations
  };
  const Config configs[] = {
      {"column-gen (all violated)", mechanisms::OptAlgorithm::kColumnGeneration,
       0, 5},
      {"column-gen (2n per round)", mechanisms::OptAlgorithm::kColumnGeneration,
       -1, 5},  // -1 -> set to 2n below
      {"full primal simplex", mechanisms::OptAlgorithm::kFullPrimalSimplex, 0,
       3},
      {"full interior point", mechanisms::OptAlgorithm::kFullInteriorPoint, 0,
       3},
  };
  for (const Config& config : configs) {
    for (int g = 2; g <= config.max_g; ++g) {
      spatial::UniformGrid grid(domain, g);
      mechanisms::OptimalMechanismOptions options;
      options.algorithm = config.algorithm;
      options.columns_per_round =
          config.columns_per_round < 0 ? 2 * g * g
                                       : config.columns_per_round;
      options.solver.time_limit_seconds = 120.0;
      auto opt = mechanisms::OptimalMechanism::Create(
          eps, grid.AllCenters(), SkewedPrior(g * g),
          geo::UtilityMetric::kEuclidean, options);
      if (!opt.ok()) {
        table.AddRow({config.name, std::to_string(g * g), "-", "> 120",
                      "-"});
        continue;
      }
      table.AddRow({config.name, std::to_string(g * g),
                    eval::Fmt(opt->ExpectedLoss(), 5),
                    eval::Fmt(opt->stats().solve_seconds, 3),
                    std::to_string(opt->stats().simplex_iterations)});
    }
  }
  bench::FinishTable(flags, table);
  std::printf(
      "\nAll algorithms reach the same objective (it is one LP); the dual "
      "column generation is the only one that scales past toy grids, "
      "mirroring the paper's dual-simplex observation.\n");
  return 0;
}
