// Figure 9 (a: Gowalla, b: Yelp) — effect of granularity on MSM utility
// loss, squared Euclidean metric. See granularity_sweep_common.h.

#include "bench/granularity_sweep_common.h"

int main(int argc, char** argv) {
  return geopriv::bench::RunGranularitySweep(
      "Figure 9", geopriv::geo::UtilityMetric::kSquaredEuclidean, argc,
      argv);
}
