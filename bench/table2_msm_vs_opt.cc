// Table 2 — MSM vs flat OPT at equal effective granularity (Gowalla,
// eps = 0.5).
//
// Paper rows: OPT granularity {4, 9, 16} vs two-level MSM of fanout
// {2, 3, 4}. OPT wins slightly on utility (it optimizes the whole grid at
// once) but its solve time explodes — 205.7 s at g=9 with Gurobi and
// >72 h at g=16 — while MSM stays at milliseconds per query. Our solver
// hits its wall earlier than Gurobi (one core, no presolve), so the g=9
// column may report a timeout at the default limit; the comparison of
// regimes is the result, not the absolute seconds.
//
// Flags: --dataset gowalla  --eps 0.5  --requests 1000
//        --time-limit 300 (s, per OPT solve)  --csv PATH

#include "bench/bench_util.h"

#include "base/stopwatch.h"
#include "mechanisms/optimal.h"
#include "rng/rng.h"
#include "spatial/grid.h"

int main(int argc, char** argv) {
  using namespace geopriv;  // NOLINT: binary brevity
  const bench::Flags flags(argc, argv);
  const double eps = flags.GetDouble("eps", 0.5);
  const int requests = flags.GetInt("requests", 200);
  const double time_limit = flags.GetDouble("time-limit", 120.0);
  const bench::Workload workload =
      bench::MakeWorkload(flags.GetString("dataset", "gowalla"));

  std::printf("Table 2: MSM vs OPT at equal effective granularity "
              "(dataset=%s, eps=%.2f)\n\n",
              workload.dataset.name.c_str(), eps);
  eval::Table table({"granularity", "opt_loss_km", "msm_loss_km",
                     "opt_time_s", "msm_time_per_query_s"});
  for (int msm_g : {2, 3, 4}) {
    const int opt_g = msm_g * msm_g;  // two-level MSM -> g^2 effective

    // Flat OPT on the opt_g x opt_g grid.
    std::string opt_loss = "-";
    std::string opt_time = "> " + eval::Fmt(time_limit, 0);
    spatial::UniformGrid grid(workload.dataset.domain, opt_g);
    mechanisms::OptimalMechanismOptions options;
    options.solver.time_limit_seconds = time_limit;
    auto opt = mechanisms::OptimalMechanism::Create(
        eps, grid.AllCenters(), workload.prior->OnGrid(grid),
        geo::UtilityMetric::kEuclidean, options);
    if (opt.ok()) {
      rng::Rng rng(2019);
      const auto reqs =
          eval::SampleRequests(workload.dataset.points, requests, rng);
      double loss = 0.0;
      for (const auto& x : reqs) {
        loss += geo::Euclidean(x, opt->Report(x, rng));
      }
      opt_loss = eval::Fmt(loss / reqs.size(), 2);
      opt_time = eval::Fmt(opt->stats().solve_seconds, 3);
    }

    // Two-level MSM with fanout msm_g (the paper's Table 2 layout). The
    // cache is disabled so the per-query time includes the LP work, as in
    // the paper's measurements.
    auto msm_index = spatial::HierarchicalGrid::Create(
        workload.dataset.domain, msm_g, 2);
    GEOPRIV_CHECK_OK(msm_index.status());
    core::MsmOptions msm_options;
    msm_options.budget.fixed_height = 2;
    msm_options.cache_nodes = false;
    auto msm = core::MultiStepMechanism::Create(
        eps,
        std::make_shared<spatial::HierarchicalGrid>(
            std::move(msm_index).value()),
        workload.prior, msm_options);
    GEOPRIV_CHECK_OK(msm.status());
    rng::Rng rng(2019);
    const auto reqs =
        eval::SampleRequests(workload.dataset.points, requests, rng);
    double loss = 0.0;
    Stopwatch sw;
    for (const auto& x : reqs) {
      loss += geo::Euclidean(x, msm->Report(x, rng));
    }
    const double per_query = sw.ElapsedSeconds() / reqs.size();
    table.AddRow({std::to_string(opt_g), opt_loss,
                  eval::Fmt(loss / reqs.size(), 2), opt_time,
                  eval::Fmt(per_query, 4)});
  }
  bench::FinishTable(flags, table);
  std::printf(
      "\nPaper shape check: OPT's utility edge is small; its solve time "
      "grows by orders of magnitude per row while MSM stays interactive "
      "(paper: 0.008-0.53 s/query).\n");
  return 0;
}
