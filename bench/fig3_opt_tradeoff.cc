// Figure 3 — utility/time trade-off of the flat optimal mechanism (OPT).
//
// Paper: OPT on a g x g grid over the Gowalla/Austin region, eps = 0.5.
// Utility loss falls from ~4.5 km (g=2) toward ~2 km (g=11) while solve
// time explodes (hours at g=11; g=12 did not finish in 24h with Gurobi).
// We reproduce the same curve with our own LP stack; the wall arrives at a
// smaller g (different solver, one core), but the shape — modest utility
// gains bought with super-cubically growing solve time — is the result.
//
// Flags: --dataset gowalla|yelp  --eps 0.5  --min-g 2  --max-g 7
//        --time-limit 120 (seconds per solve)  --requests 1000  --csv PATH

#include "bench/bench_util.h"

#include "mechanisms/optimal.h"
#include "rng/rng.h"
#include "spatial/grid.h"

int main(int argc, char** argv) {
  using namespace geopriv;  // NOLINT: binary brevity
  const bench::Flags flags(argc, argv);
  const double eps = flags.GetDouble("eps", 0.5);
  const int min_g = flags.GetInt("min-g", 2);
  const int max_g = flags.GetInt("max-g", 7);
  const double time_limit = flags.GetDouble("time-limit", 120.0);
  const int requests = flags.GetInt("requests", 1000);
  const std::string dataset_name = flags.GetString("dataset", "gowalla");

  const bench::Workload workload = bench::MakeWorkload(dataset_name);
  std::printf("Figure 3: OPT utility loss and solve time vs granularity\n");
  std::printf("dataset=%s eps=%.2f requests=%d time-limit=%.0fs\n\n",
              workload.dataset.name.c_str(), eps, requests, time_limit);

  eval::Table table({"g", "cells", "utility_loss_km", "solve_time_s",
                     "cg_rounds", "geoind_rows_active", "status"});
  for (int g = min_g; g <= max_g; ++g) {
    spatial::UniformGrid grid(workload.dataset.domain, g);
    mechanisms::OptimalMechanismOptions options;
    options.solver.time_limit_seconds = time_limit;
    auto opt = mechanisms::OptimalMechanism::Create(
        eps, grid.AllCenters(), workload.prior->OnGrid(grid),
        geo::UtilityMetric::kEuclidean, options);
    if (!opt.ok()) {
      table.AddRow({std::to_string(g), std::to_string(g * g), "-",
                    "> " + eval::Fmt(time_limit, 0), "-", "-",
                    StatusCodeToString(opt.status().code())});
      continue;
    }
    // Utility over sampled requests (includes snap-to-cell error, as in the
    // paper's measurements).
    rng::Rng rng(2019);
    const auto reqs =
        eval::SampleRequests(workload.dataset.points, requests, rng);
    double loss = 0.0;
    for (const auto& x : reqs) {
      loss += geo::Euclidean(x, opt->Report(x, rng));
    }
    loss /= reqs.size();
    table.AddRow({std::to_string(g), std::to_string(g * g),
                  eval::Fmt(loss, 3), eval::Fmt(opt->stats().solve_seconds, 2),
                  std::to_string(opt->stats().rounds),
                  std::to_string(opt->stats().generated_columns), "optimal"});
  }
  bench::FinishTable(flags, table);
  std::printf(
      "\nPaper shape check: utility improves slowly with g while time grows "
      "super-cubically; past the wall the solver times out — the paper's "
      "argument for MSM.\n");
  return 0;
}
