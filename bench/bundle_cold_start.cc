// Bundle cold-start benchmark: the build/serve split's headline numbers.
//
// Measures the time from "process has nothing" to "region is serving"
// two ways — scratch (run the Builder pipeline and pre-solve every node
// LP, what a restart cost before bundles) and bundle (mmap a prebuilt v2
// bundle and publish its solved mechanisms zero-copy) — plus resident
// memory, LP-solve counts, and a serving-path spot check that both
// regions produce bit-identical reports under the same seed.
//
// Flags:
//   --eps E          privacy budget (default 4.0 — enough per-level
//                    budget for a multi-level tree with real LP load)
//   --g G            index fanout (default 4)
//   --prior P        prior granularity (default 64)
//   --repeats N      load repetitions for the bundle timing (default 5)
//   --json PATH      output JSON path (default BENCH_bundle.json)
//
// Results go to stdout and to --json.

#include <sys/resource.h>

#include <climits>
#include <cstdio>
#include <cstring>
#include <string>

#include "bench/bench_util.h"
#include "base/check.h"
#include "base/stopwatch.h"
#include "bundle/builder.h"
#include "bundle/loader.h"
#include "bundle/region_bundle.h"
#include "core/location_sanitizer.h"
#include "rng/rng.h"

namespace geopriv {
namespace {

using bench::Flags;

// Peak resident set in bytes (ru_maxrss is KiB on Linux).
uint64_t PeakRssBytes() {
  struct rusage usage;
  if (getrusage(RUSAGE_SELF, &usage) != 0) return 0;
  return static_cast<uint64_t>(usage.ru_maxrss) * 1024;
}

// Current VmRSS in bytes from /proc/self/status (0 if unavailable).
uint64_t CurrentRssBytes() {
  std::FILE* f = std::fopen("/proc/self/status", "r");
  if (f == nullptr) return 0;
  char line[256];
  uint64_t kib = 0;
  while (std::fgets(line, sizeof(line), f) != nullptr) {
    if (std::sscanf(line, "VmRSS: %llu kB",
                    reinterpret_cast<unsigned long long*>(&kib)) == 1) {
      break;
    }
  }
  std::fclose(f);
  return kib * 1024;
}

bundle::RegionSpec MakeSpec(double eps, int g, int prior_granularity) {
  bundle::RegionSpec spec;
  // Austin-like box, ~4.5 x 4 km.
  spec.min_lat = 30.19;
  spec.min_lon = -97.87;
  spec.max_lat = 30.23;
  spec.max_lon = -97.83;
  spec.eps = eps;
  spec.granularity = g;
  spec.prior_granularity = prior_granularity;
  rng::Rng rng(42);
  for (int i = 0; i < 20000; ++i) {
    spec.checkins.push_back({rng.Gaussian(30.21, 0.008),
                             rng.Gaussian(-97.85, 0.008)});
  }
  return spec;
}

core::LocationSanitizer BuildScratch(const bundle::RegionSpec& spec,
                                     uint64_t seed) {
  auto built = core::LocationSanitizer::Builder()
                   .SetRegionLatLon(spec.min_lat, spec.min_lon, spec.max_lat,
                                    spec.max_lon)
                   .SetEpsilon(spec.eps)
                   .SetGranularity(spec.granularity)
                   .SetRho(spec.rho)
                   .SetPriorGranularity(spec.prior_granularity)
                   .SetUtilityMetric(spec.metric)
                   .SetSeed(seed)
                   .AddCheckinsLatLon(spec.checkins)
                   .Build();
  GEOPRIV_CHECK_OK(built.status());
  return std::move(built).value();
}

}  // namespace
}  // namespace geopriv

int main(int argc, char** argv) {
  using namespace geopriv;  // NOLINT: bench brevity
  const Flags flags(argc, argv);
  const double eps = flags.GetDouble("eps", 4.0);
  const int g = flags.GetInt("g", 4);
  const int prior_granularity = flags.GetInt("prior", 64);
  const int repeats = flags.GetInt("repeats", 5);
  const std::string json_path =
      flags.GetString("json", "BENCH_bundle.json");
  constexpr uint64_t kSeed = 0xC01D57A27ull;

  const bundle::RegionSpec spec = MakeSpec(eps, g, prior_granularity);
  const std::string path = "/tmp/geopriv_bench_region.gpb2";

  // --- Build tier (once; its cost is amortized over every cold start).
  Stopwatch build_watch;
  auto built = bundle::BuildRegionBundle(spec, {}, path);
  GEOPRIV_CHECK_OK(built.status());
  const double build_seconds = build_watch.ElapsedSeconds();

  // --- Scratch cold start: Builder pipeline + full prewarm.
  const uint64_t rss_before_scratch = CurrentRssBytes();
  Stopwatch scratch_watch;
  core::LocationSanitizer scratch = BuildScratch(spec, kSeed);
  auto warmed = scratch.PrewarmTopNodes(INT_MAX);
  GEOPRIV_CHECK_OK(warmed.status());
  const double scratch_seconds = scratch_watch.ElapsedSeconds();
  const core::MsmStats scratch_stats = scratch.mechanism().stats();
  const int64_t scratch_solves = scratch_stats.lp_solves;
  const uint64_t scratch_resident =
      static_cast<uint64_t>(scratch_stats.cache_bytes_resident);
  const uint64_t rss_after_scratch = CurrentRssBytes();

  // --- Bundle cold start: mmap + zero-copy publish. Repeat to average
  // out fs cache effects; every repetition is a full open-to-serving
  // cycle in this process (a fresh mapping each time).
  double bundle_seconds_total = 0.0;
  uint64_t bytes_mapped = 0;
  uint64_t bundle_nodes = 0, plan_nodes = 0;
  int64_t bundle_solves = 0;
  uint64_t bundle_cache_resident = 0;
  uint64_t rss_after_bundle = 0;
  bool bit_identical = true;
  for (int rep = 0; rep < repeats; ++rep) {
    Stopwatch load_watch;
    auto view = bundle::RegionBundleView::Open(path);
    GEOPRIV_CHECK_OK(view.status());
    bundle::RegionLoadOptions load_options;
    load_options.seed = kSeed;
    auto loaded = bundle::LoadRegion(view.value(), load_options);
    GEOPRIV_CHECK_OK(loaded.status());
    bundle_seconds_total += load_watch.ElapsedSeconds();
    bytes_mapped = loaded->bytes_mapped;
    bundle_nodes = loaded->nodes_loaded;
    plan_nodes = loaded->plan_nodes;
    const core::MsmStats loaded_stats =
        loaded->sanitizer.mechanism().stats();
    bundle_solves = loaded_stats.lp_solves;
    bundle_cache_resident =
        static_cast<uint64_t>(loaded_stats.cache_bytes_resident);
    rss_after_bundle = CurrentRssBytes();
    if (rep == 0) {
      // Spot-check the serve-path contract: same seed, same reports.
      rng::Rng r1(7), r2(7);
      for (int i = 0; i < 100 && bit_identical; ++i) {
        const double lat = 30.19 + 0.04 * ((i * 37) % 100) / 100.0;
        const double lon = -97.87 + 0.04 * ((i * 53) % 100) / 100.0;
        auto a = loaded->sanitizer.SanitizeLatLonOrStatus(lat, lon, r1);
        auto b = scratch.SanitizeLatLonOrStatus(lat, lon, r2);
        GEOPRIV_CHECK_OK(a.status());
        GEOPRIV_CHECK_OK(b.status());
        bit_identical = a->lat == b->lat && a->lon == b->lon;
      }
    }
  }
  const double bundle_seconds = bundle_seconds_total / repeats;

  const double speedup =
      bundle_seconds > 0.0 ? scratch_seconds / bundle_seconds : 0.0;
  std::printf("bundle cold start (eps=%.2f, g=%d, prior %dx%d)\n", eps, g,
              prior_granularity, prior_granularity);
  std::printf("  build tier: %.3fs, %llu nodes, %lld LP solves, %.1f KiB\n",
              build_seconds, static_cast<unsigned long long>(built->nodes),
              static_cast<long long>(built->lp_solves),
              built->bytes / 1024.0);
  std::printf("  scratch:    %.4fs, %lld LP solves, %.1f KiB cache\n",
              scratch_seconds, static_cast<long long>(scratch_solves),
              scratch_resident / 1024.0);
  std::printf("  bundle:     %.4fs (avg of %d), %lld LP solves, "
              "%.1f KiB mapped, %.1f KiB cache-owned\n",
              bundle_seconds, repeats,
              static_cast<long long>(bundle_solves), bytes_mapped / 1024.0,
              bundle_cache_resident / 1024.0);
  std::printf("  cold-start speedup: %.1fx, bit-identical reports: %s\n",
              speedup, bit_identical ? "yes" : "NO");

  std::FILE* f = std::fopen(json_path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", json_path.c_str());
    return 1;
  }
  std::fprintf(f,
               "{\n"
               "  \"bench\": \"bundle_cold_start\",\n"
               "  \"eps\": %.4f,\n"
               "  \"granularity\": %d,\n"
               "  \"prior_granularity\": %d,\n"
               "  \"build\": {\"seconds\": %.4f, \"nodes\": %llu, "
               "\"lp_solves\": %lld, \"file_bytes\": %llu},\n"
               "  \"scratch\": {\"cold_start_seconds\": %.6f, "
               "\"lp_solves\": %lld, \"cache_bytes_resident\": %llu, "
               "\"rss_delta_bytes\": %lld},\n"
               "  \"bundle\": {\"cold_start_seconds\": %.6f, "
               "\"repeats\": %d, \"lp_solves\": %lld, "
               "\"bytes_mapped\": %llu, \"nodes_loaded\": %llu, "
               "\"plan_nodes_warm\": %llu, "
               "\"cache_bytes_resident\": %llu, \"rss_bytes\": %llu},\n"
               "  \"cold_start_speedup\": %.2f,\n"
               "  \"bit_identical_reports\": %s,\n"
               "  \"peak_rss_bytes\": %llu\n"
               "}\n",
               eps, g, prior_granularity, build_seconds,
               static_cast<unsigned long long>(built->nodes),
               static_cast<long long>(built->lp_solves),
               static_cast<unsigned long long>(built->bytes),
               scratch_seconds, static_cast<long long>(scratch_solves),
               static_cast<unsigned long long>(scratch_resident),
               static_cast<long long>(rss_after_scratch) -
                   static_cast<long long>(rss_before_scratch),
               bundle_seconds, repeats,
               static_cast<long long>(bundle_solves),
               static_cast<unsigned long long>(bytes_mapped),
               static_cast<unsigned long long>(bundle_nodes),
               static_cast<unsigned long long>(plan_nodes),
               static_cast<unsigned long long>(bundle_cache_resident),
               static_cast<unsigned long long>(rss_after_bundle),
               speedup, bit_identical ? "true" : "false",
               static_cast<unsigned long long>(PeakRssBytes()));
  std::fclose(f);
  std::printf("\nJSON written to %s\n", json_path.c_str());
  return bit_identical ? 0 : 1;
}
