// Figure 8 (a: Gowalla, b: Yelp) — effect of granularity on MSM utility
// loss, Euclidean metric. See granularity_sweep_common.h.

#include "bench/granularity_sweep_common.h"

int main(int argc, char** argv) {
  return geopriv::bench::RunGranularitySweep(
      "Figure 8", geopriv::geo::UtilityMetric::kEuclidean, argc, argv);
}
