// Shared helpers for the figure/table reproduction binaries: a minimal
// --flag parser, dataset construction, and the standard experiment stack
// (prior + hierarchical index + MSM / PL baselines).
//
// Every binary accepts:
//   --dataset gowalla|yelp|both    which synthetic preset(s) to use
//   --requests N                   sanitization requests per data point
//   --csv PATH                     also write the table as CSV
// plus experiment-specific flags documented in each binary's header.

#ifndef GEOPRIV_BENCH_BENCH_UTIL_H_
#define GEOPRIV_BENCH_BENCH_UTIL_H_

#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "base/check.h"
#include "core/msm.h"
#include "data/synthetic.h"
#include "eval/evaluation.h"
#include "eval/table.h"
#include "mechanisms/planar_laplace.h"
#include "prior/prior.h"
#include "spatial/hierarchical_grid.h"

namespace geopriv::bench {

class Flags {
 public:
  Flags(int argc, char** argv) {
    for (int i = 1; i + 1 < argc; i += 2) {
      std::string key = argv[i];
      if (key.rfind("--", 0) == 0) key = key.substr(2);
      values_[key] = argv[i + 1];
    }
  }

  double GetDouble(const std::string& key, double def) const {
    auto it = values_.find(key);
    return it == values_.end() ? def : std::atof(it->second.c_str());
  }
  int GetInt(const std::string& key, int def) const {
    auto it = values_.find(key);
    return it == values_.end() ? def : std::atoi(it->second.c_str());
  }
  std::string GetString(const std::string& key,
                        const std::string& def) const {
    auto it = values_.find(key);
    return it == values_.end() ? def : it->second;
  }

 private:
  std::map<std::string, std::string> values_;
};

// One dataset plus its derived prior, ready for experiments.
struct Workload {
  data::Dataset dataset;
  std::shared_ptr<prior::Prior> prior;
};

inline Workload MakeWorkload(const std::string& name,
                             int prior_granularity = 128) {
  auto dataset = name == "yelp" ? data::YelpLasVegasLike()
                                : data::GowallaAustinLike();
  GEOPRIV_CHECK_OK(dataset.status());
  auto prior = prior::Prior::FromPoints(dataset->domain, prior_granularity,
                                        dataset->points);
  GEOPRIV_CHECK_OK(prior.status());
  return {std::move(dataset).value(),
          std::make_shared<prior::Prior>(std::move(prior).value())};
}

inline std::vector<std::string> DatasetList(const Flags& flags) {
  const std::string which = flags.GetString("dataset", "both");
  if (which == "both") return {"gowalla", "yelp"};
  return {which};
}

// Builds an MSM over a hierarchical grid of fanout g, height capped so leaf
// cells stay above ~80 m. Returns null on construction failure (printed).
inline std::unique_ptr<core::MultiStepMechanism> MakeMsm(
    const Workload& workload, double eps, int g, double rho,
    geo::UtilityMetric metric, int fixed_height = 0) {
  int height = 1;
  double side = workload.dataset.domain.Width() / g;
  while (height < 8 && side / g > 0.08) {
    side /= g;
    ++height;
  }
  if (fixed_height > 0) height = fixed_height;
  auto grid = spatial::HierarchicalGrid::Create(workload.dataset.domain, g,
                                                height);
  GEOPRIV_CHECK_OK(grid.status());
  auto index =
      std::make_shared<spatial::HierarchicalGrid>(std::move(grid).value());
  core::MsmOptions options;
  options.budget.rho = rho;
  options.budget.fixed_height = fixed_height;
  options.metric = metric;
  auto msm = core::MultiStepMechanism::Create(eps, index, workload.prior,
                                              options);
  if (!msm.ok()) {
    std::fprintf(stderr, "MSM(eps=%.2f, g=%d): %s\n", eps, g,
                 msm.status().ToString().c_str());
    return nullptr;
  }
  return std::make_unique<core::MultiStepMechanism>(std::move(msm).value());
}

// PL with remapping onto the grid matching MSM's effective leaf
// granularity (the paper's PL+grid baseline).
inline std::unique_ptr<mechanisms::PlanarLaplaceOnGrid> MakePlOnGrid(
    const Workload& workload, double eps, int effective_granularity) {
  auto pl = mechanisms::PlanarLaplaceOnGrid::Create(
      eps,
      spatial::UniformGrid(workload.dataset.domain, effective_granularity));
  GEOPRIV_CHECK_OK(pl.status());
  return std::make_unique<mechanisms::PlanarLaplaceOnGrid>(
      std::move(pl).value());
}

// Effective leaf granularity g^h that an MSM of fanout g reaches.
inline int EffectiveGranularity(int g, int height) {
  int eff = 1;
  for (int i = 0; i < height; ++i) eff *= g;
  return eff;
}

inline void FinishTable(const Flags& flags, eval::Table& table) {
  table.Print(std::cout);
  const std::string csv = flags.GetString("csv", "");
  if (!csv.empty()) {
    GEOPRIV_CHECK_OK(table.WriteCsv(csv));
    std::printf("\nCSV written to %s\n", csv.c_str());
  }
}

}  // namespace geopriv::bench

#endif  // GEOPRIV_BENCH_BENCH_UTIL_H_
