// Shared implementation of Figures 6 and 7: utility loss of MSM vs planar
// Laplace across the privacy budget eps, for index fanouts g in {4, 6} on
// both datasets. Figure 6 uses the Euclidean utility metric, Figure 7 the
// squared Euclidean; the two binaries differ only in that choice.
//
// Flags: --dataset gowalla|yelp|both  --requests 1000  --rho 0.8
//        --csv PATH

#ifndef GEOPRIV_BENCH_EPS_SWEEP_COMMON_H_
#define GEOPRIV_BENCH_EPS_SWEEP_COMMON_H_

#include "bench/bench_util.h"

namespace geopriv::bench {

inline int RunEpsSweep(const char* figure, geo::UtilityMetric metric,
                       int argc, char** argv) {
  const Flags flags(argc, argv);
  const int requests = flags.GetInt("requests", 1000);
  const double rho = flags.GetDouble("rho", 0.8);

  std::printf("%s: utility loss vs eps, MSM vs PL (metric: %s)\n\n", figure,
              geo::UtilityMetricName(metric).c_str());
  eval::Table table({"dataset", "g", "eps", "msm_height", "pl_loss",
                     "msm_loss", "pl_ms", "msm_ms"});
  for (const std::string& name : DatasetList(flags)) {
    const Workload workload = MakeWorkload(name);
    for (int g : {4, 6}) {
      for (double eps : {0.1, 0.3, 0.5, 0.7, 0.9}) {
        auto msm = MakeMsm(workload, eps, g, rho, metric);
        if (msm == nullptr) return 1;
        // PL remaps onto the grid matching MSM's effective leaf level,
        // as in the paper's PL+grid baseline.
        const int effective = EffectiveGranularity(g, msm->height());
        auto pl = MakePlOnGrid(workload, eps, effective);

        eval::EvalOptions options;
        options.num_requests = requests;
        options.metric = metric;
        auto pl_result =
            eval::EvaluateMechanism(*pl, workload.dataset.points, options);
        auto msm_result =
            eval::EvaluateMechanism(*msm, workload.dataset.points, options);
        GEOPRIV_CHECK_OK(pl_result.status());
        GEOPRIV_CHECK_OK(msm_result.status());
        table.AddRow({name, std::to_string(g), eval::Fmt(eps, 1),
                      std::to_string(msm->height()),
                      eval::Fmt(pl_result->mean_loss, 3),
                      eval::Fmt(msm_result->mean_loss, 3),
                      eval::Fmt(pl_result->mean_ms, 3),
                      eval::Fmt(msm_result->mean_ms, 3)});
      }
    }
  }
  FinishTable(flags, table);
  std::printf(
      "\nPaper shape check: MSM beats PL across the board, by the largest "
      "factor at tight budgets (eps = 0.1), with the gap closing as eps "
      "approaches 1.\n");
  return 0;
}

}  // namespace geopriv::bench

#endif  // GEOPRIV_BENCH_EPS_SWEEP_COMMON_H_
