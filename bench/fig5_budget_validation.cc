// Figure 5 — accuracy of the analytic self-mapping model Phi.
//
// Paper: for g = 2..7 and rho = 0.5..0.9 (uniform prior), the budget
// produced by Problem 1 yields an empirical Pr[x|x] within +-5% of rho,
// except at g = 2 where every cell touches the boundary and the
// infinite-lattice model is conservative.
//
// Flags: --min-g 2  --max-g 6  --csv PATH
// (g=7 is a 49-cell LP per rho — pass --max-g 7 if you have the minutes.)

#include "bench/bench_util.h"

#include "mathx/lattice_sum.h"
#include "mechanisms/optimal.h"
#include "spatial/grid.h"

int main(int argc, char** argv) {
  using namespace geopriv;  // NOLINT: binary brevity
  const bench::Flags flags(argc, argv);
  const int min_g = flags.GetInt("min-g", 2);
  const int max_g = flags.GetInt("max-g", 6);
  const double side_km = flags.GetDouble("side", 20.0);

  std::printf("Figure 5: empirical Pr[x|x] vs the analytic Phi "
              "(uniform prior, %gx%g km domain)\n\n", side_km, side_km);
  eval::Table table({"g", "rho", "eps_from_model", "empirical_Pr[x|x]",
                     "interior_Pr[x|x]", "rel_err_interior_%"});
  const geo::BBox domain{0.0, 0.0, side_km, side_km};
  for (int g = min_g; g <= max_g; ++g) {
    for (double rho : {0.5, 0.6, 0.7, 0.8, 0.9}) {
      auto eps = mathx::MinBudgetForSelfMapping(rho, side_km / g);
      GEOPRIV_CHECK_OK(eps.status());
      spatial::UniformGrid grid(domain, g);
      std::vector<double> uniform(g * g, 1.0 / (g * g));
      auto opt = mechanisms::OptimalMechanism::Create(
          eps.value(), grid.AllCenters(), uniform,
          geo::UtilityMetric::kEuclidean);
      GEOPRIV_CHECK_OK(opt.status());
      // Interior cells match the lattice model; boundary cells leak less.
      double interior = 0.0;
      int count = 0;
      for (int x = 0; x < g * g; ++x) {
        const int r = grid.row_of(x), c = grid.col_of(x);
        if (r == 0 || c == 0 || r == g - 1 || c == g - 1) continue;
        interior += opt->K(x, x);
        ++count;
      }
      const double interior_avg =
          count > 0 ? interior / count : opt->AverageSelfMapping();
      table.AddRow({std::to_string(g), eval::Fmt(rho, 1),
                    eval::Fmt(eps.value(), 4),
                    eval::Fmt(opt->AverageSelfMapping(), 4),
                    eval::Fmt(interior_avg, 4),
                    eval::Fmt(100.0 * (interior_avg - rho) / rho, 2)});
    }
  }
  bench::FinishTable(flags, table);
  std::printf("\nPaper shape check: interior Pr[x|x] within +-5%% of rho for "
              "g >= 3; g = 2 runs high (all-boundary grid, as in the "
              "paper).\n");
  return 0;
}
