// Figure 11 (a: Gowalla, b: Yelp) — effect of rho on MSM utility loss,
// squared Euclidean metric. See rho_sweep_common.h.

#include "bench/rho_sweep_common.h"

int main(int argc, char** argv) {
  return geopriv::bench::RunRhoSweep(
      "Figure 11", geopriv::geo::UtilityMetric::kSquaredEuclidean, argc,
      argv);
}
