// Precomputed client bundle (paper Section 3.1): the sanitization runs on
// the mobile device, which "downloads in advance (offline) a set of objects
// required to support the technique" — the study-region geometry, the
// annotated prior, the index parameters, and the budget split. This module
// packs all of that into a compact versioned binary file that a client can
// fetch once and load at startup (the paper estimates tens of megabytes;
// a 256x256 prior bundle is ~0.5 MB).
//
// Format (little-endian, fixed-width; every field goes through the
// explicit LE encode/decode helpers in base/endian.h, so the contract
// holds on any host):
//   magic "GPB1" | endian sentinel u32 (0x01020304) | version u32 |
//   domain (4 x f64) | eps f64 | rho f64 |
//   granularity u32 | height u32 | per-level budgets (height x f64) |
//   prior granularity u32 | prior masses (g^2 x f64) | FNV-1a checksum u64
// A byte-swapped file (written by a hypothetical big-endian producer that
// ignored the contract) fails at the sentinel with a clear status instead
// of misparsing. Saves are crash-atomic: temp file + fsync + rename, so a
// crash mid-write never leaves a corrupt file at the final path.
//
// Solved per-node mechanisms do NOT live here — that is the v2
// RegionBundle (magic "GPB2", src/bundle/), which a server mmaps and
// serves zero-copy. Each loader rejects the other's magic with a status
// naming the right entry point.

#ifndef GEOPRIV_CORE_BUNDLE_H_
#define GEOPRIV_CORE_BUNDLE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "base/status.h"
#include "core/budget.h"
#include "core/msm.h"
#include "geo/point.h"

namespace geopriv::core {

struct ClientBundle {
  geo::BBox domain;               // planar km frame
  double eps = 0.0;               // total privacy budget
  double rho = 0.0;               // self-mapping target used for the split
  int granularity = 0;            // index fanout per axis
  BudgetAllocation budget;        // per-level split (height implied)
  int prior_granularity = 0;      // prior histogram resolution
  std::vector<double> prior_mass; // prior_granularity^2 cells, sums to 1

  // Structural sanity checks (positive budgets, normalized prior, ...).
  Status Validate() const;
};

// Serializes the bundle, atomically replacing any file at `path` (temp
// file in the same directory + fsync + rename). The checksum covers every
// preceding byte, so LoadClientBundle detects truncation and corruption.
Status SaveClientBundle(const ClientBundle& bundle, const std::string& path);

StatusOr<ClientBundle> LoadClientBundle(const std::string& path);

// Builds a bundle server-side from historical check-ins: computes the prior
// histogram and runs the budget-allocation cost model once, so clients
// need no lattice-sum machinery at runtime.
StatusOr<ClientBundle> BuildClientBundle(
    geo::BBox domain, const std::vector<geo::Point>& checkins, double eps,
    int granularity, double rho, int prior_granularity = 128);

// Client-side: reconstructs the ready-to-query multi-step mechanism from a
// loaded bundle (hierarchical grid of the bundled granularity/height, the
// bundled prior, and the bundled per-level budgets).
StatusOr<MultiStepMechanism> MechanismFromBundle(const ClientBundle& bundle);

}  // namespace geopriv::core

#endif  // GEOPRIV_CORE_BUNDLE_H_
