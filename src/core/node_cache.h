// Sharded, thread-safe cache of solved per-node optimal mechanisms with
// singleflight semantics: when several threads miss on the same node
// concurrently, exactly one runs the LP factory while the others block on
// the entry and reuse its result. This is what lets one MultiStepMechanism
// be shared across a worker pool — the per-node LP is still paid once per
// visited node, never once per thread.
//
// Sharding bounds contention: the node id is hashed onto one of
// `num_shards` independently locked maps, and the hot read path (cache
// hit) takes only that shard's shared lock plus one acquire load.
//
// Lifetime model: GetOrCompute hands out
// std::shared_ptr<const OptimalMechanism>. A caller's copy *pins* the
// mechanism — Clear() and eviction drop the cache's reference but can
// never free a matrix under a reader. Entries whose mechanism (or whose
// in-flight build record) is still referenced elsewhere are skipped by
// the evictor.
//
// Bounded mode: with a nonzero byte budget each completed entry is
// charged its matrix footprint (≈ n²·8 bytes for the dense K plus the
// per-row alias tables; see OptimalMechanism::MemoryFootprintBytes).
// Whenever the resident total exceeds the budget, the least-recently-used
// unpinned entry — across all shards — is evicted until the total fits
// or only pinned/in-flight entries remain. Recency is a relaxed global
// tick stamped on every hit, so the hit path stays lock-free beyond the
// shard's shared lock. `bytes_resident` tracks what the cache holds; a
// pinned mechanism a reader keeps alive past eviction is the reader's to
// account.

#ifndef GEOPRIV_CORE_NODE_CACHE_H_
#define GEOPRIV_CORE_NODE_CACHE_H_

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <functional>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <unordered_map>
#include <vector>

#include "base/status.h"
#include "mechanisms/optimal.h"
#include "spatial/hierarchical_partition.h"

namespace geopriv::core {

class NodeMechanismCache {
 public:
  // What GetOrCompute hands out: a pinned, shareable view of the solved
  // mechanism. Safe to use after Clear()/eviction for as long as the
  // caller holds it.
  using MechanismPtr = std::shared_ptr<const mechanisms::OptimalMechanism>;

  using Factory = std::function<
      StatusOr<std::unique_ptr<mechanisms::OptimalMechanism>>()>;

  // `byte_budget` == 0 means unbounded (no eviction).
  explicit NodeMechanismCache(int num_shards = 16, size_t byte_budget = 0);

  NodeMechanismCache(const NodeMechanismCache&) = delete;
  NodeMechanismCache& operator=(const NodeMechanismCache&) = delete;

  // Returns the cached mechanism for `node`, running `factory` (under
  // singleflight) to build it on a miss. `*cache_hit` (optional) is set to
  // whether the value was already present. On factory failure every
  // waiter receives the same error and the entry is dropped, so a later
  // call retries. The returned pointer stays valid for as long as the
  // caller holds it, whatever Clear()/eviction do meanwhile.
  StatusOr<MechanismPtr> GetOrCompute(spatial::NodeIndex node,
                                      const Factory& factory,
                                      bool* cache_hit = nullptr);

  // Inserts an already-built mechanism (e.g. rehydrated from a bundle)
  // as a ready entry, charging its footprint against the byte budget.
  // Fails with kAlreadyExists-style FailedPrecondition when the node is
  // present (ready or in flight) — bundle loads happen before serving
  // starts, so a collision means the caller loaded twice.
  Status Publish(spatial::NodeIndex node, MechanismPtr mech);

  // Non-building probe: the pinned mechanism when `node` is resident and
  // successfully built, nullptr otherwise (absent, in flight, or failed).
  // Does not count as a lookup and does not touch LRU recency — serving-
  // plan builders use it to pin what is already warm without skewing the
  // hit rate or protecting cold entries.
  MechanismPtr TryGet(spatial::NodeIndex node);

  // Monotonic counter bumped on every map mutation that can change what a
  // serving plan would pin: a successful publish, an eviction, a Clear().
  // Plans record the value they were built against and rebuild on
  // mismatch (see MultiStepMechanism's serving plan).
  uint64_t generation() const {
    return generation_.load(std::memory_order_acquire);
  }

  // Number of completed (successfully built) entries.
  size_t size() const;

  // Number of times a thread blocked on another thread's in-flight build
  // (diagnostics for the singleflight tests).
  uint64_t singleflight_waits() const {
    return singleflight_waits_.load(std::memory_order_relaxed);
  }

  // Bytes currently charged to completed entries (0 when everything has
  // been evicted/cleared; excludes mechanisms pinned only by readers).
  size_t bytes_resident() const {
    return bytes_resident_.load(std::memory_order_relaxed);
  }
  size_t byte_budget() const { return byte_budget_; }

  // Entries evicted by the byte-budget policy (Clear() is not counted).
  uint64_t evictions() const {
    return evictions_.load(std::memory_order_relaxed);
  }

  // Total GetOrCompute calls (TryGet probes excluded). The serving-plan
  // tests assert this stays flat across fully warm walks.
  uint64_t lookups() const {
    return lookups_.load(std::memory_order_relaxed);
  }

  // Fraction of GetOrCompute calls answered from a ready entry.
  double hit_rate() const {
    const uint64_t lookups = lookups_.load(std::memory_order_relaxed);
    return lookups == 0
               ? 0.0
               : static_cast<double>(
                     hits_.load(std::memory_order_relaxed)) /
                     static_cast<double>(lookups);
  }

  void Clear();

  // Evicts LRU entries until bytes_resident() <= byte_budget() or nothing
  // evictable remains. No-op when unbounded or already within budget. The
  // insert path runs this after charging a new entry; pin-holding callers
  // (batch walkers, plan rebuilders) run it when they release their pins,
  // since entries they pinned at insert time were skipped by the evictor
  // and would otherwise stay resident over budget until the next insert.
  void EvictToBudget();

 private:
  struct Entry {
    std::mutex mu;
    std::condition_variable cv;
    // Published with release order once `status`/`mech` are final; the
    // lock-free hit path reads it with acquire.
    std::atomic<bool> ready{false};
    Status status;
    MechanismPtr mech;
    // Footprint charged against the byte budget. Written once (under the
    // shard's unique lock) when the build is published; 0 = not charged.
    size_t bytes = 0;
    // Global LRU tick of the last hit (relaxed; approximate order is
    // enough for eviction).
    std::atomic<uint64_t> last_used{0};
  };

  struct Shard {
    mutable std::shared_mutex mu;
    std::unordered_map<spatial::NodeIndex, std::shared_ptr<Entry>> map;
  };

  Shard& ShardFor(spatial::NodeIndex node) {
    const size_t h = std::hash<spatial::NodeIndex>{}(node);
    return shards_[h % shards_.size()];
  }

  uint64_t NextTick() { return tick_.fetch_add(1, std::memory_order_relaxed); }

  void BumpGeneration() {
    generation_.fetch_add(1, std::memory_order_release);
  }

  // True when the entry is a completed success nobody else references:
  // the map holds the only Entry handle and the cache holds the only
  // mechanism handle. Callers must hold the entry's shard lock (shared is
  // enough — use counts are atomic and a false positive is re-validated
  // under the unique lock before the erase).
  static bool Evictable(const std::shared_ptr<Entry>& entry);

  // One eviction attempt; false when no shard has an evictable entry.
  bool TryEvictOne();

  std::vector<Shard> shards_;
  const size_t byte_budget_;
  std::atomic<uint64_t> generation_{0};
  std::atomic<uint64_t> tick_{1};
  std::atomic<size_t> bytes_resident_{0};
  std::atomic<uint64_t> evictions_{0};
  std::atomic<uint64_t> hits_{0};
  std::atomic<uint64_t> lookups_{0};
  std::atomic<uint64_t> singleflight_waits_{0};
};

}  // namespace geopriv::core

#endif  // GEOPRIV_CORE_NODE_CACHE_H_
