// Sharded, thread-safe cache of solved per-node optimal mechanisms with
// singleflight semantics: when several threads miss on the same node
// concurrently, exactly one runs the LP factory while the others block on
// the entry and reuse its result. This is what lets one MultiStepMechanism
// be shared across a worker pool — the per-node LP is still paid once per
// visited node, never once per thread.
//
// Sharding bounds contention: the node id is hashed onto one of
// `num_shards` independently locked maps, and the hot read path (cache
// hit) takes only that shard's shared lock plus one acquire load.

#ifndef GEOPRIV_CORE_NODE_CACHE_H_
#define GEOPRIV_CORE_NODE_CACHE_H_

#include <atomic>
#include <condition_variable>
#include <functional>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <unordered_map>
#include <vector>

#include "base/status.h"
#include "mechanisms/optimal.h"
#include "spatial/hierarchical_partition.h"

namespace geopriv::core {

class NodeMechanismCache {
 public:
  using Factory = std::function<
      StatusOr<std::unique_ptr<mechanisms::OptimalMechanism>>()>;

  explicit NodeMechanismCache(int num_shards = 16);

  NodeMechanismCache(const NodeMechanismCache&) = delete;
  NodeMechanismCache& operator=(const NodeMechanismCache&) = delete;

  // Returns the cached mechanism for `node`, running `factory` (under
  // singleflight) to build it on a miss. `*cache_hit` (optional) is set to
  // whether the value was already present. On factory failure every
  // waiter receives the same error and the entry is dropped, so a later
  // call retries.
  StatusOr<const mechanisms::OptimalMechanism*> GetOrCompute(
      spatial::NodeIndex node, const Factory& factory,
      bool* cache_hit = nullptr);

  // Number of completed (successfully built) entries.
  size_t size() const;

  // Number of times a thread blocked on another thread's in-flight build
  // (diagnostics for the singleflight tests).
  uint64_t singleflight_waits() const {
    return singleflight_waits_.load(std::memory_order_relaxed);
  }

  void Clear();

 private:
  struct Entry {
    std::mutex mu;
    std::condition_variable cv;
    // Published with release order once `status`/`mech` are final; the
    // lock-free hit path reads it with acquire.
    std::atomic<bool> ready{false};
    Status status;
    std::unique_ptr<mechanisms::OptimalMechanism> mech;
  };

  struct Shard {
    mutable std::shared_mutex mu;
    std::unordered_map<spatial::NodeIndex, std::shared_ptr<Entry>> map;
  };

  Shard& ShardFor(spatial::NodeIndex node) {
    const size_t h = std::hash<spatial::NodeIndex>{}(node);
    return shards_[h % shards_.size()];
  }

  std::vector<Shard> shards_;
  std::atomic<uint64_t> singleflight_waits_{0};
};

}  // namespace geopriv::core

#endif  // GEOPRIV_CORE_NODE_CACHE_H_
