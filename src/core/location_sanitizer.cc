#include "core/location_sanitizer.h"

#include <algorithm>

#include "spatial/hierarchical_grid.h"

namespace geopriv::core {

LocationSanitizer::Builder& LocationSanitizer::Builder::SetRegionLatLon(
    double min_lat, double min_lon, double max_lat, double max_lon) {
  min_lat_ = min_lat;
  min_lon_ = min_lon;
  max_lat_ = max_lat;
  max_lon_ = max_lon;
  region_set_ = true;
  return *this;
}

LocationSanitizer::Builder& LocationSanitizer::Builder::SetEpsilon(
    double eps) {
  eps_ = eps;
  return *this;
}

LocationSanitizer::Builder& LocationSanitizer::Builder::SetGranularity(
    int g) {
  granularity_ = g;
  return *this;
}

LocationSanitizer::Builder& LocationSanitizer::Builder::SetRho(double rho) {
  rho_ = rho;
  return *this;
}

LocationSanitizer::Builder& LocationSanitizer::Builder::SetPriorGranularity(
    int g) {
  prior_granularity_ = g;
  return *this;
}

LocationSanitizer::Builder& LocationSanitizer::Builder::AddCheckinsLatLon(
    const std::vector<LatLon>& checkins) {
  checkins_.insert(checkins_.end(), checkins.begin(), checkins.end());
  return *this;
}

LocationSanitizer::Builder& LocationSanitizer::Builder::SetSeed(
    uint64_t seed) {
  seed_ = seed;
  return *this;
}

LocationSanitizer::Builder& LocationSanitizer::Builder::SetUtilityMetric(
    geo::UtilityMetric metric) {
  metric_ = metric;
  return *this;
}

LocationSanitizer::Builder& LocationSanitizer::Builder::SetLpTimeLimitSeconds(
    double seconds) {
  lp_time_limit_seconds_ = seconds;
  return *this;
}

LocationSanitizer::Builder& LocationSanitizer::Builder::SetCacheByteBudget(
    size_t bytes) {
  cache_byte_budget_ = bytes;
  return *this;
}

LocationSanitizer::Builder& LocationSanitizer::Builder::SetConstructionPool(
    ThreadPool* pool) {
  construction_pool_ = pool;
  return *this;
}

StatusOr<LocationSanitizer> LocationSanitizer::Builder::Build() {
  if (!region_set_) {
    return Status::FailedPrecondition("SetRegionLatLon was not called");
  }
  if (!(max_lat_ > min_lat_) || !(max_lon_ > min_lon_)) {
    return Status::InvalidArgument("region corners are not ordered");
  }
  if (!(eps_ > 0.0)) {
    return Status::InvalidArgument("SetEpsilon with a positive budget first");
  }
  GEOPRIV_ASSIGN_OR_RETURN(
      geo::EquirectangularProjection projection,
      geo::EquirectangularProjection::Create(min_lat_, min_lon_));
  const geo::Point ne = projection.Forward(max_lat_, max_lon_);
  const geo::BBox domain{0.0, 0.0, ne.x, ne.y};

  std::vector<geo::Point> points;
  points.reserve(checkins_.size());
  for (const LatLon& c : checkins_) {
    points.push_back(projection.Forward(c.lat, c.lon));
  }
  std::shared_ptr<const prior::Prior> prior;
  if (points.empty()) {
    prior = std::make_shared<prior::Prior>(
        prior::Prior::Uniform(domain, prior_granularity_));
  } else {
    GEOPRIV_ASSIGN_OR_RETURN(
        prior::Prior built,
        prior::Prior::FromPoints(domain, prior_granularity_, points));
    prior = std::make_shared<prior::Prior>(std::move(built));
  }

  // Height cap: stop when leaf cells would shrink below ~40 m — finer
  // reporting than GPS accuracy buys nothing.
  constexpr double kMinCellKm = 0.04;
  int height = 1;
  double side = std::max(domain.Width(), domain.Height()) / granularity_;
  while (height < 10 && side / granularity_ > kMinCellKm) {
    side /= granularity_;
    ++height;
  }
  GEOPRIV_ASSIGN_OR_RETURN(
      spatial::HierarchicalGrid grid,
      spatial::HierarchicalGrid::Create(domain, granularity_, height));
  auto index =
      std::make_shared<spatial::HierarchicalGrid>(std::move(grid));

  MsmOptions options;
  options.budget.rho = rho_;
  options.metric = metric_;
  options.cache_byte_budget = cache_byte_budget_;
  options.opt.pricing_pool = construction_pool_;
  if (lp_time_limit_seconds_ > 0.0) {
    options.opt.solver.time_limit_seconds = lp_time_limit_seconds_;
  }
  GEOPRIV_ASSIGN_OR_RETURN(
      MultiStepMechanism msm,
      MultiStepMechanism::Create(eps_, index, prior, options));
  return LocationSanitizer(
      projection, domain,
      std::make_unique<MultiStepMechanism>(std::move(msm)), seed_,
      granularity_, eps_);
}

geo::Point LocationSanitizer::Sanitize(geo::Point actual) {
  return msm_->Report(domain_km_.Clamp(actual), rng_);
}

LatLon LocationSanitizer::SanitizeLatLon(double lat, double lon) {
  const geo::Point reported = Sanitize(projection_.Forward(lat, lon));
  LatLon out;
  projection_.Inverse(reported, &out.lat, &out.lon);
  return out;
}

StatusOr<geo::Point> LocationSanitizer::SanitizeOrStatus(geo::Point actual) {
  return SanitizeOrStatus(actual, rng_);
}

StatusOr<LatLon> LocationSanitizer::SanitizeLatLonOrStatus(double lat,
                                                           double lon) {
  return SanitizeLatLonOrStatus(lat, lon, rng_);
}

StatusOr<geo::Point> LocationSanitizer::SanitizeOrStatus(
    geo::Point actual, rng::Rng& rng) const {
  return msm_->ReportOrStatus(domain_km_.Clamp(actual), rng);
}

StatusOr<LatLon> LocationSanitizer::SanitizeLatLonOrStatus(
    double lat, double lon, rng::Rng& rng) const {
  GEOPRIV_ASSIGN_OR_RETURN(
      const geo::Point reported,
      SanitizeOrStatus(projection_.Forward(lat, lon), rng));
  LatLon out;
  projection_.Inverse(reported, &out.lat, &out.lon);
  return out;
}

}  // namespace geopriv::core
