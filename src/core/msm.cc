#include "core/msm.h"

#include <algorithm>
#include <condition_variable>
#include <limits>
#include <mutex>
#include <queue>
#include <utility>

#include "base/check.h"
#include "base/thread_pool.h"
#include "obs/trace.h"

namespace geopriv::core {

StatusOr<MultiStepMechanism> MultiStepMechanism::Create(
    double eps, std::shared_ptr<const spatial::HierarchicalPartition> index,
    std::shared_ptr<const prior::Prior> prior, const MsmOptions& options) {
  if (!(eps > 0.0)) {
    return Status::InvalidArgument("eps must be positive");
  }
  if (index == nullptr || prior == nullptr) {
    return Status::InvalidArgument("index and prior must be non-null");
  }
  GEOPRIV_ASSIGN_OR_RETURN(BudgetAllocation budget,
                           AllocateBudget(eps, *index, options.budget));
  return MultiStepMechanism(eps, std::move(index), std::move(prior), options,
                            std::move(budget));
}

MsmStats MultiStepMechanism::stats() const {
  MsmStats snapshot;
  for (const AtomicStats::Slot& slot : stats_->slots) {
    snapshot.lp_solves += slot.lp_solves.load(std::memory_order_relaxed);
    snapshot.lp_seconds += slot.lp_seconds.load(std::memory_order_relaxed);
    snapshot.cache_hits += slot.cache_hits.load(std::memory_order_relaxed);
    snapshot.lp_pricing_seconds +=
        slot.lp_pricing_seconds.load(std::memory_order_relaxed);
    snapshot.lp_simplex_seconds +=
        slot.lp_simplex_seconds.load(std::memory_order_relaxed);
    snapshot.lp_refactor_seconds +=
        slot.lp_refactor_seconds.load(std::memory_order_relaxed);
    snapshot.lp_violations_found +=
        slot.lp_violations_found.load(std::memory_order_relaxed);
    snapshot.degraded_rows +=
        slot.degraded_rows.load(std::memory_order_relaxed);
    snapshot.uniform_prior_fallbacks +=
        slot.uniform_prior_fallbacks.load(std::memory_order_relaxed);
    snapshot.plan_builds += slot.plan_builds.load(std::memory_order_relaxed);
    snapshot.plan_levels += slot.plan_levels.load(std::memory_order_relaxed);
    snapshot.fallthrough_levels +=
        slot.fallthrough_levels.load(std::memory_order_relaxed);
  }
  snapshot.cache_evictions = static_cast<int64_t>(cache_->evictions());
  snapshot.cache_bytes_resident =
      static_cast<int64_t>(cache_->bytes_resident());
  snapshot.cache_hit_rate = cache_->hit_rate();
  return snapshot;
}

StatusOr<std::unique_ptr<mechanisms::OptimalMechanism>>
MultiStepMechanism::BuildNodeMechanism(spatial::NodeIndex node,
                                       int level) const {
  const std::vector<spatial::ChildInfo> children = index_->Children(node);
  std::vector<geo::Point> centers;
  std::vector<geo::BBox> boxes;
  centers.reserve(children.size());
  boxes.reserve(children.size());
  for (const spatial::ChildInfo& c : children) {
    centers.push_back(c.bounds.Center());
    boxes.push_back(c.bounds);
  }
  std::vector<double> node_prior = prior_->CellMasses(boxes);
  double total = 0.0;
  for (double m : node_prior) total += m;
  if (!(total > 1e-15)) {
    // Degenerate node: the conditional prior carries no mass (e.g. an
    // index quadrant the training data never visited). Fall back to the
    // zero-knowledge uniform prior over the children — and count it, so
    // operators can see how often the mechanism runs blind.
    std::fill(node_prior.begin(), node_prior.end(),
              1.0 / static_cast<double>(node_prior.size()));
    stats_->Local().uniform_prior_fallbacks.fetch_add(
        1, std::memory_order_relaxed);
  }
  GEOPRIV_CHECK_MSG(level >= 1 && level <= budget_.height(),
                    "level outside allocation");
  obs::RequestTrace* const trace = obs::ActiveTrace();
  const uint64_t build_start = trace != nullptr ? obs::NowTicks() : 0;
  GEOPRIV_ASSIGN_OR_RETURN(
      mechanisms::OptimalMechanism mech,
      mechanisms::OptimalMechanism::Create(budget_.per_level[level - 1],
                                           std::move(centers), node_prior,
                                           options_.metric, options_.opt));
  const mechanisms::OptSolveStats& os = mech.stats();
  if (trace != nullptr) {
    // LP phase spans, laid end-to-end inside the build window and sized by
    // the solver's own phase clocks (pricing / refactorize / pivoting; the
    // refactorizations run inside simplex_seconds, so pivoting gets the
    // remainder). Payload: node index and budget level only.
    const uint64_t build_end = obs::NowTicks();
    uint64_t t = build_start;
    const auto phase = [&](obs::SpanKind kind, double seconds) {
      const uint64_t end = std::min(
          t + obs::SecondsToTicks(std::max(seconds, 0.0)), build_end);
      trace->Emit(kind, t, end, static_cast<int64_t>(node), level);
      t = end;
    };
    phase(obs::SpanKind::kLpPricing, os.pricing_seconds);
    phase(obs::SpanKind::kLpRefactor, os.refactor_seconds);
    phase(obs::SpanKind::kLpSimplex,
          os.simplex_seconds - os.refactor_seconds);
  }
  AtomicStats::Slot& slot = stats_->Local();
  slot.lp_solves.fetch_add(1, std::memory_order_relaxed);
  slot.lp_seconds.fetch_add(os.solve_seconds, std::memory_order_relaxed);
  slot.lp_pricing_seconds.fetch_add(os.pricing_seconds,
                                    std::memory_order_relaxed);
  slot.lp_simplex_seconds.fetch_add(os.simplex_seconds,
                                    std::memory_order_relaxed);
  slot.lp_refactor_seconds.fetch_add(os.refactor_seconds,
                                     std::memory_order_relaxed);
  slot.lp_violations_found.fetch_add(os.violations_found,
                                     std::memory_order_relaxed);
  slot.degraded_rows.fetch_add(os.degraded_rows, std::memory_order_relaxed);
  return std::make_unique<mechanisms::OptimalMechanism>(std::move(mech));
}

StatusOr<NodeMechanismCache::MechanismPtr>
MultiStepMechanism::NodeMechanism(spatial::NodeIndex node, int level,
                                  bool* cache_hit) const {
  if (!options_.cache_nodes) {
    // Uncached mode: every call builds a mechanism the caller privately
    // owns. No shared mutable state, so concurrent Report() calls are
    // safe — they just each pay the LP.
    if (cache_hit != nullptr) *cache_hit = false;
    GEOPRIV_ASSIGN_OR_RETURN(auto built, BuildNodeMechanism(node, level));
    return NodeMechanismCache::MechanismPtr(std::move(built));
  }
  bool hit = false;
  auto result = cache_->GetOrCompute(
      node, [&] { return BuildNodeMechanism(node, level); }, &hit);
  if (hit) {
    stats_->Local().cache_hits.fetch_add(1, std::memory_order_relaxed);
  }
  if (cache_hit != nullptr) *cache_hit = hit;
  return result;
}

StatusOr<int> MultiStepMechanism::PrewarmTopNodes(int k) const {
  return PrewarmTopNodes(k, nullptr);
}

StatusOr<int> MultiStepMechanism::PrewarmTopNodes(int k,
                                                  ThreadPool* pool) const {
  if (!options_.cache_nodes) {
    return Status::FailedPrecondition(
        "PrewarmTopNodes requires cache_nodes");
  }
  if (k <= 0) return 0;
  // Best-first walk by unconditional prior mass. Expanding only popped
  // nodes guarantees every warmed node's ancestors are warmed first (a
  // node's mass never exceeds its parent's), matching what a query
  // through that node will touch. With a pool, independent frontier nodes
  // build concurrently: each drainer claims the current best candidate,
  // builds it outside the lock (through the cache's singleflight path),
  // and feeds the node's children back into the frontier.
  struct Candidate {
    double mass;
    spatial::NodeIndex node;
    int level;
    bool operator<(const Candidate& other) const {
      return mass < other.mass;
    }
  };
  struct Shared {
    std::mutex mu;
    std::condition_variable cv;
    std::priority_queue<Candidate> frontier;
    int claimed = 0;   // candidates handed to a drainer (claimed <= k)
    int warmed = 0;    // builds that completed successfully
    int inflight = 0;  // builds currently running
    bool failed = false;
    Status error = Status::OK();
  };
  auto shared = std::make_shared<Shared>();
  if (!index_->IsLeaf(spatial::HierarchicalPartition::kRoot)) {
    shared->frontier.push({1.0, spatial::HierarchicalPartition::kRoot, 1});
  }
  const auto drain = [this, k, shared] {
    std::unique_lock<std::mutex> lock(shared->mu);
    for (;;) {
      shared->cv.wait(lock, [&] {
        return shared->failed || shared->claimed >= k ||
               !shared->frontier.empty() || shared->inflight == 0;
      });
      if (shared->failed || shared->claimed >= k ||
          (shared->frontier.empty() && shared->inflight == 0)) {
        return;
      }
      if (shared->frontier.empty()) continue;  // spurious predicate pass
      const Candidate top = shared->frontier.top();
      shared->frontier.pop();
      ++shared->claimed;
      ++shared->inflight;
      lock.unlock();

      const auto result = NodeMechanism(top.node, top.level);
      std::vector<Candidate> kids;
      if (result.ok() && top.level + 1 <= budget_.height()) {
        for (const spatial::ChildInfo& child : index_->Children(top.node)) {
          if (index_->IsLeaf(child.id)) continue;
          kids.push_back(
              {prior_->MassIn(child.bounds), child.id, top.level + 1});
        }
      }

      lock.lock();
      --shared->inflight;
      if (!result.ok()) {
        if (!shared->failed) {
          shared->failed = true;
          shared->error = result.status();
        }
      } else {
        ++shared->warmed;
        for (const Candidate& kid : kids) shared->frontier.push(kid);
      }
      shared->cv.notify_all();
    }
  };
  // Recruit helpers non-blockingly; a busy or shut-down pool just lowers
  // the effective parallelism (the calling thread always participates).
  if (pool != nullptr) {
    const int helpers = std::min(pool->num_threads(), std::max(0, k - 1));
    for (int h = 0; h < helpers; ++h) {
      if (!pool->TrySubmit([drain](int /*worker*/) { drain(); })) break;
    }
  }
  drain();
  std::unique_lock<std::mutex> lock(shared->mu);
  shared->cv.wait(lock, [&] { return shared->inflight == 0; });
  if (shared->failed) return shared->error;
  return shared->warmed;
}

std::shared_ptr<const MultiStepMechanism::ServingPlan>
MultiStepMechanism::BuildPlan(uint64_t generation) const {
  auto plan = std::make_shared<ServingPlan>();
  plan->generation = generation;
  stats_->Local().plan_builds.fetch_add(1, std::memory_order_relaxed);

  // Pins make entries unevictable, so a bounded cache only lends the plan
  // half its budget — the evictor always keeps a working pool.
  const size_t byte_cap = options_.cache_byte_budget > 0
                              ? options_.cache_byte_budget / 2
                              : std::numeric_limits<size_t>::max();
  const size_t node_cap =
      options_.serving_plan_max_nodes > 0
          ? static_cast<size_t>(options_.serving_plan_max_nodes)
          : 0;

  const spatial::NodeIndex root = spatial::HierarchicalPartition::kRoot;
  if (budget_.height() < 1 || node_cap == 0 || index_->IsLeaf(root)) {
    return plan;
  }
  NodeMechanismCache::MechanismPtr root_mech = cache_->TryGet(root);
  if (root_mech == nullptr || root_mech->MemoryFootprintBytes() > byte_cap) {
    return plan;
  }
  plan->pinned_bytes = root_mech->MemoryFootprintBytes();
  plan->mech.push_back(std::move(root_mech));
  plan->child_begin.push_back(0);
  plan->child_count.push_back(0);

  // BFS: a node is admitted (mechanism pinned, plan id assigned) before it
  // is expanded, so parents always precede children and child_plan links
  // only ever point at finished plan nodes.
  struct Item {
    spatial::NodeIndex node;
    int level;  // budget level of choosing among this node's children
    int32_t plan_id;
  };
  std::vector<Item> queue;
  queue.push_back({root, 1, 0});
  for (size_t qi = 0; qi < queue.size(); ++qi) {
    const Item item = queue[qi];
    const std::vector<spatial::ChildInfo> children =
        index_->Children(item.node);
    plan->child_begin[item.plan_id] =
        static_cast<int32_t>(plan->child_id.size());
    plan->child_count[item.plan_id] = static_cast<int32_t>(children.size());
    for (const spatial::ChildInfo& c : children) {
      plan->min_x.push_back(c.bounds.min_x);
      plan->min_y.push_back(c.bounds.min_y);
      plan->max_x.push_back(c.bounds.max_x);
      plan->max_y.push_back(c.bounds.max_y);
      const geo::Point center = c.bounds.Center();
      plan->center_x.push_back(center.x);
      plan->center_y.push_back(center.y);
      plan->child_id.push_back(c.id);
      const bool leaf = index_->IsLeaf(c.id);
      plan->child_is_leaf.push_back(leaf ? 1 : 0);
      int32_t child_plan = -1;
      if (!leaf && item.level + 1 <= budget_.height() &&
          plan->mech.size() < node_cap) {
        NodeMechanismCache::MechanismPtr m = cache_->TryGet(c.id);
        if (m != nullptr) {
          const size_t bytes = m->MemoryFootprintBytes();
          if (plan->pinned_bytes + bytes <= byte_cap) {
            child_plan = static_cast<int32_t>(plan->mech.size());
            plan->pinned_bytes += bytes;
            plan->mech.push_back(std::move(m));
            plan->child_begin.push_back(0);
            plan->child_count.push_back(0);
            queue.push_back({c.id, item.level + 1, child_plan});
          }
        }
      }
      plan->child_plan.push_back(child_plan);
    }
  }
  return plan;
}

std::shared_ptr<const MultiStepMechanism::ServingPlan>
MultiStepMechanism::CurrentPlan() const {
  if (!options_.serving_plan || !options_.cache_nodes) return nullptr;
  std::shared_ptr<const ServingPlan> plan =
      plan_state_->plan.load(std::memory_order_acquire);
  const uint64_t gen = cache_->generation();
  if (plan != nullptr && plan->generation == gen) return plan;
  bool expected = false;
  if (!plan_state_->building.compare_exchange_strong(
          expected, true, std::memory_order_acq_rel)) {
    // A rebuild is in flight. The stale plan (or none, on a cold start)
    // is still safe: its pins keep every matrix it references alive.
    return plan;
  }
  std::shared_ptr<const ServingPlan> rebuilt = BuildPlan(gen);
  plan_state_->plan.store(rebuilt, std::memory_order_release);
  plan_state_->building.store(false, std::memory_order_release);
  return rebuilt;
}

size_t MultiStepMechanism::serving_plan_nodes() const {
  const std::shared_ptr<const ServingPlan> plan = CurrentPlan();
  return plan == nullptr ? 0 : plan->mech.size();
}

MultiStepMechanism::PlanSnapshot MultiStepMechanism::SnapshotServingPlan()
    const {
  PlanSnapshot snapshot;
  const std::shared_ptr<const ServingPlan> plan = CurrentPlan();
  if (plan == nullptr || plan->empty()) return snapshot;
  snapshot.child_begin = plan->child_begin;
  snapshot.child_count = plan->child_count;
  snapshot.min_x = plan->min_x;
  snapshot.min_y = plan->min_y;
  snapshot.max_x = plan->max_x;
  snapshot.max_y = plan->max_y;
  snapshot.center_x = plan->center_x;
  snapshot.center_y = plan->center_y;
  snapshot.child_plan = plan->child_plan;
  snapshot.child_id = plan->child_id;
  snapshot.child_is_leaf = plan->child_is_leaf;
  // The plan stores no per-node spatial ids (the walk never needs them);
  // they are recoverable because every non-root plan node is some slot's
  // child: node_id[child_plan[s]] = child_id[s], and node 0 is the root.
  snapshot.node_id.assign(plan->mech.size(),
                          spatial::HierarchicalPartition::kRoot);
  for (size_t s = 0; s < plan->child_plan.size(); ++s) {
    const int32_t p = plan->child_plan[s];
    if (p >= 0) snapshot.node_id[static_cast<size_t>(p)] = plan->child_id[s];
  }
  return snapshot;
}

StatusOr<geo::Point> MultiStepMechanism::WalkOne(const ServingPlan* plan,
                                                 geo::Point actual,
                                                 rng::Rng& rng,
                                                 NodeMemo* memo) const {
  spatial::NodeIndex node = spatial::HierarchicalPartition::kRoot;
  geo::Point reported = index_->Bounds(node).Center();
  int level = 1;

  // Tracing: one thread-local load up front; when no trace is active the
  // per-level instrumentation below is a dead branch.
  obs::RequestTrace* const trace = obs::ActiveTrace();
  const uint64_t walk_start = trace != nullptr ? obs::NowTicks() : 0;
  uint64_t level_start = walk_start;

  // Phase 1: pinned-plan walk. No locks, no cache probes, no per-level
  // refcount traffic — the caller's plan pointer pins everything. The
  // candidate scan, the uniform fallback, and ReportIndex consume `rng`
  // exactly as the cache path below does, so the two phases compose into
  // a walk bit-identical to the pre-plan implementation.
  if (plan != nullptr && !plan->empty()) {
    int64_t plan_levels = 0;
    bool done = false;
    int32_t p = 0;
    for (;;) {
      const int32_t begin = plan->child_begin[p];
      const int32_t count = plan->child_count[p];
      // Snap the actual location to its enclosing child; random if
      // outside the current node (Algorithm 1, lines 9-10).
      int x = -1;
      for (int32_t c = 0; c < count; ++c) {
        const int32_t s = begin + c;
        if (actual.x >= plan->min_x[s] && actual.x <= plan->max_x[s] &&
            actual.y >= plan->min_y[s] && actual.y <= plan->max_y[s]) {
          x = static_cast<int>(c);
          break;
        }
      }
      if (x < 0) {
        x = static_cast<int>(rng.UniformInt(static_cast<size_t>(count)));
      }
      const int z = plan->mech[p]->ReportIndex(x, rng);
      const int32_t s = begin + z;
      reported = {plan->center_x[s], plan->center_y[s]};
      const spatial::NodeIndex expanded = node;
      node = plan->child_id[s];
      if (trace != nullptr) {
        const uint64_t now = obs::NowTicks();
        trace->Emit(obs::SpanKind::kWalkLevelPlan, level_start, now,
                    static_cast<int64_t>(expanded), level);
        level_start = now;
      }
      ++level;
      ++plan_levels;
      if (level > budget_.height() || plan->child_is_leaf[s] != 0) {
        done = true;
        break;
      }
      const int32_t next = plan->child_plan[s];
      if (next < 0) break;  // cold subtree: resume on the cache path
      p = next;
    }
    stats_->Local().plan_levels.fetch_add(plan_levels,
                                          std::memory_order_relaxed);
    if (done) {
      if (trace != nullptr) {
        trace->Emit(obs::SpanKind::kWalk, walk_start, obs::NowTicks(),
                    static_cast<int64_t>(node), level);
      }
      return reported;
    }
  }

  // Phase 2: singleflight-cache walk for whatever the plan didn't cover
  // (everything, when no plan is available).
  int64_t fallthrough_levels = 0;
  for (; level <= budget_.height(); ++level) {
    if (index_->IsLeaf(node)) break;  // adaptive indexes may bottom out
    const spatial::NodeIndex at = node;
    const std::vector<spatial::ChildInfo> children = index_->Children(node);
    NodeMechanismCache::MechanismPtr mech;
    bool memo_hit = false;
    if (memo != nullptr) {
      auto it = memo->find(node);
      if (it != memo->end()) {
        mech = it->second;
        memo_hit = true;
      }
    }
    bool cache_hit = false;
    if (mech == nullptr) {
      GEOPRIV_ASSIGN_OR_RETURN(mech, NodeMechanism(node, level, &cache_hit));
      if (memo != nullptr) memo->emplace(node, mech);
    }
    if (trace != nullptr) {
      const uint64_t now = obs::NowTicks();
      const obs::SpanKind kind = memo_hit  ? obs::SpanKind::kWalkLevelMemo
                                 : cache_hit ? obs::SpanKind::kWalkLevelCacheHit
                                             : obs::SpanKind::kWalkLevelColdBuild;
      trace->Emit(kind, level_start, now, static_cast<int64_t>(at), level);
      level_start = now;
    }
    // Snap the actual location to its enclosing child; random if outside
    // the current node (Algorithm 1, lines 9-10).
    int x = -1;
    for (size_t c = 0; c < children.size(); ++c) {
      if (children[c].bounds.Contains(actual)) {
        x = static_cast<int>(c);
        break;
      }
    }
    if (x < 0) {
      x = static_cast<int>(rng.UniformInt(children.size()));
    }
    const int z = mech->ReportIndex(x, rng);
    node = children[z].id;
    reported = children[z].bounds.Center();
    ++fallthrough_levels;
  }
  if (fallthrough_levels > 0) {
    stats_->Local().fallthrough_levels.fetch_add(fallthrough_levels,
                                                 std::memory_order_relaxed);
  }
  if (trace != nullptr) {
    trace->Emit(obs::SpanKind::kWalk, walk_start, obs::NowTicks(),
                static_cast<int64_t>(node), level);
  }
  return reported;
}

StatusOr<geo::Point> MultiStepMechanism::ReportOrStatus(
    geo::Point actual, rng::Rng& rng) const {
  return ReportOrStatus(actual, rng, nullptr);
}

StatusOr<geo::Point> MultiStepMechanism::ReportOrStatus(
    geo::Point actual, rng::Rng& rng, NodeMemo* memo) const {
  const std::shared_ptr<const ServingPlan> plan = CurrentPlan();
  return WalkOne(plan.get(), actual, rng, memo);
}

std::vector<StatusOr<geo::Point>> MultiStepMechanism::ReportBatchOrStatus(
    const std::vector<geo::Point>& actuals, rng::Rng& rng) const {
  std::vector<StatusOr<geo::Point>> out;
  out.reserve(actuals.size());
  // One plan pin and one memo for the whole batch: each node's mechanism
  // is resolved at most once however many points walk through it. Points
  // are processed in submission order, never regrouped — regrouping would
  // permute the RNG draw sequence and break bit-identity with the
  // sequential calls.
  const std::shared_ptr<const ServingPlan> plan = CurrentPlan();
  NodeMemo memo;
  for (const geo::Point& actual : actuals) {
    out.push_back(WalkOne(plan.get(), actual, rng, &memo));
  }
  return out;
}

geo::Point MultiStepMechanism::Report(geo::Point actual, rng::Rng& rng) {
  auto result = ReportOrStatus(actual, rng);
  GEOPRIV_CHECK_MSG(result.ok(), result.status().ToString().c_str());
  return result.value();
}

}  // namespace geopriv::core
