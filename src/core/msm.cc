#include "core/msm.h"

#include <algorithm>
#include <condition_variable>
#include <mutex>
#include <queue>
#include <utility>

#include "base/check.h"
#include "base/thread_pool.h"

namespace geopriv::core {

StatusOr<MultiStepMechanism> MultiStepMechanism::Create(
    double eps, std::shared_ptr<const spatial::HierarchicalPartition> index,
    std::shared_ptr<const prior::Prior> prior, const MsmOptions& options) {
  if (!(eps > 0.0)) {
    return Status::InvalidArgument("eps must be positive");
  }
  if (index == nullptr || prior == nullptr) {
    return Status::InvalidArgument("index and prior must be non-null");
  }
  GEOPRIV_ASSIGN_OR_RETURN(BudgetAllocation budget,
                           AllocateBudget(eps, *index, options.budget));
  return MultiStepMechanism(eps, std::move(index), std::move(prior), options,
                            std::move(budget));
}

MsmStats MultiStepMechanism::stats() const {
  MsmStats snapshot;
  snapshot.lp_solves = stats_->lp_solves.load(std::memory_order_relaxed);
  snapshot.lp_seconds = stats_->lp_seconds.load(std::memory_order_relaxed);
  snapshot.cache_hits = stats_->cache_hits.load(std::memory_order_relaxed);
  snapshot.cache_evictions = static_cast<int64_t>(cache_->evictions());
  snapshot.cache_bytes_resident =
      static_cast<int64_t>(cache_->bytes_resident());
  snapshot.cache_hit_rate = cache_->hit_rate();
  snapshot.lp_pricing_seconds =
      stats_->lp_pricing_seconds.load(std::memory_order_relaxed);
  snapshot.lp_simplex_seconds =
      stats_->lp_simplex_seconds.load(std::memory_order_relaxed);
  snapshot.lp_violations_found =
      stats_->lp_violations_found.load(std::memory_order_relaxed);
  snapshot.degraded_rows =
      stats_->degraded_rows.load(std::memory_order_relaxed);
  snapshot.uniform_prior_fallbacks =
      stats_->uniform_prior_fallbacks.load(std::memory_order_relaxed);
  return snapshot;
}

StatusOr<std::unique_ptr<mechanisms::OptimalMechanism>>
MultiStepMechanism::BuildNodeMechanism(spatial::NodeIndex node,
                                       int level) const {
  const std::vector<spatial::ChildInfo> children = index_->Children(node);
  std::vector<geo::Point> centers;
  std::vector<geo::BBox> boxes;
  centers.reserve(children.size());
  boxes.reserve(children.size());
  for (const spatial::ChildInfo& c : children) {
    centers.push_back(c.bounds.Center());
    boxes.push_back(c.bounds);
  }
  std::vector<double> node_prior = prior_->CellMasses(boxes);
  double total = 0.0;
  for (double m : node_prior) total += m;
  if (!(total > 1e-15)) {
    // Degenerate node: the conditional prior carries no mass (e.g. an
    // index quadrant the training data never visited). Fall back to the
    // zero-knowledge uniform prior over the children — and count it, so
    // operators can see how often the mechanism runs blind.
    std::fill(node_prior.begin(), node_prior.end(),
              1.0 / static_cast<double>(node_prior.size()));
    stats_->uniform_prior_fallbacks.fetch_add(1, std::memory_order_relaxed);
  }
  GEOPRIV_CHECK_MSG(level >= 1 && level <= budget_.height(),
                    "level outside allocation");
  GEOPRIV_ASSIGN_OR_RETURN(
      mechanisms::OptimalMechanism mech,
      mechanisms::OptimalMechanism::Create(budget_.per_level[level - 1],
                                           std::move(centers), node_prior,
                                           options_.metric, options_.opt));
  const mechanisms::OptSolveStats& os = mech.stats();
  stats_->lp_solves.fetch_add(1, std::memory_order_relaxed);
  stats_->lp_seconds.fetch_add(os.solve_seconds, std::memory_order_relaxed);
  stats_->lp_pricing_seconds.fetch_add(os.pricing_seconds,
                                       std::memory_order_relaxed);
  stats_->lp_simplex_seconds.fetch_add(os.simplex_seconds,
                                       std::memory_order_relaxed);
  stats_->lp_violations_found.fetch_add(os.violations_found,
                                        std::memory_order_relaxed);
  stats_->degraded_rows.fetch_add(os.degraded_rows,
                                  std::memory_order_relaxed);
  return std::make_unique<mechanisms::OptimalMechanism>(std::move(mech));
}

StatusOr<NodeMechanismCache::MechanismPtr>
MultiStepMechanism::NodeMechanism(spatial::NodeIndex node, int level) const {
  if (!options_.cache_nodes) {
    // Uncached mode: every call builds a mechanism the caller privately
    // owns. No shared mutable state, so concurrent Report() calls are
    // safe — they just each pay the LP.
    GEOPRIV_ASSIGN_OR_RETURN(auto built, BuildNodeMechanism(node, level));
    return NodeMechanismCache::MechanismPtr(std::move(built));
  }
  bool hit = false;
  auto result = cache_->GetOrCompute(
      node, [&] { return BuildNodeMechanism(node, level); }, &hit);
  if (hit) stats_->cache_hits.fetch_add(1, std::memory_order_relaxed);
  return result;
}

StatusOr<int> MultiStepMechanism::PrewarmTopNodes(int k) const {
  return PrewarmTopNodes(k, nullptr);
}

StatusOr<int> MultiStepMechanism::PrewarmTopNodes(int k,
                                                  ThreadPool* pool) const {
  if (!options_.cache_nodes) {
    return Status::FailedPrecondition(
        "PrewarmTopNodes requires cache_nodes");
  }
  if (k <= 0) return 0;
  // Best-first walk by unconditional prior mass. Expanding only popped
  // nodes guarantees every warmed node's ancestors are warmed first (a
  // node's mass never exceeds its parent's), matching what a query
  // through that node will touch. With a pool, independent frontier nodes
  // build concurrently: each drainer claims the current best candidate,
  // builds it outside the lock (through the cache's singleflight path),
  // and feeds the node's children back into the frontier.
  struct Candidate {
    double mass;
    spatial::NodeIndex node;
    int level;
    bool operator<(const Candidate& other) const {
      return mass < other.mass;
    }
  };
  struct Shared {
    std::mutex mu;
    std::condition_variable cv;
    std::priority_queue<Candidate> frontier;
    int claimed = 0;   // candidates handed to a drainer (claimed <= k)
    int warmed = 0;    // builds that completed successfully
    int inflight = 0;  // builds currently running
    bool failed = false;
    Status error = Status::OK();
  };
  auto shared = std::make_shared<Shared>();
  if (!index_->IsLeaf(spatial::HierarchicalPartition::kRoot)) {
    shared->frontier.push({1.0, spatial::HierarchicalPartition::kRoot, 1});
  }
  const auto drain = [this, k, shared] {
    std::unique_lock<std::mutex> lock(shared->mu);
    for (;;) {
      shared->cv.wait(lock, [&] {
        return shared->failed || shared->claimed >= k ||
               !shared->frontier.empty() || shared->inflight == 0;
      });
      if (shared->failed || shared->claimed >= k ||
          (shared->frontier.empty() && shared->inflight == 0)) {
        return;
      }
      if (shared->frontier.empty()) continue;  // spurious predicate pass
      const Candidate top = shared->frontier.top();
      shared->frontier.pop();
      ++shared->claimed;
      ++shared->inflight;
      lock.unlock();

      const auto result = NodeMechanism(top.node, top.level);
      std::vector<Candidate> kids;
      if (result.ok() && top.level + 1 <= budget_.height()) {
        for (const spatial::ChildInfo& child : index_->Children(top.node)) {
          if (index_->IsLeaf(child.id)) continue;
          kids.push_back(
              {prior_->MassIn(child.bounds), child.id, top.level + 1});
        }
      }

      lock.lock();
      --shared->inflight;
      if (!result.ok()) {
        if (!shared->failed) {
          shared->failed = true;
          shared->error = result.status();
        }
      } else {
        ++shared->warmed;
        for (const Candidate& kid : kids) shared->frontier.push(kid);
      }
      shared->cv.notify_all();
    }
  };
  // Recruit helpers non-blockingly; a busy or shut-down pool just lowers
  // the effective parallelism (the calling thread always participates).
  if (pool != nullptr) {
    const int helpers = std::min(pool->num_threads(), std::max(0, k - 1));
    for (int h = 0; h < helpers; ++h) {
      if (!pool->TrySubmit([drain](int /*worker*/) { drain(); })) break;
    }
  }
  drain();
  std::unique_lock<std::mutex> lock(shared->mu);
  shared->cv.wait(lock, [&] { return shared->inflight == 0; });
  if (shared->failed) return shared->error;
  return shared->warmed;
}

StatusOr<geo::Point> MultiStepMechanism::ReportOrStatus(
    geo::Point actual, rng::Rng& rng) const {
  spatial::NodeIndex node = spatial::HierarchicalPartition::kRoot;
  geo::Point reported = index_->Bounds(node).Center();
  for (int level = 1; level <= budget_.height(); ++level) {
    if (index_->IsLeaf(node)) break;  // adaptive indexes may bottom out
    const std::vector<spatial::ChildInfo> children = index_->Children(node);
    GEOPRIV_ASSIGN_OR_RETURN(const NodeMechanismCache::MechanismPtr mech,
                             NodeMechanism(node, level));
    // Snap the actual location to its enclosing child; random if outside
    // the current node (Algorithm 1, lines 9-10).
    int x = -1;
    for (size_t c = 0; c < children.size(); ++c) {
      if (children[c].bounds.Contains(actual)) {
        x = static_cast<int>(c);
        break;
      }
    }
    if (x < 0) {
      x = static_cast<int>(rng.UniformInt(children.size()));
    }
    const int z = mech->ReportIndex(x, rng);
    node = children[z].id;
    reported = children[z].bounds.Center();
  }
  return reported;
}

geo::Point MultiStepMechanism::Report(geo::Point actual, rng::Rng& rng) {
  auto result = ReportOrStatus(actual, rng);
  GEOPRIV_CHECK_MSG(result.ok(), result.status().ToString().c_str());
  return result.value();
}

}  // namespace geopriv::core
