#include "core/msm.h"

#include <queue>
#include <utility>

#include "base/check.h"

namespace geopriv::core {

StatusOr<MultiStepMechanism> MultiStepMechanism::Create(
    double eps, std::shared_ptr<const spatial::HierarchicalPartition> index,
    std::shared_ptr<const prior::Prior> prior, const MsmOptions& options) {
  if (!(eps > 0.0)) {
    return Status::InvalidArgument("eps must be positive");
  }
  if (index == nullptr || prior == nullptr) {
    return Status::InvalidArgument("index and prior must be non-null");
  }
  GEOPRIV_ASSIGN_OR_RETURN(BudgetAllocation budget,
                           AllocateBudget(eps, *index, options.budget));
  return MultiStepMechanism(eps, std::move(index), std::move(prior), options,
                            std::move(budget));
}

MsmStats MultiStepMechanism::stats() const {
  MsmStats snapshot;
  snapshot.lp_solves = stats_->lp_solves.load(std::memory_order_relaxed);
  snapshot.lp_seconds = stats_->lp_seconds.load(std::memory_order_relaxed);
  snapshot.cache_hits = stats_->cache_hits.load(std::memory_order_relaxed);
  snapshot.cache_evictions = static_cast<int64_t>(cache_->evictions());
  snapshot.cache_bytes_resident =
      static_cast<int64_t>(cache_->bytes_resident());
  snapshot.cache_hit_rate = cache_->hit_rate();
  return snapshot;
}

StatusOr<std::unique_ptr<mechanisms::OptimalMechanism>>
MultiStepMechanism::BuildNodeMechanism(spatial::NodeIndex node,
                                       int level) const {
  const std::vector<spatial::ChildInfo> children = index_->Children(node);
  std::vector<geo::Point> centers;
  std::vector<geo::BBox> boxes;
  centers.reserve(children.size());
  boxes.reserve(children.size());
  for (const spatial::ChildInfo& c : children) {
    centers.push_back(c.bounds.Center());
    boxes.push_back(c.bounds);
  }
  const std::vector<double> node_prior = prior_->ConditionalOn(boxes);
  GEOPRIV_CHECK_MSG(level >= 1 && level <= budget_.height(),
                    "level outside allocation");
  GEOPRIV_ASSIGN_OR_RETURN(
      mechanisms::OptimalMechanism mech,
      mechanisms::OptimalMechanism::Create(budget_.per_level[level - 1],
                                           std::move(centers), node_prior,
                                           options_.metric, options_.opt));
  stats_->lp_solves.fetch_add(1, std::memory_order_relaxed);
  stats_->lp_seconds.fetch_add(mech.stats().solve_seconds,
                               std::memory_order_relaxed);
  return std::make_unique<mechanisms::OptimalMechanism>(std::move(mech));
}

StatusOr<NodeMechanismCache::MechanismPtr>
MultiStepMechanism::NodeMechanism(spatial::NodeIndex node, int level) const {
  if (!options_.cache_nodes) {
    // Uncached mode: the caller co-owns the freshly built mechanism, so
    // the sequential Report() path (and any test holding the pointer)
    // stays valid past the next call.
    GEOPRIV_ASSIGN_OR_RETURN(scratch_, BuildNodeMechanism(node, level));
    return scratch_;
  }
  bool hit = false;
  auto result = cache_->GetOrCompute(
      node, [&] { return BuildNodeMechanism(node, level); }, &hit);
  if (hit) stats_->cache_hits.fetch_add(1, std::memory_order_relaxed);
  return result;
}

StatusOr<int> MultiStepMechanism::PrewarmTopNodes(int k) const {
  if (!options_.cache_nodes) {
    return Status::FailedPrecondition(
        "PrewarmTopNodes requires cache_nodes");
  }
  if (k <= 0) return 0;
  // Best-first walk by unconditional prior mass. Expanding only popped
  // nodes guarantees every warmed node's ancestors are warmed first (a
  // node's mass never exceeds its parent's), matching what a query
  // through that node will touch.
  struct Candidate {
    double mass;
    spatial::NodeIndex node;
    int level;
    bool operator<(const Candidate& other) const {
      return mass < other.mass;
    }
  };
  std::priority_queue<Candidate> frontier;
  if (!index_->IsLeaf(spatial::HierarchicalPartition::kRoot)) {
    frontier.push({1.0, spatial::HierarchicalPartition::kRoot, 1});
  }
  int warmed = 0;
  while (!frontier.empty() && warmed < k) {
    const Candidate top = frontier.top();
    frontier.pop();
    GEOPRIV_RETURN_IF_ERROR(NodeMechanism(top.node, top.level).status());
    ++warmed;
    if (top.level + 1 > budget_.height()) continue;
    for (const spatial::ChildInfo& child : index_->Children(top.node)) {
      if (index_->IsLeaf(child.id)) continue;
      frontier.push({prior_->MassIn(child.bounds), child.id, top.level + 1});
    }
  }
  return warmed;
}

StatusOr<geo::Point> MultiStepMechanism::ReportOrStatus(
    geo::Point actual, rng::Rng& rng) const {
  spatial::NodeIndex node = spatial::HierarchicalPartition::kRoot;
  geo::Point reported = index_->Bounds(node).Center();
  for (int level = 1; level <= budget_.height(); ++level) {
    if (index_->IsLeaf(node)) break;  // adaptive indexes may bottom out
    const std::vector<spatial::ChildInfo> children = index_->Children(node);
    GEOPRIV_ASSIGN_OR_RETURN(const NodeMechanismCache::MechanismPtr mech,
                             NodeMechanism(node, level));
    // Snap the actual location to its enclosing child; random if outside
    // the current node (Algorithm 1, lines 9-10).
    int x = -1;
    for (size_t c = 0; c < children.size(); ++c) {
      if (children[c].bounds.Contains(actual)) {
        x = static_cast<int>(c);
        break;
      }
    }
    if (x < 0) {
      x = static_cast<int>(rng.UniformInt(children.size()));
    }
    const int z = mech->ReportIndex(x, rng);
    node = children[z].id;
    reported = children[z].bounds.Center();
  }
  return reported;
}

geo::Point MultiStepMechanism::Report(geo::Point actual, rng::Rng& rng) {
  auto result = ReportOrStatus(actual, rng);
  GEOPRIV_CHECK_MSG(result.ok(), result.status().ToString().c_str());
  return result.value();
}

}  // namespace geopriv::core
