// Privacy-budget allocation across index levels (paper Section 5).
//
// The default policy implements Algorithm 2: level i receives the minimal
// budget eps_i such that the modelled self-mapping probability
// Phi(eps_i * cell_side_i) reaches rho (Problem 1, solved by bisection on
// the monotone lattice sum), each level capped by what remains; the height
// h emerges when the budget runs out. Because only eps * cell_side matters,
// eps_i grows geometrically with depth — coarse levels are secured first,
// which is the paper's key contrast with the DP-histogram literature.
//
// Alternative policies (uniform, geometric, custom) are provided for the
// ablation bench and for reproducing Table 2's fixed two-level layout.

#ifndef GEOPRIV_CORE_BUDGET_H_
#define GEOPRIV_CORE_BUDGET_H_

#include <vector>

#include "base/status.h"
#include "spatial/hierarchical_partition.h"

namespace geopriv::core {

enum class BudgetPolicy {
  kRhoMinimal,  // Algorithm 2 (default)
  kUniform,     // eps / h per level
  kGeometric,   // eps_i proportional to 1 / cell_side_i
  kCustom,      // caller-specified weights
};

struct BudgetOptions {
  BudgetPolicy policy = BudgetPolicy::kRhoMinimal;
  // Target per-level self-mapping probability (Algorithm 2's rho).
  double rho = 0.8;
  // Hard cap on the number of levels used (also bounded by the index
  // height).
  int max_height = 16;
  // If > 0, force exactly this many levels. For kRhoMinimal, levels get
  // their minimal budget top-down and the last level the remainder; when
  // the minimal budgets alone exceed the total, all levels are scaled
  // proportionally to their minimal requirement.
  int fixed_height = 0;
  // kCustom: relative weights per level (normalized to the total budget).
  std::vector<double> custom_weights;
};

struct BudgetAllocation {
  // per_level[i] is the budget of level i+1; sums to the total eps.
  std::vector<double> per_level;

  int height() const { return static_cast<int>(per_level.size()); }
  double total() const {
    double t = 0.0;
    for (double e : per_level) t += e;
    return t;
  }
};

// Computes the allocation for `index` (its TypicalCellSide drives the cost
// model). Requires eps > 0 and rho in (0, 1).
StatusOr<BudgetAllocation> AllocateBudget(
    double eps, const spatial::HierarchicalPartition& index,
    const BudgetOptions& options);

}  // namespace geopriv::core

#endif  // GEOPRIV_CORE_BUDGET_H_
