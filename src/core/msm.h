// Multi-Step Mechanism (MSM) — the paper's primary contribution
// (Algorithm 1). Starting from the index root, each level i:
//   1. builds the candidate set from the children of the node selected at
//      level i-1,
//   2. snaps the user's actual location to its enclosing child (or a
//      uniformly random child if the actual location fell outside the
//      node — lines 9-10 of Algorithm 1),
//   3. runs the optimal mechanism OPT with the level budget eps_i and the
//      prior conditioned on the node, and
//   4. samples the next node from the resulting distribution.
// The leaf-level output's center is reported. By DP composability the whole
// pipeline satisfies GeoInd with budget sum_i eps_i = eps.
//
// Solved per-node LPs are cached in a sharded, thread-safe
// NodeMechanismCache with singleflight semantics: repeated queries that
// walk through the same node reuse its transition matrix, so the LP cost
// is paid once per visited node rather than once per query — even when
// many threads share one mechanism (see MsmOptions::cache_nodes and the
// micro/throughput benches for the effect).
//
// Thread safety: ReportOrStatus and Report are safe to call concurrently
// as long as each thread draws from its own Rng; stats are sharded
// per-thread atomics. With cache_nodes = false every call builds (and
// privately owns) a fresh per-node mechanism, so the uncached mode is also
// thread-safe — it just pays the LP on every visit.
//
// Warm serving path: the mechanism maintains a ServingPlan — a flattened,
// contiguous SoA image of the resident hot subtree (per-level child
// bounds/centers/ids plus one shared_ptr-pinned mechanism per plan node).
// A walk over the plan takes zero mutexes and bounces zero refcounts per
// level: one atomic shared_ptr load pins the whole plan for the walk.
// Nodes outside the plan fall through to the singleflight cache exactly as
// before, and the plan is rebuilt (by at most one walker at a time, while
// the others keep using the previous — still valid — plan) whenever the
// cache's generation counter moves: publish, eviction, or Clear().
// Plan and legacy walks are bit-identical: same candidate scan order, same
// RNG draw sequence, same solved matrices.

#ifndef GEOPRIV_CORE_MSM_H_
#define GEOPRIV_CORE_MSM_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "base/sharded_counter.h"
#include "base/status.h"
#include "core/budget.h"
#include "core/node_cache.h"
#include "geo/distance.h"
#include "mechanisms/mechanism.h"
#include "mechanisms/optimal.h"
#include "prior/prior.h"
#include "spatial/hierarchical_partition.h"

namespace geopriv::core {

struct MsmOptions {
  BudgetOptions budget;
  mechanisms::OptimalMechanismOptions opt;
  geo::UtilityMetric metric = geo::UtilityMetric::kEuclidean;
  // Reuse solved per-node LPs across queries.
  bool cache_nodes = true;
  // Shards of the node cache (contention bound under concurrency).
  int cache_shards = 16;
  // Byte budget for the node cache's resident OPT matrices; past it the
  // cache evicts least-recently-used unpinned entries. 0 = unbounded.
  size_t cache_byte_budget = 0;
  // Maintain the flattened ServingPlan over the warm subtree (see the file
  // comment). Requires cache_nodes; ignored without it.
  bool serving_plan = true;
  // Upper bound on nodes a plan may pin. Bounds both the rebuild cost and
  // the bytes the plan holds unevictable; with a byte budget the plan
  // additionally stops at half the budget so an evictable pool remains.
  int serving_plan_max_nodes = 4096;
};

// Snapshot of the mechanism's counters (see MultiStepMechanism::stats()).
struct MsmStats {
  int64_t lp_solves = 0;
  double lp_seconds = 0.0;
  int64_t cache_hits = 0;
  int64_t cache_evictions = 0;
  int64_t cache_bytes_resident = 0;
  double cache_hit_rate = 0.0;
  // Aggregated from the per-node OptSolveStats: wall-clock split of
  // lp_seconds between pricing scans and simplex pivoting, and the total
  // violated GeoInd constraints the pricing rounds surfaced.
  double lp_pricing_seconds = 0.0;
  double lp_simplex_seconds = 0.0;
  // Basis-refactorization share of lp_simplex_seconds (the third LP phase
  // the obs layer reports: pricing / refactorize / pivoting).
  double lp_refactor_seconds = 0.0;
  int64_t lp_violations_found = 0;
  // All-zero LP rows rewritten to identity rows (GeoInd-breaking; nonzero
  // only when options.opt.strict is disabled — strict builds fail
  // instead).
  int64_t degraded_rows = 0;
  // Nodes whose conditional prior carried no mass and fell back to the
  // uniform prior over their children.
  int64_t uniform_prior_fallbacks = 0;
  // Serving-plan counters: full rebuilds, levels walked inside the pinned
  // plan (lock-free), and levels that fell through to the singleflight
  // cache (cold subtree or stale plan).
  int64_t plan_builds = 0;
  int64_t plan_levels = 0;
  int64_t fallthrough_levels = 0;
};

class MultiStepMechanism final : public mechanisms::Mechanism {
 public:
  // `index` and `prior` must outlive the mechanism. The budget allocation
  // is computed at construction time (it is data-independent).
  static StatusOr<MultiStepMechanism> Create(
      double eps, std::shared_ptr<const spatial::HierarchicalPartition> index,
      std::shared_ptr<const prior::Prior> prior, const MsmOptions& options);

  // Per-batch memo of pinned node mechanisms: a caller walking many points
  // hands the same memo to every call so each cold node's cache lookup is
  // paid once per batch instead of once per point. Failures are never
  // memoized (retry semantics match the unmemoized path). Not thread-safe;
  // one memo per thread/batch.
  using NodeMemo =
      std::unordered_map<spatial::NodeIndex, NodeMechanismCache::MechanismPtr>;

  // Status-returning variant (LP time limits surface here). Thread-safe in
  // cached mode; `rng` must be private to the calling thread. The memo
  // overload additionally reuses `memo` across calls (may be nullptr).
  StatusOr<geo::Point> ReportOrStatus(geo::Point actual, rng::Rng& rng) const;
  StatusOr<geo::Point> ReportOrStatus(geo::Point actual, rng::Rng& rng,
                                      NodeMemo* memo) const;

  // Walks every point in submission order against one pinned plan and one
  // shared memo, drawing from `rng` exactly as the equivalent sequence of
  // ReportOrStatus calls would — bit-identical outputs for a fixed seed.
  std::vector<StatusOr<geo::Point>> ReportBatchOrStatus(
      const std::vector<geo::Point>& actuals, rng::Rng& rng) const;

  // Mechanism interface; aborts on solver failure (which cannot happen with
  // the default unlimited solver options).
  geo::Point Report(geo::Point actual, rng::Rng& rng) override;
  std::string name() const override { return "MSM"; }

  const BudgetAllocation& budget() const { return budget_; }
  int height() const { return budget_.height(); }
  const spatial::HierarchicalPartition& index() const { return *index_; }
  double eps() const { return eps_; }
  const prior::Prior& prior() const { return *prior_; }
  const MsmOptions& options() const { return options_; }

  // Consistent snapshot of the atomic counters.
  MsmStats stats() const;

  // Value copy of the current serving plan's SoA arrays plus each plan
  // node's spatial id, for serialization (bundle writers store the layout
  // so `inspect` can show the warm subtree without rebuilding it). The
  // plan is refreshed first if the cache generation moved; all vectors are
  // empty when plans are disabled or nothing is warm. Array semantics
  // match ServingPlan (see below): plan node p's children occupy
  // [child_begin[p], child_begin[p]+child_count[p]) of the child arrays.
  struct PlanSnapshot {
    std::vector<spatial::NodeIndex> node_id;  // per plan node
    std::vector<int32_t> child_begin;
    std::vector<int32_t> child_count;
    std::vector<double> min_x, min_y, max_x, max_y;
    std::vector<double> center_x, center_y;
    std::vector<int32_t> child_plan;
    std::vector<spatial::NodeIndex> child_id;
    std::vector<uint8_t> child_is_leaf;
  };
  PlanSnapshot SnapshotServingPlan() const;
  // Node count of the current serving plan, rebuilding it first if the
  // cache generation moved (0 when plans are disabled or nothing is warm).
  size_t serving_plan_nodes() const;
  size_t cache_size() const { return cache_->size(); }
  const NodeMechanismCache& cache() const { return *cache_; }
  NodeMechanismCache& cache() { return *cache_; }

  // Per-node mechanism for audits/tests (built and cached on demand).
  // `level` is the node's depth + 1, i.e. the budget index of its children.
  // The returned pointer pins the mechanism: it stays valid however long
  // the caller holds it, across cache Clear()/eviction. `cache_hit`
  // (optional) reports whether the mechanism was already resident — the
  // walk instrumentation uses it to tag levels cache-hit vs cold-build.
  StatusOr<NodeMechanismCache::MechanismPtr> NodeMechanism(
      spatial::NodeIndex node, int level, bool* cache_hit = nullptr) const;

  // Pre-solves the LPs of (up to) the `k` internal nodes with the largest
  // prior mass, walking the index root-down so a warmed node's ancestors
  // are warmed too. Goes through the cache's singleflight path, so it is
  // safe to run concurrently with live traffic (e.g. from a background
  // warmer). Returns the number of nodes now resident (hits included).
  // Requires cache_nodes; fails fast otherwise.
  //
  // With a pool, independent frontier nodes (siblings, cousins) build
  // concurrently: helper threads are recruited non-blockingly from `pool`
  // and the calling thread participates, so a busy or shut-down pool just
  // lowers the effective parallelism. A node enters the frontier only
  // when its parent's build completes, preserving ancestor-before-
  // descendant order; with concurrent builds the k nodes picked are
  // best-first among the candidates *discovered so far*, which can differ
  // from the strict serial top-k when siblings race. pool == nullptr (or
  // the single-argument overload) reproduces the serial walk exactly.
  StatusOr<int> PrewarmTopNodes(int k) const;
  StatusOr<int> PrewarmTopNodes(int k, ThreadPool* pool) const;

 private:
  // Atomic counterpart of MsmStats, sharded into cache-line-padded
  // per-thread slots so concurrent walkers never contend on a counter's
  // cache line; stats() sums the slots. Heap-allocated so the mechanism
  // stays movable (callers move the Create() result into smart pointers).
  struct AtomicStats {
    struct alignas(kCounterSlotAlign) Slot {
      std::atomic<int64_t> lp_solves{0};
      std::atomic<double> lp_seconds{0.0};
      std::atomic<int64_t> cache_hits{0};
      std::atomic<double> lp_pricing_seconds{0.0};
      std::atomic<double> lp_simplex_seconds{0.0};
      std::atomic<double> lp_refactor_seconds{0.0};
      std::atomic<int64_t> lp_violations_found{0};
      std::atomic<int64_t> degraded_rows{0};
      std::atomic<int64_t> uniform_prior_fallbacks{0};
      std::atomic<int64_t> plan_builds{0};
      std::atomic<int64_t> plan_levels{0};
      std::atomic<int64_t> fallthrough_levels{0};
    };
    static constexpr int kSlots = 16;
    std::array<Slot, kSlots> slots;
    Slot& Local() { return slots[ThreadCounterSlot(kSlots)]; }
  };

  // Flattened SoA image of the warm subtree. Plan node p's children live
  // in the flat child arrays at [child_begin[p], child_begin[p] +
  // child_count[p]), in the exact order Children() returns them, so the
  // candidate scan visits the same cells the legacy walk would. Each plan
  // node pins its solved mechanism for the plan's lifetime; child_plan[s]
  // is the child's own plan-node id, or -1 when a walk through that child
  // must fall through to the cache path (cold or capped-out subtree).
  // Immutable once published; a stale plan (generation behind the cache)
  // stays correct — the pins keep its matrices alive and rebuilt LPs are
  // deterministic — it just may miss newly warm nodes.
  struct ServingPlan {
    uint64_t generation = 0;
    // Per plan node.
    std::vector<int32_t> child_begin;
    std::vector<int32_t> child_count;
    std::vector<NodeMechanismCache::MechanismPtr> mech;
    // Per child slot (closed-interval bounds, matching BBox::Contains).
    std::vector<double> min_x, min_y, max_x, max_y;
    std::vector<double> center_x, center_y;
    std::vector<int32_t> child_plan;
    std::vector<spatial::NodeIndex> child_id;
    std::vector<uint8_t> child_is_leaf;
    size_t pinned_bytes = 0;
    bool empty() const { return mech.empty(); }
  };

  // Plan publication state; heap-allocated for movability. `plan` is the
  // epoch-published current plan (readers: one atomic load); `building`
  // elects a single rebuilder while everyone else keeps serving from the
  // stale-but-valid plan.
  struct PlanState {
    std::atomic<std::shared_ptr<const ServingPlan>> plan{nullptr};
    std::atomic<bool> building{false};
  };

  MultiStepMechanism(
      double eps, std::shared_ptr<const spatial::HierarchicalPartition> index,
      std::shared_ptr<const prior::Prior> prior, MsmOptions options,
      BudgetAllocation budget)
      : eps_(eps),
        index_(std::move(index)),
        prior_(std::move(prior)),
        options_(std::move(options)),
        budget_(std::move(budget)),
        cache_(std::make_unique<NodeMechanismCache>(
            options_.cache_shards, options_.cache_byte_budget)),
        stats_(std::make_unique<AtomicStats>()),
        plan_state_(std::make_unique<PlanState>()) {}

  // Solves the LP for `node` (no cache involvement).
  StatusOr<std::unique_ptr<mechanisms::OptimalMechanism>> BuildNodeMechanism(
      spatial::NodeIndex node, int level) const;

  // The current plan, rebuilt first (by this caller, if it wins the
  // single-rebuilder election) when the cache generation moved. nullptr
  // when plans are disabled or nothing is published yet.
  std::shared_ptr<const ServingPlan> CurrentPlan() const;
  // BFS over the warm subtree, pinning via the cache's non-building probe.
  std::shared_ptr<const ServingPlan> BuildPlan(uint64_t generation) const;

  // One root-to-leaf walk: pinned-plan phase first, cache fall-through for
  // whatever the plan does not cover. `plan` and `memo` may be nullptr.
  StatusOr<geo::Point> WalkOne(const ServingPlan* plan, geo::Point actual,
                               rng::Rng& rng, NodeMemo* memo) const;

  double eps_;
  std::shared_ptr<const spatial::HierarchicalPartition> index_;
  std::shared_ptr<const prior::Prior> prior_;
  MsmOptions options_;
  BudgetAllocation budget_;
  std::unique_ptr<NodeMechanismCache> cache_;
  std::unique_ptr<AtomicStats> stats_;
  std::unique_ptr<PlanState> plan_state_;
};

}  // namespace geopriv::core

#endif  // GEOPRIV_CORE_MSM_H_
