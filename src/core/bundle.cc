#include "core/bundle.h"

#include <cmath>
#include <cstring>
#include <memory>

#include "base/atomic_file.h"
#include "base/endian.h"
#include "prior/prior.h"
#include "spatial/hierarchical_grid.h"

namespace geopriv::core {

namespace {

constexpr char kMagic[4] = {'G', 'P', 'B', '1'};
constexpr char kMagicV2[4] = {'G', 'P', 'B', '2'};
constexpr uint32_t kVersion = 1;

// FNV-1a over the serialized payload.
class Checksum {
 public:
  void Update(const void* data, size_t size) {
    const auto* bytes = static_cast<const unsigned char*>(data);
    for (size_t i = 0; i < size; ++i) {
      hash_ ^= bytes[i];
      hash_ *= 1099511628211ull;
    }
  }
  uint64_t value() const { return hash_; }

 private:
  uint64_t hash_ = 14695981039346656037ull;
};

// Serializes into a growable buffer through the explicit little-endian
// helpers; the buffer is handed to WriteFileAtomic in one shot.
class Writer {
 public:
  void Bytes(const void* data, size_t size) {
    buffer_.append(static_cast<const char*>(data), size);
  }
  void U32(uint32_t v) { base::AppendLE32(buffer_, v); }
  void U64(uint64_t v) { base::AppendLE64(buffer_, v); }
  void F64(double v) { base::AppendLEF64(buffer_, v); }

  // FNV-1a over everything appended so far.
  uint64_t checksum() const {
    Checksum sum;
    sum.Update(buffer_.data(), buffer_.size());
    return sum.value();
  }

  const std::string& buffer() const { return buffer_; }

 private:
  std::string buffer_;
};

// Cursor over an in-memory file image, decoding little-endian fields and
// folding every consumed byte into the running checksum.
class Reader {
 public:
  explicit Reader(const std::string& contents) : contents_(contents) {}

  bool Bytes(void* data, size_t size) {
    if (contents_.size() - pos_ < size) return false;
    std::memcpy(data, contents_.data() + pos_, size);
    checksum_.Update(contents_.data() + pos_, size);
    pos_ += size;
    return true;
  }
  bool U32(uint32_t* v) {
    unsigned char buf[4];
    if (!Bytes(buf, sizeof(buf))) return false;
    *v = base::LoadLE32(buf);
    return true;
  }
  bool U64(uint64_t* v) {
    unsigned char buf[8];
    if (!Bytes(buf, sizeof(buf))) return false;
    *v = base::LoadLE64(buf);
    return true;
  }
  bool F64(double* v) {
    uint64_t bits = 0;
    if (!U64(&bits)) return false;
    std::memcpy(v, &bits, sizeof(*v));
    return true;
  }

  uint64_t checksum() const { return checksum_.value(); }
  size_t remaining() const { return contents_.size() - pos_; }

 private:
  const std::string& contents_;
  size_t pos_ = 0;
  Checksum checksum_;
};

}  // namespace

Status ClientBundle::Validate() const {
  if (!(domain.Width() > 0.0) || !(domain.Height() > 0.0)) {
    return Status::InvalidArgument("bundle domain must have positive area");
  }
  if (!(eps > 0.0) || !(rho > 0.0 && rho < 1.0)) {
    return Status::InvalidArgument("bundle eps/rho out of range");
  }
  if (granularity < 2 || granularity > 64) {
    return Status::InvalidArgument("bundle granularity out of range");
  }
  if (budget.height() < 1 || budget.height() > 20) {
    return Status::InvalidArgument("bundle budget height out of range");
  }
  for (double b : budget.per_level) {
    if (!(b >= 0.0) || !std::isfinite(b)) {
      return Status::InvalidArgument("bundle has a bad level budget");
    }
  }
  if (std::abs(budget.total() - eps) > 1e-6 * (1.0 + eps)) {
    return Status::InvalidArgument("bundle budgets do not sum to eps");
  }
  if (prior_granularity < 1 || prior_granularity > 4096) {
    return Status::InvalidArgument("bundle prior granularity out of range");
  }
  const size_t cells = static_cast<size_t>(prior_granularity) *
                       static_cast<size_t>(prior_granularity);
  if (prior_mass.size() != cells) {
    return Status::InvalidArgument("bundle prior size mismatch");
  }
  double total = 0.0;
  for (double m : prior_mass) {
    if (!(m >= 0.0) || !std::isfinite(m)) {
      return Status::InvalidArgument("bundle prior has a bad mass");
    }
    total += m;
  }
  if (std::abs(total - 1.0) > 1e-6) {
    return Status::InvalidArgument("bundle prior is not normalized");
  }
  return Status::OK();
}

Status SaveClientBundle(const ClientBundle& bundle,
                        const std::string& path) {
  GEOPRIV_RETURN_IF_ERROR(bundle.Validate());
  Writer writer;
  writer.Bytes(kMagic, sizeof(kMagic));
  writer.U32(base::kEndianSentinel);
  writer.U32(kVersion);
  writer.F64(bundle.domain.min_x);
  writer.F64(bundle.domain.min_y);
  writer.F64(bundle.domain.max_x);
  writer.F64(bundle.domain.max_y);
  writer.F64(bundle.eps);
  writer.F64(bundle.rho);
  writer.U32(static_cast<uint32_t>(bundle.granularity));
  writer.U32(static_cast<uint32_t>(bundle.budget.height()));
  for (double b : bundle.budget.per_level) writer.F64(b);
  writer.U32(static_cast<uint32_t>(bundle.prior_granularity));
  for (double m : bundle.prior_mass) writer.F64(m);
  const uint64_t checksum = writer.checksum();
  std::string payload = writer.buffer();
  base::AppendLE64(payload, checksum);
  // Crash-atomic replacement: a reader at `path` sees the old complete
  // file or the new complete file, never a partial write.
  return base::WriteFileAtomic(path, payload);
}

StatusOr<ClientBundle> LoadClientBundle(const std::string& path) {
  GEOPRIV_ASSIGN_OR_RETURN(const std::string contents,
                           base::ReadFileToString(path));
  Reader reader(contents);
  char magic[4];
  if (!reader.Bytes(magic, sizeof(magic))) {
    return Status::InvalidArgument("not a geopriv bundle: " + path);
  }
  if (std::memcmp(magic, kMagicV2, sizeof(kMagicV2)) == 0) {
    return Status::InvalidArgument(
        "'" + path +
        "' is a v2 region bundle (GPB2); load it with "
        "bundle::RegionBundleView, not LoadClientBundle");
  }
  if (std::memcmp(magic, kMagic, sizeof(kMagic)) != 0) {
    return Status::InvalidArgument("not a geopriv bundle: " + path);
  }
  uint32_t sentinel = 0;
  if (!reader.U32(&sentinel) || sentinel != base::kEndianSentinel) {
    if (sentinel == base::kEndianSentinelSwapped) {
      return Status::InvalidArgument(
          "bundle '" + path +
          "' is byte-swapped (written big-endian against the little-endian "
          "contract); refusing to misparse it");
    }
    return Status::InvalidArgument(
        "bundle '" + path +
        "' has no byte-order sentinel (pre-sentinel layout or corrupt "
        "header)");
  }
  uint32_t version = 0;
  if (!reader.U32(&version) || version != kVersion) {
    return Status::InvalidArgument("unsupported bundle version");
  }
  ClientBundle bundle;
  uint32_t granularity = 0, height = 0, prior_g = 0;
  const bool header_ok =
      reader.F64(&bundle.domain.min_x) && reader.F64(&bundle.domain.min_y) &&
      reader.F64(&bundle.domain.max_x) && reader.F64(&bundle.domain.max_y) &&
      reader.F64(&bundle.eps) && reader.F64(&bundle.rho) &&
      reader.U32(&granularity) && reader.U32(&height);
  if (!header_ok || height > 20) {
    return Status::InvalidArgument("truncated or corrupt bundle header");
  }
  bundle.granularity = static_cast<int>(granularity);
  bundle.budget.per_level.resize(height);
  for (uint32_t i = 0; i < height; ++i) {
    if (!reader.F64(&bundle.budget.per_level[i])) {
      return Status::InvalidArgument("truncated bundle budgets");
    }
  }
  if (!reader.U32(&prior_g) || prior_g > 4096) {
    return Status::InvalidArgument("corrupt bundle prior header");
  }
  bundle.prior_granularity = static_cast<int>(prior_g);
  bundle.prior_mass.resize(static_cast<size_t>(prior_g) * prior_g);
  for (double& m : bundle.prior_mass) {
    if (!reader.F64(&m)) {
      return Status::InvalidArgument("truncated bundle prior");
    }
  }
  const uint64_t expected = reader.checksum();
  uint64_t stored = 0;
  unsigned char stored_buf[8];
  if (!reader.Bytes(stored_buf, sizeof(stored_buf))) {
    return Status::InvalidArgument("truncated bundle checksum");
  }
  stored = base::LoadLE64(stored_buf);
  if (stored != expected) {
    return Status::InvalidArgument("bundle checksum mismatch");
  }
  GEOPRIV_RETURN_IF_ERROR(bundle.Validate());
  return bundle;
}

StatusOr<ClientBundle> BuildClientBundle(
    geo::BBox domain, const std::vector<geo::Point>& checkins, double eps,
    int granularity, double rho, int prior_granularity) {
  GEOPRIV_ASSIGN_OR_RETURN(
      prior::Prior prior,
      prior::Prior::FromPoints(domain, prior_granularity, checkins));
  // Index height: stop when leaf cells would shrink below ~40 m (GPS
  // accuracy), as in the LocationSanitizer facade.
  constexpr double kMinCellKm = 0.04;
  int height = 1;
  double side = std::max(domain.Width(), domain.Height()) / granularity;
  while (height < 10 && side / granularity > kMinCellKm) {
    side /= granularity;
    ++height;
  }
  GEOPRIV_ASSIGN_OR_RETURN(
      spatial::HierarchicalGrid grid,
      spatial::HierarchicalGrid::Create(domain, granularity, height));
  BudgetOptions budget_options;
  budget_options.rho = rho;
  GEOPRIV_ASSIGN_OR_RETURN(BudgetAllocation budget,
                           AllocateBudget(eps, grid, budget_options));
  ClientBundle bundle;
  bundle.domain = domain;
  bundle.eps = eps;
  bundle.rho = rho;
  bundle.granularity = granularity;
  bundle.budget = std::move(budget);
  bundle.prior_granularity = prior_granularity;
  bundle.prior_mass.resize(
      static_cast<size_t>(prior_granularity) * prior_granularity);
  for (size_t i = 0; i < bundle.prior_mass.size(); ++i) {
    bundle.prior_mass[i] = prior.mass(static_cast<int>(i));
  }
  GEOPRIV_RETURN_IF_ERROR(bundle.Validate());
  return bundle;
}

StatusOr<MultiStepMechanism> MechanismFromBundle(const ClientBundle& bundle) {
  GEOPRIV_RETURN_IF_ERROR(bundle.Validate());
  GEOPRIV_ASSIGN_OR_RETURN(
      prior::Prior prior,
      prior::Prior::FromMasses(bundle.domain, bundle.prior_granularity,
                               bundle.prior_mass));
  GEOPRIV_ASSIGN_OR_RETURN(
      spatial::HierarchicalGrid grid,
      spatial::HierarchicalGrid::Create(bundle.domain, bundle.granularity,
                                        bundle.budget.height()));
  MsmOptions options;
  options.budget.policy = BudgetPolicy::kCustom;
  options.budget.fixed_height = bundle.budget.height();
  options.budget.custom_weights = bundle.budget.per_level;
  options.budget.rho = bundle.rho;
  return MultiStepMechanism::Create(
      bundle.eps,
      std::make_shared<spatial::HierarchicalGrid>(std::move(grid)),
      std::make_shared<prior::Prior>(std::move(prior)), options);
}

}  // namespace geopriv::core
