#include "core/node_cache.h"

#include <limits>
#include <utility>

#include "base/check.h"
#include "obs/trace.h"

namespace geopriv::core {

NodeMechanismCache::NodeMechanismCache(int num_shards, size_t byte_budget)
    : shards_(static_cast<size_t>(num_shards > 0 ? num_shards : 1)),
      byte_budget_(byte_budget) {}

StatusOr<NodeMechanismCache::MechanismPtr> NodeMechanismCache::GetOrCompute(
    spatial::NodeIndex node, const Factory& factory, bool* cache_hit) {
  Shard& shard = ShardFor(node);
  lookups_.fetch_add(1, std::memory_order_relaxed);

  // Fast path: shared-lock lookup; a ready entry needs no further locking.
  {
    std::shared_lock<std::shared_mutex> lock(shard.mu);
    auto it = shard.map.find(node);
    if (it != shard.map.end() &&
        it->second->ready.load(std::memory_order_acquire)) {
      if (cache_hit != nullptr) *cache_hit = true;
      hits_.fetch_add(1, std::memory_order_relaxed);
      if (!it->second->status.ok()) return it->second->status;
      it->second->last_used.store(NextTick(), std::memory_order_relaxed);
      return it->second->mech;
    }
  }
  if (cache_hit != nullptr) *cache_hit = false;

  // Slow path: claim or join the in-flight build for this node.
  std::shared_ptr<Entry> entry;
  bool owner = false;
  {
    std::unique_lock<std::shared_mutex> lock(shard.mu);
    auto it = shard.map.find(node);
    if (it == shard.map.end()) {
      entry = std::make_shared<Entry>();
      shard.map.emplace(node, entry);
      owner = true;
    } else {
      entry = it->second;
    }
  }

  if (!owner) {
    // Another thread is (or was) building this node: wait for its result.
    // Our Entry handle keeps the result alive even if the entry is
    // evicted or cleared while we wait.
    if (!entry->ready.load(std::memory_order_acquire)) {
      singleflight_waits_.fetch_add(1, std::memory_order_relaxed);
      obs::RequestTrace* const trace = obs::ActiveTrace();
      const uint64_t wait_start = trace != nullptr ? obs::NowTicks() : 0;
      std::unique_lock<std::mutex> lock(entry->mu);
      entry->cv.wait(lock, [&] {
        return entry->ready.load(std::memory_order_acquire);
      });
      if (trace != nullptr) {
        trace->Emit(obs::SpanKind::kSingleflightWait, wait_start,
                    obs::NowTicks(), static_cast<int64_t>(node));
      }
    }
    if (!entry->status.ok()) return entry->status;
    return entry->mech;
  }

  // We own the build. Run the factory outside every lock so other shards
  // (and other nodes of this shard, via waiters) stay unblocked.
  auto built = factory();
  {
    std::lock_guard<std::mutex> lock(entry->mu);
    if (built.ok()) {
      entry->mech = MechanismPtr(std::move(built).value());
      GEOPRIV_CHECK_MSG(entry->mech != nullptr,
                        "node factory returned a null mechanism");
    } else {
      entry->status = built.status();
    }
    entry->ready.store(true, std::memory_order_release);
  }
  entry->cv.notify_all();

  if (!entry->status.ok()) {
    // Drop the failed entry so a later request can retry (waiters keep
    // their Entry handle alive until they have read the status).
    std::unique_lock<std::shared_mutex> lock(shard.mu);
    auto it = shard.map.find(node);
    if (it != shard.map.end() && it->second == entry) shard.map.erase(it);
    return entry->status;
  }

  // Charge the completed entry, unless Clear() raced the build away (then
  // the mechanism lives only as long as callers hold it and is never
  // resident).
  const size_t bytes = entry->mech->MemoryFootprintBytes();
  {
    std::unique_lock<std::shared_mutex> lock(shard.mu);
    auto it = shard.map.find(node);
    if (it != shard.map.end() && it->second == entry) {
      entry->bytes = bytes;
      entry->last_used.store(NextTick(), std::memory_order_relaxed);
      bytes_resident_.fetch_add(bytes, std::memory_order_relaxed);
      BumpGeneration();
    }
  }
  if (byte_budget_ > 0) EvictToBudget();
  return entry->mech;
}

Status NodeMechanismCache::Publish(spatial::NodeIndex node,
                                   MechanismPtr mech) {
  if (mech == nullptr) {
    return Status::InvalidArgument("cannot publish a null mechanism");
  }
  const size_t bytes = mech->MemoryFootprintBytes();
  Shard& shard = ShardFor(node);
  {
    std::unique_lock<std::shared_mutex> lock(shard.mu);
    if (shard.map.contains(node)) {
      return Status::FailedPrecondition(
          "node " + std::to_string(static_cast<long long>(node)) +
          " is already cached; refusing to replace it");
    }
    auto entry = std::make_shared<Entry>();
    entry->mech = std::move(mech);
    entry->bytes = bytes;
    entry->last_used.store(NextTick(), std::memory_order_relaxed);
    entry->ready.store(true, std::memory_order_release);
    shard.map.emplace(node, std::move(entry));
    bytes_resident_.fetch_add(bytes, std::memory_order_relaxed);
    BumpGeneration();
  }
  if (byte_budget_ > 0) EvictToBudget();
  return Status::OK();
}

NodeMechanismCache::MechanismPtr NodeMechanismCache::TryGet(
    spatial::NodeIndex node) {
  Shard& shard = ShardFor(node);
  std::shared_lock<std::shared_mutex> lock(shard.mu);
  auto it = shard.map.find(node);
  if (it == shard.map.end() ||
      !it->second->ready.load(std::memory_order_acquire) ||
      !it->second->status.ok()) {
    return nullptr;
  }
  return it->second->mech;
}

bool NodeMechanismCache::Evictable(const std::shared_ptr<Entry>& entry) {
  return entry->ready.load(std::memory_order_acquire) &&
         entry->status.ok() && entry->bytes > 0 &&
         entry.use_count() == 1 && entry->mech.use_count() == 1;
}

bool NodeMechanismCache::TryEvictOne() {
  // Phase 1: find the globally least-recently-used evictable entry.
  size_t best_shard = shards_.size();
  spatial::NodeIndex best_node = 0;
  uint64_t best_tick = std::numeric_limits<uint64_t>::max();
  for (size_t s = 0; s < shards_.size(); ++s) {
    std::shared_lock<std::shared_mutex> lock(shards_[s].mu);
    for (const auto& [node, entry] : shards_[s].map) {
      if (!Evictable(entry)) continue;
      const uint64_t t = entry->last_used.load(std::memory_order_relaxed);
      if (t < best_tick) {
        best_tick = t;
        best_shard = s;
        best_node = node;
      }
    }
  }
  if (best_shard == shards_.size()) return false;

  // Phase 2: re-validate under the unique lock (the entry may have been
  // hit, pinned, or already evicted since phase 1) and erase. Returning
  // true without progress is fine — the caller's attempt loop is bounded.
  Shard& shard = shards_[best_shard];
  std::unique_lock<std::shared_mutex> lock(shard.mu);
  auto it = shard.map.find(best_node);
  if (it == shard.map.end() || !Evictable(it->second)) return true;
  bytes_resident_.fetch_sub(it->second->bytes, std::memory_order_relaxed);
  evictions_.fetch_add(1, std::memory_order_relaxed);
  shard.map.erase(it);
  BumpGeneration();
  return true;
}

void NodeMechanismCache::EvictToBudget() {
  if (byte_budget_ == 0) return;
  // The attempt bound keeps a pathological race (entries re-pinned
  // between the two phases forever) from spinning; in practice one pass
  // per over-budget entry suffices.
  const int max_attempts = 64 + 2 * static_cast<int>(shards_.size());
  for (int attempt = 0; attempt < max_attempts; ++attempt) {
    if (bytes_resident_.load(std::memory_order_relaxed) <= byte_budget_) {
      return;
    }
    if (!TryEvictOne()) return;  // everything left is pinned or in flight
  }
}

size_t NodeMechanismCache::size() const {
  size_t total = 0;
  for (const Shard& shard : shards_) {
    std::shared_lock<std::shared_mutex> lock(shard.mu);
    for (const auto& [node, entry] : shard.map) {
      if (entry->ready.load(std::memory_order_acquire) &&
          entry->status.ok()) {
        ++total;
      }
    }
  }
  return total;
}

void NodeMechanismCache::Clear() {
  for (Shard& shard : shards_) {
    std::unique_lock<std::shared_mutex> lock(shard.mu);
    for (const auto& [node, entry] : shard.map) {
      if (entry->bytes > 0) {
        bytes_resident_.fetch_sub(entry->bytes, std::memory_order_relaxed);
      }
    }
    shard.map.clear();
  }
  BumpGeneration();
}

}  // namespace geopriv::core
