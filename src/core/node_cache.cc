#include "core/node_cache.h"

#include <utility>

#include "base/check.h"

namespace geopriv::core {

NodeMechanismCache::NodeMechanismCache(int num_shards)
    : shards_(static_cast<size_t>(num_shards > 0 ? num_shards : 1)) {}

StatusOr<const mechanisms::OptimalMechanism*>
NodeMechanismCache::GetOrCompute(spatial::NodeIndex node,
                                 const Factory& factory, bool* cache_hit) {
  Shard& shard = ShardFor(node);

  // Fast path: shared-lock lookup; a ready entry needs no further locking.
  {
    std::shared_lock<std::shared_mutex> lock(shard.mu);
    auto it = shard.map.find(node);
    if (it != shard.map.end() &&
        it->second->ready.load(std::memory_order_acquire)) {
      if (cache_hit != nullptr) *cache_hit = true;
      if (!it->second->status.ok()) return it->second->status;
      return const_cast<const mechanisms::OptimalMechanism*>(
          it->second->mech.get());
    }
  }
  if (cache_hit != nullptr) *cache_hit = false;

  // Slow path: claim or join the in-flight build for this node.
  std::shared_ptr<Entry> entry;
  bool owner = false;
  {
    std::unique_lock<std::shared_mutex> lock(shard.mu);
    auto it = shard.map.find(node);
    if (it == shard.map.end()) {
      entry = std::make_shared<Entry>();
      shard.map.emplace(node, entry);
      owner = true;
    } else {
      entry = it->second;
    }
  }

  if (!owner) {
    // Another thread is (or was) building this node: wait for its result.
    if (!entry->ready.load(std::memory_order_acquire)) {
      singleflight_waits_.fetch_add(1, std::memory_order_relaxed);
      std::unique_lock<std::mutex> lock(entry->mu);
      entry->cv.wait(lock, [&] {
        return entry->ready.load(std::memory_order_acquire);
      });
    }
    if (!entry->status.ok()) return entry->status;
    return const_cast<const mechanisms::OptimalMechanism*>(entry->mech.get());
  }

  // We own the build. Run the factory outside every lock so other shards
  // (and other nodes of this shard, via waiters) stay unblocked.
  auto built = factory();
  {
    std::lock_guard<std::mutex> lock(entry->mu);
    if (built.ok()) {
      entry->mech = std::move(built).value();
      GEOPRIV_CHECK_MSG(entry->mech != nullptr,
                        "node factory returned a null mechanism");
    } else {
      entry->status = built.status();
    }
    entry->ready.store(true, std::memory_order_release);
  }
  entry->cv.notify_all();

  if (!entry->status.ok()) {
    // Drop the failed entry so a later request can retry (waiters keep
    // their shared_ptr alive until they have read the status).
    std::unique_lock<std::shared_mutex> lock(shard.mu);
    auto it = shard.map.find(node);
    if (it != shard.map.end() && it->second == entry) shard.map.erase(it);
    return entry->status;
  }
  return const_cast<const mechanisms::OptimalMechanism*>(entry->mech.get());
}

size_t NodeMechanismCache::size() const {
  size_t total = 0;
  for (const Shard& shard : shards_) {
    std::shared_lock<std::shared_mutex> lock(shard.mu);
    for (const auto& [node, entry] : shard.map) {
      if (entry->ready.load(std::memory_order_acquire) &&
          entry->status.ok()) {
        ++total;
      }
    }
  }
  return total;
}

void NodeMechanismCache::Clear() {
  for (Shard& shard : shards_) {
    std::unique_lock<std::shared_mutex> lock(shard.mu);
    shard.map.clear();
  }
}

}  // namespace geopriv::core
