#include "core/budget.h"

#include <algorithm>
#include <cmath>

#include "mathx/lattice_sum.h"

namespace geopriv::core {

namespace {

constexpr double kBudgetEpsilon = 1e-9;

StatusOr<BudgetAllocation> AllocateRhoMinimal(
    double eps, const spatial::HierarchicalPartition& index,
    const BudgetOptions& options) {
  const int limit = options.fixed_height > 0
                        ? options.fixed_height
                        : std::min(options.max_height, index.height());
  if (limit < 1) {
    return Status::InvalidArgument("allocation needs at least one level");
  }
  // Minimal per-level requirements (Problem 1 at each level's cell side).
  std::vector<double> need(limit);
  for (int i = 0; i < limit; ++i) {
    const double side = index.TypicalCellSide(i + 1);
    if (!(side > 0.0)) {
      return Status::InvalidArgument("index has a level with no cells");
    }
    GEOPRIV_ASSIGN_OR_RETURN(need[i],
                             mathx::MinBudgetForSelfMapping(options.rho,
                                                            side));
  }

  BudgetAllocation result;
  if (options.fixed_height > 0) {
    // Fixed layout: secure levels 1..h-1 at their minimum, give the rest to
    // the leaf level; if the minimums cannot all be met, scale
    // proportionally to the requirements.
    double upper_need = 0.0;
    for (int i = 0; i < limit - 1; ++i) upper_need += need[i];
    if (upper_need < eps) {
      result.per_level.assign(need.begin(), need.begin() + (limit - 1));
      result.per_level.push_back(eps - upper_need);
    } else {
      double total_need = upper_need + need[limit - 1];
      result.per_level.resize(limit);
      for (int i = 0; i < limit; ++i) {
        result.per_level[i] = eps * need[i] / total_need;
      }
    }
    return result;
  }

  // Algorithm 2: walk down, give each level min(requirement, remaining),
  // stop when the budget is spent.
  double remaining = eps;
  for (int i = 0; i < limit && remaining > kBudgetEpsilon; ++i) {
    const double eps_i = std::min(need[i], remaining);
    result.per_level.push_back(eps_i);
    remaining -= eps_i;
  }
  // Deeper than the index allows (or the cap): leftover budget only helps,
  // so spend it on the finest level reached.
  if (remaining > kBudgetEpsilon && !result.per_level.empty()) {
    result.per_level.back() += remaining;
  }
  return result;
}

}  // namespace

StatusOr<BudgetAllocation> AllocateBudget(
    double eps, const spatial::HierarchicalPartition& index,
    const BudgetOptions& options) {
  if (!(eps > 0.0)) {
    return Status::InvalidArgument("eps must be positive");
  }
  if (!(options.rho > 0.0 && options.rho < 1.0)) {
    return Status::InvalidArgument("rho must lie in (0, 1)");
  }
  if (options.fixed_height > index.height()) {
    return Status::InvalidArgument("fixed_height exceeds index height");
  }
  if (options.max_height < 1) {
    return Status::InvalidArgument("max_height must be >= 1");
  }

  const int h = options.fixed_height > 0
                    ? options.fixed_height
                    : std::min(options.max_height, index.height());

  BudgetAllocation result;
  switch (options.policy) {
    case BudgetPolicy::kRhoMinimal:
      return AllocateRhoMinimal(eps, index, options);
    case BudgetPolicy::kUniform:
      result.per_level.assign(h, eps / h);
      return result;
    case BudgetPolicy::kGeometric: {
      double total = 0.0;
      std::vector<double> weights(h);
      for (int i = 0; i < h; ++i) {
        const double side = index.TypicalCellSide(i + 1);
        if (!(side > 0.0)) {
          return Status::InvalidArgument("index has a level with no cells");
        }
        weights[i] = 1.0 / side;
        total += weights[i];
      }
      result.per_level.resize(h);
      for (int i = 0; i < h; ++i) {
        result.per_level[i] = eps * weights[i] / total;
      }
      return result;
    }
    case BudgetPolicy::kCustom: {
      if (static_cast<int>(options.custom_weights.size()) != h) {
        return Status::InvalidArgument(
            "custom_weights size must equal the allocation height");
      }
      double total = 0.0;
      for (double w : options.custom_weights) {
        if (!(w > 0.0)) {
          return Status::InvalidArgument("custom weights must be positive");
        }
        total += w;
      }
      result.per_level.resize(h);
      for (int i = 0; i < h; ++i) {
        result.per_level[i] = eps * options.custom_weights[i] / total;
      }
      return result;
    }
  }
  return Status::Internal("unknown budget policy");
}

}  // namespace geopriv::core
