// High-level facade: everything a location-based app needs to sanitize
// coordinates on-device with geo-indistinguishability.
//
//   auto sanitizer = LocationSanitizer::Builder()
//                        .SetRegionLatLon(30.1927, -97.8698,
//                                         30.3723, -97.6618)
//                        .SetEpsilon(0.5)
//                        .AddCheckinsLatLon(history)   // optional prior
//                        .Build();
//   auto [lat, lon] = sanitizer->SanitizeLatLon(30.27, -97.74);
//
// Internally: WGS84 -> planar km projection, a check-in prior (or uniform),
// a hierarchical grid index, budget allocation, and the multi-step
// mechanism. All state lives on the client; nothing is sent anywhere.

#ifndef GEOPRIV_CORE_LOCATION_SANITIZER_H_
#define GEOPRIV_CORE_LOCATION_SANITIZER_H_

#include <cstddef>
#include <memory>
#include <utility>
#include <vector>

#include "base/status.h"
#include "core/msm.h"
#include "geo/projection.h"
#include "rng/rng.h"

namespace geopriv::core {

struct LatLon {
  double lat = 0.0;
  double lon = 0.0;
};

class LocationSanitizer {
 public:
  class Builder {
   public:
    // Study region as a lat/lon box (south-west / north-east corners).
    Builder& SetRegionLatLon(double min_lat, double min_lon, double max_lat,
                             double max_lon);
    // Total privacy budget (required, > 0). Lower = stronger privacy.
    Builder& SetEpsilon(double eps);
    // Index fanout per axis (default 4) and budget target rho (default
    // 0.8).
    Builder& SetGranularity(int g);
    Builder& SetRho(double rho);
    // Resolution of the prior histogram (default 128).
    Builder& SetPriorGranularity(int g);
    // Historical check-ins that shape the prior; without them the prior is
    // uniform.
    Builder& AddCheckinsLatLon(const std::vector<LatLon>& checkins);
    Builder& SetSeed(uint64_t seed);
    Builder& SetUtilityMetric(geo::UtilityMetric metric);
    // Wall-clock cap per node LP solve (default: unlimited). With a cap
    // set, use the *OrStatus sanitize variants: a solve that exceeds it
    // fails with kDeadlineExceeded instead of completing.
    Builder& SetLpTimeLimitSeconds(double seconds);
    // Byte budget for the resident per-node OPT matrices; past it the
    // node cache evicts least-recently-used unpinned entries (in-use
    // mechanisms are never freed under a reader). 0 = unbounded.
    Builder& SetCacheByteBudget(size_t bytes);
    // Worker pool for parallel LP construction (pricing scans, cost
    // tables, simplex kernels). Not owned; must outlive the sanitizer.
    // Builds never block on the pool, so it is safe to share the serving
    // pool. Null (the default) keeps construction serial.
    Builder& SetConstructionPool(ThreadPool* pool);

    StatusOr<LocationSanitizer> Build();

   private:
    double min_lat_ = 0.0, min_lon_ = 0.0, max_lat_ = 0.0, max_lon_ = 0.0;
    bool region_set_ = false;
    double eps_ = 0.0;
    int granularity_ = 4;
    double rho_ = 0.8;
    int prior_granularity_ = 128;
    std::vector<LatLon> checkins_;
    uint64_t seed_ = 0x5EED5EED5EEDull;
    geo::UtilityMetric metric_ = geo::UtilityMetric::kEuclidean;
    double lp_time_limit_seconds_ = 0.0;  // 0 = unlimited
    size_t cache_byte_budget_ = 0;        // 0 = unbounded
    ThreadPool* construction_pool_ = nullptr;
  };

  // Sanitizes one coordinate pair. Coordinates outside the configured
  // region are clamped to it first. Aborts on mechanism failure — which
  // cannot happen with the default (unlimited) solver options; callers
  // that configure LP limits must use the *OrStatus variants instead.
  LatLon SanitizeLatLon(double lat, double lon);

  // Planar-kilometre variant (the frame used by the experiment harness).
  geo::Point Sanitize(geo::Point actual);

  // Status-returning variants: solver limits (e.g. an LP time limit
  // configured for serving deadlines) surface as kDeadlineExceeded /
  // kResourceExhausted instead of aborting the process.
  StatusOr<geo::Point> SanitizeOrStatus(geo::Point actual);
  StatusOr<LatLon> SanitizeLatLonOrStatus(double lat, double lon);

  // External-Rng variants for concurrent callers: thread-safe as long as
  // each thread passes its own Rng (the mechanism's node cache is shared
  // and synchronized). The internal-Rng overloads above are not
  // thread-safe — they all draw from the builder-seeded member Rng.
  StatusOr<geo::Point> SanitizeOrStatus(geo::Point actual,
                                        rng::Rng& rng) const;
  StatusOr<LatLon> SanitizeLatLonOrStatus(double lat, double lon,
                                          rng::Rng& rng) const;

  // Amortizes per-point overhead across a batch of sanitize calls: one
  // walker holds one node-mechanism memo, so each tree node's cache
  // lookup is paid once per batch instead of once per point. Draws from
  // the caller's Rng exactly as the equivalent sequence of
  // SanitizeOrStatus calls would (bit-identical for a fixed seed). Not
  // thread-safe; create one walker per thread/batch, and keep it no
  // longer than the batch — its memo pins the mechanisms it touched. The
  // sanitizer must outlive the walker.
  class BatchWalker {
   public:
    explicit BatchWalker(const LocationSanitizer& sanitizer)
        : sanitizer_(sanitizer) {}

    // The memo's pins made its entries unevictable for the walker's
    // lifetime; releasing them may leave a bounded cache over budget with
    // no future insert to re-trigger eviction, so sweep it here.
    ~BatchWalker() {
      memo_.clear();
      sanitizer_.msm_->cache().EvictToBudget();
    }

    BatchWalker(const BatchWalker&) = delete;
    BatchWalker& operator=(const BatchWalker&) = delete;

    StatusOr<geo::Point> Sanitize(geo::Point actual, rng::Rng& rng) {
      return sanitizer_.msm_->ReportOrStatus(
          sanitizer_.domain_km_.Clamp(actual), rng, &memo_);
    }
    StatusOr<LatLon> SanitizeLatLon(double lat, double lon, rng::Rng& rng) {
      GEOPRIV_ASSIGN_OR_RETURN(
          const geo::Point reported,
          Sanitize(sanitizer_.projection_.Forward(lat, lon), rng));
      LatLon out;
      sanitizer_.projection_.Inverse(reported, &out.lat, &out.lon);
      return out;
    }

   private:
    const LocationSanitizer& sanitizer_;
    MultiStepMechanism::NodeMemo memo_;
  };

  // Pre-solves the LPs of the `k` internal index nodes with the largest
  // prior mass (root-down), so first traffic hits a warm cache. Safe to
  // call concurrently with sanitize traffic. Returns the number of nodes
  // now resident.
  StatusOr<int> PrewarmTopNodes(int k) const {
    return msm_->PrewarmTopNodes(k);
  }
  // Parallel variant: independent frontier nodes (siblings, cousins)
  // build concurrently on `pool`, ancestors always before descendants.
  StatusOr<int> PrewarmTopNodes(int k, ThreadPool* pool) const {
    return msm_->PrewarmTopNodes(k, pool);
  }

  // Assembles a sanitizer from pre-built parts — the bundle loader's
  // entry point, which reconstructs projection/domain/mechanism from a
  // serialized region instead of running the Builder pipeline. The parts
  // must be mutually consistent (domain_km is the mechanism's index
  // bounds; granularity its index fanout); callers other than the loader
  // should use the Builder.
  static LocationSanitizer FromParts(geo::EquirectangularProjection projection,
                                     geo::BBox domain_km,
                                     std::unique_ptr<MultiStepMechanism> msm,
                                     uint64_t seed, int granularity,
                                     double eps) {
    return LocationSanitizer(projection, domain_km, std::move(msm), seed,
                             granularity, eps);
  }

  // The privacy budget split the cost model chose.
  const BudgetAllocation& budget() const { return msm_->budget(); }

  MultiStepMechanism& mechanism() { return *msm_; }
  const MultiStepMechanism& mechanism() const { return *msm_; }
  const geo::EquirectangularProjection& projection() const {
    return projection_;
  }
  // Study region in the planar km frame.
  const geo::BBox& domain_km() const { return domain_km_; }
  // Index fanout per axis; the effective leaf grid is granularity^height
  // cells per axis.
  int granularity() const { return granularity_; }
  double epsilon() const { return eps_; }

 private:
  LocationSanitizer(geo::EquirectangularProjection projection,
                    geo::BBox domain_km,
                    std::unique_ptr<MultiStepMechanism> msm, uint64_t seed,
                    int granularity, double eps)
      : projection_(projection),
        domain_km_(domain_km),
        msm_(std::move(msm)),
        rng_(seed),
        granularity_(granularity),
        eps_(eps) {}

  geo::EquirectangularProjection projection_;
  geo::BBox domain_km_;
  std::unique_ptr<MultiStepMechanism> msm_;
  rng::Rng rng_;
  int granularity_ = 4;
  double eps_ = 0.0;
};

}  // namespace geopriv::core

#endif  // GEOPRIV_CORE_LOCATION_SANITIZER_H_
