// Sparse linear-program builder:
//
//   minimize (or maximize)  c' x
//   subject to              a_i' x {<=, =, >=} b_i   for every constraint i
//                           lb_j <= x_j <= ub_j      for every variable j
//
// Columns are stored sparsely; the builder supports incremental growth
// (adding variables/columns after constraints exist), which the optimal
// mechanism's column-generation loop relies on.

#ifndef GEOPRIV_LP_MODEL_H_
#define GEOPRIV_LP_MODEL_H_

#include <cstddef>
#include <limits>
#include <vector>

#include "base/status.h"

namespace geopriv::lp {

inline constexpr double kInfinity = std::numeric_limits<double>::infinity();

enum class ObjectiveSense { kMinimize, kMaximize };
enum class ConstraintSense { kLessEqual, kEqual, kGreaterEqual };

// One sparse entry: coefficient `value` of variable `var`.
struct Coefficient {
  int var;
  double value;
};

class Model {
 public:
  explicit Model(ObjectiveSense sense = ObjectiveSense::kMinimize)
      : sense_(sense) {}

  // Adds a variable with box bounds and objective coefficient; returns its
  // index. Bounds may be +-kInfinity.
  int AddVariable(double lb, double ub, double objective);

  // Adds a constraint over existing variables; returns its index.
  int AddConstraint(ConstraintSense sense, double rhs,
                    std::vector<Coefficient> terms);

  // Appends a coefficient for variable `var` to an existing constraint.
  // Used when a variable is created after the constraint.
  void AddCoefficient(int constraint, int var, double value);

  int num_variables() const { return static_cast<int>(obj_.size()); }
  int num_constraints() const { return static_cast<int>(rhs_.size()); }

  ObjectiveSense sense() const { return sense_; }
  double objective_coefficient(int var) const { return obj_[var]; }
  double lower_bound(int var) const { return lb_[var]; }
  double upper_bound(int var) const { return ub_[var]; }
  ConstraintSense constraint_sense(int i) const { return row_sense_[i]; }
  double rhs(int i) const { return rhs_[i]; }
  const std::vector<Coefficient>& row(int i) const { return rows_[i]; }

  // Validates internal consistency (indices in range, finite coefficients,
  // lb <= ub).
  Status Validate() const;

 private:
  ObjectiveSense sense_;
  std::vector<double> obj_;
  std::vector<double> lb_;
  std::vector<double> ub_;
  std::vector<ConstraintSense> row_sense_;
  std::vector<double> rhs_;
  std::vector<std::vector<Coefficient>> rows_;
};

}  // namespace geopriv::lp

#endif  // GEOPRIV_LP_MODEL_H_
