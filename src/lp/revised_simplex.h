// Revised primal simplex with bounded variables.
//
// Solves Model (min/max c'x, sparse rows, box bounds) via the classical
// two-phase method: phase 1 minimizes the sum of artificial variables to
// find a feasible basis, phase 2 optimizes the true objective. The basis
// inverse is kept explicitly (dense, row-major) and maintained with
// product-form (eta) updates, rebuilt from scratch every
// `refactorization_interval` pivots to bound floating-point drift.
//
// Warm starting: Solve() can resume from a Basis captured by a previous
// call. This matters for column generation (the optimal GeoInd mechanism):
// after appending variables to the model, the old basis is still feasible
// and the solver continues without a phase 1.

#ifndef GEOPRIV_LP_REVISED_SIMPLEX_H_
#define GEOPRIV_LP_REVISED_SIMPLEX_H_

#include <cstdint>
#include <vector>

#include "lp/model.h"
#include "lp/solution.h"

namespace geopriv::lp {

// Nonbasic/basic status of one variable (structural or slack).
enum class VarStatus : uint8_t {
  kAtLower = 0,
  kAtUpper = 1,
  kFree = 2,  // nonbasic free variable pinned at 0
  kBasic = 3,
};

// Snapshot of a simplex basis: `basic[i]` is the variable occupying row i
// (structural indices first, then slacks N..N+m-1); `status` has one entry
// per structural-plus-slack variable.
struct Basis {
  std::vector<int> basic;
  std::vector<VarStatus> status;

  bool empty() const { return basic.empty(); }
};

class RevisedSimplex {
 public:
  // Solves `model`. If `warm` is non-null and non-empty, tries to start from
  // it (falls back to a cold start if the basis is unusable). If `out_basis`
  // is non-null, stores the final basis for later warm starts.
  static LpSolution Solve(const Model& model, const SolverOptions& options,
                          const Basis* warm = nullptr,
                          Basis* out_basis = nullptr);
};

}  // namespace geopriv::lp

#endif  // GEOPRIV_LP_REVISED_SIMPLEX_H_
