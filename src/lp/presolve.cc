#include "lp/presolve.h"

#include <cmath>
#include <limits>

namespace geopriv::lp {

namespace {

constexpr double kFeasTol = 1e-9;

bool RowHoldsTrivially(ConstraintSense sense, double activity, double rhs) {
  switch (sense) {
    case ConstraintSense::kLessEqual:
      return activity <= rhs + kFeasTol;
    case ConstraintSense::kGreaterEqual:
      return activity >= rhs - kFeasTol;
    case ConstraintSense::kEqual:
      return std::abs(activity - rhs) <= kFeasTol;
  }
  return false;
}

}  // namespace

std::vector<double> PresolveResult::RestoreSolution(
    const std::vector<double>& reduced_x) const {
  std::vector<double> x(fixed_value);
  for (size_t j = 0; j < reduced_to_original.size(); ++j) {
    x[reduced_to_original[j]] = j < reduced_x.size() ? reduced_x[j] : 0.0;
  }
  return x;
}

StatusOr<PresolveResult> Presolve(const Model& model) {
  GEOPRIV_RETURN_IF_ERROR(model.Validate());
  const int n = model.num_variables();
  const int m = model.num_constraints();
  const double nan = std::numeric_limits<double>::quiet_NaN();

  PresolveResult result;
  result.reduced = Model(model.sense());  // preserve the objective sense
  result.fixed_value.assign(n, nan);

  // Working bounds, tightened by singleton rows.
  std::vector<double> lb(n), ub(n);
  for (int j = 0; j < n; ++j) {
    lb[j] = model.lower_bound(j);
    ub[j] = model.upper_bound(j);
  }

  // Pass 1: singleton rows become bounds.
  std::vector<bool> drop_row(m, false);
  for (int i = 0; i < m; ++i) {
    // Net coefficient per variable (rows may carry duplicates).
    int var = -1;
    double coeff = 0.0;
    bool singleton = true;
    for (const Coefficient& t : model.row(i)) {
      if (var >= 0 && t.var != var) {
        singleton = false;
        break;
      }
      var = t.var;
      coeff += t.value;
    }
    if (!singleton || var < 0) continue;
    if (coeff == 0.0) continue;  // handled as an empty row below
    const double bound = model.rhs(i) / coeff;
    const ConstraintSense sense = model.constraint_sense(i);
    // coeff < 0 flips the direction of inequalities.
    const bool upper =
        (sense == ConstraintSense::kLessEqual) == (coeff > 0.0);
    if (sense == ConstraintSense::kEqual) {
      lb[var] = std::max(lb[var], bound);
      ub[var] = std::min(ub[var], bound);
    } else if (upper) {
      ub[var] = std::min(ub[var], bound);
    } else {
      lb[var] = std::max(lb[var], bound);
    }
    drop_row[i] = true;
    ++result.removed_rows;
  }
  for (int j = 0; j < n; ++j) {
    if (lb[j] > ub[j] + kFeasTol) {
      result.infeasible = true;
      return result;
    }
    // Snap nearly-equal bounds to a consistent fixed value.
    if (lb[j] > ub[j]) lb[j] = ub[j];
  }

  // Pass 2: decide which variables survive (non-fixed ones).
  std::vector<int> new_index(n, -1);
  for (int j = 0; j < n; ++j) {
    if (lb[j] == ub[j]) {
      result.fixed_value[j] = lb[j];
      result.objective_offset += model.objective_coefficient(j) * lb[j];
      ++result.removed_variables;
    } else {
      new_index[j] = result.reduced.AddVariable(
          lb[j], ub[j], model.objective_coefficient(j));
      result.reduced_to_original.push_back(j);
    }
  }

  // Pass 3: rewrite surviving rows with fixed variables substituted.
  for (int i = 0; i < m; ++i) {
    if (drop_row[i]) continue;
    double rhs = model.rhs(i);
    double fixed_activity = 0.0;
    std::vector<Coefficient> terms;
    for (const Coefficient& t : model.row(i)) {
      if (new_index[t.var] >= 0) {
        terms.push_back({new_index[t.var], t.value});
      } else {
        fixed_activity += t.value * result.fixed_value[t.var];
      }
    }
    rhs -= fixed_activity;
    if (terms.empty()) {
      // Fully determined row: either trivially true or infeasible.
      if (!RowHoldsTrivially(model.constraint_sense(i), 0.0, rhs)) {
        result.infeasible = true;
        PresolveResult out;
        out.infeasible = true;
        out.fixed_value = std::move(result.fixed_value);
        return out;
      }
      ++result.removed_rows;
      continue;
    }
    result.reduced.AddConstraint(model.constraint_sense(i), rhs,
                                 std::move(terms));
  }
  return result;
}

}  // namespace geopriv::lp
