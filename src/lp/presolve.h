// LP presolve: cheap reductions applied before the simplex/interior-point
// solvers. Handles the patterns that appear in mechanically generated
// programs (like OPT's): fixed variables (lb == ub) are substituted out,
// singleton rows (one nonzero) become variable bounds, and empty rows are
// checked and dropped. Trivial infeasibility is detected without invoking
// a solver.
//
//   auto pre = Presolve(model);
//   if (pre->infeasible) ...;
//   LpSolution reduced_sol = RevisedSimplex::Solve(pre->reduced, options);
//   std::vector<double> x = pre->RestoreSolution(reduced_sol.x);

#ifndef GEOPRIV_LP_PRESOLVE_H_
#define GEOPRIV_LP_PRESOLVE_H_

#include <vector>

#include "base/status.h"
#include "lp/model.h"

namespace geopriv::lp {

struct PresolveResult {
  // The reduced program (empty when `infeasible` is set).
  Model reduced;
  // True when presolve proved the original program infeasible.
  bool infeasible = false;
  // Constant contributed to the original objective by substituted
  // variables: objective(original x) = objective(reduced x) + offset.
  double objective_offset = 0.0;
  // Reduction statistics.
  int removed_variables = 0;
  int removed_rows = 0;

  // Maps a reduced-model solution vector back to the original variable
  // space (substituted variables take their fixed values).
  std::vector<double> RestoreSolution(
      const std::vector<double>& reduced_x) const;

  // Internal bookkeeping (public for tests): original index of each
  // reduced variable, and the fixed value of each original variable that
  // was removed (NaN for surviving variables).
  std::vector<int> reduced_to_original;
  std::vector<double> fixed_value;
};

// Runs the reductions. Fails only on malformed models (Validate()).
StatusOr<PresolveResult> Presolve(const Model& model);

}  // namespace geopriv::lp

#endif  // GEOPRIV_LP_PRESOLVE_H_
