#include "lp/mps_writer.h"

#include <cmath>
#include <fstream>
#include <iomanip>
#include <map>
#include <vector>

namespace geopriv::lp {

namespace {

char SenseChar(ConstraintSense sense) {
  switch (sense) {
    case ConstraintSense::kLessEqual:
      return 'L';
    case ConstraintSense::kEqual:
      return 'E';
    case ConstraintSense::kGreaterEqual:
      return 'G';
  }
  return 'E';
}

void WriteEntry(std::ostream& os, const std::string& col,
                const std::string& row, double value) {
  os << "    " << std::left << std::setw(10) << col << std::setw(10) << row
     << std::setprecision(17) << value << "\n";
}

}  // namespace

Status WriteMps(const Model& model, const std::string& name,
                std::ostream& os) {
  GEOPRIV_RETURN_IF_ERROR(model.Validate());
  const int n = model.num_variables();
  const int m = model.num_constraints();

  os << "NAME          " << name << "\n";
  if (model.sense() == ObjectiveSense::kMaximize) {
    os << "OBJSENSE\n    MAX\n";
  }
  os << "ROWS\n";
  os << " N  COST\n";
  for (int i = 0; i < m; ++i) {
    os << " " << SenseChar(model.constraint_sense(i)) << "  R" << i << "\n";
  }

  // Column-major entries with duplicates summed.
  std::vector<std::map<int, double>> columns(n);
  for (int i = 0; i < m; ++i) {
    for (const Coefficient& t : model.row(i)) {
      columns[t.var][i] += t.value;
    }
  }
  os << "COLUMNS\n";
  for (int j = 0; j < n; ++j) {
    const std::string col = "C" + std::to_string(j);
    if (model.objective_coefficient(j) != 0.0) {
      WriteEntry(os, col, "COST", model.objective_coefficient(j));
    }
    for (const auto& [row, value] : columns[j]) {
      if (value != 0.0) {
        WriteEntry(os, col, "R" + std::to_string(row), value);
      }
    }
  }

  os << "RHS\n";
  for (int i = 0; i < m; ++i) {
    if (model.rhs(i) != 0.0) {
      WriteEntry(os, "RHS1", "R" + std::to_string(i), model.rhs(i));
    }
  }

  os << "BOUNDS\n";
  for (int j = 0; j < n; ++j) {
    const std::string col = "C" + std::to_string(j);
    const double lb = model.lower_bound(j);
    const double ub = model.upper_bound(j);
    const bool lb_finite = std::isfinite(lb);
    const bool ub_finite = std::isfinite(ub);
    if (lb_finite && ub_finite && lb == ub) {
      os << " FX " << std::left << std::setw(10) << "BND1" << std::setw(10)
         << col << std::setprecision(17) << lb << "\n";
      continue;
    }
    if (!lb_finite && !ub_finite) {
      os << " FR " << std::left << std::setw(10) << "BND1" << col << "\n";
      continue;
    }
    // Default MPS lower bound is 0 and upper is +inf; emit only deviations.
    if (lb_finite && lb != 0.0) {
      os << " LO " << std::left << std::setw(10) << "BND1" << std::setw(10)
         << col << std::setprecision(17) << lb << "\n";
    } else if (!lb_finite) {
      os << " MI " << std::left << std::setw(10) << "BND1" << col << "\n";
    }
    if (ub_finite) {
      os << " UP " << std::left << std::setw(10) << "BND1" << std::setw(10)
         << col << std::setprecision(17) << ub << "\n";
    }
  }
  os << "ENDATA\n";
  if (!os) {
    return Status::IoError("stream write failed");
  }
  return Status::OK();
}

Status WriteMpsFile(const Model& model, const std::string& name,
                    const std::string& path) {
  std::ofstream out(path);
  if (!out) {
    return Status::IoError("cannot open " + path + " for writing");
  }
  return WriteMps(model, name, out);
}

}  // namespace geopriv::lp
