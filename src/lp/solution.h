// Common result and option types shared by all LP solvers.

#ifndef GEOPRIV_LP_SOLUTION_H_
#define GEOPRIV_LP_SOLUTION_H_

#include <limits>
#include <string>
#include <vector>

namespace geopriv {
class ThreadPool;
}

namespace geopriv::lp {

enum class SolveStatus {
  kOptimal,
  kInfeasible,
  kUnbounded,
  kIterationLimit,
  kTimeLimit,
  kNumericalError,
  // The instance needs a dense basis inverse larger than
  // SolverOptions::max_basis_rows allows.
  kTooLarge,
};

std::string SolveStatusToString(SolveStatus status);

struct SolverOptions {
  // Wall-clock budget; the solver returns kTimeLimit when exceeded.
  double time_limit_seconds = std::numeric_limits<double>::infinity();
  // Simplex pivots (or interior-point iterations).
  int max_iterations = 1000000;
  double feasibility_tolerance = 1e-8;
  double optimality_tolerance = 1e-8;
  // Simplex: rebuild the basis inverse from scratch every this many pivots
  // to bound accumulated floating-point error. Product-form updates are
  // stable on the well-scaled bases this library produces, so the default
  // refactorizes rarely; lower it for ill-conditioned models.
  int refactorization_interval = 2000;
  // Upper bound on the basis dimension: the revised simplex keeps a dense
  // m x m inverse, so memory grows quadratically with the row count. The
  // default caps that matrix at ~1.2 GB; instances beyond it return
  // kTooLarge instead of exhausting memory.
  int max_basis_rows = 12000;
  // Optional worker pool for the dense O(m^2)/O(m^3) kernels (basis
  // refactorization, rank-1 inverse updates, duals, basic values). The
  // solver never blocks on the pool — helpers are recruited non-blockingly
  // and the solving thread participates — so a null or busy pool just
  // means serial, and it is safe to Solve() from one of the pool's own
  // workers. Parallel and serial runs are bit-identical: every output
  // element keeps its serial accumulation order. Not owned; must outlive
  // the Solve() call.
  ThreadPool* pool = nullptr;
  // Total solver threads (pool helpers + the solving thread); 0 = pool
  // size + 1.
  int threads = 0;
};

struct LpSolution {
  SolveStatus status = SolveStatus::kNumericalError;
  double objective = 0.0;
  // One value per model variable.
  std::vector<double> x;
  // One dual multiplier per model constraint (simplex only; empty for
  // interior point unless converged).
  std::vector<double> duals;
  int iterations = 0;
  double solve_seconds = 0.0;
  // Basis refactorizations performed and their share of solve_seconds
  // (revised simplex only; interior point leaves them zero). Exposed so
  // the observability layer can split a solve into pricing / refactorize /
  // pivoting phases.
  int refactorizations = 0;
  double refactor_seconds = 0.0;

  bool optimal() const { return status == SolveStatus::kOptimal; }
};

}  // namespace geopriv::lp

#endif  // GEOPRIV_LP_SOLUTION_H_
