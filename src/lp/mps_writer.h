// Fixed-format MPS export for Model. Lets users dump any program this
// library builds (e.g. an OPT instance) and cross-check it with an external
// solver — the natural bridge to the paper's Gurobi setup.

#ifndef GEOPRIV_LP_MPS_WRITER_H_
#define GEOPRIV_LP_MPS_WRITER_H_

#include <ostream>
#include <string>

#include "base/status.h"
#include "lp/model.h"

namespace geopriv::lp {

// Writes `model` in MPS format to `os`. Rows are named R0..Rm-1, columns
// C0..Cn-1. Maximization models carry the (widely supported) OBJSENSE
// section. Duplicate coefficients for the same (row, column) pair are
// summed, as MPS requires a single entry.
Status WriteMps(const Model& model, const std::string& name,
                std::ostream& os);

// Convenience: writes to a file.
Status WriteMpsFile(const Model& model, const std::string& name,
                    const std::string& path);

}  // namespace geopriv::lp

#endif  // GEOPRIV_LP_MPS_WRITER_H_
