// Primal-dual interior-point LP solver (Mehrotra predictor-corrector with
// dense normal equations).
//
// Included as the comparison point the paper alludes to in Section 6.1
// ("the dual simplex ... consistently outperformed the primal simplex and
// interior-point methods"); see bench/ablation_lp_solvers. For the small
// per-node programs MSM produces, the simplex with warm starts wins; the
// interior point is competitive on cold, denser instances.

#ifndef GEOPRIV_LP_INTERIOR_POINT_H_
#define GEOPRIV_LP_INTERIOR_POINT_H_

#include "lp/model.h"
#include "lp/solution.h"

namespace geopriv::lp {

class InteriorPoint {
 public:
  // Solves `model`. Detects (primal) infeasibility and unboundedness via
  // divergence heuristics; returns kNumericalError if the normal equations
  // become singular.
  static LpSolution Solve(const Model& model, const SolverOptions& options);
};

}  // namespace geopriv::lp

#endif  // GEOPRIV_LP_INTERIOR_POINT_H_
