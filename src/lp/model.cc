#include "lp/model.h"

#include <cmath>
#include <string>

#include "base/check.h"
#include "lp/solution.h"

namespace geopriv::lp {

std::string SolveStatusToString(SolveStatus status) {
  switch (status) {
    case SolveStatus::kOptimal:
      return "optimal";
    case SolveStatus::kInfeasible:
      return "infeasible";
    case SolveStatus::kUnbounded:
      return "unbounded";
    case SolveStatus::kIterationLimit:
      return "iteration_limit";
    case SolveStatus::kTimeLimit:
      return "time_limit";
    case SolveStatus::kNumericalError:
      return "numerical_error";
    case SolveStatus::kTooLarge:
      return "too_large";
  }
  return "unknown";
}

int Model::AddVariable(double lb, double ub, double objective) {
  GEOPRIV_CHECK_MSG(lb <= ub, "variable bounds must satisfy lb <= ub");
  obj_.push_back(objective);
  lb_.push_back(lb);
  ub_.push_back(ub);
  return static_cast<int>(obj_.size()) - 1;
}

int Model::AddConstraint(ConstraintSense sense, double rhs,
                         std::vector<Coefficient> terms) {
  for (const Coefficient& t : terms) {
    GEOPRIV_CHECK_MSG(t.var >= 0 && t.var < num_variables(),
                      "constraint references unknown variable");
  }
  row_sense_.push_back(sense);
  rhs_.push_back(rhs);
  rows_.push_back(std::move(terms));
  return static_cast<int>(rhs_.size()) - 1;
}

void Model::AddCoefficient(int constraint, int var, double value) {
  GEOPRIV_CHECK_MSG(constraint >= 0 && constraint < num_constraints(),
                    "unknown constraint");
  GEOPRIV_CHECK_MSG(var >= 0 && var < num_variables(), "unknown variable");
  rows_[constraint].push_back({var, value});
}

Status Model::Validate() const {
  for (int j = 0; j < num_variables(); ++j) {
    if (std::isnan(lb_[j]) || std::isnan(ub_[j]) || lb_[j] > ub_[j]) {
      return Status::InvalidArgument("invalid bounds on variable " +
                                     std::to_string(j));
    }
    if (!std::isfinite(obj_[j])) {
      return Status::InvalidArgument("non-finite objective coefficient");
    }
  }
  for (int i = 0; i < num_constraints(); ++i) {
    if (!std::isfinite(rhs_[i])) {
      return Status::InvalidArgument("non-finite right-hand side");
    }
    for (const Coefficient& t : rows_[i]) {
      if (t.var < 0 || t.var >= num_variables()) {
        return Status::InvalidArgument("coefficient references bad variable");
      }
      if (!std::isfinite(t.value)) {
        return Status::InvalidArgument("non-finite constraint coefficient");
      }
    }
  }
  return Status::OK();
}

}  // namespace geopriv::lp
