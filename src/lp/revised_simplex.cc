#include "lp/revised_simplex.h"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <vector>

#include "base/check.h"
#include "base/parallel_for.h"
#include "base/stopwatch.h"
#include "base/thread_pool.h"

namespace geopriv::lp {

namespace {

constexpr double kPivotTol = 1e-9;
constexpr double kZeroTol = 1e-11;
// Consecutive degenerate pivots before switching to Bland's rule.
constexpr int kDegenerateLimit = 200;
// Element operations below which a dense kernel runs inline: the fan-out
// dispatch costs tens of microseconds, so only O(m^2) work on large bases
// is worth shipping to the pool.
constexpr size_t kMinParallelWork = size_t{1} << 17;

struct SparseEntry {
  int row;
  double value;
};

// Internal solver state for one Solve() call.
class Core {
 public:
  Core(const Model& model, const SolverOptions& options)
      : model_(model),
        options_(options),
        m_(model.num_constraints()),
        pool_(options.pool),
        parallelism_(EffectiveParallelism(options.pool, options.threads)) {}

  LpSolution Run(const Basis* warm, Basis* out_basis);

 private:
  enum class StepResult { kOptimal, kUnbounded, kContinue, kSingular };

  void BuildColumns();
  bool ColdStart();
  bool TryWarmStart(const Basis& warm);
  bool Refactorize();
  void ComputeBasicValues();
  StepResult Iterate(const std::vector<double>& cost, bool bland);
  void ComputeDuals(const std::vector<double>& cost,
                    std::vector<double>* pi) const;
  double Objective(const std::vector<double>& cost) const;

  // Runs fn(lo, hi) over contiguous sub-ranges of [0, items), fanned
  // across the options' pool when `work` (element operations) is large
  // enough to amortize the dispatch; a single inline fn(0, items) call
  // otherwise. Because chunks are contiguous and every output element is
  // produced by exactly one chunk in its serial iteration order, the
  // parallel result is bit-identical to the serial one.
  template <typename Fn>
  void ParallelRanges(int items, size_t work, const Fn& fn) const {
    if (pool_ == nullptr || parallelism_ <= 1 || items <= 1 ||
        work < kMinParallelWork) {
      fn(0, items);
      return;
    }
    const int chunks = std::min(items, parallelism_);
    ParallelChunks(pool_, parallelism_, chunks, [&](int c) {
      const int base = items / chunks;
      const int rem = items % chunks;
      const int lo = c * base + std::min(c, rem);
      fn(lo, lo + base + (c < rem ? 1 : 0));
    });
  }

  int NumVars() const { return static_cast<int>(cols_.size()); }

  const Model& model_;
  const SolverOptions& options_;
  const int m_;
  ThreadPool* const pool_;
  const int parallelism_;
  int n_structural_ = 0;
  int n_slack_end_ = 0;  // structural + slack count (artificials follow)

  std::vector<std::vector<SparseEntry>> cols_;
  std::vector<double> lb_;
  std::vector<double> ub_;
  std::vector<double> rhs_;

  std::vector<int> basis_;          // var index basic in each row
  std::vector<VarStatus> status_;   // per variable
  std::vector<double> x_;           // per variable
  std::vector<double> binv_;        // m x m row-major B^{-1}
  int pivots_since_refactor_ = 0;
  int iterations_ = 0;
  int refactorizations_ = 0;
  double refactor_seconds_ = 0.0;
  Stopwatch stopwatch_;

  // Scratch buffers reused across iterations.
  std::vector<double> pi_;
  std::vector<double> w_;
  // Devex reference weights (Forrest-Goldfarb), one per variable. Reset to
  // 1 on (re)factorization; grown multiplicatively on pivots. Pricing picks
  // the eligible column maximizing d_j^2 / weight_j, which approximates
  // steepest-edge at negligible cost and cuts the iteration count several
  // fold on degenerate instances versus Dantzig pricing.
  std::vector<double> devex_;
  // Scratch for ComputeDuals: (row, basic cost) pairs in row order.
  mutable std::vector<std::pair<int, double>> active_rows_;

  void ResetDevex() { devex_.assign(NumVars(), 1.0); }
};

void Core::BuildColumns() {
  const int n = model_.num_variables();
  n_structural_ = n;
  cols_.assign(n + m_, {});
  lb_.resize(n + m_);
  ub_.resize(n + m_);
  rhs_.resize(m_);
  for (int j = 0; j < n; ++j) {
    lb_[j] = model_.lower_bound(j);
    ub_[j] = model_.upper_bound(j);
  }
  for (int i = 0; i < m_; ++i) {
    rhs_[i] = model_.rhs(i);
    for (const Coefficient& t : model_.row(i)) {
      cols_[t.var].push_back({i, t.value});
    }
    const int slack = n + i;
    cols_[slack].push_back({i, 1.0});
    switch (model_.constraint_sense(i)) {
      case ConstraintSense::kLessEqual:
        lb_[slack] = 0.0;
        ub_[slack] = kInfinity;
        break;
      case ConstraintSense::kEqual:
        lb_[slack] = 0.0;
        ub_[slack] = 0.0;
        break;
      case ConstraintSense::kGreaterEqual:
        lb_[slack] = -kInfinity;
        ub_[slack] = 0.0;
        break;
    }
  }
  n_slack_end_ = n + m_;
}

// Initial nonbasic value for a variable given its bounds.
double InitialValue(double lb, double ub) {
  if (std::isfinite(lb)) return lb;
  if (std::isfinite(ub)) return ub;
  return 0.0;
}

VarStatus InitialStatus(double lb, double ub) {
  if (std::isfinite(lb)) return VarStatus::kAtLower;
  if (std::isfinite(ub)) return VarStatus::kAtUpper;
  return VarStatus::kFree;
}

bool Core::ColdStart() {
  const int n = n_structural_;
  status_.assign(NumVars(), VarStatus::kAtLower);
  x_.assign(NumVars(), 0.0);
  for (int j = 0; j < n; ++j) {
    status_[j] = InitialStatus(lb_[j], ub_[j]);
    x_[j] = InitialValue(lb_[j], ub_[j]);
  }
  // Residual per row given nonbasic structural values.
  std::vector<double> residual(rhs_);
  for (int j = 0; j < n; ++j) {
    if (x_[j] == 0.0) continue;
    for (const SparseEntry& e : cols_[j]) {
      residual[e.row] -= e.value * x_[j];
    }
  }
  basis_.assign(m_, -1);
  binv_.assign(static_cast<size_t>(m_) * m_, 0.0);
  for (int i = 0; i < m_; ++i) {
    const int slack = n + i;
    const double r = residual[i];
    if (r >= lb_[slack] - kZeroTol && r <= ub_[slack] + kZeroTol) {
      // Slack basis is feasible for this row.
      basis_[i] = slack;
      status_[slack] = VarStatus::kBasic;
      x_[slack] = r;
      binv_[static_cast<size_t>(i) * m_ + i] = 1.0;
    } else {
      // Park the slack at its nearest bound and cover the remainder with an
      // artificial variable.
      const double v = std::clamp(r, lb_[slack], ub_[slack]);
      status_[slack] = (v == lb_[slack] && std::isfinite(lb_[slack]))
                           ? VarStatus::kAtLower
                           : VarStatus::kAtUpper;
      x_[slack] = v;
      const double rem = r - v;
      const double sign = rem >= 0.0 ? 1.0 : -1.0;
      cols_.push_back({{i, sign}});
      lb_.push_back(0.0);
      ub_.push_back(kInfinity);
      status_.push_back(VarStatus::kBasic);
      x_.push_back(std::abs(rem));
      basis_[i] = NumVars() - 1;
      binv_[static_cast<size_t>(i) * m_ + i] = sign;  // diag(+-1) inverse
    }
  }
  pivots_since_refactor_ = 0;
  ResetDevex();
  return true;
}

bool Core::TryWarmStart(const Basis& warm) {
  if (static_cast<int>(warm.basic.size()) != m_) return false;
  std::vector<bool> used(n_slack_end_, false);
  for (int j : warm.basic) {
    if (j < 0 || j >= n_slack_end_ || used[j]) return false;
    used[j] = true;
  }
  basis_ = warm.basic;
  status_.assign(NumVars(), VarStatus::kAtLower);
  x_.assign(NumVars(), 0.0);
  for (int j = 0; j < NumVars(); ++j) {
    VarStatus s = j < static_cast<int>(warm.status.size())
                      ? warm.status[j]
                      : InitialStatus(lb_[j], ub_[j]);
    if (s == VarStatus::kBasic && !used[j]) {
      s = InitialStatus(lb_[j], ub_[j]);  // stale status for a new variable
    }
    switch (s) {
      case VarStatus::kBasic:
        x_[j] = 0.0;  // filled in by ComputeBasicValues
        break;
      case VarStatus::kAtLower:
        if (!std::isfinite(lb_[j])) s = InitialStatus(lb_[j], ub_[j]);
        x_[j] = InitialValue(lb_[j], ub_[j]);
        break;
      case VarStatus::kAtUpper:
        if (!std::isfinite(ub_[j])) s = InitialStatus(lb_[j], ub_[j]);
        x_[j] = std::isfinite(ub_[j]) ? ub_[j] : InitialValue(lb_[j], ub_[j]);
        break;
      case VarStatus::kFree:
        x_[j] = 0.0;
        break;
    }
    status_[j] = s;
  }
  for (int i = 0; i < m_; ++i) status_[basis_[i]] = VarStatus::kBasic;
  if (!Refactorize()) return false;
  // The warm basis must be (near-)feasible; otherwise fall back to phase 1
  // from a cold start.
  for (int i = 0; i < m_; ++i) {
    const int j = basis_[i];
    if (x_[j] < lb_[j] - 1e-7 || x_[j] > ub_[j] + 1e-7) return false;
  }
  return true;
}

// Rebuilds binv_ from the current basis by Gauss-Jordan elimination with
// partial pivoting, then recomputes the basic values. Returns false if the
// basis matrix is numerically singular.
bool Core::Refactorize() {
  const Stopwatch refactor_watch;
  ++refactorizations_;
  std::vector<double> b(static_cast<size_t>(m_) * m_, 0.0);
  for (int k = 0; k < m_; ++k) {
    for (const SparseEntry& e : cols_[basis_[k]]) {
      b[static_cast<size_t>(e.row) * m_ + k] = e.value;
    }
  }
  binv_.assign(static_cast<size_t>(m_) * m_, 0.0);
  for (int i = 0; i < m_; ++i) binv_[static_cast<size_t>(i) * m_ + i] = 1.0;
  for (int col = 0; col < m_; ++col) {
    int piv = col;
    double best = std::abs(b[static_cast<size_t>(col) * m_ + col]);
    for (int i = col + 1; i < m_; ++i) {
      const double v = std::abs(b[static_cast<size_t>(i) * m_ + col]);
      if (v > best) {
        best = v;
        piv = i;
      }
    }
    if (best < 1e-12) return false;
    if (piv != col) {
      for (int k = 0; k < m_; ++k) {
        std::swap(b[static_cast<size_t>(piv) * m_ + k],
                  b[static_cast<size_t>(col) * m_ + k]);
        std::swap(binv_[static_cast<size_t>(piv) * m_ + k],
                  binv_[static_cast<size_t>(col) * m_ + k]);
      }
    }
    const double inv = 1.0 / b[static_cast<size_t>(col) * m_ + col];
    for (int k = 0; k < m_; ++k) {
      b[static_cast<size_t>(col) * m_ + k] *= inv;
      binv_[static_cast<size_t>(col) * m_ + k] *= inv;
    }
    // Eliminate the pivot column from every other row. Rows are
    // independent (each reads only the pivot row), so they fan out across
    // the pool on large bases; per-row arithmetic is unchanged, keeping
    // the factorization bit-identical to the serial one.
    const double* bcol = &b[static_cast<size_t>(col) * m_];
    const double* icol = &binv_[static_cast<size_t>(col) * m_];
    ParallelRanges(m_, static_cast<size_t>(m_) * m_, [&](int lo, int hi) {
      for (int i = lo; i < hi; ++i) {
        if (i == col) continue;
        const double f = b[static_cast<size_t>(i) * m_ + col];
        if (f == 0.0) continue;
        double* brow = &b[static_cast<size_t>(i) * m_];
        double* irow = &binv_[static_cast<size_t>(i) * m_];
        for (int k = 0; k < m_; ++k) {
          brow[k] -= f * bcol[k];
          irow[k] -= f * icol[k];
        }
      }
    });
  }
  ComputeBasicValues();
  pivots_since_refactor_ = 0;
  ResetDevex();
  refactor_seconds_ += refactor_watch.ElapsedSeconds();
  return true;
}

void Core::ComputeBasicValues() {
  std::vector<double> r(rhs_);
  for (int j = 0; j < NumVars(); ++j) {
    if (status_[j] == VarStatus::kBasic || x_[j] == 0.0) continue;
    for (const SparseEntry& e : cols_[j]) r[e.row] -= e.value * x_[j];
  }
  // One independent row dot product per basic variable (basis_ entries are
  // distinct, so the x_ writes are disjoint).
  ParallelRanges(m_, static_cast<size_t>(m_) * m_, [&](int lo, int hi) {
    for (int i = lo; i < hi; ++i) {
      double v = 0.0;
      const double* row = &binv_[static_cast<size_t>(i) * m_];
      for (int k = 0; k < m_; ++k) v += row[k] * r[k];
      x_[basis_[i]] = v;
    }
  });
}

void Core::ComputeDuals(const std::vector<double>& cost,
                        std::vector<double>* pi) const {
  pi->assign(m_, 0.0);
  // Rows whose basic variable carries a nonzero cost, in row order. Each
  // dual component k then accumulates over these rows in that fixed order,
  // so slicing the k range across threads changes nothing about any
  // individual sum — parallel duals are bit-identical to serial ones.
  active_rows_.clear();
  for (int i = 0; i < m_; ++i) {
    const double cb = basis_[i] < static_cast<int>(cost.size())
                          ? cost[basis_[i]]
                          : 0.0;
    if (cb == 0.0) continue;
    active_rows_.push_back({i, cb});
  }
  double* out = pi->data();
  ParallelRanges(m_, active_rows_.size() * m_, [&](int lo, int hi) {
    for (const auto& [row_index, cb] : active_rows_) {
      const double* row = &binv_[static_cast<size_t>(row_index) * m_];
      for (int k = lo; k < hi; ++k) out[k] += cb * row[k];
    }
  });
}

double Core::Objective(const std::vector<double>& cost) const {
  double obj = 0.0;
  const int limit = std::min<int>(NumVars(), static_cast<int>(cost.size()));
  for (int j = 0; j < limit; ++j) obj += cost[j] * x_[j];
  return obj;
}

Core::StepResult Core::Iterate(const std::vector<double>& cost, bool bland) {
  ComputeDuals(cost, &pi_);

  // --- Pricing: pick the entering variable. ---
  int enter = -1;
  double enter_dir = 0.0;
  if (devex_.size() != static_cast<size_t>(NumVars())) ResetDevex();
  // Eligibility is decided by the reduced-cost tests below; the weighted
  // score only ranks the eligible candidates, so any positive value wins.
  double best_score = 0.0;
  for (int j = 0; j < NumVars(); ++j) {
    const VarStatus s = status_[j];
    if (s == VarStatus::kBasic) continue;
    if (lb_[j] == ub_[j]) continue;  // fixed variable can never improve
    double cj = j < static_cast<int>(cost.size()) ? cost[j] : 0.0;
    for (const SparseEntry& e : cols_[j]) cj -= pi_[e.row] * e.value;
    double score = 0.0;
    double dir = 0.0;
    if (s == VarStatus::kAtLower && cj < -options_.optimality_tolerance) {
      score = -cj;
      dir = 1.0;
    } else if (s == VarStatus::kAtUpper &&
               cj > options_.optimality_tolerance) {
      score = cj;
      dir = -1.0;
    } else if (s == VarStatus::kFree &&
               std::abs(cj) > options_.optimality_tolerance) {
      score = std::abs(cj);
      dir = cj < 0.0 ? 1.0 : -1.0;
    } else {
      continue;
    }
    if (bland) {  // first eligible index
      enter = j;
      enter_dir = dir;
      break;
    }
    // Devex-weighted score: favors directions with small projected norm.
    const double weighted = score * score / devex_[j];
    if (weighted > best_score) {
      best_score = weighted;
      enter = j;
      enter_dir = dir;
    }
  }
  if (enter < 0) return StepResult::kOptimal;

  // --- FTRAN: w = B^{-1} A_enter. ---
  w_.assign(m_, 0.0);
  for (const SparseEntry& e : cols_[enter]) {
    const double v = e.value;
    const int r = e.row;
    for (int i = 0; i < m_; ++i) {
      w_[i] += binv_[static_cast<size_t>(i) * m_ + r] * v;
    }
  }

  // --- Ratio test. ---
  // Entering moves by t >= 0 in direction enter_dir; basic i changes by
  // -enter_dir * t * w_i.
  double t_best = kInfinity;
  int leave_row = -1;
  double leave_bound = 0.0;
  VarStatus leave_status = VarStatus::kAtLower;
  double best_pivot_mag = 0.0;
  for (int i = 0; i < m_; ++i) {
    const double dw = enter_dir * w_[i];
    if (std::abs(dw) <= kPivotTol) continue;
    const int bj = basis_[i];
    double bound;
    VarStatus new_status;
    if (dw > 0.0) {  // basic value decreases toward its lower bound
      bound = lb_[bj];
      new_status = VarStatus::kAtLower;
      if (!std::isfinite(bound)) continue;
    } else {  // increases toward its upper bound
      bound = ub_[bj];
      new_status = VarStatus::kAtUpper;
      if (!std::isfinite(bound)) continue;
    }
    double t = (x_[bj] - bound) / dw;
    if (t < 0.0) t = 0.0;  // tiny infeasibility from roundoff
    const bool better =
        t < t_best - 1e-10 ||
        (t < t_best + 1e-10 &&
         (bland ? bj < (leave_row >= 0 ? basis_[leave_row] : NumVars())
                : std::abs(w_[i]) > best_pivot_mag));
    if (better) {
      t_best = t;
      leave_row = i;
      leave_bound = bound;
      leave_status = new_status;
      best_pivot_mag = std::abs(w_[i]);
    }
  }
  // Bound flip of the entering variable itself.
  const double own_range = ub_[enter] - lb_[enter];
  const bool can_flip = std::isfinite(own_range);
  if (can_flip && own_range <= t_best) {
    // Flip: entering moves to its opposite bound; no basis change.
    const double t = own_range;
    for (int i = 0; i < m_; ++i) {
      if (w_[i] != 0.0) x_[basis_[i]] -= enter_dir * t * w_[i];
    }
    x_[enter] += enter_dir * t;
    status_[enter] = status_[enter] == VarStatus::kAtLower
                         ? VarStatus::kAtUpper
                         : VarStatus::kAtLower;
    return StepResult::kContinue;
  }
  if (leave_row < 0) return StepResult::kUnbounded;

  // --- Pivot: update values, basis, and the explicit inverse. ---
  const double t = t_best;
  for (int i = 0; i < m_; ++i) {
    if (w_[i] != 0.0) x_[basis_[i]] -= enter_dir * t * w_[i];
  }
  x_[enter] += enter_dir * t;
  const int leaving = basis_[leave_row];
  x_[leaving] = leave_bound;
  status_[leaving] = leave_status;
  basis_[leave_row] = enter;
  status_[enter] = VarStatus::kBasic;

  const double pivot = w_[leave_row];
  if (std::abs(pivot) < kPivotTol) return StepResult::kSingular;
  double* prow = &binv_[static_cast<size_t>(leave_row) * m_];
  // --- Devex weight update (uses the pre-pivot row r of B^{-1}). ---
  {
    const double gamma_q = std::max(devex_[enter], 1.0);
    const double inv_p2 = 1.0 / (pivot * pivot);
    for (int j = 0; j < NumVars(); ++j) {
      if (status_[j] == VarStatus::kBasic || lb_[j] == ub_[j]) continue;
      double alpha = 0.0;
      for (const SparseEntry& e : cols_[j]) alpha += prow[e.row] * e.value;
      if (alpha == 0.0) continue;
      const double candidate = alpha * alpha * inv_p2 * gamma_q;
      if (candidate > devex_[j]) devex_[j] = candidate;
    }
    devex_[leaving] = std::max(gamma_q * inv_p2, 1.0);
    devex_[enter] = 1.0;
    // Guard against unbounded weight growth.
    if (devex_[leaving] > 1e12) ResetDevex();
  }
  const double inv_pivot = 1.0 / pivot;
  for (int k = 0; k < m_; ++k) prow[k] *= inv_pivot;
  // Rank-1 inverse update: every row i != leave_row subtracts its own
  // multiple of the (now scaled, read-only) pivot row — the per-iteration
  // O(m^2) hot spot, and embarrassingly row-parallel.
  ParallelRanges(m_, static_cast<size_t>(m_) * m_, [&](int lo, int hi) {
    for (int i = lo; i < hi; ++i) {
      if (i == leave_row) continue;
      const double f = w_[i];
      if (f == 0.0) continue;
      double* row = &binv_[static_cast<size_t>(i) * m_];
      for (int k = 0; k < m_; ++k) row[k] -= f * prow[k];
    }
  });
  ++pivots_since_refactor_;
  return StepResult::kContinue;
}

LpSolution Core::Run(const Basis* warm, Basis* out_basis) {
  LpSolution result;
  const int n = model_.num_variables();

  if (m_ > options_.max_basis_rows) {
    result.status = SolveStatus::kTooLarge;
    return result;
  }

  BuildColumns();

  // Trivial case: no constraints — each variable sits at its best bound.
  if (m_ == 0) {
    result.x.assign(n, 0.0);
    const double sgn =
        model_.sense() == ObjectiveSense::kMinimize ? 1.0 : -1.0;
    for (int j = 0; j < n; ++j) {
      const double c = sgn * model_.objective_coefficient(j);
      double v;
      if (c > 0.0) {
        v = lb_[j];
      } else if (c < 0.0) {
        v = ub_[j];
      } else {
        v = InitialValue(lb_[j], ub_[j]);
      }
      if (!std::isfinite(v)) {
        result.status = SolveStatus::kUnbounded;
        return result;
      }
      result.x[j] = v;
      result.objective += model_.objective_coefficient(j) * v;
    }
    result.status = SolveStatus::kOptimal;
    return result;
  }

  bool warm_ok = warm != nullptr && !warm->empty() && TryWarmStart(*warm);
  if (!warm_ok) ColdStart();

  const double sgn = model_.sense() == ObjectiveSense::kMinimize ? 1.0 : -1.0;

  // Phase 1 (only when artificials exist): minimize their sum.
  const bool need_phase1 = NumVars() > n_slack_end_;
  if (need_phase1) {
    std::vector<double> cost1(NumVars(), 0.0);
    for (int j = n_slack_end_; j < NumVars(); ++j) cost1[j] = 1.0;
    int degenerate = 0;
    bool bland = false;
    double prev_obj1 = kInfinity;
    while (true) {
      if (iterations_ >= options_.max_iterations) {
        result.status = SolveStatus::kIterationLimit;
        return result;
      }
      if ((iterations_ & 63) == 0 &&
          stopwatch_.ElapsedSeconds() > options_.time_limit_seconds) {
        result.status = SolveStatus::kTimeLimit;
        result.iterations = iterations_;
        result.solve_seconds = stopwatch_.ElapsedSeconds();
        result.refactorizations = refactorizations_;
        result.refactor_seconds = refactor_seconds_;
        return result;
      }
      if (pivots_since_refactor_ >= options_.refactorization_interval) {
        if (!Refactorize()) {
          result.status = SolveStatus::kNumericalError;
          return result;
        }
      }
      const StepResult sr = Iterate(cost1, bland);
      ++iterations_;
      if (sr == StepResult::kOptimal) break;
      if (sr == StepResult::kSingular) {
        result.status = SolveStatus::kNumericalError;
        return result;
      }
      if (sr == StepResult::kUnbounded) {
        // Phase 1 objective is bounded below by zero; this is numerical.
        result.status = SolveStatus::kNumericalError;
        return result;
      }
      // Track objective stalls for anti-cycling.
      const double obj1 = Objective(cost1);
      degenerate = obj1 >= prev_obj1 - 1e-12 ? degenerate + 1 : 0;
      prev_obj1 = obj1;
      if (degenerate > kDegenerateLimit) bland = true;
    }
    if (Objective(cost1) > 1e-6) {
      result.status = SolveStatus::kInfeasible;
      result.iterations = iterations_;
      result.solve_seconds = stopwatch_.ElapsedSeconds();
      result.refactorizations = refactorizations_;
      result.refactor_seconds = refactor_seconds_;
      return result;
    }
    // Freeze artificials at zero so they never re-enter.
    for (int j = n_slack_end_; j < NumVars(); ++j) {
      lb_[j] = 0.0;
      ub_[j] = 0.0;
      if (status_[j] != VarStatus::kBasic) {
        status_[j] = VarStatus::kAtLower;
        x_[j] = 0.0;
      }
    }
  }

  // Phase 2: true objective (internally always minimize).
  std::vector<double> cost2(NumVars(), 0.0);
  for (int j = 0; j < n; ++j) {
    cost2[j] = sgn * model_.objective_coefficient(j);
  }
  double prev_obj = kInfinity;
  int degenerate = 0;
  bool bland = false;
  while (true) {
    if (iterations_ >= options_.max_iterations) {
      result.status = SolveStatus::kIterationLimit;
      break;
    }
    if ((iterations_ & 63) == 0 &&
        stopwatch_.ElapsedSeconds() > options_.time_limit_seconds) {
      result.status = SolveStatus::kTimeLimit;
      break;
    }
    if (pivots_since_refactor_ >= options_.refactorization_interval) {
      if (!Refactorize()) {
        result.status = SolveStatus::kNumericalError;
        break;
      }
    }
    const StepResult sr = Iterate(cost2, bland);
    ++iterations_;
    if (sr == StepResult::kOptimal) {
      // Refactorize once more for clean final values and duals.
      if (!Refactorize()) {
        result.status = SolveStatus::kNumericalError;
        break;
      }
      result.status = SolveStatus::kOptimal;
      break;
    }
    if (sr == StepResult::kUnbounded) {
      result.status = SolveStatus::kUnbounded;
      break;
    }
    if (sr == StepResult::kSingular) {
      result.status = SolveStatus::kNumericalError;
      break;
    }
    const double obj = Objective(cost2);
    degenerate = obj >= prev_obj - 1e-12 ? degenerate + 1 : 0;
    prev_obj = obj;
    if (degenerate > kDegenerateLimit) bland = true;
  }

  result.iterations = iterations_;
  result.solve_seconds = stopwatch_.ElapsedSeconds();
  result.refactorizations = refactorizations_;
  result.refactor_seconds = refactor_seconds_;
  result.x.assign(n, 0.0);
  for (int j = 0; j < n; ++j) result.x[j] = x_[j];
  result.objective = 0.0;
  for (int j = 0; j < n; ++j) {
    result.objective += model_.objective_coefficient(j) * x_[j];
  }
  if (result.status == SolveStatus::kOptimal) {
    // Duals with respect to the model's own objective coefficients.
    std::vector<double> orig_cost(NumVars(), 0.0);
    for (int j = 0; j < n; ++j) {
      orig_cost[j] = model_.objective_coefficient(j);
    }
    ComputeDuals(orig_cost, &result.duals);
    if (out_basis != nullptr) {
      out_basis->basic = basis_;
      out_basis->status.assign(status_.begin(),
                               status_.begin() + n_slack_end_);
    }
  }
  return result;
}

}  // namespace

LpSolution RevisedSimplex::Solve(const Model& model,
                                 const SolverOptions& options,
                                 const Basis* warm, Basis* out_basis) {
  {
    Core core(model, options);
    LpSolution result = core.Run(warm, out_basis);
    if (result.status != SolveStatus::kNumericalError) return result;
  }
  // Numerical trouble (e.g. a drifted basis turned singular): retry once
  // from a cold start with frequent refactorization.
  SolverOptions retry = options;
  retry.refactorization_interval =
      std::min(retry.refactorization_interval, 256);
  Core core(model, retry);
  return core.Run(nullptr, out_basis);
}

}  // namespace geopriv::lp
