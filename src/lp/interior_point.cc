#include "lp/interior_point.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include "base/stopwatch.h"

namespace geopriv::lp {

namespace {

// Standard-form program: min c'x s.t. Ax = b, x >= 0, derived from a Model
// by shifting/negating/splitting variables and adding slacks. `recover`
// describes how to map standard-form values back to model variables.
struct StandardForm {
  int num_rows = 0;
  int num_cols = 0;
  std::vector<double> c;
  std::vector<double> b;
  // Sparse columns of A.
  std::vector<std::vector<std::pair<int, double>>> cols;
  // For model variable j: x_model = shift + sign * x_std[pos] (+ optionally
  // -x_std[neg_pos] when split).
  struct VarMap {
    double shift = 0.0;
    double sign = 1.0;
    int pos = -1;
    int neg_pos = -1;  // second half of a split free variable
  };
  std::vector<VarMap> var_map;
  double objective_shift = 0.0;
};

StandardForm BuildStandardForm(const Model& model) {
  StandardForm sf;
  const int n = model.num_variables();
  const int m = model.num_constraints();
  const double sgn =
      model.sense() == ObjectiveSense::kMinimize ? 1.0 : -1.0;
  sf.num_rows = m;
  sf.b.assign(m, 0.0);
  for (int i = 0; i < m; ++i) sf.b[i] = model.rhs(i);
  sf.var_map.resize(n);

  auto add_col = [&sf](double cost) {
    sf.c.push_back(cost);
    sf.cols.emplace_back();
    return static_cast<int>(sf.cols.size()) - 1;
  };

  // Map model variables into nonnegative standard-form columns.
  std::vector<int> extra_ub_row;  // deferred [lb,ub] box rows
  for (int j = 0; j < n; ++j) {
    const double lb = model.lower_bound(j);
    const double ub = model.upper_bound(j);
    const double cj = sgn * model.objective_coefficient(j);
    StandardForm::VarMap& vm = sf.var_map[j];
    if (std::isfinite(lb)) {
      // x = lb + x', x' >= 0 (a finite ub adds a box row below).
      vm.shift = lb;
      vm.sign = 1.0;
      vm.pos = add_col(cj);
      sf.objective_shift += cj * lb;
    } else if (std::isfinite(ub)) {
      // x = ub - x', x' >= 0.
      vm.shift = ub;
      vm.sign = -1.0;
      vm.pos = add_col(-cj);
      sf.objective_shift += cj * ub;
    } else {
      // Free: x = x+ - x-.
      vm.pos = add_col(cj);
      vm.neg_pos = add_col(-cj);
    }
  }
  // Substitute variables into rows.
  for (int i = 0; i < m; ++i) {
    for (const Coefficient& t : model.row(i)) {
      const StandardForm::VarMap& vm = sf.var_map[t.var];
      sf.b[i] -= t.value * vm.shift;
      sf.cols[vm.pos].push_back({i, t.value * vm.sign});
      if (vm.neg_pos >= 0) sf.cols[vm.neg_pos].push_back({i, -t.value});
    }
    // Row slacks.
    switch (model.constraint_sense(i)) {
      case ConstraintSense::kLessEqual:
        sf.cols[add_col(0.0)].push_back({i, 1.0});
        break;
      case ConstraintSense::kGreaterEqual:
        sf.cols[add_col(0.0)].push_back({i, -1.0});
        break;
      case ConstraintSense::kEqual:
        break;
    }
  }
  // Box rows for double-bounded variables: x' + s = ub - lb.
  for (int j = 0; j < n; ++j) {
    const double lb = model.lower_bound(j);
    const double ub = model.upper_bound(j);
    if (std::isfinite(lb) && std::isfinite(ub) && ub > lb) {
      const int row = sf.num_rows++;
      sf.b.push_back(ub - lb);
      sf.cols[sf.var_map[j].pos].push_back({row, 1.0});
      sf.cols[add_col(0.0)].push_back({row, 1.0});
    } else if (std::isfinite(lb) && std::isfinite(ub) && ub == lb) {
      // Fixed variable: x' = 0 enforced by a degenerate box row.
      const int row = sf.num_rows++;
      sf.b.push_back(0.0);
      sf.cols[sf.var_map[j].pos].push_back({row, 1.0});
      sf.cols[add_col(0.0)].push_back({row, 1.0});
    }
  }
  sf.num_cols = static_cast<int>(sf.cols.size());
  return sf;
}

// Dense Cholesky factorization (in place, lower triangle). Returns false on
// a non-positive pivot.
bool Cholesky(std::vector<double>& a, int n) {
  for (int k = 0; k < n; ++k) {
    double d = a[static_cast<size_t>(k) * n + k];
    for (int j = 0; j < k; ++j) {
      const double v = a[static_cast<size_t>(k) * n + j];
      d -= v * v;
    }
    if (d < 1e-30) return false;
    const double dk = std::sqrt(d);
    a[static_cast<size_t>(k) * n + k] = dk;
    for (int i = k + 1; i < n; ++i) {
      double v = a[static_cast<size_t>(i) * n + k];
      const double* ri = &a[static_cast<size_t>(i) * n];
      const double* rk = &a[static_cast<size_t>(k) * n];
      for (int j = 0; j < k; ++j) v -= ri[j] * rk[j];
      a[static_cast<size_t>(i) * n + k] = v / dk;
    }
  }
  return true;
}

void CholeskySolve(const std::vector<double>& l, int n,
                   std::vector<double>& rhs) {
  for (int i = 0; i < n; ++i) {
    double v = rhs[i];
    const double* row = &l[static_cast<size_t>(i) * n];
    for (int j = 0; j < i; ++j) v -= row[j] * rhs[j];
    rhs[i] = v / row[i];
  }
  for (int i = n - 1; i >= 0; --i) {
    double v = rhs[i];
    for (int j = i + 1; j < n; ++j) {
      v -= l[static_cast<size_t>(j) * n + i] * rhs[j];
    }
    rhs[i] = v / l[static_cast<size_t>(i) * n + i];
  }
}

}  // namespace

LpSolution InteriorPoint::Solve(const Model& model,
                                const SolverOptions& options) {
  LpSolution result;
  Stopwatch stopwatch;
  const StandardForm sf = BuildStandardForm(model);
  const int m = sf.num_rows;
  const int n = sf.num_cols;
  if (n == 0 || m == 0) {
    // Degenerate instances are handled exactly by the simplex path; the
    // interior point requires a nonempty interior.
    result.status = SolveStatus::kNumericalError;
    return result;
  }

  std::vector<double> x(n, 1.0), s(n, 1.0), y(m, 0.0);
  // Scale the start to the data magnitude for faster convergence.
  double scale = 1.0;
  for (int i = 0; i < m; ++i) scale = std::max(scale, std::abs(sf.b[i]));
  for (double& v : x) v = scale;
  for (double& v : s) v = scale;

  std::vector<double> rb(m), rc(n), dx(n), ds(n), dy(m);
  std::vector<double> dx_aff(n), ds_aff(n), dy_aff(m);
  std::vector<double> normal(static_cast<size_t>(m) * m);
  std::vector<double> rhs(m), tmp_col(n);

  auto mat_vec = [&](const std::vector<double>& v, std::vector<double>& out) {
    std::fill(out.begin(), out.end(), 0.0);
    for (int j = 0; j < n; ++j) {
      if (v[j] == 0.0) continue;
      for (const auto& [row, val] : sf.cols[j]) out[row] += val * v[j];
    }
  };
  auto mat_t_vec = [&](const std::vector<double>& v,
                       std::vector<double>& out) {
    for (int j = 0; j < n; ++j) {
      double acc = 0.0;
      for (const auto& [row, val] : sf.cols[j]) acc += val * v[row];
      out[j] = acc;
    }
  };

  // Solves the Newton system for a given complementarity right-hand side
  // rxs (the desired value of X ds + S dx):
  //   A dx = -rb,  A'dy + ds = -rc,  S dx + X ds = rxs.
  auto newton = [&](const std::vector<double>& rxs, std::vector<double>& odx,
                    std::vector<double>& ody,
                    std::vector<double>& ods) -> bool {
    // From A dx = -rb, A'dy + ds = -rc, S dx + X ds = rxs:
    //   dx = rxs/s + D rc + D A' dy  with D = x/s, so the normal equations
    //   are (A D A') dy = -rb - A (D rc + rxs/s)... careful with signs:
    //   A dx = A(rxs/s) + A D rc + (A D A') dy = -rb
    //   => (A D A') dy = -rb - A (rxs/s) - A D rc.
    std::fill(normal.begin(), normal.end(), 0.0);
    for (int j = 0; j < n; ++j) {
      const double d = x[j] / s[j];
      const auto& col = sf.cols[j];
      for (size_t a = 0; a < col.size(); ++a) {
        const double va = d * col[a].second;
        for (size_t bcol = 0; bcol < col.size(); ++bcol) {
          normal[static_cast<size_t>(col[a].first) * m + col[bcol].first] +=
              va * col[bcol].second;
        }
      }
    }
    // Tiny diagonal regularization for numerical safety.
    for (int i = 0; i < m; ++i) {
      normal[static_cast<size_t>(i) * m + i] += 1e-12;
    }
    for (int j = 0; j < n; ++j) {
      tmp_col[j] = (x[j] / s[j]) * (-rc[j]) - rxs[j] / s[j];
    }
    mat_vec(tmp_col, rhs);
    for (int i = 0; i < m; ++i) rhs[i] = -rb[i] + rhs[i];
    if (!Cholesky(normal, m)) return false;
    CholeskySolve(normal, m, rhs);
    ody = rhs;
    mat_t_vec(ody, ods);
    for (int j = 0; j < n; ++j) {
      ods[j] = -rc[j] - ods[j];
      odx[j] = (rxs[j] - x[j] * ods[j]) / s[j];
    }
    return true;
  };

  const int max_iter = std::min(options.max_iterations, 200);
  for (int iter = 0; iter < max_iter; ++iter) {
    if (stopwatch.ElapsedSeconds() > options.time_limit_seconds) {
      result.status = SolveStatus::kTimeLimit;
      result.iterations = iter;
      result.solve_seconds = stopwatch.ElapsedSeconds();
      return result;
    }
    // Residuals.
    mat_vec(x, rb);
    for (int i = 0; i < m; ++i) rb[i] -= sf.b[i];
    mat_t_vec(y, rc);
    for (int j = 0; j < n; ++j) rc[j] = rc[j] + s[j] - sf.c[j];
    double mu = 0.0;
    for (int j = 0; j < n; ++j) mu += x[j] * s[j];
    mu /= n;
    double rb_norm = 0.0, rc_norm = 0.0;
    for (double v : rb) rb_norm = std::max(rb_norm, std::abs(v));
    for (double v : rc) rc_norm = std::max(rc_norm, std::abs(v));
    const double feas_scale = 1.0 + scale;
    if (mu < options.optimality_tolerance &&
        rb_norm < options.feasibility_tolerance * feas_scale &&
        rc_norm < options.feasibility_tolerance * feas_scale) {
      result.status = SolveStatus::kOptimal;
      result.iterations = iter;
      break;
    }
    // Divergence heuristics: iterates exploding indicates an infeasible or
    // unbounded instance.
    double x_norm = 0.0;
    for (double v : x) x_norm = std::max(x_norm, v);
    if (x_norm > 1e14 || mu > 1e18) {
      result.status = rb_norm > options.feasibility_tolerance * feas_scale
                          ? SolveStatus::kInfeasible
                          : SolveStatus::kUnbounded;
      result.iterations = iter;
      result.solve_seconds = stopwatch.ElapsedSeconds();
      return result;
    }

    // Predictor (affine) direction.
    std::vector<double> rxs(n);
    for (int j = 0; j < n; ++j) rxs[j] = -x[j] * s[j];
    if (!newton(rxs, dx_aff, dy_aff, ds_aff)) {
      result.status = SolveStatus::kNumericalError;
      result.iterations = iter;
      result.solve_seconds = stopwatch.ElapsedSeconds();
      return result;
    }
    auto max_step = [&](const std::vector<double>& v,
                        const std::vector<double>& dv) {
      double a = 1.0;
      for (int j = 0; j < n; ++j) {
        if (dv[j] < 0.0) a = std::min(a, -v[j] / dv[j]);
      }
      return a;
    };
    const double ap_aff = max_step(x, dx_aff);
    const double ad_aff = max_step(s, ds_aff);
    double mu_aff = 0.0;
    for (int j = 0; j < n; ++j) {
      mu_aff += (x[j] + ap_aff * dx_aff[j]) * (s[j] + ad_aff * ds_aff[j]);
    }
    mu_aff /= n;
    const double sigma = std::pow(mu_aff / mu, 3.0);

    // Corrector.
    for (int j = 0; j < n; ++j) {
      rxs[j] = -x[j] * s[j] - dx_aff[j] * ds_aff[j] + sigma * mu;
    }
    if (!newton(rxs, dx, dy, ds)) {
      result.status = SolveStatus::kNumericalError;
      result.iterations = iter;
      result.solve_seconds = stopwatch.ElapsedSeconds();
      return result;
    }
    const double ap = std::min(1.0, 0.99995 * max_step(x, dx));
    const double ad = std::min(1.0, 0.99995 * max_step(s, ds));
    for (int j = 0; j < n; ++j) {
      x[j] += ap * dx[j];
      s[j] += ad * ds[j];
    }
    for (int i = 0; i < m; ++i) y[i] += ad * dy[i];
    result.iterations = iter + 1;
  }
  if (result.status != SolveStatus::kOptimal) {
    result.status = result.iterations >= max_iter
                        ? SolveStatus::kIterationLimit
                        : result.status;
  }

  // Recover model-space solution.
  const int nv = model.num_variables();
  result.x.assign(nv, 0.0);
  for (int j = 0; j < nv; ++j) {
    const StandardForm::VarMap& vm = sf.var_map[j];
    double v = vm.shift + vm.sign * x[vm.pos];
    if (vm.neg_pos >= 0) v -= x[vm.neg_pos];
    result.x[j] = v;
  }
  result.objective = 0.0;
  for (int j = 0; j < nv; ++j) {
    result.objective += model.objective_coefficient(j) * result.x[j];
  }
  result.solve_seconds = stopwatch.ElapsedSeconds();
  return result;
}

}  // namespace geopriv::lp
