#include "data/synthetic.h"

#include <algorithm>
#include <vector>

#include "rng/rng.h"
#include "rng/zipf.h"

namespace geopriv::data {

StatusOr<Dataset> GenerateSyntheticCity(const SyntheticCityConfig& config) {
  if (config.num_checkins < 1 || config.num_users < 1 ||
      config.num_pois < 1 || config.num_hotspots < 1) {
    return Status::InvalidArgument("counts must be positive");
  }
  if (!(config.domain.Width() > 0.0) || !(config.domain.Height() > 0.0)) {
    return Status::InvalidArgument("domain must have positive area");
  }
  if (config.hotspot_fraction < 0.0 || config.hotspot_fraction > 1.0 ||
      config.background_fraction < 0.0 || config.background_fraction > 1.0) {
    return Status::InvalidArgument("fractions must lie in [0, 1]");
  }
  rng::Rng rng(config.seed);
  const geo::BBox& dom = config.domain;

  // Hotspot centers in the central 60% of the region.
  std::vector<geo::Point> hotspots(config.num_hotspots);
  for (auto& h : hotspots) {
    h = {rng.Uniform(dom.min_x + 0.2 * dom.Width(),
                     dom.min_x + 0.8 * dom.Width()),
         rng.Uniform(dom.min_y + 0.2 * dom.Height(),
                     dom.min_y + 0.8 * dom.Height())};
  }
  // Hotspots themselves have skewed importance (downtown >> the rest).
  GEOPRIV_ASSIGN_OR_RETURN(
      rng::ZipfSampler hotspot_sampler,
      rng::ZipfSampler::Create(hotspots.size(), 1.0));

  // POIs.
  std::vector<geo::Point> pois(config.num_pois);
  for (auto& poi : pois) {
    if (rng.Uniform() < config.hotspot_fraction) {
      const geo::Point h = hotspots[hotspot_sampler.Sample(rng)];
      poi = dom.Clamp({rng.Gaussian(h.x, config.hotspot_stddev_km),
                       rng.Gaussian(h.y, config.hotspot_stddev_km)});
    } else {
      poi = {rng.Uniform(dom.min_x, dom.max_x),
             rng.Uniform(dom.min_y, dom.max_y)};
    }
  }
  GEOPRIV_ASSIGN_OR_RETURN(
      rng::ZipfSampler poi_sampler,
      rng::ZipfSampler::Create(pois.size(), config.poi_zipf_exponent));
  GEOPRIV_ASSIGN_OR_RETURN(
      rng::ZipfSampler user_sampler,
      rng::ZipfSampler::Create(static_cast<size_t>(config.num_users),
                               config.user_zipf_exponent));

  Dataset dataset;
  dataset.name = config.name;
  dataset.domain = dom;
  dataset.pois = pois;
  dataset.points.reserve(config.num_checkins);
  dataset.users.reserve(config.num_checkins);
  for (int64_t i = 0; i < config.num_checkins; ++i) {
    geo::Point p;
    if (rng.Uniform() < config.background_fraction) {
      p = {rng.Uniform(dom.min_x, dom.max_x),
           rng.Uniform(dom.min_y, dom.max_y)};
    } else {
      const geo::Point poi = pois[poi_sampler.Sample(rng)];
      p = dom.Clamp({rng.Gaussian(poi.x, config.jitter_km),
                     rng.Gaussian(poi.y, config.jitter_km)});
    }
    dataset.points.push_back(p);
    // The first num_users check-ins cover every user once (so the unique
    // user count matches the configured population exactly, as in the
    // paper's dataset statistics); the rest follow the Zipf activity law.
    dataset.users.push_back(
        i < config.num_users
            ? i
            : static_cast<int64_t>(user_sampler.Sample(rng)));
  }
  return dataset;
}

SyntheticCityConfig GowallaAustinLikeConfig() {
  SyntheticCityConfig config;
  config.name = "gowalla-austin-like";
  config.num_checkins = 265571;
  config.num_users = 12155;
  config.num_pois = 3500;
  config.num_hotspots = 7;
  config.hotspot_stddev_km = 1.1;
  config.hotspot_fraction = 0.82;
  config.poi_zipf_exponent = 1.05;
  config.seed = 20190326;
  return config;
}

SyntheticCityConfig YelpLasVegasLikeConfig() {
  SyntheticCityConfig config;
  config.name = "yelp-lasvegas-like";
  config.num_checkins = 81201;
  config.num_users = 7581;
  // Las Vegas: fewer, larger venues, and the Strip concentrates the mass
  // even more than Austin's downtown.
  config.num_pois = 1500;
  config.num_hotspots = 4;
  config.hotspot_stddev_km = 0.9;
  config.hotspot_fraction = 0.85;
  config.poi_zipf_exponent = 1.1;
  config.seed = 20190327;
  return config;
}

StatusOr<Dataset> GowallaAustinLike() {
  return GenerateSyntheticCity(GowallaAustinLikeConfig());
}

StatusOr<Dataset> YelpLasVegasLike() {
  return GenerateSyntheticCity(YelpLasVegasLikeConfig());
}

}  // namespace geopriv::data
