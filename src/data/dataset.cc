#include "data/dataset.h"

#include <algorithm>
#include <cstdlib>
#include <fstream>
#include <sstream>

#include "geo/projection.h"

namespace geopriv::data {

namespace {

bool ParseDouble(const std::string& s, double* out) {
  if (s.empty()) return false;
  char* end = nullptr;
  *out = std::strtod(s.c_str(), &end);
  return end != nullptr && *end == '\0';
}

bool ParseInt64(const std::string& s, int64_t* out) {
  if (s.empty()) return false;
  char* end = nullptr;
  *out = std::strtoll(s.c_str(), &end, 10);
  return end != nullptr && *end == '\0';
}

std::vector<std::string> Split(const std::string& line, char sep) {
  std::vector<std::string> fields;
  std::string field;
  std::istringstream in(line);
  while (std::getline(in, field, sep)) fields.push_back(field);
  return fields;
}

}  // namespace

StatusOr<std::vector<CheckinRecord>> LoadGowallaCheckins(
    const std::string& path, const LatLonBounds* bounds, int64_t* skipped) {
  std::ifstream in(path);
  if (!in) {
    return Status::IoError("cannot open " + path);
  }
  std::vector<CheckinRecord> records;
  int64_t bad = 0;
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    const std::vector<std::string> f = Split(line, '\t');
    CheckinRecord rec;
    // Fields: user, ISO time (ignored), lat, lon, location id (ignored).
    if (f.size() < 4 || !ParseInt64(f[0], &rec.user_id) ||
        !ParseDouble(f[2], &rec.lat) || !ParseDouble(f[3], &rec.lon)) {
      ++bad;
      continue;
    }
    if (bounds != nullptr && !bounds->Contains(rec.lat, rec.lon)) continue;
    records.push_back(rec);
  }
  if (skipped != nullptr) *skipped = bad;
  return records;
}

StatusOr<std::vector<CheckinRecord>> LoadCsvCheckins(
    const std::string& path, const LatLonBounds* bounds, int64_t* skipped) {
  std::ifstream in(path);
  if (!in) {
    return Status::IoError("cannot open " + path);
  }
  std::vector<CheckinRecord> records;
  int64_t bad = 0;
  std::string line;
  bool first = true;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    const std::vector<std::string> f = Split(line, ',');
    CheckinRecord rec;
    const bool ok = f.size() >= 3 && ParseInt64(f[0], &rec.user_id) &&
                    ParseDouble(f[1], &rec.lat) && ParseDouble(f[2], &rec.lon);
    if (!ok) {
      // Tolerate one header line.
      if (!first) ++bad;
      first = false;
      continue;
    }
    first = false;
    if (bounds != nullptr && !bounds->Contains(rec.lat, rec.lon)) continue;
    records.push_back(rec);
  }
  if (skipped != nullptr) *skipped = bad;
  return records;
}

int64_t Dataset::num_unique_users() const {
  std::vector<int64_t> sorted = users;
  std::sort(sorted.begin(), sorted.end());
  return std::unique(sorted.begin(), sorted.end()) - sorted.begin();
}

StatusOr<Dataset> ProjectRecords(const std::string& name,
                                 const LatLonBounds& bounds,
                                 const std::vector<CheckinRecord>& records) {
  GEOPRIV_ASSIGN_OR_RETURN(
      geo::EquirectangularProjection projection,
      geo::EquirectangularProjection::Create(bounds.min_lat, bounds.min_lon));
  Dataset dataset;
  dataset.name = name;
  const geo::Point ne = projection.Forward(bounds.max_lat, bounds.max_lon);
  dataset.domain = {0.0, 0.0, ne.x, ne.y};
  dataset.points.reserve(records.size());
  dataset.users.reserve(records.size());
  for (const CheckinRecord& rec : records) {
    if (!bounds.Contains(rec.lat, rec.lon)) continue;
    dataset.points.push_back(projection.Forward(rec.lat, rec.lon));
    dataset.users.push_back(rec.user_id);
  }
  if (dataset.points.empty()) {
    return Status::InvalidArgument("no records inside the region");
  }
  return dataset;
}

}  // namespace geopriv::data
