// Synthetic geo-social check-in generator.
//
// Model (calibrated to the qualitative structure of Gowalla/Yelp city
// dumps):
//  * a handful of hotspot centers (downtown, entertainment district, ...)
//    placed in the central part of the region;
//  * POIs: a `hotspot_fraction` share clustered Gaussian around hotspots,
//    the rest uniform (suburban strip malls);
//  * POI popularity: Zipf-distributed — a few venues dominate check-ins;
//  * each check-in: a Zipf-drawn POI plus small GPS-like jitter, with a
//    small uniform "background" share;
//  * users: Zipf-distributed activity, matching the heavy-tailed per-user
//    check-in counts of the real datasets.
//
// Presets reproduce the paper's record counts (Section 6.1): Gowalla/Austin
// with 265,571 check-ins from 12,155 users, Yelp/Las Vegas with 81,201
// check-ins from 7,581 users, both on 20x20 km domains.

#ifndef GEOPRIV_DATA_SYNTHETIC_H_
#define GEOPRIV_DATA_SYNTHETIC_H_

#include <cstdint>

#include "base/status.h"
#include "data/dataset.h"

namespace geopriv::data {

struct SyntheticCityConfig {
  geo::BBox domain{0.0, 0.0, 20.0, 20.0};
  int64_t num_checkins = 100000;
  int64_t num_users = 10000;
  int num_pois = 2000;
  int num_hotspots = 6;
  double hotspot_stddev_km = 1.2;
  double hotspot_fraction = 0.8;   // POIs clustered vs uniform
  double poi_zipf_exponent = 1.05; // POI popularity skew
  double user_zipf_exponent = 0.8; // per-user activity skew
  double jitter_km = 0.05;         // GPS noise around the POI
  double background_fraction = 0.03;
  uint64_t seed = 20190326;        // EDBT 2019 opening day
  std::string name = "synthetic";
};

// Deterministic given the config (including seed).
StatusOr<Dataset> GenerateSyntheticCity(const SyntheticCityConfig& config);

// Presets matching the paper's two datasets.
SyntheticCityConfig GowallaAustinLikeConfig();
SyntheticCityConfig YelpLasVegasLikeConfig();

// Convenience wrappers: generate the preset datasets.
StatusOr<Dataset> GowallaAustinLike();
StatusOr<Dataset> YelpLasVegasLike();

}  // namespace geopriv::data

#endif  // GEOPRIV_DATA_SYNTHETIC_H_
