// Check-in datasets. The paper evaluates on Gowalla (Austin, TX) and Yelp
// (Las Vegas, NV) check-ins inside 20x20 km city regions. The SNAP/Yelp
// dumps cannot be redistributed here, so the repo ships (a) loaders for the
// real file formats, used when the user provides the files, and (b) a
// synthetic generator (synthetic.h) whose presets match the papers' record
// counts and the heavy spatial skew of geo-social check-ins.

#ifndef GEOPRIV_DATA_DATASET_H_
#define GEOPRIV_DATA_DATASET_H_

#include <cstdint>
#include <string>
#include <vector>

#include "base/status.h"
#include "geo/point.h"

namespace geopriv::data {

struct CheckinRecord {
  int64_t user_id = 0;
  double lat = 0.0;
  double lon = 0.0;
};

// Lat/lon window (degrees), used to cut a city region out of a raw dump.
struct LatLonBounds {
  double min_lat, min_lon, max_lat, max_lon;

  bool Contains(double lat, double lon) const {
    return lat >= min_lat && lat <= max_lat && lon >= min_lon &&
           lon <= max_lon;
  }
};

// The paper's two study regions.
inline constexpr LatLonBounds kGowallaAustinBounds{30.1927, -97.8698,
                                                   30.3723, -97.6618};
inline constexpr LatLonBounds kYelpLasVegasBounds{36.0645, -115.291, 36.2442,
                                                  -115.069};

// Loads the SNAP Gowalla format: one check-in per line,
//   <user>\t<ISO time>\t<lat>\t<lon>\t<location id>.
// Records outside `bounds` (if given) are dropped; malformed lines are
// skipped (counted in *skipped if non-null).
StatusOr<std::vector<CheckinRecord>> LoadGowallaCheckins(
    const std::string& path, const LatLonBounds* bounds = nullptr,
    int64_t* skipped = nullptr);

// Loads "user_id,lat,lon" CSV with an optional header line.
StatusOr<std::vector<CheckinRecord>> LoadCsvCheckins(
    const std::string& path, const LatLonBounds* bounds = nullptr,
    int64_t* skipped = nullptr);

// A dataset projected into the planar experiment frame.
struct Dataset {
  std::string name;
  geo::BBox domain;               // km, anchored at (0,0)
  std::vector<geo::Point> points; // one per check-in
  std::vector<int64_t> users;     // parallel to points
  // Venue locations (synthetic datasets only; empty for loaded dumps).
  std::vector<geo::Point> pois;

  int64_t num_unique_users() const;
};

// Projects records through an equirectangular projection anchored at
// `bounds`' south-west corner.
StatusOr<Dataset> ProjectRecords(const std::string& name,
                                 const LatLonBounds& bounds,
                                 const std::vector<CheckinRecord>& records);

}  // namespace geopriv::data

#endif  // GEOPRIV_DATA_DATASET_H_
