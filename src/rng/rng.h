// Deterministic, seedable random source. All randomized components take an
// Rng& so experiments are reproducible end-to-end from a single seed.

#ifndef GEOPRIV_RNG_RNG_H_
#define GEOPRIV_RNG_RNG_H_

#include <cstdint>
#include <random>

namespace geopriv::rng {

class Rng {
 public:
  explicit Rng(uint64_t seed = 0x9E3779B97F4A7C15ull) : engine_(seed) {}

  // Uniform in [0, 1).
  double Uniform() {
    return std::generate_canonical<double, 53>(engine_);
  }

  // Uniform in [lo, hi).
  double Uniform(double lo, double hi) { return lo + (hi - lo) * Uniform(); }

  // Uniform integer in [0, n).
  uint64_t UniformInt(uint64_t n) {
    std::uniform_int_distribution<uint64_t> dist(0, n - 1);
    return dist(engine_);
  }

  // Standard normal.
  double Gaussian() {
    std::normal_distribution<double> dist(0.0, 1.0);
    return dist(engine_);
  }

  double Gaussian(double mean, double stddev) {
    return mean + stddev * Gaussian();
  }

  std::mt19937_64& engine() { return engine_; }

 private:
  std::mt19937_64 engine_;
};

}  // namespace geopriv::rng

#endif  // GEOPRIV_RNG_RNG_H_
