#include "rng/alias_sampler.h"

#include <cmath>

namespace geopriv::rng {

StatusOr<AliasSampler> AliasSampler::Create(
    const std::vector<double>& weights) {
  if (weights.empty()) {
    return Status::InvalidArgument("alias sampler needs at least one weight");
  }
  double sum = 0.0;
  for (double w : weights) {
    if (!(w >= 0.0) || !std::isfinite(w)) {
      return Status::InvalidArgument("weights must be finite and >= 0");
    }
    sum += w;
  }
  if (!(sum > 0.0)) {
    return Status::InvalidArgument("weights must have a positive sum");
  }

  const size_t n = weights.size();
  std::vector<double> normalized(n);
  std::vector<double> scaled(n);
  for (size_t i = 0; i < n; ++i) {
    normalized[i] = weights[i] / sum;
    scaled[i] = normalized[i] * static_cast<double>(n);
  }

  std::vector<double> prob(n, 1.0);
  std::vector<size_t> alias(n, 0);
  std::vector<size_t> small;
  std::vector<size_t> large;
  small.reserve(n);
  large.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    (scaled[i] < 1.0 ? small : large).push_back(i);
  }

  while (!small.empty() && !large.empty()) {
    const size_t s = small.back();
    small.pop_back();
    const size_t l = large.back();
    large.pop_back();
    prob[s] = scaled[s];
    alias[s] = l;
    scaled[l] = (scaled[l] + scaled[s]) - 1.0;
    (scaled[l] < 1.0 ? small : large).push_back(l);
  }
  // Leftovers are exactly 1 up to floating-point error.
  for (size_t i : small) prob[i] = 1.0;
  for (size_t i : large) prob[i] = 1.0;

  return AliasSampler(std::move(prob), std::move(alias),
                      std::move(normalized));
}

AliasSampler AliasSampler::FromTables(std::span<const double> prob,
                                      std::span<const size_t> alias,
                                      std::span<const double> normalized) {
  return AliasSampler(prob, alias, normalized);
}

size_t SampleLinear(const std::vector<double>& weights, double weight_sum,
                    Rng& rng) {
  double u = rng.Uniform() * weight_sum;
  for (size_t i = 0; i < weights.size(); ++i) {
    u -= weights[i];
    if (u <= 0.0) return i;
  }
  return weights.size() - 1;
}

}  // namespace geopriv::rng
