#include "rng/zipf.h"

#include <cmath>
#include <vector>

namespace geopriv::rng {

StatusOr<ZipfSampler> ZipfSampler::Create(size_t n, double s) {
  if (n == 0) {
    return Status::InvalidArgument("Zipf sampler needs n >= 1");
  }
  if (!(s >= 0.0)) {
    return Status::InvalidArgument("Zipf exponent must be >= 0");
  }
  std::vector<double> weights(n);
  for (size_t k = 0; k < n; ++k) {
    weights[k] = std::pow(static_cast<double>(k + 1), -s);
  }
  GEOPRIV_ASSIGN_OR_RETURN(AliasSampler alias, AliasSampler::Create(weights));
  return ZipfSampler(std::move(alias));
}

}  // namespace geopriv::rng
