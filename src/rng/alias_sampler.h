// Walker's alias method: O(n) construction, O(1) sampling from a fixed
// discrete distribution. Rows of the optimal mechanism's stochastic matrix K
// are sampled millions of times across an evaluation run, so constant-time
// draws matter (see bench/micro_mechanisms for the comparison against linear
// scanning).
//
// A sampler is either *owned* (Create() built its three tables on the
// heap) or a *view* (FromTables() wrapped tables that live elsewhere, e.g.
// inside an mmapped region bundle — see src/bundle/). Both modes sample
// through the same spans with the same draw sequence, so a view over
// serialized tables is bit-identical to the sampler that produced them.

#ifndef GEOPRIV_RNG_ALIAS_SAMPLER_H_
#define GEOPRIV_RNG_ALIAS_SAMPLER_H_

#include <cstddef>
#include <span>
#include <vector>

#include "base/status.h"
#include "rng/rng.h"

namespace geopriv::rng {

class AliasSampler {
 public:
  // `weights` must be non-negative with a positive sum; they are normalized
  // internally.
  static StatusOr<AliasSampler> Create(const std::vector<double>& weights);

  // View over externally owned tables — the exact (prob, alias,
  // normalized) triple a Create() call produced, typically deserialized
  // from a bundle. The caller guarantees the memory outlives the sampler
  // (the bundle loader pins the mapping for the mechanism's lifetime) and
  // that the three spans share one length >= 1. The tables are trusted:
  // integrity is the serializer's checksum's job.
  static AliasSampler FromTables(std::span<const double> prob,
                                 std::span<const size_t> alias,
                                 std::span<const double> normalized);

  // Owned-mode copies re-point their spans at the copied vectors; view-
  // mode copies share the external tables.
  AliasSampler(const AliasSampler& other) { CopyFrom(other); }
  AliasSampler& operator=(const AliasSampler& other) {
    if (this != &other) CopyFrom(other);
    return *this;
  }
  AliasSampler(AliasSampler&& other) noexcept { MoveFrom(std::move(other)); }
  AliasSampler& operator=(AliasSampler&& other) noexcept {
    if (this != &other) MoveFrom(std::move(other));
    return *this;
  }

  // Draws an index in [0, size()) with probability proportional to its
  // weight.
  size_t Sample(Rng& rng) const {
    const size_t i = static_cast<size_t>(rng.UniformInt(prob_.size()));
    return rng.Uniform() < prob_[i] ? i : alias_[i];
  }

  size_t size() const { return prob_.size(); }

  // Normalized probability of index i (for testing/inspection).
  double probability(size_t i) const { return normalized_[i]; }

  // The three tables, for serialization (bundle writers store them
  // verbatim so a loaded view reproduces this sampler's draws exactly).
  std::span<const double> prob_table() const { return prob_; }
  std::span<const size_t> alias_table() const { return alias_; }
  std::span<const double> normalized_table() const { return normalized_; }

  // True when the tables live outside the sampler (mmapped bundle).
  bool is_view() const { return prob_owned_.empty() && !prob_.empty(); }

  // Heap bytes held by the three tables (cache byte accounting). A view
  // owns nothing — its bytes are the mapping's, charged by whoever holds
  // the mapping.
  size_t MemoryFootprintBytes() const {
    return prob_owned_.capacity() * sizeof(double) +
           alias_owned_.capacity() * sizeof(size_t) +
           normalized_owned_.capacity() * sizeof(double);
  }

 private:
  AliasSampler(std::vector<double> prob, std::vector<size_t> alias,
               std::vector<double> normalized)
      : prob_owned_(std::move(prob)),
        alias_owned_(std::move(alias)),
        normalized_owned_(std::move(normalized)),
        prob_(prob_owned_),
        alias_(alias_owned_),
        normalized_(normalized_owned_) {}

  AliasSampler(std::span<const double> prob, std::span<const size_t> alias,
               std::span<const double> normalized)
      : prob_(prob), alias_(alias), normalized_(normalized) {}

  // Owned vectors relocate on copy/move, so the spans must be re-pointed;
  // view spans reference stable external memory and transfer as-is.
  void CopyFrom(const AliasSampler& other) {
    prob_owned_ = other.prob_owned_;
    alias_owned_ = other.alias_owned_;
    normalized_owned_ = other.normalized_owned_;
    RebindSpans(other);
  }
  void MoveFrom(AliasSampler&& other) noexcept {
    prob_owned_ = std::move(other.prob_owned_);
    alias_owned_ = std::move(other.alias_owned_);
    normalized_owned_ = std::move(other.normalized_owned_);
    RebindSpans(other);
  }
  void RebindSpans(const AliasSampler& source) {
    if (!prob_owned_.empty()) {
      prob_ = prob_owned_;
      alias_ = alias_owned_;
      normalized_ = normalized_owned_;
    } else {
      prob_ = source.prob_;
      alias_ = source.alias_;
      normalized_ = source.normalized_;
    }
  }

  std::vector<double> prob_owned_;
  std::vector<size_t> alias_owned_;
  std::vector<double> normalized_owned_;
  std::span<const double> prob_;
  std::span<const size_t> alias_;
  std::span<const double> normalized_;
};

// Reference implementation: linear scan over the CDF. Used by tests and the
// sampling micro-benchmark.
size_t SampleLinear(const std::vector<double>& weights, double weight_sum,
                    Rng& rng);

}  // namespace geopriv::rng

#endif  // GEOPRIV_RNG_ALIAS_SAMPLER_H_
