// Walker's alias method: O(n) construction, O(1) sampling from a fixed
// discrete distribution. Rows of the optimal mechanism's stochastic matrix K
// are sampled millions of times across an evaluation run, so constant-time
// draws matter (see bench/micro_mechanisms for the comparison against linear
// scanning).

#ifndef GEOPRIV_RNG_ALIAS_SAMPLER_H_
#define GEOPRIV_RNG_ALIAS_SAMPLER_H_

#include <cstddef>
#include <vector>

#include "base/status.h"
#include "rng/rng.h"

namespace geopriv::rng {

class AliasSampler {
 public:
  // `weights` must be non-negative with a positive sum; they are normalized
  // internally.
  static StatusOr<AliasSampler> Create(const std::vector<double>& weights);

  // Draws an index in [0, size()) with probability proportional to its
  // weight.
  size_t Sample(Rng& rng) const;

  size_t size() const { return prob_.size(); }

  // Normalized probability of index i (for testing/inspection).
  double probability(size_t i) const { return normalized_[i]; }

  // Heap bytes held by the three tables (cache byte accounting).
  size_t MemoryFootprintBytes() const {
    return prob_.capacity() * sizeof(double) +
           alias_.capacity() * sizeof(size_t) +
           normalized_.capacity() * sizeof(double);
  }

 private:
  AliasSampler(std::vector<double> prob, std::vector<size_t> alias,
               std::vector<double> normalized)
      : prob_(std::move(prob)),
        alias_(std::move(alias)),
        normalized_(std::move(normalized)) {}

  std::vector<double> prob_;
  std::vector<size_t> alias_;
  std::vector<double> normalized_;
};

// Reference implementation: linear scan over the CDF. Used by tests and the
// sampling micro-benchmark.
size_t SampleLinear(const std::vector<double>& weights, double weight_sum,
                    Rng& rng);

}  // namespace geopriv::rng

#endif  // GEOPRIV_RNG_ALIAS_SAMPLER_H_
