// Zipf(s) sampler over ranks {0, ..., n-1}: P(rank k) proportional to
// (k+1)^{-s}. Models the heavy-tailed POI popularity observed in geo-social
// check-in datasets (the synthetic workload generator's key ingredient).

#ifndef GEOPRIV_RNG_ZIPF_H_
#define GEOPRIV_RNG_ZIPF_H_

#include <cstddef>

#include "base/status.h"
#include "rng/alias_sampler.h"
#include "rng/rng.h"

namespace geopriv::rng {

class ZipfSampler {
 public:
  // Requires n >= 1 and s >= 0 (s = 0 degenerates to uniform).
  static StatusOr<ZipfSampler> Create(size_t n, double s);

  size_t Sample(Rng& rng) const { return alias_.Sample(rng); }
  size_t size() const { return alias_.size(); }
  double probability(size_t rank) const { return alias_.probability(rank); }

 private:
  explicit ZipfSampler(AliasSampler alias) : alias_(std::move(alias)) {}
  AliasSampler alias_;
};

}  // namespace geopriv::rng

#endif  // GEOPRIV_RNG_ZIPF_H_
