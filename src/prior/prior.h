// Adversarial prior over the study region (paper Sections 2.3 / 6.1): a
// probability field describing where an average user is expected to be. It
// is stored as a histogram on a fine uniform grid built from check-in data,
// and aggregated on demand to the (coarser) cells the mechanisms work on —
// mirroring the paper's procedure of keeping one finest-granularity prior
// and coarsening it per experiment.

#ifndef GEOPRIV_PRIOR_PRIOR_H_
#define GEOPRIV_PRIOR_PRIOR_H_

#include <vector>

#include "base/status.h"
#include "geo/point.h"
#include "spatial/grid.h"

namespace geopriv::prior {

class Prior {
 public:
  // Histogram of `points` over a `granularity`-square grid on `domain`,
  // with optional additive (Laplace-style) smoothing per cell. Points
  // outside the domain are ignored; fails if no point falls inside and
  // smoothing is zero.
  static StatusOr<Prior> FromPoints(geo::BBox domain, int granularity,
                                    const std::vector<geo::Point>& points,
                                    double smoothing = 0.0);

  // Uniform prior (what an adversary with no background knowledge holds).
  static Prior Uniform(geo::BBox domain, int granularity);

  // Reconstructs a prior from precomputed masses (e.g. a client bundle);
  // `masses` must hold granularity^2 nonnegative values with positive sum
  // (normalized internally).
  static StatusOr<Prior> FromMasses(geo::BBox domain, int granularity,
                                    std::vector<double> masses);

  const spatial::UniformGrid& grid() const { return grid_; }

  // Probability mass of fine cell `cell`.
  double mass(int cell) const { return mass_[cell]; }

  // Total probability mass inside `box`, computed by area-weighted overlap
  // with the fine cells (exact when `box` aligns with the fine grid).
  double MassIn(const geo::BBox& box) const;

  // Masses of a family of boxes (e.g. the cells of a coarser grid or the
  // children of an index node).
  std::vector<double> CellMasses(const std::vector<geo::BBox>& cells) const;

  // Conditional distribution over `cells`, i.e. CellMasses normalized to
  // sum to 1. Falls back to the uniform distribution when the region
  // carries (numerically) no mass — the zero-knowledge default.
  std::vector<double> ConditionalOn(const std::vector<geo::BBox>& cells) const;

  // Probability of the user being at each cell of a coarser g x g grid over
  // the whole domain (the flat OPT baseline's prior).
  std::vector<double> OnGrid(const spatial::UniformGrid& coarse) const;

 private:
  Prior(spatial::UniformGrid grid, std::vector<double> mass)
      : grid_(std::move(grid)), mass_(std::move(mass)) {}

  spatial::UniformGrid grid_;
  std::vector<double> mass_;
};

}  // namespace geopriv::prior

#endif  // GEOPRIV_PRIOR_PRIOR_H_
