#include "prior/prior.h"

#include <algorithm>
#include <cmath>

#include "base/check.h"

namespace geopriv::prior {

StatusOr<Prior> Prior::FromPoints(geo::BBox domain, int granularity,
                                  const std::vector<geo::Point>& points,
                                  double smoothing) {
  if (granularity < 1) {
    return Status::InvalidArgument("granularity must be >= 1");
  }
  if (!(domain.Width() > 0.0) || !(domain.Height() > 0.0)) {
    return Status::InvalidArgument("domain must have positive area");
  }
  if (smoothing < 0.0) {
    return Status::InvalidArgument("smoothing must be >= 0");
  }
  spatial::UniformGrid grid(domain, granularity);
  std::vector<double> mass(grid.num_cells(), smoothing);
  double total = smoothing * grid.num_cells();
  for (const geo::Point& p : points) {
    if (!domain.Contains(p)) continue;
    mass[grid.CellOf(p)] += 1.0;
    total += 1.0;
  }
  if (!(total > 0.0)) {
    return Status::InvalidArgument(
        "no points inside the domain and no smoothing");
  }
  for (double& m : mass) m /= total;
  return Prior(std::move(grid), std::move(mass));
}

StatusOr<Prior> Prior::FromMasses(geo::BBox domain, int granularity,
                                  std::vector<double> masses) {
  if (granularity < 1) {
    return Status::InvalidArgument("granularity must be >= 1");
  }
  if (!(domain.Width() > 0.0) || !(domain.Height() > 0.0)) {
    return Status::InvalidArgument("domain must have positive area");
  }
  spatial::UniformGrid grid(domain, granularity);
  if (masses.size() != static_cast<size_t>(grid.num_cells())) {
    return Status::InvalidArgument("masses size must equal granularity^2");
  }
  double total = 0.0;
  for (double m : masses) {
    if (!(m >= 0.0) || !std::isfinite(m)) {
      return Status::InvalidArgument("masses must be finite and >= 0");
    }
    total += m;
  }
  if (!(total > 0.0)) {
    return Status::InvalidArgument("masses must have a positive sum");
  }
  for (double& m : masses) m /= total;
  return Prior(std::move(grid), std::move(masses));
}

Prior Prior::Uniform(geo::BBox domain, int granularity) {
  spatial::UniformGrid grid(domain, granularity);
  std::vector<double> mass(grid.num_cells(),
                           1.0 / static_cast<double>(grid.num_cells()));
  return Prior(std::move(grid), std::move(mass));
}

double Prior::MassIn(const geo::BBox& box) const {
  const geo::BBox& dom = grid_.domain();
  const double cw = grid_.cell_width();
  const double ch = grid_.cell_height();
  const int g = grid_.granularity();
  // Fine-cell index windows overlapped by the box.
  int c0 = static_cast<int>(std::floor((box.min_x - dom.min_x) / cw));
  int c1 = static_cast<int>(std::ceil((box.max_x - dom.min_x) / cw)) - 1;
  int r0 = static_cast<int>(std::floor((box.min_y - dom.min_y) / ch));
  int r1 = static_cast<int>(std::ceil((box.max_y - dom.min_y) / ch)) - 1;
  c0 = std::max(c0, 0);
  r0 = std::max(r0, 0);
  c1 = std::min(c1, g - 1);
  r1 = std::min(r1, g - 1);
  double total = 0.0;
  for (int r = r0; r <= r1; ++r) {
    const double cell_min_y = dom.min_y + r * ch;
    const double oy = std::min(box.max_y, cell_min_y + ch) -
                      std::max(box.min_y, cell_min_y);
    if (oy <= 0.0) continue;
    for (int c = c0; c <= c1; ++c) {
      const double cell_min_x = dom.min_x + c * cw;
      const double ox = std::min(box.max_x, cell_min_x + cw) -
                        std::max(box.min_x, cell_min_x);
      if (ox <= 0.0) continue;
      total += mass_[grid_.cell_at(r, c)] * (ox * oy) / (cw * ch);
    }
  }
  return total;
}

std::vector<double> Prior::CellMasses(
    const std::vector<geo::BBox>& cells) const {
  std::vector<double> masses(cells.size());
  for (size_t i = 0; i < cells.size(); ++i) masses[i] = MassIn(cells[i]);
  return masses;
}

std::vector<double> Prior::ConditionalOn(
    const std::vector<geo::BBox>& cells) const {
  GEOPRIV_CHECK_MSG(!cells.empty(), "conditional prior over empty cell set");
  std::vector<double> masses = CellMasses(cells);
  double total = 0.0;
  for (double m : masses) total += m;
  if (total <= 1e-15) {
    // Region carries no prior mass: fall back to the uninformative prior.
    std::fill(masses.begin(), masses.end(),
              1.0 / static_cast<double>(masses.size()));
    return masses;
  }
  for (double& m : masses) m /= total;
  return masses;
}

std::vector<double> Prior::OnGrid(const spatial::UniformGrid& coarse) const {
  std::vector<geo::BBox> cells(coarse.num_cells());
  for (int i = 0; i < coarse.num_cells(); ++i) {
    cells[i] = coarse.CellBounds(i);
  }
  std::vector<double> masses = CellMasses(cells);
  // Normalize away boundary roundoff.
  double total = 0.0;
  for (double m : masses) total += m;
  if (total > 0.0) {
    for (double& m : masses) m /= total;
  }
  return masses;
}

}  // namespace geopriv::prior
