#include "eval/table.h"

#include <algorithm>
#include <fstream>
#include <iomanip>
#include <sstream>

#include "base/check.h"

namespace geopriv::eval {

void Table::AddRow(std::vector<std::string> cells) {
  GEOPRIV_CHECK_MSG(cells.size() == headers_.size(),
                    "row width must match the header");
  rows_.push_back(std::move(cells));
}

void Table::Print(std::ostream& os) const {
  std::vector<size_t> widths(headers_.size());
  for (size_t c = 0; c < headers_.size(); ++c) {
    widths[c] = headers_[c].size();
    for (const auto& row : rows_) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  auto print_row = [&](const std::vector<std::string>& row) {
    for (size_t c = 0; c < row.size(); ++c) {
      os << std::left << std::setw(static_cast<int>(widths[c]) + 2)
         << row[c];
    }
    os << '\n';
  };
  print_row(headers_);
  std::string rule;
  for (size_t c = 0; c < headers_.size(); ++c) {
    rule += std::string(widths[c], '-') + "  ";
  }
  os << rule << '\n';
  for (const auto& row : rows_) print_row(row);
}

Status Table::WriteCsv(const std::string& path) const {
  std::ofstream out(path);
  if (!out) {
    return Status::IoError("cannot write " + path);
  }
  auto write_row = [&out](const std::vector<std::string>& row) {
    for (size_t c = 0; c < row.size(); ++c) {
      if (c > 0) out << ',';
      out << row[c];
    }
    out << '\n';
  };
  write_row(headers_);
  for (const auto& row : rows_) write_row(row);
  return Status::OK();
}

std::string Fmt(double value, int precision) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << value;
  return os.str();
}

}  // namespace geopriv::eval
