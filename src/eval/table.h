// Minimal aligned-column table printer + CSV writer for the benchmark
// binaries that regenerate the paper's tables and figures.

#ifndef GEOPRIV_EVAL_TABLE_H_
#define GEOPRIV_EVAL_TABLE_H_

#include <ostream>
#include <string>
#include <vector>

#include "base/status.h"

namespace geopriv::eval {

class Table {
 public:
  explicit Table(std::vector<std::string> headers)
      : headers_(std::move(headers)) {}

  // Row length must match the header count.
  void AddRow(std::vector<std::string> cells);

  void Print(std::ostream& os) const;

  Status WriteCsv(const std::string& path) const;

  size_t num_rows() const { return rows_.size(); }

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

// Fixed-precision double formatting ("3.142" for Fmt(3.14159, 3)).
std::string Fmt(double value, int precision);

}  // namespace geopriv::eval

#endif  // GEOPRIV_EVAL_TABLE_H_
