// Experiment harness (paper Section 6): draws request locations from a
// dataset's check-ins, runs a mechanism on each, and reports utility-loss
// and latency statistics.

#ifndef GEOPRIV_EVAL_EVALUATION_H_
#define GEOPRIV_EVAL_EVALUATION_H_

#include <cstdint>
#include <string>
#include <vector>

#include "base/status.h"
#include "geo/distance.h"
#include "mechanisms/mechanism.h"
#include "rng/rng.h"

namespace geopriv::eval {

struct EvalOptions {
  // Number of sanitization requests (the paper uses 3,000).
  int num_requests = 3000;
  uint64_t seed = 2019;
  geo::UtilityMetric metric = geo::UtilityMetric::kEuclidean;
};

struct EvalResult {
  std::string mechanism;
  int requests = 0;
  // Utility loss statistics, in km (d) or km^2 (d^2).
  double mean_loss = 0.0;
  double p50_loss = 0.0;
  double p95_loss = 0.0;
  // Per-request latency.
  double mean_ms = 0.0;
  double max_ms = 0.0;
};

// Uniformly samples `n` requests (with replacement) from the check-ins.
std::vector<geo::Point> SampleRequests(const std::vector<geo::Point>& points,
                                       int n, rng::Rng& rng);

// Runs `mechanism` on requests drawn from `checkins` per `options`.
StatusOr<EvalResult> EvaluateMechanism(
    mechanisms::Mechanism& mechanism,
    const std::vector<geo::Point>& checkins, const EvalOptions& options);

}  // namespace geopriv::eval

#endif  // GEOPRIV_EVAL_EVALUATION_H_
