#include "eval/evaluation.h"

#include <algorithm>
#include <cmath>

#include "base/stopwatch.h"

namespace geopriv::eval {

std::vector<geo::Point> SampleRequests(const std::vector<geo::Point>& points,
                                       int n, rng::Rng& rng) {
  std::vector<geo::Point> requests;
  requests.reserve(n);
  for (int i = 0; i < n; ++i) {
    requests.push_back(points[rng.UniformInt(points.size())]);
  }
  return requests;
}

StatusOr<EvalResult> EvaluateMechanism(
    mechanisms::Mechanism& mechanism,
    const std::vector<geo::Point>& checkins, const EvalOptions& options) {
  if (checkins.empty()) {
    return Status::InvalidArgument("no check-ins to draw requests from");
  }
  if (options.num_requests < 1) {
    return Status::InvalidArgument("num_requests must be >= 1");
  }
  rng::Rng rng(options.seed);
  const std::vector<geo::Point> requests =
      SampleRequests(checkins, options.num_requests, rng);

  EvalResult result;
  result.mechanism = mechanism.name();
  result.requests = options.num_requests;
  std::vector<double> losses;
  losses.reserve(requests.size());
  double total_ms = 0.0;
  for (const geo::Point& x : requests) {
    Stopwatch sw;
    const geo::Point z = mechanism.Report(x, rng);
    const double ms = sw.ElapsedMillis();
    total_ms += ms;
    result.max_ms = std::max(result.max_ms, ms);
    losses.push_back(geo::UtilityLoss(options.metric, x, z));
  }
  double sum = 0.0;
  for (double l : losses) sum += l;
  result.mean_loss = sum / losses.size();
  result.mean_ms = total_ms / losses.size();
  std::sort(losses.begin(), losses.end());
  result.p50_loss = losses[losses.size() / 2];
  result.p95_loss = losses[static_cast<size_t>(losses.size() * 0.95)];
  return result;
}

}  // namespace geopriv::eval
