// Little-endian encode/decode helpers shared by the on-disk formats (the
// v1 ClientBundle and the v2 RegionBundle). Both formats document a
// little-endian byte contract; these helpers make that contract explicit
// instead of relying on the host's native order. On little-endian hosts
// (every platform we build on today) the encode/decode compile down to
// plain loads/stores.

#ifndef GEOPRIV_BASE_ENDIAN_H_
#define GEOPRIV_BASE_ENDIAN_H_

#include <bit>
#include <cstdint>
#include <cstring>
#include <string>

namespace geopriv::base {

inline constexpr bool kLittleEndianHost =
    std::endian::native == std::endian::little;

// The byte-order sentinel every bundle header carries right after its
// magic. Written little-endian; a reader on (or a file from) a big-endian
// machine sees the byte-swapped value and rejects the file instead of
// silently misparsing every field after it.
inline constexpr uint32_t kEndianSentinel = 0x01020304u;
inline constexpr uint32_t kEndianSentinelSwapped = 0x04030201u;

inline void StoreLE32(uint32_t v, unsigned char* out) {
  out[0] = static_cast<unsigned char>(v);
  out[1] = static_cast<unsigned char>(v >> 8);
  out[2] = static_cast<unsigned char>(v >> 16);
  out[3] = static_cast<unsigned char>(v >> 24);
}

inline void StoreLE64(uint64_t v, unsigned char* out) {
  for (int i = 0; i < 8; ++i) {
    out[i] = static_cast<unsigned char>(v >> (8 * i));
  }
}

inline uint32_t LoadLE32(const unsigned char* in) {
  return static_cast<uint32_t>(in[0]) | (static_cast<uint32_t>(in[1]) << 8) |
         (static_cast<uint32_t>(in[2]) << 16) |
         (static_cast<uint32_t>(in[3]) << 24);
}

inline uint64_t LoadLE64(const unsigned char* in) {
  uint64_t v = 0;
  for (int i = 0; i < 8; ++i) {
    v |= static_cast<uint64_t>(in[i]) << (8 * i);
  }
  return v;
}

// Doubles travel as the little-endian bytes of their IEEE-754 bit
// pattern, so a round trip is bit-exact (NaN payloads included).
inline void StoreLEF64(double v, unsigned char* out) {
  StoreLE64(std::bit_cast<uint64_t>(v), out);
}

inline double LoadLEF64(const unsigned char* in) {
  return std::bit_cast<double>(LoadLE64(in));
}

// Append-style writers over a growable byte buffer (the serializers build
// the whole payload in memory, checksum it, then hand it to
// WriteFileAtomic in one shot).
inline void AppendLE32(std::string& out, uint32_t v) {
  unsigned char buf[4];
  StoreLE32(v, buf);
  out.append(reinterpret_cast<const char*>(buf), sizeof(buf));
}

inline void AppendLE64(std::string& out, uint64_t v) {
  unsigned char buf[8];
  StoreLE64(v, buf);
  out.append(reinterpret_cast<const char*>(buf), sizeof(buf));
}

inline void AppendLEF64(std::string& out, double v) {
  AppendLE64(out, std::bit_cast<uint64_t>(v));
}

}  // namespace geopriv::base

#endif  // GEOPRIV_BASE_ENDIAN_H_
