// Deadlock-free data-parallel helper over ThreadPool: the calling thread
// fans a fixed set of independent chunks across the pool *and participates
// itself*. Helpers are recruited with the non-blocking TrySubmit, and
// chunks are handed out by an atomic claim counter, so
//
//  * a full queue or a shut-down pool only lowers the effective
//    parallelism (the caller runs the unclaimed chunks inline);
//  * it is safe to call from one of the pool's own workers — the caller
//    never blocks waiting for a task that might be queued behind it, only
//    for chunks that are actively executing on some thread;
//  * nesting (a chunk body that itself calls ParallelChunks on the same
//    pool) is safe for the same reason.
//
// This is the fan-out primitive of the parallel LP construction pipeline
// (pricing slices, cost tables, simplex dense kernels, row samplers).

#ifndef GEOPRIV_BASE_PARALLEL_FOR_H_
#define GEOPRIV_BASE_PARALLEL_FOR_H_

#include <functional>

namespace geopriv {

class ThreadPool;

// Runs fn(chunk) exactly once for every chunk in [0, num_chunks), using up
// to `parallelism` threads in total: the calling thread plus helpers drawn
// from `pool`. Returns only after every chunk has finished. With a null
// pool or parallelism <= 1 the chunks run inline, in order, on the calling
// thread — callers can rely on that for a bit-exact serial reference.
//
// Chunk bodies must be independent (no chunk may wait on another) and must
// not throw. `fn` is invoked concurrently from several threads; writes to
// shared state must be disjoint per chunk or synchronized by the caller.
void ParallelChunks(ThreadPool* pool, int parallelism, int num_chunks,
                    const std::function<void(int chunk)>& fn);

// Effective total parallelism for a caller-supplied pool: `requested` when
// positive, otherwise pool->num_threads() + 1 (every pool worker plus the
// calling thread), or 1 without a pool.
int EffectiveParallelism(const ThreadPool* pool, int requested);

}  // namespace geopriv

#endif  // GEOPRIV_BASE_PARALLEL_FOR_H_
