// Fixed-size worker thread pool over a bounded MPMC task queue — the
// execution substrate of the sanitization service (src/service/). Two
// deliberate departures from a generic pool:
//
//  * tasks receive the id of the worker running them, so callers can keep
//    per-worker state (deterministic RNG streams, scratch buffers) without
//    any synchronization;
//  * the queue is bounded and exposes a non-blocking TrySubmit, which is
//    how the service applies backpressure: when the queue is full the
//    submission fails immediately instead of growing an unbounded backlog.

#ifndef GEOPRIV_BASE_THREAD_POOL_H_
#define GEOPRIV_BASE_THREAD_POOL_H_

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <utility>
#include <vector>

namespace geopriv {

// Bounded multi-producer multi-consumer queue. All methods are thread-safe.
// Closing wakes every blocked producer and consumer; a closed queue rejects
// pushes but drains its remaining items.
template <typename T>
class BoundedQueue {
 public:
  explicit BoundedQueue(size_t capacity) : capacity_(capacity) {}

  // Non-blocking; false when the queue is full or closed.
  bool TryPush(T item) {
    std::unique_lock<std::mutex> lock(mu_);
    if (closed_ || items_.size() >= capacity_) return false;
    items_.push_back(std::move(item));
    lock.unlock();
    not_empty_.notify_one();
    return true;
  }

  // Blocks until there is space; false when the queue was closed first.
  bool Push(T item) {
    std::unique_lock<std::mutex> lock(mu_);
    not_full_.wait(lock,
                   [&] { return closed_ || items_.size() < capacity_; });
    if (closed_) return false;
    items_.push_back(std::move(item));
    lock.unlock();
    not_empty_.notify_one();
    return true;
  }

  // Blocks until an item is available; false when the queue is closed and
  // drained.
  bool Pop(T* out) {
    std::unique_lock<std::mutex> lock(mu_);
    not_empty_.wait(lock, [&] { return closed_ || !items_.empty(); });
    if (items_.empty()) return false;
    *out = std::move(items_.front());
    items_.pop_front();
    lock.unlock();
    not_full_.notify_one();
    return true;
  }

  void Close() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      closed_ = true;
    }
    not_empty_.notify_all();
    not_full_.notify_all();
  }

  size_t size() const {
    std::lock_guard<std::mutex> lock(mu_);
    return items_.size();
  }

  size_t capacity() const { return capacity_; }

 private:
  const size_t capacity_;
  mutable std::mutex mu_;
  std::condition_variable not_empty_;
  std::condition_variable not_full_;
  std::deque<T> items_;
  bool closed_ = false;
};

class ThreadPool {
 public:
  // Tasks are handed the id (0-based) of the worker executing them.
  using Task = std::function<void(int worker_id)>;

  // Spawns `num_threads` workers (>= 1) over a queue of `queue_capacity`
  // pending tasks.
  ThreadPool(int num_threads, size_t queue_capacity);

  // Drains remaining tasks and joins the workers.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  // Non-blocking submission; false when the queue is full (backpressure)
  // or the pool is shut down.
  bool TrySubmit(Task task);

  // Blocking submission; false only when the pool is shut down.
  bool Submit(Task task);

  // Stops accepting tasks, runs what is already queued, joins the workers.
  // Idempotent; also called by the destructor.
  void Shutdown();

  int num_threads() const { return static_cast<int>(workers_.size()); }
  size_t queue_depth() const { return queue_.size(); }
  size_t queue_capacity() const { return queue_.capacity(); }

 private:
  void WorkerLoop(int worker_id);

  BoundedQueue<Task> queue_;
  std::vector<std::thread> workers_;
};

}  // namespace geopriv

#endif  // GEOPRIV_BASE_THREAD_POOL_H_
