#include "base/atomic_file.h"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <fstream>

namespace geopriv::base {

namespace {

std::string ErrnoMessage(const std::string& what, const std::string& path) {
  return what + " " + path + ": " + std::strerror(errno);
}

// Directory part of `path` ("." when the path has no slash) — where the
// temp file must live for the rename to stay within one filesystem.
std::string DirOf(const std::string& path) {
  const size_t slash = path.find_last_of('/');
  if (slash == std::string::npos) return ".";
  if (slash == 0) return "/";
  return path.substr(0, slash);
}

Status WriteAll(int fd, const char* data, size_t size,
                const std::string& path) {
  size_t written = 0;
  while (written < size) {
    const ssize_t n = ::write(fd, data + written, size - written);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status::IoError(ErrnoMessage("write to", path));
    }
    written += static_cast<size_t>(n);
  }
  return Status::OK();
}

}  // namespace

Status WriteFileAtomic(const std::string& path, std::string_view bytes) {
  if (path.empty()) {
    return Status::InvalidArgument("empty path");
  }
  // Unique temp name per process and call, so concurrent writers to the
  // same target never share a temp file (last rename wins, atomically).
  static std::atomic<uint64_t> counter{0};
  const std::string tmp =
      path + ".tmp." + std::to_string(static_cast<long long>(::getpid())) +
      "." + std::to_string(counter.fetch_add(1, std::memory_order_relaxed));

  const int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_EXCL, 0644);
  if (fd < 0) {
    return Status::IoError(ErrnoMessage("cannot create temp file", tmp));
  }
  Status status = WriteAll(fd, bytes.data(), bytes.size(), tmp);
  if (status.ok() && ::fsync(fd) != 0) {
    status = Status::IoError(ErrnoMessage("fsync of", tmp));
  }
  if (::close(fd) != 0 && status.ok()) {
    status = Status::IoError(ErrnoMessage("close of", tmp));
  }
  if (status.ok() && ::rename(tmp.c_str(), path.c_str()) != 0) {
    status = Status::IoError(ErrnoMessage("rename to", path));
  }
  if (!status.ok()) {
    ::unlink(tmp.c_str());
    return status;
  }
  // Persist the directory entry; best-effort (some filesystems refuse
  // directory fsync) — the data itself is already durable.
  const int dir_fd = ::open(DirOf(path).c_str(), O_RDONLY | O_DIRECTORY);
  if (dir_fd >= 0) {
    ::fsync(dir_fd);
    ::close(dir_fd);
  }
  return Status::OK();
}

StatusOr<std::string> ReadFileToString(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    return Status::IoError("cannot open " + path);
  }
  std::string contents((std::istreambuf_iterator<char>(in)),
                       std::istreambuf_iterator<char>());
  if (in.bad()) {
    return Status::IoError("read of " + path + " failed");
  }
  return contents;
}

}  // namespace geopriv::base
