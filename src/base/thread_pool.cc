#include "base/thread_pool.h"

#include "base/check.h"

namespace geopriv {

ThreadPool::ThreadPool(int num_threads, size_t queue_capacity)
    : queue_(queue_capacity) {
  GEOPRIV_CHECK_MSG(num_threads >= 1, "thread pool needs >= 1 worker");
  GEOPRIV_CHECK_MSG(queue_capacity >= 1, "queue capacity must be >= 1");
  workers_.reserve(static_cast<size_t>(num_threads));
  for (int i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this, i] { WorkerLoop(i); });
  }
}

ThreadPool::~ThreadPool() { Shutdown(); }

bool ThreadPool::TrySubmit(Task task) { return queue_.TryPush(std::move(task)); }

bool ThreadPool::Submit(Task task) { return queue_.Push(std::move(task)); }

void ThreadPool::Shutdown() {
  queue_.Close();
  for (std::thread& w : workers_) {
    if (w.joinable()) w.join();
  }
}

void ThreadPool::WorkerLoop(int worker_id) {
  Task task;
  while (queue_.Pop(&task)) {
    task(worker_id);
    task = nullptr;  // release captured state before blocking on the queue
  }
}

}  // namespace geopriv
