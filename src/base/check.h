// Invariant-checking macros. GEOPRIV_CHECK fires in all build types and is
// reserved for programming errors (broken invariants), never for user input —
// user input errors are reported through Status.

#ifndef GEOPRIV_BASE_CHECK_H_
#define GEOPRIV_BASE_CHECK_H_

#include <cstdio>
#include <cstdlib>

#define GEOPRIV_CHECK(condition)                                         \
  do {                                                                   \
    if (!(condition)) {                                                  \
      std::fprintf(stderr, "GEOPRIV_CHECK failed at %s:%d: %s\n",        \
                   __FILE__, __LINE__, #condition);                      \
      std::abort();                                                      \
    }                                                                    \
  } while (false)

#define GEOPRIV_CHECK_MSG(condition, msg)                                \
  do {                                                                   \
    if (!(condition)) {                                                  \
      std::fprintf(stderr, "GEOPRIV_CHECK failed at %s:%d: %s (%s)\n",   \
                   __FILE__, __LINE__, #condition, msg);                 \
      std::abort();                                                      \
    }                                                                    \
  } while (false)

// Checks that a Status expression is OK; aborts with the message otherwise.
#define GEOPRIV_CHECK_OK(expr)                                           \
  do {                                                                   \
    ::geopriv::Status _geopriv_check_status = (expr);                    \
    if (!_geopriv_check_status.ok()) {                                   \
      std::fprintf(stderr, "GEOPRIV_CHECK_OK failed at %s:%d: %s\n",     \
                   __FILE__, __LINE__,                                   \
                   _geopriv_check_status.ToString().c_str());            \
      std::abort();                                                      \
    }                                                                    \
  } while (false)

#endif  // GEOPRIV_BASE_CHECK_H_
