// Per-thread slot assignment for cache-line-padded counter shards.
//
// Hot-path statistics (MSM walk counters, service request counters) used to
// be single atomics: every worker's fetch_add landed on the same cache
// line, so the "lock-free" counters still serialized the warm path through
// cache-coherence traffic. The fix is standard: split each counter into N
// padded slots, have every thread increment its own slot with a relaxed
// add, and sum the slots at metrics-read time. Readers may observe a sum a
// few events stale, which is the usual trade for contention-free recording.
//
// This header provides the two building blocks the sharded structs share:
// the slot alignment and the thread -> slot mapping. Counter structs keep
// their own `struct alignas(kCounterSlotAlign) Slot { ... }` arrays so the
// member lists stay next to the code that interprets them (see
// MultiStepMechanism::AtomicStats and service::Metrics).

#ifndef GEOPRIV_BASE_SHARDED_COUNTER_H_
#define GEOPRIV_BASE_SHARDED_COUNTER_H_

#include <atomic>
#include <cstdint>

namespace geopriv {

// Two destructive-interference lines: adjacent slots never share a line
// even on CPUs that prefetch line pairs.
inline constexpr std::size_t kCounterSlotAlign = 128;

// Stable slot index in [0, num_slots) for the calling thread. Threads are
// numbered round-robin on first use, so up to `num_slots` concurrent
// threads get private slots and the assignment never changes for a live
// thread. `num_slots` must be >= 1.
inline int ThreadCounterSlot(int num_slots) {
  static std::atomic<std::uint32_t> next_thread{0};
  thread_local const std::uint32_t thread_ordinal =
      next_thread.fetch_add(1, std::memory_order_relaxed);
  return static_cast<int>(thread_ordinal %
                          static_cast<std::uint32_t>(num_slots));
}

}  // namespace geopriv

#endif  // GEOPRIV_BASE_SHARDED_COUNTER_H_
