#include "base/parallel_for.h"

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <memory>
#include <mutex>

#include "base/thread_pool.h"

namespace geopriv {

int EffectiveParallelism(const ThreadPool* pool, int requested) {
  if (requested > 0) return requested;
  return pool != nullptr ? pool->num_threads() + 1 : 1;
}

namespace {

// Shared between the caller and its helper tasks. Owned by shared_ptr: a
// helper that was queued but only starts after the call returned (all
// chunks already claimed) still finds valid memory, claims nothing, and
// exits without ever touching `fn`.
struct ChunkState {
  std::atomic<int> next{0};
  std::atomic<int> done{0};
  int total = 0;
  const std::function<void(int)>* fn = nullptr;
  std::mutex mu;
  std::condition_variable cv;
};

void DrainChunks(const std::shared_ptr<ChunkState>& state) {
  while (true) {
    const int chunk = state->next.fetch_add(1, std::memory_order_relaxed);
    if (chunk >= state->total) return;
    // `fn` is guaranteed alive here: the caller returns only once
    // done == total, and this claim is one of the `total` not yet done.
    (*state->fn)(chunk);
    if (state->done.fetch_add(1, std::memory_order_acq_rel) + 1 ==
        state->total) {
      // Taking the lock pairs with the caller's predicate check, so the
      // final notification cannot slip between its test and its wait.
      std::lock_guard<std::mutex> lock(state->mu);
      state->cv.notify_all();
    }
  }
}

}  // namespace

void ParallelChunks(ThreadPool* pool, int parallelism, int num_chunks,
                    const std::function<void(int)>& fn) {
  if (num_chunks <= 0) return;
  if (pool == nullptr || parallelism <= 1 || num_chunks == 1) {
    for (int chunk = 0; chunk < num_chunks; ++chunk) fn(chunk);
    return;
  }
  auto state = std::make_shared<ChunkState>();
  state->total = num_chunks;
  state->fn = &fn;
  const int helpers = std::min(parallelism - 1, num_chunks - 1);
  for (int h = 0; h < helpers; ++h) {
    // Non-blocking on purpose: a full queue or a shut-down pool means
    // fewer helpers, never a deadlock — the caller picks up every
    // unclaimed chunk below.
    if (!pool->TrySubmit([state](int) { DrainChunks(state); })) break;
  }
  DrainChunks(state);
  std::unique_lock<std::mutex> lock(state->mu);
  state->cv.wait(lock, [&] {
    return state->done.load(std::memory_order_acquire) == state->total;
  });
}

}  // namespace geopriv
