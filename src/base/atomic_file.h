// Crash-atomic file replacement: write to a temp file in the target's
// directory, fsync, then rename over the target. A crash at any point
// leaves either the old file or the new file at the final path — never a
// truncated or interleaved mix. Used by every bundle writer: a serving
// process must be able to trust that a bundle at its configured path is
// complete whenever it exists.

#ifndef GEOPRIV_BASE_ATOMIC_FILE_H_
#define GEOPRIV_BASE_ATOMIC_FILE_H_

#include <string>
#include <string_view>

#include "base/status.h"

namespace geopriv::base {

// Atomically replaces (or creates) `path` with `bytes`. The temp file is
// created next to `path` (same filesystem, so the rename is atomic) and
// unlinked on any failure; the directory entry is fsynced after the rename
// so the replacement survives a power cut.
Status WriteFileAtomic(const std::string& path, std::string_view bytes);

// Reads the whole file into a string (binary). IoError when the file
// cannot be opened or read.
StatusOr<std::string> ReadFileToString(const std::string& path);

}  // namespace geopriv::base

#endif  // GEOPRIV_BASE_ATOMIC_FILE_H_
