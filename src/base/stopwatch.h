// Monotonic wall-clock stopwatch used by solvers (time limits) and the
// evaluation harness (latency measurement).

#ifndef GEOPRIV_BASE_STOPWATCH_H_
#define GEOPRIV_BASE_STOPWATCH_H_

#include <chrono>

namespace geopriv {

class Stopwatch {
 public:
  Stopwatch() : start_(Clock::now()) {}

  void Reset() { start_ = Clock::now(); }

  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  double ElapsedMillis() const { return ElapsedSeconds() * 1e3; }

  // Start instant as steady-clock nanosecond ticks — the scale
  // obs::NowTicks() uses — so a [submission, now] span needs no second
  // clock read.
  uint64_t StartTicks() const {
    return static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            start_.time_since_epoch())
            .count());
  }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace geopriv

#endif  // GEOPRIV_BASE_STOPWATCH_H_
