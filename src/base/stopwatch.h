// Monotonic wall-clock stopwatch used by solvers (time limits) and the
// evaluation harness (latency measurement).

#ifndef GEOPRIV_BASE_STOPWATCH_H_
#define GEOPRIV_BASE_STOPWATCH_H_

#include <chrono>

namespace geopriv {

class Stopwatch {
 public:
  Stopwatch() : start_(Clock::now()) {}

  void Reset() { start_ = Clock::now(); }

  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  double ElapsedMillis() const { return ElapsedSeconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace geopriv

#endif  // GEOPRIV_BASE_STOPWATCH_H_
