// Status / StatusOr: exception-free error handling, in the style of
// Abseil/Arrow/RocksDB. Every fallible operation in geopriv returns a Status
// (or StatusOr<T> when it also produces a value); callers propagate with
// GEOPRIV_RETURN_IF_ERROR / GEOPRIV_ASSIGN_OR_RETURN.

#ifndef GEOPRIV_BASE_STATUS_H_
#define GEOPRIV_BASE_STATUS_H_

#include <cstdlib>
#include <ostream>
#include <string>
#include <utility>
#include <variant>

namespace geopriv {

enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kFailedPrecondition,
  kOutOfRange,
  kNotFound,
  kResourceExhausted,
  kDeadlineExceeded,
  kInternal,
  kUnimplemented,
  kIoError,
};

// Returns a stable human-readable name ("Ok", "InvalidArgument", ...).
const char* StatusCodeToString(StatusCode code);

class Status {
 public:
  // Default: OK.
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  Status(const Status&) = default;
  Status& operator=(const Status&) = default;
  Status(Status&&) = default;
  Status& operator=(Status&&) = default;

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  static Status DeadlineExceeded(std::string msg) {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }
  static Status IoError(std::string msg) {
    return Status(StatusCode::kIoError, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  // "Ok" or "InvalidArgument: <message>".
  std::string ToString() const;

 private:
  StatusCode code_;
  std::string message_;
};

std::ostream& operator<<(std::ostream& os, const Status& status);

// Value-or-error. Accessing value() on an error aborts (programming error);
// check ok() or use GEOPRIV_ASSIGN_OR_RETURN.
template <typename T>
class StatusOr {
 public:
  StatusOr(Status status)  // NOLINT: implicit by design, mirrors absl.
      : rep_(std::move(status)) {
    AbortIfOkStatus();
  }
  StatusOr(T value)  // NOLINT: implicit by design, mirrors absl.
      : rep_(std::move(value)) {}

  bool ok() const { return std::holds_alternative<T>(rep_); }

  const Status& status() const {
    static const Status kOk;
    if (ok()) return kOk;
    return std::get<Status>(rep_);
  }

  const T& value() const& {
    AbortIfError();
    return std::get<T>(rep_);
  }
  T& value() & {
    AbortIfError();
    return std::get<T>(rep_);
  }
  T&& value() && {
    AbortIfError();
    return std::move(std::get<T>(rep_));
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  void AbortIfError() const {
    if (!ok()) {
      std::abort();
    }
  }
  void AbortIfOkStatus() const {
    if (std::holds_alternative<Status>(rep_) &&
        std::get<Status>(rep_).ok()) {
      // An OK Status carries no value; constructing a StatusOr from it is a
      // bug in the caller.
      std::abort();
    }
  }

  std::variant<Status, T> rep_;
};

}  // namespace geopriv

// Propagates a non-OK status to the caller.
#define GEOPRIV_RETURN_IF_ERROR(expr)                \
  do {                                               \
    ::geopriv::Status _geopriv_status = (expr);      \
    if (!_geopriv_status.ok()) return _geopriv_status; \
  } while (false)

#define GEOPRIV_CONCAT_IMPL_(a, b) a##b
#define GEOPRIV_CONCAT_(a, b) GEOPRIV_CONCAT_IMPL_(a, b)

// GEOPRIV_ASSIGN_OR_RETURN(auto x, Compute()): on error, returns the status.
#define GEOPRIV_ASSIGN_OR_RETURN(lhs, rexpr)                              \
  GEOPRIV_ASSIGN_OR_RETURN_IMPL_(                                         \
      GEOPRIV_CONCAT_(_geopriv_statusor_, __LINE__), lhs, rexpr)

#define GEOPRIV_ASSIGN_OR_RETURN_IMPL_(statusor, lhs, rexpr) \
  auto statusor = (rexpr);                                   \
  if (!statusor.ok()) return statusor.status();              \
  lhs = std::move(statusor).value()

#endif  // GEOPRIV_BASE_STATUS_H_
