#include "base/status.h"

namespace geopriv {

const char* StatusCodeToString(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "Ok";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kFailedPrecondition:
      return "FailedPrecondition";
    case StatusCode::kOutOfRange:
      return "OutOfRange";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kResourceExhausted:
      return "ResourceExhausted";
    case StatusCode::kDeadlineExceeded:
      return "DeadlineExceeded";
    case StatusCode::kInternal:
      return "Internal";
    case StatusCode::kUnimplemented:
      return "Unimplemented";
    case StatusCode::kIoError:
      return "IoError";
  }
  return "Unknown";
}

std::string Status::ToString() const {
  if (ok()) return "Ok";
  std::string result = StatusCodeToString(code_);
  if (!message_.empty()) {
    result += ": ";
    result += message_;
  }
  return result;
}

std::ostream& operator<<(std::ostream& os, const Status& status) {
  return os << status.ToString();
}

}  // namespace geopriv
