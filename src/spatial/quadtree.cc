#include "spatial/quadtree.h"

#include <algorithm>
#include <cmath>

#include "base/check.h"

namespace geopriv::spatial {

StatusOr<AdaptiveQuadTree> AdaptiveQuadTree::Create(
    geo::BBox domain, const std::vector<geo::Point>& points, int max_height,
    int split_threshold) {
  if (max_height < 1 || max_height > 16) {
    return Status::InvalidArgument("max_height must be in [1, 16]");
  }
  if (split_threshold < 1) {
    return Status::InvalidArgument("split_threshold must be >= 1");
  }
  if (!(domain.Width() > 0.0) || !(domain.Height() > 0.0)) {
    return Status::InvalidArgument("domain must have positive area");
  }
  AdaptiveQuadTree tree;
  tree.level_side_sum_.assign(max_height + 1, 0.0);
  tree.level_count_.assign(max_height + 1, 0);
  std::vector<geo::Point> inside;
  inside.reserve(points.size());
  for (const geo::Point& p : points) {
    if (domain.Contains(p)) inside.push_back(p);
  }
  tree.nodes_.push_back(
      {domain, -1, 0, static_cast<int>(inside.size())});
  tree.Build(0, std::move(inside), max_height, split_threshold);
  return tree;
}

void AdaptiveQuadTree::Build(int node, std::vector<geo::Point> points,
                             int max_height, int split_threshold) {
  const geo::BBox bounds = nodes_[node].bounds;
  const int level = nodes_[node].level;
  realized_height_ = std::max(realized_height_, level);
  if (level >= max_height ||
      static_cast<int>(points.size()) <= split_threshold) {
    return;
  }
  const geo::Point c = bounds.Center();
  const int first_child = static_cast<int>(nodes_.size());
  nodes_[node].first_child = first_child;
  const geo::BBox quadrants[4] = {
      {bounds.min_x, bounds.min_y, c.x, c.y},  // SW
      {c.x, bounds.min_y, bounds.max_x, c.y},  // SE
      {bounds.min_x, c.y, c.x, bounds.max_y},  // NW
      {c.x, c.y, bounds.max_x, bounds.max_y},  // NE
  };
  std::vector<std::vector<geo::Point>> parts(4);
  for (const geo::Point& p : points) {
    const int q = (p.x >= c.x ? 1 : 0) + (p.y >= c.y ? 2 : 0);
    parts[q].push_back(p);
  }
  points.clear();
  points.shrink_to_fit();
  for (int q = 0; q < 4; ++q) {
    nodes_.push_back({quadrants[q], -1, level + 1,
                      static_cast<int>(parts[q].size())});
    level_side_sum_[level + 1] += std::sqrt(quadrants[q].Area());
    ++level_count_[level + 1];
  }
  for (int q = 0; q < 4; ++q) {
    Build(first_child + q, std::move(parts[q]), max_height, split_threshold);
  }
}

geo::BBox AdaptiveQuadTree::Bounds(NodeIndex node) const {
  GEOPRIV_CHECK_MSG(node >= 0 &&
                        node < static_cast<NodeIndex>(nodes_.size()),
                    "node out of range");
  return nodes_[node].bounds;
}

bool AdaptiveQuadTree::IsLeaf(NodeIndex node) const {
  return nodes_[node].first_child < 0;
}

std::vector<ChildInfo> AdaptiveQuadTree::Children(NodeIndex node) const {
  GEOPRIV_CHECK_MSG(!IsLeaf(node), "leaf node has no children");
  const int first = nodes_[node].first_child;
  std::vector<ChildInfo> children;
  children.reserve(4);
  for (int q = 0; q < 4; ++q) {
    children.push_back({first + q, nodes_[first + q].bounds});
  }
  return children;
}

double AdaptiveQuadTree::TypicalCellSide(int level) const {
  GEOPRIV_CHECK_MSG(level >= 1 &&
                        level < static_cast<int>(level_count_.size()),
                    "level out of range");
  if (level_count_[level] == 0) return 0.0;
  return level_side_sum_[level] / level_count_[level];
}

}  // namespace geopriv::spatial
