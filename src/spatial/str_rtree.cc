#include "spatial/str_rtree.h"

#include <algorithm>
#include <cmath>
#include <queue>

#include "base/check.h"
#include "geo/distance.h"

namespace geopriv::spatial {

StatusOr<StrRTree> StrRTree::Build(std::vector<geo::Point> points,
                                   int leaf_capacity) {
  if (points.empty()) {
    return Status::InvalidArgument("R-tree needs at least one point");
  }
  if (leaf_capacity < 2) {
    return Status::InvalidArgument("leaf_capacity must be >= 2");
  }
  StrRTree tree;
  const int n = static_cast<int>(points.size());
  tree.ids_.resize(n);
  for (int i = 0; i < n; ++i) tree.ids_[i] = i;

  // STR leaf packing: sort by x, cut into vertical slices of
  // ceil(sqrt(n / capacity)) groups, sort each slice by y, pack runs of
  // `leaf_capacity` points into leaves.
  std::sort(tree.ids_.begin(), tree.ids_.end(), [&points](int a, int b) {
    return points[a].x < points[b].x;
  });
  const int num_leaves = (n + leaf_capacity - 1) / leaf_capacity;
  const int slices =
      std::max(1, static_cast<int>(std::ceil(std::sqrt(num_leaves))));
  const int slice_size = (n + slices - 1) / slices;
  for (int s = 0; s < slices; ++s) {
    const int lo = s * slice_size;
    const int hi = std::min(n, lo + slice_size);
    if (lo >= hi) break;
    std::sort(tree.ids_.begin() + lo, tree.ids_.begin() + hi,
              [&points](int a, int b) { return points[a].y < points[b].y; });
  }
  tree.points_.resize(n);
  tree.slot_of_.resize(n);
  for (int i = 0; i < n; ++i) {
    tree.points_[i] = points[tree.ids_[i]];
    tree.slot_of_[tree.ids_[i]] = i;
  }

  // Build leaf nodes.
  std::vector<int> level;  // node indices of the level being built
  for (int lo = 0; lo < n; lo += leaf_capacity) {
    const int hi = std::min(n, lo + leaf_capacity);
    geo::BBox box{tree.points_[lo].x, tree.points_[lo].y, tree.points_[lo].x,
                  tree.points_[lo].y};
    for (int i = lo + 1; i < hi; ++i) {
      box = box.Union({tree.points_[i].x, tree.points_[i].y,
                       tree.points_[i].x, tree.points_[i].y});
    }
    tree.nodes_.push_back({box, lo, hi, true});
    level.push_back(static_cast<int>(tree.nodes_.size()) - 1);
  }

  // Pack upper levels (children of one parent are contiguous by
  // construction).
  const int fanout = leaf_capacity;
  while (level.size() > 1) {
    std::vector<int> next;
    for (size_t lo = 0; lo < level.size(); lo += fanout) {
      const size_t hi = std::min(level.size(), lo + fanout);
      geo::BBox box = tree.nodes_[level[lo]].bounds;
      for (size_t i = lo + 1; i < hi; ++i) {
        box = box.Union(tree.nodes_[level[i]].bounds);
      }
      tree.nodes_.push_back(
          {box, level[lo], level[hi - 1] + 1, false});
      next.push_back(static_cast<int>(tree.nodes_.size()) - 1);
    }
    level = std::move(next);
  }
  tree.root_ = level[0];
  return tree;
}

std::vector<int> StrRTree::KNearest(geo::Point query, int k) const {
  GEOPRIV_CHECK_MSG(k >= 1, "k must be >= 1");
  // Best-first search over nodes and points with a min-heap on distance.
  struct Entry {
    double dist2;
    int index;    // node index, or point slot when is_point
    bool is_point;
    bool operator>(const Entry& o) const { return dist2 > o.dist2; }
  };
  std::priority_queue<Entry, std::vector<Entry>, std::greater<Entry>> heap;
  heap.push({nodes_[root_].bounds.SquaredDistanceTo(query), root_, false});
  std::vector<int> result;
  while (!heap.empty() && static_cast<int>(result.size()) < k) {
    const Entry e = heap.top();
    heap.pop();
    if (e.is_point) {
      result.push_back(ids_[e.index]);
      continue;
    }
    const Node& node = nodes_[e.index];
    if (node.leaf) {
      for (int i = node.first; i < node.last; ++i) {
        heap.push({geo::SquaredEuclidean(points_[i], query), i, true});
      }
    } else {
      for (int c = node.first; c < node.last; ++c) {
        heap.push({nodes_[c].bounds.SquaredDistanceTo(query), c, false});
      }
    }
  }
  return result;
}

int StrRTree::Nearest(geo::Point query) const {
  return KNearest(query, 1)[0];
}

std::vector<int> StrRTree::InRange(const geo::BBox& box) const {
  std::vector<int> result;
  std::vector<int> stack = {root_};
  while (!stack.empty()) {
    const Node& node = nodes_[stack.back()];
    stack.pop_back();
    if (!node.bounds.Intersects(box)) continue;
    if (node.leaf) {
      for (int i = node.first; i < node.last; ++i) {
        if (box.Contains(points_[i])) result.push_back(ids_[i]);
      }
    } else {
      for (int c = node.first; c < node.last; ++c) stack.push_back(c);
    }
  }
  return result;
}

}  // namespace geopriv::spatial
