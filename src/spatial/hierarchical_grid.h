// GeoInd-preserving Hierarchical Index (GIHI, paper Section 4): a uniform
// hierarchical grid with fanout g x g at every level. Level i partitions the
// domain into g^i x g^i cells; nodes are implicit (pure index arithmetic),
// so the structure costs O(1) memory regardless of height.

#ifndef GEOPRIV_SPATIAL_HIERARCHICAL_GRID_H_
#define GEOPRIV_SPATIAL_HIERARCHICAL_GRID_H_

#include <vector>

#include "base/status.h"
#include "spatial/hierarchical_partition.h"

namespace geopriv::spatial {

class HierarchicalGrid final : public HierarchicalPartition {
 public:
  // `granularity` = g (fanout g^2 per node), `height` = number of levels
  // below the root. Requires g >= 2, height >= 1, and a positive-area
  // domain.
  static StatusOr<HierarchicalGrid> Create(geo::BBox domain, int granularity,
                                           int height);

  int height() const override { return height_; }
  int granularity() const { return g_; }

  geo::BBox Bounds(NodeIndex node) const override;
  bool IsLeaf(NodeIndex node) const override;
  std::vector<ChildInfo> Children(NodeIndex node) const override;
  double TypicalCellSide(int level) const override;

  // Depth of a node (root = 0).
  int LevelOf(NodeIndex node) const;

  // The node at `level` whose cell contains `p` (clamped to the domain).
  NodeIndex NodeAt(int level, geo::Point p) const;

  // Number of cells along one axis at `level` (= g^level).
  int64_t SideCells(int level) const { return side_[level]; }

 private:
  HierarchicalGrid(geo::BBox domain, int granularity, int height);

  geo::BBox domain_;
  int g_;
  int height_;
  std::vector<int64_t> side_;    // g^level per level
  std::vector<int64_t> offset_;  // first NodeIndex of each level
};

}  // namespace geopriv::spatial

#endif  // GEOPRIV_SPATIAL_HIERARCHICAL_GRID_H_
