// Uniform g x g grid over a rectangular domain. Cells are indexed row-major
// from the south-west corner: cell = row * g + col, row growing with y.
// This is the paper's discretization device: user locations snap to cell
// centers ("logical locations"), and the OPT mechanism operates on the cell
// set.

#ifndef GEOPRIV_SPATIAL_GRID_H_
#define GEOPRIV_SPATIAL_GRID_H_

#include <vector>

#include "base/check.h"
#include "geo/point.h"

namespace geopriv::spatial {

class UniformGrid {
 public:
  // Requires granularity >= 1 and a box with positive area.
  UniformGrid(geo::BBox domain, int granularity)
      : domain_(domain), g_(granularity) {
    GEOPRIV_CHECK_MSG(granularity >= 1, "granularity must be >= 1");
    GEOPRIV_CHECK_MSG(domain.Width() > 0 && domain.Height() > 0,
                      "grid domain must have positive area");
    cell_w_ = domain.Width() / g_;
    cell_h_ = domain.Height() / g_;
  }

  int granularity() const { return g_; }
  int num_cells() const { return g_ * g_; }
  const geo::BBox& domain() const { return domain_; }
  double cell_width() const { return cell_w_; }
  double cell_height() const { return cell_h_; }

  int row_of(int cell) const { return cell / g_; }
  int col_of(int cell) const { return cell % g_; }
  int cell_at(int row, int col) const { return row * g_ + col; }

  // Cell containing `p`; points outside the domain are clamped to the
  // nearest boundary cell.
  int CellOf(geo::Point p) const {
    int col = static_cast<int>((p.x - domain_.min_x) / cell_w_);
    int row = static_cast<int>((p.y - domain_.min_y) / cell_h_);
    col = col < 0 ? 0 : (col >= g_ ? g_ - 1 : col);
    row = row < 0 ? 0 : (row >= g_ ? g_ - 1 : row);
    return cell_at(row, col);
  }

  // True if `p` lies inside the domain (boundary included).
  bool Contains(geo::Point p) const { return domain_.Contains(p); }

  geo::Point CenterOf(int cell) const {
    return {domain_.min_x + (col_of(cell) + 0.5) * cell_w_,
            domain_.min_y + (row_of(cell) + 0.5) * cell_h_};
  }

  geo::BBox CellBounds(int cell) const {
    const int r = row_of(cell);
    const int c = col_of(cell);
    return {domain_.min_x + c * cell_w_, domain_.min_y + r * cell_h_,
            domain_.min_x + (c + 1) * cell_w_,
            domain_.min_y + (r + 1) * cell_h_};
  }

  // Centers of all cells, in cell order.
  std::vector<geo::Point> AllCenters() const {
    std::vector<geo::Point> centers(num_cells());
    for (int i = 0; i < num_cells(); ++i) centers[i] = CenterOf(i);
    return centers;
  }

 private:
  geo::BBox domain_;
  int g_;
  double cell_w_;
  double cell_h_;
};

}  // namespace geopriv::spatial

#endif  // GEOPRIV_SPATIAL_GRID_H_
