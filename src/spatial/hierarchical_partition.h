// Abstract hierarchical space partition, the index the multi-step mechanism
// walks (paper Section 4, footnote 4: "the MSM concept applies to any
// hierarchical data structure without node overlap, e.g., R+-trees or
// k-d-trees"). Children of a node partition its bounds without overlap.
//
// Implementations: HierarchicalGrid (the paper's GIHI), KdPartition
// (data-adaptive, equal-mass children) and AdaptiveQuadTree (depth varies
// with data density) — the paper's future-work structures.

#ifndef GEOPRIV_SPATIAL_HIERARCHICAL_PARTITION_H_
#define GEOPRIV_SPATIAL_HIERARCHICAL_PARTITION_H_

#include <cstdint>
#include <vector>

#include "geo/point.h"

namespace geopriv::spatial {

// Stable node identifier, unique across the whole tree (0 = root).
using NodeIndex = int64_t;

struct ChildInfo {
  NodeIndex id;
  geo::BBox bounds;
};

class HierarchicalPartition {
 public:
  virtual ~HierarchicalPartition() = default;

  static constexpr NodeIndex kRoot = 0;

  // Number of levels below the root on the deepest path.
  virtual int height() const = 0;

  virtual geo::BBox Bounds(NodeIndex node) const = 0;

  // True when `node` has no children.
  virtual bool IsLeaf(NodeIndex node) const = 0;

  // Children of an internal node, in a stable order. Their bounds tile
  // Bounds(node).
  virtual std::vector<ChildInfo> Children(NodeIndex node) const = 0;

  // Representative side length (km) of a cell at depth `level` (1-based:
  // level 1 = children of the root). Drives the budget-allocation model.
  virtual double TypicalCellSide(int level) const = 0;
};

}  // namespace geopriv::spatial

#endif  // GEOPRIV_SPATIAL_HIERARCHICAL_PARTITION_H_
