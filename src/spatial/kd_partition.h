// Data-adaptive hierarchical partition in the spirit of a k-d tree: every
// internal node splits into g x g rectangular children whose boundaries
// follow the empirical quantiles of the data (x first, then y within each
// slab), so children carry roughly equal numbers of points. One of the
// paper's future-work index structures (Section 8) for skewed priors.

#ifndef GEOPRIV_SPATIAL_KD_PARTITION_H_
#define GEOPRIV_SPATIAL_KD_PARTITION_H_

#include <vector>

#include "base/status.h"
#include "spatial/hierarchical_partition.h"

namespace geopriv::spatial {

class KdPartition final : public HierarchicalPartition {
 public:
  // Builds a height-`height` tree over `domain`, adapting split boundaries
  // to `points`. Nodes with too few points fall back to uniform splits.
  // Requires granularity >= 2, height in [1, 12].
  static StatusOr<KdPartition> Create(geo::BBox domain,
                                      const std::vector<geo::Point>& points,
                                      int granularity, int height);

  int height() const override { return height_; }
  geo::BBox Bounds(NodeIndex node) const override;
  bool IsLeaf(NodeIndex node) const override;
  std::vector<ChildInfo> Children(NodeIndex node) const override;
  double TypicalCellSide(int level) const override;

 private:
  struct Node {
    geo::BBox bounds;
    int first_child = -1;  // children are contiguous; -1 for leaves
    int level = 0;
  };

  KdPartition(int granularity, int height)
      : g_(granularity), height_(height) {}

  void Build(int node, std::vector<geo::Point> points);

  int g_;
  int height_;
  std::vector<Node> nodes_;
  std::vector<double> level_side_sum_;
  std::vector<int> level_count_;
};

}  // namespace geopriv::spatial

#endif  // GEOPRIV_SPATIAL_KD_PARTITION_H_
