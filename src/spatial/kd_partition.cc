#include "spatial/kd_partition.h"

#include <algorithm>
#include <cmath>

#include "base/check.h"

namespace geopriv::spatial {

namespace {

// Interior boundaries (count g-1) splitting [lo, hi] so that the given
// sorted coordinates are distributed evenly; falls back to uniform spacing
// when the quantiles are degenerate.
std::vector<double> SplitBoundaries(double lo, double hi,
                                    const std::vector<double>& sorted,
                                    int g) {
  std::vector<double> bounds(g + 1);
  bounds[0] = lo;
  bounds[g] = hi;
  const size_t n = sorted.size();
  bool ok = n >= static_cast<size_t>(4 * g);
  if (ok) {
    for (int i = 1; i < g; ++i) {
      const size_t idx = (n * i) / g;
      bounds[i] = sorted[idx];
    }
    for (int i = 1; i <= g; ++i) {
      if (bounds[i] <= bounds[i - 1] + 1e-9 * (hi - lo)) {
        ok = false;
        break;
      }
    }
  }
  if (!ok) {
    for (int i = 1; i < g; ++i) {
      bounds[i] = lo + (hi - lo) * i / g;
    }
  }
  return bounds;
}

}  // namespace

StatusOr<KdPartition> KdPartition::Create(
    geo::BBox domain, const std::vector<geo::Point>& points, int granularity,
    int height) {
  if (granularity < 2) {
    return Status::InvalidArgument("granularity must be >= 2");
  }
  if (height < 1 || height > 12) {
    return Status::InvalidArgument("height must be in [1, 12]");
  }
  if (!(domain.Width() > 0.0) || !(domain.Height() > 0.0)) {
    return Status::InvalidArgument("domain must have positive area");
  }
  const double total =
      std::pow(static_cast<double>(granularity), 2.0 * height);
  if (total > 2e7) {
    return Status::InvalidArgument(
        "granularity^(2*height) too large for an explicit tree");
  }
  KdPartition tree(granularity, height);
  tree.level_side_sum_.assign(height + 1, 0.0);
  tree.level_count_.assign(height + 1, 0);
  tree.nodes_.push_back({domain, -1, 0});
  std::vector<geo::Point> inside;
  inside.reserve(points.size());
  for (const geo::Point& p : points) {
    if (domain.Contains(p)) inside.push_back(p);
  }
  tree.Build(0, std::move(inside));
  return tree;
}

void KdPartition::Build(int node, std::vector<geo::Point> points) {
  const geo::BBox bounds = nodes_[node].bounds;
  const int level = nodes_[node].level;
  if (level >= height_) return;

  // x-boundaries over all points in the node.
  std::vector<double> xs(points.size());
  for (size_t i = 0; i < points.size(); ++i) xs[i] = points[i].x;
  std::sort(xs.begin(), xs.end());
  const std::vector<double> xb =
      SplitBoundaries(bounds.min_x, bounds.max_x, xs, g_);

  // Partition points into x-slabs.
  std::vector<std::vector<geo::Point>> slabs(g_);
  for (const geo::Point& p : points) {
    int s = static_cast<int>(
        std::upper_bound(xb.begin() + 1, xb.end() - 1, p.x) -
        (xb.begin() + 1));
    slabs[s].push_back(p);
  }
  points.clear();
  points.shrink_to_fit();

  const int first_child = static_cast<int>(nodes_.size());
  nodes_[node].first_child = first_child;
  // Reserve all g^2 children up front so they are contiguous.
  for (int i = 0; i < g_ * g_; ++i) {
    nodes_.push_back({{}, -1, level + 1});
  }
  std::vector<std::vector<geo::Point>> child_points(
      static_cast<size_t>(g_) * g_);
  for (int s = 0; s < g_; ++s) {
    std::vector<double> ys(slabs[s].size());
    for (size_t i = 0; i < slabs[s].size(); ++i) ys[i] = slabs[s][i].y;
    std::sort(ys.begin(), ys.end());
    const std::vector<double> yb =
        SplitBoundaries(bounds.min_y, bounds.max_y, ys, g_);
    for (int t = 0; t < g_; ++t) {
      const int child = first_child + t * g_ + s;  // row-major (t = row)
      nodes_[child].bounds = {xb[s], yb[t], xb[s + 1], yb[t + 1]};
      level_side_sum_[level + 1] +=
          std::sqrt(nodes_[child].bounds.Area());
      ++level_count_[level + 1];
    }
    for (const geo::Point& p : slabs[s]) {
      int t = static_cast<int>(
          std::upper_bound(yb.begin() + 1, yb.end() - 1, p.y) -
          (yb.begin() + 1));
      child_points[static_cast<size_t>(t) * g_ + s].push_back(p);
    }
    slabs[s].clear();
    slabs[s].shrink_to_fit();
  }
  for (int i = 0; i < g_ * g_; ++i) {
    Build(first_child + i, std::move(child_points[i]));
  }
}

geo::BBox KdPartition::Bounds(NodeIndex node) const {
  GEOPRIV_CHECK_MSG(node >= 0 &&
                        node < static_cast<NodeIndex>(nodes_.size()),
                    "node out of range");
  return nodes_[node].bounds;
}

bool KdPartition::IsLeaf(NodeIndex node) const {
  return nodes_[node].first_child < 0;
}

std::vector<ChildInfo> KdPartition::Children(NodeIndex node) const {
  GEOPRIV_CHECK_MSG(!IsLeaf(node), "leaf node has no children");
  const int first = nodes_[node].first_child;
  std::vector<ChildInfo> children;
  children.reserve(static_cast<size_t>(g_) * g_);
  for (int i = 0; i < g_ * g_; ++i) {
    children.push_back({first + i, nodes_[first + i].bounds});
  }
  return children;
}

double KdPartition::TypicalCellSide(int level) const {
  GEOPRIV_CHECK_MSG(level >= 1 && level <= height_, "level out of range");
  if (level_count_[level] == 0) return 0.0;
  return level_side_sum_[level] / level_count_[level];
}

}  // namespace geopriv::spatial
