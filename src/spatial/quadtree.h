// Density-adaptive quadtree partition: a node splits into its four
// quadrants while it holds more than `split_threshold` points and is above
// the depth cap. Dense areas get deep, fine cells; sparse areas terminate
// early — the second future-work index of paper Section 8.

#ifndef GEOPRIV_SPATIAL_QUADTREE_H_
#define GEOPRIV_SPATIAL_QUADTREE_H_

#include <vector>

#include "base/status.h"
#include "spatial/hierarchical_partition.h"

namespace geopriv::spatial {

class AdaptiveQuadTree final : public HierarchicalPartition {
 public:
  // Requires max_height in [1, 16] and split_threshold >= 1.
  static StatusOr<AdaptiveQuadTree> Create(
      geo::BBox domain, const std::vector<geo::Point>& points, int max_height,
      int split_threshold);

  int height() const override { return realized_height_; }
  geo::BBox Bounds(NodeIndex node) const override;
  bool IsLeaf(NodeIndex node) const override;
  std::vector<ChildInfo> Children(NodeIndex node) const override;
  double TypicalCellSide(int level) const override;

  int num_nodes() const { return static_cast<int>(nodes_.size()); }

  // Points that fell into this node's subtree at build time.
  int PointCount(NodeIndex node) const { return nodes_[node].count; }

 private:
  struct Node {
    geo::BBox bounds;
    int first_child = -1;
    int level = 0;
    int count = 0;
  };

  AdaptiveQuadTree() = default;

  void Build(int node, std::vector<geo::Point> points, int max_height,
             int split_threshold);

  std::vector<Node> nodes_;
  int realized_height_ = 0;
  std::vector<double> level_side_sum_;
  std::vector<int> level_count_;
};

}  // namespace geopriv::spatial

#endif  // GEOPRIV_SPATIAL_QUADTREE_H_
