#include "spatial/hierarchical_grid.h"

#include <algorithm>
#include <cmath>

#include "base/check.h"

namespace geopriv::spatial {

StatusOr<HierarchicalGrid> HierarchicalGrid::Create(geo::BBox domain,
                                                    int granularity,
                                                    int height) {
  if (granularity < 2) {
    return Status::InvalidArgument("granularity must be >= 2");
  }
  if (height < 1 || height > 20) {
    return Status::InvalidArgument("height must be in [1, 20]");
  }
  if (!(domain.Width() > 0.0) || !(domain.Height() > 0.0)) {
    return Status::InvalidArgument("domain must have positive area");
  }
  // Guard against NodeIndex overflow: total cells across levels must fit.
  const double total = std::pow(static_cast<double>(granularity),
                                2.0 * height);
  if (total > 9e15) {
    return Status::InvalidArgument("index too deep for 64-bit node ids");
  }
  return HierarchicalGrid(domain, granularity, height);
}

HierarchicalGrid::HierarchicalGrid(geo::BBox domain, int granularity,
                                   int height)
    : domain_(domain), g_(granularity), height_(height) {
  side_.resize(height_ + 1);
  offset_.resize(height_ + 2);
  side_[0] = 1;
  offset_[0] = 0;
  for (int level = 1; level <= height_; ++level) {
    side_[level] = side_[level - 1] * g_;
  }
  for (int level = 0; level <= height_; ++level) {
    offset_[level + 1] = offset_[level] + side_[level] * side_[level];
  }
}

int HierarchicalGrid::LevelOf(NodeIndex node) const {
  GEOPRIV_CHECK_MSG(node >= 0 && node < offset_[height_ + 1],
                    "node out of range");
  int level = 0;
  while (node >= offset_[level + 1]) ++level;
  return level;
}

geo::BBox HierarchicalGrid::Bounds(NodeIndex node) const {
  const int level = LevelOf(node);
  const int64_t idx = node - offset_[level];
  const int64_t side = side_[level];
  const int64_t row = idx / side;
  const int64_t col = idx % side;
  const double w = domain_.Width() / static_cast<double>(side);
  const double h = domain_.Height() / static_cast<double>(side);
  return {domain_.min_x + col * w, domain_.min_y + row * h,
          domain_.min_x + (col + 1) * w, domain_.min_y + (row + 1) * h};
}

bool HierarchicalGrid::IsLeaf(NodeIndex node) const {
  return LevelOf(node) == height_;
}

std::vector<ChildInfo> HierarchicalGrid::Children(NodeIndex node) const {
  const int level = LevelOf(node);
  GEOPRIV_CHECK_MSG(level < height_, "leaf node has no children");
  const int64_t idx = node - offset_[level];
  const int64_t side = side_[level];
  const int64_t row = idx / side;
  const int64_t col = idx % side;
  const int64_t child_side = side_[level + 1];
  std::vector<ChildInfo> children;
  children.reserve(static_cast<size_t>(g_) * g_);
  const double w = domain_.Width() / static_cast<double>(child_side);
  const double h = domain_.Height() / static_cast<double>(child_side);
  for (int dr = 0; dr < g_; ++dr) {
    for (int dc = 0; dc < g_; ++dc) {
      const int64_t crow = row * g_ + dr;
      const int64_t ccol = col * g_ + dc;
      const NodeIndex id = offset_[level + 1] + crow * child_side + ccol;
      children.push_back(
          {id,
           {domain_.min_x + ccol * w, domain_.min_y + crow * h,
            domain_.min_x + (ccol + 1) * w, domain_.min_y + (crow + 1) * h}});
    }
  }
  return children;
}

double HierarchicalGrid::TypicalCellSide(int level) const {
  GEOPRIV_CHECK_MSG(level >= 1 && level <= height_, "level out of range");
  // Domains are square in the paper's setup; for rectangular domains use
  // the geometric mean of the two extents.
  const double side = static_cast<double>(side_[level]);
  return std::sqrt((domain_.Width() / side) * (domain_.Height() / side));
}

NodeIndex HierarchicalGrid::NodeAt(int level, geo::Point p) const {
  GEOPRIV_CHECK_MSG(level >= 0 && level <= height_, "level out of range");
  const int64_t side = side_[level];
  const double w = domain_.Width() / static_cast<double>(side);
  const double h = domain_.Height() / static_cast<double>(side);
  int64_t col = static_cast<int64_t>((p.x - domain_.min_x) / w);
  int64_t row = static_cast<int64_t>((p.y - domain_.min_y) / h);
  col = std::clamp<int64_t>(col, 0, side - 1);
  row = std::clamp<int64_t>(row, 0, side - 1);
  return offset_[level] + row * side + col;
}

}  // namespace geopriv::spatial
