// Static R-tree over points, bulk-loaded with Sort-Tile-Recursive (STR)
// packing. Supports k-nearest-neighbour (best-first) and range queries.
// Used by the evaluation harness and the examples to answer "nearest POI"
// queries against reported (obfuscated) locations.

#ifndef GEOPRIV_SPATIAL_STR_RTREE_H_
#define GEOPRIV_SPATIAL_STR_RTREE_H_

#include <cstddef>
#include <vector>

#include "base/status.h"
#include "geo/point.h"

namespace geopriv::spatial {

class StrRTree {
 public:
  // Bulk-loads the tree; indices returned by queries refer to positions in
  // `points`. Requires at least one point and leaf_capacity >= 2.
  static StatusOr<StrRTree> Build(std::vector<geo::Point> points,
                                  int leaf_capacity = 16);

  // Indices of the k points nearest to `query` (ascending distance).
  // Returns fewer than k if the tree holds fewer points.
  std::vector<int> KNearest(geo::Point query, int k) const;

  // Index of the single nearest point.
  int Nearest(geo::Point query) const;

  // Indices of all points inside `box` (inclusive), in arbitrary order.
  std::vector<int> InRange(const geo::BBox& box) const;

  size_t size() const { return points_.size(); }

  // Point by its ORIGINAL index (the index space queries return).
  const geo::Point& point(int original_index) const {
    return points_[slot_of_[original_index]];
  }

 private:
  struct Node {
    geo::BBox bounds;
    // Leaves store [first_point, last_point); internal nodes store
    // [first_child, last_child) into nodes_.
    int first = 0;
    int last = 0;
    bool leaf = true;
  };

  StrRTree() = default;

  std::vector<geo::Point> points_;  // reordered during packing
  std::vector<int> ids_;            // original index of each stored slot
  std::vector<int> slot_of_;        // inverse of ids_: original -> slot
  std::vector<Node> nodes_;
  int root_ = -1;
};

}  // namespace geopriv::spatial

#endif  // GEOPRIV_SPATIAL_STR_RTREE_H_
