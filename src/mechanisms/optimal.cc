#include "mechanisms/optimal.h"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <limits>
#include <tuple>
#include <unordered_set>
#include <utility>

#include "base/check.h"
#include "base/parallel_for.h"
#include "base/stopwatch.h"
#include "base/thread_pool.h"
#include "lp/interior_point.h"
#include "lp/model.h"
#include "lp/revised_simplex.h"

namespace geopriv::mechanisms {

namespace {

// Maximum candidate count for the explicit n^3-row primal formulations.
constexpr int kMaxFullSolveLocations = 14;

Status MapSolverFailure(lp::SolveStatus status) {
  switch (status) {
    case lp::SolveStatus::kTimeLimit:
      return Status::DeadlineExceeded("LP solver hit its time limit");
    case lp::SolveStatus::kIterationLimit:
      return Status::ResourceExhausted("LP solver hit its iteration limit");
    case lp::SolveStatus::kTooLarge:
      return Status::ResourceExhausted(
          "instance exceeds the solver's dense-basis size cap");
    default:
      return Status::Internal("LP solver failed: " +
                              lp::SolveStatusToString(status));
  }
}

// Contiguous sub-range c (of `chunks`) of [0, items).
std::pair<int, int> ChunkRange(int items, int chunks, int c) {
  const int base = items / chunks;
  const int rem = items % chunks;
  const int lo = c * base + std::min(c, rem);
  return {lo, lo + base + (c < rem ? 1 : 0)};
}

}  // namespace

StatusOr<OptimalMechanism> OptimalMechanism::Create(
    double eps, std::vector<geo::Point> locations, std::vector<double> prior,
    geo::UtilityMetric metric, const OptimalMechanismOptions& options) {
  if (!(eps > 0.0)) {
    return Status::InvalidArgument("eps must be positive");
  }
  if (locations.empty()) {
    return Status::InvalidArgument("need at least one candidate location");
  }
  if (prior.size() != locations.size()) {
    return Status::InvalidArgument("prior size must match locations");
  }
  double total = 0.0;
  for (double p : prior) {
    if (!(p >= 0.0) || !std::isfinite(p)) {
      return Status::InvalidArgument("prior masses must be finite and >= 0");
    }
    total += p;
  }
  if (!(total > 0.0)) {
    return Status::InvalidArgument("prior must have positive total mass");
  }
  for (double& p : prior) p /= total;

  OptimalMechanism mech(eps, std::move(locations), std::move(prior), metric);
  const int n = mech.num_locations();
  mech.row_samplers_.resize(n);
  if (n == 1) {
    mech.k_owned_ = {1.0};
    mech.k_ = mech.k_owned_;
    mech.stats_.objective = 0.0;
    mech.BuildRowSamplers(options);
    return mech;
  }
  Status solve_status;
  switch (options.algorithm) {
    case OptAlgorithm::kColumnGeneration:
      solve_status = mech.SolveColumnGeneration(options);
      break;
    case OptAlgorithm::kFullPrimalSimplex:
    case OptAlgorithm::kFullInteriorPoint:
      solve_status = mech.SolveFullPrimal(options);
      break;
  }
  GEOPRIV_RETURN_IF_ERROR(solve_status);
  mech.BuildRowSamplers(options);
  return mech;
}

StatusOr<OptimalMechanism> OptimalMechanism::FromSolved(
    SolvedMechanismTables tables, std::shared_ptr<const void> backing) {
  if (!(tables.eps > 0.0)) {
    return Status::InvalidArgument("solved tables: eps must be positive");
  }
  if (tables.locations.empty()) {
    return Status::InvalidArgument("solved tables: no candidate locations");
  }
  const size_t n = tables.locations.size();
  const size_t nn = n * n;
  if (tables.prior.size() != n) {
    return Status::InvalidArgument("solved tables: prior size mismatch");
  }
  if (tables.k.size() != nn || tables.alias_prob.size() != nn ||
      tables.alias_alias.size() != nn ||
      tables.alias_normalized.size() != nn) {
    return Status::InvalidArgument(
        "solved tables: matrix/alias table sizes do not match n^2");
  }
  OptimalMechanism mech(tables.eps, std::move(tables.locations),
                        std::move(tables.prior), tables.metric);
  mech.k_ = tables.k;
  mech.backing_ = std::move(backing);
  mech.stats_.objective = tables.objective;
  mech.row_samplers_.resize(n);
  for (size_t x = 0; x < n; ++x) {
    mech.row_samplers_[x] = rng::AliasSampler::FromTables(
        tables.alias_prob.subspan(x * n, n),
        tables.alias_alias.subspan(x * n, n),
        tables.alias_normalized.subspan(x * n, n));
  }
  return mech;
}

void OptimalMechanism::CopyFrom(const OptimalMechanism& other) {
  eps_ = other.eps_;
  locations_ = other.locations_;
  prior_ = other.prior_;
  metric_ = other.metric_;
  k_owned_ = other.k_owned_;
  k_ = k_owned_.empty() ? other.k_ : std::span<const double>(k_owned_);
  row_samplers_ = other.row_samplers_;
  backing_ = other.backing_;
  stats_ = other.stats_;
}

void OptimalMechanism::MoveFrom(OptimalMechanism&& other) noexcept {
  eps_ = other.eps_;
  locations_ = std::move(other.locations_);
  prior_ = std::move(other.prior_);
  metric_ = other.metric_;
  k_owned_ = std::move(other.k_owned_);
  k_ = k_owned_.empty() ? other.k_ : std::span<const double>(k_owned_);
  row_samplers_ = std::move(other.row_samplers_);
  backing_ = std::move(other.backing_);
  stats_ = other.stats_;
}

void OptimalMechanism::BuildRowSamplers(
    const OptimalMechanismOptions& options) {
  const int n = num_locations();
  const int parallelism =
      EffectiveParallelism(options.pricing_pool, options.pricing_threads);
  // Each chunk builds the alias tables of a contiguous row range; rows are
  // independent and each writes only its own slot.
  const int chunks =
      options.pricing_pool != nullptr ? std::min(n, parallelism * 4) : 1;
  ParallelChunks(options.pricing_pool, parallelism, chunks, [&](int c) {
    const auto [lo, hi] = ChunkRange(n, chunks, c);
    for (int x = lo; x < hi; ++x) {
      std::vector<double> row(k_.begin() + static_cast<size_t>(x) * n,
                              k_.begin() + static_cast<size_t>(x + 1) * n);
      auto sampler = rng::AliasSampler::Create(row);
      GEOPRIV_CHECK_MSG(sampler.ok(), "row sampler construction failed");
      row_samplers_[x] = std::move(sampler).value();
    }
  });
}

Status OptimalMechanism::SolveColumnGeneration(
    const OptimalMechanismOptions& options) {
  Stopwatch stopwatch;
  const int n = num_locations();
  const size_t nn = static_cast<size_t>(n) * n;
  ThreadPool* const pool = options.pricing_pool;
  const int parallelism = EffectiveParallelism(pool, options.pricing_threads);
  stats_.pricing_threads_used = parallelism;
  // Slice count for the fanned-out stages: a few chunks per thread evens
  // out load imbalance without drowning small instances in dispatch.
  const int num_chunks =
      pool != nullptr ? std::min(n, parallelism * 4) : 1;

  // Precomputed tables: cost c[x*n+z] = Pi_x * d_Q(x,z) and the GeoInd
  // bound expd[x*n+x'] = e^{eps d(x,x')}. Chunked by x row — every element
  // is computed exactly once from immutable inputs, so the parallel tables
  // match the serial ones bit for bit.
  std::vector<double> cost(nn), expd(nn);
  ParallelChunks(pool, parallelism, num_chunks, [&](int c) {
    const auto [lo, hi] = ChunkRange(n, num_chunks, c);
    for (int x = lo; x < hi; ++x) {
      for (int z = 0; z < n; ++z) {
        cost[static_cast<size_t>(x) * n + z] =
            prior_[x] *
            geo::UtilityLoss(metric_, locations_[x], locations_[z]);
        expd[static_cast<size_t>(x) * n + z] =
            std::exp(eps_ * geo::Euclidean(locations_[x], locations_[z]));
      }
    }
  });

  // Dual model: maximize sum_x y_x subject to, for every matrix entry
  // (x,z), y_x + (generated w terms) <= c_{xz}. Every lazily generated dual
  // variable w_{x,x',z} <= 0 corresponds to one primal GeoInd constraint.
  lp::Model dual(lp::ObjectiveSense::kMaximize);
  std::vector<int> y(n);
  for (int x = 0; x < n; ++x) {
    y[x] = dual.AddVariable(-lp::kInfinity, lp::kInfinity, 1.0);
  }
  for (int x = 0; x < n; ++x) {
    for (int z = 0; z < n; ++z) {
      dual.AddConstraint(lp::ConstraintSense::kLessEqual,
                         cost[static_cast<size_t>(x) * n + z],
                         {{y[x], 1.0}});
    }
  }
  auto row_of = [n](int x, int z) { return x * n + z; };

  std::unordered_set<int64_t> generated;
  // Seed the dual with the constraints between each location and its
  // nearest neighbors: they carry the tightest bounds and form the bulk of
  // the active set at every eps, so starting with them collapses most of
  // the generation rounds into the first solve.
  if (options.seed_nearest_neighbors > 0) {
    for (int x = 0; x < n; ++x) {
      // Indices of the k nearest other locations (selection by distance).
      std::vector<int> order;
      order.reserve(n - 1);
      for (int xp = 0; xp < n; ++xp) {
        if (xp != x) order.push_back(xp);
      }
      const int k = std::min<int>(options.seed_nearest_neighbors,
                                  static_cast<int>(order.size()));
      std::partial_sort(order.begin(), order.begin() + k, order.end(),
                        [&](int a, int b) {
                          return expd[static_cast<size_t>(x) * n + a] <
                                 expd[static_cast<size_t>(x) * n + b];
                        });
      for (int i = 0; i < k; ++i) {
        const int xp = order[i];
        const double bound = expd[static_cast<size_t>(x) * n + xp];
        for (int z = 0; z < n; ++z) {
          const int w = dual.AddVariable(-lp::kInfinity, 0.0, 0.0);
          dual.AddCoefficient(row_of(x, z), w, 1.0 / bound);
          dual.AddCoefficient(row_of(xp, z), w, -1.0);
          generated.insert((static_cast<int64_t>(x) * n + xp) * n + z);
          ++stats_.generated_columns;
        }
      }
    }
  }
  const int per_round = options.columns_per_round > 0
                            ? options.columns_per_round
                            : std::numeric_limits<int>::max();

  struct Violation {
    double amount;
    int x, xp, z;
  };
  lp::Basis basis;
  lp::LpSolution sol;
  lp::SolverOptions solver_options = options.solver;
  // Let the simplex dense kernels share the construction pool unless the
  // caller wired a solver pool explicitly.
  if (solver_options.pool == nullptr) {
    solver_options.pool = pool;
    solver_options.threads = options.pricing_threads;
  }
  const double time_limit = options.solver.time_limit_seconds;
  for (int round = 0; round < options.max_rounds; ++round) {
    ++stats_.rounds;
    if (std::isfinite(time_limit)) {
      solver_options.time_limit_seconds =
          time_limit - stopwatch.ElapsedSeconds();
      if (solver_options.time_limit_seconds <= 0.0) {
        return Status::DeadlineExceeded("column generation hit time limit");
      }
    }
    sol = lp::RevisedSimplex::Solve(dual, solver_options,
                                    basis.empty() ? nullptr : &basis, &basis);
    if (!sol.optimal()) return MapSolverFailure(sol.status);
    stats_.simplex_iterations += sol.iterations;
    stats_.simplex_seconds += sol.solve_seconds;
    stats_.refactorizations += sol.refactorizations;
    stats_.refactor_seconds += sol.refactor_seconds;

    // The duals of the restricted dual are the optimal primal K of the
    // restricted primal. Price all not-yet-generated GeoInd constraints.
    // The O(n^3) scan is partitioned into contiguous z slices: each chunk
    // appends its finds to a private list in (z, x, xp) order, and the
    // per-chunk lists concatenate in chunk order below — exactly the order
    // the serial z-outer loop produces, so parallel and serial runs
    // generate identical column sequences. `generated` is read-only here.
    Stopwatch pricing_watch;
    const std::vector<double>& k = sol.duals;
    std::vector<std::vector<Violation>> slice_violations(num_chunks);
    std::atomic<bool> deadline_hit{false};
    ParallelChunks(pool, parallelism, num_chunks, [&](int c) {
      const auto [z_lo, z_hi] = ChunkRange(n, num_chunks, c);
      std::vector<Violation>& local = slice_violations[c];
      for (int z = z_lo; z < z_hi; ++z) {
        // Deadline check per z slice: a multi-second scan must not blow
        // past the budget just because the simplex happened to finish
        // under it. One flag stops every chunk promptly.
        if (deadline_hit.load(std::memory_order_relaxed)) return;
        if (std::isfinite(time_limit) &&
            stopwatch.ElapsedSeconds() > time_limit) {
          deadline_hit.store(true, std::memory_order_relaxed);
          return;
        }
        for (int x = 0; x < n; ++x) {
          const double kxz = k[row_of(x, z)];
          for (int xp = 0; xp < n; ++xp) {
            if (xp == x) continue;
            // Row-scaled residual (constraint divided by its largest
            // coefficient e^{eps d}); see MaxGeoIndViolation for why.
            const double v = kxz / expd[static_cast<size_t>(x) * n + xp] -
                             k[row_of(xp, z)];
            if (v > options.violation_tolerance) {
              const int64_t key =
                  (static_cast<int64_t>(x) * n + xp) * n + z;
              if (generated.contains(key)) continue;
              local.push_back({v, x, xp, z});
            }
          }
        }
      }
    });
    stats_.pricing_seconds += pricing_watch.ElapsedSeconds();
    if (deadline_hit.load(std::memory_order_relaxed)) {
      return Status::DeadlineExceeded(
          "column generation hit time limit during pricing");
    }
    size_t found = 0;
    for (const auto& local : slice_violations) found += local.size();
    std::vector<Violation> violations;
    violations.reserve(found);
    for (const auto& local : slice_violations) {
      violations.insert(violations.end(), local.begin(), local.end());
    }
    stats_.violations_found += static_cast<int64_t>(found);
    if (violations.empty()) {
      // All n^3 constraints hold: k is feasible and (by LP duality)
      // optimal for the complete program.
      GEOPRIV_RETURN_IF_ERROR(FinalizeMatrix(k, options.strict));
      stats_.solve_seconds = stopwatch.ElapsedSeconds();
      stats_.objective = 0.0;
      for (size_t i = 0; i < nn; ++i) stats_.objective += cost[i] * k_[i];
      return Status::OK();
    }
    const int take =
        std::min<int>(per_round, static_cast<int>(violations.size()));
    if (take < static_cast<int>(violations.size())) {
      // Stable (x, xp, z) tie-break: amounts can tie exactly (symmetric
      // instances), and the columns taken must not depend on how the
      // pricing happened to be sliced.
      std::partial_sort(violations.begin(), violations.begin() + take,
                        violations.end(),
                        [](const Violation& a, const Violation& b) {
                          if (a.amount != b.amount) return a.amount > b.amount;
                          return std::tie(a.x, a.xp, a.z) <
                                 std::tie(b.x, b.xp, b.z);
                        });
    }
    for (int i = 0; i < take; ++i) {
      const Violation& v = violations[i];
      // Scale each generated column so its largest coefficient is 1
      // (e^{eps d} can reach ~1e6 for far pairs, which would otherwise
      // degrade the basis conditioning). Scaling a dual column leaves the
      // row duals — the primal K we extract — untouched.
      const double bound = expd[static_cast<size_t>(v.x) * n + v.xp];
      const int w = dual.AddVariable(-lp::kInfinity, 0.0, 0.0);
      dual.AddCoefficient(row_of(v.x, v.z), w, 1.0 / bound);
      dual.AddCoefficient(row_of(v.xp, v.z), w, -1.0);
      generated.insert((static_cast<int64_t>(v.x) * n + v.xp) * n + v.z);
      ++stats_.generated_columns;
    }
  }
  return Status::ResourceExhausted("column generation exceeded max rounds");
}

Status OptimalMechanism::SolveFullPrimal(
    const OptimalMechanismOptions& options) {
  Stopwatch stopwatch;
  const int n = num_locations();
  if (n > kMaxFullSolveLocations) {
    return Status::InvalidArgument(
        "explicit primal formulations are limited to " +
        std::to_string(kMaxFullSolveLocations) +
        " locations (n^3 constraint rows); use column generation");
  }
  lp::Model primal(lp::ObjectiveSense::kMinimize);
  std::vector<int> kvar(static_cast<size_t>(n) * n);
  for (int x = 0; x < n; ++x) {
    for (int z = 0; z < n; ++z) {
      kvar[static_cast<size_t>(x) * n + z] = primal.AddVariable(
          0.0, 1.0,
          prior_[x] *
              geo::UtilityLoss(metric_, locations_[x], locations_[z]));
    }
  }
  for (int x = 0; x < n; ++x) {
    std::vector<lp::Coefficient> row;
    row.reserve(n);
    for (int z = 0; z < n; ++z) {
      row.push_back({kvar[static_cast<size_t>(x) * n + z], 1.0});
    }
    primal.AddConstraint(lp::ConstraintSense::kEqual, 1.0, std::move(row));
  }
  for (int x = 0; x < n; ++x) {
    for (int xp = 0; xp < n; ++xp) {
      if (xp == x) continue;
      const double bound =
          std::exp(eps_ * geo::Euclidean(locations_[x], locations_[xp]));
      for (int z = 0; z < n; ++z) {
        primal.AddConstraint(
            lp::ConstraintSense::kLessEqual, 0.0,
            {{kvar[static_cast<size_t>(x) * n + z], 1.0},
             {kvar[static_cast<size_t>(xp) * n + z], -bound}});
      }
    }
  }
  const lp::LpSolution sol =
      options.algorithm == OptAlgorithm::kFullPrimalSimplex
          ? lp::RevisedSimplex::Solve(primal, options.solver)
          : lp::InteriorPoint::Solve(primal, options.solver);
  if (!sol.optimal()) return MapSolverFailure(sol.status);
  stats_.rounds = 1;
  stats_.simplex_iterations = sol.iterations;
  stats_.simplex_seconds = sol.solve_seconds;
  stats_.refactorizations = sol.refactorizations;
  stats_.refactor_seconds = sol.refactor_seconds;
  GEOPRIV_RETURN_IF_ERROR(FinalizeMatrix(sol.x, options.strict));
  stats_.solve_seconds = stopwatch.ElapsedSeconds();
  stats_.objective = 0.0;
  for (int x = 0; x < n; ++x) {
    for (int z = 0; z < n; ++z) {
      stats_.objective +=
          prior_[x] * K(x, z) *
          geo::UtilityLoss(metric_, locations_[x], locations_[z]);
    }
  }
  return Status::OK();
}

Status OptimalMechanism::FinalizeMatrix(std::vector<double> raw,
                                        bool strict) {
  const int n = num_locations();
  raw.resize(static_cast<size_t>(n) * n, 0.0);
  int degraded = 0;
  for (int x = 0; x < n; ++x) {
    double sum = 0.0;
    for (int z = 0; z < n; ++z) {
      double& v = raw[static_cast<size_t>(x) * n + z];
      if (v < 0.0) v = 0.0;  // roundoff from the LP
      sum += v;
    }
    if (sum <= 0.0) {
      // Should not happen for a feasible LP. An identity row is a valid
      // probability distribution but reports the true location with
      // certainty — it breaks geo-indistinguishability, so it is never
      // silent: strict mode fails the build below, non-strict counts it.
      ++degraded;
      raw[static_cast<size_t>(x) * n + x] = 1.0;
      continue;
    }
    for (int z = 0; z < n; ++z) {
      raw[static_cast<size_t>(x) * n + z] /= sum;
    }
  }
  k_owned_ = std::move(raw);
  k_ = k_owned_;
  stats_.degraded_rows += degraded;
  if (degraded > 0 && strict) {
    return Status::Internal(
        "LP solution has " + std::to_string(degraded) +
        " all-zero row(s); refusing the GeoInd-breaking identity-row "
        "degrade (set OptimalMechanismOptions::strict = false to allow "
        "and count it)");
  }
  return Status::OK();
}

geo::Point OptimalMechanism::Report(geo::Point actual, rng::Rng& rng) {
  return locations_[ReportIndex(IndexOf(actual), rng)];
}

int OptimalMechanism::ReportIndex(int x, rng::Rng& rng) const {
  GEOPRIV_CHECK_MSG(x >= 0 && x < num_locations(), "index out of range");
  return static_cast<int>(row_samplers_[x]->Sample(rng));
}

int OptimalMechanism::IndexOf(geo::Point p) const {
  int best = 0;
  double best_d = geo::SquaredEuclidean(p, locations_[0]);
  for (int i = 1; i < num_locations(); ++i) {
    const double d = geo::SquaredEuclidean(p, locations_[i]);
    if (d < best_d) {
      best_d = d;
      best = i;
    }
  }
  return best;
}

size_t OptimalMechanism::MemoryFootprintBytes() const {
  size_t bytes = k_owned_.capacity() * sizeof(double) +
                 locations_.capacity() * sizeof(geo::Point) +
                 prior_.capacity() * sizeof(double) +
                 row_samplers_.capacity() * sizeof(row_samplers_[0]);
  for (const auto& sampler : row_samplers_) {
    if (sampler.has_value()) bytes += sampler->MemoryFootprintBytes();
  }
  return bytes;
}

double OptimalMechanism::AverageSelfMapping() const {
  double avg = 0.0;
  for (int x = 0; x < num_locations(); ++x) {
    avg += prior_[x] * K(x, x);
  }
  return avg;
}

double OptimalMechanism::MaxGeoIndViolation() const {
  const int n = num_locations();
  double worst = 0.0;
  for (int x = 0; x < n; ++x) {
    for (int xp = 0; xp < n; ++xp) {
      if (xp == x) continue;
      const double bound =
          std::exp(eps_ * geo::Euclidean(locations_[x], locations_[xp]));
      for (int z = 0; z < n; ++z) {
        worst = std::max(worst, K(x, z) / bound - K(xp, z));
      }
    }
  }
  return worst;
}

}  // namespace geopriv::mechanisms
