// Bayesian optimal remapping (Chatzikokolakis et al., "Efficient utility
// improvement for location privacy" — reference [5] of the paper): given a
// mechanism's likelihood kernel and a prior, each reported location z is
// deterministically replaced by
//   r(z) = argmin_{z'} sum_x Pi_x * L(z | x) * d_Q(x, z').
// Remapping is post-processing of the output, so it never weakens GeoInd,
// and it strictly improves expected utility for skewed priors.

#ifndef GEOPRIV_MECHANISMS_REMAP_H_
#define GEOPRIV_MECHANISMS_REMAP_H_

#include <functional>
#include <vector>

#include "base/status.h"
#include "geo/distance.h"
#include "geo/point.h"
#include "mechanisms/planar_laplace.h"
#include "spatial/grid.h"

namespace geopriv::mechanisms {

class RemapTable {
 public:
  // `likelihood(x, z)` returns an unnormalized L(z | x) for candidate
  // indices x, z over `locations`. The remap target set equals the
  // candidate set.
  static StatusOr<RemapTable> Build(
      const std::vector<geo::Point>& locations,
      const std::vector<double>& prior,
      const std::function<double(int, int)>& likelihood,
      geo::UtilityMetric metric);

  // Remapped index for reported index z.
  int Remap(int z) const { return table_[z]; }

  const std::vector<int>& table() const { return table_; }

 private:
  explicit RemapTable(std::vector<int> table) : table_(std::move(table)) {}
  std::vector<int> table_;
};

// Convenience: the planar-Laplace likelihood kernel e^{-eps d(x,z)} over a
// discrete candidate set (for remapping PL+grid outputs).
std::function<double(int, int)> PlanarLaplaceKernel(
    const std::vector<geo::Point>& locations, double eps);

// Planar Laplace + grid snap + Bayesian remap as one mechanism: the
// cheapest prior-aware baseline (no LP). GeoInd holds because both the
// snap and the remap are output post-processing.
class RemappedPlanarLaplace final : public Mechanism {
 public:
  // `prior` is over the grid's cells (size granularity^2).
  static StatusOr<RemappedPlanarLaplace> Create(
      double eps, spatial::UniformGrid grid, const std::vector<double>& prior,
      geo::UtilityMetric metric);

  geo::Point Report(geo::Point actual, rng::Rng& rng) override;
  std::string name() const override { return "PL+remap"; }

  // The deterministic output remap z -> z' (for inspection/tests).
  int Remap(int cell) const { return table_.Remap(cell); }

 private:
  RemappedPlanarLaplace(PlanarLaplaceOnGrid pl, spatial::UniformGrid grid,
                        RemapTable table)
      : pl_(std::move(pl)), grid_(std::move(grid)),
        table_(std::move(table)) {}

  PlanarLaplaceOnGrid pl_;
  spatial::UniformGrid grid_;
  RemapTable table_;
};

}  // namespace geopriv::mechanisms

#endif  // GEOPRIV_MECHANISMS_REMAP_H_
