// Common interface of location-obfuscation mechanisms. A mechanism maps the
// user's actual location to a randomly drawn reported location; GeoInd
// mechanisms additionally guarantee Eq. (1) of the paper:
//   Pr[z | x] <= e^{eps * d(x, x')} * Pr[z | x']   for all x, x', z.

#ifndef GEOPRIV_MECHANISMS_MECHANISM_H_
#define GEOPRIV_MECHANISMS_MECHANISM_H_

#include <string>

#include "geo/point.h"
#include "rng/rng.h"

namespace geopriv::mechanisms {

class Mechanism {
 public:
  virtual ~Mechanism() = default;

  // Draws a reported location for `actual`. Non-const because
  // implementations may lazily build and cache sampling structures.
  virtual geo::Point Report(geo::Point actual, rng::Rng& rng) = 0;

  // Short identifier used in logs and experiment tables ("PL", "OPT", ...).
  virtual std::string name() const = 0;
};

}  // namespace geopriv::mechanisms

#endif  // GEOPRIV_MECHANISMS_MECHANISM_H_
