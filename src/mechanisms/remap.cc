#include "mechanisms/remap.h"

#include <cmath>
#include <limits>

namespace geopriv::mechanisms {

StatusOr<RemapTable> RemapTable::Build(
    const std::vector<geo::Point>& locations,
    const std::vector<double>& prior,
    const std::function<double(int, int)>& likelihood,
    geo::UtilityMetric metric) {
  if (locations.empty()) {
    return Status::InvalidArgument("need at least one location");
  }
  if (prior.size() != locations.size()) {
    return Status::InvalidArgument("prior size must match locations");
  }
  const int n = static_cast<int>(locations.size());
  std::vector<int> table(n);
  std::vector<double> posterior(n);
  for (int z = 0; z < n; ++z) {
    // Unnormalized posterior over the actual location given report z.
    double total = 0.0;
    for (int x = 0; x < n; ++x) {
      posterior[x] = prior[x] * likelihood(x, z);
      total += posterior[x];
    }
    if (!(total > 0.0)) {
      table[z] = z;  // uninformative: keep the report
      continue;
    }
    int best = z;
    double best_loss = std::numeric_limits<double>::infinity();
    for (int zp = 0; zp < n; ++zp) {
      double loss = 0.0;
      for (int x = 0; x < n; ++x) {
        loss +=
            posterior[x] * geo::UtilityLoss(metric, locations[x],
                                            locations[zp]);
      }
      if (loss < best_loss) {
        best_loss = loss;
        best = zp;
      }
    }
    table[z] = best;
  }
  return RemapTable(std::move(table));
}

StatusOr<RemappedPlanarLaplace> RemappedPlanarLaplace::Create(
    double eps, spatial::UniformGrid grid, const std::vector<double>& prior,
    geo::UtilityMetric metric) {
  if (static_cast<int>(prior.size()) != grid.num_cells()) {
    return Status::InvalidArgument("prior size must equal the cell count");
  }
  GEOPRIV_ASSIGN_OR_RETURN(PlanarLaplaceOnGrid pl,
                           PlanarLaplaceOnGrid::Create(eps, grid));
  const std::vector<geo::Point> centers = grid.AllCenters();
  GEOPRIV_ASSIGN_OR_RETURN(
      RemapTable table,
      RemapTable::Build(centers, prior, PlanarLaplaceKernel(centers, eps),
                        metric));
  return RemappedPlanarLaplace(std::move(pl), std::move(grid),
                               std::move(table));
}

geo::Point RemappedPlanarLaplace::Report(geo::Point actual, rng::Rng& rng) {
  const int cell = pl_.ReportCell(actual, rng);
  return grid_.CenterOf(table_.Remap(cell));
}

std::function<double(int, int)> PlanarLaplaceKernel(
    const std::vector<geo::Point>& locations, double eps) {
  // Captures a copy so the kernel outlives the caller's vector.
  return [locations, eps](int x, int z) {
    return std::exp(-eps * geo::Euclidean(locations[x], locations[z]));
  };
}

}  // namespace geopriv::mechanisms
