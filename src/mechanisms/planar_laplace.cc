#include "mechanisms/planar_laplace.h"

#include <cmath>

#include "base/check.h"
#include "mathx/lambert_w.h"

namespace geopriv::mechanisms {

StatusOr<PlanarLaplace> PlanarLaplace::Create(double eps) {
  if (!(eps > 0.0)) {
    return Status::InvalidArgument("eps must be positive");
  }
  return PlanarLaplace(eps);
}

geo::Point PlanarLaplace::Report(geo::Point actual, rng::Rng& rng) {
  const double theta = rng.Uniform(0.0, 2.0 * M_PI);
  // p < 1 strictly, so the radius is finite.
  const double p = rng.Uniform();
  auto radius = mathx::PlanarLaplaceInverseRadialCdf(eps_, p);
  GEOPRIV_CHECK_MSG(radius.ok(), "radial inverse CDF failed");
  const double r = radius.value();
  return {actual.x + r * std::cos(theta), actual.y + r * std::sin(theta)};
}

StatusOr<PlanarLaplaceOnGrid> PlanarLaplaceOnGrid::Create(
    double eps, spatial::UniformGrid grid) {
  GEOPRIV_ASSIGN_OR_RETURN(PlanarLaplace pl, PlanarLaplace::Create(eps));
  return PlanarLaplaceOnGrid(pl, std::move(grid));
}

geo::Point PlanarLaplaceOnGrid::Report(geo::Point actual, rng::Rng& rng) {
  return grid_.CenterOf(ReportCell(actual, rng));
}

int PlanarLaplaceOnGrid::ReportCell(geo::Point actual, rng::Rng& rng) {
  // CellOf clamps, which implements the "project back onto the domain"
  // remapping step for outputs that land outside the study region.
  return grid_.CellOf(pl_.Report(actual, rng));
}

}  // namespace geopriv::mechanisms
