// Discrete exponential mechanism over a candidate set:
//   K(x)(z) proportional to exp(-(eps/2) * d(x, z)).
// Satisfies eps-GeoInd: by the triangle inequality the unnormalized mass
// ratio between x and x' is at most e^{(eps/2) d(x,x')}, and the
// normalizers contribute at most the same factor again.
//
// Not in the paper's evaluation — included as a prior-free middle ground
// between PL+grid (continuous noise, remapped) and OPT (prior-aware LP);
// see bench/ablation_budget_policies for where it lands.

#ifndef GEOPRIV_MECHANISMS_EXPONENTIAL_H_
#define GEOPRIV_MECHANISMS_EXPONENTIAL_H_

#include <optional>
#include <string>
#include <vector>

#include "base/status.h"
#include "mechanisms/mechanism.h"
#include "rng/alias_sampler.h"

namespace geopriv::mechanisms {

class DiscreteExponential final : public Mechanism {
 public:
  static StatusOr<DiscreteExponential> Create(
      double eps, std::vector<geo::Point> locations);

  geo::Point Report(geo::Point actual, rng::Rng& rng) override;
  std::string name() const override { return "EXP"; }

  int ReportIndex(int x, rng::Rng& rng);
  int IndexOf(geo::Point p) const;
  int num_locations() const { return static_cast<int>(locations_.size()); }

  // Transition probability K(x)(z).
  double K(int x, int z) const;

 private:
  DiscreteExponential(double eps, std::vector<geo::Point> locations)
      : eps_(eps), locations_(std::move(locations)) {}

  void EnsureRow(int x);

  double eps_;
  std::vector<geo::Point> locations_;
  // Row-lazy transition weights (normalized) and samplers.
  std::vector<std::vector<double>> rows_;
  std::vector<std::optional<rng::AliasSampler>> samplers_;
};

}  // namespace geopriv::mechanisms

#endif  // GEOPRIV_MECHANISMS_EXPONENTIAL_H_
