#include "mechanisms/exponential.h"

#include <cmath>

#include "base/check.h"
#include "geo/distance.h"

namespace geopriv::mechanisms {

StatusOr<DiscreteExponential> DiscreteExponential::Create(
    double eps, std::vector<geo::Point> locations) {
  if (!(eps > 0.0)) {
    return Status::InvalidArgument("eps must be positive");
  }
  if (locations.empty()) {
    return Status::InvalidArgument("need at least one candidate location");
  }
  DiscreteExponential mech(eps, std::move(locations));
  mech.rows_.resize(mech.locations_.size());
  mech.samplers_.resize(mech.locations_.size());
  return mech;
}

void DiscreteExponential::EnsureRow(int x) {
  if (!rows_[x].empty()) return;
  const int n = num_locations();
  std::vector<double> row(n);
  double sum = 0.0;
  for (int z = 0; z < n; ++z) {
    row[z] =
        std::exp(-0.5 * eps_ * geo::Euclidean(locations_[x], locations_[z]));
    sum += row[z];
  }
  for (double& v : row) v /= sum;
  auto sampler = rng::AliasSampler::Create(row);
  GEOPRIV_CHECK_MSG(sampler.ok(), "exponential row sampler failed");
  samplers_[x] = std::move(sampler).value();
  rows_[x] = std::move(row);
}

double DiscreteExponential::K(int x, int z) const {
  const_cast<DiscreteExponential*>(this)->EnsureRow(x);
  return rows_[x][z];
}

int DiscreteExponential::ReportIndex(int x, rng::Rng& rng) {
  GEOPRIV_CHECK_MSG(x >= 0 && x < num_locations(), "index out of range");
  EnsureRow(x);
  return static_cast<int>(samplers_[x]->Sample(rng));
}

int DiscreteExponential::IndexOf(geo::Point p) const {
  int best = 0;
  double best_d = geo::SquaredEuclidean(p, locations_[0]);
  for (int i = 1; i < num_locations(); ++i) {
    const double d = geo::SquaredEuclidean(p, locations_[i]);
    if (d < best_d) {
      best_d = d;
      best = i;
    }
  }
  return best;
}

geo::Point DiscreteExponential::Report(geo::Point actual, rng::Rng& rng) {
  return locations_[ReportIndex(IndexOf(actual), rng)];
}

}  // namespace geopriv::mechanisms
