// Optimal GeoInd mechanism (paper Section 3.2, from Bordenabe et al. [2]):
// given a prior over n candidate locations, computes the row-stochastic
// matrix K minimizing the expected utility loss
//     sum_{x,z} Pi_x K(x)(z) d_Q(x, z)
// subject to the n^2 (n-1) GeoInd constraints
//     K(x)(z) <= e^{eps d(x,x')} K(x')(z).
//
// The paper solves this LP with Gurobi. We solve it exactly with our own
// solvers, by default through the LP's *dual*: the dual has only n^2 rows
// (one per K entry), and the n^3 GeoInd constraints become dual *columns*
// that are priced in lazily (column generation) with warm-started revised
// simplex. Generation is exact — it terminates only when no constraint is
// violated — and typically activates a tiny fraction of the n^3 rows,
// which is what makes OPT usable as the building block inside MSM. The
// primal formulations (full simplex / interior point) are kept for the
// solver ablation bench.

#ifndef GEOPRIV_MECHANISMS_OPTIMAL_H_
#define GEOPRIV_MECHANISMS_OPTIMAL_H_

#include <memory>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "base/status.h"
#include "geo/distance.h"
#include "lp/solution.h"
#include "mechanisms/mechanism.h"
#include "rng/alias_sampler.h"

namespace geopriv {
class ThreadPool;
}

namespace geopriv::mechanisms {

enum class OptAlgorithm {
  kColumnGeneration,    // dual + lazy columns (default; scales the furthest)
  kFullPrimalSimplex,   // explicit n^3-row primal, revised simplex
  kFullInteriorPoint,   // explicit n^3-row primal, Mehrotra IPM
};

struct OptimalMechanismOptions {
  lp::SolverOptions solver;
  OptAlgorithm algorithm = OptAlgorithm::kColumnGeneration;
  // Column generation: how many most-violated constraints enter per round
  // (0 = all violated constraints, the fastest setting in practice: it
  // converges in ~10 rounds with far fewer total simplex pivots).
  int columns_per_round = 0;
  int max_rounds = 1000;
  // A GeoInd constraint is considered violated when its row-scaled
  // residual (see MaxGeoIndViolation) exceeds this tolerance.
  double violation_tolerance = 1e-7;
  // Pre-generate the constraints between every location and its k nearest
  // neighbors before the first solve (0 disables). These constraints are
  // almost always active, so seeding them collapses most generation
  // rounds; exactness is unaffected (generation still runs to a clean
  // pricing pass).
  int seed_nearest_neighbors = 8;
  // Parallel construction. When set, the cost/exp-distance tables, the
  // O(n^3) pricing scan (partitioned by z-slice), the row samplers, and
  // the simplex dense kernels all fan out across this pool, with the
  // calling thread participating. Construction never blocks on the pool
  // (a busy or shut-down pool just lowers the effective parallelism, so
  // it is safe to Create() from one of the pool's own workers), and a
  // parallel run is bit-identical to a serial one: pricing slices merge
  // in z order and every accumulation keeps its serial element order.
  // Not owned; must outlive the Create() call.
  ThreadPool* pricing_pool = nullptr;
  // Total construction threads (pool helpers + the calling thread);
  // 0 = pool size + 1.
  int pricing_threads = 0;
  // Fail Create() when the solved matrix contains an all-zero row, which
  // would otherwise be silently rewritten to an identity row — a reply
  // distribution that breaks geo-indistinguishability. With strict off
  // the rewrite still happens but is counted in OptSolveStats.
  bool strict = true;
};

struct OptSolveStats {
  int rounds = 0;            // column-generation rounds (1 for full solves)
  int generated_columns = 0; // GeoInd constraints activated
  int simplex_iterations = 0;
  double solve_seconds = 0.0;
  double objective = 0.0;    // expected utility loss under the prior
  // Wall-clock split of solve_seconds between the two phases of column
  // generation, for the pricing-vs-simplex balance the parallel pipeline
  // is tuned against.
  double pricing_seconds = 0.0;
  double simplex_seconds = 0.0;
  // Basis refactorizations inside simplex_seconds and their wall-clock
  // share (the obs layer's third LP phase alongside pricing and pivoting).
  int refactorizations = 0;
  double refactor_seconds = 0.0;
  // Violated GeoInd constraints seen across all pricing rounds (every one
  // of them entered the dual as a column unless columns_per_round capped
  // the round).
  int64_t violations_found = 0;
  // Effective construction parallelism (1 without a pricing pool).
  int pricing_threads_used = 1;
  // All-zero rows rewritten to identity rows by FinalizeMatrix. Nonzero
  // only when OptimalMechanismOptions::strict is off; with strict on,
  // Create() fails instead.
  int degraded_rows = 0;
};

// A solved mechanism's complete state as flat tables — what a bundle
// stores per node and what FromSolved() rehydrates without touching the
// LP. The spans may point into an mmapped file; `prior` must already be
// normalized (FromSolved trusts it — the serializer wrote the normalized
// vector, and section checksums cover corruption).
struct SolvedMechanismTables {
  double eps = 0.0;
  geo::UtilityMetric metric = geo::UtilityMetric::kEuclidean;
  double objective = 0.0;            // expected utility loss under prior
  std::vector<geo::Point> locations; // n candidates
  std::vector<double> prior;         // n masses, normalized
  std::span<const double> k;         // n x n row-major transition matrix
  // Per-row alias tables, n entries per row, rows concatenated.
  std::span<const double> alias_prob;
  std::span<const size_t> alias_alias;
  std::span<const double> alias_normalized;
};

class OptimalMechanism final : public Mechanism {
 public:
  // `locations`: the n candidate locations (actual and reported sets
  // coincide, as in the paper); `prior`: n nonnegative masses (normalized
  // internally). Fails with kDeadlineExceeded/kResourceExhausted when the
  // solver hits its limits.
  static StatusOr<OptimalMechanism> Create(
      double eps, std::vector<geo::Point> locations,
      std::vector<double> prior, geo::UtilityMetric metric,
      const OptimalMechanismOptions& options = {});

  // Rehydrates a previously solved mechanism from its serialized tables —
  // zero LP work, and ReportIndex draws the exact sequence the original
  // mechanism would (same tables, same sampling path). `backing` pins the
  // memory the spans reference (e.g. the mmapped bundle) for the
  // mechanism's lifetime; pass nullptr when the spans outlive it by other
  // means.
  static StatusOr<OptimalMechanism> FromSolved(
      SolvedMechanismTables tables, std::shared_ptr<const void> backing);

  geo::Point Report(geo::Point actual, rng::Rng& rng) override;
  std::string name() const override { return "OPT"; }

  // Samples a reported index for actual index `x`. Const — the row
  // samplers are built eagerly at Create() time — so one solved mechanism
  // can be shared across threads, each drawing from its own Rng.
  int ReportIndex(int x, rng::Rng& rng) const;

  // Index of the candidate nearest to `p`.
  int IndexOf(geo::Point p) const;

  int num_locations() const { return static_cast<int>(locations_.size()); }
  const geo::Point& location(int i) const { return locations_[i]; }
  double prior(int i) const { return prior_[i]; }
  double eps() const { return eps_; }
  geo::UtilityMetric metric() const { return metric_; }

  // Transition probability K(x)(z).
  double K(int x, int z) const {
    return k_[static_cast<size_t>(x) * locations_.size() + z];
  }

  // Flat views for serialization (bundle writers store these verbatim so
  // FromSolved reproduces this mechanism bit for bit).
  std::span<const double> k_table() const { return k_; }
  const rng::AliasSampler& row_sampler(int x) const {
    return *row_samplers_[x];
  }

  // Expected utility loss sum Pi_x K(x)(z) d_Q(x,z) (the LP objective).
  double ExpectedLoss() const { return stats_.objective; }

  // Prior-weighted average of the diagonal K(x)(x) — the quantity the
  // paper's Figure 5 compares against the analytic Phi.
  double AverageSelfMapping() const;

  // Largest row-scaled violation over all n^3 GeoInd constraints:
  //   max over (x, x', z) of K(x)(z) / e^{eps d(x,x')} - K(x')(z),
  // i.e. each constraint divided by its largest coefficient, the standard
  // LP feasibility measure. At an optimum this is <= the violation
  // tolerance. (An absolute measure would be meaningless for far pairs at
  // large eps: when e^{eps d} exceeds 1/tolerance the true optimum carries
  // sub-representable masses like e^{-40}, and the bound those constraints
  // enforce is vacuous for the adversary anyway.)
  double MaxGeoIndViolation() const;

  const OptSolveStats& stats() const { return stats_; }

  // Approximate heap footprint of the solved mechanism: the dense n x n
  // matrix K plus the per-row alias tables and candidate/prior vectors.
  // This is what NodeMechanismCache charges an entry against its byte
  // budget.
  size_t MemoryFootprintBytes() const;

  // K is either owned (Create solved it) or a view into external memory
  // (FromSolved over a bundle mapping, pinned by backing_). Copies and
  // moves must re-point the span when the matrix is owned, since the
  // owned vector relocates; view spans transfer as-is.
  OptimalMechanism(const OptimalMechanism& other) { CopyFrom(other); }
  OptimalMechanism& operator=(const OptimalMechanism& other) {
    if (this != &other) CopyFrom(other);
    return *this;
  }
  OptimalMechanism(OptimalMechanism&& other) noexcept {
    MoveFrom(std::move(other));
  }
  OptimalMechanism& operator=(OptimalMechanism&& other) noexcept {
    if (this != &other) MoveFrom(std::move(other));
    return *this;
  }

 private:
  OptimalMechanism(double eps, std::vector<geo::Point> locations,
                   std::vector<double> prior, geo::UtilityMetric metric)
      : eps_(eps),
        locations_(std::move(locations)),
        prior_(std::move(prior)),
        metric_(metric) {}

  friend class OptimalMechanismTestPeer;

  Status SolveColumnGeneration(const OptimalMechanismOptions& options);
  Status SolveFullPrimal(const OptimalMechanismOptions& options);
  Status FinalizeMatrix(std::vector<double> raw, bool strict);
  void BuildRowSamplers(const OptimalMechanismOptions& options);

  void CopyFrom(const OptimalMechanism& other);
  void MoveFrom(OptimalMechanism&& other) noexcept;

  double eps_ = 0.0;
  std::vector<geo::Point> locations_;
  std::vector<double> prior_;
  geo::UtilityMetric metric_ = geo::UtilityMetric::kEuclidean;
  std::vector<double> k_owned_;   // n x n row-major when owned
  std::span<const double> k_;     // always the matrix to read through
  std::vector<std::optional<rng::AliasSampler>> row_samplers_;
  std::shared_ptr<const void> backing_;  // pins view-mode memory
  OptSolveStats stats_;
};

}  // namespace geopriv::mechanisms

#endif  // GEOPRIV_MECHANISMS_OPTIMAL_H_
