// Planar Laplace mechanism (paper Section 2.3, from Andres et al. [1]):
// adds noise from the bivariate distribution with density
// (eps^2 / 2*pi) * exp(-eps * d(x, z)), drawn in polar coordinates with the
// radius from the inverse CDF (via the Lambert W_{-1} branch).
//
// PlanarLaplaceOnGrid adds the paper's post-processing step for discrete
// settings: the continuous output is clamped to the domain and remapped to
// the center of its enclosing grid cell. Remapping is output
// post-processing, so GeoInd is preserved.

#ifndef GEOPRIV_MECHANISMS_PLANAR_LAPLACE_H_
#define GEOPRIV_MECHANISMS_PLANAR_LAPLACE_H_

#include <string>

#include "base/status.h"
#include "mechanisms/mechanism.h"
#include "spatial/grid.h"

namespace geopriv::mechanisms {

class PlanarLaplace final : public Mechanism {
 public:
  // Requires eps > 0.
  static StatusOr<PlanarLaplace> Create(double eps);

  geo::Point Report(geo::Point actual, rng::Rng& rng) override;
  std::string name() const override { return "PL"; }

  double eps() const { return eps_; }

 private:
  explicit PlanarLaplace(double eps) : eps_(eps) {}
  double eps_;
};

class PlanarLaplaceOnGrid final : public Mechanism {
 public:
  static StatusOr<PlanarLaplaceOnGrid> Create(double eps,
                                              spatial::UniformGrid grid);

  geo::Point Report(geo::Point actual, rng::Rng& rng) override;
  std::string name() const override { return "PL+grid"; }

  // Cell index of the reported location (convenience for discrete callers).
  int ReportCell(geo::Point actual, rng::Rng& rng);

 private:
  PlanarLaplaceOnGrid(PlanarLaplace pl, spatial::UniformGrid grid)
      : pl_(pl), grid_(std::move(grid)) {}

  PlanarLaplace pl_;
  spatial::UniformGrid grid_;
};

}  // namespace geopriv::mechanisms

#endif  // GEOPRIV_MECHANISMS_PLANAR_LAPLACE_H_
