// Lock-free metrics registry for the sanitization service: monotonically
// increasing atomic counters plus a fixed-bucket latency histogram with
// quantile extraction. Everything here may be hammered from every worker
// thread, so there are no locks — only relaxed atomics — and reads produce
// a consistent-enough snapshot for operational dashboards (counters may be
// a few events apart, which is the standard trade for contention-free
// recording).

#ifndef GEOPRIV_SERVICE_METRICS_H_
#define GEOPRIV_SERVICE_METRICS_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <string>

namespace geopriv::service {

// Geometric buckets (factor 2) from 1 us up; the last bucket catches
// everything beyond ~2 minutes. Quantiles interpolate within a bucket, so
// the resolution error is bounded by the bucket ratio.
class LatencyHistogram {
 public:
  static constexpr int kNumBuckets = 28;
  static constexpr double kFirstBoundSeconds = 1e-6;

  // Corrupt samples are clamped, never dropped and never poisonous:
  // NaN/negative count as 0, +inf as the top bucket bound (so one bad
  // sample cannot make sum_seconds_ — and every later mean — non-finite).
  void Record(double seconds);

  // Quantile estimate in seconds, q in [0, 1]. Returns 0 with no samples.
  double Quantile(double q) const;

  uint64_t count() const {
    return count_.load(std::memory_order_relaxed);
  }
  double total_seconds() const {
    return sum_seconds_.load(std::memory_order_relaxed);
  }

  // Upper bound (seconds) of bucket i.
  static double BucketBound(int i);

 private:
  std::array<std::atomic<uint64_t>, kNumBuckets> buckets_{};
  std::atomic<uint64_t> count_{0};
  std::atomic<double> sum_seconds_{0.0};
};

// Plain-struct view of the registry at one instant.
struct MetricsSnapshot {
  uint64_t requests_total = 0;    // accepted into the service
  uint64_t requests_ok = 0;       // completed through the MSM path
  uint64_t requests_rejected = 0; // refused at admission (queue full)
  uint64_t requests_failed = 0;   // completed with a non-OK status
  uint64_t fallbacks_total = 0;       // degraded to planar Laplace
  uint64_t fallbacks_deadline = 0;    // ... because the deadline expired
  uint64_t fallbacks_mechanism = 0;   // ... because the MSM path failed
  // Served through the MSM path but finished past the deadline (the
  // budget was already spent, so the reply is still returned).
  uint64_t deadline_overruns = 0;
  uint64_t latency_count = 0;
  double latency_p50_ms = 0.0;
  double latency_p90_ms = 0.0;
  double latency_p99_ms = 0.0;
  double latency_mean_ms = 0.0;
};

class Metrics {
 public:
  void RecordAccepted() { Inc(requests_total_); }
  void RecordRejected() { Inc(requests_rejected_); }
  void RecordOk() { Inc(requests_ok_); }
  void RecordFailed() { Inc(requests_failed_); }
  void RecordDeadlineFallback() {
    Inc(fallbacks_total_);
    Inc(fallbacks_deadline_);
  }
  void RecordMechanismFallback() {
    Inc(fallbacks_total_);
    Inc(fallbacks_mechanism_);
  }
  void RecordDeadlineOverrun() { Inc(deadline_overruns_); }
  void RecordLatency(double seconds) { latency_.Record(seconds); }

  MetricsSnapshot Snapshot() const;

  // The snapshot as a JSON object (one line, stable key order).
  std::string ToJson() const;

  const LatencyHistogram& latency() const { return latency_; }

 private:
  static void Inc(std::atomic<uint64_t>& c) {
    c.fetch_add(1, std::memory_order_relaxed);
  }

  std::atomic<uint64_t> requests_total_{0};
  std::atomic<uint64_t> requests_ok_{0};
  std::atomic<uint64_t> requests_rejected_{0};
  std::atomic<uint64_t> requests_failed_{0};
  std::atomic<uint64_t> fallbacks_total_{0};
  std::atomic<uint64_t> fallbacks_deadline_{0};
  std::atomic<uint64_t> fallbacks_mechanism_{0};
  std::atomic<uint64_t> deadline_overruns_{0};
  LatencyHistogram latency_;
};

// Escapes `s` for embedding inside a JSON string literal: quote,
// backslash, and control characters become their \-sequences.
std::string JsonEscape(const std::string& s);

}  // namespace geopriv::service

#endif  // GEOPRIV_SERVICE_METRICS_H_
