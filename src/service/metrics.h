// Lock-free metrics registry for the sanitization service: monotonically
// increasing atomic counters plus a fixed-bucket latency histogram with
// quantile extraction. Everything here may be hammered from every worker
// thread, so there are no locks — only relaxed atomics — and reads produce
// a consistent-enough snapshot for operational dashboards (counters may be
// a few events apart, which is the standard trade for contention-free
// recording).
//
// The registry is sharded: counters and histogram live in cache-line-
// padded per-slot copies, and recording threads write only their own slot
// (the service gives each worker its own slot and keeps slot 0 for
// submission-side events). Relaxed fetch_adds on distinct cache lines
// never contend, so recording scales with worker count; Snapshot() sums
// the slots at read time.

#ifndef GEOPRIV_SERVICE_METRICS_H_
#define GEOPRIV_SERVICE_METRICS_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

#include "base/sharded_counter.h"

namespace geopriv::service {

// Geometric buckets (factor 2) from 1 us up; the last bucket catches
// everything beyond ~2 minutes. Quantiles interpolate within a bucket, so
// the resolution error is bounded by the bucket ratio.
class LatencyHistogram {
 public:
  static constexpr int kNumBuckets = 28;
  static constexpr double kFirstBoundSeconds = 1e-6;

  using BucketCounts = std::array<uint64_t, kNumBuckets>;

  // Corrupt samples are clamped, never dropped and never poisonous:
  // NaN/negative count as 0, +inf as the top bucket bound (so one bad
  // sample cannot make sum_seconds_ — and every later mean — non-finite).
  void Record(double seconds);

  // Quantile estimate in seconds, q in [0, 1]. Returns 0 with no samples.
  double Quantile(double q) const;

  // Adds this histogram's buckets into `counts` — how sharded registries
  // merge their per-slot histograms before extracting quantiles.
  void AccumulateBuckets(BucketCounts& counts) const;
  // The Quantile() estimator over caller-merged bucket counts.
  static double QuantileFromBuckets(const BucketCounts& counts, double q);

  uint64_t count() const {
    return count_.load(std::memory_order_relaxed);
  }
  double total_seconds() const {
    return sum_seconds_.load(std::memory_order_relaxed);
  }

  // Upper bound (seconds) of bucket i.
  static double BucketBound(int i);

 private:
  std::array<std::atomic<uint64_t>, kNumBuckets> buckets_{};
  std::atomic<uint64_t> count_{0};
  std::atomic<double> sum_seconds_{0.0};
};

// Plain-struct view of the registry at one instant.
struct MetricsSnapshot {
  uint64_t requests_total = 0;    // accepted into the service
  uint64_t requests_ok = 0;       // completed through the MSM path
  uint64_t requests_rejected = 0; // refused at admission (queue full)
  uint64_t requests_failed = 0;   // completed with a non-OK status
  uint64_t fallbacks_total = 0;       // degraded to planar Laplace
  uint64_t fallbacks_deadline = 0;    // ... because the deadline expired
  uint64_t fallbacks_mechanism = 0;   // ... because the MSM path failed
  // Served through the MSM path but finished past the deadline (the
  // budget was already spent, so the reply is still returned).
  uint64_t deadline_overruns = 0;
  uint64_t latency_count = 0;
  double latency_p50_ms = 0.0;
  double latency_p90_ms = 0.0;
  double latency_p99_ms = 0.0;
  double latency_mean_ms = 0.0;
  double latency_sum_seconds = 0.0;
  // Cumulative bucket counts (Prometheus `le` semantics):
  // latency_buckets[i] = samples <= LatencyHistogram::BucketBound(i). The
  // last bucket is open-ended, so latency_buckets.back() == latency_count.
  LatencyHistogram::BucketCounts latency_buckets{};
  // Cold-start accounting for regions registered from mmapped v2 bundles
  // (see src/bundle/): load count, cumulative map-to-serving seconds,
  // total bytes mapped, and serving-plan nodes warm the moment each
  // region went live.
  uint64_t bundle_loads = 0;
  double bundle_load_seconds = 0.0;
  uint64_t bundle_bytes_mapped = 0;
  uint64_t plan_warm_at_startup = 0;
};

// The stable key schema of Metrics::ToJson(), in emission order. This is
// the one place the schema is defined; tests/metrics_test.cc asserts the
// emitted JSON matches it. Dashboards may rely on both presence and
// order — extend at the end only, never rename or reorder.
inline constexpr const char* kMetricsJsonKeys[] = {
    "requests_total",     "requests_ok",
    "requests_rejected",  "requests_failed",
    "fallbacks_total",    "fallbacks_deadline",
    "fallbacks_mechanism", "deadline_overruns",
    "latency_count",      "latency_p50_ms",
    "latency_p90_ms",     "latency_p99_ms",
    "latency_mean_ms",    "latency_sum_seconds",
    "latency_bucket_le_s", "latency_buckets_cumulative",
    "bundle_loads",       "bundle_load_seconds",
    "bundle_bytes_mapped", "plan_warm_at_startup"};

class Metrics {
 public:
  // `num_slots` padded slots (>= 1). Record* calls name the recording
  // slot; out-of-range slots are folded in with ThreadCounterSlot so a
  // caller that over- or under-provisions still records safely, just with
  // possible sharing.
  explicit Metrics(int num_slots = 1);

  Metrics(const Metrics&) = delete;
  Metrics& operator=(const Metrics&) = delete;

  void RecordAccepted(int slot = 0) { Inc(At(slot).requests_total); }
  void RecordRejected(int slot = 0) { Inc(At(slot).requests_rejected); }
  void RecordOk(int slot = 0) { Inc(At(slot).requests_ok); }
  void RecordFailed(int slot = 0) { Inc(At(slot).requests_failed); }
  void RecordDeadlineFallback(int slot = 0) {
    Slot& s = At(slot);
    Inc(s.fallbacks_total);
    Inc(s.fallbacks_deadline);
  }
  void RecordMechanismFallback(int slot = 0) {
    Slot& s = At(slot);
    Inc(s.fallbacks_total);
    Inc(s.fallbacks_mechanism);
  }
  void RecordDeadlineOverrun(int slot = 0) { Inc(At(slot).deadline_overruns); }
  void RecordLatency(double seconds, int slot = 0) {
    At(slot).latency.Record(seconds);
  }
  // One region registered from an mmapped bundle: `seconds` is the
  // map-to-serving wall clock, `bytes_mapped` the mapping size,
  // `plan_nodes` the serving-plan nodes warm at go-live. Registration
  // happens on the control path, so slot 0 is the natural recorder.
  void RecordBundleLoad(double seconds, uint64_t bytes_mapped,
                        uint64_t plan_nodes, int slot = 0) {
    Slot& s = At(slot);
    Inc(s.bundle_loads);
    s.bundle_load_seconds.fetch_add(seconds, std::memory_order_relaxed);
    s.bundle_bytes_mapped.fetch_add(bytes_mapped,
                                    std::memory_order_relaxed);
    s.plan_warm_at_startup.fetch_add(plan_nodes,
                                     std::memory_order_relaxed);
  }

  MetricsSnapshot Snapshot() const;

  // The snapshot as a JSON object (one line, key order = kMetricsJsonKeys).
  std::string ToJson() const;

  // The snapshot in the Prometheus text exposition format: one counter
  // family per request/fallback counter plus one cumulative histogram
  // (`<prefix>request_latency_seconds` with `le` buckets, _sum, _count).
  // `prefix` is prepended to every family name.
  std::string ToPrometheus(const std::string& prefix = "geopriv_") const;

  int num_slots() const { return static_cast<int>(slots_.size()); }

  // Aggregates across slots (the per-slot histograms stay private).
  uint64_t latency_count() const;
  double latency_total_seconds() const;

 private:
  struct alignas(kCounterSlotAlign) Slot {
    std::atomic<uint64_t> requests_total{0};
    std::atomic<uint64_t> requests_ok{0};
    std::atomic<uint64_t> requests_rejected{0};
    std::atomic<uint64_t> requests_failed{0};
    std::atomic<uint64_t> fallbacks_total{0};
    std::atomic<uint64_t> fallbacks_deadline{0};
    std::atomic<uint64_t> fallbacks_mechanism{0};
    std::atomic<uint64_t> deadline_overruns{0};
    std::atomic<uint64_t> bundle_loads{0};
    std::atomic<double> bundle_load_seconds{0.0};
    std::atomic<uint64_t> bundle_bytes_mapped{0};
    std::atomic<uint64_t> plan_warm_at_startup{0};
    LatencyHistogram latency;
  };

  static void Inc(std::atomic<uint64_t>& c) {
    c.fetch_add(1, std::memory_order_relaxed);
  }

  Slot& At(int slot) {
    if (slot < 0 || slot >= static_cast<int>(slots_.size())) {
      slot = ThreadCounterSlot(static_cast<int>(slots_.size()));
    }
    return slots_[static_cast<size_t>(slot)];
  }

  // vector, not array: slot count is a runtime choice (worker count + 1).
  // Constructed once, never resized — atomics stay put.
  std::vector<Slot> slots_;
};

// Escapes `s` for embedding inside a JSON string literal: quote,
// backslash, and control characters become their \-sequences.
std::string JsonEscape(const std::string& s);

}  // namespace geopriv::service

#endif  // GEOPRIV_SERVICE_METRICS_H_
