#include "service/metrics.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

namespace geopriv::service {

double LatencyHistogram::BucketBound(int i) {
  return kFirstBoundSeconds * static_cast<double>(1ull << i);
}

void LatencyHistogram::Record(double seconds) {
  if (!(seconds >= 0.0)) {
    seconds = 0.0;  // NaN or negative
  } else if (!std::isfinite(seconds)) {
    seconds = BucketBound(kNumBuckets - 1);  // +inf: clamp, don't poison
  }
  int bucket = 0;
  while (bucket < kNumBuckets - 1 && seconds > BucketBound(bucket)) {
    ++bucket;
  }
  buckets_[bucket].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_seconds_.fetch_add(seconds, std::memory_order_relaxed);
}

void LatencyHistogram::AccumulateBuckets(BucketCounts& counts) const {
  for (int i = 0; i < kNumBuckets; ++i) {
    counts[static_cast<size_t>(i)] +=
        buckets_[static_cast<size_t>(i)].load(std::memory_order_relaxed);
  }
}

double LatencyHistogram::QuantileFromBuckets(const BucketCounts& counts,
                                             double q) {
  q = std::clamp(q, 0.0, 1.0);
  uint64_t total = 0;
  for (uint64_t c : counts) total += c;
  if (total == 0) return 0.0;
  const double target = q * static_cast<double>(total);
  uint64_t seen = 0;
  for (int i = 0; i < kNumBuckets; ++i) {
    const uint64_t c = counts[static_cast<size_t>(i)];
    if (c == 0) continue;
    const uint64_t next = seen + c;
    if (static_cast<double>(next) >= target) {
      // Linear interpolation inside the bucket's [lower, upper) span.
      const double lower = i == 0 ? 0.0 : BucketBound(i - 1);
      const double upper = BucketBound(i);
      const double within = (target - static_cast<double>(seen)) / c;
      return lower + within * (upper - lower);
    }
    seen = next;
  }
  return BucketBound(kNumBuckets - 1);
}

double LatencyHistogram::Quantile(double q) const {
  BucketCounts counts{};
  AccumulateBuckets(counts);
  return QuantileFromBuckets(counts, q);
}

Metrics::Metrics(int num_slots)
    : slots_(static_cast<size_t>(num_slots > 0 ? num_slots : 1)) {}

uint64_t Metrics::latency_count() const {
  uint64_t total = 0;
  for (const Slot& s : slots_) total += s.latency.count();
  return total;
}

double Metrics::latency_total_seconds() const {
  double total = 0.0;
  for (const Slot& s : slots_) total += s.latency.total_seconds();
  return total;
}

MetricsSnapshot Metrics::Snapshot() const {
  MetricsSnapshot s;
  LatencyHistogram::BucketCounts buckets{};
  double latency_sum_seconds = 0.0;
  for (const Slot& slot : slots_) {
    s.requests_total += slot.requests_total.load(std::memory_order_relaxed);
    s.requests_ok += slot.requests_ok.load(std::memory_order_relaxed);
    s.requests_rejected +=
        slot.requests_rejected.load(std::memory_order_relaxed);
    s.requests_failed += slot.requests_failed.load(std::memory_order_relaxed);
    s.fallbacks_total += slot.fallbacks_total.load(std::memory_order_relaxed);
    s.fallbacks_deadline +=
        slot.fallbacks_deadline.load(std::memory_order_relaxed);
    s.fallbacks_mechanism +=
        slot.fallbacks_mechanism.load(std::memory_order_relaxed);
    s.deadline_overruns +=
        slot.deadline_overruns.load(std::memory_order_relaxed);
    s.bundle_loads += slot.bundle_loads.load(std::memory_order_relaxed);
    s.bundle_load_seconds +=
        slot.bundle_load_seconds.load(std::memory_order_relaxed);
    s.bundle_bytes_mapped +=
        slot.bundle_bytes_mapped.load(std::memory_order_relaxed);
    s.plan_warm_at_startup +=
        slot.plan_warm_at_startup.load(std::memory_order_relaxed);
    s.latency_count += slot.latency.count();
    latency_sum_seconds += slot.latency.total_seconds();
    slot.latency.AccumulateBuckets(buckets);
  }
  s.latency_sum_seconds = latency_sum_seconds;
  // Per-bucket counts -> cumulative (Prometheus `le`) counts.
  uint64_t running = 0;
  for (int i = 0; i < LatencyHistogram::kNumBuckets; ++i) {
    running += buckets[static_cast<size_t>(i)];
    s.latency_buckets[static_cast<size_t>(i)] = running;
  }
  s.latency_p50_ms = LatencyHistogram::QuantileFromBuckets(buckets, 0.50) * 1e3;
  s.latency_p90_ms = LatencyHistogram::QuantileFromBuckets(buckets, 0.90) * 1e3;
  s.latency_p99_ms = LatencyHistogram::QuantileFromBuckets(buckets, 0.99) * 1e3;
  s.latency_mean_ms =
      s.latency_count == 0
          ? 0.0
          : latency_sum_seconds / static_cast<double>(s.latency_count) * 1e3;
  return s;
}

std::string Metrics::ToJson() const {
  const MetricsSnapshot s = Snapshot();
  char buf[640];
  std::snprintf(
      buf, sizeof(buf),
      "{\"requests_total\":%llu,\"requests_ok\":%llu,"
      "\"requests_rejected\":%llu,\"requests_failed\":%llu,"
      "\"fallbacks_total\":%llu,\"fallbacks_deadline\":%llu,"
      "\"fallbacks_mechanism\":%llu,\"deadline_overruns\":%llu,"
      "\"latency_count\":%llu,"
      "\"latency_p50_ms\":%.6f,\"latency_p90_ms\":%.6f,"
      "\"latency_p99_ms\":%.6f,\"latency_mean_ms\":%.6f}",
      static_cast<unsigned long long>(s.requests_total),
      static_cast<unsigned long long>(s.requests_ok),
      static_cast<unsigned long long>(s.requests_rejected),
      static_cast<unsigned long long>(s.requests_failed),
      static_cast<unsigned long long>(s.fallbacks_total),
      static_cast<unsigned long long>(s.fallbacks_deadline),
      static_cast<unsigned long long>(s.fallbacks_mechanism),
      static_cast<unsigned long long>(s.deadline_overruns),
      static_cast<unsigned long long>(s.latency_count), s.latency_p50_ms,
      s.latency_p90_ms, s.latency_p99_ms, s.latency_mean_ms);
  std::string json = buf;
  json.pop_back();  // drop '}' to append the histogram arrays
  std::snprintf(buf, sizeof(buf), ",\"latency_sum_seconds\":%.6f",
                s.latency_sum_seconds);
  json += buf;
  // Bucket upper bounds (seconds; the last bucket is open-ended, its bound
  // here is nominal) and the matching cumulative counts, whose last entry
  // equals latency_count.
  json += ",\"latency_bucket_le_s\":[";
  for (int i = 0; i < LatencyHistogram::kNumBuckets; ++i) {
    std::snprintf(buf, sizeof(buf), "%s%.9g", i == 0 ? "" : ",",
                  LatencyHistogram::BucketBound(i));
    json += buf;
  }
  json += "],\"latency_buckets_cumulative\":[";
  for (int i = 0; i < LatencyHistogram::kNumBuckets; ++i) {
    std::snprintf(buf, sizeof(buf), "%s%llu", i == 0 ? "" : ",",
                  static_cast<unsigned long long>(
                      s.latency_buckets[static_cast<size_t>(i)]));
    json += buf;
  }
  json += "]";
  std::snprintf(buf, sizeof(buf),
                ",\"bundle_loads\":%llu,\"bundle_load_seconds\":%.6f,"
                "\"bundle_bytes_mapped\":%llu,\"plan_warm_at_startup\":%llu}",
                static_cast<unsigned long long>(s.bundle_loads),
                s.bundle_load_seconds,
                static_cast<unsigned long long>(s.bundle_bytes_mapped),
                static_cast<unsigned long long>(s.plan_warm_at_startup));
  json += buf;
  return json;
}

std::string Metrics::ToPrometheus(const std::string& prefix) const {
  const MetricsSnapshot s = Snapshot();
  std::string out;
  out.reserve(4096);
  char buf[192];
  const auto counter = [&](const char* name, uint64_t value) {
    out += "# TYPE " + prefix + name + " counter\n";
    std::snprintf(buf, sizeof(buf), " %llu\n",
                  static_cast<unsigned long long>(value));
    out += prefix + name + buf;
  };
  counter("requests_total", s.requests_total);
  counter("requests_ok_total", s.requests_ok);
  counter("requests_rejected_total", s.requests_rejected);
  counter("requests_failed_total", s.requests_failed);
  counter("fallbacks_total", s.fallbacks_total);
  counter("fallbacks_deadline_total", s.fallbacks_deadline);
  counter("fallbacks_mechanism_total", s.fallbacks_mechanism);
  counter("deadline_overruns_total", s.deadline_overruns);

  const std::string hist = prefix + "request_latency_seconds";
  out += "# TYPE " + hist + " histogram\n";
  // The top bucket is the histogram's overflow bucket, so its exposition
  // bound is +Inf (not the nominal BucketBound of the last slot).
  for (int i = 0; i < LatencyHistogram::kNumBuckets - 1; ++i) {
    std::snprintf(buf, sizeof(buf), "_bucket{le=\"%.9g\"} %llu\n",
                  LatencyHistogram::BucketBound(i),
                  static_cast<unsigned long long>(
                      s.latency_buckets[static_cast<size_t>(i)]));
    out += hist + buf;
  }
  std::snprintf(buf, sizeof(buf), "_bucket{le=\"+Inf\"} %llu\n",
                static_cast<unsigned long long>(s.latency_count));
  out += hist + buf;
  std::snprintf(buf, sizeof(buf), "_sum %.9f\n", s.latency_sum_seconds);
  out += hist + buf;
  std::snprintf(buf, sizeof(buf), "_count %llu\n",
                static_cast<unsigned long long>(s.latency_count));
  out += hist + buf;

  counter("bundle_loads_total", s.bundle_loads);
  const auto gauge = [&](const char* name, const char* fmt, auto value) {
    out += "# TYPE " + prefix + name + " gauge\n";
    std::snprintf(buf, sizeof(buf), fmt, value);
    out += prefix + name + buf;
  };
  gauge("bundle_load_seconds", " %.9f\n", s.bundle_load_seconds);
  gauge("bundle_bytes_mapped", " %llu\n",
        static_cast<unsigned long long>(s.bundle_bytes_mapped));
  gauge("plan_warm_at_startup", " %llu\n",
        static_cast<unsigned long long>(s.plan_warm_at_startup));
  return out;
}

std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (unsigned char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\b':
        out += "\\b";
        break;
      case '\f':
        out += "\\f";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (c < 0x20) {
          char esc[8];
          std::snprintf(esc, sizeof(esc), "\\u%04x", c);
          out += esc;
        } else {
          out += static_cast<char>(c);
        }
    }
  }
  return out;
}

}  // namespace geopriv::service
