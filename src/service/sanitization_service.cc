#include "service/sanitization_service.h"

#include <algorithm>
#include <cstdio>
#include <utility>

#include "base/check.h"
#include "spatial/grid.h"

namespace geopriv::service {

namespace {

// Keeps the fallback grid's cell count bounded even for tall indexes
// (4096^2 cells ~= 17M, still O(1) memory since UniformGrid is implicit).
constexpr int kMaxFallbackCellsPerAxis = 4096;

}  // namespace

uint64_t SanitizationService::WorkerSeed(uint64_t seed, int worker_id) {
  // seed ⊕ per-worker stream constant: the golden-gamma multiple spreads
  // adjacent worker ids across the seed space so the mt19937_64 streams
  // decorrelate.
  return seed ^
         (0x9E3779B97F4A7C15ull * (static_cast<uint64_t>(worker_id) + 1));
}

StatusOr<std::unique_ptr<SanitizationService>> SanitizationService::Create(
    const ServiceOptions& options) {
  if (options.num_workers < 1) {
    return Status::InvalidArgument("num_workers must be >= 1");
  }
  if (options.queue_capacity < 1) {
    return Status::InvalidArgument("queue_capacity must be >= 1");
  }
  if (options.default_deadline_ms < 0.0) {
    return Status::InvalidArgument("default_deadline_ms must be >= 0");
  }
  if (options.batch_chunk_size < 1) {
    return Status::InvalidArgument("batch_chunk_size must be >= 1");
  }
  return std::unique_ptr<SanitizationService>(
      new SanitizationService(options));
}

SanitizationService::SanitizationService(const ServiceOptions& options)
    : options_(options),
      // Slot 0 records submission-side events; worker w records into
      // slot w + 1 — no two threads share a counter cache line.
      metrics_(options.num_workers + 1) {
  snapshot_.store(std::make_shared<const RegistrySnapshot>(),
                  std::memory_order_release);
  worker_rngs_.reserve(static_cast<size_t>(options.num_workers));
  for (int w = 0; w < options.num_workers; ++w) {
    worker_rngs_.emplace_back(WorkerSeed(options.seed, w));
  }
  pool_ = std::make_unique<ThreadPool>(options.num_workers,
                                       options.queue_capacity);
}

SanitizationService::~SanitizationService() {
  Drain();
  pool_->Shutdown();
}

Status SanitizationService::RegisterRegion(const std::string& region_id,
                                           const RegionConfig& config) {
  if (region_id.empty()) {
    return Status::InvalidArgument("region id must be non-empty");
  }
  // Reserve the id before the build: a duplicate registration — including
  // a concurrent one — fails here without paying seconds of LP/prior
  // work, and two racing registrations of the same id build only once.
  // The reservation lives in building_, never in a snapshot, so readers
  // cannot observe a half-built region.
  {
    std::lock_guard<std::mutex> lock(registry_writer_mu_);
    const std::shared_ptr<const RegistrySnapshot> snap =
        snapshot_.load(std::memory_order_acquire);
    if (snap->regions.count(region_id) > 0 ||
        !building_.insert(region_id).second) {
      return Status::FailedPrecondition("region '" + region_id +
                                        "' is already registered");
    }
  }
  // From here on, every failure path must release the reservation.
  const auto release = [&] {
    std::lock_guard<std::mutex> lock(registry_writer_mu_);
    building_.erase(region_id);
  };

  core::LocationSanitizer::Builder builder;
  builder.SetRegionLatLon(config.min_lat, config.min_lon, config.max_lat,
                          config.max_lon)
      .SetEpsilon(config.eps)
      .SetGranularity(config.granularity)
      .SetRho(config.rho)
      .SetPriorGranularity(config.prior_granularity)
      .SetUtilityMetric(config.metric)
      .SetSeed(options_.seed)
      .SetCacheByteBudget(config.cache_byte_budget)
      // LP construction fans out across the serving pool. Builds never
      // block on the pool, so a fully busy pool just means serial builds.
      .SetConstructionPool(pool_.get());
  if (!config.checkins.empty()) builder.AddCheckinsLatLon(config.checkins);
  if (config.lp_time_limit_seconds > 0.0) {
    builder.SetLpTimeLimitSeconds(config.lp_time_limit_seconds);
  }
  auto sanitizer = builder.Build();
  if (!sanitizer.ok()) {
    release();
    return sanitizer.status();
  }

  // Fallback: planar Laplace with the region's whole budget, remapped to
  // the MSM's effective leaf grid so both paths report at the same
  // resolution.
  int leaf = 1;
  for (int i = 0; i < sanitizer->budget().height(); ++i) {
    if (leaf > kMaxFallbackCellsPerAxis / sanitizer->granularity()) {
      leaf = kMaxFallbackCellsPerAxis;
      break;
    }
    leaf *= sanitizer->granularity();
  }
  auto fallback = mechanisms::PlanarLaplaceOnGrid::Create(
      config.eps, spatial::UniformGrid(sanitizer->domain_km(), leaf));
  if (!fallback.ok()) {
    release();
    return fallback.status();
  }

  auto region = std::make_shared<Region>(std::move(sanitizer).value(),
                                         std::move(fallback).value(), leaf);
  if (config.prewarm_nodes > 0) {
    // Best-effort: a failed prewarm solve (e.g. an LP time limit) means
    // lazy solving — and, if that keeps failing, the planar-Laplace
    // degradation path — not a failed registration.
    auto warmed = region->sanitizer.PrewarmTopNodes(config.prewarm_nodes,
                                                    pool_.get());
    region->prewarmed_nodes = warmed.ok() ? warmed.value() : 0;
  }

  // Copy-publish a snapshot containing the new region and drop the
  // reservation. Readers flip to it on their next atomic load.
  std::lock_guard<std::mutex> lock(registry_writer_mu_);
  std::unordered_map<std::string, std::shared_ptr<Region>> regions =
      snapshot_.load(std::memory_order_acquire)->regions;
  regions.emplace(region_id, std::move(region));
  PublishLocked(std::move(regions));
  building_.erase(region_id);
  return Status::OK();
}

Status SanitizationService::UnregisterRegion(const std::string& region_id) {
  std::lock_guard<std::mutex> lock(registry_writer_mu_);
  if (building_.count(region_id) > 0) {
    return Status::FailedPrecondition("region '" + region_id +
                                      "' is still being built");
  }
  std::unordered_map<std::string, std::shared_ptr<Region>> regions =
      snapshot_.load(std::memory_order_acquire)->regions;
  if (regions.erase(region_id) == 0) {
    return Status::NotFound("unknown region '" + region_id + "'");
  }
  PublishLocked(std::move(regions));
  return Status::OK();
}

void SanitizationService::PublishLocked(
    std::unordered_map<std::string, std::shared_ptr<Region>> regions) {
  auto next = std::make_shared<RegistrySnapshot>();
  next->regions = std::move(regions);
  next->epoch = snapshot_.load(std::memory_order_acquire)->epoch + 1;
  snapshot_.store(std::shared_ptr<const RegistrySnapshot>(std::move(next)),
                  std::memory_order_release);
}

uint64_t SanitizationService::snapshot_epoch() const {
  return snapshot_.load(std::memory_order_acquire)->epoch;
}

std::shared_ptr<SanitizationService::Region> SanitizationService::FindRegion(
    const std::string& region_id) const {
  const std::shared_ptr<const RegistrySnapshot> snap =
      snapshot_.load(std::memory_order_acquire);
  auto it = snap->regions.find(region_id);
  return it == snap->regions.end() ? nullptr : it->second;
}

void SanitizationService::FinishOne() {
  {
    std::lock_guard<std::mutex> lock(inflight_mu_);
    --inflight_;
  }
  inflight_cv_.notify_all();
}

void SanitizationService::ServeOne(
    Region& region, core::LocationSanitizer::BatchWalker& walker,
    const core::LatLon& location, double deadline_ms, const Stopwatch& watch,
    int worker_id, SanitizeResult* result) {
  const int slot = WorkerSlot(worker_id);
  rng::Rng& rng = worker_rngs_[static_cast<size_t>(worker_id)];
  result->worker_id = worker_id;

  bool fallback = false;
  if (deadline_ms > 0.0 && watch.ElapsedMillis() >= deadline_ms) {
    // The deadline burned away in the queue: skip the MSM walk entirely.
    fallback = true;
    metrics_.RecordDeadlineFallback(slot);
  } else {
    auto sanitized = walker.SanitizeLatLon(location.lat, location.lon, rng);
    if (sanitized.ok()) {
      result->reported = sanitized.value();
      metrics_.RecordOk(slot);
      // Re-check after the walk: a request that blew its deadline
      // mid-walk must not be reported as an on-time success. The reply is
      // still served — the privacy budget was already spent — but the
      // overrun is visible to the caller and the dashboards.
      if (deadline_ms > 0.0 && watch.ElapsedMillis() >= deadline_ms) {
        result->deadline_overrun = true;
        metrics_.RecordDeadlineOverrun(slot);
      }
    } else {
      // Typically kDeadlineExceeded from a capped LP solve. Degrade —
      // never fail the request over a utility optimization.
      fallback = true;
      metrics_.RecordMechanismFallback(slot);
    }
  }
  if (fallback) {
    const auto& projection = region.sanitizer.projection();
    const geo::Point actual = region.sanitizer.domain_km().Clamp(
        projection.Forward(location.lat, location.lon));
    const geo::Point reported = region.fallback.Report(actual, rng);
    projection.Inverse(reported, &result->reported.lat,
                       &result->reported.lon);
    result->used_fallback = true;
  }

  result->latency_ms = watch.ElapsedMillis();
  metrics_.RecordLatency(watch.ElapsedSeconds(), slot);
}

void SanitizationService::Process(const SanitizeRequest& request,
                                  const Stopwatch& watch,
                                  const Callback& done, int worker_id) {
  SanitizeResult result;
  result.worker_id = worker_id;

  const std::shared_ptr<Region> region = FindRegion(request.region_id);
  if (region == nullptr) {
    const int slot = WorkerSlot(worker_id);
    result.status =
        Status::NotFound("unknown region '" + request.region_id + "'");
    metrics_.RecordFailed(slot);
    result.latency_ms = watch.ElapsedMillis();
    metrics_.RecordLatency(watch.ElapsedSeconds(), slot);
    if (done) done(result);
    FinishOne();
    return;
  }

  const double deadline_ms = request.deadline_ms > 0.0
                                 ? request.deadline_ms
                                 : options_.default_deadline_ms;
  core::LocationSanitizer::BatchWalker walker(region->sanitizer);
  ServeOne(*region, walker, request.location, deadline_ms, watch, worker_id,
           &result);
  if (done) done(result);
  FinishOne();
}

Status SanitizationService::SubmitAsync(SanitizeRequest request,
                                        Callback done) {
  {
    std::lock_guard<std::mutex> lock(inflight_mu_);
    ++inflight_;
  }
  const Stopwatch watch;
  const bool accepted = pool_->TrySubmit(
      [this, request = std::move(request), done = std::move(done),
       watch](int worker_id) { Process(request, watch, done, worker_id); });
  if (!accepted) {
    FinishOne();
    metrics_.RecordRejected();
    return Status::ResourceExhausted("sanitization queue is full");
  }
  metrics_.RecordAccepted();
  return Status::OK();
}

std::future<SanitizeResult> SanitizationService::SubmitFuture(
    SanitizeRequest request) {
  auto promise = std::make_shared<std::promise<SanitizeResult>>();
  std::future<SanitizeResult> future = promise->get_future();
  const Status status =
      SubmitAsync(std::move(request), [promise](const SanitizeResult& r) {
        promise->set_value(r);
      });
  if (!status.ok()) {
    SanitizeResult rejected;
    rejected.status = status;
    promise->set_value(rejected);
  }
  return future;
}

std::vector<SanitizeResult> SanitizationService::SanitizeBatch(
    const std::string& region_id,
    const std::vector<core::LatLon>& locations) {
  std::vector<SanitizeResult> results(locations.size());
  if (locations.empty()) return results;

  struct BatchState {
    std::mutex mu;
    std::condition_variable cv;
    size_t pending;
  };
  auto state = std::make_shared<BatchState>();
  state->pending = locations.size();

  // Chunked fan-out: each pool task serves batch_chunk_size consecutive
  // items, resolving the region once (one snapshot load) and reusing one
  // BatchWalker — so per-node mechanism lookups are paid once per chunk.
  // Items run in submission order within a chunk, which keeps a
  // single-worker batch's RNG draw sequence identical to item-per-task
  // submission. The caller blocks until pending == 0, so capturing its
  // region_id/locations/results by reference is safe.
  const size_t chunk_size = static_cast<size_t>(options_.batch_chunk_size);
  for (size_t begin = 0; begin < locations.size(); begin += chunk_size) {
    const size_t end = std::min(locations.size(), begin + chunk_size);
    {
      std::lock_guard<std::mutex> lock(inflight_mu_);
      ++inflight_;
    }
    const Stopwatch watch;
    // Blocking submission: a batch caller asked for the whole batch, so
    // backpressure turns into producer blocking rather than rejection.
    const bool submitted = pool_->Submit([this, state, watch, &region_id,
                                          &locations, &results, begin,
                                          end](int worker_id) {
      const std::shared_ptr<Region> region = FindRegion(region_id);
      if (region == nullptr) {
        const int slot = WorkerSlot(worker_id);
        for (size_t i = begin; i < end; ++i) {
          results[i].worker_id = worker_id;
          results[i].status =
              Status::NotFound("unknown region '" + region_id + "'");
          metrics_.RecordFailed(slot);
          results[i].latency_ms = watch.ElapsedMillis();
          metrics_.RecordLatency(watch.ElapsedSeconds(), slot);
        }
      } else {
        core::LocationSanitizer::BatchWalker walker(region->sanitizer);
        for (size_t i = begin; i < end; ++i) {
          ServeOne(*region, walker, locations[i],
                   options_.default_deadline_ms, watch, worker_id,
                   &results[i]);
        }
      }
      {
        std::lock_guard<std::mutex> lock(state->mu);
        state->pending -= end - begin;
      }
      state->cv.notify_one();
      FinishOne();
    });
    if (submitted) {
      for (size_t i = begin; i < end; ++i) metrics_.RecordAccepted();
    } else {
      // Pool shut down underneath the batch.
      FinishOne();
      for (size_t i = begin; i < end; ++i) {
        metrics_.RecordRejected();
        results[i].status = Status::ResourceExhausted("service is shut down");
      }
      {
        std::lock_guard<std::mutex> lock(state->mu);
        state->pending -= end - begin;
      }
      // Without this notify, a rejection that lands after the producer
      // has started waiting (e.g. on a re-entrant or future multi-
      // producer batch path) would strand it forever.
      state->cv.notify_one();
    }
  }

  std::unique_lock<std::mutex> lock(state->mu);
  state->cv.wait(lock, [&] { return state->pending == 0; });
  return results;
}

void SanitizationService::Drain() {
  std::unique_lock<std::mutex> lock(inflight_mu_);
  inflight_cv_.wait(lock, [&] { return inflight_ == 0; });
}

void SanitizationService::Shutdown() {
  // Close the queue first so blocked batch producers fail over to the
  // rejection path instead of keeping the drain alive, then wait for the
  // already-accepted work.
  pool_->Shutdown();
  Drain();
}

StatusOr<SanitizationService::RegionInfo> SanitizationService::GetRegionInfo(
    const std::string& region_id) const {
  const std::shared_ptr<Region> region = FindRegion(region_id);
  if (region == nullptr) {
    return Status::NotFound("unknown region '" + region_id + "'");
  }
  RegionInfo info;
  info.eps = region->sanitizer.epsilon();
  info.granularity = region->sanitizer.granularity();
  info.height = region->sanitizer.budget().height();
  info.leaf_cells_per_axis = region->leaf_cells_per_axis;
  info.msm = region->sanitizer.mechanism().stats();
  const core::NodeMechanismCache& cache =
      region->sanitizer.mechanism().cache();
  info.cache_size = region->sanitizer.mechanism().cache_size();
  info.cache_bytes_resident = cache.bytes_resident();
  info.cache_byte_budget = cache.byte_budget();
  info.cache_evictions = cache.evictions();
  info.cache_hit_rate = cache.hit_rate();
  info.singleflight_waits = cache.singleflight_waits();
  info.prewarmed_nodes = region->prewarmed_nodes;
  return info;
}

std::string SanitizationService::MetricsJson() const {
  const std::shared_ptr<const RegistrySnapshot> snap =
      snapshot_.load(std::memory_order_acquire);
  char head[64];
  std::snprintf(head, sizeof(head), ",\"snapshot_epoch\":%llu",
                static_cast<unsigned long long>(snap->epoch));
  std::string json =
      "{\"service\":" + metrics_.ToJson() + head + ",\"regions\":{";
  std::vector<std::pair<std::string, std::shared_ptr<Region>>> regions(
      snap->regions.begin(), snap->regions.end());
  std::sort(regions.begin(), regions.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  bool first = true;
  for (const auto& [id, region] : regions) {
    const core::MsmStats stats = region->sanitizer.mechanism().stats();
    const auto& cache = region->sanitizer.mechanism().cache();
    // The numeric tail has a fixed shape, so snprintf is safe for it; the
    // id is arbitrary caller data and goes through JsonEscape into a
    // growable string (a 400-char id with quotes must survive intact).
    char buf[1024];
    std::snprintf(
        buf, sizeof(buf),
        "{\"eps\":%.6f,\"height\":%d,\"leaf_cells_per_axis\":%d,"
        "\"lp_solves\":%lld,\"lp_seconds\":%.6f,"
        "\"lp_pricing_seconds\":%.6f,\"lp_simplex_seconds\":%.6f,"
        "\"lp_violations\":%lld,\"degraded_rows\":%lld,"
        "\"uniform_prior_fallbacks\":%lld,\"cache_hits\":%lld,"
        "\"cache_size\":%zu,\"cache_bytes_resident\":%zu,"
        "\"cache_byte_budget\":%zu,\"cache_evictions\":%llu,"
        "\"cache_hit_rate\":%.6f,\"prewarmed_nodes\":%d,"
        "\"singleflight_waits\":%llu,"
        "\"plan_builds\":%lld,\"plan_levels\":%lld,"
        "\"fallthrough_levels\":%lld}",
        region->sanitizer.epsilon(), region->sanitizer.budget().height(),
        region->leaf_cells_per_axis,
        static_cast<long long>(stats.lp_solves), stats.lp_seconds,
        stats.lp_pricing_seconds, stats.lp_simplex_seconds,
        static_cast<long long>(stats.lp_violations_found),
        static_cast<long long>(stats.degraded_rows),
        static_cast<long long>(stats.uniform_prior_fallbacks),
        static_cast<long long>(stats.cache_hits), cache.size(),
        cache.bytes_resident(), cache.byte_budget(),
        static_cast<unsigned long long>(cache.evictions()),
        cache.hit_rate(), region->prewarmed_nodes,
        static_cast<unsigned long long>(cache.singleflight_waits()),
        static_cast<long long>(stats.plan_builds),
        static_cast<long long>(stats.plan_levels),
        static_cast<long long>(stats.fallthrough_levels));
    if (!first) json += ",";
    first = false;
    json += "\"" + JsonEscape(id) + "\":";
    json += buf;
  }
  json += "}}";
  return json;
}

}  // namespace geopriv::service
