#include "service/sanitization_service.h"

#include <algorithm>
#include <cstdio>
#include <optional>
#include <utility>

#include "base/check.h"
#include "bundle/loader.h"
#include "bundle/region_bundle.h"
#include "spatial/grid.h"

namespace geopriv::service {

namespace {

// Keeps the fallback grid's cell count bounded even for tall indexes
// (4096^2 cells ~= 17M, still O(1) memory since UniformGrid is implicit).
constexpr int kMaxFallbackCellsPerAxis = 4096;

// The MSM's effective leaf resolution, capped so the fallback grid stays
// bounded: granularity^height cells per axis, at most
// kMaxFallbackCellsPerAxis. Both registration paths size their
// planar-Laplace fallback with this, so both report at the same
// resolution as the MSM path.
int EffectiveLeafCellsPerAxis(const core::LocationSanitizer& sanitizer) {
  int leaf = 1;
  for (int i = 0; i < sanitizer.budget().height(); ++i) {
    if (leaf > kMaxFallbackCellsPerAxis / sanitizer.granularity()) {
      return kMaxFallbackCellsPerAxis;
    }
    leaf *= sanitizer.granularity();
  }
  return leaf;
}

// Brackets one request's trace: Begin()s it, reconstructs the queue-wait
// span from the submission stopwatch (the span is [submission, pickup] on
// the steady clock — no extra timestamp has to travel through the queue),
// and installs the trace as the worker's thread-local active trace so the
// walk/cache/LP layers can attach spans. Finish() stamps the outcome
// flags, emits the request-level span, and hands the buffered spans to
// the recorder's retention decision. A null recorder makes every method a
// no-op, so call sites need no branching.
class RequestTracer {
 public:
  RequestTracer(obs::TraceRecorder* recorder, const Stopwatch& watch)
      : recorder_(recorder) {
    if (recorder_ == nullptr) return;
    recorder_->Begin(&trace_);
    // Only a head-sampled request pays for detail: the queue-wait span,
    // the thread-local install, and every walk/LP span downstream. A
    // request that lost the draw costs one relaxed id fetch_add and the
    // branch here — no clock reads — unless Finish() discovers it must be
    // force-retained, in which case a coarse record is synthesized then.
    if ((trace_.flags() & obs::kFlagSampled) != 0) {
      start_ticks_ = watch.StartTicks();  // submission instant, same clock
      trace_.Emit(obs::SpanKind::kQueueWait, start_ticks_, obs::NowTicks());
      scope_.emplace(&trace_);
    }
  }

  void Finish(const SanitizeResult& result) {
    if (recorder_ == nullptr) return;
    scope_.reset();  // uninstall before committing
    if (result.used_fallback) trace_.SetFlags(obs::kFlagDegraded);
    if (result.deadline_overrun) {
      trace_.SetFlags(obs::kFlagDeadlineOverrun);
    }
    // ServeOne already measured the latency into the result; reusing it
    // keeps the unsampled fast path free of clock reads.
    const double latency_seconds = result.latency_ms * 1e-3;
    if ((trace_.flags() & obs::kFlagSampled) != 0) {
      trace_.Emit(obs::SpanKind::kRequest, start_ticks_, obs::NowTicks(),
                  /*node=*/-1, static_cast<int32_t>(result.status.code()));
      recorder_->End(trace_, latency_seconds);
    } else if (recorder_->WouldForce(trace_.flags(), latency_seconds)) {
      // Forced retention of an unsampled request: synthesize the coarse
      // record the flight recorder keeps for it — a fallback marker
      // (detail -1: the reason was not captured at the degrade site) and
      // the request envelope reconstructed from the measured latency.
      const uint64_t now = obs::NowTicks();
      const uint64_t start =
          now - std::min(now, obs::SecondsToTicks(latency_seconds));
      if (result.used_fallback) {
        trace_.Emit(obs::SpanKind::kFallback, now, now, /*node=*/-1,
                    /*detail=*/-1);
      }
      trace_.Emit(obs::SpanKind::kRequest, start, now,
                  /*node=*/-1, static_cast<int32_t>(result.status.code()));
      recorder_->End(trace_, latency_seconds);
    }
    // Neither sampled nor forced: no out-of-line call at all — End()
    // would only early-return.
    recorder_ = nullptr;
  }

 private:
  obs::TraceRecorder* recorder_;
  uint64_t start_ticks_ = 0;
  obs::RequestTrace trace_;
  std::optional<obs::ScopedTrace> scope_;
};

}  // namespace

uint64_t SanitizationService::WorkerSeed(uint64_t seed, int worker_id) {
  // seed ⊕ per-worker stream constant: the golden-gamma multiple spreads
  // adjacent worker ids across the seed space so the mt19937_64 streams
  // decorrelate.
  return seed ^
         (0x9E3779B97F4A7C15ull * (static_cast<uint64_t>(worker_id) + 1));
}

StatusOr<std::unique_ptr<SanitizationService>> SanitizationService::Create(
    const ServiceOptions& options) {
  if (options.num_workers < 1) {
    return Status::InvalidArgument("num_workers must be >= 1");
  }
  if (options.queue_capacity < 1) {
    return Status::InvalidArgument("queue_capacity must be >= 1");
  }
  if (options.default_deadline_ms < 0.0) {
    return Status::InvalidArgument("default_deadline_ms must be >= 0");
  }
  if (options.batch_chunk_size < 1) {
    return Status::InvalidArgument("batch_chunk_size must be >= 1");
  }
  if (options.num_shards < 0) {
    return Status::InvalidArgument("num_shards must be >= 0");
  }
  if (options.num_shards > 0 && options.shard_vnodes < 1) {
    return Status::InvalidArgument("shard_vnodes must be >= 1");
  }
  return std::unique_ptr<SanitizationService>(
      new SanitizationService(options));
}

SanitizationService::SanitizationService(const ServiceOptions& options)
    : options_(options),
      // Slot 0 records submission-side events; worker w records into
      // slot w + 1 — no two threads share a counter cache line.
      metrics_(options.num_workers + 1) {
  snapshot_.store(std::make_shared<const RegistrySnapshot>(),
                  std::memory_order_release);
  if (options.trace.sample_one_in > 0) {
    recorder_ = std::make_unique<obs::TraceRecorder>(options.trace);
  }
  if (options.num_shards > 0) {
    router_ =
        std::make_unique<ShardRouter>(options.num_shards, options.shard_vnodes);
  }
  worker_rngs_.reserve(static_cast<size_t>(options.num_workers));
  for (int w = 0; w < options.num_workers; ++w) {
    worker_rngs_.emplace_back(WorkerSeed(options.seed, w));
  }
  pool_ = std::make_unique<ThreadPool>(options.num_workers,
                                       options.queue_capacity);
}

SanitizationService::~SanitizationService() {
  Drain();
  pool_->Shutdown();
}

Status SanitizationService::RegisterRegion(const std::string& region_id,
                                           const RegionConfig& config) {
  if (region_id.empty()) {
    return Status::InvalidArgument("region id must be non-empty");
  }
  // Reserve the id before the build: a duplicate registration — including
  // a concurrent one — fails here without paying seconds of LP/prior
  // work, and two racing registrations of the same id build only once.
  // The reservation lives in building_, never in a snapshot, so readers
  // cannot observe a half-built region.
  {
    std::lock_guard<std::mutex> lock(registry_writer_mu_);
    const std::shared_ptr<const RegistrySnapshot> snap =
        snapshot_.load(std::memory_order_acquire);
    if (snap->regions.count(region_id) > 0 ||
        !building_.insert(region_id).second) {
      return Status::FailedPrecondition("region '" + region_id +
                                        "' is already registered");
    }
  }
  // From here on, every failure path must release the reservation.
  const auto release = [&] {
    std::lock_guard<std::mutex> lock(registry_writer_mu_);
    building_.erase(region_id);
  };

  core::LocationSanitizer::Builder builder;
  builder.SetRegionLatLon(config.min_lat, config.min_lon, config.max_lat,
                          config.max_lon)
      .SetEpsilon(config.eps)
      .SetGranularity(config.granularity)
      .SetRho(config.rho)
      .SetPriorGranularity(config.prior_granularity)
      .SetUtilityMetric(config.metric)
      .SetSeed(options_.seed)
      .SetCacheByteBudget(config.cache_byte_budget)
      // LP construction fans out across the serving pool. Builds never
      // block on the pool, so a fully busy pool just means serial builds.
      .SetConstructionPool(pool_.get());
  if (!config.checkins.empty()) builder.AddCheckinsLatLon(config.checkins);
  if (config.lp_time_limit_seconds > 0.0) {
    builder.SetLpTimeLimitSeconds(config.lp_time_limit_seconds);
  }
  auto sanitizer = builder.Build();
  if (!sanitizer.ok()) {
    release();
    return sanitizer.status();
  }

  // Fallback: planar Laplace with the region's whole budget, remapped to
  // the MSM's effective leaf grid.
  const int leaf = EffectiveLeafCellsPerAxis(sanitizer.value());
  auto fallback = mechanisms::PlanarLaplaceOnGrid::Create(
      config.eps, spatial::UniformGrid(sanitizer->domain_km(), leaf));
  if (!fallback.ok()) {
    release();
    return fallback.status();
  }

  auto region = std::make_shared<Region>(std::move(sanitizer).value(),
                                         std::move(fallback).value(), leaf);
  if (config.prewarm_nodes > 0) {
    // Best-effort: a failed prewarm solve (e.g. an LP time limit) means
    // lazy solving — and, if that keeps failing, the planar-Laplace
    // degradation path — not a failed registration.
    auto warmed = region->sanitizer.PrewarmTopNodes(config.prewarm_nodes,
                                                    pool_.get());
    region->prewarmed_nodes = warmed.ok() ? warmed.value() : 0;
  }

  // Copy-publish a snapshot containing the new region and drop the
  // reservation. Readers flip to it on their next atomic load.
  std::lock_guard<std::mutex> lock(registry_writer_mu_);
  std::unordered_map<std::string, std::shared_ptr<Region>> regions =
      snapshot_.load(std::memory_order_acquire)->regions;
  regions.emplace(region_id, std::move(region));
  PublishLocked(std::move(regions));
  building_.erase(region_id);
  return Status::OK();
}

Status SanitizationService::LoadRegionFromBundle(
    const std::string& region_id, const std::string& path,
    const BundleRegionOptions& options) {
  if (region_id.empty()) {
    return Status::InvalidArgument("region id must be non-empty");
  }
  // Same reservation protocol as RegisterRegion: a duplicate — including
  // a concurrent one — fails before the map/verify work, and readers
  // never observe a half-loaded region.
  {
    std::lock_guard<std::mutex> lock(registry_writer_mu_);
    const std::shared_ptr<const RegistrySnapshot> snap =
        snapshot_.load(std::memory_order_acquire);
    if (snap->regions.count(region_id) > 0 ||
        !building_.insert(region_id).second) {
      return Status::FailedPrecondition("region '" + region_id +
                                        "' is already registered");
    }
  }
  const auto release = [&] {
    std::lock_guard<std::mutex> lock(registry_writer_mu_);
    building_.erase(region_id);
  };

  // The recorded load time covers the whole cold start: open + verify +
  // rehydrate + plan rebuild. That is the number the build/serve split
  // exists to shrink, so it must not flatter itself by excluding the
  // checksum pass.
  const Stopwatch watch;
  auto view = bundle::RegionBundleView::Open(path, options.verify_checksums);
  if (!view.ok()) {
    release();
    return view.status();
  }
  bundle::RegionLoadOptions load_options;
  load_options.seed = options_.seed;
  load_options.cache_byte_budget = options.cache_byte_budget;
  load_options.lp_time_limit_seconds = options.lp_time_limit_seconds;
  load_options.construction_pool = pool_.get();
  auto loaded = bundle::LoadRegion(view.value(), load_options);
  if (!loaded.ok()) {
    release();
    return loaded.status();
  }

  const int leaf = EffectiveLeafCellsPerAxis(loaded->sanitizer);
  auto fallback = mechanisms::PlanarLaplaceOnGrid::Create(
      loaded->sanitizer.epsilon(),
      spatial::UniformGrid(loaded->sanitizer.domain_km(), leaf));
  if (!fallback.ok()) {
    release();
    return fallback.status();
  }

  auto region = std::make_shared<Region>(std::move(loaded->sanitizer),
                                         std::move(fallback).value(), leaf);
  // Bundle-published nodes are this path's prewarm: solved at build time,
  // warm before the first request.
  region->prewarmed_nodes = static_cast<int>(loaded->nodes_loaded);
  region->bundle_bytes_mapped = loaded->bytes_mapped;
  region->plan_warm_at_startup = loaded->plan_nodes;
  metrics_.RecordBundleLoad(watch.ElapsedSeconds(), loaded->bytes_mapped,
                            loaded->plan_nodes);

  std::lock_guard<std::mutex> lock(registry_writer_mu_);
  std::unordered_map<std::string, std::shared_ptr<Region>> regions =
      snapshot_.load(std::memory_order_acquire)->regions;
  regions.emplace(region_id, std::move(region));
  PublishLocked(std::move(regions));
  building_.erase(region_id);
  return Status::OK();
}

Status SanitizationService::UnregisterRegion(const std::string& region_id) {
  std::lock_guard<std::mutex> lock(registry_writer_mu_);
  if (building_.count(region_id) > 0) {
    return Status::FailedPrecondition("region '" + region_id +
                                      "' is still being built");
  }
  std::unordered_map<std::string, std::shared_ptr<Region>> regions =
      snapshot_.load(std::memory_order_acquire)->regions;
  if (regions.erase(region_id) == 0) {
    return Status::NotFound("unknown region '" + region_id + "'");
  }
  PublishLocked(std::move(regions));
  return Status::OK();
}

void SanitizationService::PublishLocked(
    std::unordered_map<std::string, std::shared_ptr<Region>> regions) {
  auto next = std::make_shared<RegistrySnapshot>();
  next->regions = std::move(regions);
  next->epoch = snapshot_.load(std::memory_order_acquire)->epoch + 1;
  snapshot_.store(std::shared_ptr<const RegistrySnapshot>(std::move(next)),
                  std::memory_order_release);
}

uint64_t SanitizationService::snapshot_epoch() const {
  return snapshot_.load(std::memory_order_acquire)->epoch;
}

std::shared_ptr<SanitizationService::Region> SanitizationService::FindRegion(
    const std::string& region_id) const {
  const std::shared_ptr<const RegistrySnapshot> snap =
      snapshot_.load(std::memory_order_acquire);
  auto it = snap->regions.find(region_id);
  return it == snap->regions.end() ? nullptr : it->second;
}

void SanitizationService::FinishOne() {
  {
    std::lock_guard<std::mutex> lock(inflight_mu_);
    --inflight_;
  }
  inflight_cv_.notify_all();
}

void SanitizationService::ServeOne(
    Region& region, core::LocationSanitizer::BatchWalker& walker,
    const core::LatLon& location, double deadline_ms, const Stopwatch& watch,
    int worker_id, SanitizeResult* result) {
  const int slot = WorkerSlot(worker_id);
  rng::Rng& rng = worker_rngs_[static_cast<size_t>(worker_id)];
  result->worker_id = worker_id;

  bool fallback = false;
  // Fallback-reason detail on the kFallback span: 0 = the deadline was
  // already gone at pickup, 1 = the MSM path failed mid-walk.
  int32_t fallback_reason = 0;
  if (deadline_ms > 0.0 && watch.ElapsedMillis() >= deadline_ms) {
    // The deadline burned away in the queue: skip the MSM walk entirely.
    fallback = true;
    metrics_.RecordDeadlineFallback(slot);
  } else {
    auto sanitized = walker.SanitizeLatLon(location.lat, location.lon, rng);
    if (sanitized.ok()) {
      result->reported = sanitized.value();
      metrics_.RecordOk(slot);
      // Re-check after the walk: a request that blew its deadline
      // mid-walk must not be reported as an on-time success. The reply is
      // still served — the privacy budget was already spent — but the
      // overrun is visible to the caller and the dashboards.
      if (deadline_ms > 0.0 && watch.ElapsedMillis() >= deadline_ms) {
        result->deadline_overrun = true;
        metrics_.RecordDeadlineOverrun(slot);
      }
    } else {
      // Typically kDeadlineExceeded from a capped LP solve. Degrade —
      // never fail the request over a utility optimization.
      fallback = true;
      fallback_reason = 1;
      metrics_.RecordMechanismFallback(slot);
    }
  }
  if (fallback) {
    obs::RequestTrace* const trace = obs::ActiveTrace();
    const uint64_t fb_start = trace != nullptr ? obs::NowTicks() : 0;
    const auto& projection = region.sanitizer.projection();
    const geo::Point actual = region.sanitizer.domain_km().Clamp(
        projection.Forward(location.lat, location.lon));
    const geo::Point reported = region.fallback.Report(actual, rng);
    projection.Inverse(reported, &result->reported.lat,
                       &result->reported.lon);
    result->used_fallback = true;
    if (trace != nullptr) {
      trace->Emit(obs::SpanKind::kFallback, fb_start, obs::NowTicks(),
                  /*node=*/-1, fallback_reason);
    }
  }

  result->latency_ms = watch.ElapsedMillis();
  metrics_.RecordLatency(watch.ElapsedSeconds(), slot);
}

void SanitizationService::Process(const SanitizeRequest& request,
                                  const Stopwatch& watch,
                                  const Callback& done, int worker_id) {
  SanitizeResult result;
  result.worker_id = worker_id;
  RequestTracer tracer(recorder_.get(), watch);
  if (router_ != nullptr) {
    router_->RecordRequest(router_->ShardFor(request.region_id));
  }

  const std::shared_ptr<Region> region = FindRegion(request.region_id);
  if (region == nullptr) {
    const int slot = WorkerSlot(worker_id);
    result.status =
        Status::NotFound("unknown region '" + request.region_id + "'");
    metrics_.RecordFailed(slot);
    result.latency_ms = watch.ElapsedMillis();
    metrics_.RecordLatency(watch.ElapsedSeconds(), slot);
    tracer.Finish(result);
    if (done) done(result);
    FinishOne();
    return;
  }

  const double deadline_ms = request.deadline_ms > 0.0
                                 ? request.deadline_ms
                                 : options_.default_deadline_ms;
  core::LocationSanitizer::BatchWalker walker(region->sanitizer);
  ServeOne(*region, walker, request.location, deadline_ms, watch, worker_id,
           &result);
  tracer.Finish(result);
  if (done) done(result);
  FinishOne();
}

Status SanitizationService::SubmitAsync(SanitizeRequest request,
                                        Callback done) {
  {
    std::lock_guard<std::mutex> lock(inflight_mu_);
    ++inflight_;
  }
  const Stopwatch watch;
  const bool accepted = pool_->TrySubmit(
      [this, request = std::move(request), done = std::move(done),
       watch](int worker_id) { Process(request, watch, done, worker_id); });
  if (!accepted) {
    FinishOne();
    metrics_.RecordRejected();
    return Status::ResourceExhausted("sanitization queue is full");
  }
  metrics_.RecordAccepted();
  return Status::OK();
}

std::future<SanitizeResult> SanitizationService::SubmitFuture(
    SanitizeRequest request) {
  auto promise = std::make_shared<std::promise<SanitizeResult>>();
  std::future<SanitizeResult> future = promise->get_future();
  const Status status =
      SubmitAsync(std::move(request), [promise](const SanitizeResult& r) {
        promise->set_value(r);
      });
  if (!status.ok()) {
    SanitizeResult rejected;
    rejected.status = status;
    promise->set_value(rejected);
  }
  return future;
}

std::vector<SanitizeResult> SanitizationService::SanitizeBatch(
    const std::string& region_id,
    const std::vector<core::LatLon>& locations) {
  std::vector<SanitizeResult> results(locations.size());
  if (locations.empty()) return results;

  struct BatchState {
    std::mutex mu;
    std::condition_variable cv;
    size_t pending;
  };
  auto state = std::make_shared<BatchState>();
  state->pending = locations.size();

  // Chunked fan-out: each pool task serves batch_chunk_size consecutive
  // items, resolving the region once (one snapshot load) and reusing one
  // BatchWalker — so per-node mechanism lookups are paid once per chunk.
  // Items run in submission order within a chunk, which keeps a
  // single-worker batch's RNG draw sequence identical to item-per-task
  // submission. The caller blocks until pending == 0, so capturing its
  // region_id/locations/results by reference is safe.
  const size_t chunk_size = static_cast<size_t>(options_.batch_chunk_size);
  for (size_t begin = 0; begin < locations.size(); begin += chunk_size) {
    const size_t end = std::min(locations.size(), begin + chunk_size);
    {
      std::lock_guard<std::mutex> lock(inflight_mu_);
      ++inflight_;
    }
    const Stopwatch watch;
    // Blocking submission: a batch caller asked for the whole batch, so
    // backpressure turns into producer blocking rather than rejection.
    const bool submitted = pool_->Submit([this, state, watch, &region_id,
                                          &locations, &results, begin,
                                          end](int worker_id) {
      if (router_ != nullptr) {
        // One ShardFor per chunk (the chunk shares one region id), one
        // count per item — the router sees the same request volume the
        // item-per-task path would record.
        const int shard = router_->ShardFor(region_id);
        for (size_t i = begin; i < end; ++i) router_->RecordRequest(shard);
      }
      const std::shared_ptr<Region> region = FindRegion(region_id);
      if (region == nullptr) {
        const int slot = WorkerSlot(worker_id);
        for (size_t i = begin; i < end; ++i) {
          RequestTracer tracer(recorder_.get(), watch);
          results[i].worker_id = worker_id;
          results[i].status =
              Status::NotFound("unknown region '" + region_id + "'");
          metrics_.RecordFailed(slot);
          results[i].latency_ms = watch.ElapsedMillis();
          metrics_.RecordLatency(watch.ElapsedSeconds(), slot);
          tracer.Finish(results[i]);
        }
      } else {
        core::LocationSanitizer::BatchWalker walker(region->sanitizer);
        for (size_t i = begin; i < end; ++i) {
          // One tracer per item: every item of the chunk gets its own
          // request id and retention decision (the queue-wait span of a
          // late item includes its wait behind earlier chunk items).
          RequestTracer tracer(recorder_.get(), watch);
          ServeOne(*region, walker, locations[i],
                   options_.default_deadline_ms, watch, worker_id,
                   &results[i]);
          tracer.Finish(results[i]);
        }
      }
      {
        std::lock_guard<std::mutex> lock(state->mu);
        state->pending -= end - begin;
      }
      state->cv.notify_one();
      FinishOne();
    });
    if (submitted) {
      for (size_t i = begin; i < end; ++i) metrics_.RecordAccepted();
    } else {
      // Pool shut down underneath the batch.
      FinishOne();
      for (size_t i = begin; i < end; ++i) {
        metrics_.RecordRejected();
        results[i].status = Status::ResourceExhausted("service is shut down");
      }
      {
        std::lock_guard<std::mutex> lock(state->mu);
        state->pending -= end - begin;
      }
      // Without this notify, a rejection that lands after the producer
      // has started waiting (e.g. on a re-entrant or future multi-
      // producer batch path) would strand it forever.
      state->cv.notify_one();
    }
  }

  std::unique_lock<std::mutex> lock(state->mu);
  state->cv.wait(lock, [&] { return state->pending == 0; });
  return results;
}

void SanitizationService::Drain() {
  std::unique_lock<std::mutex> lock(inflight_mu_);
  inflight_cv_.wait(lock, [&] { return inflight_ == 0; });
}

void SanitizationService::Shutdown() {
  // Close the queue first so blocked batch producers fail over to the
  // rejection path instead of keeping the drain alive, then wait for the
  // already-accepted work.
  pool_->Shutdown();
  Drain();
}

StatusOr<SanitizationService::RegionInfo> SanitizationService::GetRegionInfo(
    const std::string& region_id) const {
  const std::shared_ptr<Region> region = FindRegion(region_id);
  if (region == nullptr) {
    return Status::NotFound("unknown region '" + region_id + "'");
  }
  RegionInfo info;
  info.eps = region->sanitizer.epsilon();
  info.granularity = region->sanitizer.granularity();
  info.height = region->sanitizer.budget().height();
  info.leaf_cells_per_axis = region->leaf_cells_per_axis;
  info.msm = region->sanitizer.mechanism().stats();
  const core::NodeMechanismCache& cache =
      region->sanitizer.mechanism().cache();
  info.cache_size = region->sanitizer.mechanism().cache_size();
  info.cache_bytes_resident = cache.bytes_resident();
  info.cache_byte_budget = cache.byte_budget();
  info.cache_evictions = cache.evictions();
  info.cache_hit_rate = cache.hit_rate();
  info.singleflight_waits = cache.singleflight_waits();
  info.prewarmed_nodes = region->prewarmed_nodes;
  info.bundle_bytes_mapped = region->bundle_bytes_mapped;
  info.plan_warm_at_startup = region->plan_warm_at_startup;
  return info;
}

std::string SanitizationService::MetricsJson() const {
  const std::shared_ptr<const RegistrySnapshot> snap =
      snapshot_.load(std::memory_order_acquire);
  char head[512];
  std::snprintf(head, sizeof(head), ",\"snapshot_epoch\":%llu",
                static_cast<unsigned long long>(snap->epoch));
  std::string json = "{\"service\":" + metrics_.ToJson() + head;
  // The trace object is always present (stable schema); with tracing off
  // it is all zeros with enabled == 0.
  const obs::TraceStats ts =
      recorder_ != nullptr ? recorder_->stats() : obs::TraceStats{};
  std::snprintf(
      head, sizeof(head),
      ",\"trace\":{\"enabled\":%d,\"sample_one_in\":%u,"
      "\"requests_started\":%llu,\"requests_retained\":%llu,"
      "\"requests_forced\":%llu,\"spans_committed\":%llu,"
      "\"spans_dropped\":%llu}",
      recorder_ != nullptr ? 1 : 0,
      recorder_ != nullptr ? recorder_->options().sample_one_in : 0u,
      static_cast<unsigned long long>(ts.requests_started),
      static_cast<unsigned long long>(ts.requests_retained),
      static_cast<unsigned long long>(ts.requests_forced),
      static_cast<unsigned long long>(ts.spans_committed),
      static_cast<unsigned long long>(ts.spans_dropped));
  json += head;
  json += ",\"regions\":{";
  std::vector<std::pair<std::string, std::shared_ptr<Region>>> regions(
      snap->regions.begin(), snap->regions.end());
  std::sort(regions.begin(), regions.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  bool first = true;
  for (const auto& [id, region] : regions) {
    const core::MsmStats stats = region->sanitizer.mechanism().stats();
    const auto& cache = region->sanitizer.mechanism().cache();
    // The numeric tail has a fixed shape, so snprintf is safe for it; the
    // id is arbitrary caller data and goes through JsonEscape into a
    // growable string (a 400-char id with quotes must survive intact).
    char buf[1024];
    std::snprintf(
        buf, sizeof(buf),
        "{\"eps\":%.6f,\"height\":%d,\"leaf_cells_per_axis\":%d,"
        "\"lp_solves\":%lld,\"lp_seconds\":%.6f,"
        "\"lp_pricing_seconds\":%.6f,\"lp_simplex_seconds\":%.6f,"
        "\"lp_refactor_seconds\":%.6f,"
        "\"lp_violations\":%lld,\"degraded_rows\":%lld,"
        "\"uniform_prior_fallbacks\":%lld,\"cache_hits\":%lld,"
        "\"cache_size\":%zu,\"cache_bytes_resident\":%zu,"
        "\"cache_byte_budget\":%zu,\"cache_evictions\":%llu,"
        "\"cache_hit_rate\":%.6f,\"prewarmed_nodes\":%d,"
        "\"singleflight_waits\":%llu,"
        "\"plan_builds\":%lld,\"plan_levels\":%lld,"
        "\"fallthrough_levels\":%lld,"
        "\"bundle_bytes_mapped\":%llu,\"plan_warm_at_startup\":%llu}",
        region->sanitizer.epsilon(), region->sanitizer.budget().height(),
        region->leaf_cells_per_axis,
        static_cast<long long>(stats.lp_solves), stats.lp_seconds,
        stats.lp_pricing_seconds, stats.lp_simplex_seconds,
        stats.lp_refactor_seconds,
        static_cast<long long>(stats.lp_violations_found),
        static_cast<long long>(stats.degraded_rows),
        static_cast<long long>(stats.uniform_prior_fallbacks),
        static_cast<long long>(stats.cache_hits), cache.size(),
        cache.bytes_resident(), cache.byte_budget(),
        static_cast<unsigned long long>(cache.evictions()),
        cache.hit_rate(), region->prewarmed_nodes,
        static_cast<unsigned long long>(cache.singleflight_waits()),
        static_cast<long long>(stats.plan_builds),
        static_cast<long long>(stats.plan_levels),
        static_cast<long long>(stats.fallthrough_levels),
        static_cast<unsigned long long>(region->bundle_bytes_mapped),
        static_cast<unsigned long long>(region->plan_warm_at_startup));
    if (!first) json += ",";
    first = false;
    json += "\"" + JsonEscape(id) + "\":";
    json += buf;
  }
  json += "}";
  // The shards object is always present (stable schema); with routing off
  // it is the empty table.
  json += ",\"shards\":";
  json += router_ != nullptr
              ? router_->RoutingTableJson()
              : "{\"num_shards\":0,\"vnodes_per_shard\":0,\"requests\":[]}";
  json += "}";
  return json;
}

namespace {

// Escapes a Prometheus label value: backslash, double quote, and newline
// get backslash-escaped (the only three characters the text format
// requires escaping).
std::string PromLabelEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '\\':
        out += "\\\\";
        break;
      case '"':
        out += "\\\"";
        break;
      case '\n':
        out += "\\n";
        break;
      default:
        out += c;
    }
  }
  return out;
}

}  // namespace

std::string SanitizationService::MetricsText() const {
  std::string out = metrics_.ToPrometheus("geopriv_");
  char buf[256];

  const std::shared_ptr<const RegistrySnapshot> snap =
      snapshot_.load(std::memory_order_acquire);
  std::snprintf(buf, sizeof(buf),
                "# TYPE geopriv_snapshot_epoch gauge\n"
                "geopriv_snapshot_epoch %llu\n",
                static_cast<unsigned long long>(snap->epoch));
  out += buf;

  if (recorder_ != nullptr) {
    const obs::TraceStats ts = recorder_->stats();
    const auto trace_counter = [&](const char* name, uint64_t value) {
      std::snprintf(buf, sizeof(buf),
                    "# TYPE geopriv_trace_%s counter\n"
                    "geopriv_trace_%s %llu\n",
                    name, name, static_cast<unsigned long long>(value));
      out += buf;
    };
    trace_counter("requests_started_total", ts.requests_started);
    trace_counter("requests_retained_total", ts.requests_retained);
    trace_counter("requests_forced_total", ts.requests_forced);
    trace_counter("spans_committed_total", ts.spans_committed);
    trace_counter("spans_dropped_total", ts.spans_dropped);
  }

  if (router_ != nullptr) {
    std::snprintf(buf, sizeof(buf),
                  "# TYPE geopriv_shard_count gauge\n"
                  "geopriv_shard_count %d\n"
                  "# TYPE geopriv_shard_requests counter\n",
                  router_->num_shards());
    out += buf;
    for (int s = 0; s < router_->num_shards(); ++s) {
      std::snprintf(buf, sizeof(buf),
                    "geopriv_shard_requests{shard=\"%d\"} %llu\n", s,
                    static_cast<unsigned long long>(router_->requests(s)));
      out += buf;
    }
  }

  // Per-region gauges. One `# TYPE` header per family, then one sample
  // per region, labelled with the (escaped) region id.
  std::vector<std::pair<std::string, std::shared_ptr<Region>>> regions(
      snap->regions.begin(), snap->regions.end());
  std::sort(regions.begin(), regions.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  struct Family {
    const char* name;
    const char* type;
  };
  static constexpr Family kFamilies[] = {
      {"region_lp_solves", "counter"},
      {"region_lp_seconds", "counter"},
      {"region_lp_refactor_seconds", "counter"},
      {"region_cache_hits", "counter"},
      {"region_cache_size", "gauge"},
      {"region_cache_bytes_resident", "gauge"},
      {"region_cache_evictions", "counter"},
      {"region_singleflight_waits", "counter"},
      {"region_plan_builds", "counter"},
      {"region_bundle_bytes_mapped", "gauge"},
      {"region_plan_warm_at_startup", "gauge"},
  };
  for (const Family& family : kFamilies) {
    if (regions.empty()) break;
    std::snprintf(buf, sizeof(buf), "# TYPE geopriv_%s %s\n", family.name,
                  family.type);
    out += buf;
    for (const auto& [id, region] : regions) {
      const core::MsmStats stats = region->sanitizer.mechanism().stats();
      const auto& cache = region->sanitizer.mechanism().cache();
      double value = 0.0;
      const std::string name = family.name;
      if (name == "region_lp_solves") {
        value = static_cast<double>(stats.lp_solves);
      } else if (name == "region_lp_seconds") {
        value = stats.lp_seconds;
      } else if (name == "region_lp_refactor_seconds") {
        value = stats.lp_refactor_seconds;
      } else if (name == "region_cache_hits") {
        value = static_cast<double>(stats.cache_hits);
      } else if (name == "region_cache_size") {
        value = static_cast<double>(cache.size());
      } else if (name == "region_cache_bytes_resident") {
        value = static_cast<double>(cache.bytes_resident());
      } else if (name == "region_cache_evictions") {
        value = static_cast<double>(cache.evictions());
      } else if (name == "region_singleflight_waits") {
        value = static_cast<double>(cache.singleflight_waits());
      } else if (name == "region_plan_builds") {
        value = static_cast<double>(stats.plan_builds);
      } else if (name == "region_bundle_bytes_mapped") {
        value = static_cast<double>(region->bundle_bytes_mapped);
      } else if (name == "region_plan_warm_at_startup") {
        value = static_cast<double>(region->plan_warm_at_startup);
      }
      // The id is arbitrary caller data: concatenate (no fixed buffer) so
      // a long region id cannot truncate the sample line.
      std::snprintf(buf, sizeof(buf), "\"} %.9g\n", value);
      out += "geopriv_" + name + "{region=\"" + PromLabelEscape(id) + buf;
    }
  }
  return out;
}

std::string SanitizationService::FlightRecorderJson(size_t last_k) const {
  return recorder_ != nullptr ? recorder_->FlightRecorderJson(last_k) : "[]";
}

std::string SanitizationService::ChromeTraceJson(size_t max_events) const {
  return recorder_ != nullptr ? recorder_->ChromeTraceJson(max_events)
                              : "{\"traceEvents\":[]}";
}

}  // namespace geopriv::service
