// ShardRouter: deterministic consistent-hash routing of region ids onto a
// fixed set of virtual serving shards.
//
// The build/serve split (src/bundle/) makes regions cheap to load anywhere
// — a serving process mmaps a bundle and is warm in milliseconds — so a
// fleet can spread regions across processes instead of packing every
// region into one. The router is the placement function: it hashes each
// region id onto a ring of `vnodes_per_shard` points per shard and routes
// to the owner of the first ring point at or after the id's hash. The
// ring is built from the shard count alone (FNV-1a of "shard-<s>:<v>"),
// so every process that constructs a ShardRouter with the same
// (num_shards, vnodes_per_shard) computes the same placement — no
// coordination service, no routing-table distribution.
//
// Consistent hashing keeps the map stable under resizing: growing from N
// to N+1 shards moves only ~1/(N+1) of the regions, so a fleet can scale
// out without re-mapping (and thus re-loading) every region's bundle.
// Virtual nodes smooth the per-shard load imbalance to O(1/sqrt(vnodes)).
//
// Per-shard request counters are cache-line padded and relaxed — the
// recording path is one hash + binary search + one fetch_add, safe to
// call from every worker concurrently. RoutingTableJson() exposes the
// table and counters for dashboards.

#ifndef GEOPRIV_SERVICE_SHARD_ROUTER_H_
#define GEOPRIV_SERVICE_SHARD_ROUTER_H_

#include <atomic>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "base/sharded_counter.h"

namespace geopriv::service {

class ShardRouter {
 public:
  // `num_shards` >= 1; `vnodes_per_shard` >= 1 (64 is a good default:
  // ~12% relative load spread at 8 shards). Deterministic: same
  // arguments, same ring, in every process.
  explicit ShardRouter(int num_shards, int vnodes_per_shard = 64);

  ShardRouter(const ShardRouter&) = delete;
  ShardRouter& operator=(const ShardRouter&) = delete;

  // The shard owning `region_id`, in [0, num_shards()). Pure function of
  // (ring, region_id); never records anything.
  int ShardFor(std::string_view region_id) const;

  // Counts one request against `shard` (as returned by ShardFor).
  // Relaxed, contention-free across workers; out-of-range shards are
  // ignored rather than UB.
  void RecordRequest(int shard) {
    if (shard < 0 || shard >= num_shards_) return;
    counters_[static_cast<size_t>(shard)].requests.fetch_add(
        1, std::memory_order_relaxed);
  }

  uint64_t requests(int shard) const {
    if (shard < 0 || shard >= num_shards_) return 0;
    return counters_[static_cast<size_t>(shard)].requests.load(
        std::memory_order_relaxed);
  }

  int num_shards() const { return num_shards_; }
  int vnodes_per_shard() const { return vnodes_per_shard_; }

  // {"num_shards":N,"vnodes_per_shard":V,"requests":[r0,...,rN-1]} — the
  // routing table's shape plus the live per-shard request counts.
  std::string RoutingTableJson() const;

 private:
  // One ring point: a shard replicated at position `hash`.
  struct VirtualNode {
    uint64_t hash;
    int shard;
  };

  struct alignas(kCounterSlotAlign) ShardCounters {
    std::atomic<uint64_t> requests{0};
  };

  int num_shards_;
  int vnodes_per_shard_;
  // Sorted by hash; lookup is a binary search with wraparound.
  std::vector<VirtualNode> ring_;
  // vector, not array: shard count is a runtime choice. Constructed once,
  // never resized — the atomics stay put.
  std::vector<ShardCounters> counters_;
};

}  // namespace geopriv::service

#endif  // GEOPRIV_SERVICE_SHARD_ROUTER_H_
