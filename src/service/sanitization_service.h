// SanitizationService: the concurrent serving engine over the library's
// mechanisms. One process-wide service owns
//
//  * a fixed-size worker pool (base/thread_pool.h) fed by a bounded MPMC
//    queue — admission control rejects submissions when the queue is full
//    instead of building an unbounded backlog;
//  * a multi-tenant region registry: one mechanism stack (projection,
//    prior, hierarchical index, MSM with a shared singleflight node cache)
//    per study region, keyed by region id. The registry is epoch-published:
//    lookups do ONE atomic shared_ptr load of an immutable snapshot — no
//    mutex, ever — while register/unregister copy the map and publish a new
//    snapshot under a writer-only mutex. A request that resolved a region
//    keeps serving from it even if the region is unregistered mid-flight;
//  * one deterministic RNG stream per worker (service seed ⊕ a per-worker
//    stream constant), so a run is reproducible per worker without any
//    cross-thread RNG locking;
//  * graceful degradation: when a request's deadline expires in the queue,
//    or the MSM path fails (e.g. an LP time limit), the worker falls back
//    to planar Laplace remapped onto the region's leaf grid. The fallback
//    spends the same total budget eps in one shot, so the reply still
//    satisfies eps-GeoInd — it only costs utility, never privacy — and it
//    is always counted in the metrics, never silent;
//  * a service::Metrics registry (request/fallback counters + latency
//    histogram) dumped as JSON by MetricsJson().
//
// APIs: blocking SanitizeBatch() fans a batch across the pool and waits;
// SubmitAsync() enqueues one request with a completion callback;
// SubmitFuture() is the future-shaped wrapper over the same queue.

#ifndef GEOPRIV_SERVICE_SANITIZATION_SERVICE_H_
#define GEOPRIV_SERVICE_SANITIZATION_SERVICE_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "base/status.h"
#include "base/stopwatch.h"
#include "base/thread_pool.h"
#include "core/location_sanitizer.h"
#include "mechanisms/planar_laplace.h"
#include "obs/trace.h"
#include "service/metrics.h"
#include "service/shard_router.h"

namespace geopriv::service {

// One study region (tenant). Mirrors LocationSanitizer::Builder's knobs.
struct RegionConfig {
  // Lat/lon box: south-west / north-east corners. Required.
  double min_lat = 0.0, min_lon = 0.0, max_lat = 0.0, max_lon = 0.0;
  // Total privacy budget (required, > 0).
  double eps = 0.0;
  int granularity = 4;
  double rho = 0.8;
  int prior_granularity = 128;
  // Historical check-ins shaping the prior (uniform when empty).
  std::vector<core::LatLon> checkins;
  geo::UtilityMetric metric = geo::UtilityMetric::kEuclidean;
  // Wall-clock cap per node LP solve; a solve that exceeds it makes the
  // request degrade to the planar-Laplace fallback. 0 = unlimited.
  double lp_time_limit_seconds = 0.0;
  // Byte budget for the region's resident per-node OPT matrices; past it
  // the node cache evicts least-recently-used unpinned entries (a matrix
  // in use by a worker is pinned and never freed under it). 0 = unbounded.
  size_t cache_byte_budget = 0;
  // Pre-solve the LPs of this many top-prior-mass index nodes at
  // registration time, so first traffic hits a warm cache. Best-effort:
  // a prewarm solve failure (e.g. an LP time limit) degrades to lazy
  // solving instead of failing the registration. 0 = off.
  int prewarm_nodes = 0;
};

struct ServiceOptions {
  int num_workers = 4;
  size_t queue_capacity = 1024;
  // Base seed; worker w draws from the stream WorkerSeed(seed, w).
  uint64_t seed = 0x5EED5EED5EEDull;
  // Applied to requests that do not set their own deadline. 0 = none.
  double default_deadline_ms = 0.0;
  // SanitizeBatch items per pool task. A chunk resolves its region once
  // (one snapshot load) and walks its items through one BatchWalker, so
  // per-item queue/lookup overhead is amortized chunk-wide; 1 reproduces
  // the old item-per-task behavior.
  int batch_chunk_size = 8;
  // Request tracing / flight recording. trace.sample_one_in == 0 (the
  // default) disables tracing entirely: no recorder is built and every
  // instrumentation site costs one thread-local load and a branch.
  obs::TraceOptions trace;
  // Virtual serving shards (see service/shard_router.h). 0 (the default)
  // disables routing entirely; > 0 builds a deterministic consistent-hash
  // ring, tags every request with its region's shard, and exposes the
  // routing table plus per-shard request counts in MetricsJson() /
  // MetricsText(). This process still serves every registered region —
  // the shard is an observability/placement signal, not an admission
  // filter — so a fleet can run the same ring in N processes and have
  // each one register only the regions ShardFor() assigns it.
  int num_shards = 0;
  int shard_vnodes = 64;
};

// Knobs of LoadRegionFromBundle — the serve-tier half of the build/serve
// split. Everything geometric (region box, eps, granularity, rho, prior,
// metric, per-level budgets, solved mechanisms) comes from the bundle
// itself; only serving-local policy lives here.
struct BundleRegionOptions {
  // Byte budget for the region's node cache. Mechanisms published from
  // the mapping count their owned bytes only (the matrices stay in the
  // file-backed mapping), so a budget here mainly bounds cold-node
  // rebuilds. 0 = unbounded.
  size_t cache_byte_budget = 0;
  // Wall-clock cap per cold-node LP solve (bundle misses only; bundled
  // nodes never solve). 0 = unlimited.
  double lp_time_limit_seconds = 0.0;
  // Verify every section's FNV-1a checksum against the TOC before
  // serving. Costs one pass over the file; turn off only for bundles on
  // trusted, already-verified storage.
  bool verify_checksums = true;
};

struct SanitizeRequest {
  std::string region_id;
  core::LatLon location;
  // Measured from submission; past it the request degrades to the
  // planar-Laplace fallback. 0 = use the service default.
  double deadline_ms = 0.0;
};

struct SanitizeResult {
  // Non-OK only when the request could not be served at all (unknown
  // region, rejected at admission). Fallback replies are OK.
  Status status;
  core::LatLon reported;
  bool used_fallback = false;
  // Served through the MSM path but completed past the request's
  // deadline (the budget was already spent, so the reply is returned
  // anyway; also counted in Metrics::deadline_overruns).
  bool deadline_overrun = false;
  double latency_ms = 0.0;  // submission -> completion
  int worker_id = -1;
};

// The stable key schema of SanitizationService::MetricsJson(), defined
// here in one place and asserted by tests/metrics_test.cc. Like
// kMetricsJsonKeys (the schema of the nested "service" object), these may
// be extended at the end only, never renamed or reordered.
inline constexpr const char* kServiceMetricsJsonKeys[] = {
    "service", "snapshot_epoch", "trace", "regions", "shards"};
inline constexpr const char* kTraceMetricsJsonKeys[] = {
    "enabled",           "sample_one_in",  "requests_started",
    "requests_retained", "requests_forced", "spans_committed",
    "spans_dropped"};
inline constexpr const char* kRegionMetricsJsonKeys[] = {
    "eps",           "height",
    "leaf_cells_per_axis", "lp_solves",
    "lp_seconds",    "lp_pricing_seconds",
    "lp_simplex_seconds",  "lp_refactor_seconds",
    "lp_violations", "degraded_rows",
    "uniform_prior_fallbacks", "cache_hits",
    "cache_size",    "cache_bytes_resident",
    "cache_byte_budget",   "cache_evictions",
    "cache_hit_rate",      "prewarmed_nodes",
    "singleflight_waits",  "plan_builds",
    "plan_levels",   "fallthrough_levels",
    "bundle_bytes_mapped", "plan_warm_at_startup"};

class SanitizationService {
 public:
  using Callback = std::function<void(const SanitizeResult&)>;

  static StatusOr<std::unique_ptr<SanitizationService>> Create(
      const ServiceOptions& options);

  // Drains in-flight requests and joins the workers.
  ~SanitizationService();

  SanitizationService(const SanitizationService&) = delete;
  SanitizationService& operator=(const SanitizationService&) = delete;

  // Builds the region's mechanism stack (prior, index, MSM, fallback).
  // Fails on invalid config or duplicate id. The id is reserved *before*
  // the (potentially expensive) build, so a duplicate — sequential or
  // concurrent — fails fast without paying the build; the reservation is
  // released if the build fails. Per-node LPs are solved lazily on first
  // traffic unless `config.prewarm_nodes` asks for warmup here.
  Status RegisterRegion(const std::string& region_id,
                        const RegionConfig& config);

  // Registers a region from a v2 bundle (see src/bundle/): mmaps `path`,
  // publishes every stored mechanism into the node cache as zero-copy
  // views over the mapping, and goes live with a warm serving plan and
  // zero LP solves — the cold-start path of the build/serve split.
  // Same reservation/duplicate semantics as RegisterRegion; also records
  // Metrics::RecordBundleLoad. The mapping stays pinned while the region
  // (or any in-flight request that resolved it) is alive.
  Status LoadRegionFromBundle(const std::string& region_id,
                              const std::string& path,
                              const BundleRegionOptions& options = {});

  // Publishes a snapshot without the region. In-flight requests that
  // already resolved it keep their pinned Region and finish normally; new
  // lookups miss. NotFound for unknown ids; FailedPrecondition while a
  // concurrent RegisterRegion is still building the id.
  Status UnregisterRegion(const std::string& region_id);

  // Epoch of the current registry snapshot; increments on every
  // register/unregister publication. Lets dashboards correlate counter
  // movements with config changes.
  uint64_t snapshot_epoch() const;

  // Blocking: fans the batch across the worker pool (bypassing admission
  // control — batch submission blocks instead of rejecting) and waits for
  // every result. results[i] corresponds to locations[i]. Must not be
  // called from a worker thread.
  std::vector<SanitizeResult> SanitizeBatch(
      const std::string& region_id,
      const std::vector<core::LatLon>& locations);

  // Non-blocking: enqueues the request; `done` runs on a worker thread.
  // Returns kResourceExhausted when the queue is full (backpressure) —
  // the callback is NOT invoked in that case.
  Status SubmitAsync(SanitizeRequest request, Callback done);

  // Future-shaped wrapper over SubmitAsync. An admission-rejected request
  // resolves the future immediately with the rejection status.
  std::future<SanitizeResult> SubmitFuture(SanitizeRequest request);

  // Blocks until every accepted request has completed.
  void Drain();

  // Graceful stop: closes the queue (blocked batch producers and new
  // submissions are rejected with kResourceExhausted), runs what is
  // already queued, joins the workers. Idempotent; also run by the
  // destructor.
  void Shutdown();

  // Cache/stat introspection for one region.
  struct RegionInfo {
    double eps = 0.0;
    int granularity = 0;
    int height = 0;
    int leaf_cells_per_axis = 0;
    core::MsmStats msm;
    size_t cache_size = 0;
    size_t cache_bytes_resident = 0;
    size_t cache_byte_budget = 0;
    uint64_t cache_evictions = 0;
    double cache_hit_rate = 0.0;
    uint64_t singleflight_waits = 0;
    // Nodes pre-solved at registration (0 when prewarm was off).
    int prewarmed_nodes = 0;
    // Bundle-loaded regions only (0 for Builder-registered regions):
    // bytes of the region's mmapped bundle and serving-plan nodes that
    // were warm the instant the region went live.
    uint64_t bundle_bytes_mapped = 0;
    uint64_t plan_warm_at_startup = 0;
  };
  StatusOr<RegionInfo> GetRegionInfo(const std::string& region_id) const;

  Metrics& metrics() { return metrics_; }
  const Metrics& metrics() const { return metrics_; }

  // Service counters plus per-region cache stats, as one JSON object.
  // Top-level key order = kServiceMetricsJsonKeys; each region object's
  // key order = kRegionMetricsJsonKeys.
  std::string MetricsJson() const;

  // The service counters in the Prometheus text exposition format:
  // everything Metrics::ToPrometheus() emits, plus per-region gauges
  // (labelled {region="<id>"}), trace-recorder counters, and the registry
  // snapshot epoch. Family names carry the "geopriv_" prefix.
  std::string MetricsText() const;

  // Post-mortem trace dumps ("[]" / empty traceEvents when tracing is
  // off). See obs::TraceRecorder for the formats.
  std::string FlightRecorderJson(size_t last_k = 256) const;
  std::string ChromeTraceJson(size_t max_events = 0) const;

  // The recorder itself, nullptr when options.trace.sample_one_in == 0.
  obs::TraceRecorder* trace_recorder() { return recorder_.get(); }
  const obs::TraceRecorder* trace_recorder() const { return recorder_.get(); }

  // The consistent-hash router, nullptr when options.num_shards == 0.
  const ShardRouter* shard_router() const { return router_.get(); }

  // The deterministic seed of worker `worker_id`'s RNG stream.
  static uint64_t WorkerSeed(uint64_t seed, int worker_id);

  int num_workers() const { return pool_->num_threads(); }
  size_t queue_capacity() const { return pool_->queue_capacity(); }

 private:
  struct Region {
    core::LocationSanitizer sanitizer;
    // Full-eps planar Laplace remapped to the region's leaf grid: the
    // degradation path. Stateless after construction; shared by workers.
    mechanisms::PlanarLaplaceOnGrid fallback;
    int leaf_cells_per_axis = 0;
    int prewarmed_nodes = 0;
    // Set only by LoadRegionFromBundle; 0 for Builder-registered regions.
    uint64_t bundle_bytes_mapped = 0;
    uint64_t plan_warm_at_startup = 0;

    Region(core::LocationSanitizer s, mechanisms::PlanarLaplaceOnGrid f,
           int leaf)
        : sanitizer(std::move(s)), fallback(std::move(f)),
          leaf_cells_per_axis(leaf) {}
  };

  // Immutable once published. Readers hold it via one atomic shared_ptr
  // load; a reader's copy stays valid across any number of later
  // publications (the regions it references are themselves shared_ptrs).
  struct RegistrySnapshot {
    std::unordered_map<std::string, std::shared_ptr<Region>> regions;
    uint64_t epoch = 0;
  };

  explicit SanitizationService(const ServiceOptions& options);

  // One atomic load, no locks — the per-request registry access.
  std::shared_ptr<Region> FindRegion(const std::string& region_id) const;

  // Copy-publish `regions` as the next snapshot. Caller must hold
  // registry_writer_mu_.
  void PublishLocked(
      std::unordered_map<std::string, std::shared_ptr<Region>> regions);

  // Runs on a worker: serves one request end-to-end and fires `done`.
  void Process(const SanitizeRequest& request, const Stopwatch& watch,
               const Callback& done, int worker_id);

  // The per-item serving logic shared by Process and the chunked batch
  // path: deadline check, MSM walk (through `walker`), fallback,
  // per-worker metrics. `deadline_ms` 0 = none.
  void ServeOne(Region& region, core::LocationSanitizer::BatchWalker& walker,
                const core::LatLon& location, double deadline_ms,
                const Stopwatch& watch, int worker_id,
                SanitizeResult* result);

  void FinishOne();

  // Metrics slot of worker-side events (slot 0 is the submission side).
  static int WorkerSlot(int worker_id) { return worker_id + 1; }

  ServiceOptions options_;
  Metrics metrics_;
  // Built iff options_.trace.sample_one_in > 0; never reassigned after
  // construction, so workers read it without synchronization.
  std::unique_ptr<obs::TraceRecorder> recorder_;
  // Built iff options_.num_shards > 0; same immutability contract.
  std::unique_ptr<ShardRouter> router_;

  // Writers only: serializes register/unregister and guards building_.
  // The serving path never touches it.
  std::mutex registry_writer_mu_;
  // Ids a RegisterRegion is currently building. Reserving here (instead
  // of planting a placeholder in the map) keeps half-built regions out of
  // every snapshot while still failing duplicate registrations fast.
  std::unordered_set<std::string> building_;
  std::atomic<std::shared_ptr<const RegistrySnapshot>> snapshot_;

  std::vector<rng::Rng> worker_rngs_;  // one per worker, index = worker id

  std::mutex inflight_mu_;
  std::condition_variable inflight_cv_;
  uint64_t inflight_ = 0;

  // Last member: destroyed (joined) first, while the state above is alive.
  std::unique_ptr<ThreadPool> pool_;
};

}  // namespace geopriv::service

#endif  // GEOPRIV_SERVICE_SANITIZATION_SERVICE_H_
