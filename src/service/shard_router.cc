#include "service/shard_router.h"

#include <algorithm>
#include <cstdio>

namespace geopriv::service {

namespace {

// FNV-1a over bytes, finished with a splitmix64-style mixer. std::hash
// is implementation-defined, which would make placement differ across
// standard libraries; the router's whole point is that every process
// computes the same ring. Raw FNV-1a alone is not enough: its avalanche
// on short, similar strings ("shard-0:1" vs "shard-0:2") is weak, which
// clusters ring points into long same-shard arcs and skews placement
// badly. The finalizer spreads those near-collisions across the full
// 64-bit ring.
uint64_t Mix64(uint64_t h) {
  h ^= h >> 30;
  h *= 0xBF58476D1CE4E5B9ull;
  h ^= h >> 27;
  h *= 0x94D049BB133111EBull;
  h ^= h >> 31;
  return h;
}

uint64_t RingHash(std::string_view bytes) {
  uint64_t h = 14695981039346656037ull;
  for (const char c : bytes) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ull;
  }
  return Mix64(h);
}

}  // namespace

ShardRouter::ShardRouter(int num_shards, int vnodes_per_shard)
    : num_shards_(std::max(1, num_shards)),
      vnodes_per_shard_(std::max(1, vnodes_per_shard)),
      counters_(static_cast<size_t>(num_shards_)) {
  ring_.reserve(static_cast<size_t>(num_shards_) *
                static_cast<size_t>(vnodes_per_shard_));
  char label[48];
  for (int s = 0; s < num_shards_; ++s) {
    for (int v = 0; v < vnodes_per_shard_; ++v) {
      std::snprintf(label, sizeof(label), "shard-%d:%d", s, v);
      ring_.push_back({RingHash(label), s});
    }
  }
  // Sort by hash; break the (astronomically unlikely) hash ties by shard
  // id so the ring order — and therefore placement — is fully determined.
  std::sort(ring_.begin(), ring_.end(),
            [](const VirtualNode& a, const VirtualNode& b) {
              return a.hash != b.hash ? a.hash < b.hash : a.shard < b.shard;
            });
}

int ShardRouter::ShardFor(std::string_view region_id) const {
  const uint64_t h = RingHash(region_id);
  // First ring point at or after h, wrapping to the start past the end —
  // the standard consistent-hash successor lookup.
  auto it = std::lower_bound(ring_.begin(), ring_.end(), h,
                             [](const VirtualNode& node, uint64_t key) {
                               return node.hash < key;
                             });
  if (it == ring_.end()) it = ring_.begin();
  return it->shard;
}

std::string ShardRouter::RoutingTableJson() const {
  char buf[96];
  std::snprintf(buf, sizeof(buf),
                "{\"num_shards\":%d,\"vnodes_per_shard\":%d,\"requests\":[",
                num_shards_, vnodes_per_shard_);
  std::string json = buf;
  for (int s = 0; s < num_shards_; ++s) {
    std::snprintf(buf, sizeof(buf), "%s%llu", s == 0 ? "" : ",",
                  static_cast<unsigned long long>(requests(s)));
    json += buf;
  }
  json += "]}";
  return json;
}

}  // namespace geopriv::service
