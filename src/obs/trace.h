// Request tracing and flight recording for the sanitization pipeline.
//
// The serving path (admission -> queue -> GIHI walk -> per-node LP) is
// instrumented with *spans*: fixed-size POD events carrying steady-clock
// tick ranges plus integral payload (node index, level, status code).
// Recording is designed for the warm hot path:
//
//  * A request's spans accumulate in a stack-allocated RequestTrace (a
//    fixed array, no heap allocation anywhere on the hot path). The
//    instrumented layers reach it through a thread-local pointer installed
//    by ScopedTrace, so no API signature between the service and the
//    mechanism stack had to grow a context parameter.
//  * At request end the recorder decides retention: head-based sampling
//    (1-in-N per thread, decided at Begin()) OR forced retention for any
//    request that
//    degraded to planar Laplace, overran its deadline, or landed in the
//    tail latency bucket. Tail-interesting requests are therefore always
//    captured even when sampling is sparse — the classic flight-recorder
//    property. Only head-sampled requests pay for detail (per-level walk
//    spans, LP phases, clock reads); a request that lost the head draw
//    costs one relaxed id allocation and a few branches, and if it turns
//    out degraded/overrun/tail the service synthesizes a coarse record
//    (fallback marker + request envelope) at Finish time instead.
//  * Retained spans are committed into per-thread lock-free ring buffers
//    (relaxed fetch_add reservation, power-of-two capacity). Old events
//    are overwritten, never blocked on: the rings always hold the last ~K
//    interesting events for post-mortem dumping.
//
// Exporters: ChromeTraceJson() emits the Chrome trace-event format
// (chrome://tracing / Perfetto "traceEvents" array) for timeline
// inspection; FlightRecorderJson() emits a flat JSON array of the most
// recent spans for post-mortem grepping. Dumps are diagnostic reads over
// live rings: a writer racing the dump can tear an in-flight event, which
// is the accepted flight-recorder trade (dumps are normally taken after a
// degrade/overrun, not at peak write rate).
//
// PRIVACY GUARDRAIL: SpanEvent payloads are integral-only by construction
// — node indices, level numbers, status codes, flags. There is no
// floating-point field anywhere in the event, so a span cannot carry a raw
// or sanitized coordinate even by mistake. static_asserts below and
// tests/obs_test.cc enforce this shape.

#ifndef GEOPRIV_OBS_TRACE_H_
#define GEOPRIV_OBS_TRACE_H_

#include <array>
#include <atomic>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <type_traits>
#include <vector>

#include "base/sharded_counter.h"

namespace geopriv::obs {

// Steady-clock ticks in nanoseconds (monotonic, comparable across threads
// of one process).
inline uint64_t NowTicks() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

inline uint64_t SecondsToTicks(double seconds) {
  return seconds <= 0.0 ? 0 : static_cast<uint64_t>(seconds * 1e9);
}

// Span kinds, one per instrumented seam of the pipeline.
enum class SpanKind : uint16_t {
  kRequest = 0,         // whole request (service side)
  kQueueWait,           // submission -> worker pickup
  kWalk,                // the MSM tree walk, all levels
  kWalkLevelPlan,       // one level served from the pinned serving plan
  kWalkLevelMemo,       // one level served from the batch memo
  kWalkLevelCacheHit,   // one level served from the singleflight cache
  kWalkLevelColdBuild,  // one level that paid a cold LP build
  kLpPricing,           // LP phase: column-generation pricing scans
  kLpRefactor,          // LP phase: basis refactorizations
  kLpSimplex,           // LP phase: simplex pivoting
  kSingleflightWait,    // blocked on another thread's in-flight build
  kFallback,            // planar-Laplace degradation (sampling included)
  kNumKinds,
};

// Stable lower_snake_case name ("queue_wait", "walk_level_plan", ...).
const char* SpanKindName(SpanKind kind);

// Flags on the request-level span (and the committed trace).
inline constexpr uint16_t kFlagSampled = 1u << 0;   // head-sampling hit
inline constexpr uint16_t kFlagDegraded = 1u << 1;  // planar-Laplace path
inline constexpr uint16_t kFlagDeadlineOverrun = 1u << 2;
inline constexpr uint16_t kFlagTailLatency = 1u << 3;

// One span. POD, fixed size, integral payload only (see the privacy
// guardrail in the file comment). Deliberately no default member
// initializers: every request stack-allocates a 96-element array of
// these, and default-initializing it must be free — RequestTrace::Emit()
// writes every field of a span before it becomes visible. Value-init
// (SpanEvent{}) still zeroes.
struct SpanEvent {
  uint64_t request_id;
  uint64_t start_ticks;
  uint64_t end_ticks;
  int64_t node;    // spatial node index, -1 when not applicable
  int32_t detail;  // level number / StatusCode / worker id / reason
  uint16_t kind;   // SpanKind
  uint16_t flags;
};
static_assert(std::is_trivially_copyable_v<SpanEvent> &&
                  std::is_standard_layout_v<SpanEvent>,
              "SpanEvent must stay a POD ring-buffer element");
// The privacy guardrail, enforced at compile time: every payload field is
// integral. No double/float member may ever be added — that is the type-
// level door a coordinate could leak through.
static_assert(std::is_integral_v<decltype(SpanEvent::request_id)> &&
                  std::is_integral_v<decltype(SpanEvent::start_ticks)> &&
                  std::is_integral_v<decltype(SpanEvent::end_ticks)> &&
                  std::is_integral_v<decltype(SpanEvent::node)> &&
                  std::is_integral_v<decltype(SpanEvent::detail)> &&
                  std::is_integral_v<decltype(SpanEvent::kind)> &&
                  std::is_integral_v<decltype(SpanEvent::flags)>,
              "SpanEvent payload must be integral-only: node ids, levels, "
              "status codes — never coordinates");
static_assert(sizeof(SpanEvent) == 40, "keep the ring element compact");

struct TraceOptions {
  // Head sampling: 0 disables tracing entirely (the service then installs
  // no thread-local trace and the instrumentation costs one branch);
  // 1 retains every request; N retains 1-in-N, plus every degraded /
  // overrun / tail request regardless of the head decision (those carry
  // a coarse synthesized record when they lost the head draw — detailed
  // spans are only buffered for head-sampled requests).
  uint32_t sample_one_in = 0;
  // Per-ring capacity in events; rounded up to a power of two.
  size_t ring_capacity = 8192;
  // Per-thread rings (threads beyond this hash onto shared rings).
  int num_rings = 16;
  // Requests at least this slow are force-retained. 0 = off.
  double tail_latency_ms = 0.0;
};

// Counters for dashboards and the overhead bench.
struct TraceStats {
  uint64_t requests_started = 0;
  uint64_t requests_retained = 0;  // committed to the rings
  uint64_t requests_forced = 0;    // retained despite losing the head draw
  uint64_t spans_committed = 0;
  uint64_t spans_dropped = 0;  // per-request buffer overflow
};

// Per-request span buffer. Stack-allocated by the worker serving the
// request; no heap, no locks. Spans past kMaxSpans are counted as dropped
// rather than grown — a fixed footprint is the point.
class RequestTrace {
 public:
  static constexpr int kMaxSpans = 96;

  void Emit(SpanKind kind, uint64_t start_ticks, uint64_t end_ticks,
            int64_t node = -1, int32_t detail = 0) {
    if (count_ >= kMaxSpans) {
      ++dropped_;
      return;
    }
    SpanEvent& e = spans_[static_cast<size_t>(count_++)];
    e.request_id = request_id_;
    e.start_ticks = start_ticks;
    e.end_ticks = end_ticks;
    e.node = node;
    e.detail = detail;
    e.kind = static_cast<uint16_t>(kind);
    e.flags = 0;
  }

  void SetFlags(uint16_t flags) { flags_ |= flags; }
  uint16_t flags() const { return flags_; }
  uint64_t request_id() const { return request_id_; }
  int span_count() const { return count_; }
  const SpanEvent& span(int i) const {
    return spans_[static_cast<size_t>(i)];
  }

 private:
  friend class TraceRecorder;
  uint64_t request_id_ = 0;
  uint16_t flags_ = 0;
  int count_ = 0;
  int dropped_ = 0;
  std::array<SpanEvent, kMaxSpans> spans_;
};

// Installs `trace` as the calling thread's active trace for its scope, so
// lower layers (MSM walk, node cache, LP build) can attach spans without
// any plumbed-through context argument. Nests correctly (restores the
// previous trace).
class ScopedTrace {
 public:
  explicit ScopedTrace(RequestTrace* trace);
  ~ScopedTrace();

  ScopedTrace(const ScopedTrace&) = delete;
  ScopedTrace& operator=(const ScopedTrace&) = delete;

 private:
  RequestTrace* prev_;
};

// The calling thread's active trace, nullptr when none. Instrumentation
// sites load this once and skip all work when tracing is off.
RequestTrace* ActiveTrace();

namespace internal {

// One thread's request counter for one recorder. Single-writer: only the
// owning thread stores (plain load+store, no lock-prefixed RMW on the
// per-request path); stats() readers only load. The block is owned by the
// recorder's registry and outlives the thread's use of it.
struct alignas(kCounterSlotAlign) TraceTlsCounters {
  std::atomic<uint64_t> started{0};
};

// Per-thread single-entry cache mapping the most recently used recorder
// (by its process-unique generation number, never by address — addresses
// get reused) to that thread's counter block. Generation 0 never matches.
struct TraceTlsEntry {
  uint64_t gen = 0;
  TraceTlsCounters* counters = nullptr;
};
inline thread_local TraceTlsEntry g_trace_tls;

}  // namespace internal

class TraceRecorder {
 public:
  explicit TraceRecorder(const TraceOptions& options);

  TraceRecorder(const TraceRecorder&) = delete;
  TraceRecorder& operator=(const TraceRecorder&) = delete;

  // Starts a request trace in place (the caller stack-allocates it; no
  // ~4 KB struct ever travels by value on the hot path): resets it and
  // takes the head-sampling decision (recorded in the trace's
  // kFlagSampled). Inline and deliberately free of lock-prefixed RMWs:
  // the per-thread request count is a single-writer atomic (plain
  // load+store), and the draw is the thread's Nth request winning iff
  // N % sample_one_in == 0 — 1-in-N per thread, so 1-in-N globally.
  // Request ids are allocated at End(), only for retained traces.
  void Begin(RequestTrace* trace) {
    internal::TraceTlsCounters* const counters =
        internal::g_trace_tls.gen == gen_ ? internal::g_trace_tls.counters
                                          : RegisterThread();
    const uint64_t count =
        counters->started.load(std::memory_order_relaxed) + 1;
    counters->started.store(count, std::memory_order_relaxed);
    trace->request_id_ = 0;  // assigned at End() when retained
    trace->flags_ = 0;
    trace->count_ = 0;
    trace->dropped_ = 0;
    // Power-of-two sample rates (the common case) take the mask path: a
    // 64-bit divide is ~20 cycles the per-request path should not pay.
    const uint32_t n = options_.sample_one_in;
    const bool sampled =
        n == 1 || (n > 1 && ((n & (n - 1)) == 0 ? (count & (n - 1)) == 0
                                                : count % n == 0));
    if (sampled) trace->flags_ |= kFlagSampled;
  }

  // Ends the request: retains its spans (commits them to the calling
  // thread's ring) when head-sampled or force-retained by flags/latency.
  // The caller must have set kFlagDegraded / kFlagDeadlineOverrun before
  // calling; kFlagTailLatency is derived here from `latency_seconds`.
  void End(RequestTrace& trace, double latency_seconds);

  // True when End() would retain a trace with these flags even after
  // losing the head draw (degraded / overrun flags, or tail latency).
  // Callers use it to decide whether synthesizing coarse spans for an
  // unsampled request is worth the clock reads.
  bool WouldForce(uint16_t flags, double latency_seconds) const {
    if ((flags & (kFlagDegraded | kFlagDeadlineOverrun)) != 0) return true;
    return options_.tail_latency_ms > 0.0 &&
           latency_seconds * 1e3 >= options_.tail_latency_ms;
  }

  // The most recent committed events across all rings (up to `max_events`,
  // 0 = everything resident), ordered by start tick. Diagnostic read: may
  // tear events being written concurrently.
  std::vector<SpanEvent> Snapshot(size_t max_events = 0) const;

  // Chrome trace-event JSON ({"traceEvents":[...]}) over Snapshot().
  // Load it in chrome://tracing or Perfetto.
  std::string ChromeTraceJson(size_t max_events = 0) const;

  // Flat post-mortem dump of the last `last_k` spans: a JSON array whose
  // objects carry request/kind/ticks/node/detail/flags — and, by the
  // SpanEvent guardrail, never a coordinate.
  std::string FlightRecorderJson(size_t last_k = 256) const;

  TraceStats stats() const;
  const TraceOptions& options() const { return options_; }

 private:
  struct alignas(kCounterSlotAlign) Ring {
    std::atomic<uint64_t> reserved{0};  // events ever written
    std::vector<SpanEvent> events;      // capacity_, power of two
  };

  // Slow path of Begin(): allocates (or finds) this thread's counter
  // block in the registry and caches it in the thread-local entry.
  internal::TraceTlsCounters* RegisterThread();

  TraceOptions options_;
  const uint64_t gen_;   // process-unique recorder generation
  size_t capacity_ = 0;  // per ring, power of two
  std::vector<Ring> rings_;
  // Per-thread started counters, owned here so they outlive the threads
  // and stats() can sum them. Guarded by tls_mu_ (registration and
  // stats() only — never the per-request path).
  mutable std::mutex tls_mu_;
  std::vector<std::unique_ptr<internal::TraceTlsCounters>> tls_counters_;
  // Ids are allocated here only when a trace is retained (End()), so the
  // common unretained request never pays a lock-prefixed RMW. Starts at 1
  // so id 0 can mean "never retained".
  std::atomic<uint64_t> next_request_id_{1};
  std::atomic<uint64_t> requests_retained_{0};
  std::atomic<uint64_t> requests_forced_{0};
  std::atomic<uint64_t> spans_committed_{0};
  std::atomic<uint64_t> spans_dropped_{0};
};

}  // namespace geopriv::obs

#endif  // GEOPRIV_OBS_TRACE_H_
