#include "obs/trace.h"

#include <algorithm>
#include <cstdio>

namespace geopriv::obs {

namespace {

thread_local RequestTrace* g_active_trace = nullptr;

size_t RoundUpPow2(size_t v) {
  size_t p = 1;
  while (p < v) p <<= 1;
  return p;
}

void AppendEventJson(std::string& out, const SpanEvent& e) {
  char buf[224];
  std::snprintf(
      buf, sizeof(buf),
      "{\"request\":%llu,\"kind\":\"%s\",\"start_us\":%.3f,"
      "\"dur_us\":%.3f,\"node\":%lld,\"detail\":%d,\"flags\":%u}",
      static_cast<unsigned long long>(e.request_id),
      SpanKindName(static_cast<SpanKind>(e.kind)), e.start_ticks / 1e3,
      (e.end_ticks - e.start_ticks) / 1e3, static_cast<long long>(e.node),
      e.detail, e.flags);
  out += buf;
}

}  // namespace

const char* SpanKindName(SpanKind kind) {
  switch (kind) {
    case SpanKind::kRequest:
      return "request";
    case SpanKind::kQueueWait:
      return "queue_wait";
    case SpanKind::kWalk:
      return "walk";
    case SpanKind::kWalkLevelPlan:
      return "walk_level_plan";
    case SpanKind::kWalkLevelMemo:
      return "walk_level_memo";
    case SpanKind::kWalkLevelCacheHit:
      return "walk_level_cache_hit";
    case SpanKind::kWalkLevelColdBuild:
      return "walk_level_cold_build";
    case SpanKind::kLpPricing:
      return "lp_pricing";
    case SpanKind::kLpRefactor:
      return "lp_refactor";
    case SpanKind::kLpSimplex:
      return "lp_simplex";
    case SpanKind::kSingleflightWait:
      return "singleflight_wait";
    case SpanKind::kFallback:
      return "fallback";
    case SpanKind::kNumKinds:
      break;
  }
  return "unknown";
}

ScopedTrace::ScopedTrace(RequestTrace* trace) : prev_(g_active_trace) {
  g_active_trace = trace;
}

ScopedTrace::~ScopedTrace() { g_active_trace = prev_; }

RequestTrace* ActiveTrace() { return g_active_trace; }

namespace {
// Source of process-unique recorder generations; 0 is reserved as the
// thread-local cache's "never matches" value.
std::atomic<uint64_t> g_next_recorder_gen{1};
}  // namespace

TraceRecorder::TraceRecorder(const TraceOptions& options)
    : options_(options),
      gen_(g_next_recorder_gen.fetch_add(1, std::memory_order_relaxed)),
      capacity_(RoundUpPow2(std::max<size_t>(options.ring_capacity, 64))),
      rings_(static_cast<size_t>(std::max(options.num_rings, 1))) {
  for (Ring& ring : rings_) ring.events.resize(capacity_);
}

internal::TraceTlsCounters* TraceRecorder::RegisterThread() {
  std::lock_guard<std::mutex> lock(tls_mu_);
  tls_counters_.push_back(std::make_unique<internal::TraceTlsCounters>());
  internal::TraceTlsCounters* const counters = tls_counters_.back().get();
  internal::g_trace_tls = {gen_, counters};
  return counters;
}

void TraceRecorder::End(RequestTrace& trace, double latency_seconds) {
  if (options_.tail_latency_ms > 0.0 &&
      latency_seconds * 1e3 >= options_.tail_latency_ms) {
    trace.flags_ |= kFlagTailLatency;
  }
  const bool head = (trace.flags_ & kFlagSampled) != 0;
  const bool forced =
      (trace.flags_ &
       (kFlagDegraded | kFlagDeadlineOverrun | kFlagTailLatency)) != 0;
  if (!head && !forced) return;
  if (!head) requests_forced_.fetch_add(1, std::memory_order_relaxed);
  requests_retained_.fetch_add(1, std::memory_order_relaxed);
  if (trace.dropped_ > 0) {
    spans_dropped_.fetch_add(static_cast<uint64_t>(trace.dropped_),
                             std::memory_order_relaxed);
  }
  if (trace.count_ == 0) return;

  // The id is allocated only now, for retained traces — the common
  // unretained request never touches this shared counter. Stamp it and
  // the request-level flags onto every committed span, so a dump
  // filtered to one span kind still shows which request a span belongs
  // to and why it was retained.
  trace.request_id_ =
      next_request_id_.fetch_add(1, std::memory_order_relaxed);
  for (int i = 0; i < trace.count_; ++i) {
    SpanEvent& e = trace.spans_[static_cast<size_t>(i)];
    e.request_id = trace.request_id_;
    e.flags = trace.flags_;
  }

  Ring& ring = rings_[static_cast<size_t>(
      ThreadCounterSlot(static_cast<int>(rings_.size())))];
  const uint64_t n = static_cast<uint64_t>(trace.count_);
  const uint64_t base = ring.reserved.fetch_add(n, std::memory_order_relaxed);
  const size_t mask = capacity_ - 1;
  for (uint64_t i = 0; i < n; ++i) {
    ring.events[static_cast<size_t>((base + i) & mask)] =
        trace.spans_[static_cast<size_t>(i)];
  }
  spans_committed_.fetch_add(n, std::memory_order_relaxed);
}

std::vector<SpanEvent> TraceRecorder::Snapshot(size_t max_events) const {
  std::vector<SpanEvent> out;
  for (const Ring& ring : rings_) {
    const uint64_t written = ring.reserved.load(std::memory_order_relaxed);
    const size_t resident =
        static_cast<size_t>(std::min<uint64_t>(written, capacity_));
    const size_t mask = capacity_ - 1;
    for (size_t i = 0; i < resident; ++i) {
      // Oldest-first within the ring: start where the writer would next
      // overwrite.
      const uint64_t idx = written >= capacity_ ? written + i : i;
      out.push_back(ring.events[static_cast<size_t>(idx & mask)]);
    }
  }
  std::stable_sort(out.begin(), out.end(),
                   [](const SpanEvent& a, const SpanEvent& b) {
                     return a.start_ticks < b.start_ticks;
                   });
  if (max_events > 0 && out.size() > max_events) {
    out.erase(out.begin(),
              out.end() - static_cast<ptrdiff_t>(max_events));
  }
  return out;
}

std::string TraceRecorder::ChromeTraceJson(size_t max_events) const {
  const std::vector<SpanEvent> events = Snapshot(max_events);
  std::string out = "{\"traceEvents\":[";
  bool first = true;
  for (const SpanEvent& e : events) {
    char buf[256];
    // Complete ("X") events; ts/dur in microseconds as the format wants.
    // tid doubles as the request id so per-request spans line up on one
    // timeline row in the viewer.
    std::snprintf(
        buf, sizeof(buf),
        "{\"name\":\"%s\",\"cat\":\"geopriv\",\"ph\":\"X\","
        "\"ts\":%.3f,\"dur\":%.3f,\"pid\":0,\"tid\":%llu,"
        "\"args\":{\"request\":%llu,\"node\":%lld,\"detail\":%d,"
        "\"flags\":%u}}",
        SpanKindName(static_cast<SpanKind>(e.kind)), e.start_ticks / 1e3,
        (e.end_ticks - e.start_ticks) / 1e3,
        static_cast<unsigned long long>(e.request_id),
        static_cast<unsigned long long>(e.request_id),
        static_cast<long long>(e.node), e.detail, e.flags);
    if (!first) out += ",";
    first = false;
    out += buf;
  }
  out += "]}";
  return out;
}

std::string TraceRecorder::FlightRecorderJson(size_t last_k) const {
  const std::vector<SpanEvent> events =
      Snapshot(last_k == 0 ? 256 : last_k);
  std::string out = "[";
  bool first = true;
  for (const SpanEvent& e : events) {
    if (!first) out += ",";
    first = false;
    AppendEventJson(out, e);
  }
  out += "]";
  return out;
}

TraceStats TraceRecorder::stats() const {
  TraceStats s;
  {
    std::lock_guard<std::mutex> lock(tls_mu_);
    for (const auto& counters : tls_counters_) {
      s.requests_started +=
          counters->started.load(std::memory_order_relaxed);
    }
  }
  s.requests_retained = requests_retained_.load(std::memory_order_relaxed);
  s.requests_forced = requests_forced_.load(std::memory_order_relaxed);
  s.spans_committed = spans_committed_.load(std::memory_order_relaxed);
  s.spans_dropped = spans_dropped_.load(std::memory_order_relaxed);
  return s;
}

}  // namespace geopriv::obs
