// Planar points and axis-aligned boxes. All mechanism code works in a local
// planar frame measured in kilometres; geo/projection.h maps WGS84
// coordinates into that frame.

#ifndef GEOPRIV_GEO_POINT_H_
#define GEOPRIV_GEO_POINT_H_

#include <cmath>
#include <ostream>

namespace geopriv::geo {

struct Point {
  double x = 0.0;
  double y = 0.0;

  friend Point operator+(Point a, Point b) { return {a.x + b.x, a.y + b.y}; }
  friend Point operator-(Point a, Point b) { return {a.x - b.x, a.y - b.y}; }
  friend Point operator*(double k, Point p) { return {k * p.x, k * p.y}; }
  friend bool operator==(Point a, Point b) { return a.x == b.x && a.y == b.y; }
};

inline std::ostream& operator<<(std::ostream& os, Point p) {
  return os << "(" << p.x << ", " << p.y << ")";
}

// Axis-aligned bounding box [min_x, max_x] x [min_y, max_y].
struct BBox {
  double min_x = 0.0;
  double min_y = 0.0;
  double max_x = 0.0;
  double max_y = 0.0;

  double Width() const { return max_x - min_x; }
  double Height() const { return max_y - min_y; }
  double Area() const { return Width() * Height(); }
  Point Center() const {
    return {0.5 * (min_x + max_x), 0.5 * (min_y + max_y)};
  }

  bool Contains(Point p) const {
    return p.x >= min_x && p.x <= max_x && p.y >= min_y && p.y <= max_y;
  }

  bool Intersects(const BBox& o) const {
    return min_x <= o.max_x && o.min_x <= max_x && min_y <= o.max_y &&
           o.min_y <= max_y;
  }

  // Smallest box containing both this box and `o`.
  BBox Union(const BBox& o) const {
    return {std::fmin(min_x, o.min_x), std::fmin(min_y, o.min_y),
            std::fmax(max_x, o.max_x), std::fmax(max_y, o.max_y)};
  }

  // Squared distance from `p` to the box (0 when inside).
  double SquaredDistanceTo(Point p) const {
    const double dx = std::fmax(std::fmax(min_x - p.x, 0.0), p.x - max_x);
    const double dy = std::fmax(std::fmax(min_y - p.y, 0.0), p.y - max_y);
    return dx * dx + dy * dy;
  }

  // Clamps `p` to the closest point inside the box.
  Point Clamp(Point p) const {
    return {std::fmin(std::fmax(p.x, min_x), max_x),
            std::fmin(std::fmax(p.y, min_y), max_y)};
  }

  friend bool operator==(const BBox& a, const BBox& b) {
    return a.min_x == b.min_x && a.min_y == b.min_y && a.max_x == b.max_x &&
           a.max_y == b.max_y;
  }
};

inline std::ostream& operator<<(std::ostream& os, const BBox& b) {
  return os << "[" << b.min_x << "," << b.max_x << "]x[" << b.min_y << ","
            << b.max_y << "]";
}

}  // namespace geopriv::geo

#endif  // GEOPRIV_GEO_POINT_H_
