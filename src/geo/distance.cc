#include "geo/distance.h"

#include <cmath>

namespace geopriv::geo {

double HaversineKm(double lat1_deg, double lon1_deg, double lat2_deg,
                   double lon2_deg) {
  constexpr double kEarthRadiusKm = 6371.0088;
  constexpr double kDegToRad = M_PI / 180.0;
  const double lat1 = lat1_deg * kDegToRad;
  const double lat2 = lat2_deg * kDegToRad;
  const double dlat = (lat2_deg - lat1_deg) * kDegToRad;
  const double dlon = (lon2_deg - lon1_deg) * kDegToRad;
  const double a = std::sin(dlat / 2) * std::sin(dlat / 2) +
                   std::cos(lat1) * std::cos(lat2) * std::sin(dlon / 2) *
                       std::sin(dlon / 2);
  return 2.0 * kEarthRadiusKm * std::asin(std::sqrt(a));
}

}  // namespace geopriv::geo
