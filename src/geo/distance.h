// Distance metrics. The paper uses the Euclidean distance both as the
// distinguishability metric d_X (in the GeoInd constraint, Eq. 1) and as a
// utility-loss metric d_Q; the squared Euclidean distance is the second
// utility-loss metric (Section 2.2).

#ifndef GEOPRIV_GEO_DISTANCE_H_
#define GEOPRIV_GEO_DISTANCE_H_

#include <cmath>
#include <functional>
#include <string>

#include "geo/point.h"

namespace geopriv::geo {

inline double SquaredEuclidean(Point a, Point b) {
  const double dx = a.x - b.x;
  const double dy = a.y - b.y;
  return dx * dx + dy * dy;
}

inline double Euclidean(Point a, Point b) {
  return std::sqrt(SquaredEuclidean(a, b));
}

inline double Manhattan(Point a, Point b) {
  return std::abs(a.x - b.x) + std::abs(a.y - b.y);
}

// Great-circle distance in kilometres between two WGS84 coordinates given in
// degrees. Used only to validate the planar projection; mechanisms operate
// on projected planar coordinates.
double HaversineKm(double lat1_deg, double lon1_deg, double lat2_deg,
                   double lon2_deg);

// A named utility-loss metric d_Q(x, z), as used in the OPT objective
// (Eq. 3) and by the evaluation harness.
enum class UtilityMetric {
  kEuclidean,        // d
  kSquaredEuclidean  // d^2
};

inline double UtilityLoss(UtilityMetric metric, Point a, Point b) {
  switch (metric) {
    case UtilityMetric::kEuclidean:
      return Euclidean(a, b);
    case UtilityMetric::kSquaredEuclidean:
      return SquaredEuclidean(a, b);
  }
  return 0.0;
}

inline std::string UtilityMetricName(UtilityMetric metric) {
  switch (metric) {
    case UtilityMetric::kEuclidean:
      return "euclidean(km)";
    case UtilityMetric::kSquaredEuclidean:
      return "squared_euclidean(km^2)";
  }
  return "unknown";
}

}  // namespace geopriv::geo

#endif  // GEOPRIV_GEO_DISTANCE_H_
