// Equirectangular projection from WGS84 (degrees) to a local planar frame in
// kilometres. Adequate for city-scale regions like the paper's 20x20 km
// study areas (sub-0.1% distortion at these extents).

#ifndef GEOPRIV_GEO_PROJECTION_H_
#define GEOPRIV_GEO_PROJECTION_H_

#include "base/status.h"
#include "geo/point.h"

namespace geopriv::geo {

class EquirectangularProjection {
 public:
  // The projection is anchored at the south-west corner of the study region;
  // x grows east, y grows north, both in kilometres.
  static StatusOr<EquirectangularProjection> Create(double min_lat_deg,
                                                    double min_lon_deg);

  Point Forward(double lat_deg, double lon_deg) const;

  // Inverse of Forward: planar km back to (lat, lon) degrees.
  void Inverse(Point p, double* lat_deg, double* lon_deg) const;

 private:
  EquirectangularProjection(double min_lat_deg, double min_lon_deg,
                            double km_per_deg_lon)
      : min_lat_deg_(min_lat_deg),
        min_lon_deg_(min_lon_deg),
        km_per_deg_lon_(km_per_deg_lon) {}

  double min_lat_deg_;
  double min_lon_deg_;
  double km_per_deg_lon_;
};

}  // namespace geopriv::geo

#endif  // GEOPRIV_GEO_PROJECTION_H_
