#include "geo/projection.h"

#include <cmath>

namespace geopriv::geo {

namespace {
// Meridian arc length per degree of latitude; longitude scale is this times
// cos(latitude) under the spherical approximation.
constexpr double kKmPerDegLat = 111.19492664455873;  // 2*pi*R/360, R=6371.0088
}  // namespace

StatusOr<EquirectangularProjection> EquirectangularProjection::Create(
    double min_lat_deg, double min_lon_deg) {
  if (!(min_lat_deg >= -89.0 && min_lat_deg <= 89.0)) {
    return Status::InvalidArgument("anchor latitude out of range");
  }
  if (!(min_lon_deg >= -180.0 && min_lon_deg <= 180.0)) {
    return Status::InvalidArgument("anchor longitude out of range");
  }
  const double km_per_deg_lon =
      kKmPerDegLat * std::cos(min_lat_deg * M_PI / 180.0);
  return EquirectangularProjection(min_lat_deg, min_lon_deg, km_per_deg_lon);
}

Point EquirectangularProjection::Forward(double lat_deg, double lon_deg) const {
  return {(lon_deg - min_lon_deg_) * km_per_deg_lon_,
          (lat_deg - min_lat_deg_) * kKmPerDegLat};
}

void EquirectangularProjection::Inverse(Point p, double* lat_deg,
                                        double* lon_deg) const {
  *lon_deg = min_lon_deg_ + p.x / km_per_deg_lon_;
  *lat_deg = min_lat_deg_ + p.y / kKmPerDegLat;
}

}  // namespace geopriv::geo
