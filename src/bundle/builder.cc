#include "bundle/builder.h"

#include <cstring>
#include <deque>
#include <limits>
#include <utility>

#include "base/endian.h"
#include "base/atomic_file.h"
#include "base/stopwatch.h"
#include "bundle/format.h"
#include "bundle/region_bundle.h"
#include "core/msm.h"
#include "core/node_cache.h"
#include "rng/alias_sampler.h"
#include "spatial/hierarchical_partition.h"

namespace geopriv::bundle {

namespace {

// Bulk little-endian append. The builder (like the zero-copy reader) runs
// on a little-endian host only, where the in-memory representation is the
// wire representation.
void AppendF64Span(std::string& out, std::span<const double> v) {
  out.append(reinterpret_cast<const char*>(v.data()), v.size_bytes());
}
void AppendU64Span(std::string& out, std::span<const size_t> v) {
  out.append(reinterpret_cast<const char*>(v.data()), v.size_bytes());
}
void AppendI64Span(std::string& out, std::span<const int64_t> v) {
  out.append(reinterpret_cast<const char*>(v.data()), v.size_bytes());
}
void AppendI32Span(std::string& out, std::span<const int32_t> v) {
  out.append(reinterpret_cast<const char*>(v.data()), v.size_bytes());
}

std::string ConfigSection(const RegionSpec& spec, const geo::BBox& domain,
                          uint32_t height, uint64_t node_count,
                          uint64_t plan_node_count) {
  std::string out;
  for (double f : {spec.min_lat, spec.min_lon, spec.max_lat, spec.max_lon,
                   spec.eps, spec.rho, domain.min_x, domain.min_y,
                   domain.max_x, domain.max_y}) {
    base::AppendLEF64(out, f);
  }
  base::AppendLE32(out, static_cast<uint32_t>(spec.granularity));
  base::AppendLE32(out, static_cast<uint32_t>(spec.prior_granularity));
  base::AppendLE32(out, static_cast<uint32_t>(spec.metric));
  base::AppendLE32(out, height);
  base::AppendLE64(out, node_count);
  base::AppendLE64(out, plan_node_count);
  return out;
}

std::string BudgetsSection(const std::vector<double>& per_level) {
  std::string out;
  base::AppendLE32(out, static_cast<uint32_t>(per_level.size()));
  base::AppendLE32(out, 0);  // pad to 8
  AppendF64Span(out, per_level);
  return out;
}

std::string PriorSection(const prior::Prior& prior) {
  std::string out;
  const int g = prior.grid().granularity();
  base::AppendLE32(out, static_cast<uint32_t>(g));
  base::AppendLE32(out, 0);  // pad to 8
  for (int i = 0; i < g * g; ++i) base::AppendLEF64(out, prior.mass(i));
  return out;
}

// A warm node picked up by the BFS over the resident subtree.
struct WarmNode {
  spatial::NodeIndex node;
  int level;  // depth + 1
  core::NodeMechanismCache::MechanismPtr mech;
};

// Warm internal nodes in deterministic BFS order. Expansion only descends
// through warm nodes: PrewarmTopNodes keeps the warm set ancestor-closed,
// so nothing below a cold node can be warm.
std::vector<WarmNode> CollectWarmNodes(const core::MultiStepMechanism& msm) {
  std::vector<WarmNode> warm;
  auto& cache = const_cast<core::MultiStepMechanism&>(msm).cache();
  const spatial::HierarchicalPartition& index = msm.index();
  std::deque<std::pair<spatial::NodeIndex, int>> frontier;
  frontier.push_back({spatial::HierarchicalPartition::kRoot, 1});
  while (!frontier.empty()) {
    const auto [node, level] = frontier.front();
    frontier.pop_front();
    core::NodeMechanismCache::MechanismPtr mech = cache.TryGet(node);
    if (mech == nullptr) continue;
    warm.push_back({node, level, std::move(mech)});
    if (level >= msm.height()) continue;  // children are leaves
    for (const spatial::ChildInfo& child : index.Children(node)) {
      if (!index.IsLeaf(child.id)) {
        frontier.push_back({child.id, level + 1});
      }
    }
  }
  return warm;
}

std::string NodesSection(const std::vector<WarmNode>& warm) {
  std::string out;
  base::AppendLE64(out, warm.size());
  // Directory first; blob offsets are assigned 64-aligned after it.
  uint64_t cursor = AlignUp(8 + warm.size() * kNodeDirEntryBytes,
                            kSectionAlign);
  for (const WarmNode& w : warm) {
    const uint64_t n = static_cast<uint64_t>(w.mech->num_locations());
    base::AppendLE64(out, static_cast<uint64_t>(w.node));
    base::AppendLE32(out, static_cast<uint32_t>(w.level));
    base::AppendLE32(out, static_cast<uint32_t>(n));
    base::AppendLE64(out, cursor);
    base::AppendLE64(out, NodeBlobBytes(n));
    cursor = AlignUp(cursor + NodeBlobBytes(n), kSectionAlign);
  }
  for (const WarmNode& w : warm) {
    out.resize(AlignUp(out.size(), kSectionAlign), '\0');
    const auto& mech = *w.mech;
    const int n = mech.num_locations();
    base::AppendLEF64(out, mech.eps());
    base::AppendLEF64(out, mech.ExpectedLoss());
    base::AppendLE64(out, static_cast<uint64_t>(n));
    base::AppendLE64(out, 0);  // reserved
    for (int i = 0; i < n; ++i) {
      base::AppendLEF64(out, mech.location(i).x);
      base::AppendLEF64(out, mech.location(i).y);
    }
    for (int i = 0; i < n; ++i) base::AppendLEF64(out, mech.prior(i));
    AppendF64Span(out, mech.k_table());
    for (int x = 0; x < n; ++x) {
      AppendF64Span(out, mech.row_sampler(x).prob_table());
    }
    for (int x = 0; x < n; ++x) {
      AppendU64Span(out, mech.row_sampler(x).alias_table());
    }
    for (int x = 0; x < n; ++x) {
      AppendF64Span(out, mech.row_sampler(x).normalized_table());
    }
  }
  return out;
}

std::string PlanSection(const core::MultiStepMechanism::PlanSnapshot& plan) {
  std::string out;
  base::AppendLE64(out, plan.node_id.size());
  base::AppendLE64(out, plan.child_id.size());
  AppendI64Span(out, plan.node_id);
  AppendI64Span(out, plan.child_id);
  for (const std::vector<double>* arr :
       {&plan.min_x, &plan.min_y, &plan.max_x, &plan.max_y, &plan.center_x,
        &plan.center_y}) {
    AppendF64Span(out, *arr);
  }
  AppendI32Span(out, plan.child_begin);
  AppendI32Span(out, plan.child_count);
  AppendI32Span(out, plan.child_plan);
  out.append(reinterpret_cast<const char*>(plan.child_is_leaf.data()),
             plan.child_is_leaf.size());
  return out;
}

Status ValidateSpec(const RegionSpec& spec) {
  if (!(spec.max_lat > spec.min_lat) || !(spec.max_lon > spec.min_lon)) {
    return Status::InvalidArgument("region lat/lon box must have area");
  }
  if (!(spec.eps > 0.0)) {
    return Status::InvalidArgument("region eps must be positive");
  }
  return Status::OK();
}

}  // namespace

StatusOr<BuildBundleResult> WriteRegionBundle(
    const core::LocationSanitizer& sanitizer, const RegionSpec& spec,
    const std::string& path) {
  if (!base::kLittleEndianHost || sizeof(size_t) != 8) {
    return Status::Unimplemented(
        "v2 region bundles require a little-endian LP64 host");
  }
  GEOPRIV_RETURN_IF_ERROR(ValidateSpec(spec));
  Stopwatch stopwatch;
  const core::MultiStepMechanism& msm = sanitizer.mechanism();

  const std::vector<WarmNode> warm = CollectWarmNodes(msm);
  const core::MultiStepMechanism::PlanSnapshot plan =
      msm.SnapshotServingPlan();

  BundleImageWriter writer;
  writer.AddSection(kConfig,
                    ConfigSection(spec, sanitizer.domain_km(),
                                  static_cast<uint32_t>(msm.height()),
                                  warm.size(), plan.node_id.size()));
  writer.AddSection(kBudgets, BudgetsSection(msm.budget().per_level));
  writer.AddSection(kPrior, PriorSection(msm.prior()));
  if (!warm.empty()) {
    writer.AddSection(kNodes, NodesSection(warm));
  }
  if (!plan.node_id.empty()) {
    writer.AddSection(kPlan, PlanSection(plan));
  }
  const std::string image = writer.Finish();
  GEOPRIV_RETURN_IF_ERROR(base::WriteFileAtomic(path, image));

  const core::MsmStats stats = msm.stats();
  BuildBundleResult result;
  result.nodes = warm.size();
  result.plan_nodes = plan.node_id.size();
  result.bytes = image.size();
  result.build_seconds = stopwatch.ElapsedSeconds();
  result.lp_seconds = stats.lp_seconds;
  result.lp_solves = stats.lp_solves;
  return result;
}

StatusOr<BuildBundleResult> BuildRegionBundle(const RegionSpec& spec,
                                              const BuildBundleOptions& options,
                                              const std::string& path) {
  if (!base::kLittleEndianHost || sizeof(size_t) != 8) {
    return Status::Unimplemented(
        "v2 region bundles require a little-endian LP64 host");
  }
  GEOPRIV_RETURN_IF_ERROR(ValidateSpec(spec));
  Stopwatch stopwatch;
  core::LocationSanitizer::Builder builder;
  builder.SetRegionLatLon(spec.min_lat, spec.min_lon, spec.max_lat,
                          spec.max_lon)
      .SetEpsilon(spec.eps)
      .SetGranularity(spec.granularity)
      .SetRho(spec.rho)
      .SetPriorGranularity(spec.prior_granularity)
      .SetUtilityMetric(spec.metric);
  if (!spec.checkins.empty()) builder.AddCheckinsLatLon(spec.checkins);
  if (options.lp_time_limit_seconds > 0.0) {
    builder.SetLpTimeLimitSeconds(options.lp_time_limit_seconds);
  }
  if (options.pool != nullptr) builder.SetConstructionPool(options.pool);
  GEOPRIV_ASSIGN_OR_RETURN(core::LocationSanitizer sanitizer,
                           builder.Build());

  const int k = options.prewarm_nodes > 0 ? options.prewarm_nodes
                                          : std::numeric_limits<int>::max();
  GEOPRIV_RETURN_IF_ERROR(
      sanitizer.PrewarmTopNodes(k, options.pool).status());

  GEOPRIV_ASSIGN_OR_RETURN(BuildBundleResult result,
                           WriteRegionBundle(sanitizer, spec, path));
  result.build_seconds = stopwatch.ElapsedSeconds();
  return result;
}

}  // namespace geopriv::bundle
