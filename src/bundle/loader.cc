#include "bundle/loader.h"

#include <memory>
#include <utility>
#include <vector>

#include "base/stopwatch.h"
#include "core/msm.h"
#include "core/node_cache.h"
#include "geo/projection.h"
#include "mechanisms/optimal.h"
#include "prior/prior.h"
#include "spatial/hierarchical_grid.h"

namespace geopriv::bundle {

StatusOr<LoadedRegion> LoadRegion(const RegionBundleView& view,
                                  const RegionLoadOptions& options) {
  Stopwatch stopwatch;
  const ConfigImage& config = view.config();

  // Reconstruct the planar frame and cross-check it against the build
  // tier's: a bit-level domain mismatch means a different projection
  // implementation, which would silently shift every stored geometry.
  GEOPRIV_ASSIGN_OR_RETURN(
      const geo::EquirectangularProjection projection,
      geo::EquirectangularProjection::Create(config.min_lat, config.min_lon));
  const geo::Point ne = projection.Forward(config.max_lat, config.max_lon);
  const geo::BBox domain{0.0, 0.0, ne.x, ne.y};
  const geo::BBox stored{config.domain_min_x, config.domain_min_y,
                         config.domain_max_x, config.domain_max_y};
  if (!(domain == stored)) {
    return Status::FailedPrecondition(
        "'" + view.path() +
        "': this build's projection does not reproduce the bundle's "
        "planar domain; refusing to serve shifted geometry");
  }

  GEOPRIV_ASSIGN_OR_RETURN(
      prior::Prior prior,
      prior::Prior::FromMasses(
          domain, static_cast<int>(config.prior_granularity),
          std::vector<double>(view.prior_masses().begin(),
                              view.prior_masses().end())));
  GEOPRIV_ASSIGN_OR_RETURN(
      spatial::HierarchicalGrid grid,
      spatial::HierarchicalGrid::Create(
          domain, static_cast<int>(config.granularity),
          static_cast<int>(config.height)));

  core::MsmOptions msm_options;
  // The stored per-level budgets are the allocation itself; kCustom
  // weights reproduce them (cold-node rebuilds then solve the same LPs
  // the build tier solved).
  msm_options.budget.policy = core::BudgetPolicy::kCustom;
  msm_options.budget.fixed_height = static_cast<int>(config.height);
  msm_options.budget.custom_weights.assign(view.level_budgets().begin(),
                                           view.level_budgets().end());
  msm_options.budget.rho = config.rho;
  msm_options.metric = static_cast<geo::UtilityMetric>(config.metric);
  msm_options.cache_byte_budget = options.cache_byte_budget;
  msm_options.opt.pricing_pool = options.construction_pool;
  if (options.lp_time_limit_seconds > 0.0) {
    msm_options.opt.solver.time_limit_seconds =
        options.lp_time_limit_seconds;
  }
  GEOPRIV_ASSIGN_OR_RETURN(
      core::MultiStepMechanism msm,
      core::MultiStepMechanism::Create(
          config.eps,
          std::make_shared<spatial::HierarchicalGrid>(std::move(grid)),
          std::make_shared<prior::Prior>(std::move(prior)), msm_options));
  auto mechanism =
      std::make_unique<core::MultiStepMechanism>(std::move(msm));

  // Publish every solved mechanism as spans into the mapping. The backing
  // pin keeps the file mapped for as long as any mechanism (or a reader's
  // copy of one) is alive.
  const std::shared_ptr<const MappedFile> backing = view.backing();
  for (size_t i = 0; i < view.node_count(); ++i) {
    GEOPRIV_ASSIGN_OR_RETURN(const RegionBundleView::NodeView node,
                             view.node(i));
    mechanisms::SolvedMechanismTables tables;
    tables.eps = node.eps_level;
    tables.metric = static_cast<geo::UtilityMetric>(config.metric);
    tables.objective = node.objective;
    tables.locations.reserve(node.n);
    for (int j = 0; j < node.n; ++j) {
      tables.locations.push_back(
          {node.locations_xy[2 * j], node.locations_xy[2 * j + 1]});
    }
    tables.prior.assign(node.prior.begin(), node.prior.end());
    tables.k = node.k;
    tables.alias_prob = node.alias_prob;
    tables.alias_alias = node.alias_alias;
    tables.alias_normalized = node.alias_normalized;
    GEOPRIV_ASSIGN_OR_RETURN(
        mechanisms::OptimalMechanism mech,
        mechanisms::OptimalMechanism::FromSolved(std::move(tables), backing));
    GEOPRIV_RETURN_IF_ERROR(mechanism->cache().Publish(
        node.node, std::make_shared<const mechanisms::OptimalMechanism>(
                       std::move(mech))));
  }

  // Rebuild the serving plan over the published set so first traffic
  // walks the lock-free path immediately.
  const uint64_t plan_nodes = mechanism->serving_plan_nodes();

  LoadedRegion loaded{
      core::LocationSanitizer::FromParts(
          projection, domain, std::move(mechanism), options.seed,
          static_cast<int>(config.granularity), config.eps),
      view.node_count(), plan_nodes, view.bytes_mapped(),
      stopwatch.ElapsedSeconds()};
  return loaded;
}

}  // namespace geopriv::bundle
