// Serialization and zero-copy deserialization of v2 region bundles (see
// format.h for the byte layout). BundleImageWriter assembles a complete
// file image (header + TOC + aligned, checksummed sections) in memory;
// RegionBundleView validates a mapped file and exposes typed spans into
// it. Neither knows how to *build* a region (builder.h) or turn a view
// into a serving mechanism (loader.h).

#ifndef GEOPRIV_BUNDLE_REGION_BUNDLE_H_
#define GEOPRIV_BUNDLE_REGION_BUNDLE_H_

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "base/status.h"
#include "bundle/format.h"
#include "bundle/mapped_file.h"

namespace geopriv::bundle {

// Accumulates sections and emits the final file image. Sections appear in
// the TOC (and the file) in AddSection order.
class BundleImageWriter {
 public:
  void AddSection(SectionId id, std::string bytes);
  // Header + TOC + sections, checksums filled in. The writer is spent
  // afterwards.
  std::string Finish();

 private:
  struct Pending {
    uint32_t id;
    std::string bytes;
  };
  std::vector<Pending> sections_;
};

// Validated, typed view over a mapped v2 bundle. Copyable; every copy
// shares the mapping. All spans returned point into the mapping and stay
// valid for as long as any copy of the view (or the backing() pointer
// handed to a mechanism) is alive.
class RegionBundleView {
 public:
  // Maps and validates `path`: magic (a v1 "GPB1" file is rejected with a
  // status pointing at core::LoadClientBundle), endian sentinel, version,
  // header checksum, file size, TOC bounds/alignment, per-section
  // checksums (unless `verify_checksums` is false), config decode, and
  // cross-section size consistency. Requires a little-endian LP64 host —
  // the zero-copy node tables are reinterpreted in place.
  static StatusOr<RegionBundleView> Open(const std::string& path,
                                         bool verify_checksums = true);

  const ConfigImage& config() const { return config_; }
  const std::string& path() const { return backing_->path(); }
  uint64_t bytes_mapped() const { return backing_->size(); }
  std::shared_ptr<const MappedFile> backing() const { return backing_; }
  const std::vector<SectionEntry>& sections() const { return sections_; }

  // Per-level budgets (height entries) and prior masses (g^2 entries).
  std::span<const double> level_budgets() const { return budgets_; }
  std::span<const double> prior_masses() const { return prior_; }

  size_t node_count() const { return nodes_.size(); }
  const NodeDirEntry& node_entry(size_t i) const { return nodes_[i]; }

  // Typed spans into one node's solved tables.
  struct NodeView {
    int64_t node = 0;
    int level = 0;
    int n = 0;
    double eps_level = 0.0;
    double objective = 0.0;
    std::span<const double> locations_xy;  // 2n, x/y interleaved
    std::span<const double> prior;         // n
    std::span<const double> k;             // n*n
    std::span<const double> alias_prob;    // n*n
    std::span<const size_t> alias_alias;   // n*n
    std::span<const double> alias_normalized;  // n*n
  };
  StatusOr<NodeView> node(size_t i) const;

  // Serving-plan layout; all spans empty when the bundle carries no plan.
  struct PlanView {
    std::span<const int64_t> node_id;     // per plan node
    std::span<const int64_t> child_id;    // per child slot
    std::span<const double> min_x, min_y, max_x, max_y;
    std::span<const double> center_x, center_y;
    std::span<const int32_t> child_begin, child_count;  // per plan node
    std::span<const int32_t> child_plan;                // per child slot
    std::span<const uint8_t> child_is_leaf;             // per child slot
    bool empty() const { return node_id.empty(); }
  };
  const PlanView& plan() const { return plan_; }

  // Re-walks the TOC and recomputes every section checksum against the
  // mapped bytes (what Open(verify_checksums = true) already did); the
  // CLI's `verify` and the smoke test call it on a fresh mapping.
  Status VerifyChecksums() const;

 private:
  RegionBundleView() = default;

  Status Parse(bool verify_checksums);
  const SectionEntry* FindSection(uint32_t id) const;
  Status ParseConfig();
  Status ParseBudgets();
  Status ParsePrior();
  Status ParseNodes();
  Status ParsePlan();

  std::shared_ptr<const MappedFile> backing_;
  std::vector<SectionEntry> sections_;
  ConfigImage config_;
  std::span<const double> budgets_;
  std::span<const double> prior_;
  std::vector<NodeDirEntry> nodes_;
  const unsigned char* nodes_base_ = nullptr;  // kNodes section start
  uint64_t nodes_size_ = 0;
  PlanView plan_;
};

}  // namespace geopriv::bundle

#endif  // GEOPRIV_BUNDLE_REGION_BUNDLE_H_
