// Build tier of the build/serve split: constructs a region (prior, index,
// budget split), pre-solves its per-node LPs in parallel, and serializes
// everything — including the solved mechanisms and the serving-plan
// layout — into a v2 region bundle. A serving process then mmaps the file
// and registers the region in milliseconds with zero LP solves
// (loader.h), instead of re-paying minutes of solver time on every cold
// start.

#ifndef GEOPRIV_BUNDLE_BUILDER_H_
#define GEOPRIV_BUNDLE_BUILDER_H_

#include <cstdint>
#include <string>
#include <vector>

#include "base/status.h"
#include "core/location_sanitizer.h"
#include "geo/distance.h"

namespace geopriv {
class ThreadPool;
}

namespace geopriv::bundle {

// Region parameters, mirroring the service's RegionConfig (the bundle
// layer sits below the service and must not depend on it).
struct RegionSpec {
  // Study region as a lat/lon box (south-west / north-east corners).
  double min_lat = 0.0, min_lon = 0.0, max_lat = 0.0, max_lon = 0.0;
  double eps = 0.0;
  int granularity = 4;
  double rho = 0.8;
  int prior_granularity = 128;
  // Historical check-ins shaping the prior; empty = uniform.
  std::vector<core::LatLon> checkins;
  geo::UtilityMetric metric = geo::UtilityMetric::kEuclidean;
};

struct BuildBundleOptions {
  // Internal nodes to pre-solve, best-first by prior mass (ancestors
  // always included); <= 0 warms every internal node. Only warm nodes are
  // serialized — a node left cold is rebuilt deterministically by the
  // serving tier on first touch.
  int prewarm_nodes = 0;
  // Worker pool for parallel LP construction and prewarming (not owned).
  ThreadPool* pool = nullptr;
  // Wall-clock cap per node LP solve (0 = unlimited).
  double lp_time_limit_seconds = 0.0;
};

struct BuildBundleResult {
  uint64_t nodes = 0;       // solved mechanisms serialized
  uint64_t plan_nodes = 0;  // serving-plan nodes serialized
  uint64_t bytes = 0;       // final file size
  double build_seconds = 0.0;  // total wall clock, solves included
  double lp_seconds = 0.0;     // solver share
  int64_t lp_solves = 0;
};

// Builds the region from scratch and writes the bundle to `path`
// (crash-atomically: temp file + fsync + rename).
StatusOr<BuildBundleResult> BuildRegionBundle(const RegionSpec& spec,
                                              const BuildBundleOptions& options,
                                              const std::string& path);

// Serializes an existing sanitizer's warm state (whatever its cache holds
// right now) to `path`. `spec` must be the configuration the sanitizer
// was built from — the lat/lon box and parameters go into the bundle's
// config section verbatim; the domain, budgets, and prior are taken from
// the sanitizer itself.
StatusOr<BuildBundleResult> WriteRegionBundle(
    const core::LocationSanitizer& sanitizer, const RegionSpec& spec,
    const std::string& path);

}  // namespace geopriv::bundle

#endif  // GEOPRIV_BUNDLE_BUILDER_H_
