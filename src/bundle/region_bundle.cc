#include "bundle/region_bundle.h"

#include <cstring>

#include "base/endian.h"

namespace geopriv::bundle {

namespace {

uint32_t ReadU32(const unsigned char* p) { return base::LoadLE32(p); }
uint64_t ReadU64(const unsigned char* p) { return base::LoadLE64(p); }
double ReadF64(const unsigned char* p) {
  double v;
  const uint64_t bits = base::LoadLE64(p);
  std::memcpy(&v, &bits, sizeof(v));
  return v;
}

// Typed span over mapped bytes. On the (enforced) little-endian LP64 host
// the file bytes are the host representation; alignment holds because
// sections are 64-aligned and every wide array sits at an 8-multiple
// offset within its section.
template <typename T>
std::span<const T> TypedSpan(const unsigned char* p, size_t count) {
  return {reinterpret_cast<const T*>(p), count};
}

}  // namespace

void BundleImageWriter::AddSection(SectionId id, std::string bytes) {
  sections_.push_back({static_cast<uint32_t>(id), std::move(bytes)});
}

std::string BundleImageWriter::Finish() {
  const size_t count = sections_.size();
  const size_t toc_offset = kHeaderBytes;
  size_t cursor = AlignUp(toc_offset + count * kTocEntryBytes, kSectionAlign);
  std::vector<uint64_t> offsets(count);
  for (size_t i = 0; i < count; ++i) {
    offsets[i] = cursor;
    cursor = AlignUp(cursor + sections_[i].bytes.size(), kSectionAlign);
  }
  // The file ends exactly where the last section ends (no trailing pad).
  const uint64_t file_size =
      count == 0 ? cursor
                 : offsets[count - 1] + sections_[count - 1].bytes.size();

  std::string image;
  image.reserve(file_size);
  image.append(kMagicV2, sizeof(kMagicV2));
  base::AppendLE32(image, base::kEndianSentinel);
  base::AppendLE32(image, kVersion);
  base::AppendLE32(image, static_cast<uint32_t>(count));
  base::AppendLE64(image, file_size);
  base::AppendLE64(image, toc_offset);
  base::AppendLE64(image, Fnv1a(image.data(), image.size()));
  image.resize(kHeaderBytes, '\0');

  for (size_t i = 0; i < count; ++i) {
    base::AppendLE32(image, sections_[i].id);
    base::AppendLE32(image, 0);  // reserved
    base::AppendLE64(image, offsets[i]);
    base::AppendLE64(image, sections_[i].bytes.size());
    base::AppendLE64(
        image, Fnv1a(sections_[i].bytes.data(), sections_[i].bytes.size()));
  }
  for (size_t i = 0; i < count; ++i) {
    image.resize(offsets[i], '\0');  // inter-section alignment pad
    image.append(sections_[i].bytes);
  }
  sections_.clear();
  return image;
}

StatusOr<RegionBundleView> RegionBundleView::Open(const std::string& path,
                                                 bool verify_checksums) {
  if (!base::kLittleEndianHost || sizeof(size_t) != 8) {
    return Status::Unimplemented(
        "v2 region bundles are served zero-copy and require a "
        "little-endian LP64 host");
  }
  RegionBundleView view;
  GEOPRIV_ASSIGN_OR_RETURN(view.backing_, MappedFile::Open(path));
  GEOPRIV_RETURN_IF_ERROR(view.Parse(verify_checksums));
  return view;
}

Status RegionBundleView::Parse(bool verify_checksums) {
  const unsigned char* data = backing_->data();
  const size_t size = backing_->size();
  const std::string& path = backing_->path();
  if (size < kHeaderBytes) {
    return Status::InvalidArgument("'" + path +
                                   "' is too small to be a region bundle");
  }
  if (std::memcmp(data, kMagicV1, sizeof(kMagicV1)) == 0) {
    return Status::InvalidArgument(
        "'" + path +
        "' is a v1 client bundle (GPB1); load it with "
        "core::LoadClientBundle, not bundle::RegionBundleView");
  }
  if (std::memcmp(data, kMagicV2, sizeof(kMagicV2)) != 0) {
    return Status::InvalidArgument("'" + path + "' is not a region bundle");
  }
  const uint32_t sentinel = ReadU32(data + 4);
  if (sentinel != base::kEndianSentinel) {
    if (sentinel == base::kEndianSentinelSwapped) {
      return Status::InvalidArgument(
          "'" + path +
          "' is byte-swapped (written big-endian against the little-endian "
          "contract)");
    }
    return Status::InvalidArgument("'" + path +
                                   "' has a corrupt byte-order sentinel");
  }
  const uint32_t version = ReadU32(data + 8);
  if (version != kVersion) {
    return Status::InvalidArgument(
        "'" + path + "' has unsupported region-bundle version " +
        std::to_string(version) + " (this build reads version " +
        std::to_string(kVersion) + ")");
  }
  if (ReadU64(data + 32) != Fnv1a(data, 32)) {
    return Status::InvalidArgument("'" + path +
                                   "' has a corrupt header (checksum)");
  }
  const uint32_t section_count = ReadU32(data + 12);
  const uint64_t file_size = ReadU64(data + 16);
  const uint64_t toc_offset = ReadU64(data + 24);
  if (file_size != size) {
    return Status::InvalidArgument(
        "'" + path + "' is truncated: header says " +
        std::to_string(file_size) + " bytes, file has " +
        std::to_string(size));
  }
  if (toc_offset != kHeaderBytes ||
      toc_offset + static_cast<uint64_t>(section_count) * kTocEntryBytes >
          size) {
    return Status::InvalidArgument("'" + path + "' has a corrupt TOC");
  }

  sections_.reserve(section_count);
  for (uint32_t i = 0; i < section_count; ++i) {
    const unsigned char* e = data + toc_offset + i * kTocEntryBytes;
    SectionEntry entry;
    entry.id = ReadU32(e);
    entry.offset = ReadU64(e + 8);
    entry.size = ReadU64(e + 16);
    entry.checksum = ReadU64(e + 24);
    if (entry.offset % kSectionAlign != 0 || entry.offset > size ||
        entry.size > size - entry.offset) {
      return Status::InvalidArgument(
          "'" + path + "' section " + std::to_string(entry.id) +
          " is out of bounds or misaligned");
    }
    sections_.push_back(entry);
  }
  if (verify_checksums) {
    GEOPRIV_RETURN_IF_ERROR(VerifyChecksums());
  }

  GEOPRIV_RETURN_IF_ERROR(ParseConfig());
  GEOPRIV_RETURN_IF_ERROR(ParseBudgets());
  GEOPRIV_RETURN_IF_ERROR(ParsePrior());
  GEOPRIV_RETURN_IF_ERROR(ParseNodes());
  GEOPRIV_RETURN_IF_ERROR(ParsePlan());
  return Status::OK();
}

Status RegionBundleView::VerifyChecksums() const {
  for (const SectionEntry& entry : sections_) {
    const uint64_t got = Fnv1a(backing_->data() + entry.offset, entry.size);
    if (got != entry.checksum) {
      return Status::InvalidArgument(
          "'" + backing_->path() + "' section " + std::to_string(entry.id) +
          " is corrupt (checksum mismatch)");
    }
  }
  return Status::OK();
}

const SectionEntry* RegionBundleView::FindSection(uint32_t id) const {
  for (const SectionEntry& entry : sections_) {
    if (entry.id == id) return &entry;
  }
  return nullptr;
}

Status RegionBundleView::ParseConfig() {
  const SectionEntry* entry = FindSection(kConfig);
  if (entry == nullptr || entry->size != kConfigImageBytes) {
    return Status::InvalidArgument("'" + backing_->path() +
                                   "' has no valid config section");
  }
  const unsigned char* p = backing_->data() + entry->offset;
  double* const f64s[] = {
      &config_.min_lat,      &config_.min_lon,      &config_.max_lat,
      &config_.max_lon,      &config_.eps,          &config_.rho,
      &config_.domain_min_x, &config_.domain_min_y, &config_.domain_max_x,
      &config_.domain_max_y,
  };
  for (double* f : f64s) {
    *f = ReadF64(p);
    p += 8;
  }
  config_.granularity = ReadU32(p);
  config_.prior_granularity = ReadU32(p + 4);
  config_.metric = ReadU32(p + 8);
  config_.height = ReadU32(p + 12);
  config_.node_count = ReadU64(p + 16);
  config_.plan_node_count = ReadU64(p + 24);
  if (config_.granularity < 2 || config_.granularity > 64 ||
      config_.height < 1 || config_.height > 20 ||
      config_.prior_granularity < 1 || config_.prior_granularity > 4096 ||
      config_.metric > 1) {
    return Status::InvalidArgument("'" + backing_->path() +
                                   "' config has out-of-range parameters");
  }
  return Status::OK();
}

Status RegionBundleView::ParseBudgets() {
  const SectionEntry* entry = FindSection(kBudgets);
  if (entry == nullptr ||
      entry->size != 8 + 8 * static_cast<uint64_t>(config_.height)) {
    return Status::InvalidArgument("'" + backing_->path() +
                                   "' has no valid budgets section");
  }
  const unsigned char* p = backing_->data() + entry->offset;
  if (ReadU32(p) != config_.height) {
    return Status::InvalidArgument(
        "'" + backing_->path() +
        "' budgets section disagrees with config height");
  }
  budgets_ = TypedSpan<double>(p + 8, config_.height);
  return Status::OK();
}

Status RegionBundleView::ParsePrior() {
  const SectionEntry* entry = FindSection(kPrior);
  const uint64_t g = config_.prior_granularity;
  if (entry == nullptr || entry->size != 8 + 8 * g * g) {
    return Status::InvalidArgument("'" + backing_->path() +
                                   "' has no valid prior section");
  }
  const unsigned char* p = backing_->data() + entry->offset;
  if (ReadU32(p) != g) {
    return Status::InvalidArgument(
        "'" + backing_->path() +
        "' prior section disagrees with config granularity");
  }
  prior_ = TypedSpan<double>(p + 8, g * g);
  return Status::OK();
}

Status RegionBundleView::ParseNodes() {
  const SectionEntry* entry = FindSection(kNodes);
  if (entry == nullptr) {
    if (config_.node_count != 0) {
      return Status::InvalidArgument(
          "'" + backing_->path() +
          "' config promises solved nodes but has no node section");
    }
    return Status::OK();
  }
  const unsigned char* p = backing_->data() + entry->offset;
  if (entry->size < 8 || ReadU64(p) != config_.node_count) {
    return Status::InvalidArgument(
        "'" + backing_->path() +
        "' node section disagrees with config node count");
  }
  const uint64_t count = config_.node_count;
  const uint64_t dir_end = 8 + count * kNodeDirEntryBytes;
  if (entry->size < dir_end) {
    return Status::InvalidArgument("'" + backing_->path() +
                                   "' node directory is truncated");
  }
  nodes_base_ = p;
  nodes_size_ = entry->size;
  nodes_.reserve(count);
  for (uint64_t i = 0; i < count; ++i) {
    const unsigned char* e = p + 8 + i * kNodeDirEntryBytes;
    NodeDirEntry node;
    node.node = static_cast<int64_t>(ReadU64(e));
    node.level = ReadU32(e + 8);
    node.n = ReadU32(e + 12);
    node.offset = ReadU64(e + 16);
    node.size = ReadU64(e + 24);
    if (node.n == 0 || node.level < 1 || node.level > config_.height ||
        node.offset % 8 != 0 || node.offset > nodes_size_ ||
        node.size > nodes_size_ - node.offset ||
        node.size != NodeBlobBytes(node.n)) {
      return Status::InvalidArgument(
          "'" + backing_->path() + "' node directory entry " +
          std::to_string(i) + " is corrupt");
    }
    nodes_.push_back(node);
  }
  return Status::OK();
}

StatusOr<RegionBundleView::NodeView> RegionBundleView::node(size_t i) const {
  if (i >= nodes_.size()) {
    return Status::OutOfRange("node index out of range");
  }
  const NodeDirEntry& entry = nodes_[i];
  const unsigned char* p = nodes_base_ + entry.offset;
  NodeView view;
  view.node = entry.node;
  view.level = static_cast<int>(entry.level);
  view.n = static_cast<int>(entry.n);
  view.eps_level = ReadF64(p);
  view.objective = ReadF64(p + 8);
  if (ReadU64(p + 16) != entry.n) {
    return Status::InvalidArgument(
        "'" + backing_->path() + "' node blob " + std::to_string(i) +
        " disagrees with its directory entry");
  }
  const size_t n = entry.n;
  const size_t nn = n * n;
  const unsigned char* c = p + kNodeBlobHeaderBytes;
  view.locations_xy = TypedSpan<double>(c, 2 * n);
  c += 8 * 2 * n;
  view.prior = TypedSpan<double>(c, n);
  c += 8 * n;
  view.k = TypedSpan<double>(c, nn);
  c += 8 * nn;
  view.alias_prob = TypedSpan<double>(c, nn);
  c += 8 * nn;
  view.alias_alias = TypedSpan<size_t>(c, nn);
  c += 8 * nn;
  view.alias_normalized = TypedSpan<double>(c, nn);
  return view;
}

Status RegionBundleView::ParsePlan() {
  const SectionEntry* entry = FindSection(kPlan);
  if (entry == nullptr) {
    if (config_.plan_node_count != 0) {
      return Status::InvalidArgument(
          "'" + backing_->path() +
          "' config promises a serving plan but has no plan section");
    }
    return Status::OK();
  }
  const unsigned char* p = backing_->data() + entry->offset;
  if (entry->size < 16) {
    return Status::InvalidArgument("'" + backing_->path() +
                                   "' plan section is truncated");
  }
  const uint64_t num_plan = ReadU64(p);
  const uint64_t num_slots = ReadU64(p + 8);
  if (num_plan != config_.plan_node_count) {
    return Status::InvalidArgument(
        "'" + backing_->path() +
        "' plan section disagrees with config plan node count");
  }
  const uint64_t expected =
      16 + 16 * num_plan + 61 * num_slots;  // see format.h layout
  if (entry->size != expected) {
    return Status::InvalidArgument("'" + backing_->path() +
                                   "' plan section has the wrong size");
  }
  const unsigned char* c = p + 16;
  plan_.node_id = TypedSpan<int64_t>(c, num_plan);
  c += 8 * num_plan;
  plan_.child_id = TypedSpan<int64_t>(c, num_slots);
  c += 8 * num_slots;
  for (std::span<const double>* arr :
       {&plan_.min_x, &plan_.min_y, &plan_.max_x, &plan_.max_y,
        &plan_.center_x, &plan_.center_y}) {
    *arr = TypedSpan<double>(c, num_slots);
    c += 8 * num_slots;
  }
  plan_.child_begin = TypedSpan<int32_t>(c, num_plan);
  c += 4 * num_plan;
  plan_.child_count = TypedSpan<int32_t>(c, num_plan);
  c += 4 * num_plan;
  plan_.child_plan = TypedSpan<int32_t>(c, num_slots);
  c += 4 * num_slots;
  plan_.child_is_leaf = TypedSpan<uint8_t>(c, num_slots);
  return Status::OK();
}

}  // namespace geopriv::bundle
