// Serve tier of the build/serve split: turns a mapped v2 region bundle
// into a ready LocationSanitizer with zero LP solves. Every solved node
// mechanism is rehydrated as spans into the mapping (the dense K and the
// alias tables are never copied; the mapping is pinned by each mechanism)
// and published into the node cache, then the serving plan is rebuilt
// over the published set. A node the bundle does not carry is solved
// deterministically on first touch, exactly as a scratch-built region
// would.

#ifndef GEOPRIV_BUNDLE_LOADER_H_
#define GEOPRIV_BUNDLE_LOADER_H_

#include <cstdint>

#include "base/status.h"
#include "bundle/region_bundle.h"
#include "core/location_sanitizer.h"

namespace geopriv {
class ThreadPool;
}

namespace geopriv::bundle {

struct RegionLoadOptions {
  // Serving-side parameters — deployment configuration, not bundle
  // content (the same bundle can serve under any seed or cache budget).
  uint64_t seed = 0x5EED5EED5EEDull;
  size_t cache_byte_budget = 0;  // 0 = unbounded
  double lp_time_limit_seconds = 0.0;  // for cold-node rebuilds
  ThreadPool* construction_pool = nullptr;  // for cold-node rebuilds
};

struct LoadedRegion {
  core::LocationSanitizer sanitizer;
  uint64_t nodes_loaded = 0;  // mechanisms published from the bundle
  uint64_t plan_nodes = 0;    // serving-plan nodes warm after load
  uint64_t bytes_mapped = 0;
  double load_seconds = 0.0;  // map-to-serving wall clock (excludes Open)
};

// Rehydrates the region. The view's mapping stays pinned by the returned
// sanitizer's mechanisms for as long as any of them lives.
StatusOr<LoadedRegion> LoadRegion(const RegionBundleView& view,
                                  const RegionLoadOptions& options = {});

}  // namespace geopriv::bundle

#endif  // GEOPRIV_BUNDLE_LOADER_H_
