// On-disk layout of the v2 region bundle ("GPB2") — the build/serve
// split's hand-off artifact. A build-tier process solves a region's
// per-node LPs once, serializes the solved mechanisms (dense K, alias
// tables), the annotated prior, the budget split, and the serving-plan
// layout into one sectioned file; a serving process mmaps it read-only
// and registers the region with zero LP solves and zero table copies
// (the mechanism matrices are spans into the mapping).
//
//   header (64 bytes)
//     magic "GPB2" | endian sentinel u32 (0x01020304) | version u32 (2) |
//     section_count u32 | file_size u64 | toc_offset u64 (= 64) |
//     header checksum u64 (FNV-1a over the preceding 32 bytes) | zero pad
//   TOC at toc_offset: section_count entries, 32 bytes each
//     id u32 | reserved u32 (0) | offset u64 | size u64 |
//     checksum u64 (FNV-1a over the section's bytes)
//   sections, each 64-byte aligned (zero-padded between)
//
// Sections (ids below; unknown ids are ignored by readers, so the format
// is forward-extensible):
//   kConfig   region geometry + parameters (fixed 112 bytes, see
//             ConfigImage)
//   kBudgets  u32 height | u32 pad | f64 per-level budgets[height]
//   kPrior    u32 granularity g | u32 pad | f64 masses[g*g]
//   kNodes    u64 count | count NodeDirEntry (32 bytes each) | per-node
//             blobs, each 64-byte aligned at its directory offset
//             (relative to the section start):
//               f64 level-eps | f64 objective | u64 n | u64 reserved |
//               f64 locations[2n] (x,y interleaved) | f64 prior[n] |
//               f64 k[n*n] | f64 alias_prob[n*n] | u64 alias_alias[n*n] |
//               f64 alias_normalized[n*n]
//   kPlan     u64 plan_node_count P | u64 child_slot_count S |
//             i64 node_id[P] | i64 child_id[S] |
//             f64 min_x/min_y/max_x/max_y/center_x/center_y (S each) |
//             i32 child_begin[P] | i32 child_count[P] |
//             i32 child_plan[S] | u8 child_is_leaf[S]
//
// Every multi-byte field is little-endian. The zero-copy read path
// reinterprets mapped bytes as host arrays, so it additionally requires a
// little-endian LP64 host (checked at Open; other hosts get a clear
// kUnimplemented, never a misparse). All array starts are 8-byte aligned
// by construction (64-aligned sections, 8-multiple prefixes before every
// wide array).

#ifndef GEOPRIV_BUNDLE_FORMAT_H_
#define GEOPRIV_BUNDLE_FORMAT_H_

#include <cstddef>
#include <cstdint>

namespace geopriv::bundle {

inline constexpr char kMagicV2[4] = {'G', 'P', 'B', '2'};
inline constexpr char kMagicV1[4] = {'G', 'P', 'B', '1'};
inline constexpr uint32_t kVersion = 2;
inline constexpr size_t kHeaderBytes = 64;
inline constexpr size_t kTocEntryBytes = 32;
inline constexpr size_t kSectionAlign = 64;

// Section ids. Values are part of the format; never renumber.
enum SectionId : uint32_t {
  kConfig = 1,
  kBudgets = 2,
  kPrior = 3,
  kNodes = 4,
  kPlan = 5,
};

// Decoded TOC entry.
struct SectionEntry {
  uint32_t id = 0;
  uint64_t offset = 0;
  uint64_t size = 0;
  uint64_t checksum = 0;
};

// Decoded kConfig section. Field order in the file: the ten f64s, then
// the four u32s, then the two u64s (112 bytes total).
struct ConfigImage {
  double min_lat = 0.0, min_lon = 0.0, max_lat = 0.0, max_lon = 0.0;
  double eps = 0.0;
  double rho = 0.0;
  // Planar km frame derived from the lat/lon box; stored so a loader can
  // cross-check its projection reproduces the build tier's domain bit for
  // bit (a mismatch means a different projection implementation and would
  // silently shift every reported point).
  double domain_min_x = 0.0, domain_min_y = 0.0;
  double domain_max_x = 0.0, domain_max_y = 0.0;
  uint32_t granularity = 0;
  uint32_t prior_granularity = 0;
  uint32_t metric = 0;  // geo::UtilityMetric enumerator value
  uint32_t height = 0;
  uint64_t node_count = 0;       // solved mechanisms in kNodes
  uint64_t plan_node_count = 0;  // plan nodes in kPlan (0 = no plan)
};
inline constexpr size_t kConfigImageBytes = 112;

// Directory entry inside the kNodes section.
struct NodeDirEntry {
  int64_t node = 0;     // spatial::NodeIndex
  uint32_t level = 0;   // depth + 1 (budget index of the node's children)
  uint32_t n = 0;       // candidate count (children of the node)
  uint64_t offset = 0;  // blob start, relative to the section start
  uint64_t size = 0;    // blob bytes
};
inline constexpr size_t kNodeDirEntryBytes = 32;
inline constexpr size_t kNodeBlobHeaderBytes = 32;

// Blob bytes for a solved node with n candidates.
inline constexpr uint64_t NodeBlobBytes(uint64_t n) {
  return kNodeBlobHeaderBytes + 8 * (2 * n + n) + 4 * 8 * n * n;
}

// FNV-1a, the same function the v1 client bundle and the TOC use.
inline uint64_t Fnv1a(const void* data, size_t size,
                      uint64_t seed = 14695981039346656037ull) {
  const auto* bytes = static_cast<const unsigned char*>(data);
  uint64_t hash = seed;
  for (size_t i = 0; i < size; ++i) {
    hash ^= bytes[i];
    hash *= 1099511628211ull;
  }
  return hash;
}

inline constexpr size_t AlignUp(size_t v, size_t align) {
  return (v + align - 1) / align * align;
}

}  // namespace geopriv::bundle

#endif  // GEOPRIV_BUNDLE_FORMAT_H_
