#include "bundle/mapped_file.h"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

namespace geopriv::bundle {

namespace {

std::string ErrnoMessage(const std::string& what, const std::string& path) {
  return what + " " + path + ": " + std::strerror(errno);
}

}  // namespace

StatusOr<std::shared_ptr<const MappedFile>> MappedFile::Open(
    const std::string& path) {
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) {
    return Status::IoError(ErrnoMessage("cannot open", path));
  }
  struct stat st;
  if (::fstat(fd, &st) != 0) {
    const Status status = Status::IoError(ErrnoMessage("cannot stat", path));
    ::close(fd);
    return status;
  }
  const size_t size = static_cast<size_t>(st.st_size);
  if (size == 0) {
    ::close(fd);
    return Status::InvalidArgument("empty file: " + path);
  }
  void* mapping = ::mmap(nullptr, size, PROT_READ, MAP_PRIVATE, fd, 0);
  // The mapping holds its own reference to the file; the descriptor is
  // no longer needed either way.
  ::close(fd);
  if (mapping == MAP_FAILED) {
    return Status::IoError(ErrnoMessage("cannot mmap", path));
  }
  return std::shared_ptr<const MappedFile>(new MappedFile(
      path, static_cast<const unsigned char*>(mapping), size));
}

MappedFile::~MappedFile() {
  if (data_ != nullptr) {
    ::munmap(const_cast<unsigned char*>(data_), size_);
  }
}

}  // namespace geopriv::bundle
