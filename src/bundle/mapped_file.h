// Read-only mmap of a whole file, shared among every view that needs the
// bytes to stay resident. The bundle loader hands the shared_ptr to each
// rehydrated mechanism as its backing pin, so the mapping lives exactly
// as long as anything still reads through it.

#ifndef GEOPRIV_BUNDLE_MAPPED_FILE_H_
#define GEOPRIV_BUNDLE_MAPPED_FILE_H_

#include <cstddef>
#include <memory>
#include <span>
#include <string>

#include "base/status.h"

namespace geopriv::bundle {

class MappedFile {
 public:
  // Maps `path` read-only (PROT_READ, MAP_PRIVATE). Fails with kIoError
  // on open/stat/mmap failure and kInvalidArgument on an empty file.
  static StatusOr<std::shared_ptr<const MappedFile>> Open(
      const std::string& path);

  ~MappedFile();
  MappedFile(const MappedFile&) = delete;
  MappedFile& operator=(const MappedFile&) = delete;

  const unsigned char* data() const { return data_; }
  size_t size() const { return size_; }
  std::span<const unsigned char> bytes() const { return {data_, size_}; }
  const std::string& path() const { return path_; }

 private:
  MappedFile(std::string path, const unsigned char* data, size_t size)
      : path_(std::move(path)), data_(data), size_(size) {}

  std::string path_;
  const unsigned char* data_ = nullptr;
  size_t size_ = 0;
};

}  // namespace geopriv::bundle

#endif  // GEOPRIV_BUNDLE_MAPPED_FILE_H_
