#include "mathx/lattice_sum.h"

#include <cmath>

#include "base/check.h"
#include "mathx/special_functions.h"

namespace geopriv::mathx {

namespace {

constexpr double kTwoPi = 6.283185307179586;

// Upper bound on the part of the sum outside the square [-A, A]^2: every
// such point has Chebyshev norm m > A and Euclidean norm >= m, and there are
// 8m points of Chebyshev norm m, so the tail is at most
// sum_{m > A} 8 m e^{-s m}.
double SquareTailBound(double s, int a) {
  const double q = std::exp(-s);
  const double q_a1 = std::exp(-s * (a + 1));
  // sum_{m >= A+1} 8 m q^m = 8 q^{A+1} ((A+1)(1-q) + q) / (1-q)^2.
  const double one_minus_q = 1.0 - q;
  return 8.0 * q_a1 * ((a + 1) * one_minus_q + q) / (one_minus_q * one_minus_q);
}

}  // namespace

double LatticeExponentialSumDirect(double s, double tol) {
  GEOPRIV_CHECK_MSG(s > 0.0, "lattice sum requires s > 0");
  int a = 8;
  while (SquareTailBound(s, a) > tol && a < 100000) {
    a *= 2;
  }
  // Sum over the closed square [-a, a]^2 exploiting 8-fold symmetry:
  // enumerate 0 <= j <= i <= a and weight by the orbit size.
  double sum = 1.0;  // origin
  for (int i = 1; i <= a; ++i) {
    // (i, 0) orbit: (+-i, 0), (0, +-i) -> 4 points.
    sum += 4.0 * std::exp(-s * i);
    // (i, i) orbit: 4 points.
    sum += 4.0 * std::exp(-s * i * M_SQRT2);
    for (int j = 1; j < i; ++j) {
      // (i, j), j < i: 8 points.
      sum += 8.0 * std::exp(-s * std::sqrt(static_cast<double>(i) * i +
                                           static_cast<double>(j) * j));
    }
  }
  return sum;
}

double LatticeExponentialSumSeries(double s, double tol) {
  GEOPRIV_CHECK_MSG(s > 0.0 && s < kTwoPi,
                    "series expansion requires 0 < s < 2*pi");
  double total = kTwoPi / (s * s);
  constexpr int kMaxTerms = 60;
  for (int k = 1; k <= kMaxTerms; ++k) {
    const double c =
        4.0 * GeneralizedBinomial(-1.5, k - 1) *
        std::pow(kTwoPi, -2.0 * k) * RiemannZeta(k + 0.5) *
        DirichletBeta(k + 0.5);
    const double term = c * std::pow(s, 2.0 * k - 1.0);
    total += term;
    if (std::abs(term) < tol) break;
  }
  return total;
}

double LatticeExponentialSum(double s) {
  GEOPRIV_CHECK_MSG(s > 0.0, "lattice sum requires s > 0");
  // The series wins for small s (the direct sum would need a huge radius);
  // the direct sum is cheap and exact-to-tolerance for moderate s.
  if (s < 0.5) return LatticeExponentialSumSeries(s);
  return LatticeExponentialSumDirect(s);
}

double SelfMappingProbability(double eps, double cell_side) {
  GEOPRIV_CHECK_MSG(eps > 0.0 && cell_side > 0.0,
                    "eps and cell_side must be positive");
  return 1.0 / LatticeExponentialSum(eps * cell_side);
}

StatusOr<double> MinBudgetForSelfMapping(double rho, double cell_side) {
  if (!(rho > 0.0 && rho < 1.0)) {
    return Status::InvalidArgument("rho must lie in (0, 1)");
  }
  if (!(cell_side > 0.0)) {
    return Status::InvalidArgument("cell_side must be positive");
  }
  // Solve T(s) = 1/rho for the product s = eps * cell_side; T is strictly
  // decreasing, so bisection converges unconditionally.
  const double target = 1.0 / rho;
  double lo = 1e-9;
  double hi = 1.0;
  while (LatticeExponentialSum(hi) > target) {
    hi *= 2.0;
    if (hi > 1e6) {
      return Status::Internal("self-mapping bisection failed to bracket");
    }
  }
  for (int i = 0; i < 200; ++i) {
    const double mid = 0.5 * (lo + hi);
    if (LatticeExponentialSum(mid) > target) {
      lo = mid;
    } else {
      hi = mid;
    }
    if (hi - lo < 1e-12 * (1.0 + hi)) break;
  }
  return 0.5 * (lo + hi) / cell_side;
}

}  // namespace geopriv::mathx
