#include "mathx/lambert_w.h"

#include <cmath>
#include <limits>

namespace geopriv::mathx {

namespace {

constexpr double kInvE = 0.36787944117144232;  // 1/e
constexpr int kMaxIterations = 64;

// Halley's method on f(w) = w * e^w - x, which converges cubically from the
// branch-appropriate initial guess.
double HalleyRefine(double w, double x) {
  for (int i = 0; i < kMaxIterations; ++i) {
    const double ew = std::exp(w);
    const double f = w * ew - x;
    if (f == 0.0) break;
    const double wp1 = w + 1.0;
    const double denom = ew * wp1 - (w + 2.0) * f / (2.0 * wp1);
    const double step = f / denom;
    w -= step;
    if (std::abs(step) <= 1e-16 * (1.0 + std::abs(w))) break;
  }
  return w;
}

}  // namespace

double LambertW0(double x) {
  if (x < -kInvE) return std::numeric_limits<double>::quiet_NaN();
  if (x == 0.0) return 0.0;
  double w;
  if (x < -kInvE + 1e-4) {
    // Series around the branch point w = -1: w = -1 + p - p^2/3 + ...
    const double p = std::sqrt(2.0 * (std::fma(x, M_E, 1.0)));
    w = -1.0 + p - p * p / 3.0;
  } else if (x < 1.0) {
    // Pade-like rational start near 0.
    w = x * (1.0 - x + 1.5 * x * x) / (1.0 + 0.5 * x);
  } else if (x < M_E) {
    // Moderate range: log(1+x) is within ~20% of W_0 here.
    w = std::log(1.0 + x);
  } else {
    // Asymptotic start for large x (log(x) >= 1, so log(log(x)) >= 0).
    const double l1 = std::log(x);
    const double l2 = std::log(l1);
    w = l1 - l2 + l2 / l1;
  }
  return HalleyRefine(w, x);
}

double LambertWm1(double x) {
  if (x < -kInvE || x >= 0.0) {
    return std::numeric_limits<double>::quiet_NaN();
  }
  double w;
  if (x < -kInvE + 1e-4) {
    // Series around the branch point, lower branch: w = -1 - p - p^2/3 - ...
    const double p = std::sqrt(2.0 * (std::fma(x, M_E, 1.0)));
    w = -1.0 - p - p * p / 3.0;
  } else {
    // For x -> 0^-: W_{-1}(x) ~ log(-x) - log(-log(-x)).
    const double l1 = std::log(-x);
    const double l2 = std::log(-l1);
    w = l1 - l2 + l2 / l1;
  }
  return HalleyRefine(w, x);
}

StatusOr<double> PlanarLaplaceInverseRadialCdf(double eps, double p) {
  if (!(eps > 0.0)) {
    return Status::InvalidArgument("eps must be positive");
  }
  if (!(p >= 0.0 && p < 1.0)) {
    return Status::InvalidArgument("p must lie in [0, 1)");
  }
  if (p == 0.0) return 0.0;
  const double w = LambertWm1((p - 1.0) * kInvE);
  return -(w + 1.0) / eps;
}

}  // namespace geopriv::mathx
