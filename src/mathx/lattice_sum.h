// Lattice sums for the budget-allocation cost model (paper Section 5).
//
// The self-mapping probability of the optimal mechanism on a granularity-g
// grid over a region of side L is approximated (paper Eq. 7) by
//   Phi = 1 / T(s),   with s = eps * L / g   (eps times the cell side) and
//   T(s) = sum over (a,b) in Z^2 of exp(-s * sqrt(a^2 + b^2)).
//
// T is evaluated two ways:
//  * direct truncated summation with a rigorous tail bound (any s > 0);
//  * the paper's Poisson-summation / Dirichlet-series expansion (Eq. 8-10),
//    T(s) = 2*pi/s^2 + sum_{k>=1} c_{2k-1} s^{2k-1} with
//    c_{2k-1} = 4 * C(-3/2, k-1) * (2*pi)^{-2k} * zeta(k+1/2) * beta(k+1/2),
//    which converges for s < 2*pi and is far cheaper for small s (i.e. small
//    eps, the common tight-privacy regime).

#ifndef GEOPRIV_MATHX_LATTICE_SUM_H_
#define GEOPRIV_MATHX_LATTICE_SUM_H_

#include "base/status.h"

namespace geopriv::mathx {

// Direct summation, truncated so the neglected tail is below `tol`.
// Requires s > 0.
double LatticeExponentialSumDirect(double s, double tol = 1e-12);

// Paper Eq. (8)-(10). Requires 0 < s < 2*pi (converges in that disk); the
// evaluation stops once terms drop below `tol`.
double LatticeExponentialSumSeries(double s, double tol = 1e-12);

// Picks the series for small s and direct summation otherwise.
double LatticeExponentialSum(double s);

// Phi = 1 / T(eps * cell_side): the modelled probability that the optimal
// mechanism maps a cell to itself. Requires eps > 0, cell_side > 0.
double SelfMappingProbability(double eps, double cell_side);

// Problem 1 of the paper: the minimal budget eps such that
// SelfMappingProbability(eps, cell_side) >= rho. Solved by bisection, which
// is exact here because T is strictly decreasing in eps. Requires
// rho in (0, 1) and cell_side > 0.
StatusOr<double> MinBudgetForSelfMapping(double rho, double cell_side);

}  // namespace geopriv::mathx

#endif  // GEOPRIV_MATHX_LATTICE_SUM_H_
