// Special functions needed by the budget-allocation cost model (Section 5 of
// the paper): the Riemann zeta function at real s > 1, the Dirichlet L-series
// L(s, chi_4) (also known as the Dirichlet beta function), and generalized
// binomial coefficients.

#ifndef GEOPRIV_MATHX_SPECIAL_FUNCTIONS_H_
#define GEOPRIV_MATHX_SPECIAL_FUNCTIONS_H_

namespace geopriv::mathx {

// Riemann zeta(s) for real s > 1 (Euler-Maclaurin summation; ~1e-13
// absolute accuracy for s >= 1.1). Returns NaN for s <= 1.
double RiemannZeta(double s);

// Dirichlet beta(s) = L(s, chi_4) = sum_{n>=0} (-1)^n / (2n+1)^s for real
// s > 0, evaluated with Cohen-Rodriguez Villegas-Zagier alternating-series
// acceleration (~1e-14 accuracy).
double DirichletBeta(double s);

// Generalized binomial coefficient C(alpha, k) for real alpha and integer
// k >= 0: alpha * (alpha-1) * ... * (alpha-k+1) / k!.
double GeneralizedBinomial(double alpha, int k);

}  // namespace geopriv::mathx

#endif  // GEOPRIV_MATHX_SPECIAL_FUNCTIONS_H_
