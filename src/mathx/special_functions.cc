#include "mathx/special_functions.h"

#include <cmath>
#include <limits>

#include "base/check.h"

namespace geopriv::mathx {

double RiemannZeta(double s) {
  if (!(s > 1.0)) return std::numeric_limits<double>::quiet_NaN();
  // Euler-Maclaurin: sum the first N-1 terms directly, then correct with the
  // integral tail, the midpoint term, and Bernoulli-number corrections.
  constexpr int kN = 24;
  double sum = 0.0;
  for (int n = 1; n < kN; ++n) {
    sum += std::pow(n, -s);
  }
  const double n = kN;
  const double n_pow = std::pow(n, -s);
  sum += n * n_pow / (s - 1.0);  // integral tail: N^{1-s} / (s-1)
  sum += 0.5 * n_pow;
  // Correction terms with B_2 = 1/6, B_4 = -1/30, B_6 = 1/42:
  //   sum_k B_{2k}/(2k)! * (s)(s+1)...(s+2k-2) * N^{-s-2k+1}.
  double term = s * n_pow / n;  // s * N^{-s-1}
  sum += term / 12.0;
  term *= (s + 1.0) * (s + 2.0) / (n * n);
  sum -= term / 720.0;
  term *= (s + 3.0) * (s + 4.0) / (n * n);
  sum += term / 30240.0;
  return sum;
}

double DirichletBeta(double s) {
  GEOPRIV_CHECK_MSG(s > 0.0, "DirichletBeta requires s > 0");
  // Cohen-Rodriguez Villegas-Zagier acceleration of the alternating series
  // sum_{k>=0} (-1)^k a_k with a_k = (2k+1)^{-s}.
  constexpr int kTerms = 40;
  double d = std::pow(3.0 + std::sqrt(8.0), kTerms);
  d = (d + 1.0 / d) / 2.0;
  double b = -1.0;
  double c = -d;
  double sum = 0.0;
  for (int k = 0; k < kTerms; ++k) {
    c = b - c;
    sum += c * std::pow(2.0 * k + 1.0, -s);
    b = (k + kTerms) * (k - kTerms) * b /
        ((k + 0.5) * (k + 1.0));
  }
  return sum / d;
}

double GeneralizedBinomial(double alpha, int k) {
  GEOPRIV_CHECK_MSG(k >= 0, "binomial requires k >= 0");
  double result = 1.0;
  for (int j = 1; j <= k; ++j) {
    result *= (alpha - (j - 1)) / j;
  }
  return result;
}

}  // namespace geopriv::mathx
