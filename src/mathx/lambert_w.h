// Real branches of the Lambert W function (inverse of w * e^w).
//
// The planar Laplace mechanism needs W_{-1}: the radial CDF of the polar
// Laplacian is C_eps(r) = 1 - (1 + eps*r) * exp(-eps*r) and its inverse is
//   r = -(1/eps) * (W_{-1}((p - 1) / e) + 1).

#ifndef GEOPRIV_MATHX_LAMBERT_W_H_
#define GEOPRIV_MATHX_LAMBERT_W_H_

#include "base/status.h"

namespace geopriv::mathx {

// Principal branch W_0(x), defined for x >= -1/e. Returns NaN outside the
// domain.
double LambertW0(double x);

// Branch W_{-1}(x), defined for -1/e <= x < 0. Returns NaN outside the
// domain.
double LambertWm1(double x);

// Inverse CDF of the planar-Laplace radial distribution: the unique r >= 0
// with 1 - (1 + eps*r) * exp(-eps*r) = p. Requires eps > 0 and p in [0, 1).
StatusOr<double> PlanarLaplaceInverseRadialCdf(double eps, double p);

}  // namespace geopriv::mathx

#endif  // GEOPRIV_MATHX_LAMBERT_W_H_
