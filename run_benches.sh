#!/usr/bin/env bash
# Regenerates every paper table/figure: runs all bench binaries in order.
#
#   ./run_benches.sh [name-filter]
#
# With an argument, only binaries whose basename contains the substring
# run (e.g. `./run_benches.sh eps_sweep`). Non-executable files in
# build/bench/ (CMake droppings etc.) are skipped explicitly.
set -euo pipefail
cd "$(dirname "$0")"

filter="${1:-}"

if ! ls build/bench/* >/dev/null 2>&1; then
  echo "error: build/bench/ is empty — build first:" >&2
  echo "  cmake -B build -S . && cmake --build build -j" >&2
  exit 1
fi

for b in build/bench/*; do
  name="$(basename "$b")"
  if [ ! -f "$b" ] || [ ! -x "$b" ]; then
    echo "----- skipping $name (not an executable file)"
    continue
  fi
  if [ -n "$filter" ] && [[ "$name" != *"$filter"* ]]; then
    continue
  fi
  echo "===== $name ====="
  timeout 2400 "$b"
  echo
done
