#!/usr/bin/env bash
# Regenerates every paper table/figure: runs all bench binaries in order.
#
#   ./run_benches.sh [name-filter]
#
# With an argument, only binaries whose basename contains the substring
# run (e.g. `./run_benches.sh eps_sweep`). Non-executable files in
# build/bench/ (CMake droppings etc.) are skipped explicitly.
set -euo pipefail
cd "$(dirname "$0")"

filter="${1:-}"

if ! ls build/bench/* >/dev/null 2>&1; then
  echo "error: build/bench/ is empty — build first:" >&2
  echo "  cmake -B build -S . && cmake --build build -j" >&2
  exit 1
fi

for b in build/bench/*; do
  name="$(basename "$b")"
  if [ ! -f "$b" ] || [ ! -x "$b" ]; then
    echo "----- skipping $name (not an executable file)"
    continue
  fi
  if [ -n "$filter" ] && [[ "$name" != *"$filter"* ]]; then
    continue
  fi
  echo "===== $name ====="
  timeout 2400 "$b"
  echo
done

# Honesty gate: a thread-sweep JSON produced on a box with fewer cores
# than the sweep's max thread count contains no multi-thread scaling
# evidence — refuse to let those numbers pass as speedup claims.
for j in BENCH_service.json BENCH_serving.json BENCH_lp.json; do
  [ -f "$j" ] || continue
  if grep -q '"multi_thread_scaling_valid": false' "$j"; then
    hc="$(grep -o '"hardware_concurrency": [0-9]*' "$j" | head -1 \
          | grep -o '[0-9]*$')"
    echo "REFUSED: $j was produced with hardware_concurrency=$hc, below" \
         "the swept thread counts. Its multi-thread QPS/speedup numbers" \
         "measure queueing overhead, NOT parallel scaling — do not cite" \
         "them as speedups. Per-point scaling_valid flags say which" \
         "points are trustworthy."
  fi
done

# Observability overhead gate: sampled tracing (1-in-64) must stay within
# 5% of tracing-off warm throughput, or the obs PR's low-overhead claim
# does not hold on this run.
if [ -f BENCH_obs.json ] \
    && grep -q '"overhead_within_5pct": false' BENCH_obs.json; then
  ratio="$(grep -o '"sampled_over_off_ratio": [0-9.]*' BENCH_obs.json \
           | grep -o '[0-9.]*$')"
  echo "WARNING: BENCH_obs.json reports sampled-tracing throughput at" \
       "${ratio}x of tracing-off — outside the 5% overhead budget. Do not" \
       "cite sampled tracing as low-overhead from this run (noisy or" \
       "oversubscribed machine?)."
fi
