#!/bin/bash
# Regenerates every paper table/figure: runs all bench binaries in order.
cd "$(dirname "$0")"
for b in build/bench/*; do
  if [ -x "$b" ] && [ -f "$b" ]; then
    echo "===== $b ====="
    timeout 2400 "$b"
    echo
  fi
done
